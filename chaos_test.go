package dfpc

// The chaos suite is the robustness layer's integration pin: every
// registered fault point is swept with an injection and the only
// acceptable outcomes are sentinel errors (never panics, never
// non-Is-able failures), no goroutine leaks, no torn artifact files,
// and resume runs byte-identical to uninterrupted ones.

import (
	"bytes"
	"context"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"io"

	"dfpc/internal/durable"
	"dfpc/internal/eval"
	"dfpc/internal/faults"
	"dfpc/internal/modelobs"
	"dfpc/internal/parallel"
	"dfpc/internal/telemetry"
)

// saveModelAtomic is the production save path: the model envelope
// streamed through durable's temp-file + fsync + rename sequence.
func saveModelAtomic(path string, clf *Classifier, r *faults.Registry) error {
	return durable.WriteAtomic(path, r, func(w io.Writer) error {
		return SaveModel(w, clf)
	})
}

// chaosLeakCheck fails the test if the goroutine count has not
// returned to its starting value shortly after all cleanups ran.
func chaosLeakCheck(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		for runtime.NumGoroutine() > before {
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Errorf("goroutine leak: %d before, %d after\n%s",
					before, runtime.NumGoroutine(), buf[:n])
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

// chaosRun drives one end-to-end pass that traverses every registered
// fault point: a checkpointed 2-fold CV (eval.fold, checkpoint.write,
// all five fs points, core.*, mine.*, featsel, and the learner), a
// standalone predict, and a journal append. It returns the first error.
func chaosRun(t *testing.T, r *faults.Registry, learner Learner) error {
	t.Helper()
	d, err := Generate("labor", 3)
	if err != nil {
		t.Fatal(err)
	}
	clf := NewClassifier(PatFS, learner, WithMinSupport(0.3), WithCoverage(2))
	clf.SetFaults(r)
	ck, err := eval.NewCheckpointer(t.TempDir(), "chaos", r)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CrossValidateContext(context.Background(), clf, d, 2, 1, CVOptions{
		Faults:     r,
		Checkpoint: ck,
	}); err != nil {
		return err
	}
	rows := make([]int, d.NumRows())
	for i := range rows {
		rows[i] = i
	}
	// Drift-tracked predict plus a report snapshot (modelobs.snapshot).
	tr := modelobs.NewTracker(modelobs.TrackerConfig{WindowSize: 8})
	tr.SetFaults(r)
	clf.SetDriftTracker(tr)
	if _, err := clf.Predict(d, rows); err != nil {
		return err
	}
	if _, err := tr.Report(); err != nil {
		return err
	}
	j, err := telemetry.OpenJournal(filepath.Join(t.TempDir(), "j.jsonl"), "chaos", "rid")
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	j.SetFaults(r)
	return j.Append(telemetry.Record{Kind: "cv", Dataset: d.Name})
}

// TestChaosSentinelSweep arms an injected error at every registered
// point in turn and demands the failure (when the driver fails at all)
// is errors.Is-reachable as faults.ErrInjected — never a panic, never
// an opaque error — and that every point actually fired, proving the
// sweep exercises the whole surface.
func TestChaosSentinelSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite")
	}
	chaosLeakCheck(t)
	for _, point := range faults.Known() {
		point := point
		t.Run(point, func(t *testing.T) {
			learner := SVM
			if point == faults.C45Build {
				learner = C45
			}
			r := faults.New(1)
			r.Arm(point, 1, faults.ErrInjected)
			err := chaosRun(t, r, learner)
			if r.Hits(point) == 0 {
				t.Fatalf("point %s never fired: the sweep does not cover it", point)
			}
			if err == nil {
				t.Fatalf("point %s fired but the run succeeded", point)
			}
			if !errors.Is(err, faults.ErrInjected) {
				t.Fatalf("point %s: error does not unwrap to ErrInjected: %v", point, err)
			}
		})
	}
}

// TestChaosKindsMapToGuardSentinels pins that injected cancellations
// and deadlines surface as the public guard sentinels, so callers'
// errors.Is handling is identical for real and injected failures.
func TestChaosKindsMapToGuardSentinels(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite")
	}
	chaosLeakCheck(t)
	cases := []struct {
		kind string
		want error
	}{
		{"canceled", ErrCanceled},
		{"deadline", ErrDeadline},
	}
	for _, tc := range cases {
		r := faults.New(1)
		if err := r.ArmKind(faults.CoreMine, 1, tc.kind); err != nil {
			t.Fatal(err)
		}
		err := chaosRun(t, r, SVM)
		if !errors.Is(err, tc.want) {
			t.Fatalf("kind %s: err = %v, want %v", tc.kind, err, tc.want)
		}
		if !errors.Is(err, faults.ErrInjected) {
			t.Fatalf("kind %s: injected failure not marked ErrInjected: %v", tc.kind, err)
		}
	}
}

// TestChaosPanicInjectionIsCaptured pins that a panic injected inside
// a parallel worker surfaces as an error, not a process crash.
func TestChaosPanicInjectionIsCaptured(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite")
	}
	chaosLeakCheck(t)
	d, err := Generate("labor", 3)
	if err != nil {
		t.Fatal(err)
	}
	r := faults.New(1)
	r.ArmPanic(faults.EvalFold, 1, "injected chaos panic")
	clf := NewClassifier(PatFS, SVM, WithMinSupport(0.3), WithCoverage(2))
	_, err = CrossValidateContext(context.Background(), clf, d, 2, 1, CVOptions{
		Faults:  r,
		Workers: parallel.Workers(2),
	})
	if err == nil {
		t.Fatal("injected panic did not fail the run")
	}
	if !strings.Contains(err.Error(), "injected chaos panic") {
		t.Fatalf("panic payload lost: %v", err)
	}
}

// TestChaosTornWriteLoop is the write-kill-reload pin: a model save
// killed at any fs fault point must leave either the previous complete
// artifact or no file — never a torn one — and must leave no temp
// litter behind. The survivor must load and predict identically.
func TestChaosTornWriteLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite")
	}
	chaosLeakCheck(t)
	d, err := Generate("labor", 3)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]int, d.NumRows())
	for i := range rows {
		rows[i] = i
	}
	clf := NewClassifier(PatFS, SVM, WithMinSupport(0.3), WithCoverage(2))
	if err := clf.Fit(d, rows); err != nil {
		t.Fatal(err)
	}
	want, err := clf.Predict(d, rows)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "model.gob")
	f, err := os.Create(path) // baseline artifact, deliberately raw: the loop below injects against the durable path
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveModel(f, clf); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	v1, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	fsPoints := []string{faults.FSCreate, faults.FSWrite, faults.FSSync,
		faults.FSRename, faults.FSClose}
	for _, point := range fsPoints {
		for nth := uint64(1); nth <= 3; nth++ {
			r := faults.New(int64(nth))
			r.Arm(point, nth, faults.ErrInjected)
			err := saveModelAtomic(path, clf, r)
			if r.Hits(point) < nth {
				// The write finished before the nth hit; it must have
				// fully replaced the artifact.
				if err != nil {
					t.Fatalf("%s nth=%d: fewer hits than armed yet save failed: %v", point, nth, err)
				}
			} else if !errors.Is(err, faults.ErrInjected) {
				t.Fatalf("%s nth=%d: err = %v, want ErrInjected", point, nth, err)
			}
			got, readErr := os.ReadFile(path)
			if readErr != nil {
				t.Fatalf("%s nth=%d: artifact vanished: %v", point, nth, readErr)
			}
			if err != nil && !bytes.Equal(got, v1) {
				t.Fatalf("%s nth=%d: failed save altered the artifact", point, nth)
			}
			entries, _ := os.ReadDir(dir)
			if len(entries) != 1 {
				t.Fatalf("%s nth=%d: temp litter left in %s: %v", point, nth, dir, entries)
			}
			// Whatever survived must load and predict identically.
			loaded := mustLoadModel(t, path)
			pred, err := loaded.Predict(d, rows)
			if err != nil {
				t.Fatalf("%s nth=%d: reload predict: %v", point, nth, err)
			}
			for i := range pred {
				if pred[i] != want[i] {
					t.Fatalf("%s nth=%d: prediction %d drifted after reload", point, nth, i)
				}
			}
			// Reset to the known-good artifact for the next round.
			if err := os.WriteFile(path, v1, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func mustLoadModel(t *testing.T, path string) *Classifier {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	clf, err := LoadModel(f)
	if err != nil {
		t.Fatalf("reload: %v", err)
	}
	return clf
}

// TestChaosCLIResumeByteIdentical is the end-to-end resume pin: the
// dfpc binary, interrupted by an injected fault and resumed from its
// checkpoints, prints byte-identical results (timing lines filtered)
// to an uninterrupted run — at 1, 2, and 8 workers.
func TestChaosCLIResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite: builds and runs the dfpc binary")
	}
	chaosLeakCheck(t)
	bin := filepath.Join(t.TempDir(), "dfpc")
	build := exec.Command("go", "build", "-o", bin, "./cmd/dfpc")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	base := []string{"-dataset", "labor", "-folds", "4", "-minsup", "0.3"}

	clean := exec.Command(bin, base...)
	cleanOut, err := clean.Output()
	if err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}
	want := stripTimings(string(cleanOut))

	for _, workers := range []string{"1", "2", "8"} {
		ckDir := filepath.Join(t.TempDir(), "ck")
		interrupted := exec.Command(bin, append(append([]string{}, base...),
			"-workers", "1", "-checkpoint", ckDir, "-faults", "eval.fold:3")...)
		if out, err := interrupted.Output(); err == nil {
			t.Fatalf("workers=%s: interrupted run did not fail:\n%s", workers, out)
		}
		if entries, err := os.ReadDir(ckDir); err != nil || len(entries) == 0 {
			t.Fatalf("workers=%s: no checkpoints written (%v)", workers, err)
		}

		resumed := exec.Command(bin, append(append([]string{}, base...),
			"-workers", workers, "-resume", ckDir)...)
		resumedOut, err := resumed.Output()
		if err != nil {
			t.Fatalf("workers=%s: resumed run failed: %v", workers, err)
		}
		if got := stripTimings(string(resumedOut)); got != want {
			t.Fatalf("workers=%s: resumed output differs from uninterrupted:\n--- want ---\n%s\n--- got ---\n%s",
				workers, want, got)
		}
	}
}

// stripTimings drops the wall-clock line — the only legitimately
// nondeterministic part of dfpc's stdout.
func stripTimings(s string) string {
	var keep []string
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, "train time") {
			continue
		}
		keep = append(keep, line)
	}
	return strings.Join(keep, "\n")
}
