package dfpc_test

import (
	"fmt"
	"log"
	"strings"

	"dfpc"
)

// ExampleNewClassifier trains the paper's Pat_FS configuration and
// evaluates it with cross validation.
func ExampleNewClassifier() {
	d, err := dfpc.Generate("labor", 1)
	if err != nil {
		log.Fatal(err)
	}
	clf := dfpc.NewClassifier(dfpc.PatFS, dfpc.SVM, dfpc.WithMinSupport(0.3))
	res, err := dfpc.CrossValidate(clf, d, 3, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("folds: %d, accuracy in (0,1]: %v\n", len(res.FoldAccuracies), res.Mean > 0 && res.Mean <= 1)
	// Output:
	// folds: 3, accuracy in (0,1]: true
}

// ExampleLoadCSV builds a dataset from CSV text.
func ExampleLoadCSV() {
	csv := "color,weight,label\nred,1.5,pos\nblue,2.5,neg\nred,1.7,pos\nblue,2.2,neg\n"
	d, err := dfpc.LoadCSV(strings.NewReader(csv), "demo")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d rows, %d attrs, %d classes\n", d.NumRows(), d.NumAttrs(), d.NumClasses())
	// Output:
	// 4 rows, 2 attrs, 2 classes
}

// ExampleMinSupportForIG shows the paper's min_sup-setting strategy:
// an information-gain filter level maps to the largest support whose
// IG upper bound stays under it.
func ExampleMinSupportForIG() {
	s, err := dfpc.MinSupportForIG(0.05, 0.5, 1000)
	if err != nil {
		log.Fatal(err)
	}
	theta := float64(s) / 1000
	fmt.Printf("skippable support: bound at θ* is %.4f <= 0.05: %v\n",
		dfpc.IGUpperBound(theta, 0.5), dfpc.IGUpperBound(theta, 0.5) <= 0.05)
	// Output:
	// skippable support: bound at θ* is 0.0497 <= 0.05: true
}

// ExampleIGUpperBound evaluates the paper's Figure 2 envelope at a few
// supports: low- and very-high-support features have bounded
// discriminative power.
func ExampleIGUpperBound() {
	for _, theta := range []float64{0.02, 0.5, 0.98} {
		fmt.Printf("IGub(%.2f) = %.3f\n", theta, dfpc.IGUpperBound(theta, 0.5))
	}
	// Output:
	// IGub(0.02) = 0.020
	// IGub(0.50) = 1.000
	// IGub(0.98) = 0.020
}

// ExampleClassifier_Explain prints the interpretable pattern features a
// fitted model selected.
func ExampleClassifier_Explain() {
	d, err := dfpc.Generate("labor", 1)
	if err != nil {
		log.Fatal(err)
	}
	rows := make([]int, d.NumRows())
	for i := range rows {
		rows[i] = i
	}
	clf := dfpc.NewClassifier(dfpc.PatFS, dfpc.SVM, dfpc.WithMinSupport(0.3))
	if err := clf.Fit(d, rows); err != nil {
		log.Fatal(err)
	}
	rep := clf.Explain()
	fmt.Printf("selected patterns: %v, first is a conjunction: %v\n",
		len(rep) > 0, len(rep) > 0 && strings.Contains(rep[0].Name, "∧"))
	// Output:
	// selected patterns: true, first is a conjunction: true
}
