// Package knn implements a k-nearest-neighbour classifier over sparse
// binary feature rows with Jaccard or Hamming distance. Like naive
// Bayes, it exists to demonstrate the framework's learner-agnosticism:
// the pattern features change the geometry of the instance space, so
// even a memory-based learner benefits from them.
package knn

import (
	"fmt"
	"slices"
)

// Distance selects the dissimilarity measure between binary rows.
type Distance int

const (
	// Jaccard is 1 − |a∩b| / |a∪b| (1 for two empty rows' complement
	// convention: two empty rows have distance 0).
	Jaccard Distance = iota
	// Hamming is the size of the symmetric difference.
	Hamming
)

func (d Distance) String() string {
	switch d {
	case Jaccard:
		return "jaccard"
	case Hamming:
		return "hamming"
	default:
		return fmt.Sprintf("Distance(%d)", int(d))
	}
}

// Config configures the classifier.
type Config struct {
	// K is the neighbour count (default 5).
	K int
	// Distance is the dissimilarity (default Jaccard).
	Distance Distance
}

// Model holds the training data (k-NN is lazy).
type Model struct {
	x          [][]int32
	y          []int
	numClasses int
	cfg        Config
}

// Train validates and stores the training data.
func Train(x [][]int32, y []int, numClasses int, cfg Config) (*Model, error) {
	if len(x) == 0 {
		return nil, fmt.Errorf("knn: empty training set")
	}
	if len(x) != len(y) {
		return nil, fmt.Errorf("knn: %d rows, %d labels", len(x), len(y))
	}
	if numClasses < 1 {
		return nil, fmt.Errorf("knn: numClasses = %d", numClasses)
	}
	for _, yi := range y {
		if yi < 0 || yi >= numClasses {
			return nil, fmt.Errorf("knn: label %d out of range [0,%d)", yi, numClasses)
		}
	}
	if cfg.K <= 0 {
		cfg.K = 5
	}
	return &Model{x: x, y: y, numClasses: numClasses, cfg: cfg}, nil
}

// intersection counts common items of two sorted rows.
func intersection(a, b []int32) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			n++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return n
}

// distance computes the configured dissimilarity.
func (m *Model) distance(a, b []int32) float64 {
	inter := intersection(a, b)
	switch m.cfg.Distance {
	case Hamming:
		return float64(len(a) + len(b) - 2*inter)
	default:
		union := len(a) + len(b) - inter
		if union == 0 {
			return 0
		}
		return 1 - float64(inter)/float64(union)
	}
}

// Predict returns the majority class among the K nearest training rows
// (ties broken toward the smaller class index; distance ties keep the
// earlier training row, making prediction deterministic).
func (m *Model) Predict(x []int32) int {
	type nd struct {
		d   float64
		row int
	}
	dists := make([]nd, len(m.x))
	for i, tr := range m.x {
		dists[i] = nd{m.distance(tr, x), i}
	}
	// slices.SortFunc with a capture-free comparator: sort.Slice would
	// box dists into an interface and heap-allocate the closure on
	// every Predict call.
	slices.SortFunc(dists, func(a, b nd) int {
		if a.d != b.d {
			if a.d < b.d {
				return -1
			}
			return 1
		}
		return a.row - b.row
	})
	k := m.cfg.K
	if k > len(dists) {
		k = len(dists)
	}
	votes := make([]int, m.numClasses)
	for _, n := range dists[:k] {
		votes[m.y[n.row]]++
	}
	best := 0
	for c := 1; c < m.numClasses; c++ {
		if votes[c] > votes[best] {
			best = c
		}
	}
	return best
}

// PredictAll predicts every row.
func (m *Model) PredictAll(x [][]int32) []int {
	out := make([]int, len(x))
	for i, row := range x {
		out[i] = m.Predict(row)
	}
	return out
}
