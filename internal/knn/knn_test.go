package knn

import (
	"math"
	"testing"
)

func TestIntersection(t *testing.T) {
	cases := []struct {
		a, b []int32
		want int
	}{
		{[]int32{0, 2, 5}, []int32{2, 5, 9}, 2},
		{nil, []int32{1}, 0},
		{[]int32{1, 2, 3}, []int32{1, 2, 3}, 3},
	}
	for _, c := range cases {
		if got := intersection(c.a, c.b); got != c.want {
			t.Errorf("intersection(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestJaccardDistance(t *testing.T) {
	m := &Model{cfg: Config{Distance: Jaccard}}
	if got := m.distance([]int32{0, 1}, []int32{1, 2}); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("distance = %v, want 2/3", got)
	}
	if got := m.distance(nil, nil); got != 0 {
		t.Fatalf("empty distance = %v, want 0", got)
	}
	if got := m.distance([]int32{0}, []int32{0}); got != 0 {
		t.Fatalf("identical distance = %v, want 0", got)
	}
}

func TestHammingDistance(t *testing.T) {
	m := &Model{cfg: Config{Distance: Hamming}}
	if got := m.distance([]int32{0, 1}, []int32{1, 2}); got != 2 {
		t.Fatalf("hamming = %v, want 2", got)
	}
}

func TestPredictSeparable(t *testing.T) {
	var x [][]int32
	var y []int
	for i := 0; i < 20; i++ {
		if i%2 == 0 {
			x = append(x, []int32{0, 2})
			y = append(y, 0)
		} else {
			x = append(x, []int32{1, 3})
			y = append(y, 1)
		}
	}
	m, err := Train(x, y, 2, Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]int32{0, 2}); got != 0 {
		t.Fatalf("got %d, want 0", got)
	}
	if got := m.Predict([]int32{1, 3}); got != 1 {
		t.Fatalf("got %d, want 1", got)
	}
	// A partial match still lands on the nearer class.
	if got := m.Predict([]int32{0}); got != 0 {
		t.Fatalf("partial match got %d, want 0", got)
	}
}

func TestKLargerThanTrainingSet(t *testing.T) {
	x := [][]int32{{0}, {0}, {1}}
	y := []int{0, 0, 1}
	m, err := Train(x, y, 2, Config{K: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Majority of all rows is class 0.
	if got := m.Predict([]int32{1}); got != 0 {
		t.Fatalf("got %d, want 0 (global majority)", got)
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, nil, 2, Config{}); err == nil {
		t.Fatal("empty set should error")
	}
	if _, err := Train([][]int32{{0}}, []int{0, 1}, 2, Config{}); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := Train([][]int32{{0}}, []int{7}, 2, Config{}); err == nil {
		t.Fatal("bad label should error")
	}
	if _, err := Train([][]int32{{0}}, []int{0}, 0, Config{}); err == nil {
		t.Fatal("numClasses=0 should error")
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	// Two training rows equidistant from the query: prediction must be
	// stable across calls.
	x := [][]int32{{0}, {1}}
	y := []int{1, 0}
	m, err := Train(x, y, 2, Config{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	first := m.Predict([]int32{2})
	for i := 0; i < 5; i++ {
		if m.Predict([]int32{2}) != first {
			t.Fatal("non-deterministic prediction")
		}
	}
}

func TestPredictAll(t *testing.T) {
	x := [][]int32{{0}, {1}, {0}, {1}}
	y := []int{0, 1, 0, 1}
	m, _ := Train(x, y, 2, Config{K: 1})
	got := m.PredictAll(x)
	for i := range got {
		if got[i] != y[i] {
			t.Fatalf("PredictAll[%d] = %d, want %d", i, got[i], y[i])
		}
	}
}
