package knn

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// snapshot is the gob-encodable form of a Model (k-NN stores its
// training data).
type snapshot struct {
	X          [][]int32
	Y          []int
	NumClasses int
	Cfg        Config
}

// MarshalBinary encodes the model (encoding.BinaryMarshaler).
func (m *Model) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(snapshot{X: m.x, Y: m.y, NumClasses: m.numClasses, Cfg: m.cfg})
	if err != nil {
		return nil, fmt.Errorf("knn: marshal: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary restores a model encoded by MarshalBinary.
func (m *Model) UnmarshalBinary(data []byte) error {
	var s snapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&s); err != nil {
		return fmt.Errorf("knn: unmarshal: %w", err)
	}
	if len(s.X) == 0 || len(s.X) != len(s.Y) || s.NumClasses < 1 {
		return fmt.Errorf("knn: unmarshal: inconsistent snapshot")
	}
	m.x = s.X
	m.y = s.Y
	m.numClasses = s.NumClasses
	m.cfg = s.Cfg
	return nil
}
