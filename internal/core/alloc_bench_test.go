package core

import (
	"testing"
)

// Measured allocation baselines for Predict on the XOR pipeline. The
// per-row marginal cost (feature vector + item buffer + SVM scoring
// scratch) is what the hotalloc analyzer guards statically; the batch
// fixed cost covers the output slice, context, guard, and telemetry
// span set up once per call. Pinning them dynamically catches a
// regression that slips past the analyzer (e.g. through an unanalyzed
// dependency). Current baselines: 5 marginal, 40 fixed. Raise only
// with a reason in the diff.
const (
	predictRowAllocBudget   = 6
	predictBatchAllocBudget = 48
)

func fitXORPipeline(tb testing.TB) (*Pipeline, []int, int) {
	tb.Helper()
	d := xorDataset(80)
	rows := make([]int, d.NumRows())
	for i := range rows {
		rows[i] = i
	}
	p := NewPatFS(SVMLinear, 0.2)
	if err := p.Fit(d, rows); err != nil {
		tb.Fatal(err)
	}
	return p, rows, d.NumRows()
}

func TestPredictAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; budget holds only in non-race builds")
	}
	p, rows, n := fitXORPipeline(t)
	d := xorDataset(80)
	one := []int{0}
	single := testing.AllocsPerRun(200, func() {
		if _, err := p.Predict(d, one); err != nil {
			t.Fatal(err)
		}
	})
	batch := testing.AllocsPerRun(200, func() {
		if _, err := p.Predict(d, rows); err != nil {
			t.Fatal(err)
		}
	})
	marginal := (batch - single) / float64(n-1)
	if marginal > predictRowAllocBudget {
		t.Errorf("Predict allocates %.2f times per additional row, budget is %d", marginal, predictRowAllocBudget)
	}
	if single > predictBatchAllocBudget {
		t.Errorf("single-row Predict allocates %.1f times, batch budget is %d", single, predictBatchAllocBudget)
	}
}

func BenchmarkPredictAllocs(b *testing.B) {
	p, rows, _ := fitXORPipeline(b)
	d := xorDataset(80)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Predict(d, rows); err != nil {
			b.Fatal(err)
		}
	}
}
