package core

import (
	"testing"

	"dfpc/internal/modelobs"
)

// Measured allocation baselines for Predict on the XOR pipeline. The
// compiled predict path (rowCoder + featureVectorInto + matcher
// scratch + learner scorer) owns no per-row state, so the marginal
// cost of an additional row is exactly zero allocations — with drift
// tracking off or on. The batch fixed cost covers the output slice,
// batch predictor scratch, context, guard, and telemetry span set up
// once per call. Pinning these dynamically catches a regression that
// slips past the hotalloc analyzer (e.g. through an unanalyzed
// dependency). Raise only with a reason in the diff.
const (
	predictRowAllocBudget   = 0
	predictBatchAllocBudget = 48
	// Drift-on marginal: ObserveRow and the scorer's confidence path
	// reuse bound scratch, so drift tracking adds no per-row
	// allocations either.
	predictRowDriftAllocBudget = 0
)

func fitXORPipeline(tb testing.TB) (*Pipeline, []int, int) {
	tb.Helper()
	d := xorDataset(80)
	rows := make([]int, d.NumRows())
	for i := range rows {
		rows[i] = i
	}
	p := NewPatFS(SVMLinear, 0.2)
	if err := p.Fit(d, rows); err != nil {
		tb.Fatal(err)
	}
	return p, rows, d.NumRows()
}

func TestPredictAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; budget holds only in non-race builds")
	}
	p, rows, n := fitXORPipeline(t)
	d := xorDataset(80)
	one := []int{0}
	single := testing.AllocsPerRun(200, func() {
		if _, err := p.Predict(d, one); err != nil {
			t.Fatal(err)
		}
	})
	batch := testing.AllocsPerRun(200, func() {
		if _, err := p.Predict(d, rows); err != nil {
			t.Fatal(err)
		}
	})
	marginal := (batch - single) / float64(n-1)
	if marginal > predictRowAllocBudget {
		t.Errorf("Predict allocates %.2f times per additional row, budget is %d", marginal, predictRowAllocBudget)
	}
	if single > predictBatchAllocBudget {
		t.Errorf("single-row Predict allocates %.1f times, batch budget is %d", single, predictBatchAllocBudget)
	}
}

// TestPredictDriftAllocBudget pins the drift-enabled predict path: the
// tracker's sketch buffers are allocated once at Bind, so the marginal
// per-row cost over the drift-off baseline is only the learner's
// confidence scratch (PredictMargin's vote/score slices for SVM), never
// per-row tracker state.
func TestPredictDriftAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; budget holds only in non-race builds")
	}
	p, rows, n := fitXORPipeline(t)
	d := xorDataset(80)
	p.SetDriftTracker(modelobs.NewTracker(modelobs.TrackerConfig{WindowSize: 64}))
	one := []int{0}
	// Warm up so Bind's one-time sketch allocation is out of the loop.
	if _, err := p.Predict(d, one); err != nil {
		t.Fatal(err)
	}
	single := testing.AllocsPerRun(200, func() {
		if _, err := p.Predict(d, one); err != nil {
			t.Fatal(err)
		}
	})
	batch := testing.AllocsPerRun(200, func() {
		if _, err := p.Predict(d, rows); err != nil {
			t.Fatal(err)
		}
	})
	marginal := (batch - single) / float64(n-1)
	if marginal > predictRowDriftAllocBudget {
		t.Errorf("drift-on Predict allocates %.2f times per additional row, budget is %d", marginal, predictRowDriftAllocBudget)
	}
	if single > predictBatchAllocBudget {
		t.Errorf("drift-on single-row Predict allocates %.1f times, batch budget is %d", single, predictBatchAllocBudget)
	}
}

func BenchmarkPredictAllocs(b *testing.B) {
	p, rows, _ := fitXORPipeline(b)
	d := xorDataset(80)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Predict(d, rows); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictDriftOn is the drift-enabled twin of
// BenchmarkPredictAllocs; benchdiff compares the pair so a regression
// in the tracker's ObserveRow path (which should be allocation-free)
// shows up as a widening gap.
func BenchmarkPredictDriftOn(b *testing.B) {
	p, rows, _ := fitXORPipeline(b)
	d := xorDataset(80)
	p.SetDriftTracker(modelobs.NewTracker(modelobs.TrackerConfig{WindowSize: 64}))
	if _, err := p.Predict(d, rows); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Predict(d, rows); err != nil {
			b.Fatal(err)
		}
	}
}
