package core

import (
	"bytes"
	"errors"
	"testing"

	"dfpc/internal/datagen"
	"dfpc/internal/durable"
)

// savedModelBytes fits a small pipeline and returns its serialized
// form, seeding the fuzzer with a real envelope rather than noise.
func savedModelBytes(tb testing.TB) []byte {
	tb.Helper()
	d, err := datagen.ByName("labor", 1)
	if err != nil {
		tb.Fatal(err)
	}
	p := NewPatFS(SVMLinear, 0.3)
	if err := p.Fit(d, allRows(d.NumRows())); err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzLoadModel pins the fail-closed loading contract: no input —
// corrupt, truncated, bit-flipped, or adversarial — may panic Load or
// yield anything other than a valid pipeline or a sentinel error.
func FuzzLoadModel(f *testing.F) {
	model := savedModelBytes(f)
	f.Add(model)
	f.Add(model[:len(model)/2])
	flipped := bytes.Clone(model)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte("DFPA"))
	f.Add([]byte("not a model at all"))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Load(bytes.NewReader(data))
		if err == nil {
			if p == nil {
				t.Fatal("Load returned nil pipeline with nil error")
			}
			return
		}
		if !errors.Is(err, durable.ErrCorruptArtifact) && !errors.Is(err, durable.ErrVersionMismatch) {
			t.Fatalf("Load error is not a sentinel: %v", err)
		}
	})
}

// TestLoadModelBitFlips exhaustively flips one bit per byte of a real
// saved model and asserts every variant fails closed. The fuzzer
// explores further; this pins the floor deterministically.
func TestLoadModelBitFlips(t *testing.T) {
	model := savedModelBytes(t)
	stride := 1
	if testing.Short() {
		stride = 64
	}
	for i := 0; i < len(model); i += stride {
		mut := bytes.Clone(model)
		mut[i] ^= 0x01
		p, err := Load(bytes.NewReader(mut))
		if err == nil {
			// A flip in ignored padding cannot exist: every byte is
			// covered by magic, header, payload, or CRC.
			t.Fatalf("bit flip at byte %d loaded cleanly (pipeline %v)", i, p != nil)
		}
		if !errors.Is(err, durable.ErrCorruptArtifact) && !errors.Is(err, durable.ErrVersionMismatch) {
			t.Fatalf("bit flip at byte %d: non-sentinel error %v", i, err)
		}
	}
	for _, n := range []int{0, 1, 4, 5, len(model) / 2, len(model) - 1} {
		if _, err := Load(bytes.NewReader(model[:n])); err == nil {
			t.Fatalf("truncation to %d bytes loaded cleanly", n)
		} else if !errors.Is(err, durable.ErrCorruptArtifact) && !errors.Is(err, durable.ErrVersionMismatch) {
			t.Fatalf("truncation to %d bytes: non-sentinel error %v", n, err)
		}
	}
}
