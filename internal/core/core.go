// Package core implements the paper's frequent pattern-based
// classification framework (Section 3): (1) feature generation — closed
// frequent patterns mined per class partition at min_sup, (2) feature
// selection — MMRFS, and (3) model learning — SVM or C4.5 on the
// extended feature space I ∪ Fs. It also provides the baseline model
// families of Tables 1–2 (Item_All, Item_FS, Item_RBF, Pat_All,
// Pat_FS) behind one Pipeline type that plugs into eval.CrossValidate.
package core

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"time"

	"dfpc/internal/c45"
	"dfpc/internal/dataset"
	"dfpc/internal/discretize"
	"dfpc/internal/faults"
	"dfpc/internal/featsel"
	"dfpc/internal/guard"
	"dfpc/internal/knn"
	"dfpc/internal/measures"
	"dfpc/internal/mining"
	"dfpc/internal/modelobs"
	"dfpc/internal/nbayes"
	"dfpc/internal/obs"
	"dfpc/internal/parallel"
	"dfpc/internal/patmatch"
	"dfpc/internal/svm"
)

// Learner selects the model-learning algorithm of step (3).
type Learner int

const (
	// SVMLinear is LIBSVM-style C-SVC with a linear kernel (the main
	// learner of Table 1).
	SVMLinear Learner = iota
	// SVMRBF is C-SVC with an RBF kernel (the Item_RBF baseline).
	SVMRBF
	// C45Tree is the C4.5 decision tree (Table 2).
	C45Tree
	// NaiveBayes is a Bernoulli naive Bayes learner (not in the paper's
	// tables; demonstrates the framework's learner-agnosticism).
	NaiveBayes
	// KNN is a k-nearest-neighbour learner with Jaccard distance (same
	// purpose as NaiveBayes).
	KNN
)

func (l Learner) String() string {
	switch l {
	case SVMLinear:
		return "svm-linear"
	case SVMRBF:
		return "svm-rbf"
	case C45Tree:
		return "c4.5"
	case NaiveBayes:
		return "naive-bayes"
	case KNN:
		return "knn"
	default:
		return fmt.Sprintf("Learner(%d)", int(l))
	}
}

// Config configures a Pipeline.
type Config struct {
	// UsePatterns enables feature generation: closed frequent patterns
	// are mined per class and added to the feature space.
	UsePatterns bool
	// SelectPatterns applies MMRFS to the mined pattern pool; the
	// feature space becomes I ∪ Fs (Pat_FS). Without it the space is
	// I ∪ F (Pat_All).
	SelectPatterns bool
	// SelectItems applies MMRFS to the single items and restricts the
	// feature space to the selected items (Item_FS). Mutually exclusive
	// with UsePatterns.
	SelectItems bool

	// MinSupport is the relative min_sup θ0 for per-class mining. When
	// <= 0, it is derived by the paper's Section 3.2 strategy: the
	// largest θ whose information-gain upper bound stays below IG0.
	MinSupport float64
	// IG0 is the information-gain filter threshold used to derive
	// min_sup when MinSupport <= 0 (default 0.03).
	IG0 float64
	// MaxPatternLen caps mined pattern length (default 6; 0 keeps the
	// default, negative means unlimited).
	MaxPatternLen int
	// MaxPatterns aborts mining past this many patterns, surfacing
	// mining.ErrPatternBudget (default 2,000,000).
	MaxPatterns int

	// Coverage is MMRFS's δ (default 3).
	Coverage int
	// Relevance is MMRFS's S measure (default information gain).
	Relevance featsel.Relevance

	// Learner picks the classifier (default SVMLinear).
	Learner Learner
	// SVMC is the soft-margin penalty (default 1).
	SVMC float64
	// CGrid, when non-empty, enables inner model selection for SVM
	// learners: Fit cross-validates over these C values on the training
	// rows (3 inner folds) and keeps the best — the paper's "10-fold
	// cross validation on each training set, pick the best model" step,
	// at reduced inner fold count for tractability.
	CGrid []float64
	// RBFGamma is γ for SVMRBF; <= 0 means 1/numFeatures.
	RBFGamma float64
	// Probability calibrates Platt sigmoids during Fit (SVM learners
	// only) so PredictProb can be used.
	Probability bool
	// Tree configures C45Tree.
	Tree c45.Config

	// Disc configures discretization of numeric attributes (default
	// entropy-MDL).
	Disc discretize.Options

	// StageTimeout bounds each pipeline stage (mining, selection,
	// learning) individually; a stage running past it aborts with an
	// error satisfying errors.Is(err, guard.ErrDeadline). 0 = unbounded.
	// Whole-run bounds come from the context passed to FitContext.
	StageTimeout time.Duration
	// MemLimit is a soft heap-allocation ceiling in bytes enforced
	// during mining (the stage with unbounded intermediate state);
	// exceeding it aborts with guard.ErrMemoryLimit. 0 = none.
	MemLimit uint64
	// OnBudget selects what happens when mining trips MaxPatterns:
	// FailOnBudget (the default) surfaces mining.ErrPatternBudget;
	// DegradeOnBudget escalates min_sup geometrically and re-mines,
	// recording each escalation in FitStats.Warnings.
	OnBudget BudgetPolicy
	// BudgetRetries caps min_sup escalations under DegradeOnBudget
	// (0 = the mining package default, 4).
	BudgetRetries int
	// BudgetBackoff is the min_sup multiplier per escalation (0 = the
	// mining package default, 2).
	BudgetBackoff float64

	// Workers bounds the intra-fit parallelism: per-class mining, the
	// MMRFS gain scan, and the one-vs-one SVM subproblems all fan out
	// under this one knob (0 = GOMAXPROCS, 1 — the zero value's
	// effective meaning — = sequential). Every parallel region merges
	// deterministically, so the fitted model is identical at any worker
	// count. Like Log, the field is gob-transparent: saved models carry
	// no worker count.
	Workers parallel.Workers

	// Obs, when non-nil, receives stage spans and pipeline counters for
	// every Fit/Predict call (see internal/obs). Nil — the default —
	// disables instrumentation at zero cost. Observers are never
	// serialized with saved models.
	Obs *obs.Observer
	// Log, when it wraps a non-nil logger, receives structured records
	// for every Fit call: stage-scoped DEBUG detail from mining,
	// selection, and learning, and a WARN per degradation (min_sup
	// escalations, non-converged SMO solves). The zero handle — the
	// default — disables logging at zero cost. Loggers are never
	// serialized with saved models (the handle gob-encodes as nothing).
	Log obs.LogHandle
	// Faults, when non-nil, enables deterministic fault injection at
	// the pipeline's stage boundaries and inside mining, selection, and
	// learning (see internal/faults). Nil — the default — is free, and
	// registries are never serialized with saved models (the type
	// gob-encodes as nothing).
	Faults *faults.Registry
	// Drift, when non-nil, streams every Predict call's per-row
	// outcome (class, confidence, fired patterns) into the
	// model-quality drift tracker, scored against the baseline the
	// pipeline computed at Fit time (see internal/modelobs). Nil —
	// the default — keeps the Predict hot path on its allocation
	// baseline. CV clones share the pointer, so a cross-validated run
	// reports one drift stream; trackers are never serialized with
	// saved models (the type gob-encodes as nothing).
	Drift *modelobs.Tracker
}

// BudgetPolicy selects the response to mining's pattern-budget trip.
type BudgetPolicy int

const (
	// FailOnBudget returns mining.ErrPatternBudget from Fit (default).
	FailOnBudget BudgetPolicy = iota
	// DegradeOnBudget escalates min_sup and re-mines, degrading the
	// feature pool instead of failing; each escalation is recorded as a
	// Warning on FitStats.
	DegradeOnBudget
)

func (p BudgetPolicy) String() string {
	switch p {
	case FailOnBudget:
		return "fail"
	case DegradeOnBudget:
		return "degrade"
	default:
		return fmt.Sprintf("BudgetPolicy(%d)", int(p))
	}
}

// Warning records a non-fatal degradation that happened during Fit —
// a min_sup escalation, a non-converged SMO solve — so callers can
// distinguish clean results from degraded ones without failing the run.
type Warning struct {
	// Stage names the pipeline stage that degraded ("mine", "learn").
	Stage string
	// Message is a human-readable description of the degradation.
	Message string
}

func (w Warning) String() string { return w.Stage + ": " + w.Message }

func (c Config) withDefaults() Config {
	if c.IG0 <= 0 {
		c.IG0 = 0.03
	}
	if c.MaxPatternLen == 0 {
		c.MaxPatternLen = 6
	} else if c.MaxPatternLen < 0 {
		c.MaxPatternLen = 0
	}
	if c.MaxPatterns <= 0 {
		c.MaxPatterns = 2_000_000
	}
	if c.Coverage <= 0 {
		c.Coverage = 3
	}
	if c.SVMC <= 0 {
		c.SVMC = 1
	}
	return c
}

// predictor is the common contract every learner's trained model
// satisfies.
type predictor interface {
	Predict(x []int32) int
}

// Pipeline is one configured train/predict pipeline. It implements
// eval.Pipeline. The zero value is unusable; construct with New or one
// of the model-family helpers.
type Pipeline struct {
	cfg Config

	// fitted state
	disc     *discretize.Discretizer
	space    *dataset.Space
	numItems int
	patterns []mining.Pattern // selected pattern features, id = numItems + index
	matcher  *patmatch.Matcher // compiled trie over p.patterns; nil iff no patterns
	model    predictor
	itemKept []bool // non-nil for Item_FS: which items stay in the space
	report   []FeatureReport
	baseline *modelobs.Baseline // training reference for drift scoring

	// Stats from the last Fit, for reports and the scalability tables.
	Stats FitStats
}

// FitStats reports feature-generation/selection outcomes of a Fit call.
type FitStats struct {
	MinSupport   float64 // the relative min_sup actually used
	MinedCount   int     // |F| before selection
	FeatureCount int     // patterns (or items for Item_FS) after selection
	SelectedC    float64 // SVM C chosen by inner model selection (0 = none)
	// Warnings lists the degradations of this fit (empty for a clean
	// run): min_sup escalations under DegradeOnBudget, non-converged
	// SMO solves. A model with warnings is usable but not pristine.
	Warnings []Warning
	// SelectionAudit is MMRFS's per-iteration decision trail — which
	// candidate each iteration picked, its relevance/redundancy/gain,
	// and the accept-or-drop outcome. Recorded only when an observer
	// was installed during Fit and a selection stage ran; the greedy
	// loop is sequential, so the trail is identical at any worker
	// count.
	SelectionAudit []featsel.AuditEntry
}

// warn appends a degradation record to the current fit's stats and
// mirrors it onto the observer and the structured log.
func (p *Pipeline) warn(stage, msg string) {
	p.Stats.Warnings = append(p.Stats.Warnings, Warning{Stage: stage, Message: msg})
	p.cfg.Obs.Counter("core.warnings").Inc()
	if p.cfg.Log.Logger != nil {
		p.cfg.Log.Warn("pipeline degradation",
			slog.String("stage", stage), slog.String("detail", msg))
	}
}

// stageDeadline resolves the per-stage wall-clock bound.
func (p *Pipeline) stageDeadline() time.Time {
	if p.cfg.StageTimeout <= 0 {
		return time.Time{}
	}
	//vet:ignore nondeterm wall-clock deadline arming; affects only cancellation, never reported results
	return time.Now().Add(p.cfg.StageTimeout)
}

// FeatureReport describes one selected pattern feature for
// interpretability: the human-readable conjunction, its coverage and
// discriminative measures, and the class it votes for.
type FeatureReport struct {
	Name          string // e.g. "color=red ∧ size=(2.5-5]"
	Items         []int32
	Length        int
	Support       int
	RelSupport    float64
	InfoGain      float64
	Fisher        float64
	MajorityClass string
	Confidence    float64 // P(majority class | pattern present)
}

// New builds a pipeline from a config.
func New(cfg Config) (*Pipeline, error) {
	if cfg.UsePatterns && cfg.SelectItems {
		return nil, errors.New("core: SelectItems and UsePatterns are mutually exclusive")
	}
	return &Pipeline{cfg: cfg.withDefaults()}, nil
}

// The model families of Tables 1–2.

// NewItemAll classifies on all single features.
func NewItemAll(l Learner) *Pipeline {
	p, _ := New(Config{Learner: l})
	return p
}

// NewItemFS classifies on MMRFS-selected single features.
func NewItemFS(l Learner) *Pipeline {
	p, _ := New(Config{Learner: l, SelectItems: true})
	return p
}

// NewItemRBF classifies on all single features with an RBF-kernel SVM.
func NewItemRBF(gamma float64) *Pipeline {
	p, _ := New(Config{Learner: SVMRBF, RBFGamma: gamma})
	return p
}

// NewPatAll classifies on I ∪ F: all single features plus all closed
// frequent patterns at the given relative min_sup (<= 0 derives it from
// the IG-threshold strategy).
func NewPatAll(l Learner, minSup float64) *Pipeline {
	p, _ := New(Config{Learner: l, UsePatterns: true, MinSupport: minSup})
	return p
}

// NewPatFS classifies on I ∪ Fs: all single features plus the
// MMRFS-selected closed frequent patterns.
func NewPatFS(l Learner, minSup float64) *Pipeline {
	p, _ := New(Config{Learner: l, UsePatterns: true, SelectPatterns: true, MinSupport: minSup})
	return p
}

// resolveMinSupport applies the Section 3.2 strategy when no explicit
// min_sup is configured: compute θ* = argmax_θ (IGub(θ) ≤ IG0) from
// the training class distribution.
func (p *Pipeline) resolveMinSupport(b *dataset.Binary) (float64, error) {
	if p.cfg.MinSupport > 0 {
		return p.cfg.MinSupport, nil
	}
	n := b.NumRows()
	counts := b.ClassCounts()
	var sAbs int
	var err error
	if b.NumClasses() == 2 {
		pos := float64(counts[1]) / float64(n)
		// The bound is symmetric in p ↔ 1−p; use the minority prior.
		if pos > 0.5 {
			pos = 1 - pos
		}
		sAbs, err = measures.MinSupportForIG(p.cfg.IG0, pos, n)
	} else {
		priors := make([]float64, len(counts))
		for c, cnt := range counts {
			priors[c] = float64(cnt) / float64(n)
		}
		sAbs, err = measures.MinSupportForIGMulti(p.cfg.IG0, priors, n)
	}
	if err != nil {
		return 0, err
	}
	// Mining keeps supports strictly above the skippable region.
	rel := float64(sAbs+1) / float64(n)
	if rel > 0.5 {
		rel = 0.5 // never demand majority support; keep the pool usable
	}
	if rel <= 0 {
		rel = 1 / float64(n)
	}
	return rel, nil
}

// Fit trains the pipeline on the given rows of d. It is equivalent to
// FitContext with context.Background() and costs nothing extra.
func (p *Pipeline) Fit(d *dataset.Dataset, rows []int) error {
	return p.FitContext(context.Background(), d, rows)
}

// FitContext trains the pipeline on the given rows of d under ctx:
// cancellation or a context deadline aborts mining, selection, and
// learning cooperatively with an error satisfying
// errors.Is(err, guard.ErrCanceled) or guard.ErrDeadline. Per-stage
// bounds come from Config.StageTimeout and Config.MemLimit. A
// background context with no configured limits takes the same zero-cost
// path as Fit.
func (p *Pipeline) FitContext(ctx context.Context, d *dataset.Dataset, rows []int) error {
	if len(rows) == 0 {
		return errors.New("core: empty training set")
	}
	if err := guard.New(ctx, guard.Limits{}).CheckNow(); err != nil {
		return err
	}
	if err := p.cfg.Faults.Hit(faults.CoreFitStart); err != nil {
		return fmt.Errorf("core: fit: %w", err)
	}
	o := p.cfg.Obs
	o.Gauge("parallel.workers").Set(float64(p.cfg.Workers.Resolve()))
	fit := o.Start("fit").Attr("rows", len(rows)).Attr("learner", p.cfg.Learner)
	defer fit.End()
	train := d.Subset(rows)

	sp := o.Start("discretize")
	var err error
	p.disc, err = discretize.Fit(train, p.cfg.Disc)
	if err != nil {
		sp.End()
		return fmt.Errorf("core: discretize: %w", err)
	}
	cat, err := p.disc.Apply(train)
	sp.End()
	if err != nil {
		return fmt.Errorf("core: discretize apply: %w", err)
	}
	sp = o.Start("encode")
	b, err := dataset.Encode(cat)
	if err != nil {
		sp.End()
		return fmt.Errorf("core: encode: %w", err)
	}
	if o.Enabled() {
		mapped := 0
		for _, r := range b.Rows {
			mapped += len(r)
		}
		o.Counter("encode.items_mapped").Add(int64(mapped))
		sp.Attr("items", b.NumItems()).Attr("rows", b.NumRows())
	}
	sp.End()
	p.space = b.Space
	p.numItems = b.NumItems()
	p.patterns = nil
	p.matcher = nil
	p.itemKept = nil
	p.report = nil
	p.baseline = nil
	p.Stats = FitStats{}

	switch {
	case p.cfg.SelectItems:
		if err := p.selectItems(ctx, b); err != nil {
			return err
		}
	case p.cfg.UsePatterns:
		if err := p.generatePatterns(ctx, b); err != nil {
			return err
		}
	}
	if err := p.compileMatcher(); err != nil {
		return err
	}
	p.buildReport(b)

	if len(p.cfg.CGrid) > 0 && (p.cfg.Learner == SVMLinear || p.cfg.Learner == SVMRBF) {
		ms := o.Start("model-select").Attr("grid", len(p.cfg.CGrid))
		c, err := p.selectSVMC(ctx, d, rows)
		if err != nil {
			ms.End()
			return fmt.Errorf("core: model selection: %w", err)
		}
		ms.Attr("C", c).End()
		o.Gauge("core.selected_c").Set(c)
		p.Stats.SelectedC = c
	}

	sp = o.Start("featurize").Attr("rows", b.NumRows())
	x := make([][]int32, b.NumRows())
	var ms patmatch.Scratch
	ms.Grow(p.matcher)
	for i := range x {
		row := b.Rows[i]
		x[i] = p.featureVectorInto(make([]int32, 0, len(row)+len(p.patterns)), row, &ms)
	}
	if o.Enabled() {
		// Pattern-feature IDs sit above the item space, sorted to the
		// tail of each row; count how many pattern features matched.
		hits := 0
		lim := int32(p.numItems)
		for _, row := range x {
			for j := len(row) - 1; j >= 0 && row[j] >= lim; j-- {
				hits++
			}
		}
		o.Counter("featurize.pattern_hits").Add(int64(hits))
	}
	sp.End()

	ls := o.Start("learn").Attr("learner", p.cfg.Learner).
		Attr("features", p.numItems+len(p.patterns))
	err = p.learn(ctx, x, b.Labels, b.NumClasses())
	ls.End()
	if err == nil {
		p.computeBaseline(b, x)
	}
	if err == nil && p.cfg.Log.Logger != nil {
		p.cfg.Log.Debug("fit done",
			slog.String("learner", p.cfg.Learner.String()),
			slog.Int("rows", len(rows)),
			slog.Int("items", p.numItems),
			slog.Int("pattern_features", len(p.patterns)),
			slog.Int("warnings", len(p.Stats.Warnings)))
	}
	return err
}

// buildReport records the interpretability report for the selected
// pattern features.
func (p *Pipeline) buildReport(b *dataset.Binary) {
	if len(p.patterns) == 0 {
		return
	}
	n := float64(b.NumRows())
	p.report = make([]FeatureReport, 0, len(p.patterns))
	for _, pt := range p.patterns {
		cover := b.Cover(pt.Items)
		sup := cover.Count()
		best, bestCount := 0, 0
		for c, mask := range b.ClassMasks {
			if hits := cover.AndCount(mask); hits > bestCount {
				best, bestCount = c, hits
			}
		}
		conf := 0.0
		if sup > 0 {
			conf = float64(bestCount) / float64(sup)
		}
		name := ""
		for j, it := range pt.Items {
			if j > 0 {
				name += " ∧ "
			}
			name += b.Space.ItemName(int(it))
		}
		p.report = append(p.report, FeatureReport{
			Name:          name,
			Items:         pt.Items,
			Length:        pt.Len(),
			Support:       sup,
			RelSupport:    float64(sup) / n,
			InfoGain:      measures.InfoGain(cover, b.ClassMasks),
			Fisher:        measures.FisherScore(cover, b.ClassMasks),
			MajorityClass: b.Classes[best],
			Confidence:    conf,
		})
	}
}

// Explain returns the interpretability report for the pattern features
// selected by the last Fit (nil when the pipeline uses no patterns).
func (p *Pipeline) Explain() []FeatureReport {
	return p.report
}

// CloneForCV returns an independent unfitted pipeline with this one's
// configuration, implementing eval.CVCloner so the CV harness can fit
// concurrent folds on separate instances. The clone shares the config's
// pointer fields (observer, logger, context) until the harness installs
// per-fold replacements via SetObserver; fitted state is not copied.
func (p *Pipeline) CloneForCV() any { return &Pipeline{cfg: p.cfg} }

// SetObserver installs (or, with nil, removes) the observer that
// receives this pipeline's stage spans and counters. Equivalent to
// configuring Config.Obs at construction time.
func (p *Pipeline) SetObserver(o *obs.Observer) { p.cfg.Obs = o }

// Observer returns the currently installed observer (nil when
// instrumentation is off).
func (p *Pipeline) Observer() *obs.Observer { return p.cfg.Obs }

// SetFaults installs (or, with nil, removes) the fault-injection
// registry consulted at this pipeline's stage boundaries. Equivalent
// to configuring Config.Faults at construction time.
func (p *Pipeline) SetFaults(r *faults.Registry) { p.cfg.Faults = r }

// SetDriftTracker installs (or, with nil, removes) the model-quality
// drift tracker every subsequent Predict call streams into. The
// tracker binds to the pipeline's fit-time baseline on the first
// tracked Predict.
func (p *Pipeline) SetDriftTracker(t *modelobs.Tracker) { p.cfg.Drift = t }

// DriftTracker returns the installed drift tracker (nil = disabled).
func (p *Pipeline) DriftTracker() *modelobs.Tracker { return p.cfg.Drift }

// Baseline returns the training reference distribution computed by
// the last Fit, or nil before Fit and for models loaded from
// pre-baseline (v1) artifacts.
func (p *Pipeline) Baseline() *modelobs.Baseline { return p.baseline }

// SetLogger installs (or, with nil, removes) the structured logger that
// receives this pipeline's stage records and degradation warnings.
// Equivalent to configuring Config.Log at construction time.
func (p *Pipeline) SetLogger(l *slog.Logger) { p.cfg.Log = obs.Log(l) }

// Logger returns the currently installed structured logger (nil when
// logging is off).
func (p *Pipeline) Logger() *slog.Logger { return p.cfg.Log.Logger }

// selectSVMC runs a small inner cross-validation over cfg.CGrid on the
// training rows and returns the best C, which it also installs in the
// pipeline's configuration for the final fit.
func (p *Pipeline) selectSVMC(ctx context.Context, d *dataset.Dataset, rows []int) (float64, error) {
	labels := make([]int, len(rows))
	for i, r := range rows {
		labels[i] = d.Labels[r]
	}
	folds, err := dataset.StratifiedKFold(labels, d.NumClasses(), 3, 1)
	if err != nil {
		// Too little data for an inner split: keep the configured C.
		return p.cfg.SVMC, nil
	}
	bestC, bestAcc := p.cfg.SVMC, -1.0
	for _, c := range p.cfg.CGrid {
		if c <= 0 {
			return 0, fmt.Errorf("core: non-positive C %v in grid", c)
		}
		cfg := p.cfg
		cfg.CGrid = nil
		cfg.SVMC = c
		// Inner CV fits are bookkeeping, not pipeline stages: detach the
		// observer and logger so they neither nest spans nor double-count
		// counters nor flood the log with inner-fold detail.
		cfg.Obs = nil
		cfg.Log = obs.LogHandle{}
		inner := &Pipeline{cfg: cfg}
		correct, total := 0, 0
		for f := range folds {
			trIdx, teIdx := dataset.TrainTestFromFolds(folds, f)
			tr := make([]int, len(trIdx))
			for i, idx := range trIdx {
				tr[i] = rows[idx]
			}
			te := make([]int, len(teIdx))
			for i, idx := range teIdx {
				te[i] = rows[idx]
			}
			if err := inner.FitContext(ctx, d, tr); err != nil {
				return 0, err
			}
			pred, err := inner.PredictContext(ctx, d, te)
			if err != nil {
				return 0, err
			}
			for i, r := range te {
				if pred[i] == d.Labels[r] {
					correct++
				}
				total++
			}
		}
		if total > 0 {
			if acc := float64(correct) / float64(total); acc > bestAcc {
				bestAcc, bestC = acc, c
			}
		}
	}
	p.cfg.SVMC = bestC
	return bestC, nil
}

// selectItems runs MMRFS over the single items (Item_FS).
func (p *Pipeline) selectItems(ctx context.Context, b *dataset.Binary) error {
	if err := p.cfg.Faults.Hit(faults.CoreSelect); err != nil {
		return fmt.Errorf("core: select: %w", err)
	}
	o := p.cfg.Obs
	sp := o.Start("select-items").Attr("items", b.NumItems())
	defer sp.End()
	cands := make([]featsel.Candidate, b.NumItems())
	for i := range cands {
		cands[i] = featsel.Candidate{Items: []int32{int32(i)}, Cover: b.Columns[i]}
	}
	res, err := featsel.MMRFS(cands, b.ClassMasks, b.Labels, featsel.Options{
		Relevance: p.cfg.Relevance,
		Coverage:  p.cfg.Coverage,
		Ctx:       ctx,
		Deadline:  p.stageDeadline(),
		Obs:       o,
		Log:       obs.StageLogger(p.cfg.Log.Logger, "select-items"),
		Workers:   p.cfg.Workers,
		Faults:    p.cfg.Faults,
	})
	if err != nil {
		return fmt.Errorf("core: item MMRFS: %w", err)
	}
	p.itemKept = make([]bool, b.NumItems())
	for _, idx := range res.Selected {
		p.itemKept[idx] = true
	}
	p.Stats.MinedCount = b.NumItems()
	p.Stats.FeatureCount = len(res.Selected)
	p.Stats.SelectionAudit = res.Audit
	o.Counter("core.features_selected").Add(int64(len(res.Selected)))
	return nil
}

// generatePatterns mines closed patterns per class and, for Pat_FS,
// applies MMRFS. Under DegradeOnBudget a pattern-budget trip escalates
// min_sup instead of failing; each escalation lands in Stats.Warnings.
func (p *Pipeline) generatePatterns(ctx context.Context, b *dataset.Binary) error {
	if err := p.cfg.Faults.Hit(faults.CoreMine); err != nil {
		return fmt.Errorf("core: mine: %w", err)
	}
	o := p.cfg.Obs
	sp := o.Start("mine")
	rs := o.Start("resolve-minsup")
	minSup, err := p.resolveMinSupport(b)
	rs.End()
	if err != nil {
		sp.End()
		return err
	}
	p.Stats.MinSupport = minSup
	o.Gauge("core.min_sup").Set(minSup)
	sp.Attr("min_sup", minSup)
	mopt := mining.PerClassOptions{
		MinSupport:  minSup,
		Closed:      true,
		MaxPatterns: p.cfg.MaxPatterns,
		MaxLen:      p.cfg.MaxPatternLen,
		MinLen:      2, // single items are already in the space
		Ctx:         ctx,
		Deadline:    p.stageDeadline(),
		MemLimit:    p.cfg.MemLimit,
		Obs:         o,
		Log:         obs.StageLogger(p.cfg.Log.Logger, "mine"),
		Workers:     p.cfg.Workers,
		Faults:      p.cfg.Faults,
	}
	var mined []mining.Pattern
	if p.cfg.OnBudget == DegradeOnBudget {
		var degs []mining.Degradation
		var usedSup float64
		mined, degs, usedSup, err = mining.MinePerClassAdaptive(b, mopt, mining.Backoff{
			Factor:     p.cfg.BudgetBackoff,
			MaxRetries: p.cfg.BudgetRetries,
		})
		for _, d := range degs {
			p.warn("mine", d.String())
		}
		if len(degs) > 0 {
			p.Stats.MinSupport = usedSup
			o.Gauge("core.min_sup").Set(usedSup)
			sp.Attr("degraded_min_sup", usedSup).Attr("degradations", len(degs))
		}
	} else {
		mined, err = mining.MinePerClass(b, mopt)
	}
	sp.Attr("patterns", len(mined)).End()
	if err != nil {
		return fmt.Errorf("core: mining at min_sup=%v: %w", p.Stats.MinSupport, err)
	}
	p.Stats.MinedCount = len(mined)
	o.Counter("core.patterns_mined").Add(int64(len(mined)))

	if o.Enabled() && len(mined) > 0 {
		// Search-space quality pass (introspection only): realized IG of
		// every mined pattern feeds the by-support/by-length histograms
		// and the IGub bound-tightness stats, reproducing the paper's
		// Figures 1–3 characterization from this run's own pool.
		qs := o.Start("score-space").Attr("patterns", len(mined))
		rec := measures.NewQualityRecorder(o, b.ClassMasks)
		for _, pt := range mined {
			cover := b.Cover(pt.Items)
			rec.Observe(measures.InfoGain(cover, b.ClassMasks), cover.Count(), pt.Len())
		}
		qs.End()
	}

	if !p.cfg.SelectPatterns {
		p.patterns = mined
		p.Stats.FeatureCount = len(mined)
		o.Counter("core.features_selected").Add(int64(len(mined)))
		return nil
	}
	if err := p.cfg.Faults.Hit(faults.CoreSelect); err != nil {
		return fmt.Errorf("core: select: %w", err)
	}
	sp = o.Start("select").Attr("candidates", len(mined))
	cands := make([]featsel.Candidate, len(mined))
	for i, pt := range mined {
		cands[i] = featsel.Candidate{Items: pt.Items, Cover: b.Cover(pt.Items)}
	}
	res, err := featsel.MMRFS(cands, b.ClassMasks, b.Labels, featsel.Options{
		Relevance: p.cfg.Relevance,
		Coverage:  p.cfg.Coverage,
		Ctx:       ctx,
		Deadline:  p.stageDeadline(),
		Obs:       o,
		Log:       obs.StageLogger(p.cfg.Log.Logger, "select"),
		Workers:   p.cfg.Workers,
		Faults:    p.cfg.Faults,
	})
	if err != nil {
		sp.End()
		return fmt.Errorf("core: pattern MMRFS: %w", err)
	}
	p.Stats.SelectionAudit = res.Audit
	p.patterns = make([]mining.Pattern, len(res.Selected))
	for i, idx := range res.Selected {
		p.patterns[i] = mined[idx]
	}
	// Keep pattern feature IDs deterministic w.r.t. the mined order
	// rather than selection order.
	mining.SortPatterns(p.patterns)
	p.Stats.FeatureCount = len(p.patterns)
	o.Counter("core.features_selected").Add(int64(len(p.patterns)))
	sp.Attr("selected", len(p.patterns)).End()
	return nil
}

// compileMatcher folds the selected patterns into the shared matching
// trie the predict path walks (see internal/patmatch). Runs at the
// tail of feature generation in every Fit; pattern-free pipelines keep
// a nil matcher. Compilation is deterministic, so the matcher's bytes
// are part of the model's worker-count-invariant surface.
func (p *Pipeline) compileMatcher() error {
	if len(p.patterns) == 0 {
		return nil
	}
	if err := p.cfg.Faults.Hit(faults.PatmatchCompile); err != nil {
		return fmt.Errorf("core: compile matcher: %w", err)
	}
	o := p.cfg.Obs
	sp := o.Start("compile-matcher").Attr("patterns", len(p.patterns))
	items := make([][]int32, len(p.patterns))
	for i := range p.patterns {
		items[i] = p.patterns[i].Items
	}
	p.matcher = patmatch.Compile(items)
	if o.Enabled() {
		o.Counter("patmatch.nodes").Add(int64(p.matcher.NumNodes()))
		o.Counter("patmatch.patterns").Add(int64(p.matcher.NumPatterns()))
		o.Gauge("patmatch.max_depth").Set(float64(p.matcher.MaxDepth()))
		sp.Attr("nodes", p.matcher.NumNodes()).Attr("depth", p.matcher.MaxDepth())
	}
	sp.End()
	return nil
}

// Matcher returns the compiled pattern matcher of the last Fit (nil
// for pattern-free pipelines). Exposed for the determinism suite and
// serving diagnostics; callers must treat it as read-only.
func (p *Pipeline) Matcher() *patmatch.Matcher { return p.matcher }

// featureVectorInto maps a transaction (sorted item IDs) into the
// fitted feature space, appending to dst: kept items followed by
// matched pattern features with IDs numItems+j, ascending. All
// per-call state lives in dst and the caller's matcher scratch, so a
// presized caller pays zero allocations per row.
func (p *Pipeline) featureVectorInto(dst []int32, tx []int32, ms *patmatch.Scratch) []int32 {
	if p.itemKept != nil {
		for _, it := range tx {
			if p.itemKept[it] {
				dst = append(dst, it)
			}
		}
	} else {
		dst = append(dst, tx...)
	}
	if p.matcher != nil {
		dst = p.matcher.MatchAppend(dst, tx, int32(p.numItems), ms)
	}
	return dst
}

// featureVectorNaive is the reference implementation of the feature
// mapping: an O(|patterns|·|tx|) per-pattern subset test with no
// shared structure. It exists solely as the differential-test oracle
// for the compiled matcher path — production code must go through
// featureVectorInto.
func (p *Pipeline) featureVectorNaive(tx []int32) []int32 {
	out := make([]int32, 0, len(tx)+len(p.patterns))
	if p.itemKept != nil {
		for _, it := range tx {
			if p.itemKept[it] {
				out = append(out, it)
			}
		}
	} else {
		out = append(out, tx...)
	}
	for j := range p.patterns {
		if containsAll(tx, p.patterns[j].Items) {
			out = append(out, int32(p.numItems+j))
		}
	}
	return out
}

// containsAll reports whether sorted transaction tx contains every item
// of sorted pattern items.
func containsAll(tx, items []int32) bool {
	i := 0
	for _, it := range items {
		for i < len(tx) && tx[i] < it {
			i++
		}
		if i >= len(tx) || tx[i] != it {
			return false
		}
		i++
	}
	return true
}

// PredictProb returns per-class probability estimates for the given
// rows. Supported for SVM learners fitted with Probability enabled
// (WithProbability); other learners return an error.
func (p *Pipeline) PredictProb(d *dataset.Dataset, rows []int) ([][]float64, error) {
	if p.model == nil {
		return nil, errors.New("core: PredictProb before Fit")
	}
	sm, ok := p.model.(*svm.Model)
	if !ok {
		return nil, fmt.Errorf("core: PredictProb unsupported for learner %v", p.cfg.Learner)
	}
	bp, err := p.NewBatchPredictor()
	if err != nil {
		return nil, err
	}
	if err := bp.coder.checkSchema(d); err != nil {
		return nil, err
	}
	out := make([][]float64, len(rows))
	for i, r := range rows {
		fv, err := bp.featureVector(d.Rows[r], r)
		if err != nil {
			return nil, err
		}
		probs, err := sm.PredictProb(fv)
		if err != nil {
			return nil, err
		}
		out[i] = probs
	}
	return out, nil
}

// learn trains the configured learner on the transformed rows.
func (p *Pipeline) learn(ctx context.Context, x [][]int32, y []int, numClasses int) error {
	if err := p.cfg.Faults.Hit(faults.CoreLearn); err != nil {
		return fmt.Errorf("core: learn: %w", err)
	}
	numFeatures := p.numItems + len(p.patterns)
	deadline := p.stageDeadline()
	var (
		m   predictor
		err error
	)
	switch p.cfg.Learner {
	case C45Tree:
		tree := p.cfg.Tree
		tree.Obs = p.cfg.Obs
		tree.Log = obs.Log(obs.StageLogger(p.cfg.Log.Logger, "learn"))
		tree.Ctx = ctx
		tree.Deadline = deadline
		tree.Faults = p.cfg.Faults
		m, err = c45.Train(x, y, numClasses, tree)
	case NaiveBayes:
		m, err = nbayes.Train(x, y, numClasses, numFeatures, nbayes.Config{})
	case KNN:
		m, err = knn.Train(x, y, numClasses, knn.Config{})
	case SVMRBF:
		m, err = svm.Train(x, y, numClasses, svm.Config{
			C:           p.cfg.SVMC,
			Kernel:      svm.Kernel{Type: svm.RBF, Gamma: p.cfg.RBFGamma},
			NumFeatures: numFeatures,
			Ctx:         ctx,
			Deadline:    deadline,
			Obs:         p.cfg.Obs,
			Log:         obs.StageLogger(p.cfg.Log.Logger, "learn"),
			Workers:     p.cfg.Workers,
			Faults:      p.cfg.Faults,
		})
	default:
		m, err = svm.Train(x, y, numClasses, svm.Config{
			C:           p.cfg.SVMC,
			NumFeatures: numFeatures,
			Ctx:         ctx,
			Deadline:    deadline,
			Obs:         p.cfg.Obs,
			Log:         obs.StageLogger(p.cfg.Log.Logger, "learn"),
			Workers:     p.cfg.Workers,
			Faults:      p.cfg.Faults,
		})
	}
	if err != nil {
		return fmt.Errorf("core: %v: %w", p.cfg.Learner, err)
	}
	if sm, ok := m.(*svm.Model); ok {
		if n := sm.NonConverged(); n > 0 {
			p.warn("learn", fmt.Sprintf(
				"%d of %d SMO subproblem(s) hit MaxIter before converging; model is usable but may be short of optimal",
				n, sm.BinaryProblems()))
		}
	}
	if p.cfg.Probability {
		if sm, ok := m.(*svm.Model); ok {
			if err := sm.CalibrateProbabilities(x, y); err != nil {
				return fmt.Errorf("core: probability calibration: %w", err)
			}
		}
	}
	p.model = m
	return nil
}

// Predict classifies the given rows of d with the fitted pipeline. It
// is equivalent to PredictContext with context.Background().
func (p *Pipeline) Predict(d *dataset.Dataset, rows []int) ([]int, error) {
	return p.PredictContext(context.Background(), d, rows)
}

// PredictContext classifies the given rows of d under ctx; cancellation
// aborts the per-row scoring loop with an error satisfying
// errors.Is(err, guard.ErrCanceled) or guard.ErrDeadline. Rows are
// encoded straight into the fitted item space and matched through the
// compiled pattern trie; all per-row scratch is allocated once per
// call, so the marginal cost per row is zero allocations.
func (p *Pipeline) PredictContext(ctx context.Context, d *dataset.Dataset, rows []int) ([]int, error) {
	if p.model == nil {
		return nil, errors.New("core: Predict before Fit")
	}
	out := make([]int, len(rows))
	if err := p.PredictBatch(ctx, d, rows, out); err != nil {
		return nil, err
	}
	return out, nil
}
