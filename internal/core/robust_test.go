package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"dfpc/internal/guard"
	"dfpc/internal/mining"
)

func TestFitBudgetFailPolicy(t *testing.T) {
	d := xorDataset(80)
	p, err := New(Config{
		Learner:     SVMLinear,
		UsePatterns: true,
		MinSupport:  0.05,
		MaxPatterns: 2, // tiny budget: mining must trip it
	})
	if err != nil {
		t.Fatal(err)
	}
	err = p.Fit(d, allRows(d.NumRows()))
	if !errors.Is(err, mining.ErrPatternBudget) {
		t.Fatalf("err = %v, want mining.ErrPatternBudget", err)
	}
}

func TestFitBudgetDegradePolicy(t *testing.T) {
	d := xorDataset(80)
	p, err := New(Config{
		Learner:     SVMLinear,
		UsePatterns: true,
		MinSupport:  0.05,
		MaxPatterns: 12, // trips at 0.05 but fits once min_sup escalates
		OnBudget:    DegradeOnBudget,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Fit(d, allRows(d.NumRows())); err != nil {
		t.Fatalf("degrading fit should succeed, got %v", err)
	}
	if len(p.Stats.Warnings) == 0 {
		t.Fatal("degraded fit recorded no warnings")
	}
	found := false
	for _, w := range p.Stats.Warnings {
		if w.Stage == "mine" && strings.Contains(w.Message, "min_sup") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no min_sup escalation warning in %v", p.Stats.Warnings)
	}
	if p.Stats.MinSupport <= 0.05 {
		t.Fatalf("Stats.MinSupport = %v, want escalated above 0.05", p.Stats.MinSupport)
	}
	// The degraded model must still predict.
	if _, err := p.Predict(d, allRows(d.NumRows())); err != nil {
		t.Fatalf("predict after degraded fit: %v", err)
	}
}

func TestFitContextPreCanceled(t *testing.T) {
	d := xorDataset(80)
	p := NewPatFS(SVMLinear, 0.2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.FitContext(ctx, d, allRows(d.NumRows())); !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("err = %v, want guard.ErrCanceled", err)
	}
}

func TestPredictContextPreCanceled(t *testing.T) {
	d := xorDataset(80)
	p := NewPatFS(SVMLinear, 0.2)
	rows := allRows(d.NumRows())
	if err := p.Fit(d, rows); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.PredictContext(ctx, d, rows); !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("err = %v, want guard.ErrCanceled", err)
	}
}

func TestStageTimeoutAlreadyExpired(t *testing.T) {
	d := xorDataset(80)
	p, err := New(Config{
		Learner:      SVMLinear,
		UsePatterns:  true,
		MinSupport:   0.2,
		StageTimeout: 1, // 1ns: every stage deadline is already past
	})
	if err != nil {
		t.Fatal(err)
	}
	err = p.Fit(d, allRows(d.NumRows()))
	if !errors.Is(err, guard.ErrDeadline) {
		t.Fatalf("err = %v, want guard.ErrDeadline", err)
	}
}
