package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"dfpc/internal/c45"
	"dfpc/internal/discretize"
	"dfpc/internal/knn"
	"dfpc/internal/mining"
	"dfpc/internal/nbayes"
	"dfpc/internal/obs"
	"dfpc/internal/svm"
)

// pipelineSnapshot is the gob-encodable form of a fitted Pipeline. The
// learner model is nested as opaque bytes via its own BinaryMarshaler,
// keyed by the learner kind.
type pipelineSnapshot struct {
	Version  int
	Config   Config
	Disc     []byte
	NumItems int
	Patterns []mining.Pattern
	ItemKept []bool
	Report   []FeatureReport
	Stats    FitStats
	Learner  Learner
	Model    []byte
}

const snapshotVersion = 1

// Save serializes a fitted pipeline so it can be reloaded with Load and
// used for prediction without retraining. The fitted discretizer,
// selected patterns, explanation report, and the trained model are all
// preserved.
func (p *Pipeline) Save(w io.Writer) error {
	if p.model == nil {
		return fmt.Errorf("core: Save before Fit")
	}
	snap := pipelineSnapshot{
		Version:  snapshotVersion,
		Config:   p.cfg,
		NumItems: p.numItems,
		Patterns: p.patterns,
		ItemKept: p.itemKept,
		Report:   p.report,
		Stats:    p.Stats,
		Learner:  p.cfg.Learner,
	}
	// Observers and loggers are per-process recorders, not model state
	// (LogHandle additionally gob-encodes as nothing either way).
	snap.Config.Obs = nil
	snap.Config.Tree.Obs = nil
	snap.Config.Log = obs.LogHandle{}
	snap.Config.Tree.Log = obs.LogHandle{}
	var err error
	if snap.Disc, err = p.disc.MarshalBinary(); err != nil {
		return err
	}
	type marshaler interface{ MarshalBinary() ([]byte, error) }
	m, ok := p.model.(marshaler)
	if !ok {
		return fmt.Errorf("core: model %T is not serializable", p.model)
	}
	if snap.Model, err = m.MarshalBinary(); err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(snap)
}

// Load restores a pipeline saved with Save. The returned pipeline can
// Predict immediately; calling Fit retrains it as usual.
func Load(r io.Reader) (*Pipeline, error) {
	var snap pipelineSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("core: load: unsupported snapshot version %d", snap.Version)
	}
	p := &Pipeline{
		cfg:      snap.Config,
		numItems: snap.NumItems,
		patterns: snap.Patterns,
		itemKept: snap.ItemKept,
		report:   snap.Report,
		Stats:    snap.Stats,
	}
	p.disc = &discretize.Discretizer{}
	if err := p.disc.UnmarshalBinary(snap.Disc); err != nil {
		return nil, err
	}
	switch snap.Learner {
	case C45Tree:
		m := &c45.Model{}
		if err := m.UnmarshalBinary(snap.Model); err != nil {
			return nil, err
		}
		p.model = m
	case NaiveBayes:
		m := &nbayes.Model{}
		if err := m.UnmarshalBinary(snap.Model); err != nil {
			return nil, err
		}
		p.model = m
	case KNN:
		m := &knn.Model{}
		if err := m.UnmarshalBinary(snap.Model); err != nil {
			return nil, err
		}
		p.model = m
	default: // SVMLinear, SVMRBF
		m := &svm.Model{}
		if err := m.UnmarshalBinary(snap.Model); err != nil {
			return nil, err
		}
		p.model = m
	}
	return p, nil
}
