package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"dfpc/internal/c45"
	"dfpc/internal/discretize"
	"dfpc/internal/durable"
	"dfpc/internal/knn"
	"dfpc/internal/mining"
	"dfpc/internal/modelobs"
	"dfpc/internal/nbayes"
	"dfpc/internal/obs"
	"dfpc/internal/patmatch"
	"dfpc/internal/svm"
)

// pipelineSnapshot is the gob-encodable form of a fitted Pipeline. The
// learner model is nested as opaque bytes via its own BinaryMarshaler,
// keyed by the learner kind.
type pipelineSnapshot struct {
	Version  int
	Config   Config
	Disc     []byte
	NumItems int
	Patterns []mining.Pattern
	ItemKept []bool
	Report   []FeatureReport
	Stats    FitStats
	Learner  Learner
	Model    []byte
	// Baseline is the fit-time reference distribution for drift
	// scoring, added in snapshot v2. Gob leaves it nil when decoding
	// a v1 payload (absent fields decode to their zero value), so
	// pre-baseline models load cleanly with Baseline == nil.
	Baseline *modelobs.Baseline
	// Matcher is the compiled pattern-matching trie, added in snapshot
	// v3 so a loaded model serves through the same compiled path a
	// freshly fitted one does. v1/v2 payloads decode it as nil and
	// Load recompiles it from Patterns — compilation is deterministic,
	// so the lazily built trie is byte-identical to a fit-time one.
	Matcher *patmatch.Matcher
}

// snapshotVersion is the version written by Save; Load accepts any
// version in [minSnapshotVersion, snapshotVersion]. v1 = pre-baseline
// envelopes (no Baseline field); v2 added the modelobs baseline; v3
// added the compiled pattern matcher.
const (
	snapshotVersion    = 3
	minSnapshotVersion = 1
)

// ModelKind is the durable-envelope kind string for saved pipelines.
const ModelKind = "dfpc-model"

// Save serializes a fitted pipeline so it can be reloaded with Load and
// used for prediction without retraining. The fitted discretizer,
// selected patterns, explanation report, and the trained model are all
// preserved. The gob snapshot is wrapped in a durable envelope
// (magic + version + CRC32) so Load can reject torn or corrupt files
// with a sentinel instead of feeding garbage to gob.
func (p *Pipeline) Save(w io.Writer) error {
	if p.model == nil {
		return fmt.Errorf("core: Save before Fit")
	}
	snap := pipelineSnapshot{
		Version:  snapshotVersion,
		Config:   p.cfg,
		NumItems: p.numItems,
		Patterns: p.patterns,
		ItemKept: p.itemKept,
		Report:   p.report,
		Stats:    p.Stats,
		Learner:  p.cfg.Learner,
		Baseline: p.baseline,
		Matcher:  p.matcher,
	}
	// Observers, loggers, fault registries, and drift trackers are
	// per-process recorders, not model state (each additionally
	// gob-encodes as nothing either way).
	snap.Config.Obs = nil
	snap.Config.Tree.Obs = nil
	snap.Config.Log = obs.LogHandle{}
	snap.Config.Tree.Log = obs.LogHandle{}
	snap.Config.Faults = nil
	snap.Config.Tree.Faults = nil
	snap.Config.Drift = nil
	var err error
	if snap.Disc, err = p.disc.MarshalBinary(); err != nil {
		return err
	}
	type marshaler interface{ MarshalBinary() ([]byte, error) }
	m, ok := p.model.(marshaler)
	if !ok {
		return fmt.Errorf("core: model %T is not serializable", p.model)
	}
	if snap.Model, err = m.MarshalBinary(); err != nil {
		return err
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(snap); err != nil {
		return err
	}
	return durable.Encode(w, ModelKind, snapshotVersion, payload.Bytes())
}

// Load restores a pipeline saved with Save. The returned pipeline can
// Predict immediately; calling Fit retrains it as usual.
//
// Load validates before it trusts: the durable envelope's magic,
// length, and CRC32 must check out (otherwise durable.ErrCorruptArtifact),
// the kind and schema version must match this build (otherwise
// durable.ErrVersionMismatch), and only then are the payload bytes
// handed to gob — whose own failures, being unreachable except through
// corruption that collides the checksum, also wrap ErrCorruptArtifact.
func Load(r io.Reader) (p *Pipeline, err error) {
	// Gob decoding of hostile bytes can panic in pathological cases;
	// fold that into the corruption sentinel rather than crashing a
	// serving process.
	defer func() {
		if rec := recover(); rec != nil {
			p, err = nil, fmt.Errorf("core: load: %w: decode panic: %v", durable.ErrCorruptArtifact, rec)
		}
	}()
	ver, payload, err := durable.Decode(r, ModelKind)
	if err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	if ver < minSnapshotVersion || ver > snapshotVersion {
		return nil, fmt.Errorf("core: load: %w: snapshot version %d, this build reads %d..%d",
			durable.ErrVersionMismatch, ver, minSnapshotVersion, snapshotVersion)
	}
	var snap pipelineSnapshot
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: load: %w: %v", durable.ErrCorruptArtifact, err)
	}
	if snap.Version != int(ver) {
		return nil, fmt.Errorf("core: load: %w: inner snapshot version %d under envelope version %d",
			durable.ErrVersionMismatch, snap.Version, ver)
	}
	p = &Pipeline{
		cfg:      snap.Config,
		numItems: snap.NumItems,
		patterns: snap.Patterns,
		matcher:  snap.Matcher,
		itemKept: snap.ItemKept,
		report:   snap.Report,
		Stats:    snap.Stats,
		baseline: snap.Baseline,
	}
	if p.matcher == nil && len(p.patterns) > 0 {
		// Pre-v3 artifact: compile the trie now so old models predict
		// through the same zero-allocation path as new ones. No faults
		// or obs here — registries are scrubbed on Save and a loaded
		// pipeline has none installed yet.
		items := make([][]int32, len(p.patterns))
		for i := range p.patterns {
			items[i] = p.patterns[i].Items
		}
		p.matcher = patmatch.Compile(items)
	}
	p.disc = &discretize.Discretizer{}
	if err := p.disc.UnmarshalBinary(snap.Disc); err != nil {
		return nil, fmt.Errorf("core: load: %w: discretizer: %v", durable.ErrCorruptArtifact, err)
	}
	var m interface {
		UnmarshalBinary([]byte) error
	}
	switch snap.Learner {
	case C45Tree:
		m = &c45.Model{}
	case NaiveBayes:
		m = &nbayes.Model{}
	case KNN:
		m = &knn.Model{}
	default: // SVMLinear, SVMRBF
		m = &svm.Model{}
	}
	if err := m.UnmarshalBinary(snap.Model); err != nil {
		return nil, fmt.Errorf("core: load: %w: %T: %v", durable.ErrCorruptArtifact, m, err)
	}
	p.model = m.(predictor)
	return p, nil
}
