package core

import (
	"bytes"
	"context"
	"encoding/gob"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dfpc/internal/durable"
	"dfpc/internal/mining"
	"dfpc/internal/obs"
)

// updateCompat regenerates the committed v1 model fixture:
//
//	go test ./internal/core/ -run TestLoadV1Envelope -update-compat
var updateCompat = flag.Bool("update-compat", false, "rewrite testdata/model_v1.dfpc from a fresh fit")

const v1FixturePath = "testdata/model_v1.dfpc"

// snapshotV1 is the pipelineSnapshot layout as written before snapshot
// v2 added the Baseline field. Gob matches fields by name, so encoding
// this struct reproduces the payload an old build would have written;
// the fixture generated from it proves today's Load still reads it.
type snapshotV1 struct {
	Version  int
	Config   Config
	Disc     []byte
	NumItems int
	Patterns []mining.Pattern
	ItemKept []bool
	Report   []FeatureReport
	Stats    FitStats
	Learner  Learner
	Model    []byte
}

// writeV1Fixture fits the XOR pipeline and serializes it under a
// version-1 envelope with the pre-baseline snapshot layout.
func writeV1Fixture(t *testing.T, path string) {
	t.Helper()
	p, _, _ := fitXORPipeline(t)
	snap := snapshotV1{
		Version:  1,
		Config:   p.cfg,
		NumItems: p.numItems,
		Patterns: p.patterns,
		ItemKept: p.itemKept,
		Report:   p.report,
		Stats:    p.Stats,
		Learner:  p.cfg.Learner,
	}
	// Mirror Save's scrub of per-process recorders.
	snap.Config.Obs = nil
	snap.Config.Tree.Obs = nil
	snap.Config.Log = obs.LogHandle{}
	snap.Config.Tree.Log = obs.LogHandle{}
	snap.Config.Faults = nil
	snap.Config.Tree.Faults = nil
	snap.Config.Drift = nil
	var err error
	if snap.Disc, err = p.disc.MarshalBinary(); err != nil {
		t.Fatal(err)
	}
	m, ok := p.model.(interface{ MarshalBinary() ([]byte, error) })
	if !ok {
		t.Fatalf("model %T is not serializable", p.model)
	}
	if snap.Model, err = m.MarshalBinary(); err != nil {
		t.Fatal(err)
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(snap); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := durable.Encode(f, ModelKind, 1, payload.Bytes()); err != nil {
		f.Close()
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestLoadV1Envelope pins forward compatibility with pre-baseline model
// artifacts: a v1 envelope must load with Baseline() == nil while
// Predict and PredictExplain keep working from the restored state.
func TestLoadV1Envelope(t *testing.T) {
	if *updateCompat {
		writeV1Fixture(t, v1FixturePath)
		t.Logf("rewrote %s", v1FixturePath)
	}
	raw, err := os.ReadFile(v1FixturePath)
	if err != nil {
		t.Fatalf("read fixture (regenerate with -update-compat): %v", err)
	}
	p, err := Load(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("Load v1 envelope: %v", err)
	}
	if p.Baseline() != nil {
		t.Fatal("v1 envelope predates baselines; Baseline() must be nil")
	}
	d := xorDataset(80)
	rows := allRows(d.NumRows())
	pred, err := p.Predict(d, rows)
	if err != nil {
		t.Fatalf("Predict after v1 load: %v", err)
	}
	correct := 0
	for i, c := range pred {
		if c == d.Labels[i] {
			correct++
		}
	}
	if correct < len(rows)*99/100 {
		t.Fatalf("v1 model accuracy %d/%d, want ~all (XOR is separable with pattern features)", correct, len(rows))
	}
	ex, err := p.PredictExplain(context.Background(), d, rows[:8])
	if err != nil {
		t.Fatalf("PredictExplain after v1 load: %v", err)
	}
	for i, e := range ex {
		if e.Class != pred[i] {
			t.Fatalf("PredictExplain row %d class = %d, Predict said %d", i, e.Class, pred[i])
		}
	}
	// v1 envelopes predate the compiled matcher; Load must compile one
	// lazily so old artifacts serve through the same zero-allocation
	// path — and, compilation being deterministic, it must come out
	// byte-identical to the trie a fresh fit of the same data builds.
	if p.Matcher() == nil {
		t.Fatal("v1 envelope: Load must lazily compile the matcher from the stored patterns")
	}
	fresh, _, _ := fitXORPipeline(t)
	if !bytes.Equal(gobBytes(t, p.Matcher()), gobBytes(t, fresh.Matcher())) {
		t.Fatal("lazily compiled matcher differs from a fit-time compile of the same patterns")
	}
}

// gobBytes encodes v for byte-level equality checks.
func gobBytes(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestMatcherSnapshotRoundTrip is the v3 counterpart of the baseline
// round trip: the compiled trie is carried through Save/Load
// byte-for-byte (no lazy recompile on current-version artifacts), and
// the loaded pipeline predicts identically through it.
func TestMatcherSnapshotRoundTrip(t *testing.T) {
	p, _, _ := fitXORPipeline(t)
	if p.Matcher() == nil {
		t.Fatal("Fit should compile a matcher when patterns are selected")
	}
	loaded := roundTripPipeline(t, p)
	if loaded.Matcher() == nil {
		t.Fatal("matcher lost in round trip")
	}
	if !bytes.Equal(gobBytes(t, p.Matcher()), gobBytes(t, loaded.Matcher())) {
		t.Fatal("matcher bytes changed across Save/Load")
	}
	d := xorDataset(80)
	rows := allRows(d.NumRows())
	want, err := p.Predict(d, rows)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Predict(d, rows)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("loaded pipeline predicts differently from the one that saved it")
	}
}

// TestFitBaselineRoundTrip is the v2 counterpart: a fresh Fit computes
// a valid baseline and Save/Load carries it through byte-for-byte
// (gob re-encode equality, not field spot checks).
func TestFitBaselineRoundTrip(t *testing.T) {
	p, _, _ := fitXORPipeline(t)
	b := p.Baseline()
	if !b.Valid() {
		t.Fatal("Fit should compute a valid baseline")
	}
	if b.Rows != 80 {
		t.Fatalf("baseline rows = %d, want 80", b.Rows)
	}
	if b.NumClasses != 2 || len(b.Priors) != 2 {
		t.Fatalf("baseline classes = %d priors = %v, want 2", b.NumClasses, b.Priors)
	}
	if b.NumPatterns() == 0 {
		t.Fatal("baseline should cover the selected pattern features")
	}
	loaded := roundTripPipeline(t, p)
	lb := loaded.Baseline()
	if !lb.Valid() {
		t.Fatal("baseline lost in round trip")
	}
	var want, got bytes.Buffer
	if err := gob.NewEncoder(&want).Encode(b); err != nil {
		t.Fatal(err)
	}
	if err := gob.NewEncoder(&got).Encode(lb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatal("baseline bytes changed across Save/Load")
	}
}
