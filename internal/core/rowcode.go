package core

import (
	"context"
	"errors"
	"fmt"

	"dfpc/internal/c45"
	"dfpc/internal/dataset"
	"dfpc/internal/discretize"
	"dfpc/internal/faults"
	"dfpc/internal/guard"
	"dfpc/internal/modelobs"
	"dfpc/internal/patmatch"
	"dfpc/internal/svm"
)

// The streaming predict path. The fit path materializes a discretized
// dataset and a full binary encoding because mining needs the vertical
// bitset views; prediction needs neither — each row is encoded, mapped
// into the fitted feature space, and scored independently. rowCoder
// fuses discretize.Apply + dataset.Encode into one per-value pass with
// no intermediate dataset, BatchPredictor carries every piece of
// per-batch scratch (encoder buffer, matcher scratch, feature vector,
// learner voting arrays), and together they hold the marginal cost of
// Predict at zero allocations per row — the serving-loop contract of
// ROADMAP item 1.

// coderAttr is one attribute's slice of the fitted item space.
type coderAttr struct {
	base    int32 // item ID of (attr, value 0); IDs ascend with attr index
	numeric bool
	numVals int // discretized bins (numeric) or category count
	name    string
}

// rowCoder encodes raw dataset rows straight into the fitted binary
// item space. Because item IDs are laid out attribute-major
// (dataset.NewSpace), encoding a row left to right emits IDs in
// ascending order — the sorted-transaction invariant every matcher and
// learner relies on — with no sort and no allocation.
type rowCoder struct {
	disc  *discretize.Discretizer
	attrs []coderAttr
	tx    []int32 // scratch; encode returns an alias
}

// newRowCoder derives the coder from the fitted discretizer. The
// fitted schema fixes the item space exactly, so a mismatch with
// p.numItems can only mean corrupted fitted state.
func (p *Pipeline) newRowCoder() (*rowCoder, error) {
	if p.disc == nil {
		return nil, errors.New("core: row coder before Fit")
	}
	schema := p.disc.SourceSchema()
	rc := &rowCoder{
		disc:  p.disc,
		attrs: make([]coderAttr, len(schema)),
		tx:    make([]int32, 0, len(schema)),
	}
	base := 0
	for a, attr := range schema {
		ca := coderAttr{
			base:    int32(base),
			numeric: attr.Kind == dataset.Numeric,
			numVals: p.disc.Bins(a),
			name:    attr.Name,
		}
		rc.attrs[a] = ca
		base += ca.numVals
	}
	if base != p.numItems {
		return nil, fmt.Errorf("core: coder item space %d != train %d", base, p.numItems)
	}
	return rc, nil
}

// checkSchema verifies d is column-compatible with the fitted schema
// before a batch runs, so per-row encoding only has to validate cell
// values.
func (rc *rowCoder) checkSchema(d *dataset.Dataset) error {
	if len(d.Attrs) != len(rc.attrs) {
		return fmt.Errorf("core: discretize test: schema mismatch: %d attrs vs fitted %d",
			len(d.Attrs), len(rc.attrs))
	}
	return nil
}

// encode maps one raw row into sorted item IDs of the fitted space.
// Missing cells contribute no item; a categorical cell outside the
// fitted vocabulary is an error (exactly what dataset.Validate rejects
// on the materialized path). The returned slice aliases rc.tx and is
// valid until the next encode call.
func (rc *rowCoder) encode(row []float64, rowIdx int) ([]int32, error) {
	if len(row) != len(rc.attrs) {
		return nil, fmt.Errorf("core: row %d has %d cells, want %d", rowIdx, len(row), len(rc.attrs))
	}
	tx := rc.tx[:0]
	for a := range rc.attrs {
		ca := &rc.attrs[a]
		v := row[a]
		if dataset.IsMissing(v) {
			continue
		}
		if ca.numeric {
			tx = append(tx, ca.base+int32(rc.disc.BinOf(a, v)))
			continue
		}
		vi := int(v)
		if float64(vi) != v || vi < 0 || vi >= ca.numVals {
			return nil, fmt.Errorf("core: row %d attr %q: bad category index %v", rowIdx, ca.name, v)
		}
		tx = append(tx, ca.base+int32(vi))
	}
	rc.tx = tx
	return tx, nil
}

// rowScorer scores fitted-space feature vectors with reusable scratch.
// predictConf additionally reports the learner's native confidence
// when it has one (SVM margin, C4.5 leaf purity); the class is always
// identical to predict's.
type rowScorer interface {
	predict(fv []int32) int
	predictConf(fv []int32) (cls int, conf float64, hasConf bool)
}

type svmScorer struct{ s *svm.Scorer }

func (s svmScorer) predict(fv []int32) int { return s.s.Predict(fv) }
func (s svmScorer) predictConf(fv []int32) (int, float64, bool) {
	cls, margin := s.s.PredictMargin(fv)
	return cls, margin, true
}

type c45Scorer struct{ m *c45.Model }

func (s c45Scorer) predict(fv []int32) int { return s.m.Predict(fv) }
func (s c45Scorer) predictConf(fv []int32) (int, float64, bool) {
	cls, conf := s.m.PredictConf(fv)
	return cls, conf, true
}

type plainScorer struct{ m predictor }

func (s plainScorer) predict(fv []int32) int { return s.m.Predict(fv) }
func (s plainScorer) predictConf(fv []int32) (int, float64, bool) {
	return s.m.Predict(fv), 0, false
}

// newRowScorer wraps the fitted model in the scorer matching its
// concrete type.
func (p *Pipeline) newRowScorer() rowScorer {
	switch m := p.model.(type) {
	case *svm.Model:
		return svmScorer{s: m.NewScorer()}
	case *c45.Model:
		return c45Scorer{m: m}
	default:
		return plainScorer{m: p.model}
	}
}

// BatchPredictor is a reusable, single-goroutine prediction context
// bound to one fitted Pipeline: the row encoder, the pattern-matcher
// scratch, the feature-vector buffer, and the learner's voting scratch,
// allocated once and reused for every row of every batch. Serving
// loops should construct one per worker goroutine and call PredictInto
// per request batch; one-shot callers can use Pipeline.PredictBatch,
// which wraps construction and a single PredictInto.
type BatchPredictor struct {
	p      *Pipeline
	coder  *rowCoder
	scorer rowScorer
	ms     patmatch.Scratch
	fv     []int32
}

// NewBatchPredictor builds a predictor over the fitted state. It
// errors before Fit and whenever the fitted state is internally
// inconsistent.
func (p *Pipeline) NewBatchPredictor() (*BatchPredictor, error) {
	if p.model == nil {
		return nil, errors.New("core: NewBatchPredictor before Fit")
	}
	coder, err := p.newRowCoder()
	if err != nil {
		return nil, err
	}
	bp := &BatchPredictor{
		p:      p,
		coder:  coder,
		scorer: p.newRowScorer(),
		fv:     make([]int32, 0, len(coder.attrs)+len(p.patterns)),
	}
	bp.ms.Grow(p.matcher)
	return bp, nil
}

// featureVector encodes one raw row and maps it into the fitted
// feature space. The returned slice aliases the predictor's scratch
// and is valid until the next call.
func (b *BatchPredictor) featureVector(row []float64, rowIdx int) ([]int32, error) {
	tx, err := b.coder.encode(row, rowIdx)
	if err != nil {
		return nil, err
	}
	b.fv = b.p.featureVectorInto(b.fv[:0], tx, &b.ms)
	return b.fv, nil
}

// PredictInto classifies the given rows of d into out, which must have
// len(rows). Cancellation aborts the loop with an error satisfying
// errors.Is(err, guard.ErrCanceled) or guard.ErrDeadline. When the
// pipeline carries a drift tracker and a fit-time baseline, every row
// is additionally streamed into the drift sketch; either way the
// marginal cost per row is zero allocations.
func (b *BatchPredictor) PredictInto(ctx context.Context, d *dataset.Dataset, rows []int, out []int) error {
	p := b.p
	if len(out) != len(rows) {
		return fmt.Errorf("core: PredictInto: out has %d slots for %d rows", len(out), len(rows))
	}
	g := guard.New(ctx, guard.Limits{Deadline: p.stageDeadline()})
	if err := g.CheckNow(); err != nil {
		return err
	}
	if err := p.cfg.Faults.Hit(faults.CorePredict); err != nil {
		return fmt.Errorf("core: predict: %w", err)
	}
	//vet:ignore hotalloc one batch-level telemetry attribute per Predict call, amortized over all rows
	sp := p.cfg.Obs.Start("predict").Attr("rows", len(rows))
	defer sp.End()
	if err := b.coder.checkSchema(d); err != nil {
		return err
	}
	if t := p.cfg.Drift; t != nil && p.baseline.Valid() {
		// Tracked path: score each row with its confidence and stream
		// it into the drift sketch. The tracker's ObserveRow is
		// allocation-free by contract (buffers bind once at Bind), so
		// the drift-on marginal cost matches the plain loop's.
		t.Bind(p.baseline)
		lim := int32(p.numItems)
		for i, r := range rows {
			if err := g.Check(); err != nil {
				return err
			}
			fv, err := b.featureVector(d.Rows[r], r)
			if err != nil {
				return err
			}
			cls, conf, hasConf := b.scorer.predictConf(fv)
			out[i] = cls
			t.ObserveRow(cls, modelobs.ConfMicro(conf), hasConf, fv, lim)
		}
		return nil
	}
	for i, r := range rows {
		if err := g.Check(); err != nil {
			return err
		}
		fv, err := b.featureVector(d.Rows[r], r)
		if err != nil {
			return err
		}
		out[i] = b.scorer.predict(fv)
	}
	return nil
}

// PredictBatch classifies the given rows of d into out (len(out) must
// equal len(rows)), amortizing all prediction scratch across the
// batch. It builds the batch scratch per call; loops serving many
// batches should hold a BatchPredictor instead.
func (p *Pipeline) PredictBatch(ctx context.Context, d *dataset.Dataset, rows []int, out []int) error {
	bp, err := p.NewBatchPredictor()
	if err != nil {
		return err
	}
	return bp.PredictInto(ctx, d, rows, out)
}
