package core

import (
	"math"
	"testing"

	"dfpc/internal/datagen"
	"dfpc/internal/dataset"
	"dfpc/internal/eval"
)

// xorDataset is the paper's motivating scenario: two binary attributes
// whose XOR determines the class, plus a noise attribute. Single
// features carry zero signal; the pattern features carry all of it.
func xorDataset(n int) *dataset.Dataset {
	d := &dataset.Dataset{
		Name: "xor",
		Attrs: []dataset.Attribute{
			{Name: "x", Kind: dataset.Categorical, Values: []string{"0", "1"}},
			{Name: "y", Kind: dataset.Categorical, Values: []string{"0", "1"}},
			{Name: "z", Kind: dataset.Categorical, Values: []string{"0", "1"}},
		},
		Classes: []string{"even", "odd"},
	}
	for i := 0; i < n; i++ {
		x := (i / 2) % 2
		y := i % 2
		z := (i / 4) % 2
		d.Rows = append(d.Rows, []float64{float64(x), float64(y), float64(z)})
		d.Labels = append(d.Labels, (x+y)%2)
	}
	return d
}

func TestPatternPipelineSolvesXOR(t *testing.T) {
	d := xorDataset(80)
	p := NewPatFS(SVMLinear, 0.2)
	rows := make([]int, d.NumRows())
	for i := range rows {
		rows[i] = i
	}
	if err := p.Fit(d, rows); err != nil {
		t.Fatal(err)
	}
	pred, err := p.Predict(d, rows)
	if err != nil {
		t.Fatal(err)
	}
	acc, _ := eval.Accuracy(pred, d.Labels)
	if acc < 0.99 {
		t.Fatalf("Pat_FS on XOR accuracy = %v, want ~1", acc)
	}
	if p.Stats.FeatureCount == 0 {
		t.Fatal("no pattern features selected")
	}
}

func TestItemOnlyFailsXOR(t *testing.T) {
	d := xorDataset(80)
	p := NewItemAll(SVMLinear)
	rows := make([]int, d.NumRows())
	for i := range rows {
		rows[i] = i
	}
	if err := p.Fit(d, rows); err != nil {
		t.Fatal(err)
	}
	pred, err := p.Predict(d, rows)
	if err != nil {
		t.Fatal(err)
	}
	acc, _ := eval.Accuracy(pred, d.Labels)
	if acc > 0.7 {
		t.Fatalf("Item_All on XOR accuracy = %v; linear single features should fail", acc)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{UsePatterns: true, SelectItems: true}); err == nil {
		t.Fatal("UsePatterns+SelectItems should error")
	}
}

func TestPredictBeforeFit(t *testing.T) {
	p := NewItemAll(SVMLinear)
	if _, err := p.Predict(xorDataset(8), []int{0}); err == nil {
		t.Fatal("Predict before Fit should error")
	}
}

func TestFitEmptyRows(t *testing.T) {
	p := NewItemAll(SVMLinear)
	if err := p.Fit(xorDataset(8), nil); err == nil {
		t.Fatal("empty training rows should error")
	}
}

func TestAllFamiliesCrossValidate(t *testing.T) {
	d, err := datagen.ByName("labor", 1)
	if err != nil {
		t.Fatal(err)
	}
	fams := map[string]*Pipeline{
		"Item_All": NewItemAll(SVMLinear),
		"Item_FS":  NewItemFS(SVMLinear),
		"Item_RBF": NewItemRBF(0),
		"Pat_All":  NewPatAll(SVMLinear, 0.3),
		"Pat_FS":   NewPatFS(SVMLinear, 0.3),
		"C45_All":  NewItemAll(C45Tree),
		"C45_Pat":  NewPatFS(C45Tree, 0.3),
	}
	for name, p := range fams {
		res, err := eval.CrossValidate(p, d, 3, 7)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Mean <= 0.3 || res.Mean > 1 {
			t.Fatalf("%s: implausible accuracy %v", name, res.Mean)
		}
	}
}

func TestPatFSBeatsItemAllOnPatternedData(t *testing.T) {
	// Generated data with planted conjunctions: the pattern-based model
	// must not lose to the single-feature model (the paper's headline
	// result).
	d, err := datagen.ByName("austral", 11)
	if err != nil {
		t.Fatal(err)
	}
	itemAll, err := eval.CrossValidate(NewItemAll(SVMLinear), d, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	patFS, err := eval.CrossValidate(NewPatFS(SVMLinear, 0.1), d, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if patFS.Mean < itemAll.Mean-0.02 {
		t.Fatalf("Pat_FS %.4f worse than Item_All %.4f", patFS.Mean, itemAll.Mean)
	}
}

func TestMinSupportStrategyResolves(t *testing.T) {
	d := xorDataset(100)
	p := NewPatFS(SVMLinear, 0) // min_sup <= 0 → derive from IG0
	rows := make([]int, d.NumRows())
	for i := range rows {
		rows[i] = i
	}
	if err := p.Fit(d, rows); err != nil {
		t.Fatal(err)
	}
	if p.Stats.MinSupport <= 0 || p.Stats.MinSupport > 0.5 {
		t.Fatalf("derived min_sup = %v, implausible", p.Stats.MinSupport)
	}
}

func TestItemFSRestrictsSpace(t *testing.T) {
	d, err := datagen.ByName("zoo", 5)
	if err != nil {
		t.Fatal(err)
	}
	p := NewItemFS(SVMLinear)
	rows := make([]int, d.NumRows())
	for i := range rows {
		rows[i] = i
	}
	if err := p.Fit(d, rows); err != nil {
		t.Fatal(err)
	}
	if p.Stats.FeatureCount == 0 || p.Stats.FeatureCount >= p.Stats.MinedCount {
		t.Fatalf("Item_FS kept %d of %d items; expected a strict subset",
			p.Stats.FeatureCount, p.Stats.MinedCount)
	}
}

func TestNumericPipelineEndToEnd(t *testing.T) {
	d, err := datagen.ByName("iris", 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eval.CrossValidate(NewPatFS(SVMLinear, 0.15), d, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mean < 0.5 {
		t.Fatalf("iris Pat_FS accuracy %v too low", res.Mean)
	}
}

func TestAnalyzePatterns(t *testing.T) {
	d := xorDataset(80)
	stats, b, err := AnalyzePatterns(d, AnalyzeOptions{MinSupport: 0.2, IncludeSingles: true})
	if err != nil {
		t.Fatal(err)
	}
	if b.NumItems() != 6 {
		t.Fatalf("items = %d, want 6", b.NumItems())
	}
	singles, patterns := 0, 0
	bestSingle, bestPattern := 0.0, 0.0
	for _, s := range stats {
		if s.Length == 1 {
			singles++
			if s.InfoGain > bestSingle {
				bestSingle = s.InfoGain
			}
		} else {
			patterns++
			if s.InfoGain > bestPattern {
				bestPattern = s.InfoGain
			}
		}
		if s.Support <= 0 || s.RelSupport <= 0 || s.RelSupport > 1 {
			t.Fatalf("bad support stats: %+v", s)
		}
	}
	if singles != 6 || patterns == 0 {
		t.Fatalf("singles=%d patterns=%d", singles, patterns)
	}
	// Figure 1's claim on XOR: some pattern beats every single feature.
	if bestPattern <= bestSingle {
		t.Fatalf("best pattern IG %v <= best single IG %v", bestPattern, bestSingle)
	}
}

func TestIGBoundCurveDominatesStats(t *testing.T) {
	d := xorDataset(60)
	stats, b, err := AnalyzePatterns(d, AnalyzeOptions{MinSupport: 0.1, IncludeSingles: true})
	if err != nil {
		t.Fatal(err)
	}
	curve := IGBoundCurve(b.ClassCounts())
	if len(curve) != b.NumRows()-1 {
		t.Fatalf("curve length %d", len(curve))
	}
	for _, s := range stats {
		if s.Support >= 1 && s.Support < b.NumRows() {
			bound := curve[s.Support-1].Bound
			if s.InfoGain > bound+1e-9 {
				t.Fatalf("feature %v IG %v exceeds bound %v at support %d",
					s.Items, s.InfoGain, bound, s.Support)
			}
		}
	}
}

func TestFisherBoundCurveDominatesStats(t *testing.T) {
	d := xorDataset(60)
	stats, b, err := AnalyzePatterns(d, AnalyzeOptions{MinSupport: 0.1, IncludeSingles: true})
	if err != nil {
		t.Fatal(err)
	}
	curve := FisherBoundCurve(b.ClassCounts())
	for _, s := range stats {
		if s.Support >= 1 && s.Support < b.NumRows() {
			bound := curve[s.Support-1].Bound
			if !math.IsInf(bound, 1) && s.Fisher > bound+1e-9 {
				t.Fatalf("feature %v Fisher %v exceeds bound %v at support %d",
					s.Items, s.Fisher, bound, s.Support)
			}
		}
	}
}
