package core

import (
	"bytes"
	"testing"

	"dfpc/internal/datagen"
	"dfpc/internal/obs"
)

// findSpan walks a span tree depth-first for the first span named name.
func findSpan(spans []*obs.SpanReport, name string) *obs.SpanReport {
	for _, s := range spans {
		if s.Name == name {
			return s
		}
		if hit := findSpan(s.Children, name); hit != nil {
			return hit
		}
	}
	return nil
}

func TestFitRecordsStageSpansAndCounters(t *testing.T) {
	d, err := datagen.ByName("heart", 1)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]int, d.NumRows())
	for i := range rows {
		rows[i] = i
	}
	o := obs.New()
	p := NewPatFS(SVMLinear, 0.15)
	p.SetObserver(o)
	if p.Observer() != o {
		t.Fatal("Observer() did not return the installed observer")
	}
	if err := p.Fit(d, rows); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Predict(d, rows[:20]); err != nil {
		t.Fatal(err)
	}

	r := o.Report("heart")
	fit := findSpan(r.Spans, "fit")
	if fit == nil {
		t.Fatalf("no fit span in report: %+v", r.Spans)
	}
	for _, stage := range []string{"discretize", "encode", "mine", "mine-class", "select", "mmrfs", "featurize", "learn"} {
		if findSpan(fit.Children, stage) == nil {
			t.Errorf("fit span missing %q stage", stage)
		}
	}
	if findSpan(r.Spans, "predict") == nil {
		t.Error("no predict span recorded")
	}
	for _, c := range []string{
		"encode.items_mapped", "mine.fptree_nodes", "mine.patterns_emitted",
		"core.patterns_mined", "core.features_selected",
		"mmrfs.iterations", "mmrfs.selected",
		"svm.smo_iterations", "svm.support_vectors",
	} {
		if r.Counters[c] <= 0 {
			t.Errorf("counter %s = %d, want > 0", c, r.Counters[c])
		}
	}
	if r.Gauges["core.min_sup"] != 0.15 {
		t.Errorf("core.min_sup gauge = %v, want 0.15", r.Gauges["core.min_sup"])
	}
	if int64(p.Stats.MinedCount) != r.Counters["core.patterns_mined"] {
		t.Errorf("Stats.MinedCount %d != counter %d", p.Stats.MinedCount, r.Counters["core.patterns_mined"])
	}
}

func TestC45ObserverCounters(t *testing.T) {
	d, err := datagen.ByName("heart", 1)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]int, d.NumRows())
	for i := range rows {
		rows[i] = i
	}
	o := obs.New()
	p := NewPatFS(C45Tree, 0.15)
	p.SetObserver(o)
	if err := p.Fit(d, rows); err != nil {
		t.Fatal(err)
	}
	r := o.Report("")
	if r.Counters["c45.nodes"] <= 0 {
		t.Errorf("c45.nodes = %d, want > 0", r.Counters["c45.nodes"])
	}
	if r.Gauges["c45.depth"] <= 0 {
		t.Errorf("c45.depth = %v, want > 0", r.Gauges["c45.depth"])
	}
}

// TestSaveWithObserverInstalled proves observers never leak into model
// snapshots and do not break gob encoding of the embedded configs.
func TestSaveWithObserverInstalled(t *testing.T) {
	d, err := datagen.ByName("heart", 1)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]int, d.NumRows())
	for i := range rows {
		rows[i] = i
	}
	o := obs.New()
	p := NewPatFS(SVMLinear, 0.2)
	p.SetObserver(o)
	if err := p.Fit(d, rows); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatalf("Save with observer installed: %v", err)
	}
	q, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Observer() != nil {
		t.Fatal("loaded pipeline carries an observer")
	}
	want, err := p.Predict(d, rows[:30])
	if err != nil {
		t.Fatal(err)
	}
	got, err := q.Predict(d, rows[:30])
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("prediction %d diverged after reload: %d vs %d", i, want[i], got[i])
		}
	}
}
