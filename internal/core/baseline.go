package core

import (
	"sort"

	"dfpc/internal/c45"
	"dfpc/internal/dataset"
	"dfpc/internal/featsel"
	"dfpc/internal/modelobs"
	"dfpc/internal/obs"
	"dfpc/internal/svm"
)

// computeBaseline records the training reference distribution the
// modelobs drift layer scores live traffic against: label priors, the
// model's own predicted-class mix on the training rows, per-pattern
// fire rates from the selection-time coverage bitmaps, and confidence
// and feature-density histograms in the obs log2 bucket layout. It
// runs at the tail of every successful Fit (one extra predict pass
// over the training rows — small next to SMO/tree training) so every
// saved model carries its own drift reference. Deterministic: no
// clocks, no randomness, and the row order is the fit order.
func (p *Pipeline) computeBaseline(b *dataset.Binary, x [][]int32) {
	sp := p.cfg.Obs.Start("baseline").Attr("rows", len(x))
	defer sp.End()
	n := len(x)
	bl := &modelobs.Baseline{
		Rows:        n,
		NumClasses:  b.NumClasses(),
		Priors:      make([]float64, b.NumClasses()),
		PredMix:     make([]float64, b.NumClasses()),
		ConfHist:    make([]int64, obs.NumHistBuckets),
		DensityHist: make([]int64, obs.NumHistBuckets),
	}
	if n == 0 {
		p.baseline = bl
		return
	}
	for _, y := range b.Labels {
		bl.Priors[y]++
	}
	for c := range bl.Priors {
		bl.Priors[c] /= float64(n)
	}
	if len(p.patterns) > 0 {
		cands := make([]featsel.Candidate, len(p.patterns))
		for i, pt := range p.patterns {
			cands[i] = featsel.Candidate{Items: pt.Items, Cover: b.Cover(pt.Items)}
		}
		bl.FireRate = featsel.FireRates(cands, n)
	}
	confs := make([]int64, 0, n)
	for _, fv := range x {
		cls, conf, hasConf := p.predictConf(fv)
		if cls >= 0 && cls < len(bl.PredMix) {
			bl.PredMix[cls]++
		}
		bl.DensityHist[obs.BucketIndex(int64(len(fv)))]++
		if hasConf {
			m := modelobs.ConfMicro(conf)
			bl.ConfHist[obs.BucketIndex(m)]++
			confs = append(confs, m)
		}
	}
	for c := range bl.PredMix {
		bl.PredMix[c] /= float64(n)
	}
	if len(confs) > 0 {
		bl.HasConf = true
		sort.Slice(confs, func(i, j int) bool { return confs[i] < confs[j] })
		bl.LowConfCut = confs[(len(confs)-1)/10]
		below := 0
		for _, c := range confs {
			if c <= bl.LowConfCut {
				below++
			}
		}
		bl.LowConfRate = float64(below) / float64(len(confs))
	}
	p.baseline = bl
	if o := p.cfg.Obs; o.Enabled() {
		o.Counter("baseline.rows").Add(int64(n))
		o.Gauge("baseline.low_conf_rate").Set(bl.LowConfRate)
	}
}

// predictConf scores one feature vector and, for learners that
// expose one, its confidence: the SVM margin or the C4.5 leaf
// purity. The class is identical to model.Predict's; hasConf is
// false for learners without a native confidence (naive Bayes, kNN).
// Shared by the baseline pass and the tracked Predict loop;
// allocation behavior matches plain Predict (the SVM path reuses
// Predict's own vote/score scratch shape).
func (p *Pipeline) predictConf(fv []int32) (cls int, conf float64, hasConf bool) {
	switch m := p.model.(type) {
	case *svm.Model:
		cls, conf = m.PredictMargin(fv)
		return cls, conf, true
	case *c45.Model:
		cls, conf = m.PredictConf(fv)
		return cls, conf, true
	default:
		return p.model.Predict(fv), 0, false
	}
}
