package core

import (
	"sort"

	"dfpc/internal/dataset"
	"dfpc/internal/featsel"
	"dfpc/internal/modelobs"
	"dfpc/internal/obs"
)

// computeBaseline records the training reference distribution the
// modelobs drift layer scores live traffic against: label priors, the
// model's own predicted-class mix on the training rows, per-pattern
// fire rates from the selection-time coverage bitmaps, and confidence
// and feature-density histograms in the obs log2 bucket layout. It
// runs at the tail of every successful Fit (one extra predict pass
// over the training rows — small next to SMO/tree training) so every
// saved model carries its own drift reference. Deterministic: no
// clocks, no randomness, and the row order is the fit order.
func (p *Pipeline) computeBaseline(b *dataset.Binary, x [][]int32) {
	sp := p.cfg.Obs.Start("baseline").Attr("rows", len(x))
	defer sp.End()
	n := len(x)
	bl := &modelobs.Baseline{
		Rows:        n,
		NumClasses:  b.NumClasses(),
		Priors:      make([]float64, b.NumClasses()),
		PredMix:     make([]float64, b.NumClasses()),
		ConfHist:    make([]int64, obs.NumHistBuckets),
		DensityHist: make([]int64, obs.NumHistBuckets),
	}
	if n == 0 {
		p.baseline = bl
		return
	}
	for _, y := range b.Labels {
		bl.Priors[y]++
	}
	for c := range bl.Priors {
		bl.Priors[c] /= float64(n)
	}
	if len(p.patterns) > 0 {
		cands := make([]featsel.Candidate, len(p.patterns))
		for i, pt := range p.patterns {
			cands[i] = featsel.Candidate{Items: pt.Items, Cover: b.Cover(pt.Items)}
		}
		bl.FireRate = featsel.FireRates(cands, n)
	}
	sc := p.newRowScorer()
	confs := make([]int64, 0, n)
	for _, fv := range x {
		cls, conf, hasConf := sc.predictConf(fv)
		if cls >= 0 && cls < len(bl.PredMix) {
			bl.PredMix[cls]++
		}
		bl.DensityHist[obs.BucketIndex(int64(len(fv)))]++
		if hasConf {
			m := modelobs.ConfMicro(conf)
			bl.ConfHist[obs.BucketIndex(m)]++
			confs = append(confs, m)
		}
	}
	for c := range bl.PredMix {
		bl.PredMix[c] /= float64(n)
	}
	if len(confs) > 0 {
		bl.HasConf = true
		sort.Slice(confs, func(i, j int) bool { return confs[i] < confs[j] })
		bl.LowConfCut = confs[(len(confs)-1)/10]
		below := 0
		for _, c := range confs {
			if c <= bl.LowConfCut {
				below++
			}
		}
		bl.LowConfRate = float64(below) / float64(len(confs))
	}
	p.baseline = bl
	if o := p.cfg.Obs; o.Enabled() {
		o.Counter("baseline.rows").Add(int64(n))
		o.Gauge("baseline.low_conf_rate").Set(bl.LowConfRate)
	}
}

