//go:build !race

package core

// raceEnabled gates allocation assertions: the race detector's
// instrumentation allocates on its own, so alloc budgets only hold in
// non-race builds.
const raceEnabled = false
