package core

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"dfpc/internal/datagen"
	"dfpc/internal/dataset"
	"dfpc/internal/mining"
)

// The compiled matcher is an optimization, not a semantic change: for
// every row, featureVectorInto (trie walk) must produce exactly the
// bytes featureVectorNaive (per-pattern containsAll) produces. These
// tests pin that equivalence on the bundled benchmark datasets, on
// randomized datasets, and on adversarial pattern sets (empty,
// single-item, duplicate, unmatched) that a fit would rarely select.

// assertCompiledMatchesNaive compares the two feature-vector
// implementations on every row of d through p's fitted coder.
func assertCompiledMatchesNaive(t *testing.T, p *Pipeline, d *dataset.Dataset) {
	t.Helper()
	bp, err := p.NewBatchPredictor()
	if err != nil {
		t.Fatal(err)
	}
	if err := bp.coder.checkSchema(d); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < d.NumRows(); r++ {
		tx, err := bp.coder.encode(d.Rows[r], r)
		if err != nil {
			t.Fatal(err)
		}
		naive := p.featureVectorNaive(tx)
		got := p.featureVectorInto(bp.fv[:0], tx, &bp.ms)
		if !slices.Equal(got, naive) {
			t.Fatalf("row %d: compiled feature vector %v != naive %v (tx %v)", r, got, naive, tx)
		}
	}
}

// TestDifferentialBundledDatasets fits the full pipeline on bundled
// UCI stand-ins and checks compiled-vs-naive equivalence over every
// row the model can be asked to score.
func TestDifferentialBundledDatasets(t *testing.T) {
	for _, name := range []string{"austral", "breast", "zoo"} {
		t.Run(name, func(t *testing.T) {
			d, err := datagen.ByName(name, 1)
			if err != nil {
				t.Fatal(err)
			}
			p := NewPatFS(SVMLinear, 0.15)
			if err := p.Fit(d, allRows(d.NumRows())); err != nil {
				t.Fatal(err)
			}
			if len(p.patterns) == 0 {
				t.Fatal("no patterns selected; differential test would be vacuous")
			}
			assertCompiledMatchesNaive(t, p, d)
		})
	}
}

// TestDifferentialRandomized fuzzes the equivalence over many small
// random categorical datasets: random schema shapes, random rows,
// random labels — whatever patterns the miner happens to select.
func TestDifferentialRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		nAttrs := 2 + rng.Intn(5)
		d := &dataset.Dataset{Name: fmt.Sprintf("rand%d", trial), Classes: []string{"a", "b"}}
		cards := make([]int, nAttrs)
		for a := 0; a < nAttrs; a++ {
			cards[a] = 2 + rng.Intn(3)
			attr := dataset.Attribute{Name: fmt.Sprintf("c%d", a), Kind: dataset.Categorical}
			for v := 0; v < cards[a]; v++ {
				attr.Values = append(attr.Values, fmt.Sprintf("v%d", v))
			}
			d.Attrs = append(d.Attrs, attr)
		}
		nRows := 30 + rng.Intn(50)
		for i := 0; i < nRows; i++ {
			row := make([]float64, nAttrs)
			for a := range row {
				row[a] = float64(rng.Intn(cards[a]))
			}
			d.Rows = append(d.Rows, row)
			d.Labels = append(d.Labels, rng.Intn(2))
		}
		p := NewPatFS(SVMLinear, 0.1+rng.Float64()*0.2)
		if err := p.Fit(d, allRows(nRows)); err != nil {
			t.Fatalf("trial %d: fit: %v", trial, err)
		}
		assertCompiledMatchesNaive(t, p, d)
	}
}

// TestDifferentialEdgePatterns replaces a fitted pipeline's pattern
// set with shapes selection would rarely produce — the empty pattern
// (matches every row), single items, duplicates, and an unmatchable
// pattern — recompiles the matcher, and requires the two paths to
// still agree, including on the pattern-feature ID assignment.
func TestDifferentialEdgePatterns(t *testing.T) {
	p, _, _ := fitXORPipeline(t)
	d := xorDataset(80)
	// Item IDs: x∈{0,1}, y∈{2,3}, z∈{4,5} (attribute-major layout).
	p.patterns = []mining.Pattern{
		{Items: nil},                 // empty: subset of everything
		{Items: []int32{1}},          // single item
		{Items: []int32{1, 3}},       // pair
		{Items: []int32{1, 3}},       // exact duplicate
		{Items: []int32{0, 1}},       // contradiction: x=0 and x=1 never co-occur
		{Items: []int32{1, 3, 5}},    // full-width
		{Items: []int32{0, 2, 4, 5}}, // another contradiction (z twice)
	}
	if err := p.compileMatcher(); err != nil {
		t.Fatal(err)
	}
	assertCompiledMatchesNaive(t, p, d)
}
