package core

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"dfpc/internal/obs"
)

func fitXOR(t *testing.T, l Learner) (*Pipeline, []int, *Pipeline) {
	t.Helper()
	d := xorDataset(80)
	p := NewPatFS(l, 0.2)
	rows := make([]int, d.NumRows())
	for i := range rows {
		rows[i] = i
	}
	if err := p.Fit(d, rows); err != nil {
		t.Fatal(err)
	}
	return p, rows, p
}

func TestPredictExplainSVM(t *testing.T) {
	d := xorDataset(80)
	p, rows, _ := fitXOR(t, SVMLinear)

	pred, err := p.Predict(d, rows)
	if err != nil {
		t.Fatal(err)
	}
	exps, err := p.PredictExplain(context.Background(), d, rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) != len(rows) {
		t.Fatalf("%d explanations for %d rows", len(exps), len(rows))
	}
	firedAny := false
	for i, ex := range exps {
		if ex.Class != pred[i] {
			t.Fatalf("row %d: explained class %d != predicted %d — explanation changed the prediction", i, ex.Class, pred[i])
		}
		if ex.Row != rows[i] {
			t.Fatalf("row %d: explanation row %d", i, ex.Row)
		}
		if ex.ClassName != d.Classes[ex.Class] {
			t.Fatalf("row %d: class name %q for class %d", i, ex.ClassName, ex.Class)
		}
		if ex.SVM == nil {
			t.Fatalf("row %d: SVM learner produced no SVM evidence", i)
		}
		if ex.Tree != nil {
			t.Fatalf("row %d: SVM learner produced a tree path", i)
		}
		if len(ex.Items) != len(ex.ItemNames) {
			t.Fatalf("row %d: %d items but %d names", i, len(ex.Items), len(ex.ItemNames))
		}
		for _, fp := range ex.Fired {
			firedAny = true
			if fp.Name == "" {
				t.Fatalf("row %d: fired pattern %d has no rendered name", i, fp.FeatureID)
			}
			if fp.Support <= 0 {
				t.Fatalf("row %d: fired pattern %q support %d", i, fp.Name, fp.Support)
			}
			if len(fp.Items) == 0 {
				t.Fatalf("row %d: fired pattern %q lost its itemset", i, fp.Name)
			}
		}
	}
	// XOR is only solvable through pattern features; they must fire.
	if !firedAny {
		t.Fatal("no pattern features fired on the XOR dataset")
	}
}

func TestPredictExplainC45(t *testing.T) {
	d := xorDataset(80)
	p, rows, _ := fitXOR(t, C45Tree)
	pred, err := p.Predict(d, rows)
	if err != nil {
		t.Fatal(err)
	}
	exps, err := p.PredictExplain(context.Background(), d, rows[:10])
	if err != nil {
		t.Fatal(err)
	}
	for i, ex := range exps {
		if ex.Class != pred[i] {
			t.Fatalf("row %d: explained class %d != predicted %d", i, ex.Class, pred[i])
		}
		if ex.Tree == nil {
			t.Fatalf("row %d: C4.5 learner produced no decision path", i)
		}
		if ex.SVM != nil {
			t.Fatalf("row %d: C4.5 learner produced SVM evidence", i)
		}
		if ex.Tree.LeafTotal <= 0 {
			t.Fatalf("row %d: empty leaf in decision path", i)
		}
	}
}

// TestPredictExplainJSON: each explanation must serialize to one JSON
// object — the contract behind `dfpc -load model -explain N` JSONL
// output.
func TestPredictExplainJSON(t *testing.T) {
	d := xorDataset(40)
	p, rows, _ := fitXOR(t, SVMLinear)
	exps, err := p.PredictExplain(context.Background(), d, rows[:5])
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, ex := range exps {
		if err := enc.Encode(ex); err != nil {
			t.Fatal(err)
		}
	}
	dec := json.NewDecoder(&buf)
	for i := 0; i < len(exps); i++ {
		var back PredictionExplanation
		if err := dec.Decode(&back); err != nil {
			t.Fatalf("line %d does not decode: %v", i, err)
		}
		if back.Class != exps[i].Class || back.Row != exps[i].Row {
			t.Fatalf("line %d round-trip drift: %+v vs %+v", i, back, exps[i])
		}
	}
}

// TestPredictExplainAfterLoad: a pipeline restored with Load has no
// item space; explanations must still work, by feature ID only.
func TestPredictExplainAfterLoad(t *testing.T) {
	d := xorDataset(80)
	p, rows, _ := fitXOR(t, SVMLinear)

	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	exps, err := q.PredictExplain(context.Background(), d, rows[:8])
	if err != nil {
		t.Fatal(err)
	}
	orig, err := p.PredictExplain(context.Background(), d, rows[:8])
	if err != nil {
		t.Fatal(err)
	}
	for i, ex := range exps {
		if ex.Class != orig[i].Class {
			t.Fatalf("row %d: loaded pipeline explains class %d, original %d", i, ex.Class, orig[i].Class)
		}
		if len(ex.ItemNames) != 0 {
			t.Fatalf("row %d: loaded pipeline (no item space) rendered item names %v", i, ex.ItemNames)
		}
		if len(ex.Items) != len(orig[i].Items) {
			t.Fatalf("row %d: item IDs drifted after load", i)
		}
	}
}

func TestPredictExplainBeforeFit(t *testing.T) {
	p := NewPatFS(SVMLinear, 0.2)
	if _, err := p.PredictExplain(context.Background(), xorDataset(8), []int{0}); err == nil {
		t.Fatal("PredictExplain before Fit must error")
	}
}

// TestFitRecordsSelectionAudit: fitting a pattern pipeline with an
// observer attaches the MMRFS decision trail to Stats.
func TestFitRecordsSelectionAudit(t *testing.T) {
	d := xorDataset(80)
	p := NewPatFS(SVMLinear, 0.2)
	p.SetObserver(obs.New())
	rows := make([]int, d.NumRows())
	for i := range rows {
		rows[i] = i
	}
	if err := p.Fit(d, rows); err != nil {
		t.Fatal(err)
	}
	if len(p.Stats.SelectionAudit) == 0 {
		t.Fatal("no selection audit recorded with observability on")
	}
	accepted := 0
	for _, e := range p.Stats.SelectionAudit {
		if e.Accepted {
			accepted++
		}
	}
	if accepted != p.Stats.FeatureCount {
		t.Fatalf("%d accepted audit entries, %d selected features", accepted, p.Stats.FeatureCount)
	}
}
