package core

import (
	"fmt"

	"dfpc/internal/dataset"
	"dfpc/internal/discretize"
	"dfpc/internal/measures"
	"dfpc/internal/mining"
)

// PatternStat describes one feature (single item or mined pattern) with
// the measures plotted in Figures 1–3: length, support, information
// gain, and Fisher score.
type PatternStat struct {
	Items      []int32
	Length     int
	Support    int     // absolute support
	RelSupport float64 // θ
	InfoGain   float64
	Fisher     float64
}

// AnalyzeOptions configures AnalyzePatterns.
type AnalyzeOptions struct {
	// MinSupport is the relative per-class mining threshold (default 0.1).
	MinSupport float64
	// MaxLen caps pattern length (default 6; negative = unlimited).
	MaxLen int
	// MaxPatterns caps the pool (default 500000).
	MaxPatterns int
	// IncludeSingles adds every single item as a length-1 entry, so the
	// Figure 1 comparison of single features vs. patterns is possible.
	IncludeSingles bool
	// Disc configures discretization (default entropy-MDL).
	Disc discretize.Options
}

func (o AnalyzeOptions) withDefaults() AnalyzeOptions {
	if o.MinSupport <= 0 {
		o.MinSupport = 0.1
	}
	if o.MaxLen == 0 {
		o.MaxLen = 6
	} else if o.MaxLen < 0 {
		o.MaxLen = 0
	}
	if o.MaxPatterns <= 0 {
		o.MaxPatterns = 500_000
	}
	return o
}

// AnalyzePatterns discretizes and encodes a dataset, mines closed
// patterns per class, and returns the measure statistics for each
// feature along with the binary encoding (for bound overlays, which
// need the class prior).
func AnalyzePatterns(d *dataset.Dataset, opt AnalyzeOptions) ([]PatternStat, *dataset.Binary, error) {
	opt = opt.withDefaults()
	cat, err := discretize.FitApply(d, opt.Disc)
	if err != nil {
		return nil, nil, fmt.Errorf("core: analyze discretize: %w", err)
	}
	b, err := dataset.Encode(cat)
	if err != nil {
		return nil, nil, fmt.Errorf("core: analyze encode: %w", err)
	}
	mined, err := mining.MinePerClass(b, mining.PerClassOptions{
		MinSupport:  opt.MinSupport,
		Closed:      true,
		MaxPatterns: opt.MaxPatterns,
		MaxLen:      opt.MaxLen,
		MinLen:      2,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("core: analyze mining: %w", err)
	}

	n := float64(b.NumRows())
	var stats []PatternStat
	add := func(items []int32) {
		cover := b.Cover(items)
		sup := cover.Count()
		stats = append(stats, PatternStat{
			Items:      items,
			Length:     len(items),
			Support:    sup,
			RelSupport: float64(sup) / n,
			InfoGain:   measures.InfoGain(cover, b.ClassMasks),
			Fisher:     measures.FisherScore(cover, b.ClassMasks),
		})
	}
	if opt.IncludeSingles {
		for i := 0; i < b.NumItems(); i++ {
			add([]int32{int32(i)})
		}
	}
	for _, p := range mined {
		add(p.Items)
	}
	return stats, b, nil
}

// BoundPoint is one point of a theoretical bound curve.
type BoundPoint struct {
	Support int
	Theta   float64
	Bound   float64
}

// IGBoundCurve returns the paper's Figure 2 overlay: the information
// gain upper bound IGub(θ) at every absolute support 1..n−1, for a
// two-class problem with prior p (binary datasets) or the multi-class
// bound given the full prior vector.
func IGBoundCurve(classCounts []int) []BoundPoint {
	n := 0
	for _, c := range classCounts {
		n += c
	}
	if n == 0 {
		return nil
	}
	priors := make([]float64, len(classCounts))
	for i, c := range classCounts {
		priors[i] = float64(c) / float64(n)
	}
	out := make([]BoundPoint, 0, n-1)
	for s := 1; s < n; s++ {
		theta := float64(s) / float64(n)
		var b float64
		if len(classCounts) == 2 {
			p := priors[1]
			if p > 0.5 {
				p = 1 - p
			}
			b = measures.IGUpperBound(theta, p)
		} else {
			b = measures.IGUpperBoundMulti(theta, priors)
		}
		out = append(out, BoundPoint{Support: s, Theta: theta, Bound: b})
	}
	return out
}

// FisherBoundCurve returns the Figure 3 overlay Frub(θ) for a two-class
// problem. For multi-class inputs it uses the minority-vs-rest prior,
// which upper-bounds the pairwise-separability score the figure plots.
func FisherBoundCurve(classCounts []int) []BoundPoint {
	n := 0
	for _, c := range classCounts {
		n += c
	}
	if n == 0 {
		return nil
	}
	// Minority prior.
	minC := classCounts[0]
	for _, c := range classCounts {
		if c < minC {
			minC = c
		}
	}
	p := float64(minC) / float64(n)
	out := make([]BoundPoint, 0, n-1)
	for s := 1; s < n; s++ {
		theta := float64(s) / float64(n)
		out = append(out, BoundPoint{Support: s, Theta: theta, Bound: measures.FisherUpperBound(theta, p)})
	}
	return out
}
