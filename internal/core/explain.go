package core

import (
	"context"
	"errors"

	"dfpc/internal/c45"
	"dfpc/internal/dataset"
	"dfpc/internal/guard"
	"dfpc/internal/svm"
)

// Per-prediction explanations: which pattern features fired on a row,
// what each contributed, and the learner's own evidence (SVM voting
// breakdown or the C4.5 decision path). This is the prediction-time
// counterpart of Explain(), which describes the fitted feature space as
// a whole.

// FiredPattern is one selected pattern feature that matched the row
// being explained.
type FiredPattern struct {
	// FeatureID is the pattern's feature ID in the fitted space
	// (numItems + pattern index).
	FeatureID int `json:"feature_id"`
	// Name renders the pattern's items, e.g. "color=red ∧ size=(2.5-5]".
	Name  string  `json:"name"`
	Items []int32 `json:"items"`
	// Support and InfoGain are the pattern's training-set statistics.
	Support  int     `json:"support"`
	InfoGain float64 `json:"info_gain"`
	// Weight is the feature's signed contribution toward the predicted
	// class from the linear-SVM decomposition (positive = evidence for
	// the prediction). Zero for non-linear kernels and other learners.
	Weight float64 `json:"weight,omitempty"`
}

// PredictionExplanation is the full evidence behind one classified row.
type PredictionExplanation struct {
	// Row is the row's index in the original dataset.
	Row int `json:"row"`
	// Class and ClassName identify the prediction.
	Class     int    `json:"class"`
	ClassName string `json:"class_name,omitempty"`
	// Items lists the kept single-item features present in the row;
	// ItemNames renders them in the same order.
	Items     []int32  `json:"items,omitempty"`
	ItemNames []string `json:"item_names,omitempty"`
	// Fired lists the pattern features that matched the row.
	Fired []FiredPattern `json:"fired,omitempty"`
	// SVM is the one-vs-one voting breakdown (SVM learners only).
	SVM *svm.Explanation `json:"svm,omitempty"`
	// Tree is the root-to-leaf decision path (C4.5 learner only).
	Tree *c45.PathResult `json:"tree,omitempty"`
}

// PredictExplain classifies the given rows exactly like PredictContext
// while recording, per row, the fired pattern features and the
// learner's decision evidence. It is introspection-only: the returned
// Class values are identical to PredictContext's at any worker count.
func (p *Pipeline) PredictExplain(ctx context.Context, d *dataset.Dataset, rows []int) ([]PredictionExplanation, error) {
	if p.model == nil {
		return nil, errors.New("core: PredictExplain before Fit")
	}
	g := guard.New(ctx, guard.Limits{Deadline: p.stageDeadline()})
	if err := g.CheckNow(); err != nil {
		return nil, err
	}
	sp := p.cfg.Obs.Start("predict-explain").Attr("rows", len(rows))
	defer sp.End()
	bp, err := p.NewBatchPredictor()
	if err != nil {
		return nil, err
	}
	if err := bp.coder.checkSchema(d); err != nil {
		return nil, err
	}
	out := make([]PredictionExplanation, len(rows))
	lim := int32(p.numItems)
	for i, r := range rows {
		if err := g.Check(); err != nil {
			return nil, err
		}
		// The feature vector comes from the same compiled-matcher path
		// Predict scores, so the fired set below can never disagree
		// with the prediction: both are one trie walk's accept set.
		fv, err := bp.featureVector(d.Rows[r], r)
		if err != nil {
			return nil, err
		}
		ex := PredictionExplanation{Row: r}
		var fired []int // pattern indices, ascending (matcher accept order)
		for _, f := range fv {
			if f < lim {
				ex.Items = append(ex.Items, f)
				// The item space survives Fit but not Save/Load; loaded
				// pipelines explain by ID only.
				if p.space != nil {
					ex.ItemNames = append(ex.ItemNames, p.space.ItemName(int(f)))
				}
			} else {
				fired = append(fired, int(f)-p.numItems)
			}
		}
		switch m := p.model.(type) {
		case *svm.Model:
			se := m.ExplainPredict(fv)
			ex.Class = se.Class
			ex.SVM = se
		case *c45.Model:
			tp := m.PredictPath(fv)
			ex.Class = tp.Class
			ex.Tree = tp
		default:
			ex.Class = p.model.Predict(fv)
		}
		if ex.Class >= 0 && ex.Class < len(d.Classes) {
			ex.ClassName = d.Classes[ex.Class]
		}
		for _, j := range fired {
			fp := FiredPattern{FeatureID: p.numItems + j}
			// p.report parallels p.patterns (both in SortPatterns order);
			// it is nil only for pattern-free pipelines, which never fire.
			if j < len(p.report) {
				r := p.report[j]
				fp.Name, fp.Items, fp.Support, fp.InfoGain = r.Name, r.Items, r.Support, r.InfoGain
			} else if j < len(p.patterns) {
				fp.Items = p.patterns[j].Items
			}
			if ex.SVM != nil {
				fp.Weight = ex.SVM.FeatureWeights[int32(p.numItems+j)]
			}
			ex.Fired = append(ex.Fired, fp)
		}
		out[i] = ex
	}
	return out, nil
}
