package core

import (
	"strings"
	"testing"

	"dfpc/internal/datagen"
	"dfpc/internal/eval"
)

func allRows(n int) []int {
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	return rows
}

func TestNaiveBayesAndKNNLearners(t *testing.T) {
	d := xorDataset(80)
	for _, l := range []Learner{NaiveBayes, KNN} {
		p := NewPatFS(l, 0.2)
		if err := p.Fit(d, allRows(d.NumRows())); err != nil {
			t.Fatalf("%v: %v", l, err)
		}
		pred, err := p.Predict(d, allRows(d.NumRows()))
		if err != nil {
			t.Fatalf("%v: %v", l, err)
		}
		acc, _ := eval.Accuracy(pred, d.Labels)
		if acc < 0.9 {
			t.Fatalf("%v on XOR with patterns: accuracy %v", l, acc)
		}
	}
}

func TestLearnerStringers(t *testing.T) {
	for l, want := range map[Learner]string{
		SVMLinear:  "svm-linear",
		SVMRBF:     "svm-rbf",
		C45Tree:    "c4.5",
		NaiveBayes: "naive-bayes",
		KNN:        "knn",
	} {
		if got := l.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(l), got, want)
		}
	}
	if Learner(99).String() == "" {
		t.Error("unknown learner stringer empty")
	}
}

func TestExplainReportsSelectedPatterns(t *testing.T) {
	d := xorDataset(80)
	p := NewPatFS(SVMLinear, 0.2)
	if err := p.Fit(d, allRows(d.NumRows())); err != nil {
		t.Fatal(err)
	}
	rep := p.Explain()
	if len(rep) == 0 {
		t.Fatal("empty report")
	}
	if len(rep) != p.Stats.FeatureCount {
		t.Fatalf("report has %d entries, selected %d", len(rep), p.Stats.FeatureCount)
	}
	for _, r := range rep {
		if r.Length < 2 || len(r.Items) != r.Length {
			t.Fatalf("bad report entry: %+v", r)
		}
		if !strings.Contains(r.Name, "=") || !strings.Contains(r.Name, "∧") {
			t.Fatalf("unreadable pattern name %q", r.Name)
		}
		if r.Support <= 0 || r.RelSupport <= 0 || r.RelSupport > 1 {
			t.Fatalf("bad support stats: %+v", r)
		}
		if r.Confidence < 0 || r.Confidence > 1 {
			t.Fatalf("bad confidence: %+v", r)
		}
		if r.MajorityClass != "even" && r.MajorityClass != "odd" {
			t.Fatalf("bad majority class %q", r.MajorityClass)
		}
	}
}

func TestExplainEmptyForItemModels(t *testing.T) {
	d := xorDataset(40)
	p := NewItemAll(SVMLinear)
	if err := p.Fit(d, allRows(d.NumRows())); err != nil {
		t.Fatal(err)
	}
	if rep := p.Explain(); rep != nil {
		t.Fatalf("Item_All should have no pattern report, got %d entries", len(rep))
	}
}

func TestInnerModelSelection(t *testing.T) {
	d, err := datagen.ByName("labor", 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{
		UsePatterns:    true,
		SelectPatterns: true,
		MinSupport:     0.3,
		CGrid:          []float64{0.1, 1, 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Fit(d, allRows(d.NumRows())); err != nil {
		t.Fatal(err)
	}
	sel := p.Stats.SelectedC
	if sel != 0.1 && sel != 1 && sel != 10 {
		t.Fatalf("SelectedC = %v, not in grid", sel)
	}
	if _, err := p.Predict(d, allRows(10)); err != nil {
		t.Fatal(err)
	}
}

func TestInnerModelSelectionRejectsBadGrid(t *testing.T) {
	d := xorDataset(60)
	p, err := New(Config{CGrid: []float64{-1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Fit(d, allRows(d.NumRows())); err == nil {
		t.Fatal("negative C should error")
	}
}

func TestFitDeterminism(t *testing.T) {
	d, err := datagen.ByName("labor", 4)
	if err != nil {
		t.Fatal(err)
	}
	rows := allRows(d.NumRows())
	run := func() []int {
		p := NewPatFS(SVMLinear, 0.3)
		if err := p.Fit(d, rows); err != nil {
			t.Fatal(err)
		}
		pred, err := p.Predict(d, rows)
		if err != nil {
			t.Fatal(err)
		}
		return pred
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("prediction %d differs across identical fits", i)
		}
	}
}

func TestPredictProb(t *testing.T) {
	d := xorDataset(80)
	p, err := New(Config{UsePatterns: true, SelectPatterns: true, MinSupport: 0.2, Probability: true})
	if err != nil {
		t.Fatal(err)
	}
	rows := allRows(d.NumRows())
	if err := p.Fit(d, rows); err != nil {
		t.Fatal(err)
	}
	probs, err := p.PredictProb(d, rows[:10])
	if err != nil {
		t.Fatal(err)
	}
	for i, pr := range probs {
		if len(pr) != 2 {
			t.Fatalf("row %d: %d probs", i, len(pr))
		}
		sum := pr[0] + pr[1]
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("row %d: probs sum %v", i, sum)
		}
		// The argmax must match the hard prediction.
		hard, err := p.Predict(d, rows[i:i+1])
		if err != nil {
			t.Fatal(err)
		}
		best := 0
		if pr[1] > pr[0] {
			best = 1
		}
		if best != hard[0] {
			t.Fatalf("row %d: prob argmax %d != prediction %d (%v)", i, best, hard[0], pr)
		}
	}
}

func TestPredictProbRequiresCalibration(t *testing.T) {
	d := xorDataset(40)
	p := NewPatFS(SVMLinear, 0.2) // no Probability flag
	if err := p.Fit(d, allRows(d.NumRows())); err != nil {
		t.Fatal(err)
	}
	if _, err := p.PredictProb(d, []int{0}); err == nil {
		t.Fatal("expected calibration error")
	}
	tree := NewPatFS(C45Tree, 0.2)
	if err := tree.Fit(d, allRows(d.NumRows())); err != nil {
		t.Fatal(err)
	}
	if _, err := tree.PredictProb(d, []int{0}); err == nil {
		t.Fatal("expected unsupported-learner error")
	}
}
