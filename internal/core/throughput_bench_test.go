package core

import (
	"fmt"
	"testing"

	"dfpc/internal/datagen"
)

// BenchmarkPredictThroughput measures the compiled predict path's
// serving rate at the batch sizes the future prediction server cares
// about: single-row (interactive), 64 (typical request batch), and
// 1024 (bulk scoring). rows/s is the headline number; ns/op remains
// comparable across runs because every op scores exactly `batch` rows.
func BenchmarkPredictThroughput(b *testing.B) {
	d := xorDataset(1024)
	rows := allRows(d.NumRows())
	p := NewPatFS(SVMLinear, 0.2)
	if err := p.Fit(d, rows); err != nil {
		b.Fatal(err)
	}
	for _, batch := range []int{1, 64, 1024} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			in := rows[:batch]
			out := make([]int, batch)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := p.PredictBatch(nil, d, in, out); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			rowsPerSec := float64(batch) * float64(b.N) / b.Elapsed().Seconds()
			b.ReportMetric(rowsPerSec, "rows/s")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(float64(batch)*float64(b.N)), "ns/row")
		})
	}
}

// BenchmarkFeaturize pits the compiled trie walk against the naive
// per-pattern containsAll oracle on a bundled dataset: the CI
// bench-speedup job asserts compiled wins (non-blocking — shared
// runners are noisy), and the differential tests assert they agree.
func BenchmarkFeaturize(b *testing.B) {
	d, err := datagen.ByName("austral", 1)
	if err != nil {
		b.Fatal(err)
	}
	p := NewPatFS(SVMLinear, 0.15)
	if err := p.Fit(d, allRows(d.NumRows())); err != nil {
		b.Fatal(err)
	}
	bp, err := p.NewBatchPredictor()
	if err != nil {
		b.Fatal(err)
	}
	txs := make([][]int32, d.NumRows())
	for r := range txs {
		tx, err := bp.coder.encode(d.Rows[r], r)
		if err != nil {
			b.Fatal(err)
		}
		txs[r] = append([]int32(nil), tx...)
	}
	b.Run("compiled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, tx := range txs {
				bp.fv = p.featureVectorInto(bp.fv[:0], tx, &bp.ms)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, tx := range txs {
				_ = p.featureVectorNaive(tx)
			}
		}
	})
}
