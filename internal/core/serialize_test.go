package core

import (
	"bytes"
	"strings"
	"testing"

	"dfpc/internal/datagen"
)

func roundTripPipeline(t *testing.T, p *Pipeline) *Pipeline {
	t.Helper()
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return loaded
}

func TestSaveLoadAllLearners(t *testing.T) {
	d, err := datagen.ByName("labor", 1)
	if err != nil {
		t.Fatal(err)
	}
	rows := allRows(d.NumRows())
	for _, l := range []Learner{SVMLinear, SVMRBF, C45Tree, NaiveBayes, KNN} {
		p := NewPatFS(l, 0.3)
		if err := p.Fit(d, rows); err != nil {
			t.Fatalf("%v: %v", l, err)
		}
		want, err := p.Predict(d, rows)
		if err != nil {
			t.Fatal(err)
		}
		loaded := roundTripPipeline(t, p)
		got, err := loaded.Predict(d, rows)
		if err != nil {
			t.Fatalf("%v: predict after load: %v", l, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v: prediction %d changed after round trip", l, i)
			}
		}
		// Explanation report survives.
		if len(loaded.Explain()) != len(p.Explain()) {
			t.Fatalf("%v: report lost in round trip", l)
		}
		if loaded.Stats.FeatureCount != p.Stats.FeatureCount {
			t.Fatalf("%v: stats lost", l)
		}
	}
}

func TestSaveBeforeFit(t *testing.T) {
	p := NewItemAll(SVMLinear)
	var buf bytes.Buffer
	if err := p.Save(&buf); err == nil {
		t.Fatal("Save before Fit should error")
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a gob stream")); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestLoadedPipelineCanRefit(t *testing.T) {
	d, err := datagen.ByName("labor", 1)
	if err != nil {
		t.Fatal(err)
	}
	rows := allRows(d.NumRows())
	p := NewPatFS(SVMLinear, 0.3)
	if err := p.Fit(d, rows); err != nil {
		t.Fatal(err)
	}
	loaded := roundTripPipeline(t, p)
	if err := loaded.Fit(d, rows); err != nil {
		t.Fatalf("refit after load: %v", err)
	}
	if _, err := loaded.Predict(d, rows[:5]); err != nil {
		t.Fatal(err)
	}
}
