package patmatch

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"reflect"
	"slices"
	"testing"
)

// naiveContains is the reference semantics: sorted transaction tx
// contains every item of sorted pattern items. Mirrors
// core.containsAll, which the compiled matcher replaces.
func naiveContains(tx, items []int32) bool {
	i := 0
	for _, it := range items {
		for i < len(tx) && tx[i] < it {
			i++
		}
		if i >= len(tx) || tx[i] != it {
			return false
		}
		i++
	}
	return true
}

func naiveMatch(patterns [][]int32, tx []int32) []int32 {
	var out []int32
	for i, p := range patterns {
		if naiveContains(tx, p) {
			out = append(out, int32(i))
		}
	}
	return out
}

func matchIDs(m *Matcher, tx []int32, s *Scratch) []int32 {
	got := m.Match(tx, s)
	if len(got) == 0 {
		return nil
	}
	return append([]int32(nil), got...)
}

// randomSortedSet draws k distinct items from [0, universe) sorted
// ascending.
func randomSortedSet(rng *rand.Rand, k, universe int) []int32 {
	seen := make(map[int32]bool, k)
	out := make([]int32, 0, k)
	for len(out) < k {
		it := int32(rng.Intn(universe))
		if !seen[it] {
			seen[it] = true
			out = append(out, it)
		}
	}
	slices.Sort(out)
	return out
}

func TestMatchHandBuilt(t *testing.T) {
	patterns := [][]int32{
		{1, 3},       // 0
		{1, 3, 7},    // 1: extends 0
		{1, 5},       // 2: shares prefix 1
		{2},          // 3: single item
		{},           // 4: empty pattern matches everything
		{1, 3},       // 5: duplicate of 0
		{8, 9, 1000}, // 6: disjoint branch, large item IDs
	}
	m := Compile(patterns)
	var s Scratch
	cases := []struct {
		tx   []int32
		want []int32
	}{
		{[]int32{}, []int32{4}},
		{[]int32{1, 3}, []int32{0, 4, 5}},
		{[]int32{1, 3, 7}, []int32{0, 1, 4, 5}},
		{[]int32{1, 5, 7}, []int32{2, 4}},
		{[]int32{2}, []int32{3, 4}},
		{[]int32{0, 4, 6}, []int32{4}},
		{[]int32{1, 2, 3, 5, 7, 8, 9, 1000}, []int32{0, 1, 2, 3, 4, 5, 6}},
		{[]int32{8, 9}, []int32{4}},
	}
	for _, c := range cases {
		if got := matchIDs(m, c.tx, &s); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Match(%v) = %v, want %v", c.tx, got, c.want)
		}
	}
	if m.NumPatterns() != len(patterns) {
		t.Errorf("NumPatterns = %d, want %d", m.NumPatterns(), len(patterns))
	}
	if m.MaxDepth() != 3 {
		t.Errorf("MaxDepth = %d, want 3", m.MaxDepth())
	}
}

func TestMatchEmptyPatternSet(t *testing.T) {
	m := Compile(nil)
	var s Scratch
	if got := m.Match([]int32{1, 2, 3}, &s); len(got) != 0 {
		t.Fatalf("empty pattern set matched %v", got)
	}
	if m.NumNodes() != 1 {
		t.Fatalf("empty matcher has %d nodes, want 1 (the root)", m.NumNodes())
	}
}

// TestMatchDifferentialRandom is the fuzz-style differential: across
// many random pattern sets (including empty and single-item patterns)
// and random transactions, the trie walk must agree exactly with the
// per-pattern containsAll reference.
func TestMatchDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		universe := 2 + rng.Intn(40)
		numPats := rng.Intn(30)
		patterns := make([][]int32, numPats)
		for i := range patterns {
			k := rng.Intn(5) // 0..4 items: empty and singles included
			if k > universe {
				k = universe
			}
			patterns[i] = randomSortedSet(rng, k, universe)
		}
		m := Compile(patterns)
		var s Scratch
		for row := 0; row < 25; row++ {
			k := rng.Intn(universe + 1)
			tx := randomSortedSet(rng, k, universe)
			got := matchIDs(m, tx, &s)
			want := naiveMatch(patterns, tx)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d: Match(%v) over %v = %v, want %v",
					trial, tx, patterns, got, want)
			}
		}
	}
}

// TestCompileDeterministic: the same pattern list compiles to the same
// bytes no matter how it is ordered relative to a permuted copy that
// maps IDs back — i.e. compilation depends only on the (itemset, ID)
// mapping, never on iteration order or allocation addresses.
func TestCompileDeterministic(t *testing.T) {
	patterns := [][]int32{{1, 2}, {1, 2, 3}, {4}, {1, 5}, {}}
	a := Compile(patterns)
	b := Compile(patterns)
	var ab, bb bytes.Buffer
	if err := gob.NewEncoder(&ab).Encode(a); err != nil {
		t.Fatal(err)
	}
	if err := gob.NewEncoder(&bb).Encode(b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab.Bytes(), bb.Bytes()) {
		t.Fatal("two compiles of the same pattern set produced different bytes")
	}
}

func TestGobRoundTrip(t *testing.T) {
	patterns := [][]int32{{1, 3}, {1, 3, 7}, {2, 9}, {}}
	m := Compile(patterns)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		t.Fatal(err)
	}
	var back Matcher
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, &back) {
		t.Fatalf("gob round trip changed the matcher:\n%+v\n%+v", m, &back)
	}
	var s Scratch
	tx := []int32{1, 3, 7, 9}
	if got, want := matchIDs(&back, tx, &s), matchIDs(m, tx, &s); !reflect.DeepEqual(got, want) {
		t.Fatalf("decoded matcher matches %v, original %v", got, want)
	}
}

// TestMatchZeroAlloc: with a grown scratch, matching allocates nothing
// per call — the contract the core predict path's 0 allocs/row budget
// rests on.
func TestMatchZeroAlloc(t *testing.T) {
	patterns := [][]int32{{1, 3}, {1, 3, 7}, {1, 5}, {2}, {4, 6, 8}}
	m := Compile(patterns)
	var s Scratch
	s.Grow(m)
	txs := [][]int32{{1, 3, 7}, {2, 4, 6, 8}, {0, 9}, {1, 2, 3, 4, 5, 6, 7, 8}}
	dst := make([]int32, 0, 16)
	allocs := testing.AllocsPerRun(200, func() {
		for _, tx := range txs {
			dst = m.MatchAppend(dst[:0], tx, 100, &s)
		}
	})
	if allocs != 0 {
		t.Fatalf("Match allocates %.1f times per run, want 0", allocs)
	}
}

// TestScratchGrowsWithoutGrow: a zero Scratch is legal — buffers grow
// on demand and stabilize.
func TestScratchGrowsWithoutGrow(t *testing.T) {
	patterns := [][]int32{{1, 2, 3, 4, 5}, {1, 2, 3, 4, 6}, {2, 3}}
	m := Compile(patterns)
	var s Scratch
	tx := []int32{1, 2, 3, 4, 5, 6}
	if got, want := matchIDs(m, tx, &s), []int32{0, 1, 2}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Match = %v, want %v", got, want)
	}
	allocs := testing.AllocsPerRun(100, func() { m.Match(tx, &s) })
	if allocs != 0 {
		t.Fatalf("warmed zero Scratch still allocates %.1f/call", allocs)
	}
}

func TestMatchAppendOffsetsAndOrder(t *testing.T) {
	patterns := [][]int32{{9}, {1}, {1, 9}}
	m := Compile(patterns)
	var s Scratch
	dst := []int32{42}
	dst = m.MatchAppend(dst, []int32{1, 9}, 10, &s)
	want := []int32{42, 10, 11, 12}
	if !reflect.DeepEqual(dst, want) {
		t.Fatalf("MatchAppend = %v, want %v (ascending IDs after the prefix)", dst, want)
	}
}

func BenchmarkMatch(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	patterns := make([][]int32, 64)
	for i := range patterns {
		patterns[i] = randomSortedSet(rng, 2+rng.Intn(4), 60)
	}
	m := Compile(patterns)
	txs := make([][]int32, 128)
	for i := range txs {
		txs[i] = randomSortedSet(rng, 14, 60)
	}
	var s Scratch
	s.Grow(m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Match(txs[i%len(txs)], &s)
	}
}
