// Package patmatch compiles a selected pattern set into a shared
// matching trie so the predict path can test every pattern against one
// encoded transaction in a single walk. The naive per-pattern subset
// test is O(|Fs|·|tx|) per row; closed pattern sets share long item
// prefixes by construction (the same structure the FP-tree exploits at
// mine time), so folding them into one trie over sorted item IDs makes
// the shared prefixes cost one traversal instead of |Fs| merges.
//
// The compiled Matcher is immutable, gob-serializable (it travels
// inside the model snapshot), and laid out in flat slices rather than
// pointer nodes: node records are index ranges into shared arrays, so
// the structure survives encoding unchanged, stays cache-friendly, and
// never needs pointer chasing. Matching is a single iterative walk
// with an explicit stack — no recursion, and with a warmed Scratch no
// allocation, which is what lets core.Predict hold a zero-allocs-per-
// row budget.
package patmatch

import "slices"

// Matcher is the compiled, immutable form of a pattern set. All fields
// are exported only so gob can serialize the structure inside model
// snapshots; callers must treat a Matcher as read-only. A Matcher is
// safe for concurrent use — every mutable bit of matching state lives
// in the caller's Scratch.
//
// Trie layout: node 0 is the root. Children of node i are the
// contiguous node range [ChildStart[i], ChildStart[i+1]), in strictly
// ascending EdgeItem order (nodes are numbered breadth-first, so the
// child blocks tile the node array in order). EdgeItem[i] is the item
// labelling the edge into node i (unused for the root). Pattern IDs
// accepted at node i — the patterns whose item set is exactly the
// root→i path — are AcceptIDs[AcceptStart[i]:AcceptStart[i+1]];
// duplicate itemsets in the input share one node and accept in input
// order.
type Matcher struct {
	EdgeItem    []int32
	ChildStart  []int32 // len = NumNodes()+1
	AcceptStart []int32 // len = NumNodes()+1
	AcceptIDs   []int32
	NumPats     int
	Depth       int // longest pattern length
}

// Scratch holds the per-caller mutable state of a match walk: the
// explicit traversal stack and the matched-ID output buffer. A zero
// Scratch is ready to use; after the first few calls its buffers reach
// the matcher's worst-case sizes and matching allocates nothing.
// Scratches are single-goroutine; concurrent matchers share the
// Matcher and carry one Scratch each.
type Scratch struct {
	stack   []frame
	matched []int32
}

// frame is one suspended trie position: the node to visit and the
// transaction offset matching resumes from.
type frame struct {
	node int32
	pos  int32
}

// Grow presizes the scratch to the matcher's worst case so the very
// first Match call is allocation-free. The stack can hold one frame
// per trie node (each node is visited at most once per transaction:
// its root path matches a sorted, duplicate-free transaction in at
// most one way) and the match buffer one entry per pattern.
func (s *Scratch) Grow(m *Matcher) {
	if m == nil {
		return
	}
	if n := m.NumNodes(); cap(s.stack) < n {
		s.stack = make([]frame, 0, n)
	}
	if cap(s.matched) < m.NumPats {
		s.matched = make([]int32, 0, m.NumPats)
	}
}

// NumNodes returns the number of trie nodes (at least 1: the root).
func (m *Matcher) NumNodes() int { return len(m.EdgeItem) }

// NumPatterns returns the number of compiled patterns.
func (m *Matcher) NumPatterns() int { return m.NumPats }

// MaxDepth returns the longest compiled pattern's length.
func (m *Matcher) MaxDepth() int { return m.Depth }

// Compile builds the matching trie for a pattern set. Pattern i's
// items must be sorted ascending and duplicate-free (the invariant
// mining.Pattern already maintains); the empty pattern is legal and
// matches every transaction. The construction is deterministic: the
// same pattern list always compiles to the same bytes, regardless of
// the order Compile visits them in — patterns are sorted
// lexicographically before insertion, and accept lists are ordered by
// pattern ID.
func Compile(patterns [][]int32) *Matcher {
	// Sort pattern indices lexicographically by items so the trie can
	// be built by sequential insertion: equal prefixes arrive adjacent
	// and next-items arrive ascending, which keeps every node's child
	// list append-only and sorted.
	order := make([]int32, len(patterns))
	for i := range order {
		order[i] = int32(i)
	}
	slices.SortFunc(order, func(a, b int32) int {
		if c := slices.Compare(patterns[a], patterns[b]); c != 0 {
			return c
		}
		return int(a) - int(b) // duplicates accept in pattern-ID order
	})

	// Pointer-form build (fit-time only; the flat form below is what
	// lives in the model).
	type bnode struct {
		item     int32
		children []*bnode
		accepts  []int32
		depth    int
	}
	root := &bnode{}
	nodes := 1
	depth := 0
	for _, pi := range order {
		cur := root
		for _, it := range patterns[pi] {
			kids := cur.children
			if n := len(kids); n > 0 && kids[n-1].item == it {
				cur = kids[n-1]
				continue
			}
			child := &bnode{item: it, depth: cur.depth + 1}
			cur.children = append(cur.children, child)
			cur = child
			nodes++
			if cur.depth > depth {
				depth = cur.depth
			}
		}
		cur.accepts = append(cur.accepts, pi)
	}

	// Breadth-first flattening: numbering nodes level by level lays
	// each node's children out contiguously and in ascending edge
	// order, so ChildStart can be a single prefix array.
	m := &Matcher{
		EdgeItem:    make([]int32, 0, nodes),
		ChildStart:  make([]int32, 0, nodes+1),
		AcceptStart: make([]int32, 0, nodes+1),
		NumPats:     len(patterns),
		Depth:       depth,
	}
	queue := make([]*bnode, 0, nodes)
	queue = append(queue, root)
	for qi := 0; qi < len(queue); qi++ {
		n := queue[qi]
		m.EdgeItem = append(m.EdgeItem, n.item)
		m.ChildStart = append(m.ChildStart, int32(len(queue)))
		m.AcceptStart = append(m.AcceptStart, int32(len(m.AcceptIDs)))
		m.AcceptIDs = append(m.AcceptIDs, n.accepts...)
		queue = append(queue, n.children...)
	}
	m.ChildStart = append(m.ChildStart, int32(len(queue)))
	m.AcceptStart = append(m.AcceptStart, int32(len(m.AcceptIDs)))
	return m
}

// Match walks the trie against one sorted transaction and returns the
// IDs of every pattern whose items are all contained in tx, ascending.
// The returned slice aliases s.matched and is valid until the next
// Match call on the same Scratch. With a warmed (or Grown) Scratch the
// walk performs no allocation; it never recurses.
func (m *Matcher) Match(tx []int32, s *Scratch) []int32 {
	s.matched = s.matched[:0]
	if m == nil || m.NumPats == 0 {
		return s.matched
	}
	s.stack = append(s.stack[:0], frame{node: 0, pos: 0})
	for len(s.stack) > 0 {
		f := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]
		s.matched = append(s.matched, m.AcceptIDs[m.AcceptStart[f.node]:m.AcceptStart[f.node+1]]...)
		// Descend along every child edge whose item occurs in the
		// remaining transaction suffix. Both sides are sorted, so one
		// linear merge finds all of them.
		ci, ce := m.ChildStart[f.node], m.ChildStart[f.node+1]
		ti := f.pos
		for ci < ce && ti < int32(len(tx)) {
			switch e, t := m.EdgeItem[ci], tx[ti]; {
			case e == t:
				s.stack = append(s.stack, frame{node: ci, pos: ti + 1})
				ci++
				ti++
			case e < t:
				// tx is ascending past e already: this edge can never
				// match the suffix.
				ci++
			default:
				ti++
			}
		}
	}
	// The walk pops frames in stack order, not pattern order; sort so
	// callers see ascending pattern IDs (slices.Sort is in-place).
	slices.Sort(s.matched)
	return s.matched
}

// MatchAppend appends base+id to dst for every matched pattern id, in
// ascending order, and returns the extended slice. It is the predict
// path's shape: the caller's feature vector keeps item features in
// front and pattern features (IDs offset by the item-space size) in
// the sorted tail.
func (m *Matcher) MatchAppend(dst []int32, tx []int32, base int32, s *Scratch) []int32 {
	for _, id := range m.Match(tx, s) {
		dst = append(dst, base+id)
	}
	return dst
}
