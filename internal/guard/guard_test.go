package guard

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestNilGuardIsNoOp(t *testing.T) {
	var g *Guard
	if g.Enabled() {
		t.Fatal("nil guard reports enabled")
	}
	for i := 0; i < 10*checkEvery; i++ {
		if err := g.Check(); err != nil {
			t.Fatalf("nil guard Check = %v", err)
		}
	}
	if err := g.CheckNow(); err != nil {
		t.Fatalf("nil guard CheckNow = %v", err)
	}
	if !g.Deadline().IsZero() {
		t.Fatal("nil guard has a deadline")
	}
}

func TestNewFastPath(t *testing.T) {
	if g := New(nil, Limits{}); g != nil {
		t.Fatal("New(nil, no limits) should return the nil fast path")
	}
	if g := New(context.Background(), Limits{}); g != nil {
		t.Fatal("New(Background, no limits) should return the nil fast path")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if g := New(ctx, Limits{}); g == nil {
		t.Fatal("cancellable context must enable the guard")
	}
	if g := New(nil, Limits{Timeout: time.Hour}); g == nil {
		t.Fatal("timeout must enable the guard")
	}
	if g := New(nil, Limits{SoftMemoryBytes: 1 << 30}); g == nil {
		t.Fatal("memory limit must enable the guard")
	}
}

func TestCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := New(ctx, Limits{})
	if err := g.CheckNow(); err != nil {
		t.Fatalf("pre-cancel CheckNow = %v", err)
	}
	cancel()
	err := g.CheckNow()
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v should wrap context.Canceled", err)
	}
	// Amortized Check must surface it within one window.
	g2 := New(ctx, Limits{})
	var got error
	for i := 0; i < checkEvery+1; i++ {
		if got = g2.Check(); got != nil {
			break
		}
	}
	if !errors.Is(got, ErrCanceled) {
		t.Fatalf("amortized Check = %v, want ErrCanceled", got)
	}
}

func TestContextDeadlineMapsToErrDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	err := New(ctx, Limits{}).CheckNow()
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v should wrap context.DeadlineExceeded", err)
	}
}

func TestWallClockDeadline(t *testing.T) {
	g := New(nil, Limits{Deadline: time.Now().Add(-time.Second)})
	if err := g.CheckNow(); !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	g = New(nil, Limits{Timeout: time.Hour})
	if err := g.CheckNow(); err != nil {
		t.Fatalf("future deadline CheckNow = %v", err)
	}
	// Timeout earlier than Deadline wins.
	far := time.Now().Add(time.Hour)
	g = New(nil, Limits{Deadline: far, Timeout: time.Minute})
	if !g.Deadline().Before(far) {
		t.Fatal("Timeout should tighten the later Deadline")
	}
}

func TestMemoryLimit(t *testing.T) {
	g := New(nil, Limits{SoftMemoryBytes: 1}) // any live heap exceeds 1 byte
	var err error
	for i := 0; i < memCheckEvery+1; i++ {
		if err = g.CheckNow(); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrMemoryLimit) {
		t.Fatalf("err = %v, want ErrMemoryLimit", err)
	}
}

func TestSentinelsAreDistinct(t *testing.T) {
	sentinels := []error{ErrCanceled, ErrDeadline, ErrMemoryLimit, ErrDegraded, ErrPartialResult}
	for i, a := range sentinels {
		for j, b := range sentinels {
			if (i == j) != errors.Is(a, b) {
				t.Fatalf("sentinel identity broken between %v and %v", a, b)
			}
		}
	}
}

func BenchmarkCheckDisabled(b *testing.B) {
	var g *Guard
	for i := 0; i < b.N; i++ {
		if err := g.Check(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckEnabled(b *testing.B) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	g := New(ctx, Limits{Timeout: time.Hour})
	for i := 0; i < b.N; i++ {
		if err := g.Check(); err != nil {
			b.Fatal(err)
		}
	}
}
