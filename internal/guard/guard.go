// Package guard is the pipeline's bounded-execution substrate: a small
// sentinel-error taxonomy shared by every long-running stage plus a
// cooperative execution guard that combines context cancellation, a
// wall-clock deadline, and a soft memory watchdog behind one amortized
// Check call.
//
// Like the obs package, guard is built around a nil fast path: a nil
// *Guard is a valid disabled guard whose Check/CheckNow are nil-check
// no-ops, so instrumented loops thread a possibly-nil guard through
// unconditionally. New returns nil when the context carries no
// cancellation signal and no limit is set, which keeps the
// no-context/no-limit configuration free.
//
// Placement rule for miners and learners (followed by every stage in
// this repo; future miners must do the same): call Check at every
// recursion entry and once per emitted pattern / loop iteration, and
// CheckNow at stage entry so a pre-canceled context fails fast. Check
// amortizes the real poll to one in every checkEvery calls, so it is
// cheap enough for hot loops.
package guard

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"
)

// The sentinel taxonomy. All guard-produced errors wrap one of these,
// so callers dispatch with errors.Is regardless of how many fmt.Errorf
// layers the pipeline added on the way up.
var (
	// ErrCanceled marks work aborted by context cancellation.
	ErrCanceled = errors.New("guard: canceled")
	// ErrDeadline marks work aborted by a wall-clock deadline (a stage
	// timeout or a context deadline).
	ErrDeadline = errors.New("guard: deadline exceeded")
	// ErrMemoryLimit marks work aborted by the soft allocation
	// watchdog.
	ErrMemoryLimit = errors.New("guard: memory limit exceeded")
	// ErrDegraded marks a result produced (or a failure reached) after
	// the pipeline traded fidelity for feasibility — e.g. adaptive
	// min_sup escalation that still could not fit the pattern budget.
	ErrDegraded = errors.New("guard: degraded execution")
	// ErrPartialResult marks an aggregate result in which every
	// component failed, leaving nothing to aggregate honestly.
	ErrPartialResult = errors.New("guard: no complete partial results")
)

// Limits bounds one guarded stage.
type Limits struct {
	// Deadline aborts work with ErrDeadline once passed. Zero means no
	// deadline.
	Deadline time.Time
	// Timeout, when positive, is a convenience for Deadline =
	// now+Timeout at New time; the earlier of the two wins.
	Timeout time.Duration
	// SoftMemoryBytes aborts work with ErrMemoryLimit once the Go
	// heap's live allocation exceeds it. Zero disables the watchdog.
	// The ceiling is soft: it is polled amortized, so overshoot by one
	// poll interval's worth of allocation is possible.
	SoftMemoryBytes uint64
}

// Guard is a cooperative execution guard for one single-goroutine
// stage. The zero of its pointer type (nil) is a valid disabled guard.
// A Guard is NOT safe for concurrent use; give each goroutine its own
// (guards are cheap — derive several from the same context).
type Guard struct {
	//vet:ignore ctxfirst the Guard IS the sanctioned single-stage ctx carrier (see package doc)
	ctx      context.Context
	done     <-chan struct{}
	deadline time.Time
	memLimit uint64

	calls   uint32
	memTick uint32
}

// checkEvery is the amortization window of Check: one real poll per
// checkEvery calls.
const checkEvery = 256

// memCheckEvery throttles the (comparatively expensive) MemStats read
// to one per memCheckEvery real polls.
const memCheckEvery = 16

// New builds a guard from a context plus limits. It returns nil — the
// disabled fast path — when ctx carries no cancellation signal and no
// limit is set. A nil ctx is treated as context.Background().
func New(ctx context.Context, lim Limits) *Guard {
	deadline := lim.Deadline
	if lim.Timeout > 0 {
		//vet:ignore nondeterm wall-clock deadline arming; affects only cancellation, never reported results
		if t := time.Now().Add(lim.Timeout); deadline.IsZero() || t.Before(deadline) {
			deadline = t
		}
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	if done == nil && deadline.IsZero() && lim.SoftMemoryBytes == 0 {
		return nil
	}
	return &Guard{ctx: ctx, done: done, deadline: deadline, memLimit: lim.SoftMemoryBytes}
}

// Enabled reports whether the guard performs any checking.
func (g *Guard) Enabled() bool { return g != nil }

// Fork returns a guard watching the same context, deadline, and memory
// limit with fresh amortization counters. A Guard is single-goroutine
// state (Check's counter is deliberately non-atomic so the amortized
// path stays a plain increment); parallel regions give every worker
// its own fork instead of sharing one guard and contending — or racing
// — on the counter. A nil guard forks to nil.
func (g *Guard) Fork() *Guard {
	if g == nil {
		return nil
	}
	return &Guard{ctx: g.ctx, done: g.done, deadline: g.deadline, memLimit: g.memLimit}
}

// Check polls the guard's conditions once every checkEvery calls and
// reports the first violated one. Call it at recursion entries and loop
// iterations; between polls it is a nil check plus one counter
// increment.
func (g *Guard) Check() error {
	if g == nil {
		return nil
	}
	g.calls++
	if g.calls%checkEvery != 0 {
		return nil
	}
	return g.CheckNow()
}

// CheckNow polls the guard's conditions immediately: context first,
// then deadline, then (throttled) the memory watchdog. Call it at stage
// entry so pre-canceled contexts fail before any work is done.
func (g *Guard) CheckNow() error {
	if g == nil {
		return nil
	}
	if g.done != nil {
		select {
		case <-g.done:
			if errors.Is(g.ctx.Err(), context.DeadlineExceeded) {
				return fmt.Errorf("%w: %w", ErrDeadline, g.ctx.Err())
			}
			return fmt.Errorf("%w: %w", ErrCanceled, g.ctx.Err())
		default:
		}
	}
	//vet:ignore nondeterm deadline poll; affects only cancellation, never reported results
	if !g.deadline.IsZero() && time.Now().After(g.deadline) {
		return fmt.Errorf("%w (deadline %s)", ErrDeadline, g.deadline.Format(time.RFC3339Nano))
	}
	if g.memLimit > 0 {
		g.memTick++
		if g.memTick%memCheckEvery == 0 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > g.memLimit {
				return fmt.Errorf("%w (heap %d > limit %d bytes)", ErrMemoryLimit, ms.HeapAlloc, g.memLimit)
			}
		}
	}
	return nil
}

// Deadline returns the guard's effective deadline (zero when none).
func (g *Guard) Deadline() time.Time {
	if g == nil {
		return time.Time{}
	}
	return g.deadline
}
