package svm

import (
	"math"
	"math/rand"
	"testing"
)

// approx compares floats that are exact in the tests' arithmetic; the
// epsilon keeps the comparisons robust if the implementation reorders
// its floating-point operations.
func approx(a, b float64) bool { return math.Abs(a-b) <= 1e-12 }

// sep2D builds a linearly separable binary problem over two indicator
// features: class 0 rows contain feature 0, class 1 rows feature 1.
func sep2D(n int) (x [][]int32, y []int) {
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			x = append(x, []int32{0})
			y = append(y, 0)
		} else {
			x = append(x, []int32{1})
			y = append(y, 1)
		}
	}
	return
}

func TestDot(t *testing.T) {
	cases := []struct {
		a, b []int32
		want float64
	}{
		{[]int32{0, 2, 5}, []int32{2, 5, 9}, 2},
		{[]int32{}, []int32{1}, 0},
		{[]int32{1, 2, 3}, []int32{1, 2, 3}, 3},
		{[]int32{0}, []int32{1}, 0},
	}
	for _, c := range cases {
		if got := dot(c.a, c.b); !approx(got, c.want) {
			t.Errorf("dot(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestKernelEval(t *testing.T) {
	a, b := []int32{0, 1}, []int32{1, 2}
	lin := Kernel{Type: Linear}
	if got := lin.eval(a, b, 1); !approx(got, 1) {
		t.Fatalf("linear = %v, want 1", got)
	}
	rbf := Kernel{Type: RBF}
	// ||a-b||² = 2+2−2·1 = 2 → exp(−γ·2).
	if got := rbf.eval(a, b, 0.5); math.Abs(got-math.Exp(-1)) > 1e-12 {
		t.Fatalf("rbf = %v, want e^-1", got)
	}
	// RBF of identical vectors is 1.
	if got := rbf.eval(a, a, 0.7); math.Abs(got-1) > 1e-12 {
		t.Fatalf("rbf self = %v, want 1", got)
	}
	poly := Kernel{Type: Poly, Coef0: 1, Degree: 2}
	// (γ·1 + 1)² with γ=1 → 4.
	if got := poly.eval(a, b, 1); math.Abs(got-4) > 1e-12 {
		t.Fatalf("poly = %v, want 4", got)
	}
}

func TestResolveGamma(t *testing.T) {
	k := Kernel{Type: RBF}
	if got := k.resolveGamma(4); !approx(got, 0.25) {
		t.Fatalf("gamma = %v, want 0.25", got)
	}
	k.Gamma = 2
	if got := k.resolveGamma(4); !approx(got, 2) {
		t.Fatalf("gamma = %v, want 2", got)
	}
	k.Gamma = 0
	if got := k.resolveGamma(0); !approx(got, 1) {
		t.Fatalf("gamma fallback = %v, want 1", got)
	}
}

func TestLinearSeparable(t *testing.T) {
	x, y := sep2D(40)
	m, err := Train(x, y, 2, Config{C: 1, NumFeatures: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range x {
		if got := m.Predict(row); got != y[i] {
			t.Fatalf("row %d predicted %d, want %d", i, got, y[i])
		}
	}
}

func TestXORNeedsNonlinearKernel(t *testing.T) {
	// XOR over indicator features a, b: class 1 iff exactly one of
	// items {0, 1} present. Encoded rows: {}, {0}, {1}, {0,1}.
	x := [][]int32{{}, {0}, {1}, {0, 1}, {}, {0}, {1}, {0, 1}}
	y := []int{0, 1, 1, 0, 0, 1, 1, 0}

	rbf, err := Train(x, y, 2, Config{C: 100, Kernel: Kernel{Type: RBF, Gamma: 1}, NumFeatures: 2})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, row := range x {
		if rbf.Predict(row) == y[i] {
			correct++
		}
	}
	if correct != len(x) {
		t.Fatalf("RBF solved %d/%d of XOR, want all", correct, len(x))
	}
}

func TestXORLinearWithProductFeature(t *testing.T) {
	// The paper's motivating example (Section 3.1.1): XOR becomes
	// linearly separable once the combined feature x∧y (item 2) is
	// added.
	x := [][]int32{{}, {0}, {1}, {0, 1, 2}, {}, {0}, {1}, {0, 1, 2}}
	y := []int{0, 1, 1, 0, 0, 1, 1, 0}
	m, err := Train(x, y, 2, Config{C: 100, NumFeatures: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range x {
		if got := m.Predict(row); got != y[i] {
			t.Fatalf("row %d predicted %d, want %d", i, got, y[i])
		}
	}
}

func TestMulticlassOneVsOne(t *testing.T) {
	// Three classes, each keyed by its own indicator item.
	var x [][]int32
	var y []int
	for i := 0; i < 30; i++ {
		c := i % 3
		x = append(x, []int32{int32(c)})
		y = append(y, c)
	}
	m, err := Train(x, y, 3, Config{C: 1, NumFeatures: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.pairs) != 3 {
		t.Fatalf("pairs = %d, want 3", len(m.pairs))
	}
	for i, row := range x {
		if got := m.Predict(row); got != y[i] {
			t.Fatalf("row %d predicted %d, want %d", i, got, y[i])
		}
	}
}

func TestSingleClassDegenerate(t *testing.T) {
	x := [][]int32{{0}, {1}}
	y := []int{1, 1}
	m, err := Train(x, y, 3, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]int32{2}); got != 1 {
		t.Fatalf("degenerate predict = %d, want 1", got)
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, nil, 2, Config{}); err == nil {
		t.Fatal("empty training set should error")
	}
	if _, err := Train([][]int32{{0}}, []int{0, 1}, 2, Config{}); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := Train([][]int32{{0}}, []int{5}, 2, Config{}); err == nil {
		t.Fatal("out-of-range label should error")
	}
	if _, err := Train([][]int32{{0}}, []int{0}, 0, Config{}); err == nil {
		t.Fatal("numClasses=0 should error")
	}
}

func TestNoisyDataRespectsC(t *testing.T) {
	// Mostly separable data with a few label flips; a soft margin must
	// still classify the clean majority correctly.
	r := rand.New(rand.NewSource(7))
	var x [][]int32
	var y []int
	for i := 0; i < 200; i++ {
		c := r.Intn(2)
		row := []int32{int32(c)}
		label := c
		if r.Intn(20) == 0 {
			label = 1 - c
		}
		x = append(x, row)
		y = append(y, label)
	}
	m, err := Train(x, y, 2, Config{C: 1, NumFeatures: 2})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, row := range x {
		if m.Predict(row) == y[i] {
			correct++
		}
	}
	if float64(correct)/float64(len(x)) < 0.9 {
		t.Fatalf("noisy accuracy = %d/%d, want >= 90%%", correct, len(x))
	}
}

func TestBinaryKKTHolds(t *testing.T) {
	// After training, all α must lie in [0, C] and Σ α_i y_i ≈ 0
	// (checked through the stored signed coefficients).
	x, y := sep2D(20)
	m, err := Train(x, y, 2, Config{C: 2, NumFeatures: 2})
	if err != nil {
		t.Fatal(err)
	}
	bm := m.pairs[0]
	sum := 0.0
	for _, c := range bm.svCoef {
		sum += c
		if math.Abs(c) > 2+1e-9 {
			t.Fatalf("|coef| = %v exceeds C", math.Abs(c))
		}
	}
	if math.Abs(sum) > 1e-6 {
		t.Fatalf("Σ α_i y_i = %v, want 0", sum)
	}
}

func TestDecisionMarginSeparable(t *testing.T) {
	// On a separable problem with adequate C, functional margins should
	// reach ≈ 1 on support vectors.
	x, y := sep2D(10)
	m, _ := Train(x, y, 2, Config{C: 10, NumFeatures: 2})
	bm := m.pairs[0]
	for i, row := range x {
		d := bm.decision(row)
		want := 1.0
		if y[i] == 1 {
			want = -1.0
		}
		if d*want < 1-1e-2 {
			t.Fatalf("row %d margin %v·%v < 1", i, d, want)
		}
	}
}

func TestPredictAll(t *testing.T) {
	x, y := sep2D(10)
	m, _ := Train(x, y, 2, Config{NumFeatures: 2})
	got := m.PredictAll(x)
	for i := range got {
		if got[i] != y[i] {
			t.Fatalf("PredictAll[%d] = %d, want %d", i, got[i], y[i])
		}
	}
}

func TestNumSupportVectors(t *testing.T) {
	x, y := sep2D(10)
	m, _ := Train(x, y, 2, Config{NumFeatures: 2})
	if m.NumSupportVectors() == 0 {
		t.Fatal("no support vectors on a non-trivial problem")
	}
}

func TestLargeGramPathMatchesUncached(t *testing.T) {
	// Force the on-the-fly kernel path by a tiny cache limit is not
	// possible without exporting it; instead verify determinism of the
	// cached path across runs.
	x, y := sep2D(50)
	m1, _ := Train(x, y, 2, Config{C: 1, NumFeatures: 2})
	m2, _ := Train(x, y, 2, Config{C: 1, NumFeatures: 2})
	if math.Abs(m1.pairs[0].bias-m2.pairs[0].bias) > 1e-12 {
		t.Fatal("training is not deterministic")
	}
}

func BenchmarkTrainLinear500(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	var x [][]int32
	var y []int
	for i := 0; i < 500; i++ {
		c := r.Intn(2)
		row := []int32{int32(c)}
		for f := int32(2); f < 20; f++ {
			if r.Intn(3) == 0 {
				row = append(row, f)
			}
		}
		x = append(x, row)
		y = append(y, c)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(x, y, 2, Config{C: 1, NumFeatures: 20}); err != nil {
			b.Fatal(err)
		}
	}
}
