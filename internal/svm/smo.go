package svm

import (
	"fmt"
	"math"

	"dfpc/internal/guard"
)

// smoConfig parameterizes one binary SMO solve.
type smoConfig struct {
	c       float64
	eps     float64
	maxIter int
	kernel  Kernel
	gamma   float64
	g       *guard.Guard // nil = unbounded solve
}

// binaryModel is the result of one binary C-SVC solve: the support
// vectors with their signed coefficients α_i·y_i and the bias term.
type binaryModel struct {
	svX    [][]int32
	svCoef []float64
	bias   float64
	kernel Kernel
	gamma  float64
	iters  int
	nBound int // support vectors at the C bound
	// nonConverged marks a solve that exhausted maxIter before the KKT
	// tolerance was met. The model is still usable — SMO monotonically
	// improves the dual — but callers should surface a warning.
	nonConverged bool
}

// decision evaluates f(x) = Σ coef_i K(sv_i, x) + b.
func (m *binaryModel) decision(x []int32) float64 {
	f := m.bias
	for i, sv := range m.svX {
		f += m.svCoef[i] * m.kernel.eval(sv, x, m.gamma)
	}
	return f
}

// gramCacheLimit is the largest problem size for which the full kernel
// matrix is precomputed (float32, so 4·n² bytes — 64 MB at n = 4000).
const gramCacheLimit = 4000

// trainBinary solves the C-SVC dual
//
//	min ½ Σ_ij α_i α_j y_i y_j K_ij − Σ_i α_i
//	s.t. Σ_i α_i y_i = 0, 0 ≤ α_i ≤ C
//
// by SMO with maximal-violating-pair selection. y must be ±1.
func trainBinary(x [][]int32, y []float64, cfg smoConfig) (*binaryModel, error) {
	n := len(x)
	if n == 0 {
		return nil, fmt.Errorf("svm: empty training set")
	}
	if len(y) != n {
		return nil, fmt.Errorf("svm: %d labels for %d rows", len(y), n)
	}
	hasPos, hasNeg := false, false
	for _, v := range y {
		switch v {
		case 1:
			hasPos = true
		case -1:
			hasNeg = true
		default:
			return nil, fmt.Errorf("svm: label %v, want ±1", v)
		}
	}
	if !hasPos || !hasNeg {
		return nil, fmt.Errorf("svm: need both classes in training data")
	}

	// Kernel access, optionally through a precomputed Gram matrix.
	var gram []float32
	if n <= gramCacheLimit {
		gram = make([]float32, n*n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := float32(cfg.kernel.eval(x[i], x[j], cfg.gamma))
				gram[i*n+j] = v
				gram[j*n+i] = v
			}
		}
	}
	k := func(i, j int) float64 {
		if gram != nil {
			return float64(gram[i*n+j])
		}
		return cfg.kernel.eval(x[i], x[j], cfg.gamma)
	}

	alpha := make([]float64, n)
	// grad_i = ∇f_i = Σ_j α_j y_i y_j K_ij − 1; starts at −1 with α = 0.
	grad := make([]float64, n)
	for i := range grad {
		grad[i] = -1
	}

	inUp := func(i int) bool {
		return (y[i] > 0 && alpha[i] < cfg.c) || (y[i] < 0 && alpha[i] > 0)
	}
	inLow := func(i int) bool {
		return (y[i] > 0 && alpha[i] > 0) || (y[i] < 0 && alpha[i] < cfg.c)
	}

	if err := cfg.g.CheckNow(); err != nil {
		return nil, err
	}
	iters := 0
	converged := false
	for ; iters < cfg.maxIter; iters++ {
		// Each iteration already scans all n rows, so an every-iteration
		// poll is cheap relative to the work it bounds.
		if err := cfg.g.CheckNow(); err != nil {
			return nil, err
		}
		// Maximal violating pair: i maximizes −y_i∇f_i over I_up,
		// j minimizes it over I_low.
		i, j := -1, -1
		gmax, gmin := math.Inf(-1), math.Inf(1)
		for t := 0; t < n; t++ {
			v := -y[t] * grad[t]
			if inUp(t) && v > gmax {
				gmax, i = v, t
			}
			if inLow(t) && v < gmin {
				gmin, j = v, t
			}
		}
		if i < 0 || j < 0 || gmax-gmin < cfg.eps {
			converged = true
			break
		}

		// Two-variable analytic update (Platt's clipping form).
		s := y[i] * y[j]
		var lo, hi float64
		if s < 0 {
			lo = math.Max(0, alpha[j]-alpha[i])
			hi = math.Min(cfg.c, cfg.c+alpha[j]-alpha[i])
		} else {
			lo = math.Max(0, alpha[i]+alpha[j]-cfg.c)
			hi = math.Min(cfg.c, alpha[i]+alpha[j])
		}
		if hi-lo < 1e-12 {
			// Degenerate box: mark progress impossible for this pair by
			// nudging nothing; the violating-pair loop will pick others,
			// but to avoid livelock treat as converged enough.
			converged = true
			break
		}
		eta := k(i, i) + k(j, j) - 2*k(i, j)
		// Ê_t = y_t ∇f_t (bias-free error).
		ei := y[i] * grad[i]
		ej := y[j] * grad[j]
		var ajNew float64
		if eta > 1e-12 {
			ajNew = alpha[j] + y[j]*(ei-ej)/eta
		} else {
			// Flat direction: move to the bound that lowers the
			// objective (pick by the sign of the linear term).
			if y[j]*(ei-ej) > 0 {
				ajNew = hi
			} else {
				ajNew = lo
			}
		}
		if ajNew < lo {
			ajNew = lo
		} else if ajNew > hi {
			ajNew = hi
		}
		dj := ajNew - alpha[j]
		if math.Abs(dj) < 1e-14 {
			// Numerical corner: the maximal violating pair cannot move.
			// With bound snapping below this should not occur; bail out
			// rather than livelock.
			converged = true
			break
		}
		di := -s * dj
		alpha[i] += di
		alpha[j] += dj

		// Gradient maintenance: ∇f_t += y_t y_i K_ti·di + y_t y_j K_tj·dj.
		for t := 0; t < n; t++ {
			grad[t] += y[t] * (y[i]*k(t, i)*di + y[j]*k(t, j)*dj)
		}

		// Snap alphas that landed numerically at a bound onto it, so the
		// I_up/I_low membership tests stay exact. Without this, an α at
		// C−ε keeps being selected as a violating-pair endpoint that can
		// no longer move, stalling the solver far from optimality.
		const snapTol = 1e-10
		for _, t := range [2]int{i, j} {
			if alpha[t] < snapTol*cfg.c {
				alpha[t] = 0
			} else if alpha[t] > (1-snapTol)*cfg.c {
				alpha[t] = cfg.c
			}
		}
	}

	// Bias: average −Ê over free support vectors; fall back to the
	// midpoint of the feasibility interval.
	sumB, nFree := 0.0, 0
	for t := 0; t < n; t++ {
		if alpha[t] > 1e-12 && alpha[t] < cfg.c-1e-12 {
			sumB += -y[t] * grad[t] // = y_t − f̂_t
			nFree++
		}
	}
	var bias float64
	if nFree > 0 {
		bias = sumB / float64(nFree)
	} else {
		up, low := math.Inf(-1), math.Inf(1)
		for t := 0; t < n; t++ {
			v := -y[t] * grad[t]
			if inUp(t) && v > up {
				up = v
			}
			if inLow(t) && v < low {
				low = v
			}
		}
		bias = (up + low) / 2
	}

	m := &binaryModel{kernel: cfg.kernel, gamma: cfg.gamma, bias: bias, iters: iters, nonConverged: !converged}
	for t := 0; t < n; t++ {
		if alpha[t] > 1e-12 {
			m.svX = append(m.svX, x[t])
			m.svCoef = append(m.svCoef, alpha[t]*y[t])
			if alpha[t] > cfg.c-1e-12 {
				m.nBound++
			}
		}
	}
	return m, nil
}
