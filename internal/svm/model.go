package svm

import (
	"context"
	"fmt"
	"log/slog"
	"time"

	"dfpc/internal/faults"
	"dfpc/internal/guard"
	"dfpc/internal/obs"
	"dfpc/internal/parallel"
)

// Config configures training.
type Config struct {
	// C is the soft-margin penalty (default 1).
	C float64
	// Kernel selects the kernel (zero value = linear).
	Kernel Kernel
	// Eps is the KKT violation tolerance for SMO convergence
	// (default 1e-3, LIBSVM's default).
	Eps float64
	// MaxIter caps SMO iterations per binary problem (default
	// 100·n, at least 10000).
	MaxIter int
	// NumFeatures is the dimensionality of the feature space, used to
	// resolve the default γ = 1/numFeatures. Required for RBF/Poly with
	// Gamma <= 0.
	NumFeatures int
	// Ctx, when non-nil, makes SMO iterations cancellable; training
	// aborts with an error satisfying errors.Is(err, guard.ErrCanceled)
	// (or guard.ErrDeadline). Nil costs nothing.
	//vet:ignore ctxfirst per-call Config carrier: Config lives only for one Train call
	Ctx context.Context
	// Deadline aborts training once passed (0 = none).
	Deadline time.Time
	// Obs, when non-nil, records SMO iteration and support-vector
	// counters per Train call. Nil disables recording.
	Obs *obs.Observer
	// Log, when non-nil, receives one structured DEBUG record per Train
	// call plus a WARN when any SMO subproblem exhausts MaxIter before
	// converging. Nil disables logging.
	Log *slog.Logger
	// Workers bounds the one-vs-one subproblem fan-out (0 = GOMAXPROCS,
	// 1 = sequential). Each binary subproblem is an independent SMO
	// solve over a fixed pair of class partitions, so the fitted model
	// is identical at any worker count; subproblems are assembled into
	// the model in pair order.
	Workers parallel.Workers
	// Faults, when non-nil, enables deterministic fault injection at
	// the start of every one-vs-one SMO subproblem solve (point
	// svm.smo), which runs inside the parallel worker pool — an armed
	// panic there exercises the pool's PanicError capture. Nil is free.
	Faults *faults.Registry
}

func (c Config) withDefaults(n int) Config {
	if c.C <= 0 {
		c.C = 1
	}
	if c.Eps <= 0 {
		c.Eps = 1e-3
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 100 * n
		if c.MaxIter < 10000 {
			c.MaxIter = 10000
		}
	}
	return c
}

// Model is a trained (possibly multi-class) SVM. Multi-class problems
// are decomposed one-vs-one as in LIBSVM; prediction is by voting.
type Model struct {
	numClasses int
	// pairs[k] is the binary model for the k-th class pair; pairClass
	// holds the (a, b) class indices with a < b; its decision > 0 votes
	// for a, otherwise b.
	pairs     []*binaryModel
	pairClass [][2]int
	// singleClass >= 0 marks a degenerate training set with only one
	// class: Predict always returns it.
	singleClass int
	// platt holds per-pair sigmoid calibration, fitted on demand by
	// CalibrateProbabilities.
	platt []plattParams
}

// Train fits an SVM on sparse binary rows x with class labels y in
// [0, numClasses).
func Train(x [][]int32, y []int, numClasses int, cfg Config) (*Model, error) {
	if len(x) == 0 {
		return nil, fmt.Errorf("svm: empty training set")
	}
	if len(x) != len(y) {
		return nil, fmt.Errorf("svm: %d rows, %d labels", len(x), len(y))
	}
	if numClasses < 1 {
		return nil, fmt.Errorf("svm: numClasses = %d", numClasses)
	}
	cfg = cfg.withDefaults(len(x))
	g := guard.New(cfg.Ctx, guard.Limits{Deadline: cfg.Deadline})
	if err := g.CheckNow(); err != nil {
		return nil, err
	}
	gamma := cfg.Kernel.resolveGamma(cfg.NumFeatures)

	byClass := make([][]int, numClasses)
	for i, yi := range y {
		if yi < 0 || yi >= numClasses {
			return nil, fmt.Errorf("svm: label %d out of range [0,%d)", yi, numClasses)
		}
		byClass[yi] = append(byClass[yi], i)
	}
	present := make([]int, 0, numClasses)
	for c, rows := range byClass {
		if len(rows) > 0 {
			present = append(present, c)
		}
	}
	m := &Model{numClasses: numClasses, singleClass: -1}
	if len(present) == 1 {
		m.singleClass = present[0]
		return m, nil
	}

	// Enumerate the pairs up front in the canonical (a < b) order, then
	// solve each independent subproblem — concurrently when Workers
	// allows — into index-ordered slots. The assembly below walks the
	// slots in order, so the model is identical at any worker count;
	// ForEach surfaces the lowest-index error, which is exactly the
	// error a sequential loop would have stopped on.
	var pairList [][2]int
	for ai := 0; ai < len(present); ai++ {
		for bi := ai + 1; bi < len(present); bi++ {
			pairList = append(pairList, [2]int{present[ai], present[bi]})
		}
	}
	solved := make([]*binaryModel, len(pairList))
	err := parallel.ForEach(cfg.Workers, len(pairList), func(k int) error {
		a, b := pairList[k][0], pairList[k][1]
		if err := cfg.Faults.Hit(faults.SVMSolve); err != nil {
			return fmt.Errorf("svm: pair (%d,%d): %w", a, b, err)
		}
		rowsA, rowsB := byClass[a], byClass[b]
		px := make([][]int32, 0, len(rowsA)+len(rowsB))
		py := make([]float64, 0, len(rowsA)+len(rowsB))
		for _, r := range rowsA {
			px = append(px, x[r])
			py = append(py, 1)
		}
		for _, r := range rowsB {
			px = append(px, x[r])
			py = append(py, -1)
		}
		// Guards are single-goroutine state: every subproblem checks
		// its own fork of the stage guard.
		bm, err := trainBinary(px, py, smoConfig{
			c:       cfg.C,
			eps:     cfg.Eps,
			maxIter: cfg.MaxIter,
			kernel:  cfg.Kernel,
			gamma:   gamma,
			g:       g.Fork(),
		})
		if err != nil {
			return fmt.Errorf("svm: pair (%d,%d): %w", a, b, err)
		}
		solved[k] = bm
		return nil
	})
	if err != nil {
		return nil, err
	}
	m.pairs = solved
	m.pairClass = pairList
	if cfg.Obs != nil {
		cfg.Obs.Counter("svm.smo_iterations").Add(int64(m.Iterations()))
		cfg.Obs.Counter("svm.support_vectors").Add(int64(m.SupportVectors()))
		cfg.Obs.Counter("svm.binary_problems").Add(int64(len(m.pairs)))
		if n := m.NonConverged(); n > 0 {
			cfg.Obs.Counter("svm.nonconverged").Add(int64(n))
		}
	}
	if cfg.Log != nil {
		cfg.Log.Debug("SVM trained",
			slog.Int("binary_problems", len(m.pairs)),
			slog.Int("support_vectors", m.SupportVectors()),
			slog.Int("smo_iterations", m.Iterations()))
		if n := m.NonConverged(); n > 0 {
			cfg.Log.Warn("SMO did not converge on every subproblem",
				slog.Int("nonconverged", n),
				slog.Int("binary_problems", len(m.pairs)),
				slog.Int("max_iter", cfg.MaxIter))
		}
	}
	return m, nil
}

// BinaryProblems returns the number of one-vs-one binary subproblems
// the model decomposed into (0 for single-class degenerate models).
func (m *Model) BinaryProblems() int { return len(m.pairs) }

// NonConverged returns the number of binary subproblems whose SMO solve
// exhausted MaxIter before reaching the KKT tolerance. The model is
// still usable (SMO improves the dual monotonically), but a non-zero
// count means the decision boundaries may be short of optimal; callers
// should surface it as a warning rather than an error.
func (m *Model) NonConverged() int {
	n := 0
	for _, bm := range m.pairs {
		if bm.nonConverged {
			n++
		}
	}
	return n
}

// Iterations returns the total SMO iterations across all binary
// subproblems of the last training run.
func (m *Model) Iterations() int {
	total := 0
	for _, bm := range m.pairs {
		total += bm.iters
	}
	return total
}

// SupportVectors returns the total support-vector count across all
// binary subproblems (vectors shared by several pairs count once per
// pair, matching LIBSVM's per-problem accounting).
func (m *Model) SupportVectors() int {
	total := 0
	for _, bm := range m.pairs {
		total += len(bm.svX)
	}
	return total
}

// vote runs every binary decision function on x, accumulating one-vs-
// one votes and summed |decision| tie-break scores into the caller's
// scratch, and returns the winning class. votes and score must have
// length numClasses; the caller owns them so repeated scoring can be
// allocation-free (see Scorer).
func (m *Model) vote(x []int32, votes []int, score []float64) int {
	for c := range votes {
		votes[c] = 0
		score[c] = 0
	}
	for k, bm := range m.pairs {
		d := bm.decision(x)
		a, b := m.pairClass[k][0], m.pairClass[k][1]
		if d > 0 {
			votes[a]++
			score[a] += d
		} else {
			votes[b]++
			score[b] -= d
		}
	}
	best := 0
	for c := 1; c < len(votes); c++ {
		if votes[c] > votes[best] || (votes[c] == votes[best] && score[c] > score[best]) {
			best = c
		}
	}
	return best
}

// margin returns the summed-score gap between best and the runner-up
// under the same (votes, score) order, clamped at 0.
func (m *Model) margin(best int, votes []int, score []float64) float64 {
	second := -1
	for c := range votes {
		if c == best {
			continue
		}
		if second < 0 || votes[c] > votes[second] || (votes[c] == votes[second] && score[c] > score[second]) {
			second = c
		}
	}
	if second < 0 {
		return 0
	}
	margin := score[best] - score[second]
	if margin < 0 {
		margin = 0
	}
	return margin
}

// Predict returns the predicted class for a sparse binary row.
func (m *Model) Predict(x []int32) int {
	if m.singleClass >= 0 {
		return m.singleClass
	}
	votes := make([]int, m.numClasses)
	score := make([]float64, m.numClasses) // tie-break by summed |decision|
	return m.vote(x, votes, score)
}

// PredictMargin returns the predicted class together with a
// confidence margin: the winner's summed |decision| minus the
// runner-up's. For binary problems this is |f(x)| of the single
// decision function; for one-vs-one multiclass it is the summed-score
// gap between the top two classes. Degenerate single-class models
// report margin 0. The prediction is identical to Predict's.
func (m *Model) PredictMargin(x []int32) (int, float64) {
	if m.singleClass >= 0 {
		return m.singleClass, 0
	}
	votes := make([]int, m.numClasses)
	score := make([]float64, m.numClasses)
	best := m.vote(x, votes, score)
	return best, m.margin(best, votes, score)
}

// Scorer scores rows against a fixed model through preallocated voting
// scratch, so repeated prediction costs zero allocations per row —
// the serving-loop contract core's batch predictor builds on. A Scorer
// is single-goroutine; concurrent scorers share the Model and carry
// one Scorer each. Predictions and margins are identical to the
// Model's own Predict/PredictMargin.
type Scorer struct {
	m     *Model
	votes []int
	score []float64
}

// NewScorer returns a scorer with scratch sized for this model.
func (m *Model) NewScorer() *Scorer {
	return &Scorer{
		m:     m,
		votes: make([]int, m.numClasses),
		score: make([]float64, m.numClasses),
	}
}

// Predict returns the predicted class for a sparse binary row.
func (s *Scorer) Predict(x []int32) int {
	if s.m.singleClass >= 0 {
		return s.m.singleClass
	}
	return s.m.vote(x, s.votes, s.score)
}

// PredictMargin returns the predicted class and confidence margin,
// identical to Model.PredictMargin.
func (s *Scorer) PredictMargin(x []int32) (int, float64) {
	if s.m.singleClass >= 0 {
		return s.m.singleClass, 0
	}
	best := s.m.vote(x, s.votes, s.score)
	return best, s.m.margin(best, s.votes, s.score)
}

// PredictAll predicts every row.
func (m *Model) PredictAll(x [][]int32) []int {
	out := make([]int, len(x))
	for i, row := range x {
		out[i] = m.Predict(row)
	}
	return out
}

// NumSupportVectors returns the total support-vector count across all
// binary subproblems (a model-complexity diagnostic).
func (m *Model) NumSupportVectors() int {
	n := 0
	for _, bm := range m.pairs {
		n += len(bm.svX)
	}
	return n
}
