package svm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickKKTConditions verifies on random binary problems that the
// SMO solution satisfies the KKT conditions of the C-SVC dual:
//
//	0 ≤ α_i ≤ C,  Σ α_i y_i = 0,
//	free SVs (0 < α < C) sit on the margin: y_i f(x_i) ≈ 1,
//	bound SVs (α = C) are inside or on it: y_i f(x_i) ≤ 1 + tol,
//	non-SVs (α = 0) are outside or on it: y_i f(x_i) ≥ 1 − tol.
func TestQuickKKTConditions(t *testing.T) {
	const c = 2.0
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 10 + r.Intn(40)
		x := make([][]int32, n)
		y := make([]float64, n)
		hasPos, hasNeg := false, false
		seen := map[string]bool{}
		for i := range x {
			var row []int32
			for ft := int32(0); ft < 16; ft++ {
				if r.Intn(3) == 0 {
					row = append(row, ft)
				}
			}
			x[i] = row
			if r.Intn(2) == 0 {
				y[i] = 1
				hasPos = true
			} else {
				y[i] = -1
				hasNeg = true
			}
			key := ""
			for _, ft := range row {
				key += string(rune(ft)) + ","
			}
			seen[key] = true
		}
		if !hasPos || !hasNeg {
			return true
		}
		if len(seen) != n {
			return true // duplicate rows make per-row α recovery ambiguous
		}
		m, err := trainBinary(x, y, smoConfig{c: c, eps: 1e-4, maxIter: 100000, kernel: Kernel{}, gamma: 1})
		if err != nil {
			return false
		}
		// Recover α_i y_i per training row: coefficient lookup by
		// matching support-vector identity (rows may repeat; aggregate).
		// Simpler: check the dual constraints via the stored SVs.
		sum := 0.0
		for _, coef := range m.svCoef {
			sum += coef
			if math.Abs(coef) > c+1e-6 {
				return false // α outside the box
			}
		}
		if math.Abs(sum) > 1e-6 {
			return false // Σ α y ≠ 0
		}
		// Margin conditions with a tolerance matched to eps.
		const tol = 2e-2
		svSet := map[int]float64{} // index into x → |coef|
		for i, sv := range m.svX {
			for j := range x {
				if &x[j] == &sv || sameRow(x[j], sv) {
					// Identify by content; rows with identical content
					// share constraints, fine for the check.
					if _, ok := svSet[j]; !ok {
						svSet[j] = math.Abs(m.svCoef[i])
					}
					break
				}
			}
			_ = i
		}
		for j := range x {
			margin := y[j] * m.decision(x[j])
			alpha, isSV := svSet[j]
			switch {
			case !isSV || alpha < 1e-9:
				if margin < 1-tol {
					return false
				}
			case alpha > c-1e-6:
				if margin > 1+tol {
					return false
				}
			default:
				if math.Abs(margin-1) > tol {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func sameRow(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
