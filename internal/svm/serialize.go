package svm

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// modelSnapshot is the gob-encodable form of a trained Model.
type modelSnapshot struct {
	NumClasses  int
	PairClass   [][2]int
	SingleClass int
	Pairs       []binarySnapshot
	Platt       []plattSnapshot
	HasPlatt    bool
}

type binarySnapshot struct {
	SVX    [][]int32
	SVCoef []float64
	Bias   float64
	Kernel Kernel
	Gamma  float64
}

type plattSnapshot struct {
	A, B float64
}

// MarshalBinary encodes the trained model (encoding.BinaryMarshaler).
func (m *Model) MarshalBinary() ([]byte, error) {
	snap := modelSnapshot{
		NumClasses:  m.numClasses,
		PairClass:   m.pairClass,
		SingleClass: m.singleClass,
		HasPlatt:    m.platt != nil,
	}
	for _, bm := range m.pairs {
		snap.Pairs = append(snap.Pairs, binarySnapshot{
			SVX:    bm.svX,
			SVCoef: bm.svCoef,
			Bias:   bm.bias,
			Kernel: bm.kernel,
			Gamma:  bm.gamma,
		})
	}
	for _, p := range m.platt {
		snap.Platt = append(snap.Platt, plattSnapshot{A: p.a, B: p.b})
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return nil, fmt.Errorf("svm: marshal: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary restores a model encoded by MarshalBinary.
func (m *Model) UnmarshalBinary(data []byte) error {
	var snap modelSnapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return fmt.Errorf("svm: unmarshal: %w", err)
	}
	if snap.NumClasses < 1 {
		return fmt.Errorf("svm: unmarshal: bad class count %d", snap.NumClasses)
	}
	m.numClasses = snap.NumClasses
	m.pairClass = snap.PairClass
	m.singleClass = snap.SingleClass
	m.pairs = nil
	for _, bs := range snap.Pairs {
		m.pairs = append(m.pairs, &binaryModel{
			svX:    bs.SVX,
			svCoef: bs.SVCoef,
			bias:   bs.Bias,
			kernel: bs.Kernel,
			gamma:  bs.Gamma,
		})
	}
	m.platt = nil
	if snap.HasPlatt {
		for _, p := range snap.Platt {
			m.platt = append(m.platt, plattParams{a: p.A, b: p.B})
		}
	}
	return nil
}
