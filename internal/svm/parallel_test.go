package svm

import (
	"reflect"
	"testing"

	"dfpc/internal/parallel"
)

// TestTrainParallelDeterminism: the one-vs-one decomposition fits the
// exact same model (alphas, biases, support vectors, pair order) at any
// worker count — every subproblem is an independent deterministic SMO
// solve merged in pair order.
func TestTrainParallelDeterminism(t *testing.T) {
	// Four classes with overlapping indicator items so the subproblems
	// are non-trivial.
	var x [][]int32
	var y []int
	for i := 0; i < 48; i++ {
		c := i % 4
		row := []int32{int32(c)}
		if i%5 == 0 {
			row = append(row, int32(4+(i%3)))
		}
		x = append(x, row)
		y = append(y, c)
	}
	base, err := Train(x, y, 4, Config{C: 10, NumFeatures: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []parallel.Workers{2, 8, 0} {
		m, err := Train(x, y, 4, Config{C: 10, NumFeatures: 7, Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(m.pairClass, base.pairClass) {
			t.Fatalf("workers=%d: pair order diverges: %v vs %v", w, m.pairClass, base.pairClass)
		}
		if len(m.pairs) != len(base.pairs) {
			t.Fatalf("workers=%d: %d pairs, want %d", w, len(m.pairs), len(base.pairs))
		}
		for k := range m.pairs {
			if !reflect.DeepEqual(m.pairs[k].svCoef, base.pairs[k].svCoef) ||
				//vet:ignore floateq the determinism contract is bit-identity across worker counts, so exact comparison is the assertion
				m.pairs[k].bias != base.pairs[k].bias ||
				!reflect.DeepEqual(m.pairs[k].svX, base.pairs[k].svX) ||
				m.pairs[k].iters != base.pairs[k].iters {
				t.Fatalf("workers=%d: pair %d model diverges", w, k)
			}
		}
	}
}
