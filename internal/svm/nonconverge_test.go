package svm

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"dfpc/internal/guard"
	"dfpc/internal/obs"
)

// noisyProblem builds a non-trivially-separable binary problem: random
// sparse rows with labels only loosely tied to the features, so SMO
// needs many iterations to approach the KKT conditions.
func noisyProblem(n, numFeatures int, seed int64) (x [][]int32, y []int) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		var row []int32
		for f := 0; f < numFeatures; f++ {
			if rng.Intn(2) == 0 {
				row = append(row, int32(f))
			}
		}
		label := 0
		if rng.Intn(4) != 0 { // mostly feature-driven, partly noise
			if len(row) > 0 && row[0] == 0 {
				label = 1
			}
		} else if rng.Intn(2) == 0 {
			label = 1
		}
		x = append(x, row)
		y = append(y, label)
	}
	return
}

func TestMaxIterReturnsUsableModelAndFlagsNonConvergence(t *testing.T) {
	x, y := noisyProblem(80, 10, 7)
	o := obs.New()
	m, err := Train(x, y, 2, Config{C: 10, NumFeatures: 10, MaxIter: 1, Obs: o})
	if err != nil {
		t.Fatalf("Train hitting MaxIter must still return a model, got %v", err)
	}
	if m.NonConverged() == 0 {
		t.Fatal("MaxIter=1 on a noisy problem should leave the subproblem non-converged")
	}
	if m.BinaryProblems() != 1 {
		t.Fatalf("binary problems = %d, want 1", m.BinaryProblems())
	}
	// The truncated model must still predict on every row without
	// panicking and produce in-range labels.
	for i, row := range x {
		if got := m.Predict(row); got != 0 && got != 1 {
			t.Fatalf("row %d: prediction %d out of range", i, got)
		}
	}
	if got := o.Counter("svm.nonconverged").Value(); got != int64(m.NonConverged()) {
		t.Fatalf("svm.nonconverged counter = %d, want %d", got, m.NonConverged())
	}
}

func TestConvergedRunNotFlagged(t *testing.T) {
	x, y := sep2D(40)
	m, err := Train(x, y, 2, Config{C: 1, NumFeatures: 2})
	if err != nil {
		t.Fatal(err)
	}
	if m.NonConverged() != 0 {
		t.Fatalf("separable problem flagged %d non-converged subproblems", m.NonConverged())
	}
}

func TestTrainPreCanceledContext(t *testing.T) {
	x, y := sep2D(40)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Train(x, y, 2, Config{C: 1, NumFeatures: 2, Ctx: ctx}); !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("err = %v, want guard.ErrCanceled", err)
	}
}
