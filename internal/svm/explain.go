package svm

// Per-prediction explanations: the one-vs-one voting broken open so a
// caller can see which binary decisions drove the predicted class and —
// for linear kernels, where the decision function is additive over the
// row's features — how much each present feature contributed. For a
// linear pair, f(x) = b + Σ_i coef_i·|sv_i ∩ x| = b + Σ_{f∈x} w_f with
// w_f = Σ_{i: f∈sv_i} coef_i, so the per-feature shares plus the bias
// reconstruct the decision value exactly. Non-linear kernels have no
// such additive decomposition; their pairs report the decision value
// and bias only.

// PairDecision is one binary subproblem's contribution to a
// prediction.
type PairDecision struct {
	// Classes is the (a, b) class-index pair, a < b; Decision > 0 votes
	// for a, otherwise b.
	Classes  [2]int  `json:"classes"`
	Decision float64 `json:"decision"`
	Bias     float64 `json:"bias"`
	// FeatureContrib maps each feature present in the row to its
	// additive share of Decision − Bias. Linear kernel only; nil for
	// RBF/Poly pairs.
	FeatureContrib map[int32]float64 `json:"feature_contrib,omitempty"`
}

// Explanation is the full evidence behind one Predict call.
type Explanation struct {
	// Class is the predicted class (identical to Predict's return).
	Class int `json:"class"`
	// Votes counts one-vs-one votes per class (nil for degenerate
	// single-class models).
	Votes []int `json:"votes,omitempty"`
	// Pairs lists every binary decision in canonical pair order.
	Pairs []PairDecision `json:"pairs,omitempty"`
	// FeatureWeights maps each feature present in the row to its summed
	// signed contribution toward the predicted class, over the linear
	// pairs that involve that class (positive = evidence for the
	// prediction). Nil when no linear pair involves the predicted
	// class.
	FeatureWeights map[int32]float64 `json:"feature_weights,omitempty"`
}

// ExplainPredict classifies one sparse binary row exactly like Predict
// while recording the per-pair decisions and, for linear kernels, the
// per-feature weight contributions.
func (m *Model) ExplainPredict(x []int32) *Explanation {
	if m.singleClass >= 0 {
		return &Explanation{Class: m.singleClass}
	}
	ex := &Explanation{
		Votes: make([]int, m.numClasses),
		Pairs: make([]PairDecision, 0, len(m.pairs)),
	}
	score := make([]float64, m.numClasses)
	for k, bm := range m.pairs {
		d := bm.decision(x)
		a, b := m.pairClass[k][0], m.pairClass[k][1]
		pd := PairDecision{Classes: [2]int{a, b}, Decision: d, Bias: bm.bias}
		if bm.kernel.Type == Linear {
			pd.FeatureContrib = bm.linearContrib(x)
		}
		ex.Pairs = append(ex.Pairs, pd)
		if d > 0 {
			ex.Votes[a]++
			score[a] += d
		} else {
			ex.Votes[b]++
			score[b] -= d
		}
	}
	best := 0
	for c := 1; c < m.numClasses; c++ {
		if ex.Votes[c] > ex.Votes[best] || (ex.Votes[c] == ex.Votes[best] && score[c] > score[best]) {
			best = c
		}
	}
	ex.Class = best

	// Aggregate the winner's evidence: sum each present feature's signed
	// contribution toward the predicted class over the linear pairs that
	// include it.
	for _, pd := range ex.Pairs {
		if pd.FeatureContrib == nil {
			continue
		}
		sign := 0.0
		switch best {
		case pd.Classes[0]:
			sign = 1
		case pd.Classes[1]:
			sign = -1
		default:
			continue
		}
		if ex.FeatureWeights == nil {
			//vet:ignore hotalloc the per-feature weight map is the explanation's return contract
			ex.FeatureWeights = make(map[int32]float64, len(pd.FeatureContrib))
		}
		for f, w := range pd.FeatureContrib {
			ex.FeatureWeights[f] += sign * w
		}
	}
	return ex
}

// linearContrib returns, for each feature present in x, its additive
// share of the linear decision value: w_f = Σ over support vectors
// containing f of that vector's coefficient.
func (m *binaryModel) linearContrib(x []int32) map[int32]float64 {
	//vet:ignore hotalloc the per-feature contribution map is the explanation's return contract
	contrib := make(map[int32]float64, len(x))
	for i, sv := range m.svX {
		coef := m.svCoef[i]
		// Merge-scan the sorted sparse vectors for their intersection.
		a, b := 0, 0
		for a < len(sv) && b < len(x) {
			switch {
			case sv[a] == x[b]:
				contrib[x[b]] += coef
				a++
				b++
			case sv[a] < x[b]:
				a++
			default:
				b++
			}
		}
	}
	return contrib
}
