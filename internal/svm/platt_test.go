package svm

import (
	"math"
	"testing"
)

func TestFitPlattSeparated(t *testing.T) {
	// Positive decisions for +1, negative for −1: the sigmoid must map
	// large positive f to high probability.
	f := []float64{2, 1.5, 1.8, -2, -1.5, -1.7}
	y := []float64{1, 1, 1, -1, -1, -1}
	p := fitPlatt(f, y)
	if got := p.sigmoidPredict(2); got < 0.7 {
		t.Fatalf("P(+|f=2) = %v, want high", got)
	}
	if got := p.sigmoidPredict(-2); got > 0.3 {
		t.Fatalf("P(+|f=-2) = %v, want low", got)
	}
	// Monotone in f (A < 0 convention).
	if p.sigmoidPredict(1) <= p.sigmoidPredict(-1) {
		t.Fatal("sigmoid not increasing in decision value")
	}
}

func TestCalibrateAndPredictProb(t *testing.T) {
	x, y := sep2D(60)
	m, err := Train(x, y, 2, Config{C: 1, NumFeatures: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.PredictProb([]int32{0}); err == nil {
		t.Fatal("PredictProb before calibration should error")
	}
	if err := m.CalibrateProbabilities(x, y); err != nil {
		t.Fatal(err)
	}
	p0, err := m.PredictProb([]int32{0})
	if err != nil {
		t.Fatal(err)
	}
	p1, err := m.PredictProb([]int32{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(p0) != 2 {
		t.Fatalf("prob vector length %d", len(p0))
	}
	if math.Abs(p0[0]+p0[1]-1) > 1e-9 {
		t.Fatalf("probabilities do not sum to 1: %v", p0)
	}
	if p0[0] <= 0.5 || p1[1] <= 0.5 {
		t.Fatalf("probabilities inconsistent with labels: %v %v", p0, p1)
	}
}

func TestPredictProbMulticlass(t *testing.T) {
	var x [][]int32
	var y []int
	for i := 0; i < 30; i++ {
		c := i % 3
		x = append(x, []int32{int32(c)})
		y = append(y, c)
	}
	m, err := Train(x, y, 3, Config{NumFeatures: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CalibrateProbabilities(x, y); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 3; c++ {
		probs, err := m.PredictProb([]int32{int32(c)})
		if err != nil {
			t.Fatal(err)
		}
		best := 0
		for i := range probs {
			if probs[i] > probs[best] {
				best = i
			}
		}
		if best != c {
			t.Fatalf("class %d: probs %v argmax %d", c, probs, best)
		}
		sum := 0.0
		for _, p := range probs {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("probs sum %v", sum)
		}
	}
}

func TestPredictProbDegenerateSingleClass(t *testing.T) {
	m, err := Train([][]int32{{0}}, []int{1}, 3, Config{})
	if err != nil {
		t.Fatal(err)
	}
	probs, err := m.PredictProb([]int32{0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(probs[1]-1) > 1e-12 {
		t.Fatalf("degenerate probs = %v", probs)
	}
}
