package svm

import (
	"fmt"
	"math"
)

// Platt scaling: fit a sigmoid P(y=1|f) = 1/(1+exp(A·f+B)) over the
// decision values of a trained binary SVM, following the numerically
// robust Newton implementation of Lin, Lin & Weng (2007). Multi-class
// probabilities are obtained by averaging the pairwise probabilities,
// a simple and stable alternative to full pairwise coupling.

// plattParams holds the fitted sigmoid.
type plattParams struct {
	a, b float64
}

// sigmoidPredict evaluates P(y=+1 | decision f) without overflow.
func (p plattParams) sigmoidPredict(f float64) float64 {
	fApB := p.a*f + p.b
	if fApB >= 0 {
		return math.Exp(-fApB) / (1 + math.Exp(-fApB))
	}
	return 1 / (1 + math.Exp(fApB))
}

// fitPlatt fits sigmoid parameters on decision values f with targets
// y ∈ {+1, −1}.
func fitPlatt(f []float64, y []float64) plattParams {
	n := len(f)
	prior1, prior0 := 0.0, 0.0
	for _, v := range y {
		if v > 0 {
			prior1++
		} else {
			prior0++
		}
	}
	hiTarget := (prior1 + 1) / (prior1 + 2)
	loTarget := 1 / (prior0 + 2)
	t := make([]float64, n)
	for i := range f {
		if y[i] > 0 {
			t[i] = hiTarget
		} else {
			t[i] = loTarget
		}
	}

	a := 0.0
	b := math.Log((prior0 + 1) / (prior1 + 1))
	const (
		maxIter = 100
		minStep = 1e-10
		sigma   = 1e-12
		eps     = 1e-5
	)
	fval := 0.0
	for i := 0; i < n; i++ {
		fApB := f[i]*a + b
		if fApB >= 0 {
			fval += t[i]*fApB + math.Log1p(math.Exp(-fApB))
		} else {
			fval += (t[i]-1)*fApB + math.Log1p(math.Exp(fApB))
		}
	}
	for iter := 0; iter < maxIter; iter++ {
		h11, h22 := sigma, sigma
		h21, g1, g2 := 0.0, 0.0, 0.0
		for i := 0; i < n; i++ {
			fApB := f[i]*a + b
			var p, q float64
			if fApB >= 0 {
				p = math.Exp(-fApB) / (1 + math.Exp(-fApB))
				q = 1 / (1 + math.Exp(-fApB))
			} else {
				p = 1 / (1 + math.Exp(fApB))
				q = math.Exp(fApB) / (1 + math.Exp(fApB))
			}
			d2 := p * q
			h11 += f[i] * f[i] * d2
			h22 += d2
			h21 += f[i] * d2
			d1 := t[i] - p
			g1 += f[i] * d1
			g2 += d1
		}
		if math.Abs(g1) < eps && math.Abs(g2) < eps {
			break
		}
		det := h11*h22 - h21*h21
		dA := -(h22*g1 - h21*g2) / det
		dB := -(-h21*g1 + h11*g2) / det
		gd := g1*dA + g2*dB
		step := 1.0
		for step >= minStep {
			newA, newB := a+step*dA, b+step*dB
			newF := 0.0
			for i := 0; i < n; i++ {
				fApB := f[i]*newA + newB
				if fApB >= 0 {
					newF += t[i]*fApB + math.Log1p(math.Exp(-fApB))
				} else {
					newF += (t[i]-1)*fApB + math.Log1p(math.Exp(fApB))
				}
			}
			if newF < fval+1e-4*step*gd {
				a, b, fval = newA, newB, newF
				break
			}
			step /= 2
		}
		if step < minStep {
			break
		}
	}
	return plattParams{a: a, b: b}
}

// CalibrateProbabilities fits Platt sigmoids on every binary
// subproblem's training decision values so PredictProb can be used.
// Call after Train with the same training data. (A held-out or
// cross-validated fit would be less biased; the training-value fit is
// the lightweight variant and adequate for ranking-style uses.)
func (m *Model) CalibrateProbabilities(x [][]int32, y []int) error {
	if m.singleClass >= 0 {
		return nil
	}
	if len(x) != len(y) {
		return fmt.Errorf("svm: %d rows, %d labels", len(x), len(y))
	}
	m.platt = make([]plattParams, len(m.pairs))
	for k, bm := range m.pairs {
		a, b := m.pairClass[k][0], m.pairClass[k][1]
		var fs, ts []float64
		for i, row := range x {
			switch y[i] {
			case a:
				fs = append(fs, bm.decision(row))
				ts = append(ts, 1)
			case b:
				fs = append(fs, bm.decision(row))
				ts = append(ts, -1)
			}
		}
		if len(fs) == 0 {
			m.platt[k] = plattParams{a: -1, b: 0}
			continue
		}
		m.platt[k] = fitPlatt(fs, ts)
	}
	return nil
}

// PredictProb returns per-class probability estimates for a row,
// averaging the calibrated pairwise probabilities. It returns an error
// if CalibrateProbabilities has not run.
func (m *Model) PredictProb(x []int32) ([]float64, error) {
	probs := make([]float64, m.numClasses)
	if m.singleClass >= 0 {
		probs[m.singleClass] = 1
		return probs, nil
	}
	if m.platt == nil {
		return nil, fmt.Errorf("svm: PredictProb before CalibrateProbabilities")
	}
	counts := make([]int, m.numClasses)
	for k, bm := range m.pairs {
		p := m.platt[k].sigmoidPredict(bm.decision(x))
		a, b := m.pairClass[k][0], m.pairClass[k][1]
		probs[a] += p
		probs[b] += 1 - p
		counts[a]++
		counts[b]++
	}
	total := 0.0
	for c := range probs {
		if counts[c] > 0 {
			probs[c] /= float64(counts[c])
		}
		total += probs[c]
	}
	if total > 0 {
		for c := range probs {
			probs[c] /= total
		}
	}
	return probs, nil
}
