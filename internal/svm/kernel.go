// Package svm implements a support-vector-machine classifier trained by
// sequential minimal optimization, standing in for LIBSVM in the
// paper's experiments. It solves the standard C-SVC dual with
// maximal-violating-pair working-set selection (Keerthi et al.), offers
// linear, RBF and polynomial kernels over sparse binary feature
// vectors, and handles multi-class problems with one-vs-one voting,
// matching LIBSVM's scheme.
package svm

import (
	"fmt"
	"math"
)

// KernelType enumerates the supported kernels.
type KernelType int

const (
	// Linear is K(x,y) = <x,y>.
	Linear KernelType = iota
	// RBF is K(x,y) = exp(-γ ||x−y||²), the Item_RBF baseline kernel.
	RBF
	// Poly is K(x,y) = (γ<x,y> + c0)^d.
	Poly
)

func (k KernelType) String() string {
	switch k {
	case Linear:
		return "linear"
	case RBF:
		return "rbf"
	case Poly:
		return "poly"
	default:
		return fmt.Sprintf("KernelType(%d)", int(k))
	}
}

// Kernel is a kernel specification. The zero value is a linear kernel.
type Kernel struct {
	Type   KernelType
	Gamma  float64 // RBF/Poly scale; <= 0 means 1/numFeatures at train time
	Coef0  float64 // Poly offset
	Degree int     // Poly degree; <= 0 means 3
}

// dot computes the inner product of two sparse binary vectors given as
// sorted index slices: the size of their intersection.
func dot(a, b []int32) float64 {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			n++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return float64(n)
}

// Eval evaluates the kernel on two sparse binary vectors. gamma must
// already be resolved (positive).
func (k Kernel) eval(a, b []int32, gamma float64) float64 {
	switch k.Type {
	case RBF:
		d := dot(a, b)
		sq := float64(len(a)) + float64(len(b)) - 2*d
		return math.Exp(-gamma * sq)
	case Poly:
		deg := k.Degree
		if deg <= 0 {
			deg = 3
		}
		return math.Pow(gamma*dot(a, b)+k.Coef0, float64(deg))
	default:
		return dot(a, b)
	}
}

// resolveGamma returns the effective γ: the configured value if
// positive, else 1/numFeatures (LIBSVM's default).
func (k Kernel) resolveGamma(numFeatures int) float64 {
	if k.Gamma > 0 {
		return k.Gamma
	}
	if numFeatures <= 0 {
		return 1
	}
	return 1 / float64(numFeatures)
}
