package svm

import (
	"math"
	"testing"
)

// explainFixture is a linearly separable sparse binary problem: class 0
// rows carry feature 0, class 1 rows carry feature 1, with noise
// features 2..4 scattered over both.
func explainFixture() (x [][]int32, y []int) {
	x = [][]int32{
		{0, 2}, {0, 3}, {0, 2, 4}, {0},
		{1, 2}, {1, 4}, {1, 3, 4}, {1},
	}
	y = []int{0, 0, 0, 0, 1, 1, 1, 1}
	return x, y
}

func TestExplainPredictMatchesPredict(t *testing.T) {
	x, y := explainFixture()
	m, err := Train(x, y, 2, Config{NumFeatures: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range x {
		ex := m.ExplainPredict(row)
		if want := m.Predict(row); ex.Class != want {
			t.Fatalf("row %d: ExplainPredict class %d, Predict %d", i, ex.Class, want)
		}
		if ex.Class != y[i] {
			t.Fatalf("row %d: separable fixture misclassified as %d", i, ex.Class)
		}
		if len(ex.Pairs) != 1 {
			t.Fatalf("row %d: %d pairs for a 2-class model, want 1", i, len(ex.Pairs))
		}
		if ex.FeatureWeights == nil {
			t.Fatalf("row %d: linear model produced no FeatureWeights", i)
		}
	}
}

// TestExplainLinearDecomposition: for every linear pair, bias plus the
// per-feature contributions must reconstruct the decision value
// exactly.
func TestExplainLinearDecomposition(t *testing.T) {
	x, y := explainFixture()
	m, err := Train(x, y, 2, Config{NumFeatures: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range x {
		for _, pd := range m.ExplainPredict(row).Pairs {
			if pd.FeatureContrib == nil {
				t.Fatalf("row %d: linear pair %v has nil FeatureContrib", i, pd.Classes)
			}
			sum := pd.Bias
			for _, w := range pd.FeatureContrib {
				sum += w
			}
			if math.Abs(sum-pd.Decision) > 1e-9 {
				t.Fatalf("row %d pair %v: bias+contribs = %v, decision = %v",
					i, pd.Classes, sum, pd.Decision)
			}
		}
	}
}

// TestExplainDiscriminativeFeatureDominates: the class-0 indicator
// feature must push toward class 0, the class-1 indicator toward
// class 1.
func TestExplainDiscriminativeFeatureDominates(t *testing.T) {
	x, y := explainFixture()
	m, err := Train(x, y, 2, Config{NumFeatures: 5})
	if err != nil {
		t.Fatal(err)
	}
	ex0 := m.ExplainPredict([]int32{0})
	if w := ex0.FeatureWeights[0]; w <= 0 {
		t.Fatalf("feature 0 weight %v toward predicted class 0, want positive evidence", w)
	}
	ex1 := m.ExplainPredict([]int32{1})
	if w := ex1.FeatureWeights[1]; w <= 0 {
		t.Fatalf("feature 1 weight %v toward predicted class 1, want positive evidence", w)
	}
	_ = y
}

// TestExplainThreeClass: one-vs-one voting exposes a pair per class
// combination and still matches Predict.
func TestExplainThreeClass(t *testing.T) {
	x := [][]int32{
		{0}, {0, 3}, {0, 4},
		{1}, {1, 3}, {1, 4},
		{2}, {2, 3}, {2, 4},
	}
	y := []int{0, 0, 0, 1, 1, 1, 2, 2, 2}
	m, err := Train(x, y, 3, Config{NumFeatures: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range x {
		ex := m.ExplainPredict(row)
		if want := m.Predict(row); ex.Class != want {
			t.Fatalf("row %d: explain class %d != predict %d", i, ex.Class, want)
		}
		if len(ex.Pairs) != 3 {
			t.Fatalf("row %d: %d pairs for 3 classes, want 3", i, len(ex.Pairs))
		}
		votes := 0
		for _, v := range ex.Votes {
			votes += v
		}
		if votes != 3 {
			t.Fatalf("row %d: votes %v do not sum to the pair count", i, ex.Votes)
		}
	}
}

// TestExplainRBFNoContrib: non-linear kernels report decisions and
// biases only.
func TestExplainRBFNoContrib(t *testing.T) {
	x, y := explainFixture()
	m, err := Train(x, y, 2, Config{NumFeatures: 5, Kernel: Kernel{Type: RBF}})
	if err != nil {
		t.Fatal(err)
	}
	ex := m.ExplainPredict(x[0])
	for _, pd := range ex.Pairs {
		if pd.FeatureContrib != nil {
			t.Fatal("RBF pair must not claim an additive feature decomposition")
		}
	}
	if ex.FeatureWeights != nil {
		t.Fatal("RBF explanation must have nil FeatureWeights")
	}
	if want := m.Predict(x[0]); ex.Class != want {
		t.Fatalf("explain class %d != predict %d", ex.Class, want)
	}
}

func TestExplainSingleClass(t *testing.T) {
	m, err := Train([][]int32{{0}, {1}}, []int{0, 0}, 1, Config{NumFeatures: 2})
	if err != nil {
		t.Fatal(err)
	}
	ex := m.ExplainPredict([]int32{0})
	if ex.Class != 0 || len(ex.Pairs) != 0 {
		t.Fatalf("degenerate model explanation: %+v", ex)
	}
}
