package datagen

import (
	"testing"

	"dfpc/internal/dataset"
	"dfpc/internal/discretize"
	"dfpc/internal/measures"
	"dfpc/internal/mining"
)

func TestValidateRejectsBadSpecs(t *testing.T) {
	good := Spec{Name: "g", Instances: 10, Classes: 2, Cat: []int{2}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Spec{
		{Name: "b1", Instances: 0, Classes: 2, Cat: []int{2}},
		{Name: "b2", Instances: 10, Classes: 1, Cat: []int{2}},
		{Name: "b3", Instances: 10, Classes: 2},
		{Name: "b4", Instances: 10, Classes: 2, Cat: []int{1}},
		{Name: "b5", Instances: 10, Classes: 2, Cat: []int{2}, Priors: []float64{1}},
		{Name: "b6", Instances: 10, Classes: 2, Cat: []int{2}, Priors: []float64{0, 0}},
		{Name: "b7", Instances: 10, Classes: 2, Cat: []int{2}, MissingRate: 1},
		{Name: "b8", Instances: 10, Classes: 2, Cat: []int{2}, Template: 2},
		{Name: "b9", Instances: 10, Classes: 2, Cat: []int{2},
			Patterns: []Planted{{Class: 5, Attrs: []int{0}, Values: []int{0}}}},
		{Name: "b10", Instances: 10, Classes: 2, Cat: []int{2},
			Patterns: []Planted{{Class: 0, Attrs: []int{0}, Values: []int{9}}}},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("%s: expected validation error", s.Name)
		}
	}
}

func TestGenerateShape(t *testing.T) {
	s := Spec{Name: "shape", Instances: 120, Classes: 3, Cat: []int{2, 3}, Numeric: 2, Seed: 4}
	d, err := Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRows() != 120 || d.NumAttrs() != 4 || d.NumClasses() != 3 {
		t.Fatalf("shape = (%d,%d,%d)", d.NumRows(), d.NumAttrs(), d.NumClasses())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := d.ClassCounts()
	for c, n := range counts {
		if n == 0 {
			t.Fatalf("class %d has no instances", c)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	s := Spec{Name: "det", Instances: 50, Classes: 2, Cat: []int{3, 3}, Seed: 9}
	s.AutoPatterns(2, 2, 2)
	a, err := Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("labels differ across identical seeds")
		}
		for j := range a.Rows[i] {
			av, bv := a.Rows[i][j], b.Rows[i][j]
			if dataset.IsMissing(av) != dataset.IsMissing(bv) {
				t.Fatal("missing cells differ")
			}
			if !dataset.IsMissing(av) && av != bv {
				t.Fatal("rows differ across identical seeds")
			}
		}
	}
}

func TestGenerateSeedChangesData(t *testing.T) {
	s1 := Spec{Name: "s", Instances: 50, Classes: 2, Cat: []int{3, 3}, Seed: 1}
	s2 := s1
	s2.Seed = 2
	a, _ := Generate(s1)
	b, _ := Generate(s2)
	same := true
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestPriorsRespected(t *testing.T) {
	s := Spec{Name: "p", Instances: 2000, Classes: 2, Cat: []int{2},
		Priors: []float64{3, 1}, Seed: 5}
	d, err := Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	counts := d.ClassCounts()
	frac := float64(counts[0]) / float64(d.NumRows())
	if frac < 0.70 || frac > 0.80 {
		t.Fatalf("class-0 fraction = %v, want ~0.75", frac)
	}
}

func TestMissingRate(t *testing.T) {
	s := Spec{Name: "m", Instances: 500, Classes: 2, Cat: []int{2, 2, 2, 2}, MissingRate: 0.2, Seed: 6}
	d, err := Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	missing, total := 0, 0
	for _, row := range d.Rows {
		for _, v := range row {
			total++
			if dataset.IsMissing(v) {
				missing++
			}
		}
	}
	rate := float64(missing) / float64(total)
	if rate < 0.15 || rate > 0.25 {
		t.Fatalf("missing rate = %v, want ~0.2", rate)
	}
}

func TestPlantedPatternIsDiscriminative(t *testing.T) {
	// A strongly planted conjunction must carry a large information
	// gain, higher than chance-level single features.
	s := Spec{Name: "sig", Instances: 600, Classes: 2,
		Cat: []int{4, 4, 4, 4, 4, 4}, Seed: 7,
		Patterns: []Planted{{Class: 1, Attrs: []int{0, 1}, Values: []int{2, 3}, Prob: 0.9}},
	}
	d, err := Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dataset.Encode(d)
	if err != nil {
		t.Fatal(err)
	}
	// Item IDs: attr0=2 → 2, attr1=3 → 4+3=7.
	cover := b.Cover([]int32{2, 7})
	ig := measures.InfoGain(cover, b.ClassMasks)
	if ig < 0.3 {
		t.Fatalf("planted pattern IG = %v, want substantial", ig)
	}
	// The pattern must beat each of its constituent single items.
	for _, item := range []int32{2, 7} {
		if single := measures.InfoGain(b.Columns[item], b.ClassMasks); single >= ig {
			t.Fatalf("single item %d IG %v >= pattern IG %v", item, single, ig)
		}
	}
}

func TestDominanceModeIsDense(t *testing.T) {
	// Dominance mode must produce many more closed patterns at a fixed
	// relative support than independent noise.
	dense := Spec{Name: "dense", Instances: 300, Classes: 2, Cat: make([]int, 12), Dominance: 0.9, Seed: 8}
	for i := range dense.Cat {
		dense.Cat[i] = 2
	}
	sparse := dense
	sparse.Name = "sparse"
	sparse.Dominance = 0

	count := func(s Spec) int {
		d, err := Generate(s)
		if err != nil {
			t.Fatal(err)
		}
		b, err := dataset.Encode(d)
		if err != nil {
			t.Fatal(err)
		}
		ps, err := mining.MinePerClass(b, mining.PerClassOptions{MinSupport: 0.5, Closed: true})
		if err != nil {
			t.Fatal(err)
		}
		return len(ps)
	}
	nd, ns := count(dense), count(sparse)
	if nd <= 2*ns {
		t.Fatalf("dense closed patterns %d not >> sparse %d", nd, ns)
	}
}

func TestByNameAllShapes(t *testing.T) {
	for _, name := range Names() {
		if name == "letter" || name == "waveform" || name == "chess" {
			continue // large; covered by TestDenseShapes
		}
		d, err := ByName(name, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sh := shapes[name]
		if d.NumRows() != sh.instances || d.NumClasses() != sh.classes {
			t.Fatalf("%s: shape (%d,%d), want (%d,%d)", name, d.NumRows(), d.NumClasses(), sh.instances, sh.classes)
		}
		if d.NumAttrs() != sh.catAttrs+sh.numAttrs {
			t.Fatalf("%s: %d attrs, want %d", name, d.NumAttrs(), sh.catAttrs+sh.numAttrs)
		}
	}
}

func TestDenseShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, name := range []string{"chess", "waveform", "letter"} {
		d, err := ByName(name, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sh := shapes[name]
		if d.NumRows() != sh.instances || d.NumClasses() != sh.classes {
			t.Fatalf("%s: wrong shape", name)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope", 1); err == nil {
		t.Fatal("unknown name should error")
	}
}

func TestTable1NamesAllExist(t *testing.T) {
	if len(Table1Names()) != 19 {
		t.Fatalf("Table1Names = %d entries, want 19", len(Table1Names()))
	}
	for _, n := range Table1Names() {
		if _, ok := shapes[n]; !ok {
			t.Fatalf("Table 1 name %q not in shapes", n)
		}
	}
}

func TestNumericDatasetsDiscretizable(t *testing.T) {
	d, err := ByName("iris", 3)
	if err != nil {
		t.Fatal(err)
	}
	dd, err := discretize.FitApply(d, discretize.Options{Method: discretize.EntropyMDL})
	if err != nil {
		t.Fatal(err)
	}
	if !dd.AllCategorical() {
		t.Fatal("iris not fully categorical after discretization")
	}
	if _, err := dataset.Encode(dd); err != nil {
		t.Fatal(err)
	}
}
