// Package datagen generates the synthetic stand-ins for the UCI
// datasets the paper evaluates on (this module is offline, so the real
// repository files cannot be fetched — see DESIGN.md §4). Each named
// spec matches the published shape of the real dataset (instance count,
// attribute count and mix, class count) and plants class-correlated
// item conjunctions so that
//
//   - single features are weakly predictive,
//   - a subset of frequent feature combinations is strongly predictive,
//   - abundant low-support random conjunctions exist, creating the
//     overfitting risk the paper analyzes.
//
// The dense scalability sets (Chess, Waveform, Letter) use per-class
// attribute templates with high copy probability, which makes most
// attribute pairs correlated and reproduces the closed-pattern
// explosion of Tables 3–5 at low minimum support.
package datagen

import (
	"fmt"
	"math/rand"
	"sort"

	"dfpc/internal/dataset"
)

// Planted is one class-correlated conjunction: instances of Class carry
// Values on Attrs with probability Prob. When Values2 is non-nil, the
// instance exhibits Values or Values2 with equal chance — a two-variant
// pattern whose single-attribute marginals are shared by both variants
// (weak single-feature signal) while each full conjunction stays
// class-specific (strong combined-feature signal). This reproduces the
// paper's core premise that feature combinations capture semantics
// single features cannot.
type Planted struct {
	Class   int
	Attrs   []int
	Values  []int
	Values2 []int
	Prob    float64
	// ProtoMix reinterprets Values/Values2 as prototype selectors: 0
	// means "the U prototype's value on this attribute", 1 means V's.
	// Planted values then come from the same two-value vocabulary the
	// crossover templates use, so a pattern of one class never
	// suppresses another class's single-item marginals — only the
	// co-occurrence structure differs. Requires Template mode.
	ProtoMix bool
}

// Spec describes a synthetic dataset.
type Spec struct {
	Name      string
	Instances int
	Classes   int
	// Priors are class priors; nil means uniform.
	Priors []float64
	// Cat holds the cardinality of each categorical attribute.
	Cat []int
	// Numeric is the number of numeric attributes appended after the
	// categorical ones.
	Numeric int
	// NumericInformative numeric attributes carry class signal; the
	// rest are pure noise.
	NumericInformative int
	// NumericDirect of the informative attributes carry a direct
	// class-mean shift (single-feature signal); the remainder form
	// sign-product pairs (combined-feature signal). 0 means one third
	// of NumericInformative.
	NumericDirect int
	// Patterns are the planted conjunctions. AutoPatterns can fill this
	// in from the spec shape.
	Patterns []Planted
	// Template enables crossover-template mode (0 disables). Two global
	// prototype vectors U and V are drawn (differing on every
	// attribute); each class mixes them through a class-specific
	// crossover mask into two complementary modes, and an instance
	// copies attribute values from one of its class's modes with this
	// probability. Because every attribute value appears in some mode
	// of every class with equal probability, single-feature marginals
	// are flat by construction; the class is encoded in which attribute
	// PAIRS co-vary — the paper's premise that combined features carry
	// semantics single features cannot.
	Template float64
	// SingleBias adds a weak per-class single-value component on top of
	// Template mode: with this probability an attribute copies a
	// class-specific value instead. It tunes how predictive single
	// features are (calibrated against the paper's Item_All
	// accuracies). Requires Template > 0 and Template+SingleBias <= 1.
	SingleBias float64
	// Dominance enables globally-skewed mode: each categorical
	// attribute has a class-independent dominant value appearing with
	// probability drawn from [Dominance−0.25, Dominance]. Highly
	// dominant co-occurring values are what make the real Chess/
	// Waveform/Letter data so dense that closed-pattern counts explode
	// as min_sup drops (Tables 3–5). Mutually exclusive with Template.
	Dominance float64
	// MissingRate is the per-cell probability of a missing value.
	MissingRate float64
	Seed        int64
}

// Validate checks the spec for structural soundness.
func (s Spec) Validate() error {
	if s.Instances <= 0 {
		return fmt.Errorf("datagen %s: Instances = %d", s.Name, s.Instances)
	}
	if s.Classes < 2 {
		return fmt.Errorf("datagen %s: Classes = %d, want >= 2", s.Name, s.Classes)
	}
	if len(s.Cat)+s.Numeric == 0 {
		return fmt.Errorf("datagen %s: no attributes", s.Name)
	}
	if s.Priors != nil {
		if len(s.Priors) != s.Classes {
			return fmt.Errorf("datagen %s: %d priors for %d classes", s.Name, len(s.Priors), s.Classes)
		}
		sum := 0.0
		for _, p := range s.Priors {
			if p < 0 {
				return fmt.Errorf("datagen %s: negative prior", s.Name)
			}
			sum += p
		}
		if sum <= 0 {
			return fmt.Errorf("datagen %s: priors sum to 0", s.Name)
		}
	}
	for i, c := range s.Cat {
		if c < 2 {
			return fmt.Errorf("datagen %s: categorical attr %d has cardinality %d", s.Name, i, c)
		}
	}
	for _, p := range s.Patterns {
		if p.Class < 0 || p.Class >= s.Classes {
			return fmt.Errorf("datagen %s: pattern class %d out of range", s.Name, p.Class)
		}
		if len(p.Attrs) != len(p.Values) {
			return fmt.Errorf("datagen %s: pattern attrs/values mismatch", s.Name)
		}
		if p.Values2 != nil && len(p.Values2) != len(p.Attrs) {
			return fmt.Errorf("datagen %s: pattern attrs/values2 mismatch", s.Name)
		}
		for j, a := range p.Attrs {
			if a < 0 || a >= len(s.Cat) {
				return fmt.Errorf("datagen %s: pattern attr %d out of categorical range", s.Name, a)
			}
			card := s.Cat[a]
			if p.ProtoMix {
				if s.Template <= 0 {
					return fmt.Errorf("datagen %s: ProtoMix pattern requires Template mode", s.Name)
				}
				card = 2
			}
			if p.Values[j] < 0 || p.Values[j] >= card {
				return fmt.Errorf("datagen %s: pattern value out of range for attr %d", s.Name, a)
			}
			if p.Values2 != nil && (p.Values2[j] < 0 || p.Values2[j] >= card) {
				return fmt.Errorf("datagen %s: pattern value2 out of range for attr %d", s.Name, a)
			}
		}
	}
	if s.MissingRate < 0 || s.MissingRate >= 1 {
		return fmt.Errorf("datagen %s: MissingRate = %v", s.Name, s.MissingRate)
	}
	if s.Template < 0 || s.Template > 1 {
		return fmt.Errorf("datagen %s: Template = %v", s.Name, s.Template)
	}
	if s.Dominance < 0 || s.Dominance > 1 {
		return fmt.Errorf("datagen %s: Dominance = %v", s.Name, s.Dominance)
	}
	if s.Template > 0 && s.Dominance > 0 {
		return fmt.Errorf("datagen %s: Template and Dominance are mutually exclusive", s.Name)
	}
	if s.SingleBias < 0 || s.Template+s.SingleBias > 1 {
		return fmt.Errorf("datagen %s: SingleBias = %v with Template = %v", s.Name, s.SingleBias, s.Template)
	}
	if s.SingleBias > 0 && s.Template == 0 {
		return fmt.Errorf("datagen %s: SingleBias requires Template mode", s.Name)
	}
	return nil
}

// AutoPatterns populates s.Patterns with nPerClass random conjunctions
// of length minLen..maxLen per class, derived deterministically from
// the spec seed. Within a class, patterns are carved from consecutive
// windows of a per-class attribute permutation so that they use
// disjoint attributes wherever the attribute budget allows — planted
// conjunctions then do not overwrite each other, keeping each one's
// class correlation sharp. Existing patterns are kept.
func (s *Spec) AutoPatterns(nPerClass, minLen, maxLen int) {
	if len(s.Cat) == 0 {
		return
	}
	r := rand.New(rand.NewSource(s.Seed ^ 0x5eed9a77))
	for c := 0; c < s.Classes; c++ {
		perm := r.Perm(len(s.Cat))
		next := 0
		for k := 0; k < nPerClass; k++ {
			l := minLen
			if maxLen > minLen {
				l += r.Intn(maxLen - minLen + 1)
			}
			if l > len(s.Cat) {
				l = len(s.Cat)
			}
			if next+l > len(perm) {
				// Out of disjoint attribute budget: reshuffle and start a
				// fresh segment rather than wrapping into earlier windows.
				perm = r.Perm(len(s.Cat))
				next = 0
			}
			attrs := make([]int, l)
			copy(attrs, perm[next:next+l])
			next += l
			sort.Ints(attrs)
			vals := make([]int, l)
			vals2 := make([]int, l)
			protoMix := s.Template > 0
			for i, a := range attrs {
				if protoMix {
					// Prototype selectors; the second variant swaps U↔V
					// in every position. Generate re-rolls selector
					// tuples that collide with another class's
					// crossover mode on this window.
					vals[i] = r.Intn(2)
					vals2[i] = 1 - vals[i]
				} else {
					vals[i] = r.Intn(s.Cat[a])
					// The second variant differs in every position so the
					// two conjunctions share no item.
					vals2[i] = (vals[i] + 1 + r.Intn(s.Cat[a]-1)) % s.Cat[a]
				}
			}
			s.Patterns = append(s.Patterns, Planted{
				Class:    c,
				Attrs:    attrs,
				Values:   vals,
				Values2:  vals2,
				Prob:     0.8 + 0.18*r.Float64(),
				ProtoMix: protoMix,
			})
		}
	}
}

// rerollSelectors re-draws a ProtoMix pattern's selector tuple until it
// differs from both crossover modes of every class other than its own,
// restricted to the pattern's attributes (up to a bounded number of
// attempts; the best-mismatching draw wins if perfection is
// impossible). Mode 0 of class c selects U where crossMask[c][a] is
// true; mode 1 is the complement.
func rerollSelectors(p Planted, crossMask [][]bool, r *rand.Rand) Planted {
	conflicts := func(vals []int) int {
		n := 0
		for c := range crossMask {
			if c == p.Class {
				continue
			}
			for mode := 0; mode < 2; mode++ {
				match := true
				for j, a := range p.Attrs {
					sel := 0 // 0 = U
					if crossMask[c][a] == (mode == 1) {
						sel = 1 // V
					}
					if vals[j] != sel {
						match = false
						break
					}
				}
				if match {
					n++
				}
			}
		}
		return n
	}
	best := append([]int(nil), p.Values...)
	bestConf := conflicts(best)
	for attempt := 0; attempt < 32 && bestConf > 0; attempt++ {
		cand := make([]int, len(p.Attrs))
		for j := range cand {
			cand[j] = r.Intn(2)
		}
		if c := conflicts(cand); c < bestConf {
			best, bestConf = cand, c
		}
	}
	p.Values = best
	v2 := make([]int, len(best))
	for j := range best {
		v2[j] = 1 - best[j]
	}
	p.Values2 = v2
	return p
}

// Generate builds the dataset described by the spec.
func Generate(s Spec) (*dataset.Dataset, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(s.Seed))

	d := &dataset.Dataset{Name: s.Name}
	for i, card := range s.Cat {
		attr := dataset.Attribute{Name: fmt.Sprintf("c%02d", i), Kind: dataset.Categorical}
		for v := 0; v < card; v++ {
			attr.Values = append(attr.Values, fmt.Sprintf("v%d", v))
		}
		d.Attrs = append(d.Attrs, attr)
	}
	for i := 0; i < s.Numeric; i++ {
		d.Attrs = append(d.Attrs, dataset.Attribute{Name: fmt.Sprintf("n%02d", i), Kind: dataset.Numeric})
	}
	for c := 0; c < s.Classes; c++ {
		d.Classes = append(d.Classes, fmt.Sprintf("class%d", c))
	}

	priors := s.Priors
	if priors == nil {
		priors = make([]float64, s.Classes)
		for c := range priors {
			priors[c] = 1
		}
	}
	cum := make([]float64, len(priors))
	total := 0.0
	for c, p := range priors {
		total += p
		cum[c] = total
	}

	// Crossover-template machinery: global prototypes U and V, per-class
	// crossover masks, and per-class single-bias values.
	var protoU, protoV []int
	var crossMask [][]bool // [class][attr]: mode 0 takes U where true, V where false
	var singleTmpl [][]int
	if s.Template > 0 {
		protoU = make([]int, len(s.Cat))
		protoV = make([]int, len(s.Cat))
		for a, card := range s.Cat {
			protoU[a] = r.Intn(card)
			protoV[a] = (protoU[a] + 1 + r.Intn(card-1)) % card
		}
		crossMask = make([][]bool, s.Classes)
		singleTmpl = make([][]int, s.Classes)
		for c := range crossMask {
			crossMask[c] = make([]bool, len(s.Cat))
			singleTmpl[c] = make([]int, len(s.Cat))
			for a, card := range s.Cat {
				crossMask[c][a] = r.Intn(2) == 0
				singleTmpl[c][a] = r.Intn(card)
			}
		}
	}
	// Per-attribute dominant values for globally-skewed mode.
	var domValue []int
	var domProb []float64
	if s.Dominance > 0 {
		domValue = make([]int, len(s.Cat))
		domProb = make([]float64, len(s.Cat))
		for a, card := range s.Cat {
			domValue[a] = r.Intn(card)
			lo := s.Dominance - 0.25
			if lo < 0 {
				lo = 0
			}
			domProb[a] = lo + (s.Dominance-lo)*r.Float64()
		}
	}

	// Patterns grouped by class. ProtoMix selector tuples are re-rolled
	// here (where the crossover masks are known) until the primary
	// variant does not coincide with any other class's crossover mode on
	// the pattern's window — otherwise that class's template instances
	// would satisfy the conjunction and dilute its purity.
	byClass := make([][]Planted, s.Classes)
	for _, p := range s.Patterns {
		if p.ProtoMix && crossMask != nil {
			p = rerollSelectors(p, crossMask, r)
		}
		byClass[p.Class] = append(byClass[p.Class], p)
	}

	nCat := len(s.Cat)
	for i := 0; i < s.Instances; i++ {
		// Draw class from priors.
		u := r.Float64() * total
		y := sort.SearchFloat64s(cum, u)
		if y >= s.Classes {
			y = s.Classes - 1
		}

		row := make([]float64, nCat+s.Numeric)
		// Categorical baseline: single-bias copy, crossover-mode copy,
		// dominant value, or uniform noise.
		mode := r.Intn(2)
		for a, card := range s.Cat {
			u := r.Float64()
			switch {
			case protoU != nil && u < s.SingleBias:
				row[a] = float64(singleTmpl[y][a])
			case protoU != nil && u < s.SingleBias+s.Template:
				// Mode 0 follows the mask, mode 1 its complement.
				takeU := crossMask[y][a] == (mode == 0)
				if takeU {
					row[a] = float64(protoU[a])
				} else {
					row[a] = float64(protoV[a])
				}
			case domValue != nil && r.Float64() < domProb[a]:
				row[a] = float64(domValue[a])
			default:
				row[a] = float64(r.Intn(card))
			}
		}
		// Plant the class's conjunctions. Two-variant patterns use an
		// asymmetric 70/30 split: the primary variant keeps enough
		// support to sit in the high-IG region of the support/IG
		// envelope (Figure 2), while the secondary variant still damps
		// the single-item marginals below the conjunction's purity.
		for _, p := range byClass[y] {
			if r.Float64() < p.Prob {
				vals := p.Values
				if p.Values2 != nil && r.Float64() < 0.2 {
					vals = p.Values2
				}
				for j, a := range p.Attrs {
					v := vals[j]
					if p.ProtoMix {
						if v == 0 {
							v = protoU[a]
						} else {
							v = protoV[a]
						}
					}
					row[a] = float64(v)
				}
			}
		}
		// Numeric attributes. Informative ones split into two groups:
		//
		//   - "direct" attributes (one third) carry a clear class-mean
		//     shift, the single-feature signal real UCI data has;
		//   - the rest come in pairs sharing a latent sign s ∈ {−1,+1}:
		//     the even attribute carries s, the odd one carries s × bit
		//     p of the class index. Each marginal is a class-independent
		//     symmetric mixture, while the pair's sign product encodes
		//     one class bit — the numeric analogue of the paper's XOR
		//     motivation, recoverable only by conjunctions of
		//     discretized bins.
		direct := s.NumericDirect
		if direct == 0 {
			direct = s.NumericInformative / 3
		}
		if direct > s.NumericInformative {
			direct = s.NumericInformative
		}
		nPairs := (s.NumericInformative - direct + 1) / 2
		signs := make([]float64, nPairs)
		for p := range signs {
			signs[p] = 1
			if r.Intn(2) == 0 {
				signs[p] = -1
			}
		}
		classShift := 0.0
		if s.Classes > 1 {
			classShift = (float64(y) - float64(s.Classes-1)/2) / float64(s.Classes-1)
		}
		for k := 0; k < s.Numeric; k++ {
			v := r.NormFloat64()
			switch {
			case k < direct:
				v = 1.2*classShift + r.NormFloat64()
			case k < s.NumericInformative:
				kp := k - direct
				pair := kp / 2
				bit := 1.0
				if (y>>uint(pair%8))&1 == 1 {
					bit = -1
				}
				if kp%2 == 0 {
					v = signs[pair] + 0.45*r.NormFloat64()
				} else {
					v = signs[pair]*bit + 0.45*r.NormFloat64()
				}
				v += 0.35 * classShift
			}
			row[nCat+k] = v
		}
		// Missing cells.
		if s.MissingRate > 0 {
			for a := range row {
				if r.Float64() < s.MissingRate {
					row[a] = dataset.Missing
				}
			}
		}
		d.Rows = append(d.Rows, row)
		d.Labels = append(d.Labels, y)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}
