package datagen

import (
	"fmt"
	"sort"

	"dfpc/internal/dataset"
)

// uciShape records the published shape of one UCI dataset: instance
// count, categorical attribute count (with typical cardinality),
// numeric attribute count, and class count. The synthetic stand-in
// mirrors this shape; see DESIGN.md §4 for the substitution argument.
type uciShape struct {
	instances int
	catAttrs  int
	catCard   int
	numAttrs  int
	numInform int
	numDirect int
	classes   int
	skew      bool    // skewed class priors (e.g. anneal, hepatitis)
	missing   float64 // missing-cell rate of the real dataset (approx.)
	perClass  int     // planted patterns per class
	minPatLen int
	maxPatLen int
	// template is the crossover-template strength (pattern signal);
	// singleBias tunes how predictive single features are, calibrated
	// so Item_All accuracy lands near the paper's reported value for
	// the real dataset.
	template   float64
	singleBias float64
	// dominance enables the globally-skewed mode of the dense
	// scalability sets.
	dominance float64
}

// shapes lists the 19 UCI classification datasets of Tables 1–2 plus
// the three dense scalability datasets of Tables 3–5.
var shapes = map[string]uciShape{
	// Tables 1–2 (shape from the UCI repository).
	"anneal":   {instances: 898, catAttrs: 32, catCard: 3, numAttrs: 6, numInform: 3, classes: 5, skew: true, missing: 0.05, perClass: 3, minPatLen: 2, maxPatLen: 4, template: 0.3, singleBias: 0.65},
	"austral":  {instances: 690, catAttrs: 8, catCard: 3, numAttrs: 6, numInform: 3, classes: 2, perClass: 2, minPatLen: 2, maxPatLen: 4, template: 0.5, singleBias: 0.4},
	"auto":     {instances: 205, catAttrs: 10, catCard: 4, numAttrs: 15, numInform: 5, classes: 6, skew: true, missing: 0.02, perClass: 2, minPatLen: 2, maxPatLen: 3, template: 0.5, singleBias: 0.4},
	"breast":   {instances: 699, catAttrs: 9, catCard: 4, numAttrs: 0, classes: 2, missing: 0.003, perClass: 2, minPatLen: 2, maxPatLen: 3, template: 0.5, singleBias: 0.45},
	"cleve":    {instances: 303, catAttrs: 7, catCard: 3, numAttrs: 6, numInform: 3, classes: 2, perClass: 2, minPatLen: 2, maxPatLen: 3, template: 0.5, singleBias: 0.4},
	"diabetes": {instances: 768, catAttrs: 0, numAttrs: 8, numInform: 4, classes: 2, perClass: 3, minPatLen: 2, maxPatLen: 3},
	"glass":    {instances: 214, catAttrs: 0, numAttrs: 9, numInform: 8, numDirect: 3, classes: 6, skew: true, perClass: 2, minPatLen: 2, maxPatLen: 3},
	"heart":    {instances: 270, catAttrs: 7, catCard: 3, numAttrs: 6, numInform: 3, classes: 2, perClass: 2, minPatLen: 2, maxPatLen: 3, template: 0.5, singleBias: 0.4},
	"hepatic":  {instances: 155, catAttrs: 13, catCard: 2, numAttrs: 6, numInform: 3, classes: 2, skew: true, missing: 0.06, perClass: 3, minPatLen: 2, maxPatLen: 4, template: 0.5, singleBias: 0.4},
	"horse":    {instances: 368, catAttrs: 15, catCard: 3, numAttrs: 7, numInform: 3, classes: 2, missing: 0.2, perClass: 3, minPatLen: 2, maxPatLen: 4, template: 0.5, singleBias: 0.4},
	"iono":     {instances: 351, catAttrs: 0, numAttrs: 34, numInform: 8, numDirect: 4, classes: 2, perClass: 3, minPatLen: 2, maxPatLen: 4},
	"iris":     {instances: 150, catAttrs: 0, numAttrs: 4, numInform: 4, numDirect: 2, classes: 3, perClass: 2, minPatLen: 2, maxPatLen: 2},
	"labor":    {instances: 57, catAttrs: 8, catCard: 3, numAttrs: 8, numInform: 3, classes: 2, missing: 0.3, perClass: 2, minPatLen: 2, maxPatLen: 3, template: 0.45, singleBias: 0.45},
	"lymph":    {instances: 148, catAttrs: 15, catCard: 3, numAttrs: 3, numInform: 2, classes: 4, skew: true, perClass: 2, minPatLen: 2, maxPatLen: 3, template: 0.6, singleBias: 0.3},
	"pima":     {instances: 768, catAttrs: 0, numAttrs: 8, numInform: 4, classes: 2, perClass: 3, minPatLen: 2, maxPatLen: 3},
	"sonar":    {instances: 208, catAttrs: 0, numAttrs: 60, numInform: 10, classes: 2, perClass: 3, minPatLen: 2, maxPatLen: 4},
	"vehicle":  {instances: 846, catAttrs: 0, numAttrs: 18, numInform: 8, numDirect: 3, classes: 4, perClass: 3, minPatLen: 2, maxPatLen: 3},
	"wine":     {instances: 178, catAttrs: 0, numAttrs: 13, numInform: 6, numDirect: 4, classes: 3, perClass: 2, minPatLen: 2, maxPatLen: 3},
	"zoo":      {instances: 101, catAttrs: 15, catCard: 2, numAttrs: 1, numInform: 1, classes: 7, skew: true, perClass: 2, minPatLen: 2, maxPatLen: 3, template: 0.3, singleBias: 0.65},

	// Tables 3–5 (dense scalability sets).
	"chess":    {instances: 3196, catAttrs: 36, catCard: 2, numAttrs: 0, classes: 2, perClass: 4, minPatLen: 2, maxPatLen: 5, dominance: 0.95},
	"waveform": {instances: 5000, catAttrs: 21, catCard: 5, numAttrs: 0, classes: 3, perClass: 2, minPatLen: 2, maxPatLen: 3, dominance: 0.42},
	"letter":   {instances: 20000, catAttrs: 16, catCard: 4, numAttrs: 0, classes: 26, perClass: 2, minPatLen: 2, maxPatLen: 4, dominance: 0.62},
}

// Names returns the available dataset names in sorted order.
func Names() []string {
	names := make([]string, 0, len(shapes))
	for n := range shapes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Table1Names returns the 19 datasets of Tables 1–2 in the paper's
// order.
func Table1Names() []string {
	return []string{
		"anneal", "austral", "auto", "breast", "cleve", "diabetes",
		"glass", "heart", "hepatic", "horse", "iono", "iris", "labor",
		"lymph", "pima", "sonar", "vehicle", "wine", "zoo",
	}
}

// SpecFor builds the full Spec for a named dataset; the seed
// parameterizes the random draw (fixed per experiment for
// reproducibility).
func SpecFor(name string, seed int64) (Spec, error) {
	sh, ok := shapes[name]
	if !ok {
		return Spec{}, fmt.Errorf("datagen: unknown dataset %q (have %v)", name, Names())
	}
	s := Spec{
		Name:               name,
		Instances:          sh.instances,
		Classes:            sh.classes,
		Numeric:            sh.numAttrs,
		NumericInformative: sh.numInform,
		NumericDirect:      sh.numDirect,
		MissingRate:        sh.missing,
		Template:           sh.template,
		SingleBias:         sh.singleBias,
		Dominance:          sh.dominance,
		Seed:               seed,
	}
	for i := 0; i < sh.catAttrs; i++ {
		s.Cat = append(s.Cat, sh.catCard)
	}
	if sh.skew {
		s.Priors = make([]float64, sh.classes)
		for c := range s.Priors {
			s.Priors[c] = 1.0 / float64(c+1)
		}
	}
	s.AutoPatterns(sh.perClass, sh.minPatLen, sh.maxPatLen)
	return s, nil
}

// ByName generates a named dataset with the given seed.
func ByName(name string, seed int64) (*dataset.Dataset, error) {
	s, err := SpecFor(name, seed)
	if err != nil {
		return nil, err
	}
	return Generate(s)
}
