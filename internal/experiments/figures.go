package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"

	"dfpc/internal/c45"
	"dfpc/internal/core"
	"dfpc/internal/datagen"
	"dfpc/internal/eval"
)

func c45Train(x [][]int32, y []int, numClasses int) (*c45.Model, error) {
	return c45.Train(x, y, numClasses, c45.Config{})
}

// Figure1Row summarizes information gain at one pattern length on one
// dataset (the paper's Figure 1 scatter, reduced to per-length
// statistics).
type Figure1Row struct {
	Dataset string
	Length  int
	Count   int
	MaxIG   float64
	MeanIG  float64
}

// RunFigure1 reproduces Figure 1: information gain vs. pattern length
// on the given datasets (the paper uses Austral, Breast, Sonar). The
// headline observation to verify: some frequent patterns have higher
// information gain than any single feature.
func RunFigure1(names []string, minSupport float64) ([]Figure1Row, error) {
	var rows []Figure1Row
	for _, name := range names {
		d, err := datagen.ByName(name, Seed)
		if err != nil {
			return rows, err
		}
		stats, _, err := core.AnalyzePatterns(d, core.AnalyzeOptions{
			MinSupport:     minSupport,
			IncludeSingles: true,
		})
		if err != nil {
			return rows, fmt.Errorf("figure1 %s: %w", name, err)
		}
		byLen := map[int][]float64{}
		for _, s := range stats {
			byLen[s.Length] = append(byLen[s.Length], s.InfoGain)
		}
		lengths := make([]int, 0, len(byLen))
		for l := range byLen {
			lengths = append(lengths, l)
		}
		sort.Ints(lengths)
		for _, l := range lengths {
			igs := byLen[l]
			maxIG, sum := 0.0, 0.0
			for _, g := range igs {
				sum += g
				if g > maxIG {
					maxIG = g
				}
			}
			rows = append(rows, Figure1Row{
				Dataset: name, Length: l, Count: len(igs),
				MaxIG: maxIG, MeanIG: sum / float64(len(igs)),
			})
		}
	}
	return rows, nil
}

// WriteFigure1 renders the per-length series.
func WriteFigure1(w io.Writer, rows []Figure1Row) {
	fmt.Fprintf(w, "Figure 1. Information Gain vs Pattern Length\n")
	fmt.Fprintf(w, "%-10s %7s %7s %8s %8s\n", "Data", "Length", "Count", "MaxIG", "MeanIG")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %7d %7d %8.4f %8.4f\n", r.Dataset, r.Length, r.Count, r.MaxIG, r.MeanIG)
	}
}

// FigureBoundRow is one support bucket of Figures 2–3: the best
// empirical measure among features in the bucket versus the theoretical
// upper bound at the bucket's support.
type FigureBoundRow struct {
	Dataset  string
	Support  int
	Count    int
	MaxValue float64 // max empirical IG (Fig 2) or Fisher (Fig 3)
	Bound    float64 // IGub / Frub at this support
}

// RunFigure2 reproduces Figure 2: empirical information gain vs.
// support, with the theoretical upper bound IGub overlay. Supports are
// bucketed for a readable table; the invariant MaxValue <= Bound must
// hold everywhere.
func RunFigure2(names []string, minSupport float64, buckets int) ([]FigureBoundRow, error) {
	return runBoundFigure(names, minSupport, buckets, false)
}

// RunFigure3 is Figure 2's Fisher-score counterpart.
func RunFigure3(names []string, minSupport float64, buckets int) ([]FigureBoundRow, error) {
	return runBoundFigure(names, minSupport, buckets, true)
}

func runBoundFigure(names []string, minSupport float64, buckets int, fisher bool) ([]FigureBoundRow, error) {
	if buckets <= 0 {
		buckets = 20
	}
	var rows []FigureBoundRow
	for _, name := range names {
		d, err := datagen.ByName(name, Seed)
		if err != nil {
			return rows, err
		}
		stats, b, err := core.AnalyzePatterns(d, core.AnalyzeOptions{
			MinSupport:     minSupport,
			IncludeSingles: true,
		})
		if err != nil {
			return rows, fmt.Errorf("figure %s: %w", name, err)
		}
		var curve []core.BoundPoint
		if fisher {
			curve = core.FisherBoundCurve(b.ClassCounts())
		} else {
			curve = core.IGBoundCurve(b.ClassCounts())
		}
		n := b.NumRows()
		width := (n + buckets - 1) / buckets
		type agg struct {
			count int
			max   float64
		}
		perBucket := make([]agg, buckets)
		for _, s := range stats {
			if s.Support < 1 || s.Support >= n {
				continue
			}
			bi := (s.Support - 1) / width
			if bi >= buckets {
				bi = buckets - 1
			}
			v := s.InfoGain
			if fisher {
				v = s.Fisher
			}
			perBucket[bi].count++
			if v > perBucket[bi].max {
				perBucket[bi].max = v
			}
		}
		for bi, a := range perBucket {
			if a.count == 0 {
				continue
			}
			// Representative support: the bucket's upper edge (the bound
			// there dominates every support in the bucket for the rising
			// region; we report the max bound within the bucket to keep
			// the dominance invariant exact).
			lo := bi*width + 1
			hi := (bi + 1) * width
			if hi > n-1 {
				hi = n - 1
			}
			bound := 0.0
			for s := lo; s <= hi; s++ {
				if bv := curve[s-1].Bound; bv > bound || math.IsInf(bv, 1) {
					bound = bv
					if math.IsInf(bv, 1) {
						break
					}
				}
			}
			rows = append(rows, FigureBoundRow{
				Dataset: name, Support: hi, Count: a.count,
				MaxValue: a.max, Bound: bound,
			})
		}
	}
	return rows, nil
}

// WriteBoundFigure renders Figure 2 or 3.
func WriteBoundFigure(w io.Writer, title, measure string, rows []FigureBoundRow) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-10s %9s %7s %10s %12s\n", "Data", "Support", "Count", "Max"+measure, measure+"_ub")
	for _, r := range rows {
		bound := fmt.Sprintf("%12.4f", r.Bound)
		if math.IsInf(r.Bound, 1) {
			bound = fmt.Sprintf("%12s", "+Inf")
		}
		fmt.Fprintf(w, "%-10s %9d %7d %10.4f %s\n", r.Dataset, r.Support, r.Count, r.MaxValue, bound)
	}
}

// MinSupSweepRow is one point of the Section 3.2 min_sup-effect curve.
type MinSupSweepRow struct {
	Dataset    string
	MinSupport float64
	Patterns   int
	Accuracy   float64 // percent
}

// RunMinSupSweep traces classification accuracy and pattern count as
// min_sup decreases — the Section 3.2 analysis (accuracy rises as
// medium-frequency discriminative patterns appear, then flattens or
// drops from overfitting while cost explodes).
func RunMinSupSweep(name string, minSups []float64, folds int) ([]MinSupSweepRow, error) {
	d, err := datagen.ByName(name, Seed)
	if err != nil {
		return nil, err
	}
	if folds <= 0 {
		folds = 5
	}
	var rows []MinSupSweepRow
	for _, ms := range minSups {
		p, err := pipelineFor("Pat_FS", core.SVMLinear, Protocol{MinSupport: ms, Folds: folds}.withDefaults())
		if err != nil {
			return rows, fmt.Errorf("minsup sweep %s@%v: %w", name, ms, err)
		}
		res, err := eval.CrossValidate(p, d, folds, Seed)
		if err != nil {
			return rows, fmt.Errorf("minsup sweep %s@%v: %w", name, ms, err)
		}
		rows = append(rows, MinSupSweepRow{
			Dataset:    name,
			MinSupport: ms,
			Patterns:   p.Stats.MinedCount,
			Accuracy:   100 * res.Mean,
		})
	}
	return rows, nil
}

// WriteMinSupSweep renders the sweep.
func WriteMinSupSweep(w io.Writer, rows []MinSupSweepRow) {
	fmt.Fprintf(w, "Minimum-support effect (Section 3.2): Pat_FS accuracy vs min_sup\n")
	fmt.Fprintf(w, "%-10s %9s %10s %10s\n", "Data", "min_sup", "#Patterns", "Acc(%)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %9.3f %10d %10.2f\n", r.Dataset, r.MinSupport, r.Patterns, r.Accuracy)
	}
}
