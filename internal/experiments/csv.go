package experiments

import (
	"encoding/csv"
	"io"
	"math"
	"strconv"
)

// CSV emitters: each experiment's rows as machine-readable series for
// external plotting (the figures in the paper are plots; these files
// are their data).

func writeCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func f2(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }

// Table1CSV writes Table 1 rows as CSV.
func Table1CSV(w io.Writer, rows []Table1Row) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Dataset, f2(r.ItemAll), f2(r.ItemFS), f2(r.ItemRBF), f2(r.PatAll), f2(r.PatFS)}
	}
	return writeCSV(w, []string{"dataset", "item_all", "item_fs", "item_rbf", "pat_all", "pat_fs"}, out)
}

// Table2CSV writes Table 2 rows as CSV.
func Table2CSV(w io.Writer, rows []Table2Row) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Dataset, f2(r.ItemAll), f2(r.ItemFS), f2(r.PatAll), f2(r.PatFS)}
	}
	return writeCSV(w, []string{"dataset", "item_all", "item_fs", "pat_all", "pat_fs"}, out)
}

// ScalabilityCSV writes Tables 3–5 rows as CSV; infeasible rows carry
// empty measurement cells.
func ScalabilityCSV(w io.Writer, rows []ScalabilityRow) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		if r.Infeasible {
			out[i] = []string{strconv.Itoa(r.MinSupport), "", "", "", "", "1"}
			continue
		}
		out[i] = []string{
			strconv.Itoa(r.MinSupport),
			strconv.Itoa(r.Patterns),
			f2(r.Time.Seconds()),
			f2(r.SVMAcc),
			f2(r.C45Acc),
			"0",
		}
	}
	return writeCSV(w, []string{"min_sup", "patterns", "time_s", "svm_acc", "c45_acc", "infeasible"}, out)
}

// Figure1CSV writes the IG-by-length series as CSV.
func Figure1CSV(w io.Writer, rows []Figure1Row) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Dataset, strconv.Itoa(r.Length), strconv.Itoa(r.Count), f2(r.MaxIG), f2(r.MeanIG)}
	}
	return writeCSV(w, []string{"dataset", "length", "count", "max_ig", "mean_ig"}, out)
}

// BoundFigureCSV writes Figure 2/3 rows as CSV; infinite bounds are
// rendered as "inf".
func BoundFigureCSV(w io.Writer, rows []FigureBoundRow) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		bound := f2(r.Bound)
		if math.IsInf(r.Bound, 1) {
			bound = "inf"
		}
		out[i] = []string{r.Dataset, strconv.Itoa(r.Support), strconv.Itoa(r.Count), f2(r.MaxValue), bound}
	}
	return writeCSV(w, []string{"dataset", "support", "count", "max_value", "bound"}, out)
}

// MinSupSweepCSV writes the Section 3.2 sweep as CSV.
func MinSupSweepCSV(w io.Writer, rows []MinSupSweepRow) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Dataset, f2(r.MinSupport), strconv.Itoa(r.Patterns), f2(r.Accuracy)}
	}
	return writeCSV(w, []string{"dataset", "min_sup", "patterns", "accuracy"}, out)
}

// HarmonyCSV writes the Section 5 comparison as CSV.
func HarmonyCSV(w io.Writer, rows []HarmonyRow) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Dataset, f2(r.PatFS), f2(r.Harmony), f2(r.CBA)}
	}
	return writeCSV(w, []string{"dataset", "pat_fs", "harmony", "cba"}, out)
}

// AblationCSV writes ablation rows as CSV.
func AblationCSV(w io.Writer, rows []AblationRow) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Dataset, r.Variant, strconv.Itoa(r.Features), f2(r.Accuracy)}
	}
	return writeCSV(w, []string{"dataset", "variant", "features", "accuracy"}, out)
}
