package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// The experiment smoke tests run reduced-fidelity configurations (few
// folds, small datasets, high min_sup) and assert the structural and
// qualitative properties the paper reports, not absolute numbers.

func TestRunTable1Smoke(t *testing.T) {
	rows, err := RunTable1([]string{"labor", "zoo"}, Protocol{Folds: 3, MinSupport: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		for _, v := range []float64{r.ItemAll, r.ItemFS, r.ItemRBF, r.PatAll, r.PatFS} {
			if v < 10 || v > 100 {
				t.Fatalf("%s: implausible accuracy %v", r.Dataset, v)
			}
		}
	}
	var buf bytes.Buffer
	WriteTable1(&buf, rows)
	if !strings.Contains(buf.String(), "labor") || !strings.Contains(buf.String(), "Pat_FS") {
		t.Fatalf("render missing content:\n%s", buf.String())
	}
}

func TestRunTable2Smoke(t *testing.T) {
	rows, err := RunTable2([]string{"labor"}, Protocol{Folds: 3, MinSupport: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	var buf bytes.Buffer
	WriteTable2(&buf, rows)
	if !strings.Contains(buf.String(), "C4.5") {
		t.Fatal("render missing title")
	}
}

func TestRunScalabilitySmoke(t *testing.T) {
	rows, err := RunScalability(ScalabilityConfig{
		Dataset:     "chess",
		AbsSupports: []int{700, 650},
		SampleRows:  800,
		MaxPatterns: 300000,
		MaxLen:      4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Lower min_sup must never yield fewer patterns.
	if !rows[0].Infeasible && !rows[1].Infeasible && rows[1].Patterns < rows[0].Patterns {
		t.Fatalf("pattern count not monotone: %+v", rows)
	}
	var buf bytes.Buffer
	WriteScalability(&buf, "Table 3 (smoke)", rows)
	if !strings.Contains(buf.String(), "#Patterns") {
		t.Fatal("render missing header")
	}
}

func TestScalabilityInfeasibleRow(t *testing.T) {
	rows, err := RunScalability(ScalabilityConfig{
		Dataset:     "chess",
		AbsSupports: []int{1},
		SampleRows:  400,
		MaxPatterns: 500, // tiny budget → guaranteed abort, the paper's N/A row
		MaxLen:      0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || !rows[0].Infeasible {
		t.Fatalf("expected infeasible row, got %+v", rows)
	}
	var buf bytes.Buffer
	WriteScalability(&buf, "smoke", rows)
	if !strings.Contains(buf.String(), "N/A") {
		t.Fatal("render missing N/A")
	}
}

func TestRunFigure1Smoke(t *testing.T) {
	rows, err := RunFigure1([]string{"breast"}, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatalf("rows = %d, want lengths >= 2", len(rows))
	}
	// Figure 1's claim: some pattern (length >= 2) has higher IG than
	// every single feature.
	var bestSingle, bestPattern float64
	for _, r := range rows {
		if r.Length == 1 && r.MaxIG > bestSingle {
			bestSingle = r.MaxIG
		}
		if r.Length >= 2 && r.MaxIG > bestPattern {
			bestPattern = r.MaxIG
		}
	}
	if bestPattern <= bestSingle {
		t.Fatalf("no pattern beats singles: pattern %v vs single %v", bestPattern, bestSingle)
	}
	var buf bytes.Buffer
	WriteFigure1(&buf, rows)
	if !strings.Contains(buf.String(), "Length") {
		t.Fatal("render missing header")
	}
}

func TestRunFigure2BoundDominates(t *testing.T) {
	rows, err := RunFigure2([]string{"breast"}, 0.2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.MaxValue > r.Bound+1e-9 {
			t.Fatalf("empirical IG %v exceeds bound %v at support %d", r.MaxValue, r.Bound, r.Support)
		}
	}
	var buf bytes.Buffer
	WriteBoundFigure(&buf, "Figure 2 (smoke)", "IG", rows)
	if !strings.Contains(buf.String(), "IG_ub") {
		t.Fatal("render missing bound column")
	}
}

func TestRunFigure3BoundDominates(t *testing.T) {
	rows, err := RunFigure3([]string{"breast"}, 0.2, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !math.IsInf(r.Bound, 1) && r.MaxValue > r.Bound+1e-9 {
			t.Fatalf("empirical Fisher %v exceeds bound %v at support %d", r.MaxValue, r.Bound, r.Support)
		}
	}
}

func TestRunMinSupSweepSmoke(t *testing.T) {
	rows, err := RunMinSupSweep("labor", []float64{0.5, 0.3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Lower min_sup → at least as many patterns.
	if rows[1].Patterns < rows[0].Patterns {
		t.Fatalf("pattern count not monotone: %+v", rows)
	}
	var buf bytes.Buffer
	WriteMinSupSweep(&buf, rows)
	if !strings.Contains(buf.String(), "min_sup") {
		t.Fatal("render missing header")
	}
}

func TestRunHarmonyComparisonSmoke(t *testing.T) {
	rows, err := RunHarmonyComparison([]string{"labor"}, 0.3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].PatFS <= 0 || rows[0].Harmony <= 0 || rows[0].CBA <= 0 {
		t.Fatalf("implausible accuracies: %+v", rows[0])
	}
	var buf bytes.Buffer
	WriteHarmony(&buf, rows)
	if !strings.Contains(buf.String(), "HARMONY") {
		t.Fatal("render missing header")
	}
}

func TestAblationsSmoke(t *testing.T) {
	if rows, err := RunAblationClosedVsAll("labor", 0.4, 3); err != nil || len(rows) != 2 {
		t.Fatalf("closed-vs-all: %v rows=%d", err, len(rows))
	}
	if rows, err := RunAblationRedundancy("labor", 0.4, 3); err != nil || len(rows) != 2 {
		t.Fatalf("redundancy: %v rows=%d", err, len(rows))
	}
	if rows, err := RunAblationRelevance("labor", 0.4, 3); err != nil || len(rows) != 2 {
		t.Fatalf("relevance: %v rows=%d", err, len(rows))
	}
	if rows, err := RunAblationCoverage("labor", 0.4, []int{1, 3}, 3); err != nil || len(rows) != 2 {
		t.Fatalf("coverage: %v rows=%d", err, len(rows))
	}
	rows, err := RunAblationMinSupStrategy("labor", []float64{0.4}, 3)
	if err != nil || len(rows) != 2 {
		t.Fatalf("strategy: %v rows=%d", err, len(rows))
	}
	var buf bytes.Buffer
	WriteAblation(&buf, "smoke", rows)
	if !strings.Contains(buf.String(), "Variant") {
		t.Fatal("render missing header")
	}
}

func TestCSVEmitters(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1CSV(&buf, []Table1Row{{Dataset: "x", ItemAll: 80, PatFS: 90}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "dataset,item_all") || !strings.Contains(buf.String(), "x,80.0000") {
		t.Fatalf("table1 csv:\n%s", buf.String())
	}

	buf.Reset()
	if err := Table2CSV(&buf, []Table2Row{{Dataset: "x"}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "pat_fs") {
		t.Fatal("table2 csv missing header")
	}

	buf.Reset()
	err := ScalabilityCSV(&buf, []ScalabilityRow{
		{MinSupport: 100, Patterns: 5, SVMAcc: 90, C45Acc: 85},
		{MinSupport: 1, Infeasible: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "100,5,") || !strings.Contains(out, "1,,,,,1") {
		t.Fatalf("scalability csv:\n%s", out)
	}

	buf.Reset()
	if err := Figure1CSV(&buf, []Figure1Row{{Dataset: "x", Length: 2, Count: 3, MaxIG: 0.5}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "x,2,3,0.5000") {
		t.Fatalf("figure1 csv:\n%s", buf.String())
	}

	buf.Reset()
	if err := BoundFigureCSV(&buf, []FigureBoundRow{{Dataset: "x", Support: 7, Bound: math.Inf(1)}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), ",inf") {
		t.Fatalf("bound csv should render inf:\n%s", buf.String())
	}

	buf.Reset()
	if err := MinSupSweepCSV(&buf, []MinSupSweepRow{{Dataset: "x", MinSupport: 0.1, Patterns: 9, Accuracy: 88}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "x,0.1000,9,88.0000") {
		t.Fatalf("minsup csv:\n%s", buf.String())
	}

	buf.Reset()
	if err := HarmonyCSV(&buf, []HarmonyRow{{Dataset: "x", PatFS: 90, Harmony: 85, CBA: 80}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "x,90.0000,85.0000,80.0000") {
		t.Fatalf("harmony csv:\n%s", buf.String())
	}

	buf.Reset()
	if err := AblationCSV(&buf, []AblationRow{{Dataset: "x", Variant: "v", Features: 4, Accuracy: 77}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "x,v,4,77.0000") {
		t.Fatalf("ablation csv:\n%s", buf.String())
	}
}

func TestMinSupFor(t *testing.T) {
	// Explicit protocol value wins.
	if got := minSupFor("anneal", Protocol{MinSupport: 0.42}); got != 0.42 {
		t.Fatalf("explicit = %v", got)
	}
	// Tuned per-dataset value otherwise.
	if got := minSupFor("anneal", Protocol{}); got != perDatasetMinSup["anneal"] {
		t.Fatalf("anneal = %v", got)
	}
	// Fallback for unknown datasets.
	if got := minSupFor("mystery", Protocol{}); got != 0.15 {
		t.Fatalf("fallback = %v", got)
	}
	// Negative values (automatic strategy) pass through.
	if got := minSupFor("anneal", Protocol{MinSupport: -1}); got != -1 {
		t.Fatalf("auto = %v", got)
	}
}

func TestPerDatasetMinSupCoversTable1(t *testing.T) {
	for _, name := range []string{
		"anneal", "austral", "auto", "breast", "cleve", "diabetes",
		"glass", "heart", "hepatic", "horse", "iono", "iris", "labor",
		"lymph", "pima", "sonar", "vehicle", "wine", "zoo",
		"chess", "waveform", "letter",
	} {
		if _, ok := perDatasetMinSup[name]; !ok {
			t.Errorf("no tuned min_sup for %s", name)
		}
	}
}
