package experiments

import (
	"fmt"
	"io"

	"dfpc/internal/core"
	"dfpc/internal/datagen"
	"dfpc/internal/dataset"
	"dfpc/internal/discretize"
	"dfpc/internal/eval"
	"dfpc/internal/featsel"
	"dfpc/internal/mining"
	"dfpc/internal/svm"
)

// AblationRow is one configuration of an ablation study.
type AblationRow struct {
	Dataset  string
	Variant  string
	Features int     // pattern pool / selected features, variant-specific
	Accuracy float64 // percent
}

// WriteAblation renders an ablation result set.
func WriteAblation(w io.Writer, title string, rows []AblationRow) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-10s %-28s %9s %9s\n", "Data", "Variant", "Features", "Acc(%)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-28s %9d %9.2f\n", r.Dataset, r.Variant, r.Features, r.Accuracy)
	}
}

// RunAblationClosedVsAll compares closed patterns against all frequent
// patterns as the feature pool (same min_sup, same MMRFS selection).
// Closed mining should give an equally accurate model from a much
// smaller pool.
func RunAblationClosedVsAll(name string, minSup float64, folds int) ([]AblationRow, error) {
	d, err := datagen.ByName(name, Seed)
	if err != nil {
		return nil, err
	}
	if folds <= 0 {
		folds = 5
	}
	var rows []AblationRow
	for _, closed := range []bool{true, false} {
		variant := "closed (FPClose)"
		if !closed {
			variant = "all frequent (FPGrowth)"
		}
		p := &poolPipeline{minSup: minSup, closed: closed, coverage: 3}
		res, err := eval.CrossValidate(p, d, folds, Seed)
		if err != nil {
			return rows, fmt.Errorf("closed-vs-all %s/%s: %w", name, variant, err)
		}
		rows = append(rows, AblationRow{Dataset: name, Variant: variant, Features: p.lastPool, Accuracy: 100 * res.Mean})
	}
	return rows, nil
}

// poolPipeline is a Pat_FS pipeline variant exposing the pool kind
// (closed vs. all) — used only by the ablation.
type poolPipeline struct {
	minSup   float64
	closed   bool
	coverage int

	disc     *discretize.Discretizer
	numItems int
	patterns []mining.Pattern
	model    *svm.Model
	lastPool int
}

func (p *poolPipeline) Fit(d *dataset.Dataset, rows []int) error {
	train := d.Subset(rows)
	var err error
	p.disc, err = discretize.Fit(train, discretize.Options{})
	if err != nil {
		return err
	}
	cat, err := p.disc.Apply(train)
	if err != nil {
		return err
	}
	b, err := dataset.Encode(cat)
	if err != nil {
		return err
	}
	p.numItems = b.NumItems()
	mined, err := mining.MinePerClass(b, mining.PerClassOptions{
		MinSupport:  p.minSup,
		Closed:      p.closed,
		MaxPatterns: 2_000_000,
		MaxLen:      5,
		MinLen:      2,
	})
	if err != nil {
		return err
	}
	p.lastPool = len(mined)
	cands := make([]featsel.Candidate, len(mined))
	for i, pt := range mined {
		cands[i] = featsel.Candidate{Items: pt.Items, Cover: b.Cover(pt.Items)}
	}
	sel, err := featsel.MMRFS(cands, b.ClassMasks, b.Labels, featsel.Options{Coverage: p.coverage})
	if err != nil {
		return err
	}
	p.patterns = make([]mining.Pattern, len(sel.Selected))
	for i, idx := range sel.Selected {
		p.patterns[i] = mined[idx]
	}
	mining.SortPatterns(p.patterns)

	x := make([][]int32, b.NumRows())
	for i := range x {
		x[i] = p.fv(b.Rows[i])
	}
	p.model, err = svm.Train(x, b.Labels, b.NumClasses(), svm.Config{C: 1, NumFeatures: p.numItems + len(p.patterns)})
	return err
}

func (p *poolPipeline) fv(tx []int32) []int32 {
	out := make([]int32, 0, len(tx)+len(p.patterns))
	out = append(out, tx...)
	for j := range p.patterns {
		if patternMatches(tx, p.patterns[j].Items) {
			out = append(out, int32(p.numItems+j))
		}
	}
	return out
}

func (p *poolPipeline) Predict(d *dataset.Dataset, rows []int) ([]int, error) {
	cat, err := p.disc.Apply(d.Subset(rows))
	if err != nil {
		return nil, err
	}
	b, err := dataset.Encode(cat)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(rows))
	for i := range rows {
		out[i] = p.model.Predict(p.fv(b.Rows[i]))
	}
	return out, nil
}

// RunAblationRedundancy compares MMRFS against pure relevance top-k
// selection with the same feature budget: the redundancy term should
// not hurt, and typically helps, at equal feature count.
func RunAblationRedundancy(name string, minSup float64, folds int) ([]AblationRow, error) {
	d, err := datagen.ByName(name, Seed)
	if err != nil {
		return nil, err
	}
	if folds <= 0 {
		folds = 5
	}
	// First, find how many features MMRFS selects so top-k gets the
	// same budget.
	mmrfs, err := pipelineFor("Pat_FS", core.SVMLinear, Protocol{MinSupport: minSup, Coverage: 3}.withDefaults())
	if err != nil {
		return nil, fmt.Errorf("redundancy ablation %s: %w", name, err)
	}
	res, err := eval.CrossValidate(mmrfs, d, folds, Seed)
	if err != nil {
		return nil, fmt.Errorf("redundancy ablation %s mmrfs: %w", name, err)
	}
	rows := []AblationRow{{Dataset: name, Variant: "MMRFS (relevance+redundancy)", Features: mmrfs.Stats.FeatureCount, Accuracy: 100 * res.Mean}}

	topk := &topKPipeline{minSup: minSup, k: mmrfs.Stats.FeatureCount}
	res2, err := eval.CrossValidate(topk, d, folds, Seed)
	if err != nil {
		return rows, fmt.Errorf("redundancy ablation %s topk: %w", name, err)
	}
	rows = append(rows, AblationRow{Dataset: name, Variant: "top-k relevance only", Features: topk.k, Accuracy: 100 * res2.Mean})
	return rows, nil
}

// topKPipeline is Pat_FS with plain top-k information-gain selection
// instead of MMRFS.
type topKPipeline struct {
	minSup float64
	k      int

	disc     *discretize.Discretizer
	numItems int
	patterns []mining.Pattern
	model    *svm.Model
}

func (p *topKPipeline) Fit(d *dataset.Dataset, rows []int) error {
	train := d.Subset(rows)
	var err error
	p.disc, err = discretize.Fit(train, discretize.Options{})
	if err != nil {
		return err
	}
	cat, err := p.disc.Apply(train)
	if err != nil {
		return err
	}
	b, err := dataset.Encode(cat)
	if err != nil {
		return err
	}
	p.numItems = b.NumItems()
	mined, err := mining.MinePerClass(b, mining.PerClassOptions{
		MinSupport: p.minSup, Closed: true, MaxPatterns: 2_000_000, MaxLen: 5, MinLen: 2,
	})
	if err != nil {
		return err
	}
	cands := make([]featsel.Candidate, len(mined))
	for i, pt := range mined {
		cands[i] = featsel.Candidate{Items: pt.Items, Cover: b.Cover(pt.Items)}
	}
	sel := featsel.TopK(cands, b.ClassMasks, featsel.InfoGain, p.k)
	p.patterns = make([]mining.Pattern, len(sel.Selected))
	for i, idx := range sel.Selected {
		p.patterns[i] = mined[idx]
	}
	mining.SortPatterns(p.patterns)

	x := make([][]int32, b.NumRows())
	for i := range x {
		x[i] = p.fv(b.Rows[i])
	}
	p.model, err = svm.Train(x, b.Labels, b.NumClasses(), svm.Config{C: 1, NumFeatures: p.numItems + len(p.patterns)})
	return err
}

func (p *topKPipeline) fv(tx []int32) []int32 {
	out := make([]int32, 0, len(tx)+len(p.patterns))
	out = append(out, tx...)
	for j := range p.patterns {
		if patternMatches(tx, p.patterns[j].Items) {
			out = append(out, int32(p.numItems+j))
		}
	}
	return out
}

func (p *topKPipeline) Predict(d *dataset.Dataset, rows []int) ([]int, error) {
	cat, err := p.disc.Apply(d.Subset(rows))
	if err != nil {
		return nil, err
	}
	b, err := dataset.Encode(cat)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(rows))
	for i := range rows {
		out[i] = p.model.Predict(p.fv(b.Rows[i]))
	}
	return out, nil
}

// RunAblationRelevance compares information gain vs. Fisher score as
// MMRFS's relevance measure.
func RunAblationRelevance(name string, minSup float64, folds int) ([]AblationRow, error) {
	d, err := datagen.ByName(name, Seed)
	if err != nil {
		return nil, err
	}
	if folds <= 0 {
		folds = 5
	}
	var rows []AblationRow
	for _, rel := range []featsel.Relevance{featsel.InfoGain, featsel.Fisher} {
		cfg := core.Config{UsePatterns: true, SelectPatterns: true, MinSupport: minSup, Relevance: rel}
		p, err := mk(func() (*core.Pipeline, error) { return core.New(cfg) })
		if err != nil {
			return rows, fmt.Errorf("relevance ablation %s/%v: %w", name, rel, err)
		}
		res, err := eval.CrossValidate(p, d, folds, Seed)
		if err != nil {
			return rows, fmt.Errorf("relevance ablation %s/%v: %w", name, rel, err)
		}
		rows = append(rows, AblationRow{Dataset: name, Variant: rel.String(), Features: p.Stats.FeatureCount, Accuracy: 100 * res.Mean})
	}
	return rows, nil
}

// RunAblationCoverage sweeps MMRFS's δ.
func RunAblationCoverage(name string, minSup float64, deltas []int, folds int) ([]AblationRow, error) {
	d, err := datagen.ByName(name, Seed)
	if err != nil {
		return nil, err
	}
	if folds <= 0 {
		folds = 5
	}
	var rows []AblationRow
	for _, delta := range deltas {
		cfg := core.Config{UsePatterns: true, SelectPatterns: true, MinSupport: minSup, Coverage: delta}
		p, err := mk(func() (*core.Pipeline, error) { return core.New(cfg) })
		if err != nil {
			return rows, fmt.Errorf("coverage ablation %s/δ=%d: %w", name, delta, err)
		}
		res, err := eval.CrossValidate(p, d, folds, Seed)
		if err != nil {
			return rows, fmt.Errorf("coverage ablation %s/δ=%d: %w", name, delta, err)
		}
		rows = append(rows, AblationRow{
			Dataset: name, Variant: fmt.Sprintf("δ = %d", delta),
			Features: p.Stats.FeatureCount, Accuracy: 100 * res.Mean,
		})
	}
	return rows, nil
}

// RunAblationMinSupStrategy compares the automatic θ*(IG0) min_sup
// strategy against hand-set values.
func RunAblationMinSupStrategy(name string, handSet []float64, folds int) ([]AblationRow, error) {
	d, err := datagen.ByName(name, Seed)
	if err != nil {
		return nil, err
	}
	if folds <= 0 {
		folds = 5
	}
	auto, err := mk(func() (*core.Pipeline, error) {
		return core.New(core.Config{UsePatterns: true, SelectPatterns: true, MinSupport: -1})
	})
	if err != nil {
		return nil, fmt.Errorf("strategy ablation %s auto: %w", name, err)
	}
	res, err := eval.CrossValidate(auto, d, folds, Seed)
	if err != nil {
		return nil, fmt.Errorf("strategy ablation %s auto: %w", name, err)
	}
	rows := []AblationRow{{
		Dataset:  name,
		Variant:  fmt.Sprintf("auto θ*(IG0) → %.3f", auto.Stats.MinSupport),
		Features: auto.Stats.FeatureCount, Accuracy: 100 * res.Mean,
	}}
	for _, ms := range handSet {
		p, err := pipelineFor("Pat_FS", core.SVMLinear, Protocol{MinSupport: ms}.withDefaults())
		if err != nil {
			return rows, fmt.Errorf("strategy ablation %s/%v: %w", name, ms, err)
		}
		r, err := eval.CrossValidate(p, d, folds, Seed)
		if err != nil {
			return rows, fmt.Errorf("strategy ablation %s/%v: %w", name, ms, err)
		}
		rows = append(rows, AblationRow{
			Dataset: name, Variant: fmt.Sprintf("hand-set %.3f", ms),
			Features: p.Stats.FeatureCount, Accuracy: 100 * r.Mean,
		})
	}
	return rows, nil
}
