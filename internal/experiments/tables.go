// Package experiments regenerates every table and figure of the
// paper's evaluation (Section 4) on the synthetic dataset stand-ins:
// Tables 1–2 (accuracy of the five model families under SVM and C4.5),
// Tables 3–5 (scalability vs. min_sup on the dense datasets), Figures
// 1–3 (information gain / Fisher score vs. pattern length and support,
// with theoretical bounds), the Section 5 comparison against
// HARMONY/CBA, and the DESIGN.md ablations. Each experiment returns
// structured rows and can render itself to an io.Writer.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"time"

	"dfpc/internal/core"
	"dfpc/internal/datagen"
	"dfpc/internal/dataset"
	"dfpc/internal/discretize"
	"dfpc/internal/eval"
	"dfpc/internal/featsel"
	"dfpc/internal/mining"
	"dfpc/internal/obs"
	"dfpc/internal/parallel"
	"dfpc/internal/rules"
	"dfpc/internal/svm"
)

// Seed fixes every dataset draw and fold split so runs are
// reproducible.
const Seed int64 = 20070415 // ICDE 2007

// Table1Row is one dataset's accuracies in Table 1 (SVM) — percent.
type Table1Row struct {
	Dataset string
	ItemAll float64
	ItemFS  float64
	ItemRBF float64
	PatAll  float64
	PatFS   float64
}

// Table2Row is one dataset's accuracies in Table 2 (C4.5) — percent.
type Table2Row struct {
	Dataset string
	ItemAll float64
	ItemFS  float64
	PatAll  float64
	PatFS   float64
}

// Protocol bundles the shared evaluation parameters. The paper uses
// 10-fold cross validation; smaller fold counts give a faster,
// lower-fidelity run for benchmarks.
type Protocol struct {
	Folds int
	// MinSupport <= 0 uses the automatic θ*(IG0) strategy per fold.
	MinSupport float64
	// Coverage is MMRFS's δ.
	Coverage int
	// Ctx, when non-nil, makes every CV run cancellable; a canceled or
	// expired context aborts the sweep with the partial rows collected
	// so far.
	//vet:ignore ctxfirst per-call Protocol carrier: Protocol lives only for one experiment run
	Ctx context.Context
	// StageTimeout bounds each pipeline stage within every fit
	// (0 = unbounded).
	StageTimeout time.Duration
	// OnBudget selects the mining pattern-budget policy
	// (core.DegradeOnBudget escalates min_sup instead of failing).
	OnBudget core.BudgetPolicy
	// ContinueOnError isolates failing CV folds: a table cell is then
	// the mean over the completed folds instead of aborting the sweep.
	ContinueOnError bool
	// Workers bounds the parallelism of every CV run and pipeline fit
	// in the sweep (0 = GOMAXPROCS, 1 = sequential). Results are
	// deterministic at any worker count.
	Workers parallel.Workers
	// Log, when non-nil, receives stage-scoped DEBUG records and
	// degradation WARN records from every pipeline fit and CV fold of
	// the sweep. Nil disables logging.
	Log *slog.Logger
}

func (p Protocol) withDefaults() Protocol {
	if p.Folds <= 0 {
		p.Folds = 10
	}
	if p.Coverage <= 0 {
		p.Coverage = 3
	}
	return p
}

// perDatasetMinSup holds tuned relative min_sup values, playing the
// role of the per-dataset thresholds the paper's experiments used:
// datasets with highly correlated attributes need higher thresholds to
// keep the pattern pool tractable, sparse ones can afford lower
// thresholds.
var perDatasetMinSup = map[string]float64{
	"anneal": 0.35, "austral": 0.2, "auto": 0.25, "breast": 0.3,
	"cleve": 0.2, "diabetes": 0.1, "glass": 0.1, "heart": 0.2,
	"hepatic": 0.25, "horse": 0.25, "iono": 0.1, "iris": 0.1,
	"labor": 0.25, "lymph": 0.25, "pima": 0.1, "sonar": 0.1,
	"vehicle": 0.1, "wine": 0.1, "zoo": 0.35,
	"chess": 0.7, "waveform": 0.04, "letter": 0.2,
}

// minSupFor resolves the protocol's min_sup for one dataset: an
// explicit protocol value wins; otherwise the tuned per-dataset value.
func minSupFor(name string, proto Protocol) float64 {
	if proto.MinSupport != 0 {
		return proto.MinSupport
	}
	if v, ok := perDatasetMinSup[name]; ok {
		return v
	}
	return 0.15
}

// cvProto cross-validates under the protocol's context and fold-
// isolation settings and returns the mean accuracy in percent.
func cvProto(p *core.Pipeline, d *dataset.Dataset, proto Protocol) (float64, error) {
	res, err := eval.CrossValidateContext(proto.Ctx, p, d, proto.Folds, Seed, eval.CVOptions{
		ContinueOnError: proto.ContinueOnError,
		Log:             proto.Log,
		Workers:         proto.Workers,
	})
	if err != nil {
		return 0, err
	}
	return 100 * res.Mean, nil
}

func cv(p *core.Pipeline, d *dataset.Dataset, folds int) (float64, error) {
	return cvProto(p, d, Protocol{Folds: folds})
}

// mk wraps a pipeline constructor, annotating its error. Callers must
// propagate the error; a bad configuration fails the experiment row
// instead of panicking the whole sweep.
func mk(f func() (*core.Pipeline, error)) (*core.Pipeline, error) {
	p, err := f()
	if err != nil {
		return nil, fmt.Errorf("experiments: build pipeline: %w", err)
	}
	return p, nil
}

// pipelineFor builds one model-family pipeline with the protocol's
// parameters.
func pipelineFor(family string, learner core.Learner, proto Protocol) (*core.Pipeline, error) {
	cfg := core.Config{
		Learner:      learner,
		Coverage:     proto.Coverage,
		MinSupport:   proto.MinSupport,
		StageTimeout: proto.StageTimeout,
		OnBudget:     proto.OnBudget,
		Log:          obs.Log(proto.Log),
		Workers:      proto.Workers,
	}
	switch family {
	case "Item_FS":
		cfg.SelectItems = true
	case "Item_RBF":
		cfg.Learner = core.SVMRBF
	case "Pat_All":
		cfg.UsePatterns = true
	case "Pat_FS":
		cfg.UsePatterns = true
		cfg.SelectPatterns = true
	}
	return mk(func() (*core.Pipeline, error) { return core.New(cfg) })
}

// RunTable1 reproduces Table 1: SVM accuracy of the five model
// families on the given datasets.
func RunTable1(names []string, proto Protocol) ([]Table1Row, error) {
	proto = proto.withDefaults()
	var rows []Table1Row
	for _, name := range names {
		d, err := datagen.ByName(name, Seed)
		if err != nil {
			return rows, err
		}
		row := Table1Row{Dataset: name}
		dsProto := proto
		dsProto.MinSupport = minSupFor(name, proto)
		for _, fam := range []struct {
			name string
			dst  *float64
		}{
			{"Item_All", &row.ItemAll},
			{"Item_FS", &row.ItemFS},
			{"Item_RBF", &row.ItemRBF},
			{"Pat_All", &row.PatAll},
			{"Pat_FS", &row.PatFS},
		} {
			p, err := pipelineFor(fam.name, core.SVMLinear, dsProto)
			if err != nil {
				return rows, fmt.Errorf("table1 %s/%s: %w", name, fam.name, err)
			}
			acc, err := cvProto(p, d, dsProto)
			if err != nil {
				return rows, fmt.Errorf("table1 %s/%s: %w", name, fam.name, err)
			}
			*fam.dst = acc
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RunTable2 reproduces Table 2: C4.5 accuracy of four model families.
func RunTable2(names []string, proto Protocol) ([]Table2Row, error) {
	proto = proto.withDefaults()
	var rows []Table2Row
	for _, name := range names {
		d, err := datagen.ByName(name, Seed)
		if err != nil {
			return rows, err
		}
		row := Table2Row{Dataset: name}
		dsProto := proto
		dsProto.MinSupport = minSupFor(name, proto)
		for _, fam := range []struct {
			name string
			dst  *float64
		}{
			{"Item_All", &row.ItemAll},
			{"Item_FS", &row.ItemFS},
			{"Pat_All", &row.PatAll},
			{"Pat_FS", &row.PatFS},
		} {
			p, err := pipelineFor(fam.name, core.C45Tree, dsProto)
			if err != nil {
				return rows, fmt.Errorf("table2 %s/%s: %w", name, fam.name, err)
			}
			acc, err := cvProto(p, d, dsProto)
			if err != nil {
				return rows, fmt.Errorf("table2 %s/%s: %w", name, fam.name, err)
			}
			*fam.dst = acc
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteTable1 renders Table 1 rows like the paper's layout.
func WriteTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "Table 1. Accuracy by SVM on Frequent Combined Features vs Single Features\n")
	fmt.Fprintf(w, "%-10s %9s %9s %9s %9s %9s\n", "Data", "Item_All", "Item_FS", "Item_RBF", "Pat_All", "Pat_FS")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %9.2f %9.2f %9.2f %9.2f %9.2f\n",
			r.Dataset, r.ItemAll, r.ItemFS, r.ItemRBF, r.PatAll, r.PatFS)
	}
}

// WriteTable2 renders Table 2 rows.
func WriteTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintf(w, "Table 2. Accuracy by C4.5 on Frequent Combined Features vs Single Features\n")
	fmt.Fprintf(w, "%-10s %9s %9s %9s %9s\n", "Data", "Item_All", "Item_FS", "Pat_All", "Pat_FS")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %9.2f %9.2f %9.2f %9.2f\n",
			r.Dataset, r.ItemAll, r.ItemFS, r.PatAll, r.PatFS)
	}
}

// ScalabilityRow is one min_sup setting in Tables 3–5.
type ScalabilityRow struct {
	MinSupport int // absolute support count, as the paper reports
	Patterns   int // closed patterns mined (-1 = aborted / N/A)
	Time       time.Duration
	SVMAcc     float64 // percent; NaN-free: -1 marks N/A
	C45Acc     float64
	Infeasible bool
}

// ScalabilityConfig parameterizes one scalability table.
type ScalabilityConfig struct {
	Dataset string
	// AbsSupports are the absolute min_sup values to sweep (the paper's
	// x axis). A value of 1 exercises the exhaustive-enumeration row.
	AbsSupports []int
	// MaxPatterns is the enumeration budget past which a row is marked
	// infeasible (the paper's "N/A — cannot complete in days").
	MaxPatterns int
	// SampleRows optionally subsamples the dataset for faster runs
	// (0 = full size).
	SampleRows int
	// TestFrac is the held-out fraction for the accuracy columns.
	TestFrac float64
	Coverage int
	// MaxLen caps pattern length (0 = unlimited, matching the paper).
	MaxLen int
	// MaxMiningTime bounds each row's mining phase; exceeding it marks
	// the row infeasible, like the paper's "cannot complete in days"
	// note for min_sup = 1 (default 2 minutes).
	MaxMiningTime time.Duration
	// Ctx, when non-nil, makes the sweep cancellable; unlike the
	// per-row MaxMiningTime, cancellation aborts the whole run.
	//vet:ignore ctxfirst per-call ScalabilityConfig carrier: lives only for one sweep
	Ctx context.Context
}

func (c ScalabilityConfig) withDefaults() ScalabilityConfig {
	if c.MaxPatterns <= 0 {
		c.MaxPatterns = 2_000_000
	}
	if c.TestFrac <= 0 {
		c.TestFrac = 0.1
	}
	if c.Coverage <= 0 {
		c.Coverage = 3
	}
	if c.MaxMiningTime <= 0 {
		c.MaxMiningTime = 2 * time.Minute
	}
	return c
}

// RunScalability reproduces one of Tables 3–5: per min_sup, the closed
// pattern count, mining+selection time, and SVM/C4.5 accuracy on the
// pattern-based feature space.
func RunScalability(cfg ScalabilityConfig) ([]ScalabilityRow, error) {
	cfg = cfg.withDefaults()
	d, err := datagen.ByName(cfg.Dataset, Seed)
	if err != nil {
		return nil, err
	}
	if cfg.SampleRows > 0 && cfg.SampleRows < d.NumRows() {
		tr, _, err := dataset.StratifiedSplit(d.Labels, d.NumClasses(),
			1-float64(cfg.SampleRows)/float64(d.NumRows()), Seed)
		if err != nil {
			return nil, err
		}
		d = d.Subset(tr)
	}
	trainRows, testRows, err := dataset.StratifiedSplit(d.Labels, d.NumClasses(), cfg.TestFrac, Seed)
	if err != nil {
		return nil, err
	}
	train := d.Subset(trainRows)
	b, err := dataset.Encode(train) // dense sets are fully categorical
	if err != nil {
		return nil, err
	}
	test := d.Subset(testRows)
	tb, err := dataset.Encode(test)
	if err != nil {
		return nil, err
	}

	var rows []ScalabilityRow
	for _, abs := range cfg.AbsSupports {
		rel := float64(abs) / float64(d.NumRows())
		row := ScalabilityRow{MinSupport: abs, SVMAcc: -1, C45Acc: -1}

		t0 := time.Now()
		mined, err := mining.MinePerClass(b, mining.PerClassOptions{
			MinSupport:  rel,
			Closed:      true,
			MaxPatterns: cfg.MaxPatterns,
			MaxLen:      cfg.MaxLen,
			MinLen:      2,
			Ctx:         cfg.Ctx,
			Deadline:    t0.Add(cfg.MaxMiningTime),
		})
		if err != nil && cfg.Ctx != nil && cfg.Ctx.Err() != nil {
			// Run-level cancellation, not a per-row infeasibility.
			return rows, fmt.Errorf("scalability %s min_sup=%d: %w", cfg.Dataset, abs, err)
		}
		if errors.Is(err, mining.ErrPatternBudget) || errors.Is(err, mining.ErrDeadline) {
			row.Infeasible = true
			row.Patterns = -1
			row.Time = time.Since(t0)
			rows = append(rows, row)
			continue
		}
		if err != nil {
			return rows, fmt.Errorf("scalability %s min_sup=%d: %w", cfg.Dataset, abs, err)
		}
		row.Patterns = len(mined)

		cands := make([]featsel.Candidate, len(mined))
		for i, pt := range mined {
			cands[i] = featsel.Candidate{Items: pt.Items, Cover: b.Cover(pt.Items)}
		}
		sel, err := featsel.MMRFS(cands, b.ClassMasks, b.Labels, featsel.Options{Coverage: cfg.Coverage})
		if err != nil {
			return rows, err
		}
		row.Time = time.Since(t0) // mining + feature selection, as in the paper

		selected := make([]mining.Pattern, len(sel.Selected))
		for i, idx := range sel.Selected {
			selected[i] = mined[idx]
		}
		mining.SortPatterns(selected)

		fx := func(bb *dataset.Binary) [][]int32 {
			out := make([][]int32, bb.NumRows())
			for i := range out {
				fv := append([]int32(nil), bb.Rows[i]...)
				for j := range selected {
					if patternMatches(bb.Rows[i], selected[j].Items) {
						fv = append(fv, int32(b.NumItems()+j))
					}
				}
				out[i] = fv
			}
			return out
		}
		xTrain := fx(b)
		xTest := fx(tb)

		svmModel, err := svm.Train(xTrain, b.Labels, b.NumClasses(), svm.Config{
			C: 1, NumFeatures: b.NumItems() + len(selected),
		})
		if err != nil {
			return rows, err
		}
		row.SVMAcc = accuracyPct(svmModel.PredictAll(xTest), tb.Labels)

		treeModel, err := c45Train(xTrain, b.Labels, b.NumClasses())
		if err != nil {
			return rows, err
		}
		row.C45Acc = accuracyPct(treeModel.PredictAll(xTest), tb.Labels)

		rows = append(rows, row)
	}
	return rows, nil
}

func patternMatches(tx, items []int32) bool {
	i := 0
	for _, it := range items {
		for i < len(tx) && tx[i] < it {
			i++
		}
		if i >= len(tx) || tx[i] != it {
			return false
		}
		i++
	}
	return true
}

func accuracyPct(pred, truth []int) float64 {
	if len(pred) == 0 {
		return 0
	}
	c := 0
	for i := range pred {
		if pred[i] == truth[i] {
			c++
		}
	}
	return 100 * float64(c) / float64(len(pred))
}

// WriteScalability renders a Tables 3–5 style report.
func WriteScalability(w io.Writer, title string, rows []ScalabilityRow) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%9s %10s %10s %8s %8s\n", "min_sup", "#Patterns", "Time(s)", "SVM(%)", "C4.5(%)")
	for _, r := range rows {
		if r.Infeasible {
			fmt.Fprintf(w, "%9d %10s %10s %8s %8s\n", r.MinSupport, "N/A", "N/A", "N/A", "N/A")
			continue
		}
		fmt.Fprintf(w, "%9d %10d %10.3f %8.2f %8.2f\n",
			r.MinSupport, r.Patterns, r.Time.Seconds(), r.SVMAcc, r.C45Acc)
	}
}

// HarmonyRow is one dataset of the Section 5 comparison.
type HarmonyRow struct {
	Dataset string
	PatFS   float64
	Harmony float64
	CBA     float64
}

// RunHarmonyComparison reproduces the Section 5 claim: Pat_FS beats a
// HARMONY-style rule-based classifier (and a CBA-style one) on the
// dense datasets.
func RunHarmonyComparison(names []string, minSup float64, sampleRows int) ([]HarmonyRow, error) {
	var rows []HarmonyRow
	for _, name := range names {
		d, err := datagen.ByName(name, Seed)
		if err != nil {
			return rows, err
		}
		if sampleRows > 0 && sampleRows < d.NumRows() {
			tr, _, err := dataset.StratifiedSplit(d.Labels, d.NumClasses(),
				1-float64(sampleRows)/float64(d.NumRows()), Seed)
			if err != nil {
				return rows, err
			}
			d = d.Subset(tr)
		}
		trainRows, testRows, err := dataset.StratifiedSplit(d.Labels, d.NumClasses(), 0.2, Seed)
		if err != nil {
			return rows, err
		}
		row := HarmonyRow{Dataset: name}

		patFS, err := mk(func() (*core.Pipeline, error) {
			return core.New(core.Config{UsePatterns: true, SelectPatterns: true, MinSupport: minSup})
		})
		if err != nil {
			return rows, fmt.Errorf("harmony %s Pat_FS: %w", name, err)
		}
		acc, err := eval.HoldOut(patFS, d, trainRows, testRows)
		if err != nil {
			return rows, fmt.Errorf("harmony %s Pat_FS: %w", name, err)
		}
		row.PatFS = 100 * acc

		// Rule-based baselines need the same discretized binary view;
		// cuts are fitted on the training rows only.
		train := d.Subset(trainRows)
		disc, err := discretize.Fit(train, discretize.Options{})
		if err != nil {
			return rows, err
		}
		catTrain, err := disc.Apply(train)
		if err != nil {
			return rows, err
		}
		bTrain, err := dataset.Encode(catTrain)
		if err != nil {
			return rows, err
		}
		catTest, err := disc.Apply(d.Subset(testRows))
		if err != nil {
			return rows, err
		}
		bTest, err := dataset.Encode(catTest)
		if err != nil {
			return rows, err
		}

		hm, err := rules.TrainHarmony(bTrain, rules.HarmonyOptions{MinSupport: minSup, MaxLen: 5})
		if err != nil {
			return rows, fmt.Errorf("harmony %s: %w", name, err)
		}
		cba, err := rules.TrainCBA(bTrain, rules.CBAOptions{MinSupport: minSup, MaxLen: 5})
		if err != nil {
			return rows, fmt.Errorf("cba %s: %w", name, err)
		}
		hCorrect, cCorrect := 0, 0
		for i := 0; i < bTest.NumRows(); i++ {
			if hm.Predict(bTest.Rows[i]) == bTest.Labels[i] {
				hCorrect++
			}
			if cba.Predict(bTest.Rows[i]) == bTest.Labels[i] {
				cCorrect++
			}
		}
		row.Harmony = 100 * float64(hCorrect) / float64(bTest.NumRows())
		row.CBA = 100 * float64(cCorrect) / float64(bTest.NumRows())
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteHarmony renders the comparison.
func WriteHarmony(w io.Writer, rows []HarmonyRow) {
	fmt.Fprintf(w, "Section 5 comparison: Pat_FS vs rule-based classifiers\n")
	fmt.Fprintf(w, "%-10s %9s %9s %9s %9s\n", "Data", "Pat_FS", "HARMONY", "CBA", "Δ(H)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %9.2f %9.2f %9.2f %+9.2f\n", r.Dataset, r.PatFS, r.Harmony, r.CBA, r.PatFS-r.Harmony)
	}
}
