package analysis

import (
	"fmt"
	"strings"
)

// All is the analyzer registry, in the order diagnostics list them.
// Adding a check means appending here and dropping fixtures under
// testdata/src/<name>/ — the golden driver test picks both up by name.
var All = []*Analyzer{
	Guardloop,
	Sentinelerr,
	Floateq,
	Ctxfirst,
	Obsnil,
	Mathrange,
	Parasafe,
	Spanend,
	Atomicwrite,
	Maporder,
	Nondeterm,
	Hotalloc,
	Atomicmix,
}

// Lookup returns the registered analyzer with the given name.
func Lookup(name string) (*Analyzer, bool) {
	for _, a := range All {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// Select resolves the -only/-skip flag values (comma-separated analyzer
// names) against the registry. An empty only-list means "all analyzers
// enabled by default".
func Select(only, skip string) ([]*Analyzer, error) {
	chosen := map[string]bool{}
	if only != "" {
		for _, name := range splitNames(only) {
			if _, ok := Lookup(name); !ok {
				return nil, fmt.Errorf("unknown analyzer %q (see -list)", name)
			}
			chosen[name] = true
		}
	} else {
		for _, a := range All {
			if a.Default {
				chosen[a.Name] = true
			}
		}
	}
	for _, name := range splitNames(skip) {
		if _, ok := Lookup(name); !ok {
			return nil, fmt.Errorf("unknown analyzer %q (see -list)", name)
		}
		delete(chosen, name)
	}
	var out []*Analyzer
	for _, a := range All {
		if chosen[a.Name] {
			out = append(out, a)
		}
	}
	return out, nil
}

func splitNames(s string) []string {
	var out []string
	for _, n := range strings.Split(s, ",") {
		if n = strings.TrimSpace(n); n != "" {
			out = append(out, n)
		}
	}
	return out
}
