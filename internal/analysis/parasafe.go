package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Parasafe machine-checks the caller side of the parallel layer's
// determinism contract (internal/parallel): the worker closure handed
// to parallel.ForEach/Map may write shared state only through slots
// partitioned by its own index parameter. Any other write to a
// captured variable — appending to a shared slice, bumping a shared
// counter, storing into a shared map — is a data race at workers > 1
// and, even when "benign", makes results depend on scheduling order,
// which breaks the repo-wide worker-count-invariance guarantee.
var Parasafe = &Analyzer{
	Name: "parasafe",
	Doc: "keep parallel worker closures' writes index-partitioned\n\n" +
		"A closure passed to parallel.ForEach or parallel.Map runs concurrently\n" +
		"at workers > 1, so every write to a variable captured from the\n" +
		"enclosing scope must land in a slot selected by the closure's own\n" +
		"index parameter (out[i] = ...). Flagged shapes: appending to a\n" +
		"captured slice, assigning or ++/-- on a captured scalar, writing a\n" +
		"captured map (concurrent map writes panic regardless of key), and\n" +
		"indexing a captured slice by anything not derived from the worker\n" +
		"index. Collect per-index results and merge after the pool returns;\n" +
		"sanctioned exceptions (e.g. mutex-guarded aggregation) carry a\n" +
		"//vet:ignore with the reason.",
	Default: true,
	Run:     runParasafe,
}

func runParasafe(p *Pass) {
	// First pass: find every worker literal, so the per-worker walk can
	// skip nested workers (each gets its own check — a shared-state
	// write inside a nested worker should be reported once, against the
	// innermost pool whose index could have partitioned it).
	type worker struct {
		lit  *ast.FuncLit
		pool string // "ForEach" or "Map"
	}
	var found []worker
	workerLits := map[*ast.FuncLit]bool{}
	p.inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pool := parallelPoolCallee(p.Info, call)
		if pool == "" || len(call.Args) == 0 {
			return true
		}
		lit, ok := ast.Unparen(call.Args[len(call.Args)-1]).(*ast.FuncLit)
		if !ok {
			return true
		}
		found = append(found, worker{lit: lit, pool: pool})
		workerLits[lit] = true
		return true
	})
	for _, w := range found {
		checkWorker(p, w.pool, w.lit, workerLits)
	}
}

// parallelPoolCallee reports which pool primitive the call invokes —
// "ForEach" or "Map" from the repo's internal/parallel package — or ""
// for anything else. Matching on the path suffix keeps the analyzer
// usable from golden-test fixtures, which import the real package.
func parallelPoolCallee(info *types.Info, call *ast.CallExpr) string {
	fun := ast.Unparen(call.Fun)
	// Explicit generic instantiation (parallel.Map[int]) indexes the
	// callee expression; unwrap to the underlying selector/ident.
	switch e := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(e.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(e.X)
	}
	fn, _ := objectOf(info, fun).(*types.Func)
	if fn == nil || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "internal/parallel") {
		return ""
	}
	if name := fn.Name(); name == "ForEach" || name == "Map" {
		return name
	}
	return ""
}

// checkWorker walks one worker closure's body and reports every write
// whose target is captured from outside the closure and not reached
// through an index derived from the worker's index parameter.
func checkWorker(p *Pass, pool string, lit *ast.FuncLit, workerLits map[*ast.FuncLit]bool) {
	var idxObj types.Object
	if params := lit.Type.Params; params != nil && len(params.List) > 0 && len(params.List[0].Names) > 0 {
		idxObj = p.Info.ObjectOf(params.List[0].Names[0])
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			// Nested workers are checked against their own index.
			return !workerLits[s]
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				var rhs ast.Expr
				if len(s.Rhs) == len(s.Lhs) {
					rhs = s.Rhs[i]
				}
				checkWrite(p, pool, lit, idxObj, lhs, rhs)
			}
		case *ast.IncDecStmt:
			checkWrite(p, pool, lit, idxObj, s.X, nil)
		case *ast.RangeStmt:
			if s.Tok == token.ASSIGN {
				checkWrite(p, pool, lit, idxObj, s.Key, nil)
				checkWrite(p, pool, lit, idxObj, s.Value, nil)
			}
		}
		return true
	})
}

// checkWrite reports lhs when it names captured state that the write
// does not reach through a worker-index-partitioned slot.
func checkWrite(p *Pass, pool string, lit *ast.FuncLit, idxObj types.Object, lhs, rhs ast.Expr) {
	if lhs == nil {
		return
	}
	root, partitioned, mapWrite := analyzeTarget(p, idxObj, lhs)
	if root == nil || root.Name == "_" {
		return
	}
	obj := p.Info.ObjectOf(root)
	if _, isVar := obj.(*types.Var); !isVar {
		return
	}
	// Captured = declared outside the closure (params and body-local
	// declarations fall inside the literal's source range).
	if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
		return
	}
	switch {
	case mapWrite:
		p.Reportf(lhs.Pos(),
			"parallel %s worker writes captured map %s; concurrent map writes panic even on distinct keys — collect into an index-partitioned slice and merge after the pool returns",
			pool, root.Name)
	case partitioned:
		// The slot is selected by the worker's own index: the sanctioned
		// shape.
	case isAppendCall(p.Info, rhs):
		p.Reportf(lhs.Pos(),
			"parallel %s worker appends to captured slice %s; concurrent appends race and reorder results — use parallel.Map or write into a pre-sized slice at the worker index",
			pool, root.Name)
	case indexedWrite(lhs):
		p.Reportf(lhs.Pos(),
			"parallel %s worker writes captured %s at an index not derived from the worker index; partition writes by the worker's own index so index-ordered merges reproduce the sequential result",
			pool, root.Name)
	default:
		p.Reportf(lhs.Pos(),
			"parallel %s worker writes captured variable %s; concurrent workers race on it — write into a per-index slot and merge after the pool returns",
			pool, root.Name)
	}
}

// analyzeTarget resolves a write target's access path (selectors,
// derefs, indexing) to its root identifier and reports whether the
// written object is partitioned — reached through an index expression
// that uses the worker index — and whether the final store goes through
// a shared map. A map reached through a partitioned slot (slots[i].m[k])
// is a distinct map per index and therefore fine; a shared map is
// unsafe for any key.
func analyzeTarget(p *Pass, idxObj types.Object, e ast.Expr) (root *ast.Ident, partitioned, mapWrite bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x, false, false
	case *ast.SelectorExpr:
		// A qualified package-level variable (pkg.Var) has no base
		// identifier chain in this file; treat the selected var itself
		// as the root.
		if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
			if _, isPkg := p.Info.ObjectOf(id).(*types.PkgName); isPkg {
				return x.Sel, false, false
			}
		}
		return analyzeTarget(p, idxObj, x.X)
	case *ast.StarExpr:
		return analyzeTarget(p, idxObj, x.X)
	case *ast.IndexExpr:
		root, partitioned, mapWrite = analyzeTarget(p, idxObj, x.X)
		if partitioned {
			return root, true, false
		}
		if t := p.TypeOf(x.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				return root, false, true
			}
		}
		return root, mentionsObj(p.Info, x.Index, idxObj), mapWrite
	}
	return nil, false, false
}

// mentionsObj reports whether the expression references obj anywhere.
func mentionsObj(info *types.Info, e ast.Expr, obj types.Object) bool {
	if obj == nil || e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

// isAppendCall reports whether e is a call to the append builtin.
func isAppendCall(info *types.Info, e ast.Expr) bool {
	if e == nil {
		return false
	}
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == "append"
}

// indexedWrite reports whether the write target goes through an index
// expression at all (distinguishes out[j] = v from total = v for
// message wording).
func indexedWrite(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.IndexExpr:
		return true
	case *ast.StarExpr:
		return indexedWrite(x.X)
	case *ast.SelectorExpr:
		return indexedWrite(x.X)
	}
	return false
}
