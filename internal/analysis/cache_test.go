package analysis

import (
	"reflect"
	"testing"
)

// TestCacheRoundTrip pins the cache contract: a warm run must hit for
// every package, return byte-identical diagnostics, and a changed tool
// fingerprint must invalidate everything.
func TestCacheRoundTrip(t *testing.T) {
	pkgs, err := Load(".", "dfpc/internal/bitset", "dfpc/internal/guard")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	for _, p := range pkgs {
		if len(p.Errs) > 0 {
			t.Fatalf("package %s failed to load: %v", p.ImportPath, p.Errs)
		}
	}

	dir := t.TempDir()
	cold := NewCache(dir, "fp-v1")
	got1 := RunCached(pkgs, All, cold)
	if cold.Hits() != 0 {
		t.Errorf("cold run reported %d hits, want 0", cold.Hits())
	}
	if cold.Misses() != len(pkgs) {
		t.Errorf("cold run reported %d misses, want %d", cold.Misses(), len(pkgs))
	}

	warm := NewCache(dir, "fp-v1")
	got2 := RunCached(pkgs, All, warm)
	if warm.Hits() != len(pkgs) {
		t.Errorf("warm run reported %d hits, want %d", warm.Hits(), len(pkgs))
	}
	if !reflect.DeepEqual(got1, got2) {
		t.Errorf("warm run diagnostics differ from cold run:\ncold: %v\nwarm: %v", got1, got2)
	}

	// A new tool fingerprint simulates editing the analyzers themselves:
	// every entry must be recomputed, not replayed.
	bumped := NewCache(dir, "fp-v2")
	got3 := RunCached(pkgs, All, bumped)
	if bumped.Hits() != 0 {
		t.Errorf("fingerprint-bumped run reported %d hits, want 0", bumped.Hits())
	}
	if !reflect.DeepEqual(got1, got3) {
		t.Errorf("recomputed diagnostics differ from original run")
	}

	// A narrower analyzer set must key differently from the full set —
	// otherwise `-only` runs could poison full runs.
	subset, err := Select("guardloop", "")
	if err != nil {
		t.Fatalf("select: %v", err)
	}
	narrow := NewCache(dir, "fp-v1")
	RunCached(pkgs, subset, narrow)
	if narrow.Hits() != 0 {
		t.Errorf("subset run reported %d hits, want 0 (analyzer set must be part of the key)", narrow.Hits())
	}

	// A nil cache must behave identically to a cold run.
	got4 := RunCached(pkgs, All, nil)
	if !reflect.DeepEqual(got1, got4) {
		t.Errorf("uncached diagnostics differ from cached run")
	}
}
