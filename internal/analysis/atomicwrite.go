package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Atomicwrite enforces the crash-safety contract introduced by the
// durable package: artifacts (models, reports, traces, CSVs,
// checkpoints) must reach disk through temp-file + fsync + rename, so a
// crash mid-write can never leave a torn file where a complete one
// stood. Direct os.Create and os.WriteFile truncate or replace the
// destination in place — one kill -9 between truncate and the final
// write and the previous good artifact is gone.
var Atomicwrite = &Analyzer{
	Name: "atomicwrite",
	Doc: "route artifact writes through the durable package\n\n" +
		"os.Create and os.WriteFile truncate the destination before the new\n" +
		"content is safely on disk, so a crash mid-write destroys the previous\n" +
		"good file. Production code must write artifacts via durable.WriteAtomic,\n" +
		"durable.Create, or durable.SaveFile instead. The durable package itself\n" +
		"and _test.go files are exempt; genuinely non-artifact writes can carry\n" +
		"a //vet:ignore atomicwrite comment saying why.",
	Default: true,
	Run:     runAtomicwrite,
}

// unsafeWriters are the os functions that truncate-or-replace in place.
var unsafeWriters = map[string]bool{
	"Create":    true,
	"WriteFile": true,
}

func runAtomicwrite(p *Pass) {
	if strings.TrimSuffix(p.Pkg.Name(), "_test") == "durable" {
		return // the atomic implementation itself owns the raw primitives
	}
	for _, f := range p.Files {
		if strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue // tests tear files on purpose (corruption fixtures)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || !unsafeWriters[sel.Sel.Name] {
				return true
			}
			id, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := p.Info.ObjectOf(id).(*types.PkgName)
			if !ok || pkgName.Imported().Path() != "os" {
				return true
			}
			p.Reportf(call.Pos(),
				"os.%s writes the destination in place — a crash mid-write tears the file; use durable.WriteAtomic/Create/SaveFile",
				sel.Sel.Name)
			return true
		})
	}
}
