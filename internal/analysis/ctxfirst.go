package analysis

import (
	"go/ast"
	"strings"
)

// Ctxfirst enforces the shape of the context-threading API introduced
// with the guard layer: the ctx-accepting variants are the *Context
// functions, ctx is always the first parameter, and contexts flow
// through calls rather than being parked in structs (a stored context
// outlives its cancellation scope and silently detaches work from the
// caller's deadline).
var Ctxfirst = &Analyzer{
	Name: "ctxfirst",
	Doc: "require ctx-first *Context signatures and forbid context struct fields\n\n" +
		"Exported functions/methods named *Context must take context.Context\n" +
		"as their first parameter; any function taking a context must take it\n" +
		"first; and no struct may declare a context.Context field — contexts\n" +
		"are call-scoped, not state. Sanctioned carriers (guard.Guard, which\n" +
		"scopes one stage's ctx, and the Ctx field of per-call Options/Config\n" +
		"structs from the bounded-execution API) each carry a //vet:ignore\n" +
		"with their justification.",
	Default: true,
	Run:     runCtxfirst,
}

func runCtxfirst(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && !isTestFunc(p, fd) {
				checkCtxSignature(p, fd.Name.Name, fd.Name.IsExported(), fd.Type)
			}
		}
	}
	p.inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.StructType:
			checkCtxFields(p, n)
		case *ast.InterfaceType:
			for _, m := range n.Methods.List {
				ft, ok := m.Type.(*ast.FuncType)
				if !ok || len(m.Names) == 0 {
					continue
				}
				name := m.Names[0].Name
				checkCtxSignature(p, name, ast.IsExported(name), ft)
			}
		}
		return true
	})
}

// isTestFunc reports whether fd is a test/benchmark/fuzz harness
// function (TestFooContext is a test about contexts, not a *Context
// API).
func isTestFunc(p *Pass, fd *ast.FuncDecl) bool {
	name := fd.Name.Name
	for _, prefix := range []string{"Test", "Benchmark", "Fuzz", "Example"} {
		if strings.HasPrefix(name, prefix) {
			params := flattenParams(fd.Type)
			if len(params) == 0 {
				return prefix == "Example"
			}
			n := namedBase(p.TypeOf(params[0].typ))
			if n != nil && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "testing" {
				return true
			}
		}
	}
	return false
}

// checkCtxSignature applies both signature rules to one function or
// interface method.
func checkCtxSignature(p *Pass, name string, exported bool, ft *ast.FuncType) {
	params := flattenParams(ft)
	ctxAt := -1
	for i, f := range params {
		if isContextType(p.TypeOf(f.typ)) {
			ctxAt = i
			break
		}
	}
	if exported && strings.HasSuffix(name, "Context") && ctxAt != 0 {
		p.Reportf(ft.Pos(),
			"exported %s is a *Context API but does not take context.Context as its first parameter", name)
		return
	}
	if ctxAt > 0 {
		p.Reportf(params[ctxAt].typ.Pos(),
			"context.Context must be the first parameter of %s, not parameter %d", name, ctxAt+1)
	}
}

type param struct{ typ ast.Expr }

// flattenParams expands grouped parameters (a, b int) into one entry
// per declared parameter.
func flattenParams(ft *ast.FuncType) []param {
	var out []param
	if ft.Params == nil {
		return nil
	}
	for _, f := range ft.Params.List {
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			out = append(out, param{typ: f.Type})
		}
	}
	return out
}

func checkCtxFields(p *Pass, st *ast.StructType) {
	for _, f := range st.Fields.List {
		if isContextType(p.TypeOf(f.Type)) {
			p.Reportf(f.Type.Pos(),
				"struct stores a context.Context field; contexts are call-scoped — pass them as the first parameter instead (//vet:ignore ctxfirst with a reason for sanctioned carriers)")
		}
	}
}
