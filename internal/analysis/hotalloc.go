package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Hotalloc is the static half of the zero-allocation predict
// discipline (ROADMAP #1: the compiled predict path must serve
// "millions of users", which means no per-request garbage). It walks
// every function the call graph reaches from Predict, PredictContext,
// or ExplainPredict and flags the allocation shapes that creep into
// hot paths one innocent edit at a time. The dynamic half is
// BenchmarkPredictAllocs, whose testing.AllocsPerRun budget pins the
// measured number this analyzer exists to drive toward zero.
var Hotalloc = &Analyzer{
	Name: "hotalloc",
	Doc: "keep per-call allocations out of the predict hot path\n\n" +
		"Functions reachable from Predict/PredictContext/ExplainPredict are\n" +
		"the serving cone. Flagged shapes: fmt.Sprintf/Sprint (formatting\n" +
		"allocates), non-constant string concatenation, map literals and\n" +
		"make(map) per call, slice literals/make inside loops, appends to\n" +
		"un-presized local slices inside loops, closures capturing enclosing\n" +
		"variables (the environment is heap-allocated), and interface boxing\n" +
		"of non-pointer values (the boxed copy is heap-allocated). Appends\n" +
		"into slice parameters and into reslices of existing buffers are\n" +
		"sanctioned: they are the caller-owns-capacity Into idiom the\n" +
		"zero-allocation predict path is built on, so any growth is the\n" +
		"caller's presizing bug, not a per-call allocation here. Batch-level\n" +
		"allocations that amortize over rows and sanctioned cold branches\n" +
		"carry a //vet:ignore hotalloc with the reason. Test files are exempt.",
	Default: true,
	Run:     runHotalloc,
}

func runHotalloc(p *Pass) {
	for _, f := range p.Files {
		if strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !p.Graph.InHotPath(p.Info, fd) {
				continue
			}
			checkHotalloc(p, fd)
		}
	}
}

func checkHotalloc(p *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	presized := presizedLocals(p, fd)
	var loopDepth int

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loopDepth++
			for _, child := range childNodes(s) {
				ast.Inspect(child, walk)
			}
			loopDepth--
			return false
		case *ast.FuncLit:
			if capt := capturedVar(p, s); capt != nil {
				p.Reportf(s.Pos(),
					"closure in hot-path function %s captures %s; the environment is heap-allocated per call — hoist the closure or pass state explicitly",
					name, capt.Name())
			}
			// The literal's body inherits the hot-path obligations.
			return true
		case *ast.BinaryExpr:
			if s.Op == token.ADD && isStringType(p.TypeOf(s)) && constValue(p.Info, s) == nil {
				p.Reportf(s.OpPos,
					"string concatenation in hot-path function %s allocates per call; format once at fit time or write into a reused buffer", name)
			}
		case *ast.CompositeLit:
			t := p.TypeOf(s)
			switch t.Underlying().(type) {
			case *types.Map:
				p.Reportf(s.Pos(),
					"map literal in hot-path function %s allocates per call; build the map once at fit time and reuse it", name)
			case *types.Slice:
				if loopDepth > 0 {
					p.Reportf(s.Pos(),
						"slice literal inside a loop in hot-path function %s allocates per iteration; hoist it out of the loop", name)
				}
			}
		case *ast.CallExpr:
			checkHotCall(p, fd, s, loopDepth, presized)
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

// childNodes returns the traversable children of a loop statement so
// the custom walk can track loop depth.
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	switch s := n.(type) {
	case *ast.ForStmt:
		for _, c := range []ast.Node{s.Init, s.Cond, s.Post, s.Body} {
			if c != nil && !isNilNode(c) {
				out = append(out, c)
			}
		}
	case *ast.RangeStmt:
		if s.X != nil {
			out = append(out, s.X)
		}
		out = append(out, s.Body)
	}
	return out
}

// isNilNode guards against typed-nil ast fields (e.g. a ForStmt with
// no Init has a nil *ast.Stmt boxed non-nil).
func isNilNode(n ast.Node) bool {
	switch v := n.(type) {
	case ast.Stmt:
		return v == nil
	case ast.Expr:
		return v == nil
	}
	return n == nil
}

// checkHotCall flags allocating calls: fmt formatting, make(map),
// make(slice) in loops, un-presized appends in loops, and interface
// boxing of concrete arguments.
func checkHotCall(p *Pass, fd *ast.FuncDecl, call *ast.CallExpr, loopDepth int, presized map[types.Object]bool) {
	name := fd.Name.Name
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := p.Info.ObjectOf(id).(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				if len(call.Args) > 0 {
					switch p.TypeOf(call.Args[0]).Underlying().(type) {
					case *types.Map:
						p.Reportf(call.Pos(),
							"make(map) in hot-path function %s allocates per call; build the map once at fit time and reuse it", name)
					case *types.Slice:
						if loopDepth > 0 {
							p.Reportf(call.Pos(),
								"make(slice) inside a loop in hot-path function %s allocates per iteration; hoist and reuse the buffer", name)
						}
					}
				}
			case "append":
				if loopDepth > 0 {
					if target := appendTarget(p, call); target != nil && !presized[target] && isLocalOf(target, fd) {
						p.Reportf(call.Pos(),
							"append to un-presized local slice %s inside a loop in hot-path function %s; growth reallocates repeatedly — make([]T, 0, n) it first", target.Name(), name)
					}
				}
			}
			return
		}
	}

	fn := calleeFunc(p.Info, call)
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Sprintf", "Sprint", "Sprintln", "Appendf":
			p.Reportf(call.Pos(),
				"fmt.%s in hot-path function %s allocates per call; precompute the string at fit time or write into a reused buffer", fn.Name(), name)
		}
		// fmt's variadic any params would re-flag every argument as
		// boxing; the formatting diagnostic above already covers it.
		return
	}
	checkBoxing(p, fd, call, fn)
}

// checkBoxing flags arguments whose concrete non-pointer values are
// implicitly converted to interface parameters — each boxed copy is a
// heap allocation on the hot path.
func checkBoxing(p *Pass, fd *ast.FuncDecl, call *ast.CallExpr, fn *types.Func) {
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // s... passes the slice through, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isTP := pt.(*types.TypeParam); isTP {
			// A type parameter's underlying type is its constraint
			// interface, but generic calls are stenciled, not boxed.
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := p.TypeOf(arg)
		if at == nil || types.IsInterface(at) || isUntypedNil(p.Info, arg) || constValue(p.Info, arg) != nil {
			continue
		}
		if _, isPtr := at.Underlying().(*types.Pointer); isPtr {
			continue // pointers fit in the interface word, no allocation
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UnsafePointer {
			continue
		}
		p.Reportf(arg.Pos(),
			"argument %s boxes a non-pointer %s into an interface in hot-path function %s; the boxed copy is heap-allocated per call",
			exprText(arg), at.String(), fd.Name.Name)
	}
}

// appendTarget resolves append's first argument to a simple variable.
func appendTarget(p *Pass, call *ast.CallExpr) types.Object {
	if len(call.Args) == 0 {
		return nil
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	return p.Info.ObjectOf(id)
}

// isLocalOf reports whether obj is declared inside fd (a local, not a
// field, parameter of another function, or package-level var).
func isLocalOf(obj types.Object, fd *ast.FuncDecl) bool {
	return obj != nil && obj.Pos() >= fd.Pos() && obj.Pos() < fd.End()
}

// presizedLocals collects the slice variables whose append growth is
// not this function's allocation: locals initialized with a sized or
// capacity-carrying make (appends grow into reserved space), slice
// parameters (the caller-owns-capacity Into idiom — dst arrives with
// room reserved by the caller's presizing), and locals initialized
// from a reslice of an existing buffer (tx := rc.tx[:0] inherits the
// reused buffer's capacity).
func presizedLocals(p *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				obj := p.Info.ObjectOf(name)
				if obj == nil {
					continue
				}
				if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
					out[obj] = true
				}
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			if _, isReslice := ast.Unparen(as.Rhs[i]).(*ast.SliceExpr); isReslice {
				// A reslice never allocates; appending to it reuses the
				// original buffer's capacity.
				if obj := p.Info.ObjectOf(id); obj != nil {
					out[obj] = true
				}
				continue
			}
			call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				continue
			}
			if fun, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if b, ok := p.Info.ObjectOf(fun).(*types.Builtin); ok && b.Name() == "make" {
					if _, isSlice := p.TypeOf(call.Args[0]).Underlying().(*types.Slice); isSlice {
						if obj := p.Info.ObjectOf(id); obj != nil {
							out[obj] = true
						}
					}
				}
			}
		}
		return true
	})
	return out
}

// capturedVar returns a variable the function literal captures from
// its enclosing scope, or nil when the literal is self-contained
// (self-contained literals can stay on the stack).
func capturedVar(p *Pass, lit *ast.FuncLit) *types.Var {
	var found *types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return true // package-level vars are not captured, they are referenced
		}
		if v.Pos() < lit.Pos() || v.Pos() >= lit.End() {
			found = v
			return false
		}
		return true
	})
	return found
}

// isStringType reports whether t's core type is a string.
func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
