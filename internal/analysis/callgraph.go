package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the whole-program layer under the analyzer suite: a
// lightweight call graph over every loaded package, built from the same
// go/types information the per-package passes already have. It exists
// because two of the repo's load-bearing contracts are properties of
// *reachability*, not of any single function:
//
//   - the determinism contract (byte-identical results at any worker
//     count) constrains everything reachable from Fit, CrossValidate,
//     and the miners — one time.Now or unsorted map range anywhere in
//     that cone changes reported accuracy between runs;
//   - the zero-allocation predict discipline (ROADMAP #1) constrains
//     everything reachable from Predict/PredictContext/ExplainPredict —
//     the cone that must one day serve millions of requests.
//
// The graph is deliberately conservative (an over-approximation):
//
//   - direct calls and method calls add an edge to the resolved callee;
//   - a function *referenced* as a value (handed to a worker pool,
//     stored in a table) is assumed callable from the referencing
//     function;
//   - a call through an interface method adds CHA-style edges to every
//     concrete method of the same name, declared in any loaded package,
//     whose receiver implements that interface.
//
// Over-approximation errs toward analyzing too much, which is the safe
// direction for "nothing nondeterministic hides in this cone" claims.
type CallGraph struct {
	// nodes maps a function key (types.Func.FullName) to its node.
	nodes map[string]*CGNode
	// edges is the adjacency set: caller key -> callee keys.
	edges map[string]map[string]bool

	// Determinism holds every function reachable from the determinism
	// roots: Fit/FitContext, the CrossValidate family, and the miner
	// entry points. Code here must not read wall clocks, draw random
	// numbers, or let map iteration order escape.
	Determinism map[string]bool
	// HotPath holds every function reachable from the predict roots
	// (Predict, PredictContext, ExplainPredict): the serving cone that
	// the hotalloc analyzer holds to the allocation discipline.
	HotPath map[string]bool
}

// A CGNode is one function in the call graph. Only functions with
// bodies in the loaded packages get nodes; imported callees appear as
// edge targets but carry no node (there is no source to analyze).
type CGNode struct {
	Key  string // types.Func.FullName, e.g. "(*dfpc/internal/svm.Model).Predict"
	Name string // bare name, e.g. "Predict"
	Pos  token.Position
}

// determinismRoots are the bare function names that seed the
// determinism domain: the training entry points, the cross-validation
// family, and the miner entry points. Name-based matching keeps the
// graph usable from golden-test fixtures, which declare their own Fit.
var determinismRoots = map[string]bool{
	"Fit":                   true,
	"FitContext":            true,
	"CrossValidate":         true,
	"CrossValidateContext":  true,
	"CrossValidateOpt":      true,
	"CrossValidateObserved": true,
	"MinePerClass":          true,
	"MinePerClassAdaptive":  true,
	"FPClose":               true,
	"FPGrowth":              true,
	"Eclat":                 true,
	"Apriori":               true,
}

// hotPathRoots seed the predict/serving cone. Match and
// featureVectorInto are roots of their own (not just reachable
// members) so the matcher walk and the feature-space mapping stay
// under the allocation discipline even if an outer entry point is
// refactored out from above them.
var hotPathRoots = map[string]bool{
	"Predict":           true,
	"PredictContext":    true,
	"ExplainPredict":    true,
	"Match":             true,
	"featureVectorInto": true,
}

// FuncKey returns the canonical graph key for a declared function, or
// "" when the declaration has no type information (broken package).
// The key is types.Func.FullName, which is stable across packages: the
// *types.Func a caller resolves through export data produces the same
// string as the defining package's own object.
func FuncKey(info *types.Info, fd *ast.FuncDecl) string {
	fn, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return ""
	}
	return fn.FullName()
}

// InDeterminism reports whether the declared function is in the
// determinism domain.
func (g *CallGraph) InDeterminism(info *types.Info, fd *ast.FuncDecl) bool {
	if g == nil {
		return false
	}
	return g.Determinism[FuncKey(info, fd)]
}

// InHotPath reports whether the declared function is in the predict
// cone.
func (g *CallGraph) InHotPath(info *types.Info, fd *ast.FuncDecl) bool {
	if g == nil {
		return false
	}
	return g.HotPath[FuncKey(info, fd)]
}

// Nodes returns the graph's nodes sorted by key (deterministic for
// tests and -json output).
func (g *CallGraph) Nodes() []*CGNode {
	out := make([]*CGNode, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Callees returns the sorted edge targets of the given function key.
func (g *CallGraph) Callees(key string) []string {
	out := make([]string, 0, len(g.edges[key]))
	for k := range g.edges[key] {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ReachableFrom returns every key reachable (inclusively) from the
// nodes whose bare name satisfies isRoot.
func (g *CallGraph) ReachableFrom(isRoot func(n *CGNode) bool) map[string]bool {
	seen := map[string]bool{}
	var stack []string
	for _, n := range g.Nodes() {
		if isRoot(n) {
			seen[n.Key] = true
			stack = append(stack, n.Key)
		}
	}
	for len(stack) > 0 {
		key := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, next := range g.Callees(key) {
			if !seen[next] {
				seen[next] = true
				stack = append(stack, next)
			}
		}
	}
	return seen
}

// cgMethod records one concrete method for class-hierarchy edges.
type cgMethod struct {
	fn   *types.Func
	recv types.Type
}

// BuildCallGraph constructs the call graph over every cleanly loaded
// package and precomputes the Determinism and HotPath reachability
// sets.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		nodes: map[string]*CGNode{},
		edges: map[string]map[string]bool{},
	}

	// Pass 1: nodes, plus the concrete-method index that interface
	// calls resolve against (CHA). Methods are indexed by bare name;
	// the receiver type decides applicability per interface.
	methodsByName := map[string][]cgMethod{}
	for _, pkg := range pkgs {
		if pkg.Types == nil {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				key := fn.FullName()
				if _, dup := g.nodes[key]; !dup {
					g.nodes[key] = &CGNode{
						Key:  key,
						Name: fn.Name(),
						Pos:  pkg.Fset.Position(fd.Name.Pos()),
					}
				}
				if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
					methodsByName[fn.Name()] = append(methodsByName[fn.Name()], cgMethod{fn: fn, recv: recv.Type()})
				}
			}
		}
	}

	// Pass 2: edges.
	for _, pkg := range pkgs {
		if pkg.Types == nil {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.addEdges(pkg.Info, fn.FullName(), fd.Body, methodsByName)
			}
		}
	}

	g.Determinism = g.ReachableFrom(func(n *CGNode) bool { return determinismRoots[n.Name] })
	g.HotPath = g.ReachableFrom(func(n *CGNode) bool { return hotPathRoots[n.Name] })
	return g
}

// addEdges walks one function body and records its outgoing edges:
// resolved calls, interface calls expanded by CHA, and bare function
// references (conservatively assumed callable). Function literals
// inside the body are attributed to the declaring function — a closure
// runs with its creator's obligations.
func (g *CallGraph) addEdges(info *types.Info, caller string, body ast.Node, methodsByName map[string][]cgMethod) {
	// Call positions, so the reference walk below does not double-count
	// a call's own callee expression as a value reference.
	calleeExprs := map[ast.Expr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fun := ast.Unparen(call.Fun)
		// Unwrap explicit generic instantiation.
		switch e := fun.(type) {
		case *ast.IndexExpr:
			fun = ast.Unparen(e.X)
		case *ast.IndexListExpr:
			fun = ast.Unparen(e.X)
		}
		calleeExprs[fun] = true
		fn, _ := objectOf(info, fun).(*types.Func)
		if fn == nil {
			return true
		}
		if isInterfaceMethod(fn) {
			g.addCHAEdges(caller, fn, methodsByName)
			return true
		}
		g.addEdge(caller, fn.FullName())
		return true
	})

	// Function values referenced without being called: assume the
	// receiver of the value may call it (worker pools, dispatch
	// tables, sort.Slice comparators).
	ast.Inspect(body, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok || calleeExprs[e] {
			return true
		}
		switch e.(type) {
		case *ast.Ident, *ast.SelectorExpr:
		default:
			return true
		}
		fn, _ := objectOf(info, e).(*types.Func)
		if fn == nil {
			return true
		}
		// Selector walks visit both the SelectorExpr and its Sel ident;
		// Uses resolves both to the same func — the dedup map absorbs it.
		if isInterfaceMethod(fn) {
			g.addCHAEdges(caller, fn, methodsByName)
		} else {
			g.addEdge(caller, fn.FullName())
		}
		return true
	})
}

func (g *CallGraph) addEdge(from, to string) {
	set := g.edges[from]
	if set == nil {
		set = map[string]bool{}
		g.edges[from] = set
	}
	set[to] = true
}

// addCHAEdges links caller to every loaded concrete method that could
// stand behind the interface method ifn.
func (g *CallGraph) addCHAEdges(caller string, ifn *types.Func, methodsByName map[string][]cgMethod) {
	recv := ifn.Type().(*types.Signature).Recv()
	if recv == nil {
		return
	}
	iface, ok := recv.Type().Underlying().(*types.Interface)
	if !ok {
		return
	}
	for _, m := range methodsByName[ifn.Name()] {
		if implementsEither(m.recv, iface) {
			g.addEdge(caller, m.fn.FullName())
		}
	}
}

// implementsEither reports whether t or *t satisfies iface. Method
// declarations index by their declared receiver; a value-receiver
// method set is a subset of the pointer's, so checking both sides
// covers however callers hold the type.
func implementsEither(t types.Type, iface *types.Interface) bool {
	if types.Implements(t, iface) {
		return true
	}
	if _, isPtr := t.(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(t), iface)
	}
	return false
}

// isInterfaceMethod reports whether fn is declared on an interface
// type.
func isInterfaceMethod(fn *types.Func) bool {
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	_, ok := recv.Type().Underlying().(*types.Interface)
	return ok
}

// DomainHash feeds the per-package result cache: a deterministic
// fingerprint of the reachability memberships of every function whose
// key mentions the given import path. A package's analysis results
// depend on the whole-program graph only through these memberships, so
// hashing them (rather than the whole tree) lets unrelated edits keep
// cache entries valid.
func (g *CallGraph) DomainHash(importPath string) string {
	var sb strings.Builder
	for _, n := range g.Nodes() {
		if !keyInPackage(n.Key, importPath) {
			continue
		}
		sb.WriteString(n.Key)
		if g.Determinism[n.Key] {
			sb.WriteString("+D")
		}
		if g.HotPath[n.Key] {
			sb.WriteString("+H")
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// keyInPackage reports whether a function key belongs to the package
// with the given import path. Keys look like "path.Func" or
// "(path.T).M" / "(*path.T).M".
func keyInPackage(key, importPath string) bool {
	k := strings.TrimPrefix(strings.TrimPrefix(key, "("), "*")
	return strings.HasPrefix(k, importPath+".")
}
