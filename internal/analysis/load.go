package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one type-checked analysis unit. When a package has test
// files the unit is the test-augmented variant (GoFiles + TestGoFiles),
// so in-package tests are analyzed without double-reporting the
// non-test files; external (_test package) files form their own unit.
type Package struct {
	ImportPath string
	Name       string // package name, e.g. "mining" or "mining_test"
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// Errs holds parse/type-check errors. A package with errors is
	// reported and skipped by the driver rather than aborting the whole
	// run (graceful degradation; dfpc-vet exits 2 when any are present).
	Errs []error

	ignores ignoreIndex
	waivers []Waiver
	// srcFiles and depExports feed the result cache's content key: the
	// absolute source paths of this unit and the build-cache export
	// files of its resolved imports. Export paths are content-addressed
	// by the go command, so they change exactly when a dependency's
	// exported shape does.
	srcFiles   []string
	depExports []string
}

// BaseName is the package name with any external-test suffix stripped;
// analyzers scope on it so "measures_test" inherits the measures rules.
func (p *Package) BaseName() string { return strings.TrimSuffix(p.Name, "_test") }

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	Dir          string
	ImportPath   string
	Name         string
	Export       string
	Standard     bool
	ForTest      string
	GoFiles      []string
	CgoFiles     []string
	TestGoFiles  []string
	XTestGoFiles []string
	Error        *struct{ Err string }
}

// goList invokes `go list` in dir with the given arguments and decodes
// the JSON package stream.
func goList(dir string, args ...string) ([]*listedPackage, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %w\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// Load enumerates the packages matching patterns (relative to dir),
// parses their sources, and type-checks them against export data
// produced by the go command. It returns one *Package per analysis
// unit. Loading is all-or-nothing only for the `go list` calls
// themselves; per-package parse/type failures are recorded in
// Package.Errs so one broken package degrades, not aborts, the run.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	// Pass 1: the analysis targets, with their file lists.
	listArgs := append([]string{"list", "-e", "-json=Dir,ImportPath,Name,GoFiles,CgoFiles,TestGoFiles,XTestGoFiles,Error"}, patterns...)
	targets, err := goList(dir, listArgs...)
	if err != nil {
		return nil, err
	}

	// Pass 2: export data for every dependency (including test-only
	// deps, hence -test). The go command compiles to the build cache as
	// needed; the map feeds the gc importer's lookup function.
	exportArgs := append([]string{"list", "-e", "-export", "-deps", "-test", "-json=ImportPath,Export,ForTest,Standard"}, patterns...)
	deps, err := goList(dir, exportArgs...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	for _, d := range deps {
		// Test variants ("p [q.test]" / ForTest != "") re-compile p with
		// its test files; the plain entry is the one import resolution
		// needs.
		if d.ForTest != "" || strings.HasSuffix(d.ImportPath, ".test") {
			continue
		}
		if d.Export != "" {
			exports[d.ImportPath] = d.Export
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var out []*Package
	for _, t := range targets {
		if t.Name == "" || len(t.GoFiles)+len(t.CgoFiles)+len(t.TestGoFiles)+len(t.XTestGoFiles) == 0 {
			continue
		}
		if t.Error != nil {
			out = append(out, &Package{
				ImportPath: t.ImportPath, Name: t.Name, Dir: t.Dir, Fset: fset,
				Errs: []error{fmt.Errorf("%s", t.Error.Err)},
			})
			continue
		}
		base := append(append([]string{}, t.GoFiles...), t.CgoFiles...)
		unit := append(base, t.TestGoFiles...)
		out = append(out, check(fset, imp, exports, t, t.Name, unit))
		if len(t.XTestGoFiles) > 0 {
			out = append(out, check(fset, imp, exports, t, t.Name+"_test", t.XTestGoFiles))
		}
	}
	return out, nil
}

// check parses and type-checks one unit of files from the listed
// package t.
func check(fset *token.FileSet, imp types.Importer, exports map[string]string, t *listedPackage, name string, fileNames []string) *Package {
	pkg := &Package{ImportPath: t.ImportPath, Name: name, Dir: t.Dir, Fset: fset}
	// External test packages type-check under a distinct path so their
	// import of the package under test is not a self-import.
	checkPath := t.ImportPath
	if strings.HasSuffix(name, "_test") {
		checkPath += "_test"
	}
	var files []*ast.File
	for _, fn := range fileNames {
		path := filepath.Join(t.Dir, fn)
		pkg.srcFiles = append(pkg.srcFiles, path)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			pkg.Errs = append(pkg.Errs, err)
			continue
		}
		files = append(files, f)
	}
	pkg.Files = files
	pkg.ignores, pkg.waivers = buildIgnoreIndex(fset, files)
	if len(pkg.Errs) > 0 {
		return pkg
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.Errs = append(pkg.Errs, err) },
	}
	tpkg, err := conf.Check(checkPath, fset, files, info)
	if err != nil && len(pkg.Errs) == 0 {
		pkg.Errs = append(pkg.Errs, err)
	}
	if len(pkg.Errs) == 0 {
		pkg.Types = tpkg
		pkg.Info = info
		for _, dep := range tpkg.Imports() {
			if exp, ok := exports[dep.Path()]; ok {
				pkg.depExports = append(pkg.depExports, exp)
			}
		}
		sort.Strings(pkg.depExports)
	}
	return pkg
}
