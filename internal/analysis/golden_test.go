package analysis

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"testing"
)

// wantRx extracts the quoted expectations from a `// want "..." "..."`
// comment.
var wantRx = regexp.MustCompile(`// want ((?:"(?:[^"\\]|\\.)*"\s*)+)`)

var quotedRx = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// expectation is one `// want` annotation: a diagnostic that must be
// reported on this exact file:line with a message matching rx.
type expectation struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

// readExpectations scans a fixture file for want comments.
func readExpectations(t *testing.T, path string) []*expectation {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open fixture: %v", err)
	}
	defer f.Close()
	var out []*expectation
	sc := bufio.NewScanner(f)
	for line := 1; sc.Scan(); line++ {
		m := wantRx.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		for _, q := range quotedRx.FindAllStringSubmatch(m[1], -1) {
			rx, err := regexp.Compile(q[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", path, line, q[1], err)
			}
			out = append(out, &expectation{file: path, line: line, rx: rx})
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan fixture: %v", err)
	}
	return out
}

// fixtureDirs lists testdata/src/<analyzer>'s fixture package dirs.
func fixtureDirs(t *testing.T, analyzer string) []string {
	t.Helper()
	root := filepath.Join("testdata", "src", analyzer)
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatalf("every analyzer must ship golden fixtures under %s: %v", root, err)
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, "./"+filepath.ToSlash(filepath.Join(root, e.Name())))
		}
	}
	if len(dirs) == 0 {
		t.Fatalf("no fixture packages under %s", root)
	}
	return dirs
}

// TestGolden runs every registered analyzer over its fixtures and
// demands an exact diagnostic match: every want annotation is reported
// (no under-reporting) and every diagnostic is wanted (no
// over-reporting).
func TestGolden(t *testing.T) {
	for _, a := range All {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			t.Parallel()
			dirs := fixtureDirs(t, a.Name)
			pkgs, err := Load(".", dirs...)
			if err != nil {
				t.Fatalf("loading fixtures: %v", err)
			}
			if len(pkgs) == 0 {
				t.Fatal("no fixture packages loaded")
			}
			var wants []*expectation
			positives := 0
			for _, pkg := range pkgs {
				for _, e := range pkg.Errs {
					t.Errorf("fixture package %s failed to load: %v", pkg.ImportPath, e)
				}
				for _, f := range pkg.Files {
					path := pkg.Fset.Position(f.Pos()).Filename
					exps := readExpectations(t, path)
					wants = append(wants, exps...)
					if len(exps) > 0 {
						positives++
					}
				}
			}
			if t.Failed() {
				return
			}
			// Every analyzer needs at least one positive (flagged) and
			// one negative (clean) fixture file.
			if positives == 0 {
				t.Error("no positive fixtures: nothing exercises the analyzer's reporting")
			}
			cleanFiles := 0
			for _, pkg := range pkgs {
				for _, f := range pkg.Files {
					path := pkg.Fset.Position(f.Pos()).Filename
					if len(readExpectations(t, path)) == 0 {
						cleanFiles++
					}
				}
			}
			if cleanFiles == 0 {
				t.Error("no negative fixtures: nothing guards against over-reporting")
			}

			diags := Run(pkgs, []*Analyzer{a})
			for _, d := range diags {
				if d.Analyzer != a.Name {
					t.Errorf("diagnostic attributed to %q, want %q", d.Analyzer, a.Name)
				}
				exp := matchExpectation(wants, d.Pos.Filename, d.Pos.Line, d.Message)
				if exp == nil {
					t.Errorf("unexpected diagnostic (over-reporting): %s", d)
					continue
				}
				exp.matched = true
			}
			for _, w := range wants {
				if !w.matched {
					t.Errorf("missing diagnostic (under-reporting): %s:%d: want message matching %q",
						w.file, w.line, w.rx)
				}
			}
		})
	}
}

// matchExpectation finds an unmatched want on the diagnostic's line
// whose regexp matches the message.
func matchExpectation(wants []*expectation, file string, line int, msg string) *expectation {
	for _, w := range wants {
		if !w.matched && w.line == line && sameFile(w.file, file) && w.rx.MatchString(msg) {
			return w
		}
	}
	return nil
}

// sameFile compares paths that may differ in absolute/relative form.
func sameFile(a, b string) bool {
	aa, errA := filepath.Abs(a)
	bb, errB := filepath.Abs(b)
	if errA != nil || errB != nil {
		return filepath.Base(a) == filepath.Base(b) && filepath.Base(filepath.Dir(a)) == filepath.Base(filepath.Dir(b))
	}
	return aa == bb
}

// TestRunDiagnosticsSorted pins the deterministic output order the CLI
// and CI logs rely on.
func TestRunDiagnosticsSorted(t *testing.T) {
	pkgs, err := Load(".", "./testdata/src/floateq/measures", "./testdata/src/mathrange/measures")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags := Run(pkgs, []*Analyzer{Floateq, Mathrange})
	if len(diags) < 2 {
		t.Fatalf("want several diagnostics, got %d", len(diags))
	}
	sorted := sort.SliceIsSorted(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Pos.Column <= b.Pos.Column
	})
	if !sorted {
		for _, d := range diags {
			t.Log(d)
		}
		t.Error("diagnostics not sorted by file/line/column")
	}
	for _, d := range diags {
		want := fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
		if d.String() != want {
			t.Errorf("String() = %q, want %q", d.String(), want)
		}
	}
}
