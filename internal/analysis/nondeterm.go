package analysis

import (
	"go/ast"
	"strings"
)

// Nondeterm polices the determinism domain — everything the call graph
// reaches from Fit/FitContext, the CrossValidate family, and the miner
// entry points — for sources of run-to-run variation: wall-clock
// reads, math/rand draws, racing selects, and raw goroutine launches.
// The repo's contract is that two runs on the same input produce
// byte-identical patterns, features, models, and CV statistics at any
// worker count; these four constructs are the ways Go code breaks that
// contract without failing a single test on any one run.
var Nondeterm = &Analyzer{
	Name: "nondeterm",
	Doc: "keep wall clocks, rand, racing selects, and raw goroutines out of the determinism domain\n\n" +
		"Functions reachable from Fit, CrossValidate, or a miner entry point\n" +
		"must not call time.Now/Since/Until or anything in math/rand, select\n" +
		"across multiple live channels (the winner is scheduling-dependent),\n" +
		"or launch goroutines outside internal/parallel's deterministic pool.\n" +
		"Sanctioned sites — telemetry/obs span timestamps, guard deadline\n" +
		"polls, the pool's own workers — carry a //vet:ignore nondeterm with\n" +
		"the reason their nondeterminism cannot reach reported results. Test\n" +
		"files are exempt.",
	Default: true,
	Run:     runNondeterm,
}

func runNondeterm(p *Pass) {
	for _, f := range p.Files {
		if strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !p.Graph.InDeterminism(p.Info, fd) {
				continue
			}
			checkNondeterm(p, fd)
		}
	}
}

func checkNondeterm(p *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.CallExpr:
			fn := calleeFunc(p.Info, s)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				switch fn.Name() {
				case "Now", "Since", "Until":
					p.Reportf(s.Pos(),
						"time.%s inside the determinism domain (%s is reachable from Fit/CrossValidate/miners); wall-clock values vary between runs",
						fn.Name(), fd.Name.Name)
				}
			case "math/rand", "math/rand/v2":
				p.Reportf(s.Pos(),
					"%s.%s inside the determinism domain (%s); unseeded or shared-state randomness varies between runs — derive values from explicit seeds",
					fn.Pkg().Name(), fn.Name(), fd.Name.Name)
			}
		case *ast.SelectStmt:
			live := 0
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					live++
				}
			}
			if live >= 2 {
				p.Reportf(s.Select,
					"select with %d racing cases inside the determinism domain (%s); which case wins depends on scheduling", live, fd.Name.Name)
			}
		case *ast.GoStmt:
			p.Reportf(s.Go,
				"goroutine launched inside the determinism domain (%s); result interleaving depends on scheduling — route concurrency through internal/parallel's index-ordered pool", fd.Name.Name)
		}
		return true
	})
}
