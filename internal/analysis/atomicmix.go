package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Atomicmix protects the concurrency substrate — internal/parallel,
// internal/obs, internal/telemetry — from the two lock-discipline bugs
// the race detector only catches when the schedule cooperates: a field
// accessed through sync/atomic in one place and with a plain load or
// store in another (the plain access tears the synchronization), and a
// value containing a sync.Mutex/WaitGroup/Once copied by value (the
// copy's lock state diverges silently from the original's).
var Atomicmix = &Analyzer{
	Name: "atomicmix",
	Doc: "no mixed atomic/plain access and no copied locks in the concurrency packages\n\n" +
		"Within parallel, obs, and telemetry: once a variable or field is\n" +
		"passed by address to a sync/atomic function anywhere in the package,\n" +
		"every other access must also be atomic — a plain read can observe a\n" +
		"torn or stale value and a plain write races the CAS loop. Separately,\n" +
		"any type that (transitively) contains a sync.Mutex, RWMutex,\n" +
		"WaitGroup, Once, Cond, Map, or Pool must move by pointer: by-value\n" +
		"receivers, parameters, and value-copy assignments fork the lock\n" +
		"state. Sanctioned sites (e.g. a constructor's pre-publication\n" +
		"initialization) carry a //vet:ignore atomicmix with the reason. Test\n" +
		"files are exempt.",
	Default:  true,
	Packages: []string{"parallel", "obs", "telemetry"},
	Run:      runAtomicmix,
}

func runAtomicmix(p *Pass) {
	atomicObjs, sanctioned := collectAtomicTargets(p)
	p.inspect(func(n ast.Node) bool {
		if fd, ok := n.(*ast.FuncDecl); ok {
			checkCopiedLockSignature(p, fd)
		}
		return true
	})
	for _, f := range p.Files {
		if strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.Ident:
				obj := p.Info.ObjectOf(s)
				if obj == nil || !atomicObjs[obj] || sanctioned[s.Pos()] {
					return true
				}
				if obj.Pos() == s.Pos() {
					return true // the declaration itself
				}
				p.Reportf(s.Pos(),
					"%s is accessed with sync/atomic elsewhere in this package; this plain access races the atomic ones — use the matching atomic load/store", obj.Name())
			case *ast.AssignStmt:
				checkCopiedLockAssign(p, s)
			}
			return true
		})
	}
}

// collectAtomicTargets finds every variable or struct field whose
// address is passed to a sync/atomic function, and records the
// positions of the identifiers inside those calls (and inside
// composite-literal initialization) so they are not themselves flagged
// as plain accesses.
func collectAtomicTargets(p *Pass) (map[types.Object]bool, map[token.Pos]bool) {
	targets := map[types.Object]bool{}
	sanctioned := map[token.Pos]bool{}
	p.inspect(func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.CallExpr:
			fn := calleeFunc(p.Info, s)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range s.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok {
					continue
				}
				obj := rootIdentObj(p.Info, un.X, sanctioned)
				if obj != nil {
					targets[obj] = true
				}
			}
		case *ast.CompositeLit:
			// Zero-value initialization in a literal is pre-publication;
			// mark the field keys so they are not reported.
			for _, el := range s.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					if id, ok := kv.Key.(*ast.Ident); ok {
						sanctioned[id.Pos()] = true
					}
				}
			}
		}
		return true
	})
	return targets, sanctioned
}

// rootIdentObj resolves expr (x, s.x, s.a.x) to the object of its
// final identifier and marks every identifier on the path sanctioned.
func rootIdentObj(info *types.Info, e ast.Expr, sanctioned map[token.Pos]bool) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			sanctioned[x.Pos()] = true
			return info.ObjectOf(x)
		case *ast.SelectorExpr:
			sanctioned[x.Sel.Pos()] = true
			markPathSanctioned(x.X, sanctioned)
			return info.ObjectOf(x.Sel)
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// markPathSanctioned marks the receiver chain (s, s.a, ...) so the
// container identifiers inside an atomic call are not flagged.
func markPathSanctioned(e ast.Expr, sanctioned map[token.Pos]bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			sanctioned[id.Pos()] = true
		}
		return true
	})
}

// containsLock reports whether t (transitively, through struct fields
// and arrays) contains a sync lock type that must not be copied.
func containsLock(t types.Type) bool {
	return containsLockDepth(t, 0)
}

func containsLockDepth(t types.Type, depth int) bool {
	if t == nil || depth > 10 {
		return false
	}
	if n, ok := t.(*types.Named); ok {
		obj := n.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Map", "Pool":
				return true
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLockDepth(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	case *types.Array:
		return containsLockDepth(u.Elem(), depth+1)
	}
	return false
}

// checkCopiedLockSignature flags by-value receivers and parameters of
// lock-containing types.
func checkCopiedLockSignature(p *Pass, fd *ast.FuncDecl) {
	if strings.HasSuffix(p.Fset.Position(fd.Pos()).Filename, "_test.go") {
		return
	}
	check := func(fl *ast.FieldList, kind string) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			t := p.TypeOf(f.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
				continue
			}
			if containsLock(t) {
				p.Reportf(f.Type.Pos(),
					"%s of %s passes %s by value, copying its lock; take a pointer", kind, fd.Name.Name, t.String())
			}
		}
	}
	check(fd.Recv, "receiver")
	if fd.Type.Params != nil {
		check(fd.Type.Params, "parameter")
	}
}

// checkCopiedLockAssign flags value-copy assignments of lock-containing
// values: x := y / x = y where y is an existing value (not a composite
// literal or call constructing a fresh one).
func checkCopiedLockAssign(p *Pass, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		switch ast.Unparen(rhs).(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
			// an existing value — copying it copies the lock
		default:
			continue // fresh literal / call result / &x are fine
		}
		t := p.TypeOf(rhs)
		if t == nil {
			continue
		}
		if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
			continue
		}
		if containsLock(t) {
			p.Reportf(as.Rhs[i].Pos(),
				"assignment copies %s by value, forking its lock state; share it by pointer", t.String())
		}
	}
}
