package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Maporder flags the canonical Go nondeterminism bug: ranging over a
// map and letting the iteration order escape. Go randomizes map order
// per run on purpose, so any order-sensitive use — appending to a
// slice that is never sorted, writing lines, sending on a channel,
// returning the first match — produces output that differs between two
// executions of the same binary on the same input. In this repo that
// is not a cosmetic bug: the determinism suite promises byte-identical
// reports, CSVs, and selected features at any worker count, and one
// unsorted map range in an emitter silently breaks the reproducibility
// of every reported accuracy number.
var Maporder = &Analyzer{
	Name: "maporder",
	Doc: "keep map iteration order from escaping unsorted\n\n" +
		"A `for k, v := range m` over a map visits entries in a different order\n" +
		"every run. The order escapes when the body appends key/value-derived\n" +
		"data to a slice that is never subsequently sorted, writes it to an\n" +
		"io.Writer or fmt printer, sends it on a channel, or returns it. The\n" +
		"sanctioned shapes: collect into a slice and sort it before use, or do\n" +
		"only order-independent work (counting, summing, writing into another\n" +
		"keyed structure). Test files are exempt — assertion order does not\n" +
		"ship. Sites whose order is laundered downstream (e.g. a caller that\n" +
		"sorts) carry a //vet:ignore maporder with the reason.",
	Default: true,
	Run:     runMaporder,
}

func runMaporder(p *Pass) {
	for _, f := range p.Files {
		if strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok || !isMapType(p.TypeOf(rng.X)) {
					return true
				}
				checkMapRange(p, fd, rng)
				return true
			})
		}
	}
}

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRange taints the range's key/value variables, propagates the
// taint through simple assignments in the body, and reports every
// escape of tainted data: appends not followed by a sort, writer
// calls, channel sends, and returns.
func checkMapRange(p *Pass, fd *ast.FuncDecl, rng *ast.RangeStmt) {
	tainted := map[types.Object]bool{}
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := p.Info.ObjectOf(id); obj != nil {
				tainted[obj] = true
			}
		}
	}
	if len(tainted) == 0 {
		// `for range m` without variables runs the body len(m) times
		// with nothing order-dependent in scope.
		return
	}

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.RangeStmt:
			// A nested map range is checked on its own visit; its body
			// still propagates this loop's taint, so keep walking.
		case *ast.AssignStmt:
			// Taint flows through assignments: k2 := transform(k).
			for i, lhs := range s.Lhs {
				var rhs ast.Expr
				if len(s.Rhs) == len(s.Lhs) {
					rhs = s.Rhs[i]
				} else if len(s.Rhs) == 1 {
					rhs = s.Rhs[0]
				}
				if rhs == nil || !mentionsTainted(p.Info, rhs, tainted) {
					continue
				}
				if target := assignTargetObj(p.Info, lhs); target != nil {
					// Appends are the one sanctioned collection shape —
					// if the collected slice is sorted afterwards.
					if isAppendCall(p.Info, rhs) {
						if !sortedAfter(p, fd, rng, target) {
							p.Reportf(rhs.Pos(),
								"map iteration order escapes into %s via append and no sort of %s follows in %s; order differs every run — sort the slice before it is used",
								target.Name(), target.Name(), fd.Name.Name)
						}
						continue
					}
					tainted[target] = true
				}
			}
		case *ast.SendStmt:
			if mentionsTainted(p.Info, s.Value, tainted) {
				p.Reportf(s.Arrow,
					"map iteration order escapes on a channel send in %s; the receiver observes a different order every run", fd.Name.Name)
			}
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				if mentionsTainted(p.Info, r, tainted) {
					p.Reportf(s.Return,
						"returning from inside a map range in %s selects a run-dependent entry; iterate a sorted key slice instead", fd.Name.Name)
					break
				}
			}
		case *ast.CallExpr:
			if name, ok := orderSink(p.Info, s); ok {
				for _, arg := range s.Args {
					if mentionsTainted(p.Info, arg, tainted) {
						p.Reportf(s.Pos(),
							"map iteration order escapes through %s in %s; emitted output differs every run — iterate sorted keys", name, fd.Name.Name)
						break
					}
				}
			}
		}
		return true
	})
}

// assignTargetObj resolves an assignment LHS to the root variable it
// stores into, or nil for blank/unresolvable targets.
func assignTargetObj(info *types.Info, lhs ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if x.Name == "_" {
				return nil
			}
			v, _ := info.ObjectOf(x).(*types.Var)
			return v
		case *ast.SelectorExpr:
			lhs = x.X
		case *ast.IndexExpr:
			lhs = x.X
		case *ast.StarExpr:
			lhs = x.X
		default:
			return nil
		}
	}
}

// orderSink reports whether the call emits its arguments somewhere
// order-sensitive: a fmt printer, an io.Writer-shaped method, or a
// diagnostic reporter. The name is returned for the message.
func orderSink(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return "", false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return "fmt." + fn.Name(), true
		}
		return "", false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		switch fn.Name() {
		case "Write", "WriteString", "WriteByte", "WriteRune", "WriteAll", "Printf", "Print", "Println", "Reportf":
			return fn.Name(), true
		}
	}
	return "", false
}

// sortedAfter reports whether, anywhere after the range statement in
// the enclosing function, target is passed to something that sorts it
// (sort.*, slices.Sort*, or any function whose name contains "Sort").
func sortedAfter(p *Pass, fd *ast.FuncDecl, rng *ast.RangeStmt, target *types.Var) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		if !isSortCall(p.Info, call) {
			return true
		}
		for _, arg := range call.Args {
			if mentionsVar(p.Info, arg, target) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isSortCall reports whether the call plausibly sorts an argument:
// anything in sort or slices, or a helper whose name mentions Sort.
func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	if fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "sort", "slices":
			return true
		}
	}
	return strings.Contains(fn.Name(), "Sort") || strings.HasPrefix(fn.Name(), "sort")
}

// mentionsTainted reports whether e references any tainted object.
func mentionsTainted(info *types.Info, e ast.Expr, tainted map[types.Object]bool) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.ObjectOf(id); obj != nil && tainted[obj] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// mentionsVar reports whether e references the given variable.
func mentionsVar(info *types.Info, e ast.Expr, v *types.Var) bool {
	return mentionsTainted(info, e, map[types.Object]bool{v: true})
}
