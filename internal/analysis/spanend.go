package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Spanend enforces the obs span lifetime rule: every span returned by
// obs.Observer.Start must reach an End() call, either chained on the
// Start expression itself (usually under defer) or invoked later on the
// variable the span was assigned to. An unended span is silently
// swallowed by its parent's End — the runtime now counts those as
// obs.span_leak and warns, but the leak is still a bug; this check
// turns it into a build break.
var Spanend = &Analyzer{
	Name: "spanend",
	Doc: "require an End() for every span returned by obs.Observer.Start\n\n" +
		"Spans form the timing tree behind RunReports, the journal's stage\n" +
		"stats, and the Perfetto trace export; a span that is never ended\n" +
		"reports zero wall time and is popped unclosed when its parent ends\n" +
		"(counted as obs.span_leak at runtime). Flags Start calls whose\n" +
		"result is discarded, deferred, or assigned to a variable without any\n" +
		"reachable End() on that variable. Spans that escape the function\n" +
		"(returned, passed as an argument, stored in a struct) are assumed\n" +
		"ended by their new owner.",
	Default: true,
	Run:     runSpanend,
}

// isObsNamed reports whether t is (a pointer to) the named type from
// the repo's internal/obs package. Matching on the path suffix keeps
// the analyzer usable from golden-test fixtures, which import the real
// package.
func isObsNamed(t types.Type, name string) bool {
	n := namedBase(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/obs") && obj.Name() == name
}

// isObsStartCall reports whether call invokes obs.Observer.Start.
func isObsStartCall(p *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Start" {
		return false
	}
	return isObsNamed(p.TypeOf(sel.X), "Observer")
}

// climbChain follows a method chain upward from expr (stack[top] must
// be expr): while the parent is a SelectorExpr on expr that is itself
// invoked, the chain extends. It returns the outermost chain index in
// stack, and whether any chained method is End. obs.Span methods return
// the span, so `o.Start("x").Attr("k", v).End()` is one chain.
func climbChain(stack []ast.Node, top int) (outer int, endsInEnd bool) {
	outer = top
	cur := stack[top]
	for j := top - 1; j >= 1; j -= 2 {
		sel, ok := stack[j].(*ast.SelectorExpr)
		if !ok || sel.X != cur {
			break
		}
		pc, ok := stack[j-1].(*ast.CallExpr)
		if !ok || pc.Fun != sel {
			break
		}
		if sel.Sel.Name == "End" {
			endsInEnd = true
		}
		cur = pc
		outer = j - 1
	}
	return outer, endsInEnd
}

// startSite is one Start call whose span was bound to a variable and
// therefore needs an End() reachable through that variable.
type startSite struct {
	call *ast.CallExpr
	obj  types.Object
}

func runSpanend(p *Pass) {
	var sites []startSite
	ended := map[types.Object]bool{}
	var stack []ast.Node
	p.inspect(func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		top := len(stack) - 1
		switch n := n.(type) {
		case *ast.CallExpr:
			if !isObsStartCall(p, n) {
				return true
			}
			outer, endsInEnd := climbChain(stack, top)
			if endsInEnd {
				return true
			}
			var parent ast.Node
			if outer > 0 {
				parent = stack[outer-1]
			}
			chain := stack[outer]
			switch parent := parent.(type) {
			case *ast.AssignStmt:
				if obj := assignedObject(p, parent, chain); obj != nil {
					sites = append(sites, startSite{call: n, obj: obj})
				} else {
					// `_ = o.Start(...)` or a non-identifier target; the
					// blank case drops the span, the field case escapes.
					if isBlankTarget(parent, chain) {
						p.Reportf(n.Pos(), "span from obs.Start is discarded without End(); it will leak when its parent ends")
					}
				}
			case *ast.ValueSpec:
				if obj := specObject(p, parent, chain); obj != nil {
					sites = append(sites, startSite{call: n, obj: obj})
				}
			case *ast.ExprStmt, *ast.DeferStmt, *ast.GoStmt:
				p.Reportf(n.Pos(), "span from obs.Start is discarded without End(); it will leak when its parent ends")
			default:
				// Returned, passed as an argument, stored in a composite:
				// the span escapes and its new owner is responsible.
			}
		case *ast.Ident:
			obj := p.Info.Uses[n]
			if obj == nil || !isObsNamed(obj.Type(), "Span") {
				return true
			}
			if _, e := climbChain(stack, top); e {
				ended[obj] = true
			}
		}
		return true
	})
	for _, s := range sites {
		if !ended[s.obj] {
			p.Reportf(s.call.Pos(),
				"span assigned to %s has no End() call; every obs.Start needs a reachable End", s.obj.Name())
		}
	}
}

// assignedObject returns the variable object that chain is assigned to
// in stmt, for identifier (non-blank) targets only.
func assignedObject(p *Pass, stmt *ast.AssignStmt, chain ast.Node) types.Object {
	for i, rhs := range stmt.Rhs {
		if rhs != chain || i >= len(stmt.Lhs) {
			continue
		}
		id, ok := stmt.Lhs[i].(*ast.Ident)
		if !ok || id.Name == "_" {
			return nil
		}
		if obj := p.Info.Defs[id]; obj != nil {
			return obj
		}
		return p.Info.Uses[id]
	}
	return nil
}

// isBlankTarget reports whether chain is assigned to the blank
// identifier in stmt.
func isBlankTarget(stmt *ast.AssignStmt, chain ast.Node) bool {
	for i, rhs := range stmt.Rhs {
		if rhs != chain || i >= len(stmt.Lhs) {
			continue
		}
		id, ok := stmt.Lhs[i].(*ast.Ident)
		return ok && id.Name == "_"
	}
	return false
}

// specObject returns the variable object chain initializes in a `var`
// declaration.
func specObject(p *Pass, spec *ast.ValueSpec, chain ast.Node) types.Object {
	for i, v := range spec.Values {
		if v != chain || i >= len(spec.Names) {
			continue
		}
		if spec.Names[i].Name == "_" {
			return nil
		}
		return p.Info.Defs[spec.Names[i]]
	}
	return nil
}
