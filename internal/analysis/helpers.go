package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// isFloat reports whether t's core type is a floating-point scalar
// (untyped float constants included).
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isErrorType reports whether t implements the built-in error
// interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errIface)
}

// objectOf resolves an identifier or selector expression to the object
// it names, unwrapping parentheses.
func objectOf(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

// sentinelError resolves e to a package-level sentinel error variable —
// an exported error-typed var named Err* (or EOF, after io.EOF) — and
// returns it, or nil. These are exactly the values that must be matched
// with errors.Is, never ==, because the pipeline wraps them with
// fmt.Errorf("...: %w", ...) on the way up.
func sentinelError(info *types.Info, e ast.Expr) *types.Var {
	v, ok := objectOf(info, e).(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !isErrorType(v.Type()) {
		return nil
	}
	name := v.Name()
	if name == "EOF" {
		return v
	}
	if strings.HasPrefix(name, "Err") && len(name) > 3 {
		return v
	}
	return nil
}

// isUntypedNil reports whether e is the predeclared nil.
func isUntypedNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok {
		return false
	}
	b, isBasic := tv.Type.(*types.Basic)
	return isBasic && b.Kind() == types.UntypedNil
}

// constValue returns the expression's constant value, or nil.
func constValue(info *types.Info, e ast.Expr) constant.Value {
	if tv, ok := info.Types[ast.Unparen(e)]; ok {
		return tv.Value
	}
	return nil
}

// isZeroConst reports whether e is a numeric constant equal to zero.
func isZeroConst(info *types.Info, e ast.Expr) bool {
	v := constValue(info, e)
	if v == nil {
		return false
	}
	switch v.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(v) == 0
	}
	return false
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// (function or method), or nil for calls through function-typed values,
// conversions, and built-ins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	fn, _ := objectOf(info, call.Fun).(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the named function of the named
// package (matched on full package path).
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// namedBase unwraps pointers and returns the named type of t, or nil.
func namedBase(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// isGuardType reports whether t is (a pointer to) guard.Guard from the
// repo's internal/guard package. Matching on the path suffix keeps the
// analyzer usable from golden-test fixtures, which import the real
// package.
func isGuardType(t types.Type) bool {
	n := namedBase(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/guard") && obj.Name() == "Guard"
}

// exprText renders an expression to compact source form for message
// text and structural comparison.
func exprText(e ast.Expr) string { return types.ExprString(e) }

// isComparison reports whether op is an ordering or equality operator.
func isComparison(op token.Token) bool {
	switch op {
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		return true
	}
	return false
}
