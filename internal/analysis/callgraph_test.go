package analysis

import (
	"strings"
	"testing"
)

// loadRealGraph builds the call graph over the production packages the
// reachability contracts are written for.
func loadRealGraph(t *testing.T) *CallGraph {
	t.Helper()
	pkgs, err := Load(".",
		"dfpc/internal/core",
		"dfpc/internal/svm",
		"dfpc/internal/mining",
		"dfpc/internal/dataset",
		"dfpc/internal/discretize",
		"dfpc/internal/patmatch",
	)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	for _, p := range pkgs {
		if len(p.Errs) > 0 {
			t.Fatalf("package %s failed to load: %v", p.ImportPath, p.Errs)
		}
	}
	return BuildCallGraph(pkgs)
}

// TestCallGraphReachability pins the two reachability sets on the real
// pipeline: the analyzers' soundness rests on these memberships, so a
// refactor that silently drops (say) the SVM predictor out of the hot
// set must fail here, not ship.
func TestCallGraphReachability(t *testing.T) {
	g := loadRealGraph(t)

	inDeterminism := []string{
		"(*dfpc/internal/core.Pipeline).Fit",
		"(*dfpc/internal/core.Pipeline).FitContext",
		"dfpc/internal/mining.FPClose",
		"dfpc/internal/svm.Train", // training is part of Fit's cone
	}
	for _, key := range inDeterminism {
		if !g.Determinism[key] {
			t.Errorf("%s not in the determinism domain", key)
		}
	}

	inHotPath := []string{
		"(*dfpc/internal/core.Pipeline).Predict",
		"(*dfpc/internal/core.Pipeline).PredictContext",
		// Reached only through core's predictor interface — pins the
		// CHA edge for interface method calls.
		"(*dfpc/internal/svm.Model).Predict",
		// The per-row feature-space mapping every prediction goes
		// through, and the compiled trie walk under it.
		"(*dfpc/internal/core.Pipeline).featureVectorInto",
		"(*dfpc/internal/patmatch.Matcher).Match",
		"(*dfpc/internal/patmatch.Matcher).MatchAppend",
		// The streaming row encoder of the batch predict path.
		"(*dfpc/internal/core.rowCoder).encode",
	}
	for _, key := range inHotPath {
		if !g.HotPath[key] {
			t.Errorf("%s not in the hot path", key)
		}
	}

	// Training must not be dragged into the serving cone: if svm.Train
	// ever shows up here, hotalloc would start flagging fit-time code
	// and the zero-finding sweep becomes meaningless.
	if g.HotPath["dfpc/internal/svm.Train"] {
		t.Error("svm.Train is in the hot path; the Predict cone leaked into training")
	}
	if g.HotPath["(*dfpc/internal/core.Pipeline).Fit"] {
		t.Error("Pipeline.Fit is in the hot path; the Predict cone leaked into training")
	}
}

// TestCallGraphEdges spot-checks direct edges so reachability failures
// are debuggable at the edge level.
func TestCallGraphEdges(t *testing.T) {
	g := loadRealGraph(t)
	callees := g.Callees("(*dfpc/internal/core.Pipeline).Fit")
	if len(callees) == 0 {
		t.Fatal("Pipeline.Fit has no outgoing edges")
	}
	found := false
	for _, c := range callees {
		if strings.Contains(c, "FitContext") {
			found = true
		}
	}
	if !found {
		t.Errorf("Pipeline.Fit does not call FitContext; callees: %v", callees)
	}
}

// TestDomainHashStable pins that DomainHash is deterministic across
// graph builds — the cache key depends on it.
func TestDomainHashStable(t *testing.T) {
	g1 := loadRealGraph(t)
	g2 := loadRealGraph(t)
	for _, pkg := range []string{"dfpc/internal/core", "dfpc/internal/svm"} {
		h1, h2 := g1.DomainHash(pkg), g2.DomainHash(pkg)
		if h1 == "" {
			t.Errorf("DomainHash(%s) is empty", pkg)
		}
		if h1 != h2 {
			t.Errorf("DomainHash(%s) differs across builds:\n%s\n%s", pkg, h1, h2)
		}
	}
	if g1.DomainHash("dfpc/internal/core") == g1.DomainHash("dfpc/internal/svm") {
		t.Error("DomainHash does not distinguish packages")
	}
}
