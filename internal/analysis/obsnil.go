package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// nilSafeTypes maps each instrumentation package to the API types
// whose exported pointer methods promise nil-receiver safety. The obs
// set is the original contract; telemetry extends it to the debug
// server and session plumbing (Flags is deliberately absent — it is a
// value-populated flag carrier, never handed around as a possibly-nil
// pointer); modelobs extends it to drift tracking, where a nil Tracker
// is the drift-off value every Predict call threads unconditionally.
var nilSafeTypes = map[string]map[string]bool{
	"obs": {"Observer": true, "Span": true, "Counter": true, "Gauge": true,
		"Histogram": true},
	"telemetry": {"Server": true, "Session": true, "Journal": true,
		"RunBuffer": true},
	"modelobs": {"Tracker": true, "Baseline": true, "Sketch": true},
}

// Obsnil enforces the producer side of the instrumentation nil
// contract: every exported pointer-receiver method on the obs and
// telemetry API types above must be safe on a nil receiver, because
// all instrumented code threads possibly-nil handles unconditionally
// and the instrumentation-off path must stay a nil check away from
// free. A single method that forgets the guard turns "observability
// off" into a panic in production.
var Obsnil = &Analyzer{
	Name: "obsnil",
	Doc: "require the nil-receiver fast path on exported obs/telemetry/modelobs API methods\n\n" +
		"Exported pointer-receiver methods on obs.Observer/Span/Counter/Gauge/\n" +
		"Histogram, telemetry.Server/Session/Journal/RunBuffer, and\n" +
		"modelobs.Tracker/Baseline/Sketch must either begin with an\n" +
		"`if recv == nil { return ... }` guard (possibly ||-joined with further\n" +
		"conditions) or touch the receiver only through nil-safe means (nil\n" +
		"comparisons and calls to other exported methods of these types). This\n" +
		"keeps every call site free to pass a nil handle — the repo-wide idiom\n" +
		"for instrumentation-off and drift-off.",
	Default:  true,
	Packages: []string{"obs", "telemetry", "modelobs"},
	Run:      runObsnil,
}

func runObsnil(p *Pass) {
	pkgName := strings.TrimSuffix(p.Pkg.Name(), "_test")
	typeSet := nilSafeTypes[pkgName]
	if typeSet == nil {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			recv := receiverIdent(p, fd, typeSet)
			if recv == nil {
				continue
			}
			if startsWithNilGuard(p, fd, recv) {
				continue
			}
			if receiverUsedNilSafely(p, fd, recv) {
				continue
			}
			p.Reportf(fd.Name.Pos(),
				"exported %s method %s dereferences its receiver without the nil guard; start with `if %s == nil { return ... }` to keep the instrumentation-off path free",
				pkgName, fd.Name.Name, recv.Name)
		}
	}
}

// receiverIdent returns the named pointer receiver of fd when its base
// type is one of the package's nil-safe types.
func receiverIdent(p *Pass, fd *ast.FuncDecl, typeSet map[string]bool) *ast.Ident {
	if fd.Recv == nil || len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return nil
	}
	star, ok := fd.Recv.List[0].Type.(*ast.StarExpr)
	if !ok {
		return nil
	}
	base, ok := ast.Unparen(star.X).(*ast.Ident)
	if !ok || !typeSet[base.Name] {
		return nil
	}
	return fd.Recv.List[0].Names[0]
}

// startsWithNilGuard reports whether the method body's first statement
// is `if recv == nil { ...; return ... }`, or an ||-chain containing
// that comparison (`if recv == nil || other { return }`) — either way
// a nil receiver is guaranteed to take the return.
func startsWithNilGuard(p *Pass, fd *ast.FuncDecl, recv *ast.Ident) bool {
	if len(fd.Body.List) == 0 {
		return true // empty body cannot dereference anything
	}
	ifStmt, ok := fd.Body.List[0].(*ast.IfStmt)
	if !ok || ifStmt.Init != nil {
		return false
	}
	if !condImpliesNilReturn(p, ifStmt.Cond, recv) {
		return false
	}
	n := len(ifStmt.Body.List)
	if n == 0 {
		return false
	}
	_, returns := ifStmt.Body.List[n-1].(*ast.ReturnStmt)
	return returns
}

// condImpliesNilReturn reports whether cond is true whenever the
// receiver is nil: the `recv == nil` comparison itself, or an ||
// disjunction with such a branch. (An && conjunction does not qualify
// — a nil receiver could still fall through on the other operand.)
func condImpliesNilReturn(p *Pass, cond ast.Expr, recv *ast.Ident) bool {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LOR:
			return condImpliesNilReturn(p, e.X, recv) || condImpliesNilReturn(p, e.Y, recv)
		case token.EQL:
			return isReceiverUse(p, e.X, recv) && isUntypedNil(p.Info, e.Y) ||
				isReceiverUse(p, e.Y, recv) && isUntypedNil(p.Info, e.X)
		}
	}
	return false
}

// isReceiverUse reports whether e is an identifier resolving to the
// receiver object.
func isReceiverUse(p *Pass, e ast.Expr, recv *ast.Ident) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && p.Info.ObjectOf(id) == p.Info.ObjectOf(recv)
}

// isNilSafeNamed reports whether the named type belongs to a package's
// nil-safe API set.
func isNilSafeNamed(pkg *types.Package, typeName string) bool {
	if pkg == nil {
		return false
	}
	set := nilSafeTypes[strings.TrimSuffix(pkg.Name(), "_test")]
	return set != nil && set[typeName]
}

// receiverUsedNilSafely reports whether every use of the receiver in
// the body is nil-safe: a nil comparison, or the receiver of a call to
// an exported method on one of the package's nil-safe types (those
// methods carry their own guard — this analyzer checks them).
func receiverUsedNilSafely(p *Pass, fd *ast.FuncDecl, recv *ast.Ident) bool {
	recvObj := p.Info.ObjectOf(recv)
	safe := map[ast.Node]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op == token.EQL || n.Op == token.NEQ {
				if isUntypedNil(p.Info, n.X) || isUntypedNil(p.Info, n.Y) {
					safe[ast.Unparen(n.X)] = true
					safe[ast.Unparen(n.Y)] = true
				}
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.IsExported() {
				if base := namedBase(p.TypeOf(sel.X)); base != nil && isNilSafeNamed(base.Obj().Pkg(), base.Obj().Name()) {
					safe[ast.Unparen(sel.X)] = true
				}
			}
		}
		return true
	})
	ok := true
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if !ok {
			return false
		}
		if id, isIdent := n.(*ast.Ident); isIdent && p.Info.ObjectOf(id) == recvObj && !safe[n] {
			ok = false
			return false
		}
		return true
	})
	return ok
}
