package analysis

import (
	"go/ast"
	"go/token"
)

// obsNilTypes are the obs API types whose pointer methods promise
// nil-receiver safety.
var obsNilTypes = map[string]bool{"Observer": true, "Span": true, "Counter": true, "Gauge": true}

// Obsnil enforces the producer side of the obs package's core
// contract: every exported pointer-receiver method on Observer, Span,
// Counter, and Gauge must be safe on a nil receiver, because all
// instrumented code threads a possibly-nil observer unconditionally and
// the instrumentation-off path must stay a nil check away from free. A
// single method that forgets the guard turns "observability off" into a
// panic in production.
var Obsnil = &Analyzer{
	Name: "obsnil",
	Doc: "require the nil-receiver fast path on exported obs API methods\n\n" +
		"Exported pointer-receiver methods on obs.Observer/Span/Counter/Gauge\n" +
		"must either begin with the `if recv == nil { return ... }` guard or\n" +
		"touch the receiver only through nil-safe means (nil comparisons and\n" +
		"calls to other exported methods of these types). This keeps every\n" +
		"call site free to pass a nil observer — the repo-wide idiom for\n" +
		"instrumentation-off.",
	Default:  true,
	Packages: []string{"obs"},
	Run:      runObsnil,
}

func runObsnil(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			recv := receiverIdent(p, fd)
			if recv == nil {
				continue
			}
			if startsWithNilGuard(p, fd, recv) {
				continue
			}
			if receiverUsedNilSafely(p, fd, recv) {
				continue
			}
			p.Reportf(fd.Name.Pos(),
				"exported obs method %s dereferences its receiver without the nil guard; start with `if %s == nil { return ... }` to keep the instrumentation-off path free",
				fd.Name.Name, recv.Name)
		}
	}
}

// receiverIdent returns the named pointer receiver of fd when its base
// type is one of the nil-safe obs types.
func receiverIdent(p *Pass, fd *ast.FuncDecl) *ast.Ident {
	if fd.Recv == nil || len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return nil
	}
	star, ok := fd.Recv.List[0].Type.(*ast.StarExpr)
	if !ok {
		return nil
	}
	base, ok := ast.Unparen(star.X).(*ast.Ident)
	if !ok || !obsNilTypes[base.Name] {
		return nil
	}
	return fd.Recv.List[0].Names[0]
}

// startsWithNilGuard reports whether the method body's first statement
// is `if recv == nil { ...; return ... }`.
func startsWithNilGuard(p *Pass, fd *ast.FuncDecl, recv *ast.Ident) bool {
	if len(fd.Body.List) == 0 {
		return true // empty body cannot dereference anything
	}
	ifStmt, ok := fd.Body.List[0].(*ast.IfStmt)
	if !ok || ifStmt.Init != nil {
		return false
	}
	cond, ok := ifStmt.Cond.(*ast.BinaryExpr)
	if !ok || cond.Op != token.EQL {
		return false
	}
	if !(isReceiverUse(p, cond.X, recv) && isUntypedNil(p.Info, cond.Y) ||
		isReceiverUse(p, cond.Y, recv) && isUntypedNil(p.Info, cond.X)) {
		return false
	}
	n := len(ifStmt.Body.List)
	if n == 0 {
		return false
	}
	_, returns := ifStmt.Body.List[n-1].(*ast.ReturnStmt)
	return returns
}

// isReceiverUse reports whether e is an identifier resolving to the
// receiver object.
func isReceiverUse(p *Pass, e ast.Expr, recv *ast.Ident) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && p.Info.ObjectOf(id) == p.Info.ObjectOf(recv)
}

// receiverUsedNilSafely reports whether every use of the receiver in
// the body is nil-safe: a nil comparison, or the receiver of a call to
// an exported method on one of the nil-safe obs types (those methods
// carry their own guard — this analyzer checks them).
func receiverUsedNilSafely(p *Pass, fd *ast.FuncDecl, recv *ast.Ident) bool {
	recvObj := p.Info.ObjectOf(recv)
	safe := map[ast.Node]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op == token.EQL || n.Op == token.NEQ {
				if isUntypedNil(p.Info, n.X) || isUntypedNil(p.Info, n.Y) {
					safe[ast.Unparen(n.X)] = true
					safe[ast.Unparen(n.Y)] = true
				}
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.IsExported() {
				if base := namedBase(p.TypeOf(sel.X)); base != nil && obsNilTypes[base.Obj().Name()] {
					safe[ast.Unparen(sel.X)] = true
				}
			}
		}
		return true
	})
	ok := true
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if !ok {
			return false
		}
		if id, isIdent := n.(*ast.Ident); isIdent && p.Info.ObjectOf(id) == recvObj && !safe[n] {
			ok = false
			return false
		}
		return true
	})
	return ok
}
