package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRegistryComplete enforces the per-analyzer shipping checklist:
// every analyzer registered in All must have golden fixtures under
// testdata/src/<name>/, a row in DESIGN.md, and a section in
// docs/analyzers.md. An analyzer without fixtures is untested; one
// without docs is undiscoverable.
func TestRegistryComplete(t *testing.T) {
	if len(All) != 13 {
		t.Errorf("registry has %d analyzers, want 13 (update this test and the docs together)", len(All))
	}

	seen := map[string]bool{}
	for _, a := range All {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing a name, doc, or run function", a)
		}
		if seen[a.Name] {
			t.Errorf("analyzer %q registered twice", a.Name)
		}
		seen[a.Name] = true

		fixtures := filepath.Join("testdata", "src", a.Name)
		if fi, err := os.Stat(fixtures); err != nil || !fi.IsDir() {
			t.Errorf("analyzer %q has no golden fixtures at %s", a.Name, fixtures)
		}
	}

	for _, doc := range []string{
		filepath.Join("..", "..", "DESIGN.md"),
		filepath.Join("..", "..", "docs", "analyzers.md"),
	} {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("read %s: %v", doc, err)
		}
		text := string(data)
		for _, a := range All {
			if !strings.Contains(text, a.Name) {
				t.Errorf("analyzer %q is not documented in %s", a.Name, doc)
			}
		}
	}
}
