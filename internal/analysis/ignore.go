package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignorePrefix introduces a suppression comment:
//
//	//vet:ignore analyzer1[,analyzer2...] reason for the exception
//
// The comment suppresses matching diagnostics on its own line and on
// the line directly below it (covering both trailing and standalone
// placement). The reason is free text; by convention it is mandatory —
// a suppression that cannot say why it exists should be a fix instead.
const ignorePrefix = "//vet:ignore"

// ignoreIndex maps analyzer name → file → set of suppressed lines.
type ignoreIndex map[string]map[string]map[int]bool

func (ix ignoreIndex) suppressed(analyzer string, pos token.Position) bool {
	return ix[analyzer][pos.Filename][pos.Line]
}

func (ix ignoreIndex) add(analyzer, file string, line int) {
	byFile := ix[analyzer]
	if byFile == nil {
		byFile = map[string]map[int]bool{}
		ix[analyzer] = byFile
	}
	lines := byFile[file]
	if lines == nil {
		lines = map[int]bool{}
		byFile[file] = lines
	}
	lines[line] = true
}

// parseIgnore splits a //vet:ignore comment into the analyzer names it
// names; ok is false when the comment is not an ignore directive.
func parseIgnore(text string) (names []string, ok bool) {
	rest, found := strings.CutPrefix(text, ignorePrefix)
	if !found || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
		return nil, false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, false
	}
	for _, n := range strings.Split(fields[0], ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names, len(names) > 0
}

// buildIgnoreIndex scans every comment in the files for //vet:ignore
// directives.
func buildIgnoreIndex(fset *token.FileSet, files []*ast.File) ignoreIndex {
	ix := ignoreIndex{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseIgnore(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, name := range names {
					ix.add(name, pos.Filename, pos.Line)
					ix.add(name, pos.Filename, pos.Line+1)
				}
			}
		}
	}
	return ix
}
