package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignorePrefix introduces a suppression comment:
//
//	//vet:ignore analyzer1[,analyzer2...] reason for the exception
//
// The comment suppresses matching diagnostics on its own line and on
// the line directly below it (covering both trailing and standalone
// placement). The reason is free text; by convention it is mandatory —
// a suppression that cannot say why it exists should be a fix instead.
const ignorePrefix = "//vet:ignore"

// ignoreIndex maps analyzer name → file → set of suppressed lines.
type ignoreIndex map[string]map[string]map[int]bool

func (ix ignoreIndex) suppressed(analyzer string, pos token.Position) bool {
	return ix[analyzer][pos.Filename][pos.Line]
}

func (ix ignoreIndex) add(analyzer, file string, line int) {
	byFile := ix[analyzer]
	if byFile == nil {
		byFile = map[string]map[int]bool{}
		ix[analyzer] = byFile
	}
	lines := byFile[file]
	if lines == nil {
		lines = map[int]bool{}
		byFile[file] = lines
	}
	lines[line] = true
}

// A Waiver is one //vet:ignore directive found in a loaded package,
// surfaced by `dfpc-vet -waivers` so every sanctioned exception in the
// tree is enumerable with its justification. A waiver with an empty
// Reason is a policy violation (check.sh fails on it): a suppression
// that cannot say why it exists should be a fix instead.
type Waiver struct {
	File      string   `json:"file"`
	Line      int      `json:"line"`
	Analyzers []string `json:"analyzers"`
	Reason    string   `json:"reason"`
}

// parseIgnore splits a //vet:ignore comment into the analyzer names it
// names and the free-text reason after them; ok is false when the
// comment is not an ignore directive.
func parseIgnore(text string) (names []string, reason string, ok bool) {
	rest, found := strings.CutPrefix(text, ignorePrefix)
	if !found || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
		return nil, "", false
	}
	rest = strings.TrimSpace(rest)
	nameField, reason, _ := strings.Cut(rest, " ")
	if nameField == "" {
		return nil, "", false
	}
	for _, n := range strings.Split(nameField, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names, strings.TrimSpace(reason), len(names) > 0
}

// buildIgnoreIndex scans every comment in the files for //vet:ignore
// directives, returning both the suppression index and the flat waiver
// list for reporting.
func buildIgnoreIndex(fset *token.FileSet, files []*ast.File) (ignoreIndex, []Waiver) {
	ix := ignoreIndex{}
	var waivers []Waiver
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, reason, ok := parseIgnore(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, name := range names {
					ix.add(name, pos.Filename, pos.Line)
					ix.add(name, pos.Filename, pos.Line+1)
				}
				waivers = append(waivers, Waiver{
					File:      pos.Filename,
					Line:      pos.Line,
					Analyzers: names,
					Reason:    reason,
				})
			}
		}
	}
	return ix, waivers
}

// Waivers returns the //vet:ignore directives found in the package's
// files, in file order.
func (p *Package) Waivers() []Waiver { return p.waivers }
