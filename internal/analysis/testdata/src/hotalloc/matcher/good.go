// Negative fixtures: the disciplined matcher shapes are legal on the
// hot path, and compile-time allocation is legal off it.
package matcher

// scratch models patmatch.Scratch: buffers owned by the caller, grown
// once, reused every walk.
type scratch struct {
	stack   []int32
	matched []int32
}

// compiled carries a second trie so this file can declare its own hot
// Match without colliding with the positive fixture's.
type compiled struct{ t trie }

// Match is hot by name but allocation-free by discipline: it appends
// into the dst parameter (caller-owns-capacity Into idiom), into [:0]
// reslices of the caller's scratch buffers, and into struct fields —
// none of which are this function's allocations.
func (c *compiled) Match(dst []int32, tx []int32, s *scratch) []int32 {
	s.matched = s.matched[:0]
	stack := s.stack[:0]
	stack = append(stack, 0)
	for len(stack) > 0 {
		node := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for ci := c.t.childStart[node]; ci < c.t.childStart[node+1]; ci++ {
			stack = append(stack, ci)
			s.matched = append(s.matched, c.t.edgeItem[ci])
			dst = append(dst, c.t.edgeItem[ci])
		}
	}
	s.stack = stack
	return dst
}

// Compile is cold: trie construction happens once at fit time, where
// maps and growing slices are exactly right.
func Compile(patterns [][]int32) *trie {
	index := map[int32]int{}
	out := &trie{}
	for _, p := range patterns {
		for _, it := range p {
			if _, ok := index[it]; !ok {
				index[it] = len(out.edgeItem)
				out.edgeItem = append(out.edgeItem, it)
			}
		}
	}
	return out
}
