// Positive fixtures: the compiled pattern matcher's walk is a hot-path
// root by bare name (Match, featureVectorInto) — allocations inside it
// must be flagged even though no Predict entry point exists in this
// package. This is the regression the cone extension guards: an edit
// that reintroduces per-row garbage into the matcher breaks the
// zero-allocs-per-row predict budget.
package matcher

type trie struct {
	childStart []int32
	edgeItem   []int32
}

// Match walks the trie against one transaction. The allocation shapes
// below are exactly the ones a naive rewrite would introduce.
func (t *trie) Match(tx []int32) []int32 {
	var out []int32
	for _, it := range tx {
		frame := make([]int32, 2) // want "make.slice. inside a loop in hot-path function Match"
		_ = frame
		out = append(out, it) // want "append to un-presized local slice out inside a loop in hot-path function Match"
	}
	seen := map[int32]bool{} // want "map literal in hot-path function Match"
	_ = seen
	return out
}

// featureVectorInto maps a transaction into the fitted feature space;
// it is likewise a root by name.
func featureVectorInto(dst []int32, tx []int32) []int32 {
	index := make(map[int32]int) // want "make.map. in hot-path function featureVectorInto"
	_ = index
	return append(dst, tx...)
}
