// Negative fixtures: the same shapes are legal off the hot path, and
// the disciplined variants are legal on it.
package hot

// Train is cold: fit-time allocation is exactly where maps and
// formatting belong.
func Train(rows [][]int32) map[int32]int {
	counts := map[int32]int{}
	for _, r := range rows {
		for _, v := range r {
			counts[v]++
		}
	}
	return counts
}

// topK is hot (Predict calls it) but presizes its output, so the
// appends grow into reserved space.
func topK(m *Model, row []int32) []int32 {
	out := make([]int32, 0, len(row))
	for _, v := range row {
		out = append(out, v)
	}
	tag(m, out)
	return out
}

// tag is hot but only passes pointers and constants to the interface
// sink: pointers fit in the interface word and constants are interned.
func tag(m *Model, out []int32) {
	const label = "top" + "K"
	sink(m)
	sink(label)
}
