// Positive fixtures: per-call allocation shapes inside the predict
// cone. Predict and ExplainPredict are roots by name; describe and
// explainRow are pulled in by reachability.
package hot

import "fmt"

type Model struct{ labels []string }

func sink(v any) {}

// Predict formats per call and fans out to the helpers below.
func Predict(m *Model, row []int32) string {
	key := fmt.Sprintf("r%d", len(row)) // want "fmt.Sprintf in hot-path function Predict"
	_ = key
	_ = topK(m, row)
	return describe(m, row)
}

// describe concentrates the loop-allocation shapes.
func describe(m *Model, row []int32) string {
	name := m.labels[0] + ":" // want "string concatenation in hot-path function describe"
	counts := map[int32]int{} // want "map literal in hot-path function describe"
	var out []int32
	for _, v := range row {
		counts[v]++
		out = append(out, v)   // want "append to un-presized local slice out"
		buf := make([]byte, 8) // want "make.slice. inside a loop"
		pair := []int32{v, v}  // want "slice literal inside a loop"
		_, _ = buf, pair
	}
	_ = counts
	return name
}

// ExplainPredict boxes a concrete int and builds a capturing closure.
func ExplainPredict(m *Model, row []int32) int {
	sink(len(row)) // want "boxes a non-pointer int into an interface"
	return explainRow(m, row)()
}

func explainRow(m *Model, row []int32) func() int {
	total := 0
	f := func() int { // want "closure in hot-path function explainRow captures total"
		total += len(row)
		return total
	}
	return f
}
