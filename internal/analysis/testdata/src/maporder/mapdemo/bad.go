// Positive fixtures: map iteration order escaping unsorted — every
// escape route the analyzer knows.
package mapdemo

import (
	"fmt"
	"io"
	"strings"
)

// keysOf collects map keys and never sorts them: the classic bug.
func keysOf(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "via append and no sort of out follows"
	}
	return out
}

// stream leaks the order to whoever is on the other end of the channel.
func stream(m map[string]int, ch chan<- string) {
	for k := range m {
		ch <- k // want "escapes on a channel send"
	}
}

// anyKey returns whichever entry the runtime visits first.
func anyKey(m map[string]int) string {
	for k := range m {
		return k // want "selects a run-dependent entry"
	}
	return ""
}

// dump writes lines in a different order every run.
func dump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want "escapes through fmt.Fprintf"
	}
}

// emit funnels the order through a writer method instead of fmt.
func emit(sb *strings.Builder, m map[int]string) {
	for _, v := range m {
		sb.WriteString(v) // want "escapes through WriteString"
	}
}

// derived shows taint propagating through an intermediate assignment:
// the line is built from k/v, so appending it leaks the order too.
func derived(m map[string]int) []string {
	var lines []string
	for k, v := range m {
		line := fmt.Sprintf("%s=%d", k, v)
		lines = append(lines, line) // want "via append and no sort of lines follows"
	}
	return lines
}
