// Negative fixtures: the sanctioned shapes — collect-then-sort and
// order-independent work stay silent.
package mapdemo

import (
	"fmt"
	"io"
	"sort"
)

// sortedKeys is the canonical fix: collect, then sort before use.
func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// total does order-independent accumulation; no order escapes.
func total(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// invert writes into another keyed structure — order-independent.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// dumpSorted iterates the sorted key slice, not the map.
func dumpSorted(w io.Writer, m map[string]int) {
	for _, k := range sortedKeys(m) {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

// bareCount ranges without variables: nothing order-dependent in scope.
func bareCount(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}
