// Negative fixtures: the sanctioned span-lifetime shapes.
package pipeline

import "dfpc/internal/obs"

// deferEnd is the canonical form.
func deferEnd(o *obs.Observer, n int) {
	sp := o.Start("work").Attr("rows", n)
	defer sp.End()
	_ = n
}

// chainedEnd ends inline on the Start expression itself.
func chainedEnd(o *obs.Observer) {
	o.Start("work").End()
}

// deferChain defers the whole chain.
func deferChain(o *obs.Observer) {
	defer o.Start("work").End()
}

// endLater ends through the variable after the work, with a chained
// Attr on the way out.
func endLater(o *obs.Observer, n int) {
	sp := o.Start("work")
	n *= 2
	sp.Attr("rows", n).End()
}

// multiPath ends the span on both the error and the success path, the
// shape core.FitContext uses.
func multiPath(o *obs.Observer, fail bool) error {
	sp := o.Start("work")
	if fail {
		sp.End()
		return errOp
	}
	sp.Attr("ok", 1).End()
	return nil
}

// reassigned reuses one variable for consecutive stages; each span is
// ended before the next Start.
func reassigned(o *obs.Observer) {
	sp := o.Start("stage-1")
	sp.End()
	sp = o.Start("stage-2")
	sp.End()
}

// closureEnd ends the span inside a deferred closure.
func closureEnd(o *obs.Observer) {
	sp := o.Start("work")
	defer func() { sp.End() }()
}

// escapes returns the span: the caller owns its lifetime.
func escapes(o *obs.Observer) *obs.Span {
	return o.Start("work")
}

// passedAlong hands the span to a helper that ends it.
func passedAlong(o *obs.Observer) {
	finish(o.Start("work"))
}

func finish(sp *obs.Span) { sp.End() }

type opError struct{}

func (opError) Error() string { return "op failed" }

var errOp error = opError{}
