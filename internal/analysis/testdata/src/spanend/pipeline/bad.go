// Positive fixtures: spans from obs.Start that never reach an End().
package pipeline

import "dfpc/internal/obs"

// discarded drops the span on the floor: the classic leak.
func discarded(o *obs.Observer) {
	o.Start("work") // want "span from obs.Start is discarded without End"
}

// discardedWithAttr still never ends — Attr returns the span, it does
// not close it.
func discardedWithAttr(o *obs.Observer, n int) {
	o.Start("work").Attr("rows", n) // want "span from obs.Start is discarded without End"
}

// deferredAttr defers the wrong call: the span is configured, never
// ended.
func deferredAttr(o *obs.Observer, n int) {
	defer o.Start("work").Attr("rows", n) // want "span from obs.Start is discarded without End"
}

// assignedNeverEnded binds the span but no path calls End on it.
func assignedNeverEnded(o *obs.Observer) int {
	sp := o.Start("work") // want "span assigned to sp has no End"
	_ = sp
	return 1
}

// blankAssign throws the span away explicitly.
func blankAssign(o *obs.Observer) {
	_ = o.Start("work") // want "span from obs.Start is discarded without End"
}

// onlyAttrLater configures the bound span but still never ends it.
func onlyAttrLater(o *obs.Observer, n int) {
	sp := o.Start("work") // want "span assigned to sp has no End"
	sp.Attr("rows", n)
}
