// Positive fixtures: rounding-fragile float equality in a bound-math
// package.
package measures

func eqParams(a, b float64) bool {
	return a == b // want "floating-point values compared with =="
}

func neqLiteral(x float64) bool {
	if x != 0.5 { // want "floating-point values compared with !="
		return false
	}
	return true
}

func eq32(a, b float32) bool {
	return a == b // want "floating-point values compared with =="
}

func mixedConst(x float64) bool {
	return x == 1 // want "floating-point values compared with =="
}
