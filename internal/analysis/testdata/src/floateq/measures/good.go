// Negative fixtures: the float comparisons that stay legal.
package measures

import "math"

func zeroChecks(num, den float64) float64 {
	// exact-zero checks express "structurally zero by construction".
	if den == 0 || num != 0 {
		return 0
	}
	return num / den
}

func nanIdiom(x float64) bool {
	return x != x // the NaN self-comparison idiom
}

func epsilon(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9
}

func ints(a, b int) bool {
	return a == b // integer equality is exact
}

func ordering(a, b float64) bool {
	return a < b || a >= b+1 // ordering comparisons are fine
}
