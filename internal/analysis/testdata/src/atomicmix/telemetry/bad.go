// Positive fixtures: mixed atomic/plain access and copied locks in a
// package named telemetry (the analyzer's scope).
package telemetry

import (
	"sync"
	"sync/atomic"
)

type counters struct {
	hits int64
}

// incr establishes hits as an atomic field.
func (c *counters) incr() {
	atomic.AddInt64(&c.hits, 1)
}

// snapshot reads the same field plainly: a torn read races incr.
func snapshot(c *counters) int64 {
	return c.hits // want "plain access races the atomic ones"
}

type Registry struct {
	mu    sync.Mutex
	names []string
}

// size copies the registry (and its mutex) into the receiver.
func (r Registry) size() int { // want "receiver of size passes .*Registry by value"
	return len(r.names)
}

// byValue copies it through a parameter.
func byValue(r Registry) int { // want "parameter of byValue passes .*Registry by value"
	return len(r.names)
}

// fork copies it through a dereference assignment.
func fork(r *Registry) int {
	snapshot := *r // want "assignment copies .*Registry by value"
	return len(snapshot.names)
}
