// Negative fixtures: typed atomics, consistently-locked fields, and
// pointer-shared lock carriers stay silent.
package telemetry

import (
	"sync"
	"sync/atomic"
)

type gauge struct {
	val atomic.Int64 // typed atomics cannot be accessed plainly
	mu  sync.Mutex
	max int64 // always under mu, never touched atomically
}

func (g *gauge) set(v int64) {
	g.val.Store(v)
	g.mu.Lock()
	if v > g.max {
		g.max = v
	}
	g.mu.Unlock()
}

func (g *gauge) peak() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.max
}

// newGauge shares the lock carrier by pointer from birth.
func newGauge() *gauge {
	return &gauge{}
}

// reset takes the pointer, so no lock state is forked.
func reset(g *gauge) {
	g.val.Store(0)
}
