// Positive fixtures: nondeterminism sources inside the determinism
// domain. Fit is a root by name; shuffle and mine are pulled into the
// domain by reachability.
package pipeline

import (
	"math/rand"
	"time"
)

type Model struct{ seed int64 }

// Fit seeds from the wall clock and launches an untracked goroutine.
func Fit(rows [][]int32) *Model {
	m := &Model{}
	m.seed = time.Now().UnixNano() // want "time.Now inside the determinism domain"
	shuffle(rows)
	go mine(rows) // want "goroutine launched inside the determinism domain"
	return m
}

// shuffle is reachable from Fit, so its rand use is in the domain.
func shuffle(rows [][]int32) {
	rand.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] }) // want "rand.Shuffle inside the determinism domain"
}

// mine is reached through the go statement; its select races two live
// channels, so which case fires depends on scheduling.
func mine(rows [][]int32) {
	done := make(chan struct{})
	errs := make(chan error)
	select { // want "select with 2 racing cases inside the determinism domain"
	case <-done:
	case <-errs:
	}
	_ = rows
}
