// Negative fixtures: the same constructs outside the domain, and the
// deterministic shapes that are legal inside it.
package pipeline

import (
	"sort"
	"time"
)

// Score is not a determinism root and nothing in the domain calls it,
// so timing it is fine.
func Score(m *Model, row []int32) time.Duration {
	start := time.Now()
	sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
	return time.Since(start)
}

// FitContext is a root; everything below it stays deterministic.
func FitContext(rows [][]int32) *Model {
	order(rows)
	v, _ := drain(nil)
	return &Model{seed: int64(v)}
}

// order sorts with an explicit comparator — deterministic by design.
func order(rows [][]int32) {
	sort.Slice(rows, func(i, j int) bool { return len(rows[i]) < len(rows[j]) })
}

// drain has one live case plus default: no race, just a non-blocking
// poll with a deterministic fallthrough.
func drain(ch <-chan int) (int, bool) {
	select {
	case v := <-ch:
		return v, true
	default:
		return 0, false
	}
}
