// Negative fixtures: reads, temp files, and append-only streams are
// all crash-safe (or not artifact writes at all) and stay unflagged.
package writer

import "os"

func readBack(path string) ([]byte, error) {
	return os.ReadFile(path)
}

func openForRead(path string) (*os.File, error) {
	return os.Open(path)
}

func tempThenRename(dir string) error {
	// The durable package's own building block: a temp file never
	// shadows a complete artifact.
	f, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	name := f.Name()
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(name, dir+"/final")
}

func appendOnly(path string) (*os.File, error) {
	// Append-only journals lose at most the in-flight line; they never
	// truncate history.
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// create is not os.Create: same selector name on a different package
// object stays unflagged.
type fakeOS struct{}

func (fakeOS) Create(string) error { return nil }

func localCreate(path string) error {
	var o fakeOS
	return o.Create(path)
}
