// Positive fixtures: in-place artifact writes that a crash can tear.
package writer

import "os"

func saveReport(path string, data []byte) error {
	f, err := os.Create(path) // want "os.Create writes the destination in place"
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(data)
	return err
}

func dumpBytes(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want "os.WriteFile writes the destination in place"
}

func aliasedCall(path string) {
	(os.Create)(path) // want "os.Create writes the destination in place"
}

func ignoredWithReason(path string, data []byte) error {
	//vet:ignore atomicwrite scratch file on a path nothing else reads
	return os.WriteFile(path, data, 0o600)
}
