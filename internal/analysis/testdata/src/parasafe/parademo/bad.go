// Positive fixtures: worker closures that write captured state without
// index partitioning — every shape the determinism contract forbids.
package parademo

import "dfpc/internal/parallel"

// sharedAppend races the slice header and scrambles result order.
func sharedAppend(xs []int) []int {
	var out []int
	_ = parallel.ForEach(4, len(xs), func(i int) error {
		out = append(out, xs[i]*2) // want "appends to captured slice out"
		return nil
	})
	return out
}

// sharedCounter loses increments at workers > 1.
func sharedCounter(n int) int {
	total := 0
	_ = parallel.ForEach(0, n, func(i int) error {
		total += i // want "writes captured variable total"
		return nil
	})
	return total
}

// sharedMap panics: concurrent map writes, even on distinct keys.
func sharedMap(keys []string) map[string]int {
	m := map[string]int{}
	_ = parallel.ForEach(2, len(keys), func(i int) error {
		m[keys[i]] = i // want "writes captured map m"
		return nil
	})
	return m
}

// wrongIndex writes through a cursor instead of the worker index.
func wrongIndex(xs []int) []int {
	out := make([]int, len(xs))
	pos := 0
	_ = parallel.ForEach(2, len(xs), func(i int) error {
		out[pos] = xs[i] // want "at an index not derived from the worker index"
		pos++            // want "writes captured variable pos"
		return nil
	})
	return out
}

type tally struct{ hits int }

// sharedField mutates one struct from every worker.
func sharedField(n int) int {
	var t tally
	_ = parallel.ForEach(0, n, func(i int) error {
		t.hits++ // want "writes captured variable t"
		return nil
	})
	return t.hits
}

// insideMap: the contract covers Map workers identically.
func insideMap(xs []int) ([]int, error) {
	seen := 0
	return parallel.Map(4, len(xs), func(i int) (int, error) {
		seen++ // want "writes captured variable seen"
		return xs[i] + seen, nil
	})
}

// nestedClosure: a plain (non-worker) closure inside the worker still
// runs on the worker goroutine, so its captured writes are flagged too.
func nestedClosure(xs []int) int {
	total := 0
	_ = parallel.ForEach(0, len(xs), func(i int) error {
		add := func(v int) {
			total += v // want "writes captured variable total"
		}
		add(xs[i])
		return nil
	})
	return total
}
