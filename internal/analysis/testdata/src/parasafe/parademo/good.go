// Negative fixtures: the sanctioned shapes — index-partitioned slots,
// closure-local state, parallel.Map, and merges after the pool returns.
package parademo

import "dfpc/internal/parallel"

// partitioned is the canonical shape: each worker writes only its own
// out[i] slot; locals stay local.
func partitioned(xs []int) ([]int, error) {
	out := make([]int, len(xs))
	err := parallel.ForEach(0, len(xs), func(i int) error {
		local := xs[i] * 2
		local++
		out[i] = local
		return nil
	})
	return out, err
}

// viaMap delegates the slot bookkeeping to parallel.Map.
func viaMap(xs []int) ([]int, error) {
	return parallel.Map[int](4, len(xs), func(i int) (int, error) {
		return xs[i] * 2, nil
	})
}

type cell struct {
	n int
	m map[string]int
}

// structSlot: field writes and even map writes are fine when the cell
// itself is selected by the worker index — distinct memory per worker.
func structSlot(xs []int) []cell {
	out := make([]cell, len(xs))
	_ = parallel.ForEach(2, len(xs), func(i int) error {
		out[i].n = xs[i]
		out[i].m = map[string]int{}
		out[i].m["v"] = xs[i]
		return nil
	})
	return out
}

// derivedIndex: any index expression that uses the worker index
// partitions (offsets, strides, chunk bounds).
func derivedIndex(xs []int, base int) []int {
	out := make([]int, 2*len(xs)+base)
	_ = parallel.ForEach(0, len(xs), func(i int) error {
		out[base+2*i] = xs[i]
		return nil
	})
	return out
}

// mergeAfter: the shared accumulation happens sequentially, after the
// pool has returned — exactly the pattern the analyzer steers toward.
func mergeAfter(xs []int) int {
	parts := make([]int, len(xs))
	_ = parallel.ForEach(0, len(xs), func(i int) error {
		parts[i] = xs[i]
		return nil
	})
	total := 0
	for _, v := range parts {
		total += v
	}
	return total
}
