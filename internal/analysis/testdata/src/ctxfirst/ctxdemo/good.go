// Negative fixtures: ctx-first signatures, the sanctioned-carrier
// suppression, and context-free code.
package ctxdemo

import "context"

// okCarrier shows the sanctioned-carrier escape hatch: the suppression
// names the analyzer and says why.
type okCarrier struct {
	name string
	//vet:ignore ctxfirst fixture for the sanctioned-carrier idiom
	saved context.Context
}

func RunAllContext(ctx context.Context, n int) error {
	_ = n
	return ctx.Err()
}

func firstParam(ctx context.Context, a int) int {
	_ = ctx
	return a
}

type OkRunner interface {
	FitContext(ctx context.Context, d string) error
}

func plain(a, b int) int { return a + b }

func useOk(c okCarrier, r OkRunner) (okCarrier, OkRunner) { return c, r }
