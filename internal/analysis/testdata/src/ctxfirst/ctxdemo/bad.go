// Positive fixtures: misplaced contexts.
package ctxdemo

import "context"

type holder struct {
	name string
	ctx  context.Context // want "struct stores a context.Context field"
}

func RunContext(n int, ctx context.Context) error { // want "exported RunContext is a .Context API but does not take context.Context as its first parameter"
	_ = n
	return ctx.Err()
}

func helper(a int, ctx context.Context) int { // want "context.Context must be the first parameter of helper, not parameter 2"
	_ = ctx
	return a
}

type Runner interface {
	FitContext(d string, ctx context.Context) error // want "exported FitContext is a .Context API but does not take context.Context as its first parameter"
}

func use(h holder, r Runner) (holder, Runner) { return h, r }
