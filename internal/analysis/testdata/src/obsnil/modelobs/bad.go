// Positive fixtures: a modelobs-shaped drift API whose exported
// methods forget the nil-receiver fast path. A nil Tracker is the
// drift-off value threaded through every Predict call, so any of these
// would panic the moment drift tracking is left disabled.
package modelobs

type Tracker struct{ predictions int64 }

// ObserveRow dereferences the receiver with no guard.
func (t *Tracker) ObserveRow(class int) { // want "exported modelobs method ObserveRow dereferences its receiver without the nil guard"
	t.predictions++
	_ = class
}

type Sketch struct{ total int64 }

// AndGuard uses && — a nil receiver with live=false falls through to
// the dereference, so the guard does not qualify.
func (s *Sketch) AndGuard(live bool) { // want "exported modelobs method AndGuard dereferences its receiver without the nil guard"
	if s == nil && live {
		return
	}
	s.total++
}

type Baseline struct{ rows int }

// GuardNoReturn checks nil but keeps going, so the dereference below
// is still reachable on a nil receiver.
func (b *Baseline) GuardNoReturn() int { // want "exported modelobs method GuardNoReturn dereferences its receiver without the nil guard"
	if b == nil {
		_ = 0
	}
	return b.rows
}
