// Negative fixtures: the nil-safe shapes the modelobs API uses.
package modelobs

// Valid guards first, then inspects: nil is simply "no baseline".
func (b *Baseline) Valid() bool {
	if b == nil {
		return false
	}
	return b.rows > 0
}

// Rows has the canonical guard as its first statement.
func (b *Baseline) Rows() int {
	if b == nil {
		return 0
	}
	return b.rows
}

// Observe guards with an ||-joined condition; a nil receiver always
// takes the return.
func (s *Sketch) Observe(class int) bool {
	if s == nil || class < 0 {
		return false
	}
	s.total++
	return true
}

// Report guards and returns the nil-means-disabled pair.
func (t *Tracker) Report() (int64, error) {
	if t == nil {
		return 0, nil
	}
	return t.predictions, nil
}

// unexportedBump is out of scope: the contract covers the exported API
// surface only.
func (t *Tracker) unexportedBump() {
	t.predictions++
}
