// Positive fixtures: a telemetry-shaped API whose exported methods
// forget the nil-receiver fast path. The fixture package is named
// telemetry and declares the guarded type names, which is all the
// analyzer scopes on.
package telemetry

type Session struct{ runID string }

// Bad dereferences the receiver with no guard: a nil session — the
// telemetry-off value in every CLI — would panic here.
func (s *Session) Bad() string { // want "exported telemetry method Bad dereferences its receiver without the nil guard"
	return s.runID
}

type RunBuffer struct{ n int }

// AndGuard uses && — a nil receiver with ready=false falls through to
// the dereference, so the guard does not qualify.
func (b *RunBuffer) AndGuard(ready bool) { // want "exported telemetry method AndGuard dereferences its receiver without the nil guard"
	if b == nil && ready {
		return
	}
	b.n++
}

type Server struct{ addr string }

// GuardNoReturn checks nil but keeps going, so the dereference below
// is still reachable on a nil receiver.
func (s *Server) GuardNoReturn() string { // want "exported telemetry method GuardNoReturn dereferences its receiver without the nil guard"
	if s == nil {
		_ = 0
	}
	return s.addr
}
