// Negative fixtures: the nil-safe shapes the telemetry API uses.
package telemetry

type Journal struct{ lines int }

// Append has the canonical guard as its first statement.
func (j *Journal) Append(line string) error {
	if j == nil {
		return nil
	}
	j.lines++
	_ = line
	return nil
}

// Close guards and returns a zero value.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.lines = 0
	return nil
}

type Buffer struct{ n int }

// Buffer is not in the nil-safe API set, so its methods are out of
// scope even without a guard.
func (b *Buffer) Add() { b.n++ }

type report struct{ name string }

// Add guards with an ||-chain: a nil receiver (or nil argument) is
// guaranteed to take the return before any dereference — the
// RunBuffer.Add shape.
func (b *RunBuffer) Add(r *report) {
	if b == nil || r == nil {
		return
	}
	b.n++
}

// Len touches the receiver only via another exported nil-safe method
// and a nil comparison.
func (b *RunBuffer) Len() int {
	if b != nil {
		b.Add(&report{})
	}
	return 0
}

// Flags is a value-populated flag carrier, deliberately outside the
// nil-safe set: its methods may dereference freely.
type Flags struct{ listen string }

func (f *Flags) NeedsObserver() bool { return f.listen != "" }

// unexported methods are outside the exported-API contract.
func (s *Server) reset() { s.addr = "" }
