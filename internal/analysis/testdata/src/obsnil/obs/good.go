// Negative fixtures: the nil-safe shapes the obs API uses.
package obs

type Counter struct{ v int }

// Add has the canonical guard as its first statement.
func (c *Counter) Add(n int) {
	if c == nil {
		return
	}
	c.v += n
}

// Inc touches the receiver only via another exported nil-safe method.
func (c *Counter) Inc() { c.Add(1) }

// Value guards and returns a zero value.
func (c *Counter) Value() int {
	if c == nil {
		return 0
	}
	return c.v
}

type Gauge struct{ bits uint64 }

// Enabled uses the receiver only in a nil comparison.
func (g *Gauge) Enabled() bool { return g != nil }

// Set guards with extra statements before the return.
func (g *Gauge) Set(v uint64) {
	if g == nil {
		_ = v
		return
	}
	g.bits = v
}

// unexported methods are outside the exported-API contract.
func (g *Gauge) reset() { g.bits = 0 }

// Free-standing functions are out of scope.
func Sum(a, b int) int { return a + b }
