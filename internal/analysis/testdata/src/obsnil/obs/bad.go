// Positive fixtures: an obs-shaped API whose exported methods forget
// the nil-receiver fast path. The fixture package is named obs and
// declares the guarded type names, which is all the analyzer scopes on.
package obs

type Observer struct{ count int }

// Bad dereferences the receiver with no guard: a nil observer — the
// repo-wide "instrumentation off" value — would panic here.
func (o *Observer) Bad() int { // want "exported obs method Bad dereferences its receiver without the nil guard"
	return o.count
}

// GuardTooLate checks, but only after the dereference.
func (o *Observer) GuardTooLate() int { // want "exported obs method GuardTooLate dereferences its receiver without the nil guard"
	n := o.count
	if o == nil {
		return 0
	}
	return n
}

type Span struct{ open bool }

// End forgets the guard on a second type.
func (s *Span) End() { // want "exported obs method End dereferences its receiver without the nil guard"
	s.open = false
}

type Histogram struct{ sum int64 }

// Observe forgets the guard on the histogram type added for live
// telemetry.
func (h *Histogram) Observe(v int64) { // want "exported obs method Observe dereferences its receiver without the nil guard"
	h.sum += v
}

// Sum guards correctly; it sits next to the bad method to pin that the
// analyzer reports per method, not per type.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum
}
