// Positive fixtures: unguarded math calls whose silent NaN would
// corrupt the bound math.
package measures

import "math"

func badLog(x float64) float64 {
	return math.Log2(x) // want "has no preceding domain check"
}

func badSqrt(x, y float64) float64 {
	return math.Sqrt(x - y) // want "has no preceding domain check"
}

func checkAfter(x float64) float64 {
	v := math.Log(x) // want "has no preceding domain check"
	if x <= 0 {
		return 0
	}
	return v
}

func wrongOperand(x, y float64) float64 {
	if y > 0 {
		return math.Log10(x) // want "has no preceding domain check"
	}
	return 0
}
