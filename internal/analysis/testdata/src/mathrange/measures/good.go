// Negative fixtures: domain-checked and safe-by-construction calls.
package measures

import "math"

func guarded(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Log2(x)
}

func guardedUpper(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

func constArg() float64 {
	return math.Log(2) + math.Sqrt(0)
}

func absArg(x float64) float64 {
	return math.Sqrt(math.Abs(x))
}

func sqrtChecked(v float64) float64 {
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// other math functions are not domain-watched.
func unwatched(x float64) float64 {
	return math.Exp(x) + math.Floor(x)
}
