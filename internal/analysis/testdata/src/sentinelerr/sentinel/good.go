// Negative fixtures: wrap-transparent matching and wrapping, plus the
// comparisons the analyzer must leave alone.
package sentinel

import (
	"errors"
	"fmt"
	"io"
)

// ErrStop is a second sentinel for the clean paths.
var ErrStop = errors.New("stop")

func compareGood(err error) bool {
	if errors.Is(err, ErrStop) {
		return true
	}
	// nil comparisons are not sentinel comparisons.
	return err == nil || errors.Is(err, io.EOF)
}

func wrapGood(err error) error {
	if err != nil {
		return fmt.Errorf("stage: %w", ErrStop)
	}
	// a non-sentinel error arg may use any verb (width args included).
	return fmt.Errorf("n=%*d: %v", 4, 7, err)
}

// local non-error vars named Err-like are not sentinels.
func notAnError() bool {
	ErrCount := 3
	return ErrCount == 3
}
