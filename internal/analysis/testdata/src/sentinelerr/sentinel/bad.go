// Positive fixtures: sentinel matching that breaks under wrapping.
package sentinel

import (
	"errors"
	"fmt"
	"io"
)

// ErrBudget mimics the guard package's sentinel taxonomy.
var ErrBudget = errors.New("budget exhausted")

func compare(err error) bool {
	if err == ErrBudget { // want "sentinel error ErrBudget compared with ==; use errors.Is"
		return true
	}
	return err != io.EOF // want "sentinel error EOF compared with !=; use errors.Is"
}

func switchCase(err error) int {
	switch err {
	case ErrBudget: // want "switch-case matches sentinel error ErrBudget by ==; use errors.Is"
		return 1
	case nil:
		return 0
	}
	return 2
}

func wrapV(name string) error {
	return fmt.Errorf("stage %s: %v", name, ErrBudget) // want "fmt.Errorf formats sentinel error ErrBudget with %v; wrap it with %w"
}

func wrapS() error {
	return fmt.Errorf("mid %s end: %w", ErrBudget, io.EOF) // want "fmt.Errorf formats sentinel error ErrBudget with %s; wrap it with %w"
}
