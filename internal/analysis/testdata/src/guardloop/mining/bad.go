// Positive fixtures: recursion and unbounded loops in a hot package
// with no guard poll.
package mining

// countDown recurses with no guard.Check anywhere in its body.
func countDown(n int) int { // want "recursive function countDown has no guard.Check/CheckNow or ctx poll"
	if n <= 0 {
		return 0
	}
	return countDown(n-1) + 1
}

var sink int

// spin loops forever with neither a guard poll nor an exit path.
func spin() {
	for { // want "unbounded for-loop in spin has no guard.Check/ctx poll and no exit"
		sink++
	}
}

// spinTrue: a constant-true condition is just as unbounded.
func spinTrue() {
	for true { // want "unbounded for-loop in spinTrue has no guard.Check/ctx poll and no exit"
		sink++
	}
}
