// Negative fixtures: the sanctioned shapes — guarded recursion,
// ctx-polled loops, loops with exit paths, bounded loops.
package mining

import (
	"context"

	"dfpc/internal/guard"
)

// mineRec follows the placement rule: Check at recursion entry.
func mineRec(g *guard.Guard, n int) error {
	if err := g.Check(); err != nil {
		return err
	}
	if n <= 0 {
		return nil
	}
	return mineRec(g, n-1)
}

// mineRecNow is also fine with the immediate variant.
func mineRecNow(g *guard.Guard, n int) error {
	if err := g.CheckNow(); err != nil {
		return err
	}
	if n <= 1 {
		return nil
	}
	return mineRecNow(g, n/2)
}

// poll spins but reaches a ctx poll every iteration.
func poll(ctx context.Context) {
	for {
		if ctx.Err() != nil {
			return
		}
	}
}

// drain has an exit path (break), so it is assumed bounded.
func drain(ch chan int) int {
	total := 0
	for {
		v, ok := <-ch
		if !ok {
			break
		}
		total += v
	}
	return total
}

// bounded loops with real conditions are out of scope.
func bounded(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}
