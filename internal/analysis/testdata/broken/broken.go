// A deliberately ill-typed package: the loader must record its errors
// and keep going (graceful degradation), and dfpc-vet must exit 2.
package broken

func oops() int {
	var s string = 42 // type error on purpose
	return s
}
