package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// mathDomainFuncs are the math functions whose arguments must be
// domain-checked: outside their domain they return NaN or ±Inf without
// any error, and in the measures package that silent NaN flows straight
// into the IGub/Frub curves that pick θ* (Eq. 8) — corrupting min_sup
// selection with no visible failure.
var mathDomainFuncs = map[string]string{
	"Log":   "x > 0",
	"Log2":  "x > 0",
	"Log10": "x > 0",
	"Log1p": "x > -1",
	"Sqrt":  "x >= 0",
}

// Mathrange requires every math.Log*/math.Sqrt call in measures to be
// preceded, within the same function, by a comparison involving the
// argument expression (the domain check), unless the argument is a
// constant inside the domain or a math.Abs call.
var Mathrange = &Analyzer{
	Name: "mathrange",
	Doc: "require domain checks before math.Log*/math.Sqrt in measures\n\n" +
		"math.Log of a non-positive value (or Sqrt of a negative one) yields\n" +
		"NaN/-Inf silently; in the bound math a NaN poisons IGub/Frub and the\n" +
		"Eq. 8 min_sup scan without failing anything. Each such call must be\n" +
		"preceded, in the enclosing function, by a comparison mentioning one\n" +
		"of the argument's variables (an in-domain constant or math.Abs\n" +
		"argument also passes).",
	Default:  true,
	Packages: []string{"measures"},
	Run:      runMathrange,
}

func runMathrange(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMathCalls(p, fd)
		}
	}
}

func checkMathCalls(p *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		fn := calleeFunc(p.Info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "math" {
			return true
		}
		domain, watched := mathDomainFuncs[fn.Name()]
		if !watched {
			return true
		}
		arg := ast.Unparen(call.Args[0])
		if argInDomain(p, fn.Name(), arg) || hasDomainCheckBefore(p, fd, arg, call) {
			return true
		}
		p.Reportf(call.Pos(),
			"math.%s(%s) has no preceding domain check (%s) in %s; out-of-domain arguments yield a silent NaN that corrupts the bound math",
			fn.Name(), exprText(arg), domain, fd.Name.Name)
		return true
	})
}

// argInDomain reports whether the argument is safe by construction: an
// in-domain constant, or a math.Abs(...) result for Sqrt.
func argInDomain(p *Pass, fn string, arg ast.Expr) bool {
	if v := constValue(p.Info, arg); v != nil && (v.Kind() == constant.Int || v.Kind() == constant.Float) {
		switch fn {
		case "Sqrt":
			return constant.Sign(v) >= 0
		case "Log1p":
			f, _ := constant.Float64Val(v)
			return f > -1
		default:
			return constant.Sign(v) > 0
		}
	}
	if fn == "Sqrt" {
		if inner, ok := arg.(*ast.CallExpr); ok {
			if isPkgFunc(calleeFunc(p.Info, inner), "math", "Abs") {
				return true
			}
		}
	}
	return false
}

// hasDomainCheckBefore reports whether fd contains, before the call, a
// comparison mentioning any of the variables the argument is computed
// from (so `if p <= 0 || p >= 1 { return 0 }` blesses both Log2(p) and
// Log2(1-p)). This is a syntactic approximation of dominance: a check
// in a dead branch fools it, but it cannot miss-flag the repo's idiom —
// guard clauses at function entry — and the golden fixtures pin both
// directions.
func hasDomainCheckBefore(p *Pass, fd *ast.FuncDecl, arg ast.Expr, call *ast.CallExpr) bool {
	names := valueIdentNames(p, arg)
	if len(names) == 0 {
		return false
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		cmp, ok := n.(*ast.BinaryExpr)
		if !ok || !isComparison(cmp.Op) || cmp.Pos() >= call.Pos() {
			return true
		}
		if mentionsAny(p, cmp, names) {
			found = true
			return false
		}
		return true
	})
	return found
}

// valueIdentNames collects the names of value identifiers (variables
// and constants, not packages or functions) appearing in e.
func valueIdentNames(p *Pass, e ast.Expr) map[string]bool {
	names := map[string]bool{}
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			switch p.Info.ObjectOf(id).(type) {
			case *types.Var, *types.Const:
				names[id.Name] = true
			}
		}
		return true
	})
	return names
}

// mentionsAny reports whether any value identifier under n has one of
// the given names.
func mentionsAny(p *Pass, root ast.Node, names map[string]bool) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && names[id.Name] {
			switch p.Info.ObjectOf(id).(type) {
			case *types.Var, *types.Const:
				found = true
			}
		}
		return !found
	})
	return found
}
