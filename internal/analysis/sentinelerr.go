package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
)

// Sentinelerr enforces wrap-transparent error handling around the
// guard package's sentinel taxonomy (and any io.EOF-style sentinel):
// matching must go through errors.Is, and fmt.Errorf wrapping must use
// %w, because every stage of the pipeline adds fmt.Errorf layers on the
// way up and a == comparison (or a %v wrap) silently stops matching the
// moment anyone adds context to an error path.
var Sentinelerr = &Analyzer{
	Name: "sentinelerr",
	Doc: "require errors.Is and %w for sentinel error values\n\n" +
		"Comparing a sentinel (guard.Err*, io.EOF, any package-level Err* var)\n" +
		"with == or != breaks as soon as a caller wraps the error; matching\n" +
		"must use errors.Is. Likewise fmt.Errorf must wrap sentinels with %w,\n" +
		"not %v/%s, or the sentinel is flattened to text and errors.Is stops\n" +
		"seeing it. Flags ==/!= against sentinels (including switch cases on\n" +
		"an error value) and mis-verbed fmt.Errorf wraps.",
	Default: true,
	Run:     runSentinelerr,
}

func runSentinelerr(p *Pass) {
	p.inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			checkSentinelCompare(p, n)
		case *ast.SwitchStmt:
			checkSentinelSwitch(p, n)
		case *ast.CallExpr:
			checkErrorfWrap(p, n)
		}
		return true
	})
}

func checkSentinelCompare(p *Pass, e *ast.BinaryExpr) {
	if e.Op != token.EQL && e.Op != token.NEQ {
		return
	}
	for _, side := range []ast.Expr{e.X, e.Y} {
		other := e.Y
		if side == e.Y {
			other = e.X
		}
		if v := sentinelError(p.Info, side); v != nil && !isUntypedNil(p.Info, other) {
			p.Reportf(e.OpPos,
				"sentinel error %s compared with %s; use errors.Is so wrapped errors still match", v.Name(), e.Op)
			return
		}
	}
}

func checkSentinelSwitch(p *Pass, s *ast.SwitchStmt) {
	if s.Tag == nil || !isErrorType(p.TypeOf(s.Tag)) {
		return
	}
	for _, stmt := range s.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, expr := range cc.List {
			if v := sentinelError(p.Info, expr); v != nil {
				p.Reportf(expr.Pos(),
					"switch-case matches sentinel error %s by ==; use errors.Is so wrapped errors still match", v.Name())
			}
		}
	}
}

// checkErrorfWrap verifies that sentinel arguments to fmt.Errorf are
// formatted with %w.
func checkErrorfWrap(p *Pass, call *ast.CallExpr) {
	if !isPkgFunc(calleeFunc(p.Info, call), "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	verbs, ok := formatVerbs(format)
	if !ok {
		return // explicit argument indexes; positional mapping is off
	}
	for i, arg := range call.Args[1:] {
		if i >= len(verbs) {
			break
		}
		if v := sentinelError(p.Info, arg); v != nil && verbs[i] != 'w' {
			p.Reportf(arg.Pos(),
				"fmt.Errorf formats sentinel error %s with %%%c; wrap it with %%w so errors.Is keeps matching", v.Name(), verbs[i])
		}
	}
}

// formatVerbs returns, for each argument fmt.Errorf will consume, the
// verb that formats it ('*' for a width/precision argument). ok is
// false when the format uses explicit argument indexes (%[1]s), which
// break the positional mapping.
func formatVerbs(format string) (verbs []byte, ok bool) {
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// flags
		for i < len(format) {
			switch format[i] {
			case '+', '-', '#', ' ', '0', '\'':
				i++
				continue
			}
			break
		}
		// width
		for i < len(format) && (format[i] == '*' || (format[i] >= '0' && format[i] <= '9')) {
			if format[i] == '*' {
				verbs = append(verbs, '*')
			}
			i++
		}
		// precision
		if i < len(format) && format[i] == '.' {
			i++
			for i < len(format) && (format[i] == '*' || (format[i] >= '0' && format[i] <= '9')) {
				if format[i] == '*' {
					verbs = append(verbs, '*')
				}
				i++
			}
		}
		if i >= len(format) {
			break
		}
		switch format[i] {
		case '%':
			continue // literal %%, consumes nothing
		case '[':
			return nil, false
		default:
			verbs = append(verbs, format[i])
		}
	}
	return verbs, true
}
