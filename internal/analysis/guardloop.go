package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
)

// Guardloop enforces the guard-placement rule from internal/guard's doc
// comment on the hot packages: every directly recursive function and
// every condition-free (or constant-true) loop must reach a
// guard.Check/CheckNow or a context poll, so one refactor of FPClose,
// SMO, or the C4.5 builder cannot silently reintroduce an unbounded
// computation that no deadline or cancellation can stop.
var Guardloop = &Analyzer{
	Name: "guardloop",
	Doc: "require guard.Check/ctx polls in hot-package recursions and unbounded loops\n\n" +
		"The mining, svm, c45, and featsel packages run the pipeline's only\n" +
		"super-linear computations; internal/guard's placement rule says every\n" +
		"recursion entry and unbounded loop body must reach guard.Check (or a\n" +
		"ctx.Err/ctx.Done poll) so cancellation, deadlines, and the memory\n" +
		"watchdog can interrupt them. Flags directly recursive functions with\n" +
		"no such call and `for { }` / `for true { }` loops with neither a\n" +
		"check nor any break/return exit.",
	Default:  true,
	Packages: []string{"mining", "svm", "c45", "featsel"},
	Run:      runGuardloop,
}

// isGuardCheckCall reports whether n is a call that polls an execution
// bound: guard.Check/CheckNow on a *guard.Guard, or Err/Done on a
// context.Context.
func isGuardCheckCall(p *Pass, n ast.Node) bool {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	recv := p.TypeOf(sel.X)
	switch sel.Sel.Name {
	case "Check", "CheckNow":
		return isGuardType(recv)
	case "Err", "Done":
		return isContextType(recv)
	}
	return false
}

// containsGuardCheck reports whether any node under root is a guard
// check call.
func containsGuardCheck(p *Pass, root ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		if isGuardCheckCall(p, n) {
			found = true
			return false
		}
		return true
	})
	return found
}

// hasExit reports whether the loop body contains any break or return
// statement (at any depth — deliberately conservative: a loop with an
// exit path is assumed bounded, so the analyzer under-reports rather
// than drowning bounded worklist loops in noise).
func hasExit(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.BranchStmt:
			if n.(*ast.BranchStmt).Tok == token.BREAK || n.(*ast.BranchStmt).Tok == token.GOTO {
				found = true
			}
		case *ast.ReturnStmt:
			found = true
		case *ast.FuncLit:
			return false // a nested closure's returns do not exit this loop
		}
		return !found
	})
	return found
}

// isUnboundedFor reports whether stmt loops without a bounding
// condition: `for { }` or a constant-true condition.
func isUnboundedFor(p *Pass, stmt *ast.ForStmt) bool {
	if stmt.Cond == nil {
		return true
	}
	v := constValue(p.Info, stmt.Cond)
	return v != nil && v.Kind() == constant.Bool && constant.BoolVal(v)
}

func runGuardloop(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkRecursion(p, fd)
			checkLoops(p, fd)
		}
	}
}

// checkRecursion flags fd when it calls itself directly but its body
// never polls a guard. (Mutual recursion is out of scope; the placement
// rule puts a check at every recursion entry, so any one guarded member
// of a cycle bounds the cycle.)
func checkRecursion(p *Pass, fd *ast.FuncDecl) {
	self := p.Info.Defs[fd.Name]
	if self == nil {
		return
	}
	recursive := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if recursive {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if objectOf(p.Info, call.Fun) == self {
				recursive = true
				return false
			}
		}
		return true
	})
	if recursive && !containsGuardCheck(p, fd.Body) {
		p.Reportf(fd.Name.Pos(),
			"recursive function %s has no guard.Check/CheckNow or ctx poll; the guard placement rule requires a check at every recursion entry", fd.Name.Name)
	}
}

// checkLoops flags unbounded for-loops in fd that neither poll a guard
// nor have any exit path.
func checkLoops(p *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		stmt, ok := n.(*ast.ForStmt)
		if !ok || !isUnboundedFor(p, stmt) {
			return true
		}
		if !containsGuardCheck(p, stmt.Body) && !hasExit(stmt.Body) {
			p.Reportf(stmt.For,
				"unbounded for-loop in %s has no guard.Check/ctx poll and no exit; it cannot be canceled or deadlined", fd.Name.Name)
		}
		return true
	})
}
