package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
)

// cacheSchema versions the cache entry format and the key recipe; bump
// it when either changes so stale entries miss instead of mislead.
const cacheSchema = "dfpc-vet-cache-v1"

// A Cache memoizes per-package analyzer results across dfpc-vet runs.
// Entries are keyed by content, so there is no invalidation protocol:
// the key folds in
//
//   - the tool fingerprint (a hash of the analysis sources themselves,
//     best-effort — see Fingerprint), so editing an analyzer never
//     replays its old verdicts;
//   - the analyzer set selected for the run;
//   - the package unit's identity and the content hash of every source
//     file in it;
//   - the build-cache export paths of its resolved imports (the go
//     command content-addresses those, so they change exactly when a
//     dependency's exported shape does);
//   - the package's slice of the whole-program call graph's
//     reachability sets (CallGraph.DomainHash), because maporder,
//     nondeterm, and hotalloc findings depend on the graph only
//     through those memberships.
//
// A nil *Cache is valid and disables caching; load/store degrade to
// no-ops on any I/O error, so a broken cache directory can slow a run
// but never corrupt it.
type Cache struct {
	// Dir is the directory holding one JSON file per key.
	Dir string
	// Fingerprint identifies the analyzer implementation build; mixed
	// into every key.
	Fingerprint string

	hits   atomic.Int64
	misses atomic.Int64
}

// NewCache opens (creating if needed) a cache rooted at dir with the
// given tool fingerprint. It returns nil — caching disabled — when the
// directory cannot be created.
func NewCache(dir, fingerprint string) *Cache {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil
	}
	return &Cache{Dir: dir, Fingerprint: fingerprint}
}

// Hits reports how many packages were served from the cache.
func (c *Cache) Hits() int {
	if c == nil {
		return 0
	}
	return int(c.hits.Load())
}

// Misses reports how many packages were analyzed fresh.
func (c *Cache) Misses() int {
	if c == nil {
		return 0
	}
	return int(c.misses.Load())
}

// key derives the content key for one package under one analyzer set,
// or "" when caching is off or the package's inputs cannot be hashed.
func (c *Cache) key(pkg *Package, analyzers []*Analyzer, graph *CallGraph) string {
	if c == nil {
		return ""
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s\n%s\n", cacheSchema, c.Fingerprint)
	names := make([]string, len(analyzers))
	for i, a := range analyzers {
		names[i] = a.Name
	}
	sort.Strings(names)
	fmt.Fprintf(h, "analyzers %v\n", names)
	fmt.Fprintf(h, "unit %s %s\n", pkg.ImportPath, pkg.Name)
	for _, src := range pkg.srcFiles {
		fh, err := hashFile(src)
		if err != nil {
			return ""
		}
		fmt.Fprintf(h, "src %s %s\n", filepath.Base(src), fh)
	}
	for _, exp := range pkg.depExports {
		fmt.Fprintf(h, "dep %s\n", exp)
	}
	fmt.Fprintf(h, "domain %s\n", graph.DomainHash(pkg.ImportPath))
	if strings.HasSuffix(pkg.Name, "_test") {
		// External test units type-check under path+"_test"; fold in
		// their own functions' domain memberships too.
		fmt.Fprintf(h, "domainx %s\n", graph.DomainHash(pkg.ImportPath+"_test"))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// hashFile returns the hex sha256 of a file's contents.
func hashFile(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// cacheEntry is the stored value: the package's diagnostics under the
// keyed analyzer set (possibly empty — a clean package is the common
// and most valuable entry).
type cacheEntry struct {
	Schema      string       `json:"schema"`
	Diagnostics []Diagnostic `json:"diagnostics"`
}

// load returns the cached diagnostics for key, if present and intact.
func (c *Cache) load(key string) ([]Diagnostic, bool) {
	if c == nil || key == "" {
		return nil, false
	}
	data, err := os.ReadFile(c.entryPath(key))
	if err != nil {
		c.misses.Add(1)
		return nil, false
	}
	var e cacheEntry
	if err := json.Unmarshal(data, &e); err != nil || e.Schema != cacheSchema {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return e.Diagnostics, true
}

// store writes the diagnostics for key. Best-effort: the write goes to
// a temp file first so a crashed run cannot leave a torn entry that a
// later run would half-trust (json.Unmarshal failure degrades to a
// miss, but never serves partial results).
func (c *Cache) store(key string, diags []Diagnostic) {
	if c == nil || key == "" {
		return
	}
	data, err := json.Marshal(cacheEntry{Schema: cacheSchema, Diagnostics: diags})
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(c.Dir, ".entry-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, c.entryPath(key)); err != nil {
		os.Remove(name)
	}
}

func (c *Cache) entryPath(key string) string {
	return filepath.Join(c.Dir, key+".json")
}

// ToolFingerprint hashes the analysis implementation itself — the
// sources of dfpc/internal/analysis, located through `go list` from
// dir — so editing any analyzer invalidates every cache entry. When
// the package cannot be located (running outside this module), it
// returns a constant and the schema version is the only guard.
func ToolFingerprint(dir string) string {
	pkgs, err := goList(dir, "list", "-e", "-json=Dir,ImportPath,Name,GoFiles", "dfpc/internal/analysis")
	if err != nil || len(pkgs) != 1 || pkgs[0].Dir == "" {
		return "no-fingerprint"
	}
	h := sha256.New()
	files := append([]string{}, pkgs[0].GoFiles...)
	sort.Strings(files)
	for _, f := range files {
		fh, err := hashFile(filepath.Join(pkgs[0].Dir, f))
		if err != nil {
			return "no-fingerprint"
		}
		fmt.Fprintf(h, "%s %s\n", f, fh)
	}
	return hex.EncodeToString(h.Sum(nil))
}
