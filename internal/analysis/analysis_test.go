package analysis

import (
	"strings"
	"testing"
)

func TestParseIgnore(t *testing.T) {
	cases := []struct {
		text   string
		want   []string
		reason string
	}{
		{"//vet:ignore floateq exact accumulator identity", []string{"floateq"}, "exact accumulator identity"},
		{"//vet:ignore ctxfirst,guardloop sanctioned carrier", []string{"ctxfirst", "guardloop"}, "sanctioned carrier"},
		{"//vet:ignore", nil, ""},
		{"//vet:ignored floateq", nil, ""},
		{"// vet:ignore floateq", nil, ""},
		{"// regular comment", nil, ""},
		{"//vet:ignore  floateq", []string{"floateq"}, ""},
	}
	for _, c := range cases {
		got, reason, ok := parseIgnore(c.text)
		if (c.want == nil) == ok {
			t.Errorf("parseIgnore(%q) ok = %v, want %v", c.text, ok, c.want != nil)
			continue
		}
		if strings.Join(got, "|") != strings.Join(c.want, "|") {
			t.Errorf("parseIgnore(%q) = %v, want %v", c.text, got, c.want)
		}
		if reason != c.reason {
			t.Errorf("parseIgnore(%q) reason = %q, want %q", c.text, reason, c.reason)
		}
	}
}

func TestFormatVerbs(t *testing.T) {
	cases := []struct {
		format string
		verbs  string
		ok     bool
	}{
		{"plain", "", true},
		{"%s: %w", "sw", true},
		{"%d%%%v", "dv", true},
		{"%+v %#x % d", "vxd", true},
		{"%*.*f", "**f", true},
		{"%[1]s", "", false},
		{"stage %s min_sup=%g: %w", "sgw", true},
	}
	for _, c := range cases {
		verbs, ok := formatVerbs(c.format)
		if ok != c.ok || string(verbs) != c.verbs {
			t.Errorf("formatVerbs(%q) = %q, %v; want %q, %v", c.format, verbs, ok, c.verbs, c.ok)
		}
	}
}

func TestSelect(t *testing.T) {
	all, err := Select("", "")
	if err != nil || len(all) != len(All) {
		t.Fatalf("default Select = %d analyzers, err %v; want all %d", len(all), err, len(All))
	}
	only, err := Select("floateq,obsnil", "")
	if err != nil || len(only) != 2 {
		t.Fatalf("Select(only) = %v, %v", only, err)
	}
	skipped, err := Select("", "floateq")
	if err != nil || len(skipped) != len(All)-1 {
		t.Fatalf("Select(skip) dropped wrong count: %d, %v", len(skipped), err)
	}
	for _, a := range skipped {
		if a.Name == "floateq" {
			t.Error("skip did not remove floateq")
		}
	}
	if _, err := Select("nosuch", ""); err == nil {
		t.Error("Select with unknown -only name must error")
	}
	if _, err := Select("", "nosuch"); err == nil {
		t.Error("Select with unknown -skip name must error")
	}
}

func TestRegistryWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range All {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing name/doc/run", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if !a.Default {
			t.Errorf("analyzer %q is not enabled by default; the gate must run the full suite", a.Name)
		}
	}
	if _, ok := Lookup("guardloop"); !ok {
		t.Error("Lookup(guardloop) failed")
	}
	if _, ok := Lookup("nosuch"); ok {
		t.Error("Lookup(nosuch) succeeded")
	}
}

// TestLoadDegradesOnBrokenPackage pins graceful degradation: a package
// that fails to type-check is returned with Errs set (not dropped, not
// fatal) while healthy packages in the same load still analyze.
func TestLoadDegradesOnBrokenPackage(t *testing.T) {
	pkgs, err := Load(".", "./testdata/broken", "./testdata/src/floateq/measures")
	if err != nil {
		t.Fatalf("Load must not fail outright on a type-broken package: %v", err)
	}
	var broken, healthy *Package
	for _, p := range pkgs {
		switch {
		case strings.HasSuffix(p.ImportPath, "/broken"):
			broken = p
		case strings.HasSuffix(p.ImportPath, "floateq/measures"):
			healthy = p
		}
	}
	if broken == nil || len(broken.Errs) == 0 {
		t.Fatalf("broken package not reported with errors: %+v", broken)
	}
	if healthy == nil || len(healthy.Errs) != 0 || healthy.Types == nil {
		t.Fatalf("healthy package did not survive the degraded load: %+v", healthy)
	}
	if diags := Run(pkgs, []*Analyzer{Floateq}); len(diags) == 0 {
		t.Error("healthy package produced no diagnostics after degraded load")
	}
}

// TestSuppression verifies the //vet:ignore mechanics end to end on a
// fixture that would otherwise be flagged.
func TestSuppression(t *testing.T) {
	pkgs, err := Load(".", "./testdata/src/ctxfirst/ctxdemo")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags := Run(pkgs, []*Analyzer{Ctxfirst})
	for _, d := range diags {
		if strings.Contains(d.Pos.Filename, "good.go") {
			t.Errorf("suppressed finding leaked: %s", d)
		}
	}
	if len(diags) == 0 {
		t.Error("bad.go fixtures should still report")
	}
}
