package analysis

import (
	"go/ast"
	"go/token"
)

// Floateq bans exact floating-point equality in the packages whose
// float arithmetic decides classifier behavior: measures (the Eq. 2–6
// bound math that picks min_sup via Eq. 8), svm (SMO's KKT updates),
// and eval (accuracy/significance statistics). A == that holds on one
// platform's FMA contraction and fails on another is exactly the bug
// class that silently shifts θ* and every accuracy number downstream.
var Floateq = &Analyzer{
	Name: "floateq",
	Doc: "forbid ==/!= on floating-point operands in measures, svm, and eval\n\n" +
		"Exact float equality is rounding-fragile; compare with an epsilon\n" +
		"(e.g. math.Abs(a-b) <= eps) instead. Two idioms stay legal: comparing\n" +
		"against the literal constant 0 (a structural \"exactly zero by\n" +
		"construction\" check, used for degenerate denominators) and x != x\n" +
		"(the NaN test, though math.IsNaN is clearer).",
	Default:  true,
	Packages: []string{"measures", "svm", "eval"},
	Run:      runFloateq,
}

func runFloateq(p *Pass) {
	p.inspect(func(n ast.Node) bool {
		e, ok := n.(*ast.BinaryExpr)
		if !ok || (e.Op != token.EQL && e.Op != token.NEQ) {
			return true
		}
		if !isFloat(p.TypeOf(e.X)) && !isFloat(p.TypeOf(e.Y)) {
			return true
		}
		// `x == 0` / `x != 0`: structurally-zero checks are exact by
		// construction and idiomatic in the bound math.
		if isZeroConst(p.Info, e.X) || isZeroConst(p.Info, e.Y) {
			return true
		}
		// `x != x`: the NaN idiom compares a value against itself.
		if exprText(e.X) == exprText(e.Y) {
			return true
		}
		p.Reportf(e.OpPos,
			"floating-point values compared with %s (%s %s %s); use an epsilon comparison such as math.Abs(a-b) <= eps",
			e.Op, exprText(e.X), e.Op, exprText(e.Y))
		return true
	})
}
