// Package analysis is the repo's static-analysis substrate: a small,
// stdlib-only driver over go/parser + go/types (export data supplied by
// `go list -export`, no golang.org/x/tools dependency) plus the
// repo-specific checks that machine-enforce the cross-cutting
// invariants introduced by the obs and guard layers:
//
//   - guardloop:   hot-package loops/recursions reach a guard/ctx check
//   - sentinelerr: sentinel errors are matched with errors.Is / %w
//   - floateq:     no ==/!= on floats in the bound-math packages
//   - ctxfirst:    ctx-first *Context APIs, no ctx stored in structs
//   - obsnil:      obs methods keep their nil-receiver fast path
//   - mathrange:   math.Log/Sqrt in measures sit behind domain checks
//   - parasafe:    parallel worker closures keep writes index-partitioned
//   - spanend:     every obs span started is ended on all paths
//   - atomicwrite: artifact/checkpoint writers stay temp+rename atomic
//   - maporder:    map iteration order never escapes unsorted
//   - nondeterm:   no clocks/rand/racing selects/raw goroutines in the
//     determinism domain (call-graph reachability from Fit/CV/miners)
//   - hotalloc:    no per-call allocation shapes in the predict hot
//     path (call-graph reachability from Predict/ExplainPredict)
//   - atomicmix:   no mixed atomic/plain access or copied locks in the
//     concurrency packages
//
// The last four are whole-program checks: Run first builds a call graph
// over every loaded package (callgraph.go) and precomputes the
// determinism and hot-path reachability sets that maporder's siblings
// consult through Pass.Graph.
//
// The analyzers are table-registered (see registry.go); cmd/dfpc-vet is
// the CLI front end and scripts/check.sh runs it between `go vet` and
// the race tests. DESIGN.md documents each invariant; this package is
// the thing that makes violating one a build break instead of a code
// review hope.
//
// A diagnostic can be suppressed — with a reason — by a
//
//	//vet:ignore <analyzer>[,<analyzer>...] <reason>
//
// comment on the offending line or on the line directly above it.
// Suppressions are for sanctioned exceptions (e.g. guard.Guard is the
// one struct allowed to carry a context); they are grep-able and every
// one must say why.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"dfpc/internal/parallel"
)

// An Analyzer is one named, self-contained check.
type Analyzer struct {
	// Name is the analyzer's identifier, used by -only/-skip flags,
	// //vet:ignore comments, and diagnostic suffixes.
	Name string
	// Doc is a one-paragraph description of the invariant enforced and
	// why it matters; shown by `dfpc-vet -list`.
	Doc string
	// Default reports whether the analyzer runs when no -only flag is
	// given.
	Default bool
	// Packages restricts the analyzer to packages with these base names
	// (the package name with any "_test" suffix stripped, so in-package
	// and external test variants of a scoped package are covered). Nil
	// means every package.
	Packages []string
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(*Pass)
}

// appliesTo reports whether the analyzer inspects a package with the
// given base name.
func (a *Analyzer) appliesTo(baseName string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	for _, p := range a.Packages {
		if p == baseName {
			return true
		}
	}
	return false
}

// A Diagnostic is one finding, positioned and attributed.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Graph is the whole-program call graph over every package in the
	// run, with the Determinism and HotPath reachability sets
	// precomputed (see callgraph.go). Per-function membership checks go
	// through Graph.InDeterminism/InHotPath with this pass's Info.
	Graph *CallGraph

	ignores ignoreIndex
	sink    *[]Diagnostic
}

// Reportf records a diagnostic at pos unless a //vet:ignore comment for
// this analyzer covers the line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.ignores.suppressed(p.Analyzer.Name, position) {
		return
	}
	*p.sink = append(*p.sink, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// inspect walks every file in the pass.
func (p *Pass) inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// Run applies the analyzers to every cleanly loaded package and returns
// the findings sorted by position. Packages that failed to load are
// skipped here — the caller decides how loudly to degrade (dfpc-vet
// reports them on stderr and exits 2).
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return RunCached(pkgs, analyzers, nil)
}

// RunCached is Run with an optional per-package result cache (nil
// disables caching; see Cache). The whole-program call graph is built
// first — every analyzer sees the same graph — and then packages are
// analyzed concurrently on the repo's own deterministic worker pool,
// each writing findings into its own index slot; the index-ordered
// merge plus the final position sort make the output identical at any
// worker count (the same contract dfpc-vet enforces on the pipeline).
func RunCached(pkgs []*Package, analyzers []*Analyzer, cache *Cache) []Diagnostic {
	graph := BuildCallGraph(pkgs)
	sinks := make([][]Diagnostic, len(pkgs))
	err := parallel.ForEach(0, len(pkgs), func(i int) error {
		pkg := pkgs[i]
		if len(pkg.Errs) > 0 || pkg.Types == nil {
			return nil
		}
		key := cache.key(pkg, analyzers, graph)
		if cached, ok := cache.load(key); ok {
			sinks[i] = cached
			return nil
		}
		for _, a := range analyzers {
			if !a.appliesTo(pkg.BaseName()) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Graph:    graph,
				ignores:  pkg.ignores,
				sink:     &sinks[i],
			}
			a.Run(pass)
		}
		cache.store(key, sinks[i])
		return nil
	})
	if err != nil {
		// The workers return no errors, so this is a captured analyzer
		// panic — a bug in an analyzer, not a finding; keep it loud.
		panic(err)
	}
	var diags []Diagnostic
	for _, s := range sinks {
		diags = append(diags, s...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}
