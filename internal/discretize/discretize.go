// Package discretize converts numeric attributes into categorical ones,
// a prerequisite for the binary item encoding (the paper, Section 2:
// "For numerical attributes, the continuous values are discretized
// first"). Three methods are provided: the entropy-based MDL method of
// Fayyad & Irani (the standard choice for classification pipelines of
// this era, including the LUCS-KDD discretized UCI sets the paper uses),
// equal-width binning, and equal-frequency binning.
package discretize

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"sort"
	"strconv"

	"dfpc/internal/dataset"
)

// Method selects a discretization algorithm.
type Method int

const (
	// EqualFrequency splits so each bin holds roughly the same number
	// of instances. It is the default (the zero Options value) because
	// unsupervised quantile cuts preserve marginally-invisible
	// interaction structure that supervised methods discard — the
	// situation the paper's XOR example describes.
	EqualFrequency Method = iota
	// EqualWidth splits the observed range into equal-width bins.
	EqualWidth
	// EntropyMDL is Fayyad–Irani recursive entropy minimization with the
	// MDL stopping criterion. Supervised: uses the class labels.
	EntropyMDL
	// ChiMerge is Kerber's bottom-up interval merging by chi-squared
	// similarity of adjacent class distributions (95% significance).
	// Supervised.
	ChiMerge
)

func (m Method) String() string {
	switch m {
	case EntropyMDL:
		return "entropy-mdl"
	case EqualWidth:
		return "equal-width"
	case EqualFrequency:
		return "equal-frequency"
	case ChiMerge:
		return "chimerge"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Options configures Discretize.
type Options struct {
	Method Method
	// Bins is the bin count for EqualWidth/EqualFrequency (default 3).
	Bins int
	// MaxCuts caps the number of cut points EntropyMDL or ChiMerge may
	// produce per attribute (default 8); 0 means the default.
	MaxCuts int
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Bins <= 0 {
		out.Bins = 3
	}
	if out.MaxCuts <= 0 {
		out.MaxCuts = 8
	}
	return out
}

// Discretizer holds per-attribute cut points fitted on training data so
// the same cuts can be applied to test data (fit on train, apply to
// both — the protocol required for honest cross-validation).
type Discretizer struct {
	cuts [][]float64 // per attribute; nil for already-categorical attributes
	src  []dataset.Attribute
}

// Fit learns cut points for every numeric attribute of d.
func Fit(d *dataset.Dataset, opts Options) (*Discretizer, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	disc := &Discretizer{cuts: make([][]float64, len(d.Attrs)), src: d.Attrs}
	for a, attr := range d.Attrs {
		if attr.Kind != dataset.Numeric {
			continue
		}
		vals, labels := column(d, a)
		var cuts []float64
		switch opts.Method {
		case EntropyMDL:
			cuts = mdlCuts(vals, labels, d.NumClasses(), opts.MaxCuts)
		case EqualWidth:
			cuts = equalWidthCuts(vals, opts.Bins)
		case EqualFrequency:
			cuts = equalFrequencyCuts(vals, opts.Bins)
		case ChiMerge:
			cuts = chiMergeCuts(vals, labels, d.NumClasses(),
				chiMergeThreshold(d.NumClasses()), opts.MaxCuts+1)
		default:
			return nil, fmt.Errorf("discretize: unknown method %v", opts.Method)
		}
		disc.cuts[a] = cuts
	}
	return disc, nil
}

// Apply returns a copy of d with every numeric attribute replaced by a
// categorical attribute whose values are interval labels. The
// discretizer must have been fitted on a dataset with the same schema.
func (disc *Discretizer) Apply(d *dataset.Dataset) (*dataset.Dataset, error) {
	if len(d.Attrs) != len(disc.src) {
		return nil, fmt.Errorf("discretize: schema mismatch: %d attrs vs fitted %d", len(d.Attrs), len(disc.src))
	}
	out := &dataset.Dataset{
		Name:    d.Name,
		Attrs:   make([]dataset.Attribute, len(d.Attrs)),
		Classes: d.Classes,
		Rows:    make([][]float64, d.NumRows()),
		Labels:  append([]int(nil), d.Labels...),
	}
	for a, attr := range d.Attrs {
		if attr.Kind != dataset.Numeric {
			out.Attrs[a] = attr
			continue
		}
		cuts := disc.cuts[a]
		out.Attrs[a] = dataset.Attribute{
			Name:   attr.Name,
			Kind:   dataset.Categorical,
			Values: binLabels(cuts),
		}
	}
	for i, row := range d.Rows {
		//vet:ignore hotalloc each newRow escapes into the returned dataset; the allocation is the output
		newRow := make([]float64, len(row))
		for a, v := range row {
			if dataset.IsMissing(v) || d.Attrs[a].Kind != dataset.Numeric {
				newRow[a] = v
				continue
			}
			newRow[a] = float64(binIndex(disc.cuts[a], v))
		}
		out.Rows[i] = newRow
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// Cuts returns the fitted cut points for attribute a (nil if the
// attribute was already categorical).
func (disc *Discretizer) Cuts(a int) []float64 { return disc.cuts[a] }

// SourceSchema returns the attribute schema the discretizer was fitted
// on. Callers must treat the returned slice as read-only.
func (disc *Discretizer) SourceSchema() []dataset.Attribute { return disc.src }

// Bins returns the number of discretized values attribute a can take:
// len(cuts)+1 for numeric attributes (matching binLabels) and the
// category count for attributes that were already categorical. Together
// with BinOf this is the per-value face of Apply, letting a predict
// path encode one raw row without materializing a discretized dataset.
func (disc *Discretizer) Bins(a int) int {
	if disc.src[a].Kind == dataset.Numeric {
		return len(disc.cuts[a]) + 1
	}
	return len(disc.src[a].Values)
}

// BinOf maps a raw numeric value of attribute a to its bin index among
// Bins(a) right-inclusive intervals — exactly the value Apply would
// store in the discretized row.
func (disc *Discretizer) BinOf(a int, v float64) int {
	return binIndex(disc.cuts[a], v)
}

// FitApply fits cut points on d and applies them to d in one call.
func FitApply(d *dataset.Dataset, opts Options) (*dataset.Dataset, error) {
	disc, err := Fit(d, opts)
	if err != nil {
		return nil, err
	}
	return disc.Apply(d)
}

// binIndex maps a value to the index of its interval among len(cuts)+1
// bins; intervals are right-inclusive, so a value equal to a cut point
// lands in the bin to the cut's left.
func binIndex(cuts []float64, v float64) int {
	return sort.SearchFloat64s(cuts, v)
}

// binLabels builds human-readable interval names for len(cuts)+1 bins.
func binLabels(cuts []float64) []string {
	if len(cuts) == 0 {
		return []string{"all"}
	}
	labels := make([]string, len(cuts)+1)
	fmtF := func(x float64) string { return strconv.FormatFloat(x, 'g', 6, 64) }
	//vet:ignore hotalloc bin labels are built once per attribute at fit time, not per prediction
	labels[0] = "(-inf-" + fmtF(cuts[0]) + "]"
	for i := 1; i < len(cuts); i++ {
		//vet:ignore hotalloc bin labels are built once per attribute at fit time, not per prediction
		labels[i] = "(" + fmtF(cuts[i-1]) + "-" + fmtF(cuts[i]) + "]"
	}
	//vet:ignore hotalloc bin labels are built once per attribute at fit time, not per prediction
	labels[len(cuts)] = "(" + fmtF(cuts[len(cuts)-1]) + "-inf)"
	return labels
}

// column extracts the non-missing values and parallel labels of
// attribute a.
func column(d *dataset.Dataset, a int) ([]float64, []int) {
	vals := make([]float64, 0, d.NumRows())
	labels := make([]int, 0, d.NumRows())
	for i, row := range d.Rows {
		if dataset.IsMissing(row[a]) {
			continue
		}
		vals = append(vals, row[a])
		labels = append(labels, d.Labels[i])
	}
	return vals, labels
}

func equalWidthCuts(vals []float64, bins int) []float64 {
	if len(vals) == 0 || bins < 2 {
		return nil
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi <= lo {
		return nil
	}
	w := (hi - lo) / float64(bins)
	cuts := make([]float64, 0, bins-1)
	for b := 1; b < bins; b++ {
		cuts = append(cuts, lo+float64(b)*w)
	}
	return cuts
}

func equalFrequencyCuts(vals []float64, bins int) []float64 {
	if len(vals) == 0 || bins < 2 {
		return nil
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	cuts := make([]float64, 0, bins-1)
	for b := 1; b < bins; b++ {
		idx := b * len(sorted) / bins
		if idx <= 0 || idx >= len(sorted) {
			continue
		}
		cut := (sorted[idx-1] + sorted[idx]) / 2
		if len(cuts) == 0 || cut > cuts[len(cuts)-1] {
			cuts = append(cuts, cut)
		}
	}
	return cuts
}

// mdlCuts implements Fayyad–Irani recursive binary entropy
// discretization with the MDL principle stopping criterion.
func mdlCuts(vals []float64, labels []int, numClasses, maxCuts int) []float64 {
	if len(vals) == 0 {
		return nil
	}
	type pair struct {
		v float64
		y int
	}
	pairs := make([]pair, len(vals))
	for i := range vals {
		pairs[i] = pair{vals[i], labels[i]}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].v < pairs[j].v })
	sv := make([]float64, len(pairs))
	sy := make([]int, len(pairs))
	for i, p := range pairs {
		sv[i] = p.v
		sy[i] = p.y
	}
	var cuts []float64
	var recurse func(lo, hi int)
	recurse = func(lo, hi int) {
		if len(cuts) >= maxCuts {
			return
		}
		cutIdx, cutVal, ok := bestMDLCut(sv, sy, lo, hi, numClasses)
		if !ok {
			return
		}
		cuts = append(cuts, cutVal)
		recurse(lo, cutIdx)
		recurse(cutIdx, hi)
	}
	recurse(0, len(sv))
	sort.Float64s(cuts)
	return cuts
}

// bestMDLCut finds, within sv[lo:hi], the boundary minimizing class
// entropy; it returns ok=false if the MDL criterion rejects the split.
func bestMDLCut(sv []float64, sy []int, lo, hi, numClasses int) (cutIdx int, cutVal float64, ok bool) {
	n := hi - lo
	if n < 4 {
		return 0, 0, false
	}
	total := make([]float64, numClasses)
	for i := lo; i < hi; i++ {
		total[sy[i]]++
	}
	totalEnt := entropy(total, float64(n))

	left := make([]float64, numClasses)
	bestEnt := math.Inf(1)
	bestIdx := -1
	for i := lo; i < hi-1; i++ {
		left[sy[i]]++
		// Only consider boundaries between distinct values.
		if sv[i] == sv[i+1] {
			continue
		}
		nl := float64(i - lo + 1)
		nr := float64(hi - i - 1)
		right := make([]float64, numClasses)
		for c := range right {
			right[c] = total[c] - left[c]
		}
		e := (nl*entropy(left, nl) + nr*entropy(right, nr)) / float64(n)
		if e < bestEnt {
			bestEnt = e
			bestIdx = i
		}
	}
	if bestIdx < 0 {
		return 0, 0, false
	}

	// Recompute the class-count vectors at the best boundary for the MDL
	// test.
	leftB := make([]float64, numClasses)
	for i := lo; i <= bestIdx; i++ {
		leftB[sy[i]]++
	}
	rightB := make([]float64, numClasses)
	for c := range rightB {
		rightB[c] = total[c] - leftB[c]
	}
	nl := float64(bestIdx - lo + 1)
	nr := float64(hi - bestIdx - 1)
	k := nonzero(total)
	kl := nonzero(leftB)
	kr := nonzero(rightB)

	gain := totalEnt - bestEnt
	delta := log2(math.Pow(3, float64(k))-2) -
		(float64(k)*totalEnt - float64(kl)*entropy(leftB, nl) - float64(kr)*entropy(rightB, nr))
	threshold := (log2(float64(n-1)) + delta) / float64(n)
	if gain <= threshold {
		return 0, 0, false
	}
	return bestIdx + 1, (sv[bestIdx] + sv[bestIdx+1]) / 2, true
}

func entropy(counts []float64, n float64) float64 {
	if n <= 0 {
		return 0
	}
	h := 0.0
	for _, c := range counts {
		if c > 0 {
			p := c / n
			h -= p * log2(p)
		}
	}
	return h
}

func nonzero(counts []float64) int {
	k := 0
	for _, c := range counts {
		if c > 0 {
			k++
		}
	}
	return k
}

func log2(x float64) float64 { return math.Log2(x) }

// discretizerSnapshot is the gob-encodable form of a fitted
// Discretizer.
type discretizerSnapshot struct {
	Cuts [][]float64
	Src  []dataset.Attribute
}

// MarshalBinary encodes the fitted cut points and source schema
// (encoding.BinaryMarshaler).
func (disc *Discretizer) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(discretizerSnapshot{Cuts: disc.cuts, Src: disc.src}); err != nil {
		return nil, fmt.Errorf("discretize: marshal: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary restores a Discretizer encoded by MarshalBinary.
func (disc *Discretizer) UnmarshalBinary(data []byte) error {
	var s discretizerSnapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&s); err != nil {
		return fmt.Errorf("discretize: unmarshal: %w", err)
	}
	if len(s.Cuts) != len(s.Src) {
		return fmt.Errorf("discretize: unmarshal: %d cut sets for %d attributes", len(s.Cuts), len(s.Src))
	}
	disc.cuts = s.Cuts
	disc.src = s.Src
	return nil
}
