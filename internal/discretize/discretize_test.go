package discretize

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dfpc/internal/dataset"
)

// numericDS builds a dataset with one numeric attribute whose values
// separate the two classes perfectly around 10.
func numericDS(n int) *dataset.Dataset {
	d := &dataset.Dataset{
		Name:    "num",
		Attrs:   []dataset.Attribute{{Name: "x", Kind: dataset.Numeric}},
		Classes: []string{"lo", "hi"},
	}
	for i := 0; i < n; i++ {
		v := float64(i)
		y := 0
		if v >= 10 {
			y = 1
		}
		d.Rows = append(d.Rows, []float64{v})
		d.Labels = append(d.Labels, y)
	}
	return d
}

func TestMDLFindsSeparatingCut(t *testing.T) {
	d := numericDS(20)
	disc, err := Fit(d, Options{Method: EntropyMDL})
	if err != nil {
		t.Fatal(err)
	}
	cuts := disc.Cuts(0)
	if len(cuts) == 0 {
		t.Fatal("MDL found no cut on a perfectly separable attribute")
	}
	// The first (and ideally only) cut should fall between 9 and 10.
	found := false
	for _, c := range cuts {
		if c > 9 && c < 10 {
			found = true
		}
	}
	if !found {
		t.Fatalf("cuts = %v, want one in (9,10)", cuts)
	}
}

func TestMDLRejectsRandomAttribute(t *testing.T) {
	// Class labels independent of the value: MDL should produce zero or
	// very few cuts.
	r := rand.New(rand.NewSource(5))
	d := &dataset.Dataset{
		Name:    "noise",
		Attrs:   []dataset.Attribute{{Name: "x", Kind: dataset.Numeric}},
		Classes: []string{"a", "b"},
	}
	for i := 0; i < 200; i++ {
		d.Rows = append(d.Rows, []float64{r.Float64()})
		d.Labels = append(d.Labels, r.Intn(2))
	}
	disc, err := Fit(d, Options{Method: EntropyMDL})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(disc.Cuts(0)); got > 2 {
		t.Fatalf("MDL produced %d cuts on noise, want <= 2", got)
	}
}

func TestApplyProducesCategorical(t *testing.T) {
	d := numericDS(20)
	out, err := FitApply(d, Options{Method: EntropyMDL})
	if err != nil {
		t.Fatal(err)
	}
	if out.Attrs[0].Kind != dataset.Categorical {
		t.Fatal("attribute still numeric after Apply")
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	// Low values map to bin 0, high values to the last bin.
	if out.Rows[0][0] != 0 {
		t.Fatalf("row 0 bin = %v, want 0", out.Rows[0][0])
	}
	last := out.Rows[19][0]
	if int(last) != len(out.Attrs[0].Values)-1 {
		t.Fatalf("row 19 bin = %v, want last bin", last)
	}
}

func TestApplyPreservesMissing(t *testing.T) {
	d := numericDS(20)
	d.Rows[3][0] = dataset.Missing
	out, err := FitApply(d, Options{Method: EqualWidth, Bins: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !dataset.IsMissing(out.Rows[3][0]) {
		t.Fatal("missing cell lost")
	}
}

func TestApplyLeavesCategoricalAlone(t *testing.T) {
	d := &dataset.Dataset{
		Name: "mixed",
		Attrs: []dataset.Attribute{
			{Name: "c", Kind: dataset.Categorical, Values: []string{"u", "v"}},
			{Name: "x", Kind: dataset.Numeric},
		},
		Classes: []string{"a", "b"},
		Rows:    [][]float64{{0, 1.0}, {1, 2.0}, {0, 3.0}, {1, 4.0}},
		Labels:  []int{0, 0, 1, 1},
	}
	out, err := FitApply(d, Options{Method: EqualWidth, Bins: 2})
	if err != nil {
		t.Fatal(err)
	}
	if out.Attrs[0].Values[1] != "v" || out.Rows[1][0] != 1 {
		t.Fatal("categorical attribute was modified")
	}
}

func TestEqualWidthCuts(t *testing.T) {
	vals := []float64{0, 10}
	cuts := equalWidthCuts(vals, 4)
	want := []float64{2.5, 5, 7.5}
	if len(cuts) != len(want) {
		t.Fatalf("cuts = %v", cuts)
	}
	for i := range want {
		if math.Abs(cuts[i]-want[i]) > 1e-9 {
			t.Fatalf("cuts = %v, want %v", cuts, want)
		}
	}
}

func TestEqualWidthDegenerate(t *testing.T) {
	if cuts := equalWidthCuts([]float64{5, 5, 5}, 4); cuts != nil {
		t.Fatalf("constant column should yield nil cuts, got %v", cuts)
	}
	if cuts := equalWidthCuts(nil, 4); cuts != nil {
		t.Fatalf("empty column should yield nil cuts, got %v", cuts)
	}
}

func TestEqualFrequencyCuts(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i)
	}
	cuts := equalFrequencyCuts(vals, 4)
	if len(cuts) != 3 {
		t.Fatalf("cuts = %v", cuts)
	}
	// Bins should each hold ~25 values.
	counts := make([]int, 4)
	for _, v := range vals {
		counts[binIndex(cuts, v)]++
	}
	for b, c := range counts {
		if c < 20 || c > 30 {
			t.Fatalf("bin %d holds %d values: %v", b, c, counts)
		}
	}
}

func TestEqualFrequencySkewed(t *testing.T) {
	// Heavily repeated value must not produce duplicate/unsorted cuts.
	vals := []float64{1, 1, 1, 1, 1, 1, 1, 1, 2, 3}
	cuts := equalFrequencyCuts(vals, 4)
	for i := 1; i < len(cuts); i++ {
		if cuts[i] <= cuts[i-1] {
			t.Fatalf("cuts not strictly increasing: %v", cuts)
		}
	}
}

func TestBinIndexBoundaries(t *testing.T) {
	cuts := []float64{1.0, 2.0}
	cases := []struct {
		v    float64
		want int
	}{{0.5, 0}, {1.0, 0}, {1.5, 1}, {2.0, 1}, {2.5, 2}}
	for _, c := range cases {
		if got := binIndex(cuts, c.v); got != c.want {
			t.Errorf("binIndex(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestBinLabels(t *testing.T) {
	labels := binLabels([]float64{1, 2})
	if len(labels) != 3 {
		t.Fatalf("labels = %v", labels)
	}
	if labels[0] != "(-inf-1]" || labels[2] != "(2-inf)" {
		t.Fatalf("labels = %v", labels)
	}
	if got := binLabels(nil); len(got) != 1 {
		t.Fatalf("no-cut labels = %v", got)
	}
}

func TestSchemaMismatch(t *testing.T) {
	d := numericDS(20)
	disc, err := Fit(d, Options{Method: EqualWidth})
	if err != nil {
		t.Fatal(err)
	}
	other := &dataset.Dataset{
		Name:    "other",
		Attrs:   []dataset.Attribute{{Name: "x", Kind: dataset.Numeric}, {Name: "y", Kind: dataset.Numeric}},
		Classes: []string{"a"},
		Rows:    [][]float64{{1, 2}},
		Labels:  []int{0},
	}
	if _, err := disc.Apply(other); err == nil {
		t.Fatal("expected schema mismatch error")
	}
}

func TestFitOnTrainApplyOnTest(t *testing.T) {
	train := numericDS(20)
	disc, err := Fit(train, Options{Method: EntropyMDL})
	if err != nil {
		t.Fatal(err)
	}
	// Test data outside the training range must still map to valid bins.
	test := &dataset.Dataset{
		Name:    "num",
		Attrs:   train.Attrs,
		Classes: train.Classes,
		Rows:    [][]float64{{-100}, {1000}},
		Labels:  []int{0, 1},
	}
	out, err := disc.Apply(test)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestQuickApplyAlwaysValid(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := &dataset.Dataset{
			Name:    "q",
			Attrs:   []dataset.Attribute{{Name: "x", Kind: dataset.Numeric}, {Name: "y", Kind: dataset.Numeric}},
			Classes: []string{"a", "b", "c"},
		}
		n := 10 + r.Intn(100)
		for i := 0; i < n; i++ {
			d.Rows = append(d.Rows, []float64{r.NormFloat64() * 10, r.Float64()})
			d.Labels = append(d.Labels, r.Intn(3))
		}
		for _, m := range []Method{EntropyMDL, EqualWidth, EqualFrequency} {
			out, err := FitApply(d, Options{Method: m, Bins: 2 + r.Intn(5)})
			if err != nil || out.Validate() != nil || !out.AllCategorical() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestChiMergeFindsSeparatingCut(t *testing.T) {
	d := numericDS(40)
	disc, err := Fit(d, Options{Method: ChiMerge})
	if err != nil {
		t.Fatal(err)
	}
	cuts := disc.Cuts(0)
	if len(cuts) == 0 {
		t.Fatal("ChiMerge found no cut on separable data")
	}
	found := false
	for _, c := range cuts {
		if c > 9 && c < 10 {
			found = true
		}
	}
	if !found {
		t.Fatalf("cuts = %v, want one in (9,10)", cuts)
	}
}

func TestChiMergeMergesNoise(t *testing.T) {
	// Labels independent of value: ChiMerge should merge down to few
	// intervals.
	r := rand.New(rand.NewSource(9))
	d := &dataset.Dataset{
		Name:    "noise",
		Attrs:   []dataset.Attribute{{Name: "x", Kind: dataset.Numeric}},
		Classes: []string{"a", "b"},
	}
	for i := 0; i < 300; i++ {
		d.Rows = append(d.Rows, []float64{r.Float64()})
		d.Labels = append(d.Labels, r.Intn(2))
	}
	disc, err := Fit(d, Options{Method: ChiMerge})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(disc.Cuts(0)); got > 9 {
		t.Fatalf("ChiMerge kept %d cuts on noise", got)
	}
}

func TestChiMergeRespectsMaxCuts(t *testing.T) {
	d := numericDS(60)
	disc, err := Fit(d, Options{Method: ChiMerge, MaxCuts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(disc.Cuts(0)); got > 2 {
		t.Fatalf("cuts = %d, want <= 2", got)
	}
}

func TestChiMergeThreshold(t *testing.T) {
	// df=1 → 3.841; df=2 → 5.991.
	if got := chiMergeThreshold(2); math.Abs(got-3.841) > 1e-9 {
		t.Fatalf("threshold df=1 = %v", got)
	}
	if got := chiMergeThreshold(3); math.Abs(got-5.991) > 1e-9 {
		t.Fatalf("threshold df=2 = %v", got)
	}
	// Large df via Wilson–Hilferty: df=30 → ≈43.77.
	if got := chiMergeThreshold(31); math.Abs(got-43.77) > 0.5 {
		t.Fatalf("threshold df=30 = %v", got)
	}
	if got := chiMergeThreshold(1); got != 3.841 {
		t.Fatalf("degenerate threshold = %v", got)
	}
}

func TestChiMergeEndToEnd(t *testing.T) {
	d := numericDS(40)
	out, err := FitApply(d, Options{Method: ChiMerge})
	if err != nil {
		t.Fatal(err)
	}
	if !out.AllCategorical() {
		t.Fatal("not categorical after ChiMerge")
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
}
