package discretize

import (
	"math"
	"sort"
)

// chiMergeCuts implements ChiMerge (Kerber, AAAI'92): intervals start
// as the distinct sorted values and adjacent intervals are repeatedly
// merged while the chi-squared statistic of their class distributions
// stays below the significance threshold — i.e. while the data cannot
// distinguish them — or while more than maxIntervals remain.
func chiMergeCuts(vals []float64, labels []int, numClasses int, threshold float64, maxIntervals int) []float64 {
	if len(vals) == 0 || numClasses < 1 {
		return nil
	}
	if maxIntervals < 2 {
		maxIntervals = 2
	}
	type iv struct {
		lo, hi float64
		counts []float64
		total  float64
	}
	// Group identical values.
	type pair struct {
		v float64
		y int
	}
	pairs := make([]pair, len(vals))
	for i := range vals {
		pairs[i] = pair{vals[i], labels[i]}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].v < pairs[j].v })
	var ivs []*iv
	for _, p := range pairs {
		if len(ivs) > 0 && ivs[len(ivs)-1].hi == p.v {
			last := ivs[len(ivs)-1]
			last.counts[p.y]++
			last.total++
			continue
		}
		c := make([]float64, numClasses)
		c[p.y] = 1
		ivs = append(ivs, &iv{lo: p.v, hi: p.v, counts: c, total: 1})
	}

	chi2 := func(a, b *iv) float64 {
		n := a.total + b.total
		out := 0.0
		for c := 0; c < numClasses; c++ {
			colSum := a.counts[c] + b.counts[c]
			if colSum == 0 {
				continue
			}
			for _, x := range []*iv{a, b} {
				e := x.total * colSum / n
				d := x.counts[c] - e
				out += d * d / e
			}
		}
		return out
	}

	for len(ivs) > 1 {
		// Find the most similar adjacent pair.
		best, bestChi := -1, 0.0
		for i := 0; i+1 < len(ivs); i++ {
			c := chi2(ivs[i], ivs[i+1])
			if best < 0 || c < bestChi {
				best, bestChi = i, c
			}
		}
		if bestChi > threshold && len(ivs) <= maxIntervals {
			break
		}
		// Merge best and best+1.
		a, b := ivs[best], ivs[best+1]
		a.hi = b.hi
		a.total += b.total
		for c := range a.counts {
			a.counts[c] += b.counts[c]
		}
		ivs = append(ivs[:best+1], ivs[best+2:]...)
	}

	cuts := make([]float64, 0, len(ivs)-1)
	for i := 0; i+1 < len(ivs); i++ {
		cuts = append(cuts, (ivs[i].hi+ivs[i+1].lo)/2)
	}
	return cuts
}

// chiMergeThreshold returns the chi-squared critical value at the 95%
// significance level for df = numClasses−1 (the ChiMerge default),
// from the standard table for small df and the Wilson–Hilferty
// approximation beyond it.
func chiMergeThreshold(numClasses int) float64 {
	table := []float64{0, 3.841, 5.991, 7.815, 9.488, 11.070, 12.592, 14.067, 15.507, 16.919}
	df := numClasses - 1
	if df <= 0 {
		return 3.841
	}
	if df < len(table) {
		return table[df]
	}
	// Wilson–Hilferty: χ²_p(df) ≈ df(1 − 2/(9df) + z_p√(2/(9df)))³.
	const z95 = 1.6449
	fdf := float64(df)
	t := 1 - 2/(9*fdf) + z95*math.Sqrt(2/(9*fdf))
	return fdf * t * t * t
}
