package nbayes

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// snapshot is the gob-encodable form of a trained Model.
type snapshot struct {
	NumClasses  int
	NumFeatures int
	LogPrior    []float64
	LogP        [][]float64
	LogQ        [][]float64
	Baseline    []float64
}

// MarshalBinary encodes the trained model (encoding.BinaryMarshaler).
func (m *Model) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(snapshot{
		NumClasses:  m.numClasses,
		NumFeatures: m.numFeatures,
		LogPrior:    m.logPrior,
		LogP:        m.logP,
		LogQ:        m.logQ,
		Baseline:    m.baseline,
	})
	if err != nil {
		return nil, fmt.Errorf("nbayes: marshal: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary restores a model encoded by MarshalBinary.
func (m *Model) UnmarshalBinary(data []byte) error {
	var s snapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&s); err != nil {
		return fmt.Errorf("nbayes: unmarshal: %w", err)
	}
	if s.NumClasses < 1 || s.NumFeatures < 1 {
		return fmt.Errorf("nbayes: unmarshal: bad dimensions (%d, %d)", s.NumClasses, s.NumFeatures)
	}
	m.numClasses = s.NumClasses
	m.numFeatures = s.NumFeatures
	m.logPrior = s.LogPrior
	m.logP = s.LogP
	m.logQ = s.LogQ
	m.baseline = s.Baseline
	return nil
}
