// Package nbayes implements a Bernoulli naive Bayes classifier over
// sparse binary feature rows. The paper's framework is learner-
// agnostic ("any learning algorithm can be used" — Section 5); naive
// Bayes is the simplest probabilistic instance and doubles as a fast
// baseline in the learner ablation.
package nbayes

import (
	"fmt"
	"math"
)

// Config configures training.
type Config struct {
	// Alpha is the Laplace smoothing pseudo-count (default 1).
	Alpha float64
}

// Model is a trained Bernoulli naive Bayes classifier.
type Model struct {
	numClasses  int
	numFeatures int
	logPrior    []float64
	// logP[c][f] is log P(f=1 | c); logQ[c][f] is log P(f=0 | c).
	logP [][]float64
	logQ [][]float64
	// baseline[c] = logPrior[c] + Σ_f logQ[c][f]: the all-absent score,
	// precomputed so prediction is O(|x|) per class.
	baseline []float64
}

// Train fits the model on sparse binary rows x (sorted feature IDs in
// [0, numFeatures)) with labels y in [0, numClasses).
func Train(x [][]int32, y []int, numClasses, numFeatures int, cfg Config) (*Model, error) {
	if len(x) == 0 {
		return nil, fmt.Errorf("nbayes: empty training set")
	}
	if len(x) != len(y) {
		return nil, fmt.Errorf("nbayes: %d rows, %d labels", len(x), len(y))
	}
	if numClasses < 1 || numFeatures < 1 {
		return nil, fmt.Errorf("nbayes: numClasses = %d, numFeatures = %d", numClasses, numFeatures)
	}
	alpha := cfg.Alpha
	if alpha <= 0 {
		alpha = 1
	}
	classCount := make([]float64, numClasses)
	featCount := make([][]float64, numClasses)
	for c := range featCount {
		featCount[c] = make([]float64, numFeatures)
	}
	for i, row := range x {
		if y[i] < 0 || y[i] >= numClasses {
			return nil, fmt.Errorf("nbayes: label %d out of range [0,%d)", y[i], numClasses)
		}
		classCount[y[i]]++
		for _, f := range row {
			if f < 0 || int(f) >= numFeatures {
				return nil, fmt.Errorf("nbayes: feature %d out of range [0,%d)", f, numFeatures)
			}
			featCount[y[i]][f]++
		}
	}
	n := float64(len(x))
	m := &Model{
		numClasses:  numClasses,
		numFeatures: numFeatures,
		logPrior:    make([]float64, numClasses),
		logP:        make([][]float64, numClasses),
		logQ:        make([][]float64, numClasses),
	}
	m.baseline = make([]float64, numClasses)
	for c := 0; c < numClasses; c++ {
		m.logPrior[c] = math.Log((classCount[c] + alpha) / (n + alpha*float64(numClasses)))
		m.logP[c] = make([]float64, numFeatures)
		m.logQ[c] = make([]float64, numFeatures)
		m.baseline[c] = m.logPrior[c]
		for f := 0; f < numFeatures; f++ {
			p := (featCount[c][f] + alpha) / (classCount[c] + 2*alpha)
			m.logP[c][f] = math.Log(p)
			m.logQ[c][f] = math.Log(1 - p)
			m.baseline[c] += m.logQ[c][f]
		}
	}
	return m, nil
}

// Predict returns the MAP class for a sparse binary row. Features
// outside the trained range are ignored.
func (m *Model) Predict(x []int32) int {
	best, bestScore := 0, math.Inf(-1)
	for c := 0; c < m.numClasses; c++ {
		// Start from the all-absent baseline, then swap in present
		// features: score = baseline + Σ_{f∈x} (logP − logQ).
		score := m.baseline[c]
		for _, f := range x {
			if int(f) < m.numFeatures {
				score += m.logP[c][f] - m.logQ[c][f]
			}
		}
		if score > bestScore {
			best, bestScore = c, score
		}
	}
	return best
}

// PredictAll predicts every row.
func (m *Model) PredictAll(x [][]int32) []int {
	out := make([]int, len(x))
	for i, row := range x {
		out[i] = m.Predict(row)
	}
	return out
}
