package nbayes

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSeparableData(t *testing.T) {
	var x [][]int32
	var y []int
	for i := 0; i < 40; i++ {
		if i%2 == 0 {
			x = append(x, []int32{0})
			y = append(y, 0)
		} else {
			x = append(x, []int32{1})
			y = append(y, 1)
		}
	}
	m, err := Train(x, y, 2, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if got := m.Predict(x[i]); got != y[i] {
			t.Fatalf("row %d = %d, want %d", i, got, y[i])
		}
	}
}

func TestPriorDominatesWithoutEvidence(t *testing.T) {
	// 90% of rows are class 0; an empty row must predict class 0.
	var x [][]int32
	var y []int
	for i := 0; i < 100; i++ {
		x = append(x, nil)
		if i < 90 {
			y = append(y, 0)
		} else {
			y = append(y, 1)
		}
	}
	m, err := Train(x, y, 2, 3, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict(nil); got != 0 {
		t.Fatalf("empty row predicted %d, want majority 0", got)
	}
}

func TestHandComputedPosterior(t *testing.T) {
	// 4 rows: class 0 = {f0}, {f0}; class 1 = {}, {}. Alpha 1.
	// P(f0|c0) = (2+1)/(2+2) = 0.75; P(f0|c1) = (0+1)/(2+2) = 0.25.
	x := [][]int32{{0}, {0}, {}, {}}
	y := []int{0, 0, 1, 1}
	m, err := Train(x, y, 2, 1, Config{Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := math.Exp(m.logP[0][0]); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("P(f0|c0) = %v, want 0.75", got)
	}
	if got := math.Exp(m.logP[1][0]); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("P(f0|c1) = %v, want 0.25", got)
	}
	if m.Predict([]int32{0}) != 0 || m.Predict(nil) != 1 {
		t.Fatal("posterior decisions wrong")
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, nil, 2, 2, Config{}); err == nil {
		t.Fatal("empty set should error")
	}
	if _, err := Train([][]int32{{0}}, []int{0, 1}, 2, 2, Config{}); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := Train([][]int32{{0}}, []int{5}, 2, 2, Config{}); err == nil {
		t.Fatal("bad label should error")
	}
	if _, err := Train([][]int32{{9}}, []int{0}, 2, 2, Config{}); err == nil {
		t.Fatal("out-of-range feature should error")
	}
	if _, err := Train([][]int32{{0}}, []int{0}, 0, 2, Config{}); err == nil {
		t.Fatal("numClasses=0 should error")
	}
}

func TestUnknownFeatureIgnored(t *testing.T) {
	x := [][]int32{{0}, {1}}
	y := []int{0, 1}
	m, err := Train(x, y, 2, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Feature 99 was never seen; prediction must not panic and should
	// fall back to the known evidence.
	if got := m.Predict([]int32{0, 99}); got != 0 {
		t.Fatalf("got %d, want 0", got)
	}
}

func TestQuickBeatsOrMatchesMajority(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 50 + r.Intn(200)
		var x [][]int32
		var y []int
		count := [2]int{}
		for i := 0; i < n; i++ {
			c := r.Intn(2)
			var row []int32
			if c == 1 && r.Intn(4) != 0 {
				row = append(row, 0)
			}
			if r.Intn(2) == 0 {
				row = append(row, 1)
			}
			x = append(x, row)
			y = append(y, c)
			count[c]++
		}
		m, err := Train(x, y, 2, 2, Config{})
		if err != nil {
			return false
		}
		correct := 0
		for i := range x {
			if m.Predict(x[i]) == y[i] {
				correct++
			}
		}
		maj := count[0]
		if count[1] > maj {
			maj = count[1]
		}
		return correct >= maj
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPredict(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	var x [][]int32
	var y []int
	for i := 0; i < 500; i++ {
		var row []int32
		for f := int32(0); f < 50; f++ {
			if r.Intn(3) == 0 {
				row = append(row, f)
			}
		}
		x = append(x, row)
		y = append(y, r.Intn(3))
	}
	m, err := Train(x, y, 3, 50, Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(x[i%len(x)])
	}
}
