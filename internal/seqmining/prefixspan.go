// Package seqmining implements frequent sequential-pattern mining with
// PrefixSpan (Pei et al., ICDE'01 — reference [16] of the paper) and a
// sequence classification pipeline built on it. The paper's conclusion
// names sequences as the first extension target of the framework ("The
// framework is also applicable to more complex patterns, including
// sequences and graphs"); this package realizes that extension: mine
// frequent subsequences per class, select discriminative ones with
// MMRFS, and train any of the library's learners on the binary
// presence features.
package seqmining

import (
	"errors"
	"fmt"
	"sort"
)

// Sequence is an ordered list of events (single items per element; the
// itemset-element generalization is not needed for the classification
// use case here).
type Sequence []int32

// Pattern is a frequent subsequence with its absolute support.
type Pattern struct {
	Events  []int32
	Support int
}

// Len returns the pattern length.
func (p Pattern) Len() int { return len(p.Events) }

// Key returns a canonical map key.
func (p Pattern) Key() string {
	b := make([]byte, 0, 4*len(p.Events))
	for _, e := range p.Events {
		b = append(b, byte(e), byte(e>>8), byte(e>>16), byte(e>>24))
	}
	return string(b)
}

func (p Pattern) String() string {
	return fmt.Sprintf("%v:%d", p.Events, p.Support)
}

// ErrPatternBudget mirrors mining.ErrPatternBudget for sequences.
var ErrPatternBudget = errors.New("seqmining: pattern budget exceeded")

// Options configures a PrefixSpan run.
type Options struct {
	// MinSupport is the absolute minimum support (≥ 1).
	MinSupport int
	// MaxLen caps pattern length (0 = unlimited).
	MaxLen int
	// MaxPatterns aborts with ErrPatternBudget (0 = unlimited).
	MaxPatterns int
}

// PrefixSpan mines all frequent subsequences of the database. A
// sequence supports a pattern if the pattern's events occur in order
// (gaps allowed). Patterns are returned in discovery order.
func PrefixSpan(db []Sequence, opt Options) ([]Pattern, error) {
	if opt.MinSupport < 1 {
		return nil, fmt.Errorf("seqmining: MinSupport = %d, want >= 1", opt.MinSupport)
	}
	m := &spanMiner{opt: opt}
	// Initial projected database: every sequence from position 0.
	proj := make([]projection, len(db))
	for i := range db {
		proj[i] = projection{seq: i, pos: 0}
	}
	err := m.mine(db, proj, nil)
	return m.out, err
}

// projection marks a suffix of one database sequence: events from pos.
type projection struct {
	seq int
	pos int
}

type spanMiner struct {
	opt Options
	out []Pattern
}

func (m *spanMiner) mine(db []Sequence, proj []projection, prefix []int32) error {
	// Count, per event, the projected sequences whose suffix contains it.
	counts := map[int32]int{}
	for _, pr := range proj {
		seen := map[int32]bool{}
		for _, e := range db[pr.seq][pr.pos:] {
			if !seen[e] {
				seen[e] = true
				counts[e]++
			}
		}
	}
	events := make([]int32, 0, len(counts))
	for e, c := range counts {
		if c >= m.opt.MinSupport {
			events = append(events, e)
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i] < events[j] })

	for _, e := range events {
		newPrefix := append(append([]int32(nil), prefix...), e)
		if m.opt.MaxPatterns > 0 && len(m.out) >= m.opt.MaxPatterns {
			return ErrPatternBudget
		}
		m.out = append(m.out, Pattern{Events: newPrefix, Support: counts[e]})
		if m.opt.MaxLen > 0 && len(newPrefix) >= m.opt.MaxLen {
			continue
		}
		// Project: advance each supporting sequence past its first
		// occurrence of e.
		var next []projection
		for _, pr := range proj {
			s := db[pr.seq]
			for k := pr.pos; k < len(s); k++ {
				if s[k] == e {
					if k+1 < len(s) {
						next = append(next, projection{seq: pr.seq, pos: k + 1})
					}
					break
				}
			}
		}
		if len(next) >= m.opt.MinSupport {
			if err := m.mine(db, next, newPrefix); err != nil {
				return err
			}
		}
	}
	return nil
}

// Contains reports whether seq contains pat as a subsequence (order
// preserved, gaps allowed).
func Contains(seq Sequence, pat []int32) bool {
	i := 0
	for _, e := range seq {
		if i < len(pat) && e == pat[i] {
			i++
		}
	}
	return i == len(pat)
}

// SortPatterns orders patterns canonically (support desc, length asc,
// lexicographic events).
func SortPatterns(ps []Pattern) {
	sort.Slice(ps, func(i, j int) bool {
		a, b := ps[i], ps[j]
		if a.Support != b.Support {
			return a.Support > b.Support
		}
		if len(a.Events) != len(b.Events) {
			return len(a.Events) < len(b.Events)
		}
		for k := range a.Events {
			if a.Events[k] != b.Events[k] {
				return a.Events[k] < b.Events[k]
			}
		}
		return false
	})
}
