package seqmining

import (
	"fmt"

	"dfpc/internal/bitset"
	"dfpc/internal/featsel"
	"dfpc/internal/svm"
)

// Classifier applies the paper's framework to sequence data: frequent
// subsequences are mined per class with PrefixSpan, MMRFS selects the
// discriminative ones, and a linear SVM is trained on the binary
// presence features (single events plus selected subsequences).
type Classifier struct {
	// MinSupport is the relative per-class mining support (default 0.2).
	MinSupport float64
	// Coverage is MMRFS's δ (default 3).
	Coverage int
	// MaxLen caps subsequence length (default 4).
	MaxLen int
	// MaxPatterns caps the mined pool (default 200000).
	MaxPatterns int
	// SVMC is the soft-margin penalty (default 1).
	SVMC float64

	numEvents  int
	numClasses int
	patterns   []Pattern
	model      *svm.Model

	// Stats from the last Fit.
	MinedCount    int
	SelectedCount int
}

func (c *Classifier) withDefaults() {
	if c.MinSupport <= 0 {
		c.MinSupport = 0.2
	}
	if c.Coverage <= 0 {
		c.Coverage = 3
	}
	if c.MaxLen <= 0 {
		c.MaxLen = 4
	}
	if c.MaxPatterns <= 0 {
		c.MaxPatterns = 200_000
	}
	if c.SVMC <= 0 {
		c.SVMC = 1
	}
}

// Fit trains on the sequence database with labels y in [0, numClasses).
func (c *Classifier) Fit(db []Sequence, y []int, numClasses int) error {
	if len(db) == 0 {
		return fmt.Errorf("seqmining: empty training set")
	}
	if len(db) != len(y) {
		return fmt.Errorf("seqmining: %d sequences, %d labels", len(db), len(y))
	}
	if numClasses < 1 {
		return fmt.Errorf("seqmining: numClasses = %d", numClasses)
	}
	c.withDefaults()
	c.numClasses = numClasses
	c.numEvents = 0
	for _, s := range db {
		for _, e := range s {
			if int(e) >= c.numEvents {
				c.numEvents = int(e) + 1
			}
		}
	}

	// Per-class mining, deduplicated union, as in mining.MinePerClass.
	byClass := make([][]Sequence, numClasses)
	for i, s := range db {
		if y[i] < 0 || y[i] >= numClasses {
			return fmt.Errorf("seqmining: label %d out of range [0,%d)", y[i], numClasses)
		}
		byClass[y[i]] = append(byClass[y[i]], s)
	}
	seen := map[string]bool{}
	var pool []Pattern
	for cl := 0; cl < numClasses; cl++ {
		if len(byClass[cl]) == 0 {
			continue
		}
		abs := int(c.MinSupport*float64(len(byClass[cl])) + 0.5)
		if abs < 1 {
			abs = 1
		}
		ps, err := PrefixSpan(byClass[cl], Options{
			MinSupport:  abs,
			MaxLen:      c.MaxLen,
			MaxPatterns: c.MaxPatterns - len(pool),
		})
		if err != nil {
			return fmt.Errorf("seqmining: class %d: %w", cl, err)
		}
		for _, p := range ps {
			if p.Len() < 2 {
				continue // single events are base features already
			}
			if seen[p.Key()] {
				continue
			}
			seen[p.Key()] = true
			pool = append(pool, p)
		}
	}
	c.MinedCount = len(pool)

	// MMRFS over subsequence candidates, coverage computed on the full
	// training database.
	classMasks := make([]*bitset.Bitset, numClasses)
	for cl := range classMasks {
		classMasks[cl] = bitset.New(len(db))
	}
	for i, yi := range y {
		classMasks[yi].Set(i)
	}
	cands := make([]featsel.Candidate, len(pool))
	for i, p := range pool {
		cov := bitset.New(len(db))
		for si, s := range db {
			if Contains(s, p.Events) {
				cov.Set(si)
			}
		}
		cands[i] = featsel.Candidate{Cover: cov}
	}
	sel, err := featsel.MMRFS(cands, classMasks, y, featsel.Options{Coverage: c.Coverage})
	if err != nil {
		return err
	}
	c.patterns = make([]Pattern, len(sel.Selected))
	for i, idx := range sel.Selected {
		c.patterns[i] = pool[idx]
	}
	SortPatterns(c.patterns)
	c.SelectedCount = len(c.patterns)

	x := make([][]int32, len(db))
	for i, s := range db {
		x[i] = c.featureVector(s)
	}
	c.model, err = svm.Train(x, y, numClasses, svm.Config{
		C:           c.SVMC,
		NumFeatures: c.numEvents + len(c.patterns),
	})
	return err
}

// featureVector encodes a sequence as sorted binary features: distinct
// events present, then matched subsequence patterns.
func (c *Classifier) featureVector(s Sequence) []int32 {
	// A dense presence slice instead of a map: one allocation sized by
	// the event vocabulary, no per-entry bucket churn on the hot path.
	present := make([]bool, c.numEvents)
	for _, e := range s {
		if int(e) < c.numEvents {
			present[e] = true
		}
	}
	out := make([]int32, 0, c.numEvents+len(c.patterns))
	for e := int32(0); int(e) < c.numEvents; e++ {
		if present[e] {
			out = append(out, e)
		}
	}
	for j := range c.patterns {
		if Contains(s, c.patterns[j].Events) {
			out = append(out, int32(c.numEvents+j))
		}
	}
	return out
}

// Patterns returns the subsequence features selected by the last Fit,
// in canonical order.
func (c *Classifier) Patterns() []Pattern {
	out := make([]Pattern, len(c.patterns))
	copy(out, c.patterns)
	return out
}

// Predict classifies one sequence.
func (c *Classifier) Predict(s Sequence) (int, error) {
	if c.model == nil {
		return 0, fmt.Errorf("seqmining: Predict before Fit")
	}
	return c.model.Predict(c.featureVector(s)), nil
}

// PredictAll classifies every sequence.
func (c *Classifier) PredictAll(db []Sequence) ([]int, error) {
	out := make([]int, len(db))
	for i, s := range db {
		y, err := c.Predict(s)
		if err != nil {
			return nil, err
		}
		out[i] = y
	}
	return out, nil
}
