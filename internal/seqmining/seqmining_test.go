package seqmining

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// bruteForceSeq enumerates all subsequences up to maxLen over the
// events present and returns those with support >= minSup.
func bruteForceSeq(db []Sequence, minSup, maxLen int) []Pattern {
	eventSet := map[int32]bool{}
	for _, s := range db {
		for _, e := range s {
			eventSet[e] = true
		}
	}
	var events []int32
	for e := range eventSet {
		events = append(events, e)
	}
	sort.Slice(events, func(i, j int) bool { return events[i] < events[j] })

	var out []Pattern
	var cur []int32
	var rec func()
	rec = func() {
		if len(cur) > 0 {
			sup := 0
			for _, s := range db {
				if Contains(s, cur) {
					sup++
				}
			}
			if sup < minSup {
				return
			}
			out = append(out, Pattern{Events: append([]int32(nil), cur...), Support: sup})
		}
		if maxLen > 0 && len(cur) >= maxLen {
			return
		}
		for _, e := range events {
			cur = append(cur, e)
			rec()
			cur = cur[:len(cur)-1]
		}
	}
	rec()
	return out
}

func patsEqual(a, b []Pattern) bool {
	if len(a) != len(b) {
		return false
	}
	SortPatterns(a)
	SortPatterns(b)
	for i := range a {
		if a[i].Support != b[i].Support || len(a[i].Events) != len(b[i].Events) {
			return false
		}
		for j := range a[i].Events {
			if a[i].Events[j] != b[i].Events[j] {
				return false
			}
		}
	}
	return true
}

func TestContains(t *testing.T) {
	s := Sequence{1, 2, 3, 2, 4}
	cases := []struct {
		pat  []int32
		want bool
	}{
		{[]int32{1, 3, 4}, true},
		{[]int32{2, 2}, true},
		{[]int32{3, 1}, false},
		{[]int32{4, 4}, false},
		{nil, true},
		{[]int32{1, 2, 3, 2, 4}, true},
	}
	for _, c := range cases {
		if got := Contains(s, c.pat); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.pat, got, c.want)
		}
	}
}

func TestPrefixSpanSmall(t *testing.T) {
	db := []Sequence{
		{0, 1, 2},
		{0, 2},
		{1, 2},
		{0, 1},
	}
	got, err := PrefixSpan(db, Options{MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := bruteForceSeq(db, 2, 0)
	if !patsEqual(got, want) {
		t.Fatalf("mismatch\ngot:  %v\nwant: %v", got, want)
	}
}

func TestPrefixSpanMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := make([]Sequence, 4+r.Intn(12))
		for i := range db {
			n := 1 + r.Intn(6)
			s := make(Sequence, n)
			for j := range s {
				s[j] = int32(r.Intn(4))
			}
			db[i] = s
		}
		minSup := 1 + r.Intn(3)
		maxLen := 1 + r.Intn(4)
		got, err := PrefixSpan(db, Options{MinSupport: minSup, MaxLen: maxLen})
		if err != nil {
			return false
		}
		return patsEqual(got, bruteForceSeq(db, minSup, maxLen))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixSpanRepeatedEvents(t *testing.T) {
	// Patterns with repeated events must be found: {0,0} has support 2.
	db := []Sequence{{0, 1, 0}, {0, 0}, {0, 1}}
	got, err := PrefixSpan(db, Options{MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range got {
		if len(p.Events) == 2 && p.Events[0] == 0 && p.Events[1] == 0 {
			found = p.Support == 2
		}
	}
	if !found {
		t.Fatalf("pattern {0,0}:2 not mined: %v", got)
	}
}

func TestPrefixSpanBudget(t *testing.T) {
	db := []Sequence{{0, 1, 2, 3}, {0, 1, 2, 3}}
	_, err := PrefixSpan(db, Options{MinSupport: 1, MaxPatterns: 3})
	if !errors.Is(err, ErrPatternBudget) {
		t.Fatalf("err = %v, want budget error", err)
	}
}

func TestPrefixSpanValidation(t *testing.T) {
	if _, err := PrefixSpan(nil, Options{MinSupport: 0}); err == nil {
		t.Fatal("MinSupport=0 should error")
	}
}

// seqDataset builds a sequence classification task: class 0 sequences
// contain the ordered motif 5→6, class 1 the motif 6→5, embedded in
// random noise. Single events are identical across classes; only the
// ORDER discriminates — the sequential analogue of the paper's XOR.
func seqDataset(n int, seed int64) (db []Sequence, y []int) {
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		c := i % 2
		var s Sequence
		for j := 0; j < 3+r.Intn(4); j++ {
			s = append(s, int32(r.Intn(5)))
		}
		if c == 0 {
			s = append(s, 5)
			s = append(s, int32(r.Intn(5)))
			s = append(s, 6)
		} else {
			s = append(s, 6)
			s = append(s, int32(r.Intn(5)))
			s = append(s, 5)
		}
		for j := 0; j < r.Intn(3); j++ {
			s = append(s, int32(r.Intn(5)))
		}
		db = append(db, s)
		y = append(y, c)
	}
	return db, y
}

func TestSequenceClassifierOrderMotifs(t *testing.T) {
	db, y := seqDataset(120, 3)
	clf := &Classifier{MinSupport: 0.4, MaxLen: 3}
	if err := clf.Fit(db, y, 2); err != nil {
		t.Fatal(err)
	}
	if clf.SelectedCount == 0 {
		t.Fatal("no subsequence features selected")
	}
	pred, err := clf.PredictAll(db)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range pred {
		if pred[i] == y[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(len(pred))
	if acc < 0.95 {
		t.Fatalf("training accuracy %v; order motifs not captured", acc)
	}
}

func TestSequenceClassifierHoldout(t *testing.T) {
	db, y := seqDataset(200, 9)
	clf := &Classifier{MinSupport: 0.4, MaxLen: 3}
	if err := clf.Fit(db[:150], y[:150], 2); err != nil {
		t.Fatal(err)
	}
	pred, err := clf.PredictAll(db[150:])
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range pred {
		if pred[i] == y[150+i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(pred)); acc < 0.85 {
		t.Fatalf("holdout accuracy %v", acc)
	}
}

func TestSequenceClassifierErrors(t *testing.T) {
	clf := &Classifier{}
	if err := clf.Fit(nil, nil, 2); err == nil {
		t.Fatal("empty db should error")
	}
	if err := clf.Fit([]Sequence{{0}}, []int{0, 1}, 2); err == nil {
		t.Fatal("length mismatch should error")
	}
	if err := clf.Fit([]Sequence{{0}}, []int{9}, 2); err == nil {
		t.Fatal("bad label should error")
	}
	if _, err := (&Classifier{}).Predict(Sequence{0}); err == nil {
		t.Fatal("Predict before Fit should error")
	}
}
