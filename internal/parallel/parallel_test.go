package parallel

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"dfpc/internal/guard"
)

func TestWorkersResolve(t *testing.T) {
	if got := Workers(0).Resolve(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0).Resolve() = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(1).Resolve(); got != 1 {
		t.Errorf("Workers(1).Resolve() = %d, want 1", got)
	}
	if got := Workers(-3).Resolve(); got != 1 {
		t.Errorf("Workers(-3).Resolve() = %d, want 1", got)
	}
	if got := Workers(8).Resolve(); got != 8 {
		t.Errorf("Workers(8).Resolve() = %d, want 8", got)
	}
}

func TestWorkersGobTransparent(t *testing.T) {
	type carrier struct {
		Name    string
		Workers Workers
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(carrier{Name: "m", Workers: 7}); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var back carrier
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if back.Workers != 0 {
		t.Errorf("decoded Workers = %d, want 0 (machine-resolved)", back.Workers)
	}
	if back.Name != "m" {
		t.Errorf("sibling field lost in round-trip: %q", back.Name)
	}
}

func TestForEachCoversEveryIndex(t *testing.T) {
	for _, w := range []Workers{1, 2, 8, 0} {
		const n = 1000
		hits := make([]int32, n)
		if err := ForEach(w, n, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", w, i, h)
			}
		}
	}
}

func TestForEachSequentialSpawnsNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	inLoop := 0
	if err := ForEach(1, 100, func(i int) error {
		if g := runtime.NumGoroutine(); g > inLoop {
			//vet:ignore parasafe workers==1 is the zero-goroutine sequential path; the captured write is the point of this test
			inLoop = g
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if inLoop > before {
		t.Errorf("sequential ForEach grew goroutine count %d -> %d", before, inLoop)
	}
}

func TestForEachLowestIndexError(t *testing.T) {
	// Indices 3 and 7 fail; the lowest must win at any worker count.
	for _, w := range []Workers{1, 2, 8} {
		err := ForEach(w, 10, func(i int) error {
			if i == 3 || i == 7 {
				return fmt.Errorf("boom %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "boom 3" {
			t.Errorf("workers=%d: err = %v, want boom 3", w, err)
		}
	}
}

func TestForEachEarlyExit(t *testing.T) {
	// After index 0 fails, the pool must not claim far-away indices.
	var ran atomic.Int64
	err := ForEach(4, 1_000_000, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return errors.New("first")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if n := ran.Load(); n > 10_000 {
		t.Errorf("early exit claimed %d indices; expected a small prefix", n)
	}
}

func TestForEachPanicCapture(t *testing.T) {
	for _, w := range []Workers{1, 4} {
		err := ForEach(w, 8, func(i int) error {
			if i == 2 {
				panic("kaboom")
			}
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", w, err)
		}
		if pe.Index != 2 || fmt.Sprint(pe.Value) != "kaboom" || len(pe.Stack) == 0 {
			t.Errorf("workers=%d: PanicError = {%d %v stack:%d}", w, pe.Index, pe.Value, len(pe.Stack))
		}
	}
}

func TestForEachGuardCancellation(t *testing.T) {
	// Satellite: cancellation inside a parallel region must surface
	// promptly as ErrCanceled, with each worker polling its own forked
	// guard so the amortization counter is goroutine-local.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	root := guard.New(ctx, guard.Limits{})
	err := ForEach(4, 8, func(i int) error {
		g := root.Fork() // goroutine-local guard: fresh amortization counter
		if i == 0 {      // index 0 is always claimed before the pool can drain
			cancel()
			return g.CheckNow()
		}
		for { // spin until cancellation propagates to this worker's guard
			if err := g.CheckNow(); err != nil {
				return err
			}
		}
	})
	if !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestMapOrdersResults(t *testing.T) {
	for _, w := range []Workers{1, 2, 8} {
		out, err := Map(w, 64, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", w, i, v)
			}
		}
	}
	if _, err := Map(3, 5, func(i int) (int, error) {
		if i >= 1 {
			return 0, fmt.Errorf("e%d", i)
		}
		return 0, nil
	}); err == nil || err.Error() != "e1" {
		t.Errorf("Map error = %v, want e1", err)
	}
}

func TestChunks(t *testing.T) {
	cases := []struct{ n, parts, want int }{
		{10, 3, 3}, {10, 1, 1}, {3, 8, 3}, {0, 4, 0}, {7, 7, 7},
	}
	for _, c := range cases {
		chunks := Chunks(c.n, c.parts)
		if len(chunks) != c.want {
			t.Errorf("Chunks(%d,%d) = %d chunks, want %d", c.n, c.parts, len(chunks), c.want)
			continue
		}
		prev := 0
		for _, ch := range chunks {
			if ch[0] != prev || ch[1] <= ch[0] {
				t.Errorf("Chunks(%d,%d): bad chunk %v after %d", c.n, c.parts, ch, prev)
			}
			prev = ch[1]
		}
		if c.n > 0 && prev != c.n {
			t.Errorf("Chunks(%d,%d) covers [0,%d)", c.n, c.parts, prev)
		}
	}
}
