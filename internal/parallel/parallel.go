// Package parallel is the pipeline's deterministic execution layer: a
// bounded worker pool over index ranges, built only on the stdlib.
// Every compute stage that fans out — CV folds, per-class mining, the
// MMRFS gain scan, one-vs-one SVM subproblems — schedules through
// ForEach/Map so the concurrency discipline lives in one place.
//
// The layer's contract is determinism: for any worker count, the same
// inputs produce the same outputs. The primitives make that easy to
// uphold:
//
//   - Work items are claimed in ascending index order from one atomic
//     counter, and callers write results only into their own index's
//     slot, so merges in index order reproduce the sequential result.
//   - On failure, ForEach returns the error of the lowest index that
//     errored — the same error a sequential loop would have returned —
//     because every index below a failed one was already claimed and
//     runs to completion before the pool drains.
//   - Workers == 1 is an exact sequential fallback: the caller's
//     goroutine runs every index in order and zero goroutines are
//     spawned, so "parallel off" is not merely "one worker" but the
//     plain loop it replaces.
//
// Early exit is cooperative: after the first error no new index is
// claimed, in-flight indices finish, and cancellation surfacing as a
// guard sentinel from any worker stops the pool the same way.
package parallel

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Workers configures a stage's worker count: 0 resolves to
// runtime.GOMAXPROCS(0), 1 (or any negative value) to the exact
// sequential fallback, and n > 1 to at most n concurrent workers.
//
// Workers rides inside configs that are gob-snapshotted with saved
// models (core.Config); like obs.LogHandle it encodes as nothing, so a
// loaded model resolves its worker count from the machine it runs on,
// not the machine it was trained on.
type Workers int

// Resolve returns the effective worker count: GOMAXPROCS for 0,
// 1 for negative values, w otherwise.
func (w Workers) Resolve() int {
	switch {
	case w == 0:
		return runtime.GOMAXPROCS(0)
	case w < 1:
		return 1
	default:
		return int(w)
	}
}

// GobEncode makes configs embedding a Workers field encodable without
// persisting the count; worker counts are a property of the executing
// machine, not of a trained model.
func (w Workers) GobEncode() ([]byte, error) { return nil, nil }

// GobDecode restores nothing: a decoded Workers is 0, which resolves
// to GOMAXPROCS at run time.
func (w *Workers) GobDecode([]byte) error { return nil }

// PanicError wraps a panic recovered from a work item, in both the
// sequential and the parallel path, so a panicking closure surfaces as
// an ordinary error instead of tearing down an unrelated goroutine.
type PanicError struct {
	// Index is the work-item index whose closure panicked.
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack at recovery time.
	Stack []byte
}

func (e *PanicError) Error() string {
	//vet:ignore hotalloc panic report formatted only on the failure path
	return fmt.Sprintf("parallel: index %d panicked: %v", e.Index, e.Value)
}

// call runs fn(i) with panic capture.
func call(fn func(int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(i)
}

// ForEach runs fn(i) for every i in [0, n) on up to w.Resolve()
// workers and returns the first error in index order (nil when every
// index succeeds). With one worker it degenerates to an in-goroutine
// sequential loop that stops at the first error.
//
// Closures must keep their writes index-partitioned — out[i] only, for
// their own i — which is what makes index-ordered merges reproduce the
// sequential result exactly (the parasafe analyzer machine-checks call
// sites). After an error no new index is claimed; indices already
// claimed run to completion, so every index below the returned error's
// ran fully, exactly as in the sequential loop.
func ForEach(w Workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := w.Resolve()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := call(fn, i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next atomic.Int64 // next unclaimed index
		stop atomic.Bool  // set on first error: claim nothing further

		mu      sync.Mutex
		loIdx   int
		loErr   error
		haveErr bool
	)
	record := func(i int, err error) {
		mu.Lock()
		if !haveErr || i < loIdx {
			loIdx, loErr, haveErr = i, err, true
		}
		mu.Unlock()
		stop.Store(true)
	}
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		//vet:ignore nondeterm this IS the deterministic pool: workers race only over the atomic index; outputs are index-partitioned
		go func() {
			defer wg.Done()
			for !stop.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := call(fn, i); err != nil {
					record(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return loErr
}

// Map runs fn over [0, n) under ForEach's scheduling and returns the
// results in index order, or the first (index-ordered) error.
func Map[T any](w Workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(w, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Chunks splits [0, n) into at most parts contiguous [start, end)
// ranges whose sizes differ by at most one, in ascending order. Chunked
// reductions merge per-chunk results in chunk order; combined with a
// strict-inequality within-chunk scan this preserves the sequential
// lowest-index tie-break for any chunk count.
func Chunks(n, parts int) [][2]int {
	if n <= 0 {
		return nil
	}
	if parts < 1 {
		parts = 1
	}
	if parts > n {
		parts = n
	}
	out := make([][2]int, 0, parts)
	size, rem := n/parts, n%parts
	start := 0
	for c := 0; c < parts; c++ {
		end := start + size
		if c < rem {
			end++
		}
		out = append(out, [2]int{start, end})
		start = end
	}
	return out
}
