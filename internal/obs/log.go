package obs

import (
	"context"
	"log/slog"
)

// Structured-logging helpers shared by every instrumented package. The
// repo's logging contract mirrors the observer contract: a nil
// *slog.Logger means "logging off" and must cost exactly one nil check
// at each site, so instrumented code stores a possibly-nil logger and
// guards each call with `if log != nil`.

// StageLogger returns l scoped with a stage attribute — the logger the
// pipeline hands to each stage's package — or nil when l is nil, so
// the logging-off path allocates nothing.
func StageLogger(l *slog.Logger, stage string) *slog.Logger {
	if l == nil {
		return nil
	}
	return l.With(slog.String("stage", stage))
}

// LogHandle wraps a possibly-nil *slog.Logger for storage inside
// configs that gob-serialize with saved models (core.Config,
// c45.Config): like *Observer, it implements GobEncoder/GobDecoder as
// no-ops because loggers are per-process sinks, not model state. The
// zero handle means logging off; the embedded pointer promotes the
// full slog API, so sites guard with `if cfg.Log.Logger != nil`.
type LogHandle struct{ *slog.Logger }

// Log wraps a logger (or nil) in a LogHandle.
func Log(l *slog.Logger) LogHandle { return LogHandle{Logger: l} }

// GobEncode serializes nothing: loggers never travel with models.
func (LogHandle) GobEncode() ([]byte, error) { return nil, nil }

// GobDecode restores nothing: a decoded handle is logging-off.
func (*LogHandle) GobDecode([]byte) error { return nil }

// DiscardLogger returns a non-nil logger whose handler rejects every
// level, so records are dropped before any attribute formatting. It is
// the cheapest *enabled* logger — benchmarks use it to price the
// logging plumbing itself, and tests use it to exercise instrumented
// paths without output.
func DiscardLogger() *slog.Logger { return discardLog }

var discardLog = slog.New(discardHandler{})

// discardHandler is a slog.Handler that is disabled at every level.
// (log/slog gained a stdlib DiscardHandler in Go 1.24; this repo's
// go directive predates it.)
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }
