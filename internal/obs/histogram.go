package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// numHistBuckets is the fixed bucket count of every Histogram: bucket i
// holds samples v with bits.Len64(v) == i, i.e. 2^(i-1) <= v < 2^i
// (bucket 0 holds zeros and clamped negatives). 64 buckets cover the
// full positive int64 range, so nanosecond latencies and byte counts
// both fit without configuration.
const numHistBuckets = 64

// NumHistBuckets exports the fixed bucket count so sibling packages
// (modelobs baselines and sketches) can size bucket arrays that stay
// index-compatible with obs histograms.
const NumHistBuckets = numHistBuckets

// Histogram is a lock-free distribution of int64 samples over fixed
// log2-spaced buckets — the obs type behind per-stage latency and
// allocation distributions. Observe is two atomic adds on the hot
// path; snapshots and quantiles walk the fixed bucket array without
// blocking writers. The zero value is usable; a nil Histogram is a
// no-op, like every other obs recorder.
type Histogram struct {
	counts [numHistBuckets]atomic.Int64
	sum    atomic.Int64
}

// histBucket maps a sample to its bucket index.
func histBucket(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketIndex maps a sample to its log2 bucket index — the exported
// face of histBucket, for callers (modelobs) that maintain their own
// bucket arrays in the same layout.
func BucketIndex(v int64) int { return histBucket(v) }

// BucketUpperBound returns the inclusive upper bound of bucket i:
// 0 for bucket 0, 2^i − 1 for the rest (saturating at MaxInt64).
func BucketUpperBound(i int) int64 {
	switch {
	case i <= 0:
		return 0
	case i >= 63:
		return math.MaxInt64
	default:
		return int64(1)<<uint(i) - 1
	}
}

// Observe records one sample. Negative samples are clamped to zero so
// a clock hiccup cannot corrupt the distribution.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.counts[histBucket(v)].Add(1)
	h.sum.Add(v)
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all recorded samples.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile returns an estimate of the q-quantile (q in [0,1]) by
// linear interpolation inside the winning log2 bucket. Zero samples
// yield zero.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	return h.Snapshot().Quantile(q)
}

// Snapshot captures the histogram's current state. The snapshot holds
// only the non-empty buckets (ascending by bound) plus precomputed
// p50/p90/p99, and is what RunReports serialize.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	var s HistogramSnapshot
	for i := range h.counts {
		if c := h.counts[i].Load(); c > 0 {
			s.Buckets = append(s.Buckets, HistogramBucket{
				UpperBound: BucketUpperBound(i),
				Count:      c,
			})
			s.Count += c
		}
	}
	s.Sum = h.sum.Load()
	s.P50 = s.Quantile(0.50)
	s.P90 = s.Quantile(0.90)
	s.P99 = s.Quantile(0.99)
	return s
}

// HistogramBucket is one non-empty bucket of a snapshot: the count of
// samples at or below UpperBound but above the previous bucket's bound.
// Counts are per-bucket, not cumulative.
type HistogramBucket struct {
	UpperBound int64 `json:"le"`
	Count      int64 `json:"count"`
}

// HistogramSnapshot is the serializable form of a Histogram.
type HistogramSnapshot struct {
	Count   int64             `json:"count"`
	Sum     int64             `json:"sum"`
	P50     int64             `json:"p50"`
	P90     int64             `json:"p90"`
	P99     int64             `json:"p99"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Quantile estimates the q-quantile from the snapshot's buckets by
// linear interpolation between the winning bucket's bounds.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(s.Count)))
	if target < 1 {
		target = 1
	}
	var cum int64
	lo := int64(0)
	for _, b := range s.Buckets {
		if cum+b.Count >= target {
			frac := float64(target-cum) / float64(b.Count)
			est := float64(lo) + frac*float64(b.UpperBound-lo)
			return int64(est)
		}
		cum += b.Count
		lo = b.UpperBound
	}
	return s.Buckets[len(s.Buckets)-1].UpperBound
}

// Mean returns the snapshot's average sample (0 with no samples).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Histogram returns the named histogram, creating it on first use; nil
// — a valid no-op histogram — on a nil observer. Hot paths should look
// the histogram up once and retain it.
func (o *Observer) Histogram(name string) *Histogram {
	if o == nil {
		return nil
	}
	o.reg.mu.RLock()
	h := o.reg.histograms[name]
	o.reg.mu.RUnlock()
	if h != nil {
		return h
	}
	o.reg.mu.Lock()
	defer o.reg.mu.Unlock()
	if h = o.reg.histograms[name]; h == nil {
		h = &Histogram{}
		o.reg.histograms[name] = h
	}
	return h
}

// histogramValues snapshots the histogram registry.
func (o *Observer) histogramValues() map[string]HistogramSnapshot {
	o.reg.mu.RLock()
	defer o.reg.mu.RUnlock()
	if len(o.reg.histograms) == 0 {
		return nil
	}
	out := make(map[string]HistogramSnapshot, len(o.reg.histograms))
	for name, h := range o.reg.histograms {
		out[name] = h.Snapshot()
	}
	return out
}
