// Package obs is the pipeline's observability substrate: nestable
// stage spans (wall time + allocation deltas + attributes), a cheap
// counter/gauge registry, report exporters (tree, JSON, CSV), and
// pprof/trace profiling hooks shared by the CLIs.
//
// The package is built around a nil-recorder fast path: every method is
// safe — and nearly free — on a nil *Observer, nil *Span, nil *Counter,
// and nil *Gauge. Instrumented code therefore threads a possibly-nil
// observer through unconditionally; when observability is off the cost
// is a nil check per call site and zero allocation.
//
//	var o *obs.Observer            // disabled
//	sp := o.Start("mine")          // no-op, returns nil
//	o.Counter("fptree.nodes")      // no-op, returns nil
//	sp.End()                       // no-op
//
// Hot loops hold the *Counter (not the observer) and call Add, which is
// a single atomic increment when enabled and a nil check when not.
package obs

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Observer records one run: a tree of spans plus a counter/gauge
// registry. Construct with New; a nil Observer is a valid disabled
// recorder. An Observer may be reused across runs — Reset clears it.
type Observer struct {
	mu      sync.Mutex
	started time.Time
	spans   []*Span // top-level (root) spans, in start order
	stack   []*Span // currently open spans, innermost last

	regMu      sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// New returns an enabled Observer.
func New() *Observer {
	return &Observer{
		started:    time.Now(),
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Enabled reports whether the observer records anything.
func (o *Observer) Enabled() bool { return o != nil }

// Reset discards all recorded spans, counters, and gauges.
func (o *Observer) Reset() {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.started = time.Now()
	o.spans = nil
	o.stack = nil
	o.mu.Unlock()
	o.regMu.Lock()
	o.counters = map[string]*Counter{}
	o.gauges = map[string]*Gauge{}
	o.histograms = map[string]*Histogram{}
	o.regMu.Unlock()
}

// GobEncode makes types embedding a *Observer field (configs that get
// snapshotted with encoding/gob) encodable. Observers themselves carry
// no persistent state worth saving, so the encoding is empty.
func (o *Observer) GobEncode() ([]byte, error) { return nil, nil }

// GobDecode restores nothing: a decoded observer is a fresh disabled
// recorder placeholder.
func (o *Observer) GobDecode([]byte) error { return nil }

// Attr is one key/value annotation on a span. Values are rendered to
// strings at Set time so reports are self-contained.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed stage of a run. Spans nest: a span started while
// another is open becomes its child. End closes the span, capturing
// wall time and the runtime.MemStats total-allocation delta.
type Span struct {
	o          *Observer
	name       string
	start      time.Time
	allocStart uint64

	mu       sync.Mutex
	wall     time.Duration
	alloc    uint64
	attrs    []Attr
	children []*Span
	done     bool
}

// Start opens a span named name under the innermost open span (or at
// the top level). It returns nil — a valid no-op span — on a nil
// observer.
func (o *Observer) Start(name string) *Span {
	if o == nil {
		return nil
	}
	s := &Span{o: o, name: name, start: time.Now(), allocStart: totalAlloc()}
	o.mu.Lock()
	if n := len(o.stack); n > 0 {
		parent := o.stack[n-1]
		parent.mu.Lock()
		parent.children = append(parent.children, s)
		parent.mu.Unlock()
	} else {
		o.spans = append(o.spans, s)
	}
	o.stack = append(o.stack, s)
	o.mu.Unlock()
	return s
}

// Attr annotates the span with a key/value pair and returns the span
// for chaining. The value is rendered with fmt.Sprint immediately.
func (s *Span) Attr(key string, value any) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: fmt.Sprint(value)})
	s.mu.Unlock()
	return s
}

// End closes the span, recording wall time and allocation delta, and
// pops it (plus any unclosed children) off the observer's open stack.
// The first close also feeds the stage's latency and allocation
// histograms (stage.<name>.duration_ns / stage.<name>.alloc_bytes), so
// /metrics scrapes see live per-stage distributions while a run is
// still in flight. Ending a span twice keeps the first measurement.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	closed := false
	if !s.done {
		s.done = true
		closed = true
		s.wall = time.Since(s.start)
		if a := totalAlloc(); a > s.allocStart {
			s.alloc = a - s.allocStart
		}
	}
	wall, alloc := s.wall, s.alloc
	s.mu.Unlock()
	if closed {
		s.o.Histogram("stage." + s.name + ".duration_ns").Observe(int64(wall))
		s.o.Histogram("stage." + s.name + ".alloc_bytes").Observe(int64(alloc))
	}
	o := s.o
	o.mu.Lock()
	for i := len(o.stack) - 1; i >= 0; i-- {
		if o.stack[i] == s {
			o.stack = o.stack[:i]
			break
		}
	}
	o.mu.Unlock()
}

// Wall returns the span's recorded wall time (zero before End).
func (s *Span) Wall() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wall
}

// totalAlloc reads the cumulative heap allocation counter. ReadMemStats
// is not free, but spans mark stage boundaries, never hot-loop
// iterations.
func totalAlloc() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.TotalAlloc
}

// Counter is a monotonically increasing metric. The zero value is
// usable; a nil Counter is a no-op. Add is one atomic on the hot path.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins float metric (coverage residual, chosen C,
// resolved min_sup, …). A nil Gauge is a no-op.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the stored value (zero if never set).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Counter returns the named counter, creating it on first use. It
// returns nil — a valid no-op counter — on a nil observer. Callers on
// hot paths should look the counter up once and retain it.
func (o *Observer) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	o.regMu.RLock()
	c := o.counters[name]
	o.regMu.RUnlock()
	if c != nil {
		return c
	}
	o.regMu.Lock()
	defer o.regMu.Unlock()
	if c = o.counters[name]; c == nil {
		c = &Counter{}
		o.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use; nil on a nil
// observer.
func (o *Observer) Gauge(name string) *Gauge {
	if o == nil {
		return nil
	}
	o.regMu.RLock()
	g := o.gauges[name]
	o.regMu.RUnlock()
	if g != nil {
		return g
	}
	o.regMu.Lock()
	defer o.regMu.Unlock()
	if g = o.gauges[name]; g == nil {
		g = &Gauge{}
		o.gauges[name] = g
	}
	return g
}

// counterValues snapshots the counter registry.
func (o *Observer) counterValues() map[string]int64 {
	o.regMu.RLock()
	defer o.regMu.RUnlock()
	if len(o.counters) == 0 {
		return nil
	}
	out := make(map[string]int64, len(o.counters))
	for name, c := range o.counters {
		out[name] = c.Value()
	}
	return out
}

// gaugeValues snapshots the gauge registry.
func (o *Observer) gaugeValues() map[string]float64 {
	o.regMu.RLock()
	defer o.regMu.RUnlock()
	if len(o.gauges) == 0 {
		return nil
	}
	out := make(map[string]float64, len(o.gauges))
	for name, g := range o.gauges {
		out[name] = g.Value()
	}
	return out
}

// sortedKeys returns map keys in sorted order for deterministic output.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
