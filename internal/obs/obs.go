// Package obs is the pipeline's observability substrate: nestable
// stage spans (wall time + allocation deltas + attributes), a cheap
// counter/gauge registry, report exporters (tree, JSON, CSV), and
// pprof/trace profiling hooks shared by the CLIs.
//
// The package is built around a nil-recorder fast path: every method is
// safe — and nearly free — on a nil *Observer, nil *Span, nil *Counter,
// and nil *Gauge. Instrumented code therefore threads a possibly-nil
// observer through unconditionally; when observability is off the cost
// is a nil check per call site and zero allocation.
//
//	var o *obs.Observer            // disabled
//	sp := o.Start("mine")          // no-op, returns nil
//	o.Counter("fptree.nodes")      // no-op, returns nil
//	sp.End()                       // no-op
//
// Hot loops hold the *Counter (not the observer) and call Add, which is
// a single atomic increment when enabled and a nil check when not.
package obs

import (
	"fmt"
	"log/slog"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Observer records one run: a tree of spans plus a counter/gauge
// registry. Construct with New; a nil Observer is a valid disabled
// recorder. An Observer may be reused across runs — Reset clears it.
//
// An Observer's span stack is single-goroutine state: Start nests new
// spans under the innermost span open on this observer's stack, so two
// goroutines sharing one observer would interleave their stages into a
// meaningless tree. Concurrent stages therefore record through Fork —
// one forked observer per worker — which shares the (atomic,
// concurrency-safe) counter/gauge/histogram registry while anchoring
// the worker's spans under the span that was open at fork time.
type Observer struct {
	mu      sync.Mutex
	started time.Time
	spans   []*Span // top-level (root) spans, in start order
	stack   []*Span // currently open spans, innermost last

	// anchor, when non-nil, marks this observer as a fork: spans started
	// with an empty stack attach under anchor instead of the top level.
	anchor *Span
	// root points at the observer owning the top-level span list (nil on
	// the root itself); forks of forks chain back to one root.
	root *Observer

	// log, when non-nil, receives the observer's own diagnostics
	// (span-leak warnings). Set with SetLogger; forks inherit it.
	log *slog.Logger

	reg *registry
}

// registry is the counter/gauge/histogram store shared between an
// observer and all of its forks. Every recorder in it is individually
// atomic, so concurrent workers increment exact shared totals.
type registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

func newRegistry() *registry {
	return &registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// New returns an enabled Observer.
func New() *Observer {
	return &Observer{started: time.Now(), reg: newRegistry()}
}

// Fork returns an observer for one concurrent worker: it records into
// the same counter/gauge/histogram registry as o, but keeps its own
// span stack, anchored at the span innermost-open on o at fork time —
// a worker's spans become children of the stage that forked it, and
// the report tree stays coherent however many workers ran. With no
// span open, the fork's top-level spans land on o's (or o's root's)
// top-level list. A nil observer forks to nil, keeping the
// instrumentation-off path free.
func (o *Observer) Fork() *Observer {
	if o == nil {
		return nil
	}
	f := &Observer{started: o.started, reg: o.reg, root: o.root, log: o.logger()}
	if f.root == nil {
		f.root = o
	}
	o.mu.Lock()
	if n := len(o.stack); n > 0 {
		f.anchor = o.stack[n-1]
	} else {
		f.anchor = o.anchor
	}
	o.mu.Unlock()
	return f
}

// Enabled reports whether the observer records anything.
func (o *Observer) Enabled() bool { return o != nil }

// SetLogger attaches a logger for the observer's own diagnostics —
// today that is the span-leak warning End emits when it pops unclosed
// children. Forks made after the call inherit the logger; a nil logger
// silences the diagnostics again (the obs.span_leak counter still
// counts them).
func (o *Observer) SetLogger(l *slog.Logger) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.log = l
	o.mu.Unlock()
}

// logger returns the attached diagnostics logger (nil when unset).
func (o *Observer) logger() *slog.Logger {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.log
}

// Reset discards all recorded spans, counters, and gauges. Existing
// forks keep recording into the (now cleared) shared registry, but
// their span anchors still point at discarded spans — fork again after
// a reset.
func (o *Observer) Reset() {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.started = time.Now()
	o.spans = nil
	o.stack = nil
	o.mu.Unlock()
	o.reg.mu.Lock()
	o.reg.counters = map[string]*Counter{}
	o.reg.gauges = map[string]*Gauge{}
	o.reg.histograms = map[string]*Histogram{}
	o.reg.mu.Unlock()
}

// GobEncode makes types embedding a *Observer field (configs that get
// snapshotted with encoding/gob) encodable. Observers themselves carry
// no persistent state worth saving, so the encoding is empty.
func (o *Observer) GobEncode() ([]byte, error) { return nil, nil }

// GobDecode restores nothing: a decoded observer is a fresh disabled
// recorder placeholder.
func (o *Observer) GobDecode([]byte) error { return nil }

// Attr is one key/value annotation on a span. Values are rendered to
// strings at Set time so reports are self-contained.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed stage of a run. Spans nest: a span started while
// another is open becomes its child. End closes the span, capturing
// wall time and the runtime.MemStats total-allocation delta.
type Span struct {
	o          *Observer
	name       string
	start      time.Time
	allocStart uint64

	mu       sync.Mutex
	wall     time.Duration
	alloc    uint64
	attrs    []Attr
	children []*Span
	done     bool
}

// Start opens a span named name under the innermost open span (or, on
// a fork with an empty stack, under the fork's anchor span; or at the
// top level). It returns nil — a valid no-op span — on a nil observer.
func (o *Observer) Start(name string) *Span {
	if o == nil {
		return nil
	}
	//vet:ignore nondeterm span timestamps are observability, never part of byte-compared artifacts
	s := &Span{o: o, name: name, start: time.Now(), allocStart: totalAlloc()}
	o.mu.Lock()
	switch {
	case len(o.stack) > 0:
		parent := o.stack[len(o.stack)-1]
		parent.mu.Lock()
		parent.children = append(parent.children, s)
		parent.mu.Unlock()
	case o.anchor != nil:
		a := o.anchor
		a.mu.Lock()
		a.children = append(a.children, s)
		a.mu.Unlock()
	case o.root != nil:
		// A fork made while no span was open: top-level spans belong to
		// the root observer's report. Lock order is fork → root; the
		// root never locks a fork, so this cannot deadlock.
		r := o.root
		r.mu.Lock()
		r.spans = append(r.spans, s)
		r.mu.Unlock()
	default:
		o.spans = append(o.spans, s)
	}
	o.stack = append(o.stack, s)
	o.mu.Unlock()
	return s
}

// Attr annotates the span with a key/value pair and returns the span
// for chaining. The value is rendered with fmt.Sprint immediately.
func (s *Span) Attr(key string, value any) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	//vet:ignore hotalloc telemetry attribute formatting; the nil-receiver fast path keeps disabled runs allocation-free
	s.attrs = append(s.attrs, Attr{Key: key, Value: fmt.Sprint(value)})
	s.mu.Unlock()
	return s
}

// End closes the span, recording wall time and allocation delta, and
// pops it (plus any unclosed children) off the observer's open stack.
// The first close also feeds the stage's latency and allocation
// histograms (stage.<name>.duration_ns / stage.<name>.alloc_bytes), so
// /metrics scrapes see live per-stage distributions while a run is
// still in flight. Ending a span twice keeps the first measurement.
//
// Popping an unclosed child is an instrumentation bug in the caller (a
// Start without a dominating End): each such span increments the
// obs.span_leak counter and, when the observer has a logger, is named
// in a WARN record — leaks stay visible instead of silently vanishing
// from the stack.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	closed := false
	if !s.done {
		s.done = true
		closed = true
		//vet:ignore nondeterm span timestamps are observability, never part of byte-compared artifacts
		s.wall = time.Since(s.start)
		if a := totalAlloc(); a > s.allocStart {
			s.alloc = a - s.allocStart
		}
	}
	wall, alloc := s.wall, s.alloc
	s.mu.Unlock()
	if closed {
		//vet:ignore hotalloc metric key built once per span close; spans close per stage, not per row
		s.o.Histogram("stage." + s.name + ".duration_ns").Observe(int64(wall))
		//vet:ignore hotalloc metric key built once per span close; spans close per stage, not per row
		s.o.Histogram("stage." + s.name + ".alloc_bytes").Observe(int64(alloc))
	}
	o := s.o
	var leaked []string
	o.mu.Lock()
	log := o.log
	for i := len(o.stack) - 1; i >= 0; i-- {
		if o.stack[i] == s {
			for _, c := range o.stack[i+1:] {
				//vet:ignore hotalloc leak reporting runs only on the instrumentation-bug path
				leaked = append(leaked, c.name)
			}
			o.stack = o.stack[:i]
			break
		}
	}
	o.mu.Unlock()
	if len(leaked) > 0 {
		o.Counter("obs.span_leak").Add(int64(len(leaked)))
		if log != nil {
			//vet:ignore hotalloc leak warning runs only on the instrumentation-bug path
			log.Warn("obs: span leak: parent ended before children",
				//vet:ignore hotalloc leak warning runs only on the instrumentation-bug path
				slog.String("parent", s.name),
				//vet:ignore hotalloc leak warning runs only on the instrumentation-bug path
				slog.Any("leaked_spans", leaked))
		}
	}
}

// Wall returns the span's recorded wall time (zero before End).
func (s *Span) Wall() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wall
}

// totalAlloc reads the cumulative heap allocation counter. ReadMemStats
// is not free, but spans mark stage boundaries, never hot-loop
// iterations.
func totalAlloc() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.TotalAlloc
}

// Counter is a monotonically increasing metric. The zero value is
// usable; a nil Counter is a no-op. Add is one atomic on the hot path.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins float metric (coverage residual, chosen C,
// resolved min_sup, …). A nil Gauge is a no-op.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the stored value (zero if never set).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Counter returns the named counter, creating it on first use. It
// returns nil — a valid no-op counter — on a nil observer. Callers on
// hot paths should look the counter up once and retain it. Forks
// resolve names in the shared registry, so the same name is the same
// counter in every worker.
func (o *Observer) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	o.reg.mu.RLock()
	c := o.reg.counters[name]
	o.reg.mu.RUnlock()
	if c != nil {
		return c
	}
	o.reg.mu.Lock()
	defer o.reg.mu.Unlock()
	if c = o.reg.counters[name]; c == nil {
		c = &Counter{}
		o.reg.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use; nil on a nil
// observer.
func (o *Observer) Gauge(name string) *Gauge {
	if o == nil {
		return nil
	}
	o.reg.mu.RLock()
	g := o.reg.gauges[name]
	o.reg.mu.RUnlock()
	if g != nil {
		return g
	}
	o.reg.mu.Lock()
	defer o.reg.mu.Unlock()
	if g = o.reg.gauges[name]; g == nil {
		g = &Gauge{}
		o.reg.gauges[name] = g
	}
	return g
}

// counterValues snapshots the counter registry.
func (o *Observer) counterValues() map[string]int64 {
	o.reg.mu.RLock()
	defer o.reg.mu.RUnlock()
	if len(o.reg.counters) == 0 {
		return nil
	}
	out := make(map[string]int64, len(o.reg.counters))
	for name, c := range o.reg.counters {
		out[name] = c.Value()
	}
	return out
}

// gaugeValues snapshots the gauge registry.
func (o *Observer) gaugeValues() map[string]float64 {
	o.reg.mu.RLock()
	defer o.reg.mu.RUnlock()
	if len(o.reg.gauges) == 0 {
		return nil
	}
	out := make(map[string]float64, len(o.reg.gauges))
	for name, g := range o.reg.gauges {
		out[name] = g.Value()
	}
	return out
}

// sortedKeys returns map keys in sorted order for deterministic output.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
