package obs

import (
	"sync"
	"testing"
)

// TestForkAnchorsUnderOpenSpan drives the concurrent-worker shape the
// pipeline uses: a parent stage forks one observer per worker, each
// worker records its own spans, and the report tree shows them all as
// children of the parent stage.
func TestForkAnchorsUnderOpenSpan(t *testing.T) {
	o := New()
	parent := o.Start("stage")
	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		f := o.Fork()
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp := f.Start("worker")
			f.Start("inner").End()
			sp.End()
			f.Counter("work.items").Inc()
		}()
	}
	wg.Wait()
	parent.End()

	rep := o.Report("run")
	if len(rep.Spans) != 1 || rep.Spans[0].Name != "stage" {
		t.Fatalf("top level = %+v, want single stage span", rep.Spans)
	}
	kids := rep.Spans[0].Children
	if len(kids) != workers {
		t.Fatalf("stage has %d children, want %d", len(kids), workers)
	}
	for _, k := range kids {
		if k.Name != "worker" || len(k.Children) != 1 || k.Children[0].Name != "inner" {
			t.Errorf("worker span malformed: %+v", k)
		}
	}
	if got := rep.Counters["work.items"]; got != workers {
		t.Errorf("shared counter = %d, want %d", got, workers)
	}
}

// TestForkWithoutOpenSpan verifies stack-empty forks report their
// top-level spans on the root observer.
func TestForkWithoutOpenSpan(t *testing.T) {
	o := New()
	f := o.Fork()
	f.Start("detached").End()
	ff := f.Fork() // fork of a fork chains to the same root
	ff.Start("detached2").End()
	rep := o.Report("run")
	if len(rep.Spans) != 2 || rep.Spans[0].Name != "detached" || rep.Spans[1].Name != "detached2" {
		t.Fatalf("root spans = %+v, want detached+detached2", rep.Spans)
	}
}

// TestForkNil keeps the instrumentation-off path free.
func TestForkNil(t *testing.T) {
	var o *Observer
	f := o.Fork()
	if f != nil {
		t.Fatal("nil observer must fork to nil")
	}
	f.Start("x").End() // must not panic
}

// TestForkSharedRegistry: counters, gauges, and histograms resolve to
// the same recorder through any fork.
func TestForkSharedRegistry(t *testing.T) {
	o := New()
	f := o.Fork()
	o.Counter("c").Add(2)
	f.Counter("c").Add(3)
	if got := o.Counter("c").Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	f.Gauge("g").Set(7)
	if got := o.Gauge("g").Value(); got != 7 {
		t.Errorf("gauge = %v, want 7", got)
	}
	f.Histogram("h").Observe(9)
	if got := o.Histogram("h").Count(); got != 1 {
		t.Errorf("histogram count = %d, want 1", got)
	}
}
