package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	o := New()
	fit := o.Start("fit").Attr("rows", 100)
	mine := o.Start("mine")
	o.Start("class-0").End()
	o.Start("class-1").End()
	mine.End()
	learn := o.Start("learn").Attr("learner", "svm")
	learn.End()
	fit.End()
	o.Start("predict").End()

	r := o.Report("run")
	if len(r.Spans) != 2 {
		t.Fatalf("top-level spans = %d, want 2", len(r.Spans))
	}
	ft := r.Spans[0]
	if ft.Name != "fit" || len(ft.Children) != 2 {
		t.Fatalf("fit span = %q with %d children, want fit/2", ft.Name, len(ft.Children))
	}
	mn := ft.Children[0]
	if mn.Name != "mine" || len(mn.Children) != 2 {
		t.Fatalf("mine span = %q with %d children, want mine/2", mn.Name, len(mn.Children))
	}
	if mn.Children[0].Name != "class-0" || mn.Children[1].Name != "class-1" {
		t.Fatalf("class spans = %q,%q", mn.Children[0].Name, mn.Children[1].Name)
	}
	if r.Spans[1].Name != "predict" || len(r.Spans[1].Children) != 0 {
		t.Fatalf("second top-level span = %+v, want bare predict", r.Spans[1])
	}
	if ft.Wall() <= 0 {
		t.Fatalf("fit wall = %v, want > 0", ft.Wall())
	}
	if ft.Wall() < mn.Wall() {
		t.Fatalf("parent wall %v < child wall %v", ft.Wall(), mn.Wall())
	}
	if len(ft.Attrs) != 1 || ft.Attrs[0].Key != "rows" || ft.Attrs[0].Value != "100" {
		t.Fatalf("fit attrs = %+v", ft.Attrs)
	}
}

func TestSpanEndPopsUnclosedChildren(t *testing.T) {
	o := New()
	outer := o.Start("outer")
	//vet:ignore spanend this test deliberately leaks a span to exercise the pop-unclosed-children path
	o.Start("leaked") // never ended
	outer.End()
	// The next span must be top-level again, not a child of "leaked".
	o.Start("next").End()
	r := o.Report("")
	if len(r.Spans) != 2 || r.Spans[1].Name != "next" {
		t.Fatalf("spans = %+v, want [outer next] at top level", r.Spans)
	}
}

func TestCounterRegistryConcurrency(t *testing.T) {
	o := New()
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			shared := o.Counter("shared")
			own := o.Counter("worker")
			for i := 0; i < perWorker; i++ {
				shared.Inc()
				own.Add(2)
				o.Gauge("last").Set(float64(w))
			}
		}(w)
	}
	wg.Wait()
	if got := o.Counter("shared").Value(); got != workers*perWorker {
		t.Fatalf("shared counter = %d, want %d", got, workers*perWorker)
	}
	if got := o.Counter("worker").Value(); got != 2*workers*perWorker {
		t.Fatalf("worker counter = %d, want %d", got, 2*workers*perWorker)
	}
	if g := o.Gauge("last").Value(); g < 0 || g >= workers {
		t.Fatalf("gauge = %v, want in [0,%d)", g, workers)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	o := New()
	sp := o.Start("fit").Attr("dataset", "austral")
	o.Start("mine").Attr("min_sup", 0.15).End()
	sp.End()
	o.Counter("fptree.nodes").Add(1234)
	o.Gauge("mmrfs.coverage_residual").Set(3.5)

	r := o.Report("roundtrip")
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// time.Time survives RFC3339 only to nanosecond precision with the
	// original location dropped; compare through a canonical re-marshal.
	a, _ := json.Marshal(r)
	b, _ := json.Marshal(back)
	if !bytes.Equal(a, b) {
		t.Fatalf("report did not round-trip:\n%s\nvs\n%s", a, b)
	}
	if back.Counters["fptree.nodes"] != 1234 {
		t.Fatalf("counter lost: %+v", back.Counters)
	}
	if back.Gauges["mmrfs.coverage_residual"] != 3.5 {
		t.Fatalf("gauge lost: %+v", back.Gauges)
	}
	if len(back.Spans) != 1 || len(back.Spans[0].Children) != 1 {
		t.Fatalf("span tree lost: %+v", back.Spans)
	}
	if !reflect.DeepEqual(back.Spans[0].Attrs, []Attr{{Key: "dataset", Value: "austral"}}) {
		t.Fatalf("attrs lost: %+v", back.Spans[0].Attrs)
	}
}

func TestNilObserverFastPath(t *testing.T) {
	var o *Observer
	if o.Enabled() {
		t.Fatal("nil observer claims enabled")
	}
	sp := o.Start("anything")
	if sp != nil {
		t.Fatal("nil observer returned a live span")
	}
	sp.Attr("k", "v").End() // must not panic
	sp.End()                // double End must not panic
	if sp.Wall() != 0 {
		t.Fatal("nil span has wall time")
	}
	c := o.Counter("c")
	if c != nil {
		t.Fatal("nil observer returned a live counter")
	}
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter holds a value")
	}
	g := o.Gauge("g")
	g.Set(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge holds a value")
	}
	if r := o.Report("x"); r != nil {
		t.Fatal("nil observer produced a report")
	}
	o.Reset() // must not panic

	// The nil path must not allocate: it is the always-on hot path.
	allocs := testing.AllocsPerRun(100, func() {
		s := o.Start("fit")
		s.Attr("k", 1)
		o.Counter("n").Add(1)
		o.Gauge("g").Set(2)
		s.End()
	})
	if allocs != 0 {
		t.Fatalf("nil observer path allocates %v per run, want 0", allocs)
	}
}

func TestWriteTreeAndCSV(t *testing.T) {
	o := New()
	fit := o.Start("fit")
	o.Start("mine").Attr("classes", 2).End()
	fit.End()
	o.Counter("mine.patterns").Add(42)
	o.Gauge("core.min_sup").Set(0.15)
	r := o.Report("tree")

	var tree bytes.Buffer
	r.WriteTree(&tree)
	out := tree.String()
	for _, want := range []string{"fit", "  mine", "classes=2", "mine.patterns", "42", "core.min_sup", "0.15"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tree output missing %q:\n%s", want, out)
		}
	}

	var csvBuf bytes.Buffer
	if err := r.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 5 { // header + 2 spans + counter + gauge
		t.Fatalf("csv lines = %d, want 5:\n%s", len(lines), csvBuf.String())
	}
	if !strings.HasPrefix(lines[2], "span,fit/mine,") {
		t.Fatalf("nested span path wrong: %s", lines[2])
	}
}

func TestReset(t *testing.T) {
	o := New()
	o.Start("a").End()
	o.Counter("c").Inc()
	o.Reset()
	r := o.Report("")
	if len(r.Spans) != 0 || len(r.Counters) != 0 {
		t.Fatalf("reset left state: %+v", r)
	}
}

func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	var pf ProfileFlags
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	pf.Register(fs)
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	tr := filepath.Join(dir, "trace.out")
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem, "-trace", tr}); err != nil {
		t.Fatal(err)
	}
	stop, err := pf.Start()
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has samples to flush.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i % 7
	}
	_ = x
	time.Sleep(10 * time.Millisecond)
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem, tr} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("%s not written: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}

	// No flags set: Start and stop are no-ops.
	var off ProfileFlags
	stop, err = off.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}
