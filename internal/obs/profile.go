package obs

import (
	"flag"
	"fmt"
	"io"
	"runtime"
	"runtime/pprof"
	"runtime/trace"

	"dfpc/internal/durable"
)

// ProfileFlags holds the standard profiling flag values shared by the
// CLIs (cmd/dfpc, cmd/dfpc-mine, cmd/experiments). Register the flags,
// then bracket the program's work between Start and the returned stop
// function.
type ProfileFlags struct {
	CPUProfile string
	MemProfile string
	TracePath  string
}

// Register installs -cpuprofile, -memprofile, and -trace on fs.
func (f *ProfileFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a heap profile to this file on exit")
	fs.StringVar(&f.TracePath, "trace", "", "write a runtime execution trace to this file")
}

// Start begins the requested profiles. The returned stop function ends
// them and writes the heap profile; call it exactly once (defer is
// fine). With no flags set, both Start and stop are no-ops.
//
// Profiles stream into durable temp files and only rename to their
// final paths on a clean stop, so a crash mid-run never leaves a torn
// pprof file where a previous complete one stood.
func (f *ProfileFlags) Start() (stop func() error, err error) {
	var cpuFile, traceFile *durable.AtomicFile
	abort := func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Abort()
		}
		if traceFile != nil {
			trace.Stop()
			traceFile.Abort()
		}
	}
	if f.CPUProfile != "" {
		cpuFile, err = durable.Create(f.CPUProfile, nil)
		if err != nil {
			return nil, fmt.Errorf("obs: cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Abort()
			return nil, fmt.Errorf("obs: cpuprofile: %w", err)
		}
	}
	if f.TracePath != "" {
		traceFile, err = durable.Create(f.TracePath, nil)
		if err != nil {
			abort()
			return nil, fmt.Errorf("obs: trace: %w", err)
		}
		if err := trace.Start(traceFile); err != nil {
			traceFile.Abort()
			traceFile = nil
			abort()
			return nil, fmt.Errorf("obs: trace: %w", err)
		}
	}
	memPath := f.MemProfile
	return func() error {
		var firstErr error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("obs: cpuprofile: %w", err)
			}
		}
		if traceFile != nil {
			trace.Stop()
			if err := traceFile.Close(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("obs: trace: %w", err)
			}
		}
		if memPath == "" {
			return firstErr
		}
		if err := durable.WriteAtomic(memPath, nil, func(w io.Writer) error {
			runtime.GC() // settle live objects before the heap snapshot
			return pprof.WriteHeapProfile(w)
		}); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("obs: memprofile: %w", err)
		}
		return firstErr
	}, nil
}
