package obs

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// ProfileFlags holds the standard profiling flag values shared by the
// CLIs (cmd/dfpc, cmd/dfpc-mine, cmd/experiments). Register the flags,
// then bracket the program's work between Start and the returned stop
// function.
type ProfileFlags struct {
	CPUProfile string
	MemProfile string
	TracePath  string
}

// Register installs -cpuprofile, -memprofile, and -trace on fs.
func (f *ProfileFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a heap profile to this file on exit")
	fs.StringVar(&f.TracePath, "trace", "", "write a runtime execution trace to this file")
}

// Start begins the requested profiles. The returned stop function ends
// them and writes the heap profile; call it exactly once (defer is
// fine). With no flags set, both Start and stop are no-ops.
func (f *ProfileFlags) Start() (stop func() error, err error) {
	var cpuFile, traceFile *os.File
	cleanup := func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if traceFile != nil {
			trace.Stop()
			traceFile.Close()
		}
	}
	if f.CPUProfile != "" {
		cpuFile, err = os.Create(f.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("obs: cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("obs: cpuprofile: %w", err)
		}
	}
	if f.TracePath != "" {
		traceFile, err = os.Create(f.TracePath)
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("obs: trace: %w", err)
		}
		if err := trace.Start(traceFile); err != nil {
			traceFile.Close()
			traceFile = nil
			cleanup()
			return nil, fmt.Errorf("obs: trace: %w", err)
		}
	}
	memPath := f.MemProfile
	return func() error {
		cleanup()
		if memPath == "" {
			return nil
		}
		mf, err := os.Create(memPath)
		if err != nil {
			return fmt.Errorf("obs: memprofile: %w", err)
		}
		defer mf.Close()
		runtime.GC() // settle live objects before the heap snapshot
		if err := pprof.WriteHeapProfile(mf); err != nil {
			return fmt.Errorf("obs: memprofile: %w", err)
		}
		return nil
	}, nil
}
