package obs

import (
	"encoding/json"
	"errors"
	"io"
	"math"
	"sort"
	"strconv"
)

// Chrome trace_event export: a RunReport's span tree serialized in the
// Trace Event Format "JSON Object Format" — {"traceEvents": [...]} —
// which loads directly in Perfetto (ui.perfetto.dev) and
// chrome://tracing. Every span becomes one complete event (ph "X");
// metadata events (ph "M") name the process and lanes.
//
// Spans from forked observers overlap in time (concurrent CV folds,
// per-class mining), and the trace format infers nesting from time
// containment within one (pid, tid) lane — so overlapping siblings must
// land on distinct tids or the viewer draws a corrupted flame graph.
// WriteTrace assigns lanes deterministically: children are laid out in
// start order, the first child that fits after the previous occupant
// reuses a lane already owned by its sibling group (the parent's lane
// first), and an overlapping sibling gets a globally fresh lane. The
// same report always serializes to the same bytes.

// TraceEvent is one Trace Event Format record. Exported so tests (and
// external tooling) can decode exporter output without re-declaring the
// schema.
type TraceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`            // microseconds
	Dur  float64           `json:"dur,omitempty"` // microseconds
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// TraceDoc is the trace_event JSON Object Format envelope.
type TraceDoc struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit,omitempty"`
}

// tracePID is the single process id used for all events; dfpc runs are
// one process, lanes distinguish concurrency.
const tracePID = 1

// WriteTrace serializes the report's span tree as Chrome trace_event
// JSON. The output is deterministic for a given report.
func (r *RunReport) WriteTrace(w io.Writer) error {
	if r == nil {
		return errors.New("obs: write trace: nil report")
	}
	doc := r.TraceEvents()
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// TraceEvents builds the trace document: process/thread metadata
// followed by one complete event per span, in deterministic traversal
// order.
func (r *RunReport) TraceEvents() *TraceDoc {
	if r == nil {
		return &TraceDoc{TraceEvents: []TraceEvent{}}
	}
	var spans []TraceEvent
	used := map[int]bool{}
	nextLane := 0
	layoutSpans(r.Spans, 0, &nextLane, &spans, used)

	name := r.Name
	if name == "" {
		name = "dfpc"
	}
	events := []TraceEvent{{
		Name: "process_name", Ph: "M", PID: tracePID,
		Args: map[string]string{"name": name},
	}}
	lanes := make([]int, 0, len(used))
	for t := range used {
		lanes = append(lanes, t)
	}
	sort.Ints(lanes)
	for _, t := range lanes {
		laneName := "main"
		if t != 0 {
			laneName = "lane " + strconv.Itoa(t)
		}
		events = append(events, TraceEvent{
			Name: "thread_name", Ph: "M", PID: tracePID, TID: t,
			Args: map[string]string{"name": laneName},
		})
	}
	events = append(events, spans...)
	return &TraceDoc{TraceEvents: events, DisplayTimeUnit: "ms"}
}

// layoutSpans places one sibling group: each child reuses a lane the
// group already owns when it starts at or after that lane's previous
// occupant ended, and claims a globally fresh lane otherwise. Freshly
// claimed lanes are never shared across groups, so two spans can share
// a tid only when their intervals nest or are disjoint — exactly what
// trace viewers require.
func layoutSpans(group []*SpanReport, parentLane int, nextLane *int, out *[]TraceEvent, used map[int]bool) {
	if len(group) == 0 {
		return
	}
	order := make([]int, len(group))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return group[order[a]].StartNS < group[order[b]].StartNS
	})
	type occupant struct {
		lane int
		end  int64 // ns offset at which the lane frees up
	}
	lanes := []occupant{{lane: parentLane, end: math.MinInt64}}
	for _, idx := range order {
		s := group[idx]
		start := s.StartNS
		if start < 0 {
			start = 0
		}
		placed := -1
		for k := range lanes {
			if start >= lanes[k].end {
				placed = k
				break
			}
		}
		if placed < 0 {
			*nextLane++
			lanes = append(lanes, occupant{lane: *nextLane, end: math.MinInt64})
			placed = len(lanes) - 1
		}
		lanes[placed].end = start + s.WallNS
		lane := lanes[placed].lane
		used[lane] = true
		ev := TraceEvent{
			Name: s.Name, Cat: "stage", Ph: "X",
			TS:  float64(start) / 1e3,
			Dur: float64(s.WallNS) / 1e3,
			PID: tracePID, TID: lane,
		}
		if len(s.Attrs) > 0 {
			ev.Args = make(map[string]string, len(s.Attrs))
			for _, a := range s.Attrs {
				ev.Args[a.Key] = a.Value
			}
		}
		*out = append(*out, ev)
		layoutSpans(s.Children, lane, nextLane, out, used)
	}
}
