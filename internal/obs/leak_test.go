package obs

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"
)

// TestSpanLeakCounterAndWarning checks that popping an unclosed child
// increments obs.span_leak and names the leaked span in a WARN record
// when a logger is attached.
func TestSpanLeakCounterAndWarning(t *testing.T) {
	o := New()
	var buf bytes.Buffer
	o.SetLogger(slog.New(slog.NewTextHandler(&buf, nil)))

	outer := o.Start("outer")
	//vet:ignore spanend this test deliberately leaks a span to exercise the leak counter
	o.Start("leaked") // never ended
	outer.End()

	r := o.Report("leaks")
	if got := r.Counters["obs.span_leak"]; got != 1 {
		t.Fatalf("obs.span_leak = %d, want 1", got)
	}
	logged := buf.String()
	if !strings.Contains(logged, "span leak") {
		t.Fatalf("no span-leak warning logged: %q", logged)
	}
	if !strings.Contains(logged, "leaked") {
		t.Fatalf("warning does not name the leaked span: %q", logged)
	}
	if !strings.Contains(logged, "outer") {
		t.Fatalf("warning does not name the parent: %q", logged)
	}
}

// TestSpanLeakSilentWithoutLogger: the counter still counts when no
// logger is attached, and nothing panics.
func TestSpanLeakSilentWithoutLogger(t *testing.T) {
	o := New()
	outer := o.Start("outer")
	//vet:ignore spanend deliberate leak under test
	o.Start("leaked-quietly")
	outer.End()
	if got := o.Report("quiet").Counters["obs.span_leak"]; got != 1 {
		t.Fatalf("obs.span_leak = %d, want 1", got)
	}
}
