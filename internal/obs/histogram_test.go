package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(42) // must not panic
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram must read as empty")
	}
	if s := h.Snapshot(); s.Count != 0 || len(s.Buckets) != 0 {
		t.Fatal("nil histogram snapshot must be empty")
	}
	var o *Observer
	if o.Histogram("x") != nil {
		t.Fatal("nil observer must hand out nil histograms")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := &Histogram{}
	for _, v := range []int64{0, -5, 1, 2, 3, 1000, 1 << 40} {
		h.Observe(v)
	}
	if got := h.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
	// -5 clamps to 0; sum = 0+0+1+2+3+1000+2^40.
	want := int64(1+2+3+1000) + 1<<40
	if got := h.Sum(); got != want {
		t.Fatalf("Sum = %d, want %d", got, want)
	}
	s := h.Snapshot()
	var total int64
	for i, b := range s.Buckets {
		if b.Count <= 0 {
			t.Fatalf("snapshot bucket %d has non-positive count %d", i, b.Count)
		}
		if i > 0 && b.UpperBound <= s.Buckets[i-1].UpperBound {
			t.Fatalf("bucket bounds not ascending: %v", s.Buckets)
		}
		total += b.Count
	}
	if total != s.Count {
		t.Fatalf("bucket counts sum to %d, want %d", total, s.Count)
	}
	// Zeros (0 and clamped -5) land in the zero bucket.
	if s.Buckets[0].UpperBound != 0 || s.Buckets[0].Count != 2 {
		t.Fatalf("zero bucket = %+v, want {0 2}", s.Buckets[0])
	}
}

func TestBucketUpperBound(t *testing.T) {
	cases := map[int]int64{
		-1: 0, 0: 0, 1: 1, 2: 3, 3: 7, 10: 1023,
		63: math.MaxInt64, 64: math.MaxInt64,
	}
	for i, want := range cases {
		if got := BucketUpperBound(i); got != want {
			t.Errorf("BucketUpperBound(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	// 100 samples spread over [1, 100]: quantiles must land in range
	// and be monotone in q.
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	p50, p90, p99 := h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99)
	if p50 <= 0 || p50 > 127 {
		t.Fatalf("p50 = %d out of plausible range", p50)
	}
	if !(p50 <= p90 && p90 <= p99) {
		t.Fatalf("quantiles not monotone: p50=%d p90=%d p99=%d", p50, p90, p99)
	}
	if p99 > 127 { // 100 lives in the (63,127] bucket
		t.Fatalf("p99 = %d beyond the top occupied bucket", p99)
	}
	// Degenerate and clamped arguments.
	if h.Quantile(-1) > h.Quantile(2) {
		t.Fatal("clamped quantiles out of order")
	}
	if (HistogramSnapshot{}).Quantile(0.5) != 0 {
		t.Fatal("empty snapshot quantile must be 0")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := &Histogram{}
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(seed + int64(i))
				_ = h.Snapshot() // concurrent reads must be race-free
			}
		}(int64(w * 100))
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("Count = %d, want %d", got, workers*per)
	}
}

func TestObserverHistogramRegistry(t *testing.T) {
	o := New()
	o.Histogram("lat").Observe(10)
	o.Histogram("lat").Observe(20)
	if got := o.Histogram("lat").Count(); got != 2 {
		t.Fatalf("registry returned a fresh histogram: count %d", got)
	}
	o.Reset()
	if got := o.Histogram("lat").Count(); got != 0 {
		t.Fatalf("Reset kept histogram samples: count %d", got)
	}
}

func TestSpanEndFeedsStageHistograms(t *testing.T) {
	o := New()
	sp := o.Start("mine")
	time.Sleep(time.Millisecond)
	sp.End()
	sp.End() // double End must not double-record

	d := o.Histogram("stage.mine.duration_ns")
	if got := d.Count(); got != 1 {
		t.Fatalf("duration histogram count = %d, want 1", got)
	}
	if d.Sum() < int64(time.Millisecond)/2 {
		t.Fatalf("duration histogram sum %d implausibly small", d.Sum())
	}
	if got := o.Histogram("stage.mine.alloc_bytes").Count(); got != 1 {
		t.Fatalf("alloc histogram count = %d, want 1", got)
	}

	rep := o.Report("run")
	hs, ok := rep.Histograms["stage.mine.duration_ns"]
	if !ok {
		t.Fatalf("report is missing the stage histogram; have %v", rep.Histograms)
	}
	if hs.Count != 1 || hs.P50 <= 0 {
		t.Fatalf("report snapshot = %+v, want count 1 and positive p50", hs)
	}

	// Histograms must survive the JSON round trip.
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back RunReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Histograms["stage.mine.duration_ns"].Count != 1 {
		t.Fatal("histogram lost in JSON round trip")
	}

	// And render in the tree view.
	var tree strings.Builder
	rep.WriteTree(&tree)
	if !strings.Contains(tree.String(), "histograms:") ||
		!strings.Contains(tree.String(), "stage.mine.duration_ns") {
		t.Fatalf("tree output missing histogram section:\n%s", tree.String())
	}
}

func TestDiscardLogger(t *testing.T) {
	lg := DiscardLogger()
	if lg == nil {
		t.Fatal("DiscardLogger returned nil")
	}
	lg.Info("dropped", "k", "v") // must not panic or print
	if lg.Enabled(nil, 12) {     // far above any level
		t.Fatal("discard handler claims to be enabled")
	}
	if StageLogger(nil, "mine") != nil {
		t.Fatal("StageLogger(nil) must stay nil")
	}
	if StageLogger(lg, "mine") == nil {
		t.Fatal("StageLogger on a real logger must not be nil")
	}
}
