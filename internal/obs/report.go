package obs

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// SpanReport is the serializable form of one span. StartNS is the
// span's start offset relative to the run's StartedAt — what the trace
// exporter needs to lay spans on a timeline (forked observers copy the
// root's start time, so offsets are comparable across workers).
type SpanReport struct {
	Name       string        `json:"name"`
	StartNS    int64         `json:"start_ns,omitempty"`
	WallNS     int64         `json:"wall_ns"`
	AllocBytes uint64        `json:"alloc_bytes,omitempty"`
	Attrs      []Attr        `json:"attrs,omitempty"`
	Children   []*SpanReport `json:"children,omitempty"`
}

// Wall returns the span's wall time as a duration.
func (s *SpanReport) Wall() time.Duration { return time.Duration(s.WallNS) }

// RunReport is the machine-readable summary of one observed run: the
// span tree plus the final counter and gauge values. It round-trips
// losslessly through encoding/json and feeds the BENCH_*.json
// trajectory files.
type RunReport struct {
	Name       string                       `json:"name,omitempty"`
	StartedAt  time.Time                    `json:"started_at"`
	WallNS     int64                        `json:"wall_ns"`
	Spans      []*SpanReport                `json:"spans,omitempty"`
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	// Audits carries named decision-audit tables (e.g. the MMRFS
	// selection trail) that callers attach after Report and before
	// serialization; the observer itself never populates it. Values
	// must be JSON-serializable.
	Audits map[string]any `json:"audits,omitempty"`
}

// Report snapshots the observer into a RunReport named name. Open spans
// are included with their current (zero) measurements; call it after
// the instrumented work has finished. A nil observer reports nil.
func (o *Observer) Report(name string) *RunReport {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	spans := append([]*Span(nil), o.spans...)
	started := o.started
	o.mu.Unlock()
	r := &RunReport{
		Name:       name,
		StartedAt:  started,
		WallNS:     int64(time.Since(started)),
		Counters:   o.counterValues(),
		Gauges:     o.gaugeValues(),
		Histograms: o.histogramValues(),
	}
	for _, s := range spans {
		r.Spans = append(r.Spans, s.report(started))
	}
	return r
}

func (s *Span) report(started time.Time) *SpanReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	sr := &SpanReport{
		Name:       s.name,
		StartNS:    s.start.Sub(started).Nanoseconds(),
		WallNS:     int64(s.wall),
		AllocBytes: s.alloc,
		Attrs:      append([]Attr(nil), s.attrs...),
	}
	for _, c := range s.children {
		sr.Children = append(sr.Children, c.report(started))
	}
	return sr
}

// WriteJSON writes the report as indented JSON.
func (r *RunReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ParseReport reads a RunReport written by WriteJSON.
func ParseReport(rd io.Reader) (*RunReport, error) {
	var r RunReport
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("obs: parse report: %w", err)
	}
	return &r, nil
}

// WriteTree renders the report as a human-readable stage tree followed
// by the counters and gauges:
//
//	fit                              412ms   18.2MB  rows=242
//	  mine                           210ms   12.0MB  min_sup=0.15
//	  ...
func (r *RunReport) WriteTree(w io.Writer) {
	if r.Name != "" {
		fmt.Fprintf(w, "%s (total %v)\n", r.Name, time.Duration(r.WallNS).Round(time.Millisecond))
	}
	for _, s := range r.Spans {
		writeSpanTree(w, s, 0)
	}
	if len(r.Counters) > 0 {
		fmt.Fprintln(w, "counters:")
		for _, k := range sortedKeys(r.Counters) {
			fmt.Fprintf(w, "  %-38s %d\n", k, r.Counters[k])
		}
	}
	if len(r.Gauges) > 0 {
		fmt.Fprintln(w, "gauges:")
		for _, k := range sortedKeys(r.Gauges) {
			fmt.Fprintf(w, "  %-38s %g\n", k, r.Gauges[k])
		}
	}
	if len(r.Histograms) > 0 {
		fmt.Fprintln(w, "histograms:")
		for _, k := range sortedKeys(r.Histograms) {
			h := r.Histograms[k]
			fmt.Fprintf(w, "  %-38s n=%d p50=%s p90=%s p99=%s\n",
				k, h.Count, fmtHistSample(k, h.P50), fmtHistSample(k, h.P90), fmtHistSample(k, h.P99))
		}
	}
}

// fmtHistSample renders one histogram quantile, using duration or byte
// units when the histogram's name declares them.
func fmtHistSample(name string, v int64) string {
	switch {
	case strings.HasSuffix(name, "_ns"):
		return time.Duration(v).Round(time.Microsecond).String()
	case strings.HasSuffix(name, "_bytes"):
		if v < 0 {
			v = 0
		}
		return fmtBytes(uint64(v))
	default:
		return strconv.FormatInt(v, 10)
	}
}

func writeSpanTree(w io.Writer, s *SpanReport, depth int) {
	indent := ""
	for i := 0; i < depth; i++ {
		indent += "  "
	}
	line := fmt.Sprintf("%s%-*s %9v %9s", indent, 30-len(indent), s.Name,
		s.Wall().Round(10*time.Microsecond), fmtBytes(s.AllocBytes))
	for _, a := range s.Attrs {
		line += fmt.Sprintf("  %s=%s", a.Key, a.Value)
	}
	fmt.Fprintln(w, line)
	for _, c := range s.Children {
		writeSpanTree(w, c, depth+1)
	}
}

// fmtBytes renders an allocation delta compactly.
func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// WriteCSV writes the report as flat CSV rows for the experiments
// harness: kind,path,wall_ns,alloc_bytes,value,attrs. Span paths join
// nested names with '/'; counters and gauges carry their value in the
// value column.
func (r *RunReport) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"kind", "path", "wall_ns", "alloc_bytes", "value", "attrs"}); err != nil {
		return err
	}
	var walk func(prefix string, s *SpanReport) error
	walk = func(prefix string, s *SpanReport) error {
		path := s.Name
		if prefix != "" {
			path = prefix + "/" + s.Name
		}
		attrs := ""
		for i, a := range s.Attrs {
			if i > 0 {
				attrs += " "
			}
			attrs += a.Key + "=" + a.Value
		}
		err := cw.Write([]string{"span", path,
			strconv.FormatInt(s.WallNS, 10),
			strconv.FormatUint(s.AllocBytes, 10), "", attrs})
		if err != nil {
			return err
		}
		for _, c := range s.Children {
			if err := walk(path, c); err != nil {
				return err
			}
		}
		return nil
	}
	for _, s := range r.Spans {
		if err := walk("", s); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(r.Counters) {
		if err := cw.Write([]string{"counter", k, "", "", strconv.FormatInt(r.Counters[k], 10), ""}); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(r.Gauges) {
		if err := cw.Write([]string{"gauge", k, "", "", strconv.FormatFloat(r.Gauges[k], 'g', -1, 64), ""}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
