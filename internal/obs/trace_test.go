package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// syntheticReport builds a RunReport by hand so lane assignment is
// exercised without sleeps: a fit parent whose two mine children
// overlap in time (they must land on distinct lanes) and a later
// select child that can reuse a lane.
func syntheticReport() *RunReport {
	return &RunReport{
		Name:      "fit-run",
		StartedAt: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC),
		WallNS:    120_000,
		Spans: []*SpanReport{{
			Name:    "fit",
			StartNS: 0,
			WallNS:  100_000,
			Attrs:   []Attr{{Key: "rows", Value: "242"}},
			Children: []*SpanReport{
				{Name: "mine-a", StartNS: 1_000, WallNS: 40_000},
				{Name: "mine-b", StartNS: 2_000, WallNS: 40_000},
				{Name: "select", StartNS: 50_000, WallNS: 10_000},
			},
		}},
	}
}

func TestTraceEventsSchema(t *testing.T) {
	doc := syntheticReport().TraceEvents()
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	first := doc.TraceEvents[0]
	if first.Ph != "M" || first.Name != "process_name" || first.Args["name"] != "fit-run" {
		t.Fatalf("first event is not the process_name metadata record: %+v", first)
	}
	byName := map[string]TraceEvent{}
	var sawThreadMeta bool
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" && ev.Ph != "M" {
			t.Fatalf("event %q has ph %q, want X or M", ev.Name, ev.Ph)
		}
		if ev.PID != tracePID {
			t.Fatalf("event %q has pid %d, want %d", ev.Name, ev.PID, tracePID)
		}
		if ev.Ph == "X" {
			byName[ev.Name] = ev
		}
		if ev.Ph == "M" && ev.Name == "thread_name" {
			sawThreadMeta = true
		}
	}
	if !sawThreadMeta {
		t.Fatal("no thread_name metadata events")
	}
	if len(byName) != 4 {
		t.Fatalf("got %d complete events, want 4: %v", len(byName), byName)
	}

	// Timestamps and durations are microseconds.
	fit := byName["fit"]
	if fit.TS != 0 || fit.Dur != 100 {
		t.Fatalf("fit ts/dur = %v/%v, want 0/100", fit.TS, fit.Dur)
	}
	if fit.Args["rows"] != "242" {
		t.Fatalf("fit args = %v, want rows=242", fit.Args)
	}

	// The overlapping mine children must not share a lane; the earlier
	// one nests under the parent's lane.
	a, b, sel := byName["mine-a"], byName["mine-b"], byName["select"]
	if a.TID == b.TID {
		t.Fatalf("overlapping siblings share tid %d", a.TID)
	}
	if a.TID != fit.TID {
		t.Fatalf("first child on tid %d, want parent lane %d", a.TID, fit.TID)
	}
	// select starts after mine-a ends, so it reuses the parent lane.
	if sel.TID != fit.TID {
		t.Fatalf("select on tid %d, want reused lane %d", sel.TID, fit.TID)
	}

	// Same-tid intervals must be nested or disjoint — the trace-viewer
	// invariant the lane allocator exists to uphold.
	type iv struct {
		name     string
		lo, hi   float64
		tid      int
		hasSpans bool
	}
	var ivs []iv
	for _, ev := range byName {
		ivs = append(ivs, iv{ev.Name, ev.TS, ev.TS + ev.Dur, ev.TID, true})
	}
	for i := range ivs {
		for j := range ivs {
			if i == j || ivs[i].tid != ivs[j].tid {
				continue
			}
			x, y := ivs[i], ivs[j]
			disjoint := x.hi <= y.lo || y.hi <= x.lo
			nested := (x.lo >= y.lo && x.hi <= y.hi) || (y.lo >= x.lo && y.hi <= x.hi)
			if !disjoint && !nested {
				t.Fatalf("spans %s and %s partially overlap on tid %d", x.name, y.name, x.tid)
			}
		}
	}
}

func TestWriteTraceDeterministicAndDecodable(t *testing.T) {
	r := syntheticReport()
	var b1, b2 bytes.Buffer
	if err := r.WriteTrace(&b1); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	if err := r.WriteTrace(&b2); err != nil {
		t.Fatalf("WriteTrace again: %v", err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("trace serialization is not deterministic")
	}
	if !strings.Contains(b1.String(), `"traceEvents"`) {
		t.Fatal("output missing traceEvents envelope key")
	}
	var doc TraceDoc
	if err := json.Unmarshal(b1.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid trace_event JSON: %v", err)
	}
	if len(doc.TraceEvents) != len(r.TraceEvents().TraceEvents) {
		t.Fatal("round-trip lost events")
	}
}

func TestWriteTraceFromLiveObserver(t *testing.T) {
	o := New()
	sp := o.Start("fit")
	o.Start("mine").End()
	sp.End()
	var buf bytes.Buffer
	if err := o.Report("live").WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	var doc TraceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("decode: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			names[ev.Name] = true
		}
	}
	if !names["fit"] || !names["mine"] {
		t.Fatalf("missing live spans in trace: %v", names)
	}
}

func TestWriteTraceNegativeStartClamped(t *testing.T) {
	r := &RunReport{Spans: []*SpanReport{{Name: "early", StartNS: -500, WallNS: 1000}}}
	doc := r.TraceEvents()
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.TS < 0 {
			t.Fatalf("negative timestamp survived: %+v", ev)
		}
	}
}

func TestWriteTraceNilReport(t *testing.T) {
	var r *RunReport
	if err := r.WriteTrace(&bytes.Buffer{}); err == nil {
		t.Fatal("nil report must refuse to serialize")
	}
	doc := r.TraceEvents()
	if doc == nil || len(doc.TraceEvents) != 0 {
		t.Fatal("nil report must yield an empty document")
	}
}
