package eval

import (
	"math"
	"testing"
)

func TestMcNemarIdenticalPredictions(t *testing.T) {
	truth := []int{0, 1, 0, 1}
	pred := []int{0, 1, 1, 1}
	chi2, p, ok, err := McNemar(pred, pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	if chi2 != 0 || !approx(p, 1) || ok {
		t.Fatalf("identical predictions: chi2=%v p=%v ok=%v", chi2, p, ok)
	}
}

func TestMcNemarClearWinner(t *testing.T) {
	// A is right on 30 rows where B is wrong; B is never right where A
	// is wrong.
	n := 40
	truth := make([]int, n)
	predA := make([]int, n)
	predB := make([]int, n)
	for i := 0; i < 30; i++ {
		predB[i] = 1 // wrong
	}
	chi2, p, ok, err := McNemar(predA, predB, truth)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("expected enough disagreements")
	}
	if chi2 < 20 || p > 1e-5 {
		t.Fatalf("chi2=%v p=%v, expected highly significant", chi2, p)
	}
}

func TestMcNemarSymmetricDisagreement(t *testing.T) {
	// Equal disagreement counts → no evidence of a difference.
	truth := make([]int, 40)
	predA := make([]int, 40)
	predB := make([]int, 40)
	for i := 0; i < 10; i++ {
		predA[i] = 1 // A wrong, B right
	}
	for i := 10; i < 20; i++ {
		predB[i] = 1 // B wrong, A right
	}
	_, p, ok, err := McNemar(predA, predB, truth)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("expected enough disagreements")
	}
	if p < 0.5 {
		t.Fatalf("p = %v for symmetric disagreement, want high", p)
	}
}

func TestMcNemarErrors(t *testing.T) {
	if _, _, _, err := McNemar([]int{0}, []int{0, 1}, []int{0, 1}); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, _, _, err := McNemar(nil, nil, nil); err == nil {
		t.Fatal("empty should error")
	}
}

func TestChiSquaredTail1(t *testing.T) {
	// Critical value: P(X > 3.841) ≈ 0.05 for 1 df.
	if got := chiSquaredTail1(3.841); math.Abs(got-0.05) > 0.002 {
		t.Fatalf("P(X>3.841) = %v, want ~0.05", got)
	}
	if got := chiSquaredTail1(0); !approx(got, 1) {
		t.Fatalf("P(X>0) = %v, want 1", got)
	}
	if got := chiSquaredTail1(6.635); math.Abs(got-0.01) > 0.001 {
		t.Fatalf("P(X>6.635) = %v, want ~0.01", got)
	}
}
