package eval

import (
	"fmt"
	"math"
)

// PairedTTest performs a two-sided paired t-test on matched accuracy
// samples (e.g. per-fold accuracies of two pipelines evaluated on the
// same folds). It returns the t statistic and the p-value. Use it to
// judge whether an accuracy difference between two model families is
// significant — the conventional companion to the paper's Tables 1–2.
func PairedTTest(a, b []float64) (t, p float64, err error) {
	if len(a) != len(b) {
		return 0, 0, fmt.Errorf("eval: paired t-test with %d vs %d samples", len(a), len(b))
	}
	n := len(a)
	if n < 2 {
		return 0, 0, fmt.Errorf("eval: paired t-test needs >= 2 pairs, got %d", n)
	}
	diffs := make([]float64, n)
	mean := 0.0
	for i := range a {
		diffs[i] = a[i] - b[i]
		mean += diffs[i]
	}
	mean /= float64(n)
	varSum := 0.0
	for _, d := range diffs {
		varSum += (d - mean) * (d - mean)
	}
	sd := math.Sqrt(varSum / float64(n-1))
	if sd == 0 {
		if mean == 0 {
			return 0, 1, nil // identical samples: no evidence of difference
		}
		return math.Inf(sign(mean)), 0, nil
	}
	t = mean / (sd / math.Sqrt(float64(n)))
	p = 2 * studentTailCDF(math.Abs(t), n-1)
	if p > 1 {
		p = 1
	}
	return t, p, nil
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// studentTailCDF returns P(T > t) for Student's t distribution with df
// degrees of freedom, t >= 0, via the regularized incomplete beta
// function: P(T > t) = I_{df/(df+t²)}(df/2, 1/2) / 2.
func studentTailCDF(t float64, df int) float64 {
	if t <= 0 {
		return 0.5
	}
	x := float64(df) / (float64(df) + t*t)
	return 0.5 * regularizedIncompleteBeta(float64(df)/2, 0.5, x)
}

// regularizedIncompleteBeta computes I_x(a, b) with the standard
// continued-fraction expansion (Numerical Recipes' betacf form).
func regularizedIncompleteBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b) + a*math.Log(x) + b*math.Log(1-x)
	front := math.Exp(lbeta)
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 1e-14
		tiny    = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// CompareResult reports a significance comparison between two CV runs.
type CompareResult struct {
	MeanA, MeanB float64
	T            float64
	P            float64
	// Significant is true when P < 0.05.
	Significant bool
}

// Compare runs a paired t-test over two CV results' fold accuracies.
func Compare(a, b *CVResult) (*CompareResult, error) {
	t, p, err := PairedTTest(a.FoldAccuracies, b.FoldAccuracies)
	if err != nil {
		return nil, err
	}
	return &CompareResult{
		MeanA: a.Mean, MeanB: b.Mean,
		T: t, P: p,
		Significant: p < 0.05,
	}, nil
}
