package eval

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"dfpc/internal/dataset"
	"dfpc/internal/obs"
	"dfpc/internal/parallel"
)

// cloneMajority is majorityPipeline plus the CVCloner/Observable hooks
// the concurrent fold path requires.
type cloneMajority struct {
	majorityPipeline
	obs *obs.Observer
}

func (p *cloneMajority) CloneForCV() any             { return &cloneMajority{obs: p.obs} }
func (p *cloneMajority) SetObserver(o *obs.Observer) { p.obs = o }
func (p *cloneMajority) Observer() *obs.Observer     { return p.obs }

// TestCrossValidateParallelDeterminism: fold accuracies (content AND
// order), Mean, Std, and Completed are identical at any worker count.
func TestCrossValidateParallelDeterminism(t *testing.T) {
	d := skewedDS(64)
	base, err := CrossValidateOpt(&cloneMajority{}, d, 8, 1, CVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []parallel.Workers{2, 8, 0} {
		res, err := CrossValidateOpt(&cloneMajority{}, d, 8, 1, CVOptions{Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(res.FoldAccuracies, base.FoldAccuracies) {
			t.Fatalf("workers=%d: fold accuracies %v, want %v", w, res.FoldAccuracies, base.FoldAccuracies)
		}
		//vet:ignore floateq the determinism contract is bit-identity across worker counts, so exact comparison is the assertion
		if res.Mean != base.Mean || res.Std != base.Std || res.Completed != base.Completed {
			t.Fatalf("workers=%d: summary (%v,%v,%d) diverges from (%v,%v,%d)",
				w, res.Mean, res.Std, res.Completed, base.Mean, base.Std, base.Completed)
		}
	}
}

// TestCrossValidateParallelSpans: concurrent folds record one cv-fold
// span each on the shared observer, every fold number exactly once.
func TestCrossValidateParallelSpans(t *testing.T) {
	d := skewedDS(40)
	o := obs.New()
	p := &cloneMajority{obs: o}
	if _, err := CrossValidateOpt(p, d, 5, 1, CVOptions{Obs: o, Workers: 4}); err != nil {
		t.Fatal(err)
	}
	rep := o.Report("cv")
	folds := map[string]bool{}
	for _, sp := range rep.Spans {
		if sp.Name != "cv-fold" {
			t.Fatalf("unexpected top-level span %q", sp.Name)
		}
		for _, a := range sp.Attrs {
			if a.Key == "fold" {
				folds[a.Value] = true
			}
		}
	}
	if len(folds) != 5 {
		t.Fatalf("recorded %d distinct cv-fold spans, want 5: %v", len(folds), folds)
	}
	// The original pipeline's observer must be restored post-CV.
	if p.obs != o {
		t.Fatal("original pipeline's observer was not restored after parallel CV")
	}
}

// cloneFailAt fails on folds whose first test row index is even,
// exercising ContinueOnError under concurrency.
type cloneFail struct {
	cloneMajority
	n *atomic.Int64
}

func (p *cloneFail) CloneForCV() any { return &cloneFail{n: p.n} }
func (p *cloneFail) Fit(d *dataset.Dataset, rows []int) error {
	if p.n.Add(1)%2 == 1 {
		return errors.New("boom")
	}
	return p.cloneMajority.Fit(d, rows)
}

// TestCrossValidateParallelContinueOnError: isolated fold failures
// still leave honest statistics when folds run concurrently.
func TestCrossValidateParallelContinueOnError(t *testing.T) {
	d := skewedDS(48)
	var n atomic.Int64
	res, err := CrossValidateOpt(&cloneFail{n: &n}, d, 6, 1,
		CVOptions{Workers: 3, ContinueOnError: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed+len(res.Failures) != 6 {
		t.Fatalf("completed %d + failed %d != 6 folds", res.Completed, len(res.Failures))
	}
	if len(res.Failures) == 0 || res.Completed == 0 {
		t.Fatalf("expected a mix of failures and completions, got %d/%d", res.Completed, len(res.Failures))
	}
	if res.Completed != len(res.FoldAccuracies) {
		t.Fatalf("Completed %d != len(FoldAccuracies) %d", res.Completed, len(res.FoldAccuracies))
	}
}
