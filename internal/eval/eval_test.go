package eval

import (
	"errors"
	"math"
	"testing"

	"dfpc/internal/dataset"
)

// approx compares floats that are exact in the tests' arithmetic; the
// epsilon keeps the comparisons robust if the implementation reorders
// its floating-point operations.
func approx(a, b float64) bool { return math.Abs(a-b) <= 1e-12 }

// majorityPipeline predicts the majority class of its training rows.
type majorityPipeline struct{ class int }

func (p *majorityPipeline) Fit(d *dataset.Dataset, rows []int) error {
	counts := make([]int, d.NumClasses())
	for _, r := range rows {
		counts[d.Labels[r]]++
	}
	p.class = 0
	for c, n := range counts {
		if n > counts[p.class] {
			p.class = c
		}
	}
	return nil
}

func (p *majorityPipeline) Predict(d *dataset.Dataset, rows []int) ([]int, error) {
	out := make([]int, len(rows))
	for i := range out {
		out[i] = p.class
	}
	return out, nil
}

// oraclePipeline predicts the true label (upper bound pipeline).
type oraclePipeline struct{}

func (oraclePipeline) Fit(d *dataset.Dataset, rows []int) error { return nil }
func (oraclePipeline) Predict(d *dataset.Dataset, rows []int) ([]int, error) {
	out := make([]int, len(rows))
	for i, r := range rows {
		out[i] = d.Labels[r]
	}
	return out, nil
}

// failingPipeline always errors.
type failingPipeline struct{}

func (failingPipeline) Fit(d *dataset.Dataset, rows []int) error { return errors.New("boom") }
func (failingPipeline) Predict(d *dataset.Dataset, rows []int) ([]int, error) {
	return nil, errors.New("boom")
}

func skewedDS(n int) *dataset.Dataset {
	d := &dataset.Dataset{
		Name:    "skew",
		Attrs:   []dataset.Attribute{{Name: "a", Kind: dataset.Categorical, Values: []string{"x", "y"}}},
		Classes: []string{"maj", "min"},
	}
	for i := 0; i < n; i++ {
		d.Rows = append(d.Rows, []float64{float64(i % 2)})
		y := 0
		if i%4 == 0 {
			y = 1
		}
		d.Labels = append(d.Labels, y)
	}
	return d
}

func TestAccuracy(t *testing.T) {
	acc, err := Accuracy([]int{1, 0, 1, 1}, []int{1, 0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(acc, 0.75) {
		t.Fatalf("acc = %v, want 0.75", acc)
	}
	if _, err := Accuracy([]int{1}, []int{1, 2}); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := Accuracy(nil, nil); err == nil {
		t.Fatal("empty should error")
	}
}

func TestConfusionMatrix(t *testing.T) {
	m, err := ConfusionMatrix([]int{0, 1, 1, 0}, []int{0, 1, 0, 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m[0][0] != 2 || m[0][1] != 1 || m[1][1] != 1 || m[1][0] != 0 {
		t.Fatalf("confusion = %v", m)
	}
	if _, err := ConfusionMatrix([]int{5}, []int{0}, 2); err == nil {
		t.Fatal("out-of-range should error")
	}
}

func TestCrossValidateMajority(t *testing.T) {
	d := skewedDS(100)
	res, err := CrossValidate(&majorityPipeline{}, d, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FoldAccuracies) != 10 {
		t.Fatalf("folds = %d", len(res.FoldAccuracies))
	}
	// Majority class is 75% of the data; stratified folds make each test
	// fold ~75% majority.
	if math.Abs(res.Mean-0.75) > 0.05 {
		t.Fatalf("mean = %v, want ~0.75", res.Mean)
	}
}

func TestCrossValidateOracle(t *testing.T) {
	d := skewedDS(60)
	res, err := CrossValidate(oraclePipeline{}, d, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.Mean, 1) || res.Std != 0 {
		t.Fatalf("oracle mean/std = %v/%v", res.Mean, res.Std)
	}
}

func TestCrossValidatePropagatesErrors(t *testing.T) {
	d := skewedDS(20)
	if _, err := CrossValidate(failingPipeline{}, d, 4, 1); err == nil {
		t.Fatal("expected fit error")
	}
}

func TestHoldOut(t *testing.T) {
	d := skewedDS(40)
	train, test, err := dataset.StratifiedSplit(d.Labels, 2, 0.25, 3)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := HoldOut(oraclePipeline{}, d, train, test)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(acc, 1) {
		t.Fatalf("oracle holdout = %v", acc)
	}
}

func TestSelectBest(t *testing.T) {
	d := skewedDS(60)
	idx, res, err := SelectBest([]Pipeline{&majorityPipeline{}, oraclePipeline{}}, d, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 {
		t.Fatalf("best = %d, want oracle (1)", idx)
	}
	if !approx(res.Mean, 1) {
		t.Fatalf("best mean = %v", res.Mean)
	}
	if _, _, err := SelectBest(nil, d, 5, 1); err == nil {
		t.Fatal("empty candidates should error")
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := meanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !approx(mean, 5) {
		t.Fatalf("mean = %v", mean)
	}
	if math.Abs(std-2) > 1e-12 {
		t.Fatalf("std = %v, want 2", std)
	}
	if m, s := meanStd(nil); m != 0 || s != 0 {
		t.Fatal("empty meanStd should be 0,0")
	}
}
