package eval

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"dfpc/internal/dataset"
	"dfpc/internal/guard"
)

// panicOncePipeline panics on its first Fit call and predicts the true
// label afterwards — one poisoned fold in an otherwise perfect run.
type panicOncePipeline struct{ calls int }

func (p *panicOncePipeline) Fit(d *dataset.Dataset, rows []int) error {
	p.calls++
	if p.calls == 1 {
		panic("fold bomb")
	}
	return nil
}

func (p *panicOncePipeline) Predict(d *dataset.Dataset, rows []int) ([]int, error) {
	out := make([]int, len(rows))
	for i, r := range rows {
		out[i] = d.Labels[r]
	}
	return out, nil
}

func TestFoldPanicIsolatedUnderContinueOnError(t *testing.T) {
	d := skewedDS(100)
	res, err := CrossValidateOpt(&panicOncePipeline{}, d, 5, 1, CVOptions{ContinueOnError: true})
	if err != nil {
		t.Fatalf("isolated run should succeed, got %v", err)
	}
	if len(res.Failures) != 1 {
		t.Fatalf("failures = %d, want 1", len(res.Failures))
	}
	f := res.Failures[0]
	if !f.Panicked || f.Fold != 1 {
		t.Fatalf("failure = %+v, want panicked fold 1", f)
	}
	if !strings.Contains(f.Err.Error(), "fold bomb") {
		t.Fatalf("failure error %q does not carry the panic value", f.Err)
	}
	if res.Completed != 4 || len(res.FoldAccuracies) != 4 {
		t.Fatalf("completed = %d (%d accuracies), want 4", res.Completed, len(res.FoldAccuracies))
	}
	if !approx(res.Mean, 1) {
		t.Fatalf("mean over completed folds = %v, want 1 (oracle)", res.Mean)
	}
}

func TestFoldPanicAbortsWithoutContinueOnError(t *testing.T) {
	d := skewedDS(100)
	res, err := CrossValidateOpt(&panicOncePipeline{}, d, 5, 1, CVOptions{})
	if err == nil {
		t.Fatal("panicking fold without isolation should abort the run")
	}
	// Aborted runs still return the partial statistics of the folds
	// that completed before the abort (here: none — fold 1 panicked).
	if res == nil || res.Completed != 0 {
		t.Fatalf("aborted run result = %+v, want empty partial stats", res)
	}
	if !strings.Contains(err.Error(), "fold bomb") {
		t.Fatalf("error %q does not carry the panic value", err)
	}
}

func TestAllFoldsFailedIsPartialResult(t *testing.T) {
	d := skewedDS(40)
	res, err := CrossValidateOpt(failingPipeline{}, d, 4, 1, CVOptions{ContinueOnError: true})
	if !errors.Is(err, guard.ErrPartialResult) {
		t.Fatalf("err = %v, want guard.ErrPartialResult", err)
	}
	if res == nil || len(res.Failures) != 4 || res.Completed != 0 {
		t.Fatalf("result = %+v, want 4 failures and 0 completed", res)
	}
}

func TestCancellationOverridesIsolation(t *testing.T) {
	d := skewedDS(40)
	ctx, cancel := context.WithCancel(context.Background())
	// Cancel after the first fold completes; the run must then abort
	// even though ContinueOnError is set.
	opt := CVOptions{
		ContinueOnError: true,
		Progress: func(fold, total int, _ time.Duration, _ float64) {
			if fold == 1 {
				cancel()
			}
		},
	}
	res, err := CrossValidateContext(ctx, oraclePipeline{}, d, 4, 1, opt)
	if !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("err = %v, want guard.ErrCanceled", err)
	}
	// Cancellation aborts the run but the folds completed before the
	// signal are still reported, so a CLI can print partial stats.
	if res == nil || res.Completed != 1 || !approx(res.Mean, 1) {
		t.Fatalf("canceled run partial stats = %+v, want 1 completed oracle fold", res)
	}
}

func TestPreCanceledContextFailsFast(t *testing.T) {
	d := skewedDS(40)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := &panicOncePipeline{}
	_, err := CrossValidateContext(ctx, p, d, 4, 1, CVOptions{ContinueOnError: true})
	if !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("err = %v, want guard.ErrCanceled", err)
	}
	if p.calls != 0 {
		t.Fatalf("pipeline ran %d folds under a pre-canceled context", p.calls)
	}
}
