// Package eval provides the experimental protocol of the paper's
// Section 4: classification metrics, stratified cross-validation over a
// pluggable train/predict pipeline, and simple grid model selection.
package eval

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"time"

	"dfpc/internal/dataset"
	"dfpc/internal/faults"
	"dfpc/internal/guard"
	"dfpc/internal/obs"
	"dfpc/internal/parallel"
)

// Pipeline abstracts one classification pipeline: fit on training rows
// of a dataset, then predict test rows. The frequent-pattern framework,
// the single-feature baselines, and the associative classifiers all
// implement this to share the CV harness.
type Pipeline interface {
	// Fit trains on the given dataset rows.
	Fit(d *dataset.Dataset, rows []int) error
	// Predict returns predicted class indices for the given rows.
	Predict(d *dataset.Dataset, rows []int) ([]int, error)
}

// ContextPipeline is the optional cancellable variant of Pipeline.
// When a pipeline passed to CrossValidateContext also implements it,
// the harness calls the context-aware methods so cancellation reaches
// into mining and learning instead of only between folds.
// core.Pipeline implements it.
type ContextPipeline interface {
	FitContext(ctx context.Context, d *dataset.Dataset, rows []int) error
	PredictContext(ctx context.Context, d *dataset.Dataset, rows []int) ([]int, error)
}

// CVCloner is the opt-in hook for concurrent cross-validation: a
// pipeline that can produce independent copies of itself, each safe to
// fit in its own goroutine. CloneForCV returns `any` (asserted to
// Pipeline by the harness) so implementations outside this package need
// no import of eval. Pipelines without it always run folds
// sequentially, whatever CVOptions.Workers says. core.Pipeline
// implements it.
type CVCloner interface {
	CloneForCV() any
}

// ObservablePipeline lets the CV harness install a per-fold observer
// fork on cloned pipelines so concurrent folds record spans without
// sharing one span stack. core.Pipeline implements it.
type ObservablePipeline interface {
	SetObserver(*obs.Observer)
	Observer() *obs.Observer
}

// Accuracy returns the fraction of positions where pred equals truth.
func Accuracy(pred, truth []int) (float64, error) {
	if len(pred) != len(truth) {
		return 0, fmt.Errorf("eval: %d predictions for %d labels", len(pred), len(truth))
	}
	if len(pred) == 0 {
		return 0, fmt.Errorf("eval: empty prediction set")
	}
	correct := 0
	for i := range pred {
		if pred[i] == truth[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(pred)), nil
}

// ConfusionMatrix returns counts[truth][pred].
func ConfusionMatrix(pred, truth []int, numClasses int) ([][]int, error) {
	if len(pred) != len(truth) {
		return nil, fmt.Errorf("eval: %d predictions for %d labels", len(pred), len(truth))
	}
	m := make([][]int, numClasses)
	for i := range m {
		m[i] = make([]int, numClasses)
	}
	for i := range pred {
		if truth[i] < 0 || truth[i] >= numClasses || pred[i] < 0 || pred[i] >= numClasses {
			return nil, fmt.Errorf("eval: label out of range at %d", i)
		}
		m[truth[i]][pred[i]]++
	}
	return m, nil
}

// CVResult summarizes a cross-validation run. When folds were isolated
// with ContinueOnError, FoldAccuracies, Mean, and Std cover only the
// completed folds; Failures records the rest.
type CVResult struct {
	FoldAccuracies []float64
	Mean           float64
	Std            float64
	TrainTime      time.Duration // summed over folds
	TestTime       time.Duration
	// Completed is the number of folds that finished; it equals
	// len(FoldAccuracies) and is len(folds)−len(Failures).
	Completed int
	// Failures records the folds that errored or panicked (empty for a
	// clean run, and always empty without CVOptions.ContinueOnError).
	Failures []FoldError
}

// FoldError records one failed cross-validation fold.
type FoldError struct {
	// Fold is the 1-based fold number.
	Fold int
	// Err is the fold's failure; for a recovered panic it wraps the
	// panic value.
	Err error
	// Panicked marks failures recovered from a panic rather than a
	// returned error.
	Panicked bool
}

func (e FoldError) Error() string {
	kind := "error"
	if e.Panicked {
		kind = "panic"
	}
	//vet:ignore hotalloc error formatting runs only on the failure path
	return fmt.Sprintf("fold %d %s: %v", e.Fold, kind, e.Err)
}

// Unwrap exposes the underlying failure to errors.Is/As.
func (e FoldError) Unwrap() error { return e.Err }

// ProgressFunc is notified after each completed cross-validation fold:
// fold is 1-based, total is the fold count, elapsed covers the fold's
// fit plus predict, and accuracy is the fold's test accuracy. Long CV
// runs use it to report liveness ("fold 3/10 done in 1.2s").
type ProgressFunc func(fold, total int, elapsed time.Duration, accuracy float64)

// CVOptions carries the optional observability hooks of a CV run.
type CVOptions struct {
	// Obs, when non-nil, records one span per fold. Pass the same
	// observer installed on the pipeline (core.Config.Obs) so the
	// pipeline's fit/predict spans nest under the fold spans.
	Obs *obs.Observer
	// Progress, when non-nil, is called after every fold.
	Progress ProgressFunc
	// Log, when non-nil, receives one structured DEBUG record per
	// completed fold and a WARN per isolated fold failure and per
	// partial-result run. Nil disables logging.
	Log *slog.Logger
	// ContinueOnError isolates folds: an erroring or panicking fold is
	// recorded in CVResult.Failures and the remaining folds still run.
	// Mean/Std are then honest statistics over the completed folds
	// only. Context cancellation still aborts the whole run — a
	// canceled fold is not an isolated failure. Without it, the first
	// fold failure aborts the run (panics are still recovered into the
	// returned error rather than crashing the caller).
	ContinueOnError bool
	// Workers bounds the fold fan-out (0 = GOMAXPROCS, 1 = sequential).
	// Folds run concurrently only when the pipeline implements CVCloner
	// (each fold fits its own clone); results are merged in fold order,
	// so FoldAccuracies, Mean, Std, and the summed Train/TestTime are
	// identical at any worker count. Progress and per-fold log records
	// are emitted in fold order after all folds join.
	Workers parallel.Workers
	// Faults, when non-nil, enables deterministic fault injection at
	// the start of every fold (point eval.fold). An injected panic is
	// recovered by the fold isolation machinery like any pipeline
	// panic. Nil is free.
	Faults *faults.Registry
	// Checkpoint, when non-nil, persists each completed fold's outcome
	// as a durable artifact and replays completed folds on a later run
	// instead of re-fitting them. The final fold always re-executes so
	// the pipeline's post-CV fitted state (stats, explanations) is live
	// exactly as in an uninterrupted run; determinism of the pipeline
	// guarantees the re-run reproduces the checkpointed accuracy.
	// Failed folds are never checkpointed.
	Checkpoint *Checkpointer
}

// CrossValidate runs stratified k-fold cross validation of the pipeline
// on the dataset (the paper's protocol: "Each dataset is partitioned
// into ten parts evenly. Each time, one part is used for test and the
// other nine are used for training").
func CrossValidate(p Pipeline, d *dataset.Dataset, k int, seed int64) (*CVResult, error) {
	return CrossValidateOpt(p, d, k, seed, CVOptions{})
}

// CrossValidateOpt is CrossValidate with per-fold observability.
func CrossValidateOpt(p Pipeline, d *dataset.Dataset, k int, seed int64, opt CVOptions) (*CVResult, error) {
	return CrossValidateContext(context.Background(), p, d, k, seed, opt)
}

// foldOutcome is the result of one executed fold, independent of any
// shared CV state so folds can run concurrently and merge in order.
type foldOutcome struct {
	ran       bool
	acc       float64
	trainTime time.Duration
	testTime  time.Duration
	elapsed   time.Duration
	panicked  bool
	err       error
}

// runFold executes one fold end to end, converting panics in the
// pipeline into errors so a single bad fold cannot crash a CV sweep.
func runFold(ctx context.Context, p Pipeline, d *dataset.Dataset, train, test []int, fr *faults.Registry) (out foldOutcome) {
	out.ran = true
	defer func() {
		if r := recover(); r != nil {
			out.panicked = true
			out.err = fmt.Errorf("recovered panic: %v", r)
		}
	}()
	if err := fr.Hit(faults.EvalFold); err != nil {
		out.err = err
		return out
	}
	cp, _ := p.(ContextPipeline)
	//vet:ignore nondeterm fold wall-time telemetry; timings are reported, never byte-compared
	t0 := time.Now()
	var err error
	if cp != nil {
		err = cp.FitContext(ctx, d, train)
	} else {
		err = p.Fit(d, train)
	}
	if err != nil {
		out.err = fmt.Errorf("fit: %w", err)
		return out
	}
	//vet:ignore nondeterm fold wall-time telemetry; timings are reported, never byte-compared
	out.trainTime = time.Since(t0)
	//vet:ignore nondeterm fold wall-time telemetry; timings are reported, never byte-compared
	t0 = time.Now()
	var pred []int
	if cp != nil {
		pred, err = cp.PredictContext(ctx, d, test)
	} else {
		pred, err = p.Predict(d, test)
	}
	if err != nil {
		out.err = fmt.Errorf("predict: %w", err)
		return out
	}
	//vet:ignore nondeterm fold wall-time telemetry; timings are reported, never byte-compared
	out.testTime = time.Since(t0)
	truth := make([]int, len(test))
	for i, r := range test {
		truth[i] = d.Labels[r]
	}
	out.acc, out.err = Accuracy(pred, truth)
	return out
}

// CrossValidateContext is CrossValidateOpt under a context. The context
// applies to the whole run: cancellation aborts between and (for
// pipelines implementing ContextPipeline) inside folds, regardless of
// opt.ContinueOnError. With opt.ContinueOnError, non-cancellation fold
// failures are isolated into CVResult.Failures and the remaining folds
// still run; if no fold completes, the returned error satisfies
// errors.Is(err, guard.ErrPartialResult).
//
// An aborting run (cancellation, or a fold failure without
// ContinueOnError) returns its error together with a non-nil result
// carrying the statistics of the folds that completed before the abort,
// so callers can report partial progress — e.g. a CLI interrupted by
// SIGINT. The error still marks the run as incomplete.
func CrossValidateContext(ctx context.Context, p Pipeline, d *dataset.Dataset, k int, seed int64, opt CVOptions) (*CVResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	folds, err := dataset.StratifiedKFold(d.Labels, d.NumClasses(), k, seed)
	if err != nil {
		return nil, err
	}
	res := &CVResult{}
	// fail finalizes the partial statistics before an abort so callers
	// (e.g. a CLI handling Ctrl-C) can still report the folds that did
	// complete; the non-nil error marks the run as aborted.
	fail := func(err error) (*CVResult, error) {
		res.Completed = len(res.FoldAccuracies)
		res.Mean, res.Std = meanStd(res.FoldAccuracies)
		return res, err
	}
	// restore replays a completed fold from the checkpoint directory.
	// The final fold never restores: re-executing it leaves the
	// pipeline's fitted state identical to an uninterrupted run, and
	// the pipeline's determinism contract makes the re-run reproduce
	// the checkpointed outcome exactly.
	restore := func(f int) (foldOutcome, bool) {
		if opt.Checkpoint == nil || f == len(folds)-1 {
			return foldOutcome{}, false
		}
		return opt.Checkpoint.LoadFold(f)
	}
	// persist checkpoints a clean fold outcome; a checkpoint that
	// cannot be written degrades the fold to failed rather than being
	// silently dropped (a later resume would otherwise silently
	// re-execute under a different schedule than the journal records).
	persist := func(f int, out foldOutcome) foldOutcome {
		if opt.Checkpoint == nil || out.err != nil {
			return out
		}
		if err := opt.Checkpoint.SaveFold(f, out); err != nil {
			out.err = fmt.Errorf("checkpoint fold %d: %w", f+1, err)
		}
		return out
	}
	// merge folds one outcome at a time, strictly in fold order, for
	// both the sequential and the concurrent path — fold-order merging
	// is what keeps FoldAccuracies, Mean/Std, the summed durations, and
	// the abort error independent of the worker count. A non-nil return
	// aborts the run.
	merge := func(f int, out foldOutcome) error {
		res.TrainTime += out.trainTime
		res.TestTime += out.testTime
		if out.err != nil {
			// Cancellation is a run-level event, not a fold defect:
			// stop even under ContinueOnError.
			if ctx.Err() != nil {
				return fmt.Errorf("eval: fold %d: %w", f+1, out.err)
			}
			if !opt.ContinueOnError {
				return fmt.Errorf("eval: fold %d: %w", f+1, out.err)
			}
			res.Failures = append(res.Failures, FoldError{Fold: f + 1, Err: out.err, Panicked: out.panicked})
			opt.Obs.Counter("cv.fold_failures").Inc()
			if opt.Log != nil {
				opt.Log.Warn("cross-validation fold failed; continuing",
					slog.Int("fold", f+1),
					slog.Int("total", len(folds)),
					slog.Bool("panicked", out.panicked),
					slog.String("err", out.err.Error()))
			}
			return nil
		}
		res.FoldAccuracies = append(res.FoldAccuracies, out.acc)
		if opt.Log != nil {
			opt.Log.Debug("cross-validation fold done",
				slog.Int("fold", f+1),
				slog.Int("total", len(folds)),
				slog.Duration("elapsed", out.elapsed),
				slog.Float64("accuracy", out.acc))
		}
		if opt.Progress != nil {
			opt.Progress(f+1, len(folds), out.elapsed, out.acc)
		}
		return nil
	}

	cloner, canClone := p.(CVCloner)
	op, canObserve := p.(ObservablePipeline)
	if opt.Workers.Resolve() > 1 && len(folds) > 1 && canClone && (opt.Obs == nil || canObserve) {
		// Concurrent folds: every fold but the last fits a clone; the
		// last fold fits the original pipeline so its post-CV state
		// (stats, explanations) matches a sequential run. Each fold
		// records on its own observer fork — span trees stay intact and
		// counters land in the shared registry. An aborting fold stops
		// further folds from being claimed; ForEach's ascending-claim
		// guarantee means every earlier fold still ran to completion,
		// which is all the fold-order merge below consumes.
		outcomes := make([]foldOutcome, len(folds))
		var origObs *obs.Observer
		if canObserve {
			origObs = op.Observer()
		}
		_ = parallel.ForEach(opt.Workers, len(folds), func(f int) error {
			if err := guard.New(ctx, guard.Limits{}).CheckNow(); err != nil {
				outcomes[f] = foldOutcome{ran: true, err: err}
				return err
			}
			if out, ok := restore(f); ok {
				opt.Obs.Fork().Start("cv-fold").
					Attr("fold", f+1).Attr("restored", true).End()
				outcomes[f] = out
				return nil
			}
			fp := p
			if f != len(folds)-1 {
				cl, ok := cloner.CloneForCV().(Pipeline)
				if !ok {
					outcomes[f] = foldOutcome{ran: true,
						err: fmt.Errorf("CloneForCV returned %T, not an eval.Pipeline", cloner.CloneForCV())}
					return outcomes[f].err
				}
				fp = cl
			}
			fo := opt.Obs.Fork()
			if fop, ok := fp.(ObservablePipeline); ok && opt.Obs != nil {
				fop.SetObserver(fo)
			}
			train, test := dataset.TrainTestFromFolds(folds, f)
			sp := fo.Start("cv-fold").
				Attr("fold", f+1).Attr("train", len(train)).Attr("test", len(test))
			//vet:ignore nondeterm fold wall-time telemetry; timings are reported, never byte-compared
			foldStart := time.Now()
			out := runFold(ctx, fp, d, train, test, opt.Faults)
			//vet:ignore nondeterm fold wall-time telemetry; timings are reported, never byte-compared
			out.elapsed = time.Since(foldStart)
			out = persist(f, out)
			if out.err != nil {
				sp.Attr("error", out.err.Error()).End()
			} else {
				sp.Attr("accuracy", fmt.Sprintf("%.4f", out.acc)).End()
			}
			outcomes[f] = out
			if out.err != nil && (ctx.Err() != nil || !opt.ContinueOnError) {
				return out.err
			}
			return nil
		})
		if canObserve && opt.Obs != nil {
			op.SetObserver(origObs)
		}
		for f := range folds {
			if !outcomes[f].ran {
				break // unreachable before an aborting merge below
			}
			if err := merge(f, outcomes[f]); err != nil {
				return fail(err)
			}
		}
	} else {
		for f := range folds {
			if err := guard.New(ctx, guard.Limits{}).CheckNow(); err != nil {
				return fail(err)
			}
			if out, ok := restore(f); ok {
				opt.Obs.Start("cv-fold").
					Attr("fold", f+1).Attr("restored", true).End()
				if err := merge(f, out); err != nil {
					return fail(err)
				}
				continue
			}
			train, test := dataset.TrainTestFromFolds(folds, f)
			sp := opt.Obs.Start("cv-fold").
				Attr("fold", f+1).Attr("train", len(train)).Attr("test", len(test))
			//vet:ignore nondeterm fold wall-time telemetry; timings are reported, never byte-compared
			foldStart := time.Now()
			out := runFold(ctx, p, d, train, test, opt.Faults)
			//vet:ignore nondeterm fold wall-time telemetry; timings are reported, never byte-compared
			out.elapsed = time.Since(foldStart)
			out = persist(f, out)
			if out.err != nil {
				sp.Attr("error", out.err.Error()).End()
			} else {
				sp.Attr("accuracy", fmt.Sprintf("%.4f", out.acc)).End()
			}
			if err := merge(f, out); err != nil {
				return fail(err)
			}
		}
	}
	res.Completed = len(res.FoldAccuracies)
	res.Mean, res.Std = meanStd(res.FoldAccuracies)
	if res.Completed == 0 && len(res.Failures) > 0 {
		return res, fmt.Errorf("eval: all %d folds failed (first: %w): %w",
			len(res.Failures), res.Failures[0], guard.ErrPartialResult)
	}
	if len(res.Failures) > 0 && opt.Log != nil {
		opt.Log.Warn("cross-validation completed with isolated fold failures",
			slog.Int("completed", res.Completed),
			slog.Int("failed", len(res.Failures)))
	}
	return res, nil
}

// HoldOut trains on train rows and evaluates accuracy on test rows.
func HoldOut(p Pipeline, d *dataset.Dataset, train, test []int) (float64, error) {
	if err := p.Fit(d, train); err != nil {
		return 0, err
	}
	pred, err := p.Predict(d, test)
	if err != nil {
		return 0, err
	}
	truth := make([]int, len(test))
	for i, r := range test {
		truth[i] = d.Labels[r]
	}
	return Accuracy(pred, truth)
}

// SelectBest evaluates each candidate pipeline by k-fold CV and returns
// the index of the one with the highest mean accuracy — the "10-fold
// cross validation on each training set, pick the best model" step of
// the paper's protocol.
func SelectBest(cands []Pipeline, d *dataset.Dataset, k int, seed int64) (int, *CVResult, error) {
	if len(cands) == 0 {
		return -1, nil, fmt.Errorf("eval: no candidate pipelines")
	}
	bestIdx, bestRes := -1, (*CVResult)(nil)
	for i, p := range cands {
		res, err := CrossValidate(p, d, k, seed)
		if err != nil {
			return -1, nil, fmt.Errorf("eval: candidate %d: %w", i, err)
		}
		if bestRes == nil || res.Mean > bestRes.Mean {
			bestIdx, bestRes = i, res
		}
	}
	return bestIdx, bestRes, nil
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}
