// Package eval provides the experimental protocol of the paper's
// Section 4: classification metrics, stratified cross-validation over a
// pluggable train/predict pipeline, and simple grid model selection.
package eval

import (
	"fmt"
	"math"
	"time"

	"dfpc/internal/dataset"
	"dfpc/internal/obs"
)

// Pipeline abstracts one classification pipeline: fit on training rows
// of a dataset, then predict test rows. The frequent-pattern framework,
// the single-feature baselines, and the associative classifiers all
// implement this to share the CV harness.
type Pipeline interface {
	// Fit trains on the given dataset rows.
	Fit(d *dataset.Dataset, rows []int) error
	// Predict returns predicted class indices for the given rows.
	Predict(d *dataset.Dataset, rows []int) ([]int, error)
}

// Accuracy returns the fraction of positions where pred equals truth.
func Accuracy(pred, truth []int) (float64, error) {
	if len(pred) != len(truth) {
		return 0, fmt.Errorf("eval: %d predictions for %d labels", len(pred), len(truth))
	}
	if len(pred) == 0 {
		return 0, fmt.Errorf("eval: empty prediction set")
	}
	correct := 0
	for i := range pred {
		if pred[i] == truth[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(pred)), nil
}

// ConfusionMatrix returns counts[truth][pred].
func ConfusionMatrix(pred, truth []int, numClasses int) ([][]int, error) {
	if len(pred) != len(truth) {
		return nil, fmt.Errorf("eval: %d predictions for %d labels", len(pred), len(truth))
	}
	m := make([][]int, numClasses)
	for i := range m {
		m[i] = make([]int, numClasses)
	}
	for i := range pred {
		if truth[i] < 0 || truth[i] >= numClasses || pred[i] < 0 || pred[i] >= numClasses {
			return nil, fmt.Errorf("eval: label out of range at %d", i)
		}
		m[truth[i]][pred[i]]++
	}
	return m, nil
}

// CVResult summarizes a cross-validation run.
type CVResult struct {
	FoldAccuracies []float64
	Mean           float64
	Std            float64
	TrainTime      time.Duration // summed over folds
	TestTime       time.Duration
}

// ProgressFunc is notified after each completed cross-validation fold:
// fold is 1-based, total is the fold count, elapsed covers the fold's
// fit plus predict, and accuracy is the fold's test accuracy. Long CV
// runs use it to report liveness ("fold 3/10 done in 1.2s").
type ProgressFunc func(fold, total int, elapsed time.Duration, accuracy float64)

// CVOptions carries the optional observability hooks of a CV run.
type CVOptions struct {
	// Obs, when non-nil, records one span per fold. Pass the same
	// observer installed on the pipeline (core.Config.Obs) so the
	// pipeline's fit/predict spans nest under the fold spans.
	Obs *obs.Observer
	// Progress, when non-nil, is called after every fold.
	Progress ProgressFunc
}

// CrossValidate runs stratified k-fold cross validation of the pipeline
// on the dataset (the paper's protocol: "Each dataset is partitioned
// into ten parts evenly. Each time, one part is used for test and the
// other nine are used for training").
func CrossValidate(p Pipeline, d *dataset.Dataset, k int, seed int64) (*CVResult, error) {
	return CrossValidateOpt(p, d, k, seed, CVOptions{})
}

// CrossValidateOpt is CrossValidate with per-fold observability.
func CrossValidateOpt(p Pipeline, d *dataset.Dataset, k int, seed int64, opt CVOptions) (*CVResult, error) {
	folds, err := dataset.StratifiedKFold(d.Labels, d.NumClasses(), k, seed)
	if err != nil {
		return nil, err
	}
	res := &CVResult{}
	for f := range folds {
		train, test := dataset.TrainTestFromFolds(folds, f)
		sp := opt.Obs.Start("cv-fold").
			Attr("fold", f+1).Attr("train", len(train)).Attr("test", len(test))
		foldStart := time.Now()
		t0 := time.Now()
		if err := p.Fit(d, train); err != nil {
			sp.End()
			return nil, fmt.Errorf("eval: fold %d fit: %w", f, err)
		}
		res.TrainTime += time.Since(t0)
		t0 = time.Now()
		pred, err := p.Predict(d, test)
		if err != nil {
			sp.End()
			return nil, fmt.Errorf("eval: fold %d predict: %w", f, err)
		}
		res.TestTime += time.Since(t0)
		truth := make([]int, len(test))
		for i, r := range test {
			truth[i] = d.Labels[r]
		}
		acc, err := Accuracy(pred, truth)
		if err != nil {
			sp.End()
			return nil, err
		}
		sp.Attr("accuracy", fmt.Sprintf("%.4f", acc)).End()
		res.FoldAccuracies = append(res.FoldAccuracies, acc)
		if opt.Progress != nil {
			opt.Progress(f+1, len(folds), time.Since(foldStart), acc)
		}
	}
	res.Mean, res.Std = meanStd(res.FoldAccuracies)
	return res, nil
}

// HoldOut trains on train rows and evaluates accuracy on test rows.
func HoldOut(p Pipeline, d *dataset.Dataset, train, test []int) (float64, error) {
	if err := p.Fit(d, train); err != nil {
		return 0, err
	}
	pred, err := p.Predict(d, test)
	if err != nil {
		return 0, err
	}
	truth := make([]int, len(test))
	for i, r := range test {
		truth[i] = d.Labels[r]
	}
	return Accuracy(pred, truth)
}

// SelectBest evaluates each candidate pipeline by k-fold CV and returns
// the index of the one with the highest mean accuracy — the "10-fold
// cross validation on each training set, pick the best model" step of
// the paper's protocol.
func SelectBest(cands []Pipeline, d *dataset.Dataset, k int, seed int64) (int, *CVResult, error) {
	if len(cands) == 0 {
		return -1, nil, fmt.Errorf("eval: no candidate pipelines")
	}
	bestIdx, bestRes := -1, (*CVResult)(nil)
	for i, p := range cands {
		res, err := CrossValidate(p, d, k, seed)
		if err != nil {
			return -1, nil, fmt.Errorf("eval: candidate %d: %w", i, err)
		}
		if bestRes == nil || res.Mean > bestRes.Mean {
			bestIdx, bestRes = i, res
		}
	}
	return bestIdx, bestRes, nil
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}
