package eval

import (
	"fmt"
	"math"
)

// McNemar performs McNemar's test with continuity correction on two
// classifiers' predictions over the same test rows: it considers only
// the disagreement cells (rows one classifier gets right and the other
// wrong) and tests whether the disagreements are symmetric. Returns the
// chi-squared statistic and p-value (1 df). Small disagreement counts
// (b+c < 10) make the approximation unreliable; the test reports this
// through ok=false while still returning the statistic.
func McNemar(predA, predB, truth []int) (chi2, p float64, ok bool, err error) {
	if len(predA) != len(truth) || len(predB) != len(truth) {
		return 0, 0, false, fmt.Errorf("eval: mcnemar length mismatch (%d, %d, %d)",
			len(predA), len(predB), len(truth))
	}
	if len(truth) == 0 {
		return 0, 0, false, fmt.Errorf("eval: mcnemar on empty predictions")
	}
	b, c := 0, 0 // b: A right, B wrong; c: A wrong, B right
	for i := range truth {
		aRight := predA[i] == truth[i]
		bRight := predB[i] == truth[i]
		switch {
		case aRight && !bRight:
			b++
		case !aRight && bRight:
			c++
		}
	}
	if b+c == 0 {
		return 0, 1, false, nil // identical error patterns
	}
	diff := math.Abs(float64(b-c)) - 1 // continuity correction
	if diff < 0 {
		diff = 0
	}
	chi2 = diff * diff / float64(b+c)
	p = chiSquaredTail1(chi2)
	return chi2, p, b+c >= 10, nil
}

// chiSquaredTail1 returns P(X > x) for a chi-squared distribution with
// one degree of freedom: erfc(sqrt(x/2)).
func chiSquaredTail1(x float64) float64 {
	if x <= 0 {
		return 1
	}
	return math.Erfc(math.Sqrt(x / 2))
}
