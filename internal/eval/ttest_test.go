package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPairedTTestIdenticalSamples(t *testing.T) {
	a := []float64{0.8, 0.9, 0.85, 0.87}
	tt, p, err := PairedTTest(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if tt != 0 || !approx(p, 1) {
		t.Fatalf("identical samples: t=%v p=%v, want 0, 1", tt, p)
	}
}

func TestPairedTTestClearDifference(t *testing.T) {
	a := []float64{0.90, 0.92, 0.91, 0.93, 0.89, 0.92, 0.90, 0.91, 0.93, 0.92}
	b := []float64{0.70, 0.72, 0.71, 0.73, 0.69, 0.72, 0.70, 0.71, 0.73, 0.72}
	tt, p, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if tt <= 0 {
		t.Fatalf("t = %v, want positive", tt)
	}
	if p >= 0.001 {
		t.Fatalf("p = %v, want < 0.001 for a 20-point gap", p)
	}
}

func TestPairedTTestNoDifference(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a := make([]float64, 30)
	b := make([]float64, 30)
	for i := range a {
		base := 0.8 + 0.05*r.NormFloat64()
		a[i] = base + 0.01*r.NormFloat64()
		b[i] = base + 0.01*r.NormFloat64()
	}
	_, p, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.01 {
		t.Fatalf("p = %v on same-distribution noise; suspiciously significant", p)
	}
}

func TestPairedTTestErrors(t *testing.T) {
	if _, _, err := PairedTTest([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, _, err := PairedTTest([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single pair should error")
	}
}

func TestPairedTTestConstantShift(t *testing.T) {
	// Zero variance of differences but nonzero mean → infinite t, p = 0.
	// Values chosen so the differences are exactly representable.
	a := []float64{1.5, 2.5, 3.5}
	b := []float64{1.0, 2.0, 3.0}
	tt, p, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(tt, 1) || p != 0 {
		t.Fatalf("constant shift: t=%v p=%v", tt, p)
	}
}

func TestStudentTailKnownValues(t *testing.T) {
	// t distribution with 9 df: P(T > 2.262) ≈ 0.025 (the classic 95%
	// two-sided critical value).
	if got := studentTailCDF(2.262, 9); math.Abs(got-0.025) > 0.002 {
		t.Fatalf("P(T>2.262; df=9) = %v, want ~0.025", got)
	}
	// df=1 (Cauchy): P(T > 1) = 0.25.
	if got := studentTailCDF(1, 1); math.Abs(got-0.25) > 0.002 {
		t.Fatalf("P(T>1; df=1) = %v, want 0.25", got)
	}
	if got := studentTailCDF(0, 5); !approx(got, 0.5) {
		t.Fatalf("P(T>0) = %v, want 0.5", got)
	}
}

func TestRegularizedIncompleteBeta(t *testing.T) {
	// I_x(1,1) = x (uniform distribution CDF).
	for _, x := range []float64{0.1, 0.5, 0.9} {
		if got := regularizedIncompleteBeta(1, 1, x); math.Abs(got-x) > 1e-10 {
			t.Fatalf("I_%v(1,1) = %v", x, got)
		}
	}
	// Symmetry: I_x(a,b) = 1 − I_{1−x}(b,a).
	got := regularizedIncompleteBeta(2, 3, 0.3)
	want := 1 - regularizedIncompleteBeta(3, 2, 0.7)
	if math.Abs(got-want) > 1e-10 {
		t.Fatalf("symmetry violated: %v vs %v", got, want)
	}
	if regularizedIncompleteBeta(2, 3, 0) != 0 || !approx(regularizedIncompleteBeta(2, 3, 1), 1) {
		t.Fatal("boundary values wrong")
	}
}

func TestQuickPValueInRange(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = r.Float64()
			b[i] = r.Float64()
		}
		_, p, err := PairedTTest(a, b)
		if err != nil {
			return false
		}
		return p >= 0 && p <= 1 && !math.IsNaN(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCompare(t *testing.T) {
	a := &CVResult{FoldAccuracies: []float64{0.9, 0.92, 0.91, 0.9, 0.93}, Mean: 0.912}
	b := &CVResult{FoldAccuracies: []float64{0.7, 0.71, 0.72, 0.7, 0.73}, Mean: 0.712}
	res, err := Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Significant {
		t.Fatalf("20-point gap not significant: %+v", res)
	}
	if _, err := Compare(&CVResult{FoldAccuracies: []float64{1}}, b); err == nil {
		t.Fatal("mismatched folds should error")
	}
}
