package eval

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"time"

	"dfpc/internal/durable"
	"dfpc/internal/faults"
)

// Fold checkpoints are single-envelope durable artifacts, one file per
// completed fold, written atomically — a crash mid-checkpoint leaves
// either no file or a fully valid one, and resume treats anything
// invalid as "not checkpointed" and simply re-executes the fold.
const (
	foldKind    = "dfpc-cv-fold"
	foldVersion = 1
)

// foldCheckpoint is the gob payload of one fold's outcome. Key binds
// the checkpoint to the exact run configuration; a checkpoint written
// under a different dataset/config/seed never replays.
type foldCheckpoint struct {
	Key       string
	Fold      int // 0-based
	Acc       float64
	TrainNS   int64
	TestNS    int64
	ElapsedNS int64
}

// CVKey derives a checkpoint-compatibility key from the parts that
// determine a CV run's outcomes: dataset identity, fold count, shuffle
// seed, and the pipeline configuration. Worker count is deliberately
// excluded — the determinism contract makes outcomes identical at any
// count, so a run interrupted at -workers 8 may resume at -workers 1.
func CVKey(parts ...any) string {
	h := fnv.New64a()
	for _, p := range parts {
		fmt.Fprintf(h, "%v|", p)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Checkpointer persists completed cross-validation folds under a
// directory and replays them on resume. Safe for concurrent use: folds
// write distinct files.
type Checkpointer struct {
	dir    string
	key    string
	faults *faults.Registry
}

// NewCheckpointer opens (creating if needed) a checkpoint directory
// for a run identified by key (see CVKey). r may be nil.
func NewCheckpointer(dir, key string, r *faults.Registry) (*Checkpointer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("eval: checkpoint dir: %w", err)
	}
	return &Checkpointer{dir: dir, key: key, faults: r}, nil
}

// Dir returns the checkpoint directory.
func (c *Checkpointer) Dir() string { return c.dir }

func (c *Checkpointer) foldPath(f int) string {
	return filepath.Join(c.dir, fmt.Sprintf("fold-%04d.ckpt", f+1))
}

// LoadFold replays fold f's checkpointed outcome. Missing, torn,
// corrupt, or key-mismatched checkpoints all return ok=false — resume
// re-executes such folds rather than trusting them.
func (c *Checkpointer) LoadFold(f int) (foldOutcome, bool) {
	ver, payload, err := durable.LoadFile(c.foldPath(f), foldKind)
	if err != nil || ver != foldVersion {
		return foldOutcome{}, false
	}
	var fc foldCheckpoint
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&fc); err != nil {
		return foldOutcome{}, false
	}
	if fc.Key != c.key || fc.Fold != f {
		return foldOutcome{}, false
	}
	return foldOutcome{
		ran:       true,
		acc:       fc.Acc,
		trainTime: time.Duration(fc.TrainNS),
		testTime:  time.Duration(fc.TestNS),
		elapsed:   time.Duration(fc.ElapsedNS),
	}, true
}

// SaveFold atomically persists fold f's clean outcome.
func (c *Checkpointer) SaveFold(f int, out foldOutcome) error {
	if err := c.faults.Hit(faults.CheckpointWrite); err != nil {
		return err
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(foldCheckpoint{
		Key:       c.key,
		Fold:      f,
		Acc:       out.acc,
		TrainNS:   int64(out.trainTime),
		TestNS:    int64(out.testTime),
		ElapsedNS: int64(out.elapsed),
	}); err != nil {
		return err
	}
	return durable.SaveFile(c.foldPath(f), foldKind, foldVersion, payload.Bytes(), c.faults)
}

// CompletedFolds reports which fold checkpoints currently replay under
// this run's key (for CLI resume summaries).
func (c *Checkpointer) CompletedFolds(total int) []int {
	var done []int
	for f := 0; f < total; f++ {
		if _, ok := c.LoadFold(f); ok {
			done = append(done, f)
		}
	}
	return done
}
