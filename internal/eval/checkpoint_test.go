package eval

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"dfpc/internal/dataset"
	"dfpc/internal/faults"
	"dfpc/internal/parallel"
)

// fitCountingPipeline counts Fit calls and predicts the true label, so
// tests can tell executed folds from replayed ones. The counter is
// atomic because clones share it across concurrent folds.
type fitCountingPipeline struct{ fits atomic.Int64 }

func (p *fitCountingPipeline) Fit(d *dataset.Dataset, rows []int) error {
	p.fits.Add(1)
	return nil
}

func (p *fitCountingPipeline) Predict(d *dataset.Dataset, rows []int) ([]int, error) {
	out := make([]int, len(rows))
	for i, r := range rows {
		out[i] = d.Labels[r]
	}
	return out, nil
}

func (p *fitCountingPipeline) CloneForCV() any { return p } // folds share the counter

func TestCheckpointRoundTrip(t *testing.T) {
	ck, err := NewCheckpointer(t.TempDir(), CVKey("austral", 5, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	out := foldOutcome{ran: true, acc: 0.8125, trainTime: 5 * time.Millisecond,
		testTime: time.Millisecond, elapsed: 6 * time.Millisecond}
	if err := ck.SaveFold(2, out); err != nil {
		t.Fatal(err)
	}
	got, ok := ck.LoadFold(2)
	if !ok {
		t.Fatal("saved fold did not load")
	}
	if got != out {
		t.Fatalf("loaded %+v, want %+v", got, out)
	}
	if _, ok := ck.LoadFold(3); ok {
		t.Fatal("unsaved fold loaded")
	}
	if done := ck.CompletedFolds(5); len(done) != 1 || done[0] != 2 {
		t.Fatalf("CompletedFolds = %v, want [2]", done)
	}
}

func TestCheckpointKeyMismatchIgnored(t *testing.T) {
	dir := t.TempDir()
	ck1, _ := NewCheckpointer(dir, CVKey("config-a"), nil)
	if err := ck1.SaveFold(0, foldOutcome{ran: true, acc: 1}); err != nil {
		t.Fatal(err)
	}
	ck2, _ := NewCheckpointer(dir, CVKey("config-b"), nil)
	if _, ok := ck2.LoadFold(0); ok {
		t.Fatal("checkpoint replayed under a different config key")
	}
}

func TestCheckpointCorruptionIgnored(t *testing.T) {
	dir := t.TempDir()
	ck, _ := NewCheckpointer(dir, "k", nil)
	if err := ck.SaveFold(0, foldOutcome{ran: true, acc: 0.5}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "fold-0001.ckpt")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A torn (truncated) checkpoint must be treated as absent.
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := ck.LoadFold(0); ok {
		t.Fatal("torn checkpoint replayed")
	}
}

// TestResumeSkipsCheckpointedFolds pins the resume contract: an
// interrupted run's checkpoints replay on the next run, only the
// missing folds (plus the always-re-run final fold) execute, and the
// statistics equal an uninterrupted run's.
func TestResumeSkipsCheckpointedFolds(t *testing.T) {
	d := skewedDS(60)
	const k, seed = 5, 1
	key := CVKey("skewed", k, seed)

	baseline, err := CrossValidate(oraclePipeline{}, d, k, seed)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 8} {
		dir := t.TempDir()
		ck, _ := NewCheckpointer(dir, key, nil)

		// First run: injected cancellation at fold 3 interrupts the run
		// after two folds checkpointed.
		fr := faults.New(1)
		fr.Arm(faults.EvalFold, 3, errors.New("simulated crash"))
		p1 := &fitCountingPipeline{}
		_, err := CrossValidateContext(context.Background(), p1, d, k, seed, CVOptions{
			Workers: parallel.Workers(1), Faults: fr, Checkpoint: ck,
		})
		if err == nil {
			t.Fatal("interrupted run did not fail")
		}

		// Second run resumes: folds 1-2 replay, folds 3-5 execute.
		p2 := &fitCountingPipeline{}
		res, err := CrossValidateContext(context.Background(), p2, d, k, seed, CVOptions{
			Workers: parallel.Workers(workers), Checkpoint: ck,
		})
		if err != nil {
			t.Fatalf("workers=%d: resume failed: %v", workers, err)
		}
		if p2.fits.Load() != 3 {
			t.Fatalf("workers=%d: resume executed %d folds, want 3", workers, p2.fits.Load())
		}
		if len(res.FoldAccuracies) != len(baseline.FoldAccuracies) {
			t.Fatalf("workers=%d: %d fold accuracies, want %d",
				workers, len(res.FoldAccuracies), len(baseline.FoldAccuracies))
		}
		for i := range res.FoldAccuracies {
			//vet:ignore floateq the resume contract is bit-identical replay, not approximate
			if res.FoldAccuracies[i] != baseline.FoldAccuracies[i] {
				t.Fatalf("workers=%d: fold %d accuracy %v != baseline %v",
					workers, i+1, res.FoldAccuracies[i], baseline.FoldAccuracies[i])
			}
		}
		//vet:ignore floateq the resume contract is bit-identical replay, not approximate
		if res.Mean != baseline.Mean || res.Std != baseline.Std {
			t.Fatalf("workers=%d: mean/std %v/%v != baseline %v/%v",
				workers, res.Mean, res.Std, baseline.Mean, baseline.Std)
		}

		// A third run replays everything but the final fold.
		p3 := &fitCountingPipeline{}
		if _, err := CrossValidateContext(context.Background(), p3, d, k, seed, CVOptions{
			Checkpoint: ck,
		}); err != nil {
			t.Fatal(err)
		}
		if p3.fits.Load() != 1 {
			t.Fatalf("fully-checkpointed run executed %d folds, want 1 (the final fold)", p3.fits.Load())
		}
	}
}

// TestCheckpointWriteFaultDegradesFold pins that an injected
// checkpoint.write failure surfaces as a fold error instead of being
// silently dropped.
func TestCheckpointWriteFaultDegradesFold(t *testing.T) {
	d := skewedDS(40)
	fr := faults.New(1)
	fr.Arm(faults.CheckpointWrite, 1, faults.ErrInjected)
	ck, _ := NewCheckpointer(t.TempDir(), "k", fr)
	_, err := CrossValidateContext(context.Background(), oraclePipeline{}, d, 4, 1, CVOptions{
		Checkpoint: ck, Faults: fr,
	})
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
}
