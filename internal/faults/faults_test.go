package faults

import (
	"errors"
	"testing"

	"dfpc/internal/guard"
)

func TestNilRegistryIsFree(t *testing.T) {
	var r *Registry
	if err := r.Hit(EvalFold); err != nil {
		t.Fatalf("nil registry Hit = %v, want nil", err)
	}
	if got := r.Hits(EvalFold); got != 0 {
		t.Fatalf("nil registry Hits = %d", got)
	}
	if ev := r.Events(); ev != nil {
		t.Fatalf("nil registry Events = %v", ev)
	}
}

func TestArmNthTriggersExactlyOnce(t *testing.T) {
	r := New(1)
	r.Arm(CoreMine, 3, ErrInjected)
	for i := 1; i <= 5; i++ {
		err := r.Hit(CoreMine)
		if i == 3 {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("hit %d: err = %v, want ErrInjected", i, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("hit %d: err = %v, want nil", i, err)
		}
	}
	if got := r.Hits(CoreMine); got != 5 {
		t.Fatalf("Hits = %d, want 5", got)
	}
	ev := r.Events()
	if len(ev) != 1 || ev[0].Point != CoreMine || ev[0].Hit != 3 {
		t.Fatalf("Events = %+v", ev)
	}
}

func TestKindsMapToGuardSentinels(t *testing.T) {
	cases := []struct {
		kind string
		want error
	}{
		{KindError, ErrInjected},
		{KindCanceled, guard.ErrCanceled},
		{KindDeadline, guard.ErrDeadline},
		{KindMemLimit, guard.ErrMemoryLimit},
		{KindTransient, ErrTransient},
	}
	for _, c := range cases {
		r := New(1)
		if err := r.ArmKind(EvalFold, 1, c.kind); err != nil {
			t.Fatalf("ArmKind(%s): %v", c.kind, err)
		}
		err := r.Hit(EvalFold)
		if !errors.Is(err, c.want) {
			t.Errorf("kind %s: err = %v, want Is(%v)", c.kind, err, c.want)
		}
		if !errors.Is(err, ErrInjected) {
			t.Errorf("kind %s: err = %v does not wrap ErrInjected", c.kind, err)
		}
	}
	if err := New(1).ArmKind(EvalFold, 1, "bogus"); err == nil {
		t.Fatal("ArmKind(bogus) accepted")
	}
}

func TestArmPanic(t *testing.T) {
	r := New(1)
	r.ArmPanic(SVMSolve, 2, "boom")
	if err := r.Hit(SVMSolve); err != nil {
		t.Fatalf("hit 1: %v", err)
	}
	defer func() {
		if v := recover(); v != "boom" {
			t.Fatalf("recovered %v, want boom", v)
		}
		ev := r.Events()
		if len(ev) != 1 || !ev[0].Panicked {
			t.Fatalf("Events = %+v, want one panicked event", ev)
		}
	}()
	r.Hit(SVMSolve)
	t.Fatal("hit 2 did not panic")
}

func TestArmProbDeterministicUnderSeed(t *testing.T) {
	run := func(seed int64) []uint64 {
		r := New(seed)
		r.ArmProb(FSWrite, 0.3, ErrInjected)
		var fired []uint64
		for i := 0; i < 200; i++ {
			if r.Hit(FSWrite) != nil {
				fired = append(fired, r.Hits(FSWrite))
			}
		}
		return fired
	}
	a, b := run(42), run(42)
	if len(a) == 0 {
		t.Fatal("p=0.3 over 200 hits fired zero times")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different firing counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different firing ordinals at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestArmUnknownPointPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("arming unknown point did not panic")
		}
	}()
	New(1).Arm("no.such.point", 1, ErrInjected)
}

func TestParse(t *testing.T) {
	r := New(1)
	if err := r.Parse("eval.fold:2:canceled, fs.rename:1, mine.partition:1:transient"); err != nil {
		t.Fatal(err)
	}
	if err := r.Hit(EvalFold); err != nil {
		t.Fatalf("fold hit 1: %v", err)
	}
	if err := r.Hit(EvalFold); !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("fold hit 2 = %v, want ErrCanceled", err)
	}
	if err := r.Hit(FSRename); !errors.Is(err, ErrInjected) {
		t.Fatalf("rename hit 1 = %v, want ErrInjected", err)
	}
	if err := r.Hit(MinePartition); !errors.Is(err, ErrTransient) {
		t.Fatalf("partition hit 1 = %v, want ErrTransient", err)
	}

	for _, bad := range []string{"eval.fold", "nope:1", "eval.fold:0", "eval.fold:x", "eval.fold:1:bogus"} {
		if err := New(1).Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}

	// Empty and whitespace-only specs are no-ops.
	if err := New(1).Parse(" , "); err != nil {
		t.Fatalf("empty spec: %v", err)
	}

	// panic kind arms a panic.
	rp := New(1)
	if err := rp.Parse("svm.smo:1:panic"); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() { recover() }()
		rp.Hit(SVMSolve)
		t.Error("parsed panic arm did not panic")
	}()
}

func TestKnownSortedAndComplete(t *testing.T) {
	pts := Known()
	if len(pts) < 15 {
		t.Fatalf("Known() = %d points, expected the full set", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i-1] >= pts[i] {
			t.Fatalf("Known() not sorted/unique at %d: %s >= %s", i, pts[i-1], pts[i])
		}
	}
}

func TestGobTransparent(t *testing.T) {
	r := New(7)
	r.Arm(EvalFold, 1, ErrInjected)
	b, err := r.GobEncode()
	if err != nil || b != nil {
		t.Fatalf("GobEncode = %v, %v", b, err)
	}
	var r2 Registry
	if err := r2.GobDecode(nil); err != nil {
		t.Fatalf("GobDecode: %v", err)
	}
}
