// Package faults is a deterministic, seeded fault injector for the
// pattern-classification pipeline. Production code declares named
// injection points ("fs.rename", "eval.fold", ...) and calls
// Registry.Hit at each one; a test or a CLI -faults flag arms a point
// to fail on its nth hit with a chosen error kind (or a panic). With a
// nil *Registry every Hit is a single nil-receiver check — the
// disabled path is free, exactly like a nil *obs.Observer.
//
// Determinism: arms trigger on exact hit ordinals, and the optional
// probabilistic mode draws from a PRNG seeded at construction, so a
// given (seed, arm set, execution order) always injects at the same
// sites. Under internal/parallel's ascending-claim contract the
// per-point hit ordinals are stable for Workers(1) and exercised
// concurrently (but still sentinel-bounded) at higher counts.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"

	"dfpc/internal/guard"
)

// Named injection points. Production code must use these constants
// (not ad-hoc strings) so Known() stays the single source of truth the
// chaos suite sweeps.
const (
	// Filesystem points, hit by internal/durable around every atomic
	// artifact write.
	FSCreate = "fs.create"
	FSWrite  = "fs.write"
	FSSync   = "fs.sync"
	FSRename = "fs.rename"
	FSClose  = "fs.close"

	// Stage boundaries inside core Fit/Predict.
	CoreFitStart = "core.fit.start"
	CoreMine     = "core.mine"
	CoreSelect   = "core.select"
	CoreLearn    = "core.learn"
	CorePredict  = "core.predict"

	// Per-class mining partitions and the individual miners.
	MinePartition = "mine.partition"
	MineGrow      = "mine.grow"

	// Feature selection, learners, cross-validation.
	FeatselMMRFS = "featsel.mmrfs"
	SVMSolve     = "svm.smo"
	C45Build     = "c45.build"
	EvalFold     = "eval.fold"

	// Telemetry journal appends and checkpoint writes.
	TelemetryJournal = "telemetry.journal"
	CheckpointWrite  = "checkpoint.write"

	// Drift-report snapshots (modelobs.Tracker.Report).
	ModelobsSnapshot = "modelobs.snapshot"

	// Pattern-matcher trie compilation at the tail of Fit
	// (internal/patmatch via core.compileMatcher).
	PatmatchCompile = "patmatch.compile"
)

// Known returns every registered injection point name, sorted. The
// chaos suite iterates this list so a new point cannot be added
// without being swept.
func Known() []string {
	pts := []string{
		FSCreate, FSWrite, FSSync, FSRename, FSClose,
		CoreFitStart, CoreMine, CoreSelect, CoreLearn, CorePredict,
		MinePartition, MineGrow,
		FeatselMMRFS, SVMSolve, C45Build, EvalFold,
		TelemetryJournal, CheckpointWrite,
		ModelobsSnapshot,
		PatmatchCompile,
	}
	sort.Strings(pts)
	return pts
}

func isKnown(point string) bool {
	for _, p := range Known() {
		if p == point {
			return true
		}
	}
	return false
}

// ErrInjected is the generic injected-failure sentinel; every error
// returned by Hit wraps it (possibly alongside a guard sentinel), so
// errors.Is(err, faults.ErrInjected) identifies injected faults
// anywhere in the pipeline.
var ErrInjected = errors.New("faults: injected failure")

// ErrTransient marks an injected failure that internal/durable's
// retry-with-backoff is allowed to absorb; it models EINTR-class
// filesystem blips.
var ErrTransient = fmt.Errorf("transient: %w", ErrInjected)

// Kind names accepted by Parse and Arm helpers.
const (
	KindError     = "error"     // generic ErrInjected
	KindCanceled  = "canceled"  // guard.ErrCanceled
	KindDeadline  = "deadline"  // guard.ErrDeadline
	KindMemLimit  = "memlimit"  // guard.ErrMemoryLimit (allocation-pressure trip)
	KindTransient = "transient" // ErrTransient (durable retries these)
	KindPanic     = "panic"     // worker panic, recovered by internal/parallel
)

// kindErr maps a kind name to the sentinel an armed Hit returns.
func kindErr(kind string) (error, bool) {
	switch kind {
	case KindError, "":
		return ErrInjected, true
	case KindCanceled:
		return fmt.Errorf("%w: %w", guard.ErrCanceled, ErrInjected), true
	case KindDeadline:
		return fmt.Errorf("%w: %w", guard.ErrDeadline, ErrInjected), true
	case KindMemLimit:
		return fmt.Errorf("%w: %w", guard.ErrMemoryLimit, ErrInjected), true
	case KindTransient:
		return ErrTransient, true
	default:
		return nil, false
	}
}

// Event records one triggered injection, for test assertions and the
// run journal.
type Event struct {
	Point    string
	Hit      uint64 // 1-based ordinal of the triggering hit
	Err      string
	Panicked bool
}

type arm struct {
	nth      uint64 // trigger on this 1-based hit; 0 with Prob>0 = probabilistic
	prob     float64
	err      error
	panicVal any
	once     bool // consumed after first trigger
	spent    bool
}

// Registry is a set of armed injection points. The zero value is not
// used directly; construct with New. A nil *Registry is the disabled
// injector: Hit returns nil after one pointer compare.
type Registry struct {
	mu     sync.Mutex
	rng    *rand.Rand
	arms   map[string][]*arm
	counts map[string]uint64
	events []Event
}

// New returns an empty registry whose probabilistic arms draw from a
// PRNG seeded with seed (so a chaos run is reproducible end to end).
func New(seed int64) *Registry {
	return &Registry{
		rng:    rand.New(rand.NewSource(seed)),
		arms:   map[string][]*arm{},
		counts: map[string]uint64{},
	}
}

// Arm schedules err to be returned by the nth (1-based) Hit of point.
// The arm triggers once and is then spent. Unknown points panic — an
// armed typo would otherwise silently never fire.
func (r *Registry) Arm(point string, nth uint64, err error) {
	r.arm(point, &arm{nth: nth, err: err, once: true})
}

// ArmKind is Arm with a named error kind ("error", "canceled",
// "deadline", "memlimit", "transient").
func (r *Registry) ArmKind(point string, nth uint64, kind string) error {
	e, ok := kindErr(kind)
	if !ok {
		return fmt.Errorf("faults: unknown kind %q", kind)
	}
	r.Arm(point, nth, e)
	return nil
}

// ArmPanic schedules the nth Hit of point to panic with val, modeling
// a worker crash inside internal/parallel's pool.
func (r *Registry) ArmPanic(point string, nth uint64, val any) {
	r.arm(point, &arm{nth: nth, panicVal: val, once: true})
}

// ArmProb schedules point to fail with err on each hit independently
// with probability p, drawn from the registry's seeded PRNG.
func (r *Registry) ArmProb(point string, p float64, err error) {
	r.arm(point, &arm{prob: p, err: err})
}

func (r *Registry) arm(point string, a *arm) {
	if !isKnown(point) {
		panic(fmt.Sprintf("faults: arming unknown injection point %q", point))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.arms[point] = append(r.arms[point], a)
}

// Hit reports whether an armed fault fires at point. A nil registry
// (or an unarmed point) returns nil. A triggered error arm returns its
// sentinel wrapped with the point name and hit ordinal; a panic arm
// panics, which internal/parallel converts into a *PanicError.
func (r *Registry) Hit(point string) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	r.counts[point]++
	n := r.counts[point]
	for _, a := range r.arms[point] {
		if a.spent {
			continue
		}
		trigger := false
		switch {
		case a.nth > 0:
			trigger = a.nth == n
		case a.prob > 0:
			//vet:ignore nondeterm r.rng is seeded from the registry config; draws replay identically run to run
			trigger = r.rng.Float64() < a.prob
		}
		if !trigger {
			continue
		}
		if a.once {
			a.spent = true
		}
		if a.panicVal != nil {
			r.events = append(r.events, Event{Point: point, Hit: n, Panicked: true})
			r.mu.Unlock()
			panic(a.panicVal)
		}
		err := fmt.Errorf("faults: injected at %s (hit %d): %w", point, n, a.err)
		r.events = append(r.events, Event{Point: point, Hit: n, Err: err.Error()})
		r.mu.Unlock()
		return err
	}
	r.mu.Unlock()
	return nil
}

// Hits returns how many times point has been hit so far.
func (r *Registry) Hits(point string) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counts[point]
}

// Events returns a copy of the triggered-injection log, in order.
func (r *Registry) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Parse arms the registry from a CLI spec: comma-separated
// "point:nth:kind" triples, e.g. "eval.fold:3:canceled,fs.rename:1:error".
// kind defaults to "error" when omitted ("point:nth"). "panic" arms a
// worker panic. Ordinals are 1-based.
func (r *Registry) Parse(spec string) error {
	for _, one := range strings.Split(spec, ",") {
		one = strings.TrimSpace(one)
		if one == "" {
			continue
		}
		parts := strings.Split(one, ":")
		if len(parts) < 2 || len(parts) > 3 {
			return fmt.Errorf("faults: bad spec %q (want point:nth[:kind])", one)
		}
		point := parts[0]
		if !isKnown(point) {
			return fmt.Errorf("faults: unknown injection point %q (known: %s)",
				point, strings.Join(Known(), " "))
		}
		nth, err := strconv.ParseUint(parts[1], 10, 64)
		if err != nil || nth == 0 {
			return fmt.Errorf("faults: bad hit ordinal in %q (want a positive integer)", one)
		}
		kind := KindError
		if len(parts) == 3 {
			kind = parts[2]
		}
		if kind == KindPanic {
			r.ArmPanic(point, nth, fmt.Sprintf("injected panic at %s", point))
			continue
		}
		if err := r.ArmKind(point, nth, kind); err != nil {
			return fmt.Errorf("faults: bad kind in %q: %w", one, err)
		}
	}
	return nil
}

// GobEncode makes a Registry transparent to gob: pipeline snapshots
// that embed a Config carrying a Registry serialize it as nothing,
// mirroring obs.Observer and parallel.Workers.
func (r *Registry) GobEncode() ([]byte, error) { return nil, nil }

// GobDecode restores the transparent encoding as a disabled registry.
func (r *Registry) GobDecode([]byte) error { return nil }
