// Package rules implements the associative-classification baselines the
// paper positions itself against (Section 5): a CBA-style classifier
// (Liu, Hsu & Ma, KDD'98 — ordered high-confidence rules with database
// coverage pruning and a default class) and a HARMONY-style classifier
// (Wang & Karypis, SDM'05 — instance-centric selection of the
// highest-confidence covering rules, scored prediction). Both consume
// the same binary transaction encoding as the frequent-pattern
// framework, so the comparison isolates the classification strategy.
package rules

import (
	"fmt"
	"sort"

	"dfpc/internal/dataset"
	"dfpc/internal/mining"
)

// Rule is one class-association rule pattern → class.
type Rule struct {
	Items      []int32
	Class      int
	Support    int     // absolute support of pattern ∧ class
	Confidence float64 // support(pattern ∧ class) / support(pattern)
}

// matches reports whether the (sorted) transaction contains every item
// of the rule's antecedent.
func (r *Rule) matches(tx []int32) bool {
	i := 0
	for _, it := range r.Items {
		for i < len(tx) && tx[i] < it {
			i++
		}
		if i >= len(tx) || tx[i] != it {
			return false
		}
		i++
	}
	return true
}

// generateRules mines closed patterns per class partition and turns
// each into the best rule it supports: pattern → argmax-class with the
// pattern's global confidence for that class.
func generateRules(b *dataset.Binary, minSupport float64, minConf float64, maxLen, maxPatterns int) ([]Rule, error) {
	ps, err := mining.MinePerClass(b, mining.PerClassOptions{
		MinSupport:  minSupport,
		Closed:      true,
		MaxLen:      maxLen,
		MaxPatterns: maxPatterns,
	})
	if err != nil {
		return nil, err
	}
	var out []Rule
	for _, p := range ps {
		cover := b.Cover(p.Items)
		total := cover.Count()
		if total == 0 {
			continue
		}
		for c, mask := range b.ClassMasks {
			hit := cover.AndCount(mask)
			if hit == 0 {
				continue
			}
			conf := float64(hit) / float64(total)
			if conf < minConf {
				continue
			}
			out = append(out, Rule{Items: p.Items, Class: c, Support: hit, Confidence: conf})
		}
	}
	return out, nil
}

// sortRules orders rules by the CBA precedence: confidence desc,
// support desc, antecedent length asc, then lexicographic items for
// determinism.
func sortRules(rs []Rule) {
	sort.Slice(rs, func(i, j int) bool {
		a, b := rs[i], rs[j]
		if a.Confidence != b.Confidence {
			return a.Confidence > b.Confidence
		}
		if a.Support != b.Support {
			return a.Support > b.Support
		}
		if len(a.Items) != len(b.Items) {
			return len(a.Items) < len(b.Items)
		}
		for k := 0; k < len(a.Items); k++ {
			if a.Items[k] != b.Items[k] {
				return a.Items[k] < b.Items[k]
			}
		}
		return a.Class < b.Class
	})
}

// CBAOptions configures TrainCBA.
type CBAOptions struct {
	// MinSupport is the relative per-class mining support (default 0.05).
	MinSupport float64
	// MinConfidence filters rules (default 0.5).
	MinConfidence float64
	// MaxLen caps antecedent length (0 = unlimited).
	MaxLen int
	// MaxPatterns caps the mined pool (0 = unlimited).
	MaxPatterns int
}

func (o CBAOptions) withDefaults() CBAOptions {
	if o.MinSupport <= 0 {
		o.MinSupport = 0.05
	}
	if o.MinConfidence <= 0 {
		o.MinConfidence = 0.5
	}
	return o
}

// CBAModel is an ordered rule list with a default class.
type CBAModel struct {
	Rules        []Rule
	DefaultClass int
}

// TrainCBA builds a CBA-style classifier on the binary training data.
func TrainCBA(b *dataset.Binary, opt CBAOptions) (*CBAModel, error) {
	if b.NumRows() == 0 {
		return nil, fmt.Errorf("rules: empty training set")
	}
	opt = opt.withDefaults()
	rs, err := generateRules(b, opt.MinSupport, opt.MinConfidence, opt.MaxLen, opt.MaxPatterns)
	if err != nil {
		return nil, err
	}
	sortRules(rs)

	// Database coverage: keep a rule iff it correctly classifies at
	// least one still-uncovered instance; covered instances drop out.
	covered := make([]bool, b.NumRows())
	remaining := b.NumRows()
	var kept []Rule
	for _, r := range rs {
		if remaining == 0 {
			break
		}
		used := false
		for i := 0; i < b.NumRows(); i++ {
			if covered[i] || b.Labels[i] != r.Class {
				continue
			}
			if r.matches(b.Rows[i]) {
				used = true
				break
			}
		}
		if !used {
			continue
		}
		kept = append(kept, r)
		for i := 0; i < b.NumRows(); i++ {
			if !covered[i] && r.matches(b.Rows[i]) {
				covered[i] = true
				remaining--
			}
		}
	}

	// Default class: majority among uncovered instances, falling back
	// to the global majority.
	counts := make([]int, b.NumClasses())
	any := false
	for i, c := range covered {
		if !c {
			counts[b.Labels[i]]++
			any = true
		}
	}
	if !any {
		for _, y := range b.Labels {
			counts[y]++
		}
	}
	def := 0
	for c := range counts {
		if counts[c] > counts[def] {
			def = c
		}
	}
	return &CBAModel{Rules: kept, DefaultClass: def}, nil
}

// Predict classifies one sorted transaction with the first matching
// rule, or the default class.
func (m *CBAModel) Predict(tx []int32) int {
	for i := range m.Rules {
		if m.Rules[i].matches(tx) {
			return m.Rules[i].Class
		}
	}
	return m.DefaultClass
}

// HarmonyOptions configures TrainHarmony.
type HarmonyOptions struct {
	// MinSupport is the relative per-class mining support (default 0.05).
	MinSupport float64
	// TopK is how many of the highest-confidence covering rules are
	// retained per training instance and summed at prediction time
	// (default 5).
	TopK int
	// MaxLen caps antecedent length (0 = unlimited).
	MaxLen int
	// MaxPatterns caps the mined pool (0 = unlimited).
	MaxPatterns int
}

func (o HarmonyOptions) withDefaults() HarmonyOptions {
	if o.MinSupport <= 0 {
		o.MinSupport = 0.05
	}
	if o.TopK <= 0 {
		o.TopK = 5
	}
	return o
}

// HarmonyModel scores classes by the confidence of their best matching
// rules.
type HarmonyModel struct {
	Rules        []Rule
	TopK         int
	DefaultClass int
	numClasses   int
}

// TrainHarmony builds a HARMONY-style classifier: for every training
// instance, the TopK highest-confidence rules that cover it and predict
// its class are guaranteed into the rule set.
func TrainHarmony(b *dataset.Binary, opt HarmonyOptions) (*HarmonyModel, error) {
	if b.NumRows() == 0 {
		return nil, fmt.Errorf("rules: empty training set")
	}
	opt = opt.withDefaults()
	rs, err := generateRules(b, opt.MinSupport, 0.0001, opt.MaxLen, opt.MaxPatterns)
	if err != nil {
		return nil, err
	}
	sortRules(rs)

	// Instance-centric selection: walk rules in precedence order; keep
	// a rule if some instance of its class that it covers still needs
	// rules (has fewer than TopK kept covering rules).
	need := make([]int, b.NumRows())
	for i := range need {
		need[i] = opt.TopK
	}
	keep := make([]bool, len(rs))
	for ri := range rs {
		r := &rs[ri]
		for i := 0; i < b.NumRows(); i++ {
			if b.Labels[i] != r.Class || need[i] == 0 {
				continue
			}
			if r.matches(b.Rows[i]) {
				keep[ri] = true
				break
			}
		}
		if keep[ri] {
			for i := 0; i < b.NumRows(); i++ {
				if b.Labels[i] == r.Class && need[i] > 0 && r.matches(b.Rows[i]) {
					need[i]--
				}
			}
		}
	}
	var kept []Rule
	for ri, k := range keep {
		if k {
			kept = append(kept, rs[ri])
		}
	}

	counts := make([]int, b.NumClasses())
	for _, y := range b.Labels {
		counts[y]++
	}
	def := 0
	for c := range counts {
		if counts[c] > counts[def] {
			def = c
		}
	}
	return &HarmonyModel{Rules: kept, TopK: opt.TopK, DefaultClass: def, numClasses: b.NumClasses()}, nil
}

// Predict scores each class by the sum of the TopK highest confidences
// among its matching rules and returns the argmax (default class when
// nothing matches).
func (m *HarmonyModel) Predict(tx []int32) int {
	// Rules are kept in precedence (confidence-descending) order, so
	// the first TopK matches per class are the highest-confidence ones.
	scores := make([]float64, m.numClasses)
	taken := make([]int, m.numClasses)
	matchedAny := false
	for i := range m.Rules {
		r := &m.Rules[i]
		if taken[r.Class] >= m.TopK {
			continue
		}
		if r.matches(tx) {
			scores[r.Class] += r.Confidence
			taken[r.Class]++
			matchedAny = true
		}
	}
	if !matchedAny {
		return m.DefaultClass
	}
	best := 0
	for c := 1; c < m.numClasses; c++ {
		if scores[c] > scores[best] {
			best = c
		}
	}
	return best
}
