package rules

import (
	"testing"

	"dfpc/internal/dataset"
)

// patternedDS builds a dataset where {a=0 ∧ b=0} → class 0 and
// {a=1 ∧ b=1} → class 1, with a noisy third attribute.
func patternedDS() *dataset.Binary {
	d := &dataset.Dataset{
		Name: "pat",
		Attrs: []dataset.Attribute{
			{Name: "a", Kind: dataset.Categorical, Values: []string{"0", "1"}},
			{Name: "b", Kind: dataset.Categorical, Values: []string{"0", "1"}},
			{Name: "c", Kind: dataset.Categorical, Values: []string{"0", "1"}},
		},
		Classes: []string{"neg", "pos"},
	}
	for i := 0; i < 20; i++ {
		noise := float64(i % 2)
		if i < 10 {
			d.Rows = append(d.Rows, []float64{0, 0, noise})
			d.Labels = append(d.Labels, 0)
		} else {
			d.Rows = append(d.Rows, []float64{1, 1, noise})
			d.Labels = append(d.Labels, 1)
		}
	}
	b, err := dataset.Encode(d)
	if err != nil {
		panic(err)
	}
	return b
}

func TestRuleMatches(t *testing.T) {
	r := Rule{Items: []int32{1, 4}}
	if !r.matches([]int32{0, 1, 4, 7}) {
		t.Fatal("should match")
	}
	if r.matches([]int32{1, 5}) {
		t.Fatal("should not match")
	}
	empty := Rule{}
	if !empty.matches([]int32{3}) {
		t.Fatal("empty antecedent matches everything")
	}
}

func TestCBATrainPredict(t *testing.T) {
	b := patternedDS()
	m, err := TrainCBA(b, CBAOptions{MinSupport: 0.3, MinConfidence: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Rules) == 0 {
		t.Fatal("no rules kept")
	}
	// Training accuracy must be perfect on this separable data.
	for i := 0; i < b.NumRows(); i++ {
		if got := m.Predict(b.Rows[i]); got != b.Labels[i] {
			t.Fatalf("row %d = %d, want %d", i, got, b.Labels[i])
		}
	}
}

func TestCBARulesSortedByConfidence(t *testing.T) {
	b := patternedDS()
	m, err := TrainCBA(b, CBAOptions{MinSupport: 0.2, MinConfidence: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(m.Rules); i++ {
		if m.Rules[i].Confidence > m.Rules[i-1].Confidence+1e-12 {
			t.Fatal("rules not in confidence order")
		}
	}
}

func TestCBADefaultClass(t *testing.T) {
	b := patternedDS()
	m, err := TrainCBA(b, CBAOptions{MinSupport: 0.3, MinConfidence: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	// A transaction matching nothing falls back to the default class.
	got := m.Predict([]int32{})
	if got != m.DefaultClass {
		t.Fatalf("unmatched predicts %d, want default %d", got, m.DefaultClass)
	}
}

func TestCBAEmptyTraining(t *testing.T) {
	d := &dataset.Dataset{
		Name:    "empty",
		Attrs:   []dataset.Attribute{{Name: "a", Kind: dataset.Categorical, Values: []string{"0"}}},
		Classes: []string{"x"},
	}
	b, _ := dataset.Encode(d)
	if _, err := TrainCBA(b, CBAOptions{}); err == nil {
		t.Fatal("empty training should error")
	}
}

func TestHarmonyTrainPredict(t *testing.T) {
	b := patternedDS()
	m, err := TrainHarmony(b, HarmonyOptions{MinSupport: 0.3, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Rules) == 0 {
		t.Fatal("no rules kept")
	}
	for i := 0; i < b.NumRows(); i++ {
		if got := m.Predict(b.Rows[i]); got != b.Labels[i] {
			t.Fatalf("row %d = %d, want %d", i, got, b.Labels[i])
		}
	}
}

func TestHarmonyEveryInstanceCovered(t *testing.T) {
	b := patternedDS()
	m, err := TrainHarmony(b, HarmonyOptions{MinSupport: 0.3, TopK: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Instance-centric guarantee: every training instance has at least
	// one kept rule of its own class covering it (on this separable
	// data where such rules exist).
	for i := 0; i < b.NumRows(); i++ {
		found := false
		for ri := range m.Rules {
			if m.Rules[ri].Class == b.Labels[i] && m.Rules[ri].matches(b.Rows[i]) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("instance %d has no covering rule", i)
		}
	}
}

func TestHarmonyDefaultOnNoMatch(t *testing.T) {
	b := patternedDS()
	m, err := TrainHarmony(b, HarmonyOptions{MinSupport: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]int32{}); got != m.DefaultClass {
		t.Fatalf("unmatched predicts %d, want default", got)
	}
}

func TestHarmonyTopKLimitsRuleSet(t *testing.T) {
	b := patternedDS()
	m1, err := TrainHarmony(b, HarmonyOptions{MinSupport: 0.1, TopK: 1})
	if err != nil {
		t.Fatal(err)
	}
	m5, err := TrainHarmony(b, HarmonyOptions{MinSupport: 0.1, TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(m5.Rules) < len(m1.Rules) {
		t.Fatalf("TopK=5 kept %d rules < TopK=1 kept %d", len(m5.Rules), len(m1.Rules))
	}
}

func TestGenerateRulesConfidence(t *testing.T) {
	b := patternedDS()
	rs, err := generateRules(b, 0.3, 0.9, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.Confidence < 0.9 {
			t.Fatalf("rule with confidence %v below threshold", r.Confidence)
		}
		cover := b.Cover(r.Items)
		hit := cover.AndCount(b.ClassMasks[r.Class])
		wantConf := float64(hit) / float64(cover.Count())
		if r.Confidence != wantConf || r.Support != hit {
			t.Fatalf("rule stats inconsistent: %+v", r)
		}
	}
}

func TestCMARTrainPredict(t *testing.T) {
	b := patternedDS()
	m, err := TrainCMAR(b, CMAROptions{MinSupport: 0.3, MinConfidence: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Rules) == 0 {
		t.Fatal("no rules kept")
	}
	for i := 0; i < b.NumRows(); i++ {
		if got := m.Predict(b.Rows[i]); got != b.Labels[i] {
			t.Fatalf("row %d = %d, want %d", i, got, b.Labels[i])
		}
	}
	if got := m.Predict([]int32{}); got != m.DefaultClass {
		t.Fatalf("unmatched predicts %d, want default", got)
	}
}

func TestCMARChiSquaredStats(t *testing.T) {
	// Perfect association: 10 of 20 rows have the antecedent, all of
	// them in the class (class also has exactly those 10) → χ² = maxχ².
	chi2, maxChi2 := chi2Stats(10, 10, 10, 20)
	if chi2 <= 0 || maxChi2 <= 0 {
		t.Fatalf("chi2=%v max=%v", chi2, maxChi2)
	}
	if chi2 > maxChi2+1e-9 {
		t.Fatalf("chi2 %v exceeds max %v", chi2, maxChi2)
	}
	if maxChi2-chi2 > 1e-9 {
		t.Fatalf("perfect association should reach the max: %v vs %v", chi2, maxChi2)
	}
	// Independence: antecedent spread evenly across classes → χ² ≈ 0.
	chi2, _ = chi2Stats(10, 10, 5, 20)
	if chi2 > 1e-9 {
		t.Fatalf("independent rule has χ² %v", chi2)
	}
	// Degenerate margins are safe.
	if c, m := chi2Stats(0, 5, 0, 10); c != 0 || m != 1 {
		t.Fatalf("degenerate = %v,%v", c, m)
	}
}

func TestCMARWeightedScoreUsesMultipleRules(t *testing.T) {
	b := patternedDS()
	m, err := TrainCMAR(b, CMAROptions{MinSupport: 0.2, MinConfidence: 0.6, Coverage: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Count matching rules for a class-0 row: the multiple-rule scorer
	// should see more than one.
	matches := 0
	for i := range m.Rules {
		if m.Rules[i].matches(b.Rows[0]) {
			matches++
		}
	}
	if matches < 2 {
		t.Fatalf("only %d matching rules; CMAR should keep several", matches)
	}
}

func TestCMAREmptyTraining(t *testing.T) {
	d := &dataset.Dataset{
		Name:    "empty",
		Attrs:   []dataset.Attribute{{Name: "a", Kind: dataset.Categorical, Values: []string{"0"}}},
		Classes: []string{"x"},
	}
	b, _ := dataset.Encode(d)
	if _, err := TrainCMAR(b, CMAROptions{}); err == nil {
		t.Fatal("empty training should error")
	}
}

func TestCMARTopRules(t *testing.T) {
	b := patternedDS()
	m, err := TrainCMAR(b, CMAROptions{MinSupport: 0.2, MinConfidence: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	top := m.TopRules(3)
	if len(top) == 0 || len(top) > 3 {
		t.Fatalf("TopRules = %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Confidence > top[i-1].Confidence+1e-12 {
			t.Fatal("TopRules not confidence-ordered")
		}
	}
}
