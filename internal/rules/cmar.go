package rules

import (
	"fmt"
	"sort"

	"dfpc/internal/dataset"
)

// CMAR (Li, Han & Pei, ICDM'01 — the paper's reference [13], and the
// origin of the database-coverage parameter δ that MMRFS borrows)
// classifies with *multiple* matching rules: the matching rules are
// grouped by consequent class and each group is scored with a weighted
// chi-squared measure, so one over-confident rule cannot dominate.

// CMAROptions configures TrainCMAR.
type CMAROptions struct {
	// MinSupport is the relative per-class mining support (default 0.05).
	MinSupport float64
	// MinConfidence filters rules (default 0.5).
	MinConfidence float64
	// Coverage is the database-coverage pruning threshold δ: each
	// training instance may be covered by up to δ kept rules before it
	// stops counting (default 4, CMAR's published setting).
	Coverage int
	// MaxLen caps antecedent length (0 = unlimited).
	MaxLen int
	// MaxPatterns caps the mined pool (0 = unlimited).
	MaxPatterns int
}

func (o CMAROptions) withDefaults() CMAROptions {
	if o.MinSupport <= 0 {
		o.MinSupport = 0.05
	}
	if o.MinConfidence <= 0 {
		o.MinConfidence = 0.5
	}
	if o.Coverage <= 0 {
		o.Coverage = 4
	}
	return o
}

// cmarRule extends Rule with the precomputed chi-squared statistics the
// weighted-χ² score needs.
type cmarRule struct {
	Rule
	chi2    float64 // observed χ² of the rule's 2×2 contingency
	maxChi2 float64 // χ² of a perfectly correlated rule with same margins
}

// CMARModel is a set of rules scored per class at prediction time.
type CMARModel struct {
	Rules        []cmarRule
	DefaultClass int
	numClasses   int
}

// chi2Of computes the chi-squared statistic of the 2×2 contingency
// table with margins (antSup, clsSup, n) and joint cell `both`.
func chi2Of(antSup, clsSup float64, both, n float64) float64 {
	obs := [2][2]float64{
		{both, antSup - both},
		{clsSup - both, n - antSup - clsSup + both},
	}
	rowSum := [2]float64{antSup, n - antSup}
	colSum := [2]float64{clsSup, n - clsSup}
	chi2 := 0.0
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			e := rowSum[i] * colSum[j] / n
			if e > 0 {
				d := obs[i][j] - e
				chi2 += d * d / e
			}
		}
	}
	return chi2
}

// chi2Stats computes the rule's chi-squared value and its theoretical
// maximum given the margins (antecedent support, class support, N) —
// the normalization CMAR's weighted χ² uses. The maximum is the χ² of
// the most associated table with the same margins, i.e. the joint cell
// pushed to min(antSup, clsSup).
func chi2Stats(antSup, clsSup, both, n int) (chi2, maxChi2 float64) {
	if antSup == 0 || clsSup == 0 || antSup == n || clsSup == n {
		return 0, 1
	}
	fa, fc, fb, fn := float64(antSup), float64(clsSup), float64(both), float64(n)
	chi2 = chi2Of(fa, fc, fb, fn)
	minAC := fa
	if fc < minAC {
		minAC = fc
	}
	maxChi2 = chi2Of(fa, fc, minAC, fn)
	if maxChi2 <= 0 {
		maxChi2 = 1
	}
	return chi2, maxChi2
}

// TrainCMAR builds a CMAR-style classifier on the binary training data.
func TrainCMAR(b *dataset.Binary, opt CMAROptions) (*CMARModel, error) {
	if b.NumRows() == 0 {
		return nil, fmt.Errorf("rules: empty training set")
	}
	opt = opt.withDefaults()
	base, err := generateRules(b, opt.MinSupport, opt.MinConfidence, opt.MaxLen, opt.MaxPatterns)
	if err != nil {
		return nil, err
	}
	sortRules(base)

	n := b.NumRows()
	// Database coverage pruning with δ (an instance drops out after
	// being covered δ times).
	covered := make([]int, n)
	remaining := n
	var kept []cmarRule
	for _, r := range base {
		if remaining == 0 {
			break
		}
		used := false
		for i := 0; i < n && !used; i++ {
			if covered[i] < opt.Coverage && b.Labels[i] == r.Class && r.matches(b.Rows[i]) {
				used = true
			}
		}
		if !used {
			continue
		}
		antSup := b.Cover(r.Items).Count()
		clsSup := b.ClassMasks[r.Class].Count()
		chi2, maxChi2 := chi2Stats(antSup, clsSup, r.Support, n)
		kept = append(kept, cmarRule{Rule: r, chi2: chi2, maxChi2: maxChi2})
		for i := 0; i < n; i++ {
			if covered[i] < opt.Coverage && r.matches(b.Rows[i]) {
				covered[i]++
				if covered[i] == opt.Coverage {
					remaining--
				}
			}
		}
	}

	counts := make([]int, b.NumClasses())
	for _, y := range b.Labels {
		counts[y]++
	}
	def := 0
	for c := range counts {
		if counts[c] > counts[def] {
			def = c
		}
	}
	return &CMARModel{Rules: kept, DefaultClass: def, numClasses: b.NumClasses()}, nil
}

// Predict scores each class by the weighted χ² of its matching rules,
// Σ χ²·χ²/maxχ², and returns the argmax (default class when nothing
// matches) — CMAR's multiple-rule decision.
func (m *CMARModel) Predict(tx []int32) int {
	scores := make([]float64, m.numClasses)
	matched := false
	for i := range m.Rules {
		r := &m.Rules[i]
		if r.matches(tx) {
			scores[r.Class] += r.chi2 * r.chi2 / r.maxChi2
			matched = true
		}
	}
	if !matched {
		return m.DefaultClass
	}
	best := 0
	for c := 1; c < m.numClasses; c++ {
		if scores[c] > scores[best] {
			best = c
		}
	}
	return best
}

// TopRules returns the k highest-precedence rules (diagnostics).
func (m *CMARModel) TopRules(k int) []Rule {
	if k > len(m.Rules) {
		k = len(m.Rules)
	}
	out := make([]Rule, k)
	for i := 0; i < k; i++ {
		out[i] = m.Rules[i].Rule
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Confidence > out[j].Confidence })
	return out
}
