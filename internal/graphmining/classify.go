package graphmining

import (
	"fmt"

	"dfpc/internal/bitset"
	"dfpc/internal/featsel"
	"dfpc/internal/svm"
)

// Classifier applies the paper's framework to graph data (the setting
// of its reference [7]): frequent connected subgraphs are mined per
// class, MMRFS selects the discriminative ones, and an SVM is trained
// on binary presence features (single vertex labels plus selected
// subgraphs).
type Classifier struct {
	// MinSupport is the relative per-class mining support (default 0.2).
	MinSupport float64
	// Coverage is MMRFS's δ (default 3).
	Coverage int
	// MaxEdges caps subgraph size (default 4).
	MaxEdges int
	// MaxPatterns caps the mined pool (default 50000).
	MaxPatterns int
	// SVMC is the soft-margin penalty (default 1).
	SVMC float64

	numVertexLabels int
	numClasses      int
	patterns        []Pattern
	model           *svm.Model

	// Stats from the last Fit.
	MinedCount    int
	SelectedCount int
}

func (c *Classifier) withDefaults() {
	if c.MinSupport <= 0 {
		c.MinSupport = 0.2
	}
	if c.Coverage <= 0 {
		c.Coverage = 3
	}
	if c.MaxEdges <= 0 {
		c.MaxEdges = 4
	}
	if c.MaxPatterns <= 0 {
		c.MaxPatterns = 50_000
	}
	if c.SVMC <= 0 {
		c.SVMC = 1
	}
}

// Fit trains on the graph database with labels y in [0, numClasses).
func (c *Classifier) Fit(db []*Graph, y []int, numClasses int) error {
	if len(db) == 0 {
		return fmt.Errorf("graphmining: empty training set")
	}
	if len(db) != len(y) {
		return fmt.Errorf("graphmining: %d graphs, %d labels", len(db), len(y))
	}
	if numClasses < 1 {
		return fmt.Errorf("graphmining: numClasses = %d", numClasses)
	}
	c.withDefaults()
	c.numClasses = numClasses
	c.numVertexLabels = 0
	for _, g := range db {
		for _, l := range g.VertexLabels {
			if int(l) >= c.numVertexLabels {
				c.numVertexLabels = int(l) + 1
			}
		}
	}

	byClass := make([][]*Graph, numClasses)
	for i, g := range db {
		if y[i] < 0 || y[i] >= numClasses {
			return fmt.Errorf("graphmining: label %d out of range [0,%d)", y[i], numClasses)
		}
		byClass[y[i]] = append(byClass[y[i]], g)
	}
	seen := map[string]bool{}
	var pool []Pattern
	for cl := 0; cl < numClasses; cl++ {
		if len(byClass[cl]) == 0 {
			continue
		}
		abs := int(c.MinSupport*float64(len(byClass[cl])) + 0.5)
		if abs < 1 {
			abs = 1
		}
		ps, err := Mine(byClass[cl], Options{
			MinSupport:  abs,
			MaxEdges:    c.MaxEdges,
			MaxPatterns: c.MaxPatterns - len(pool),
		})
		if err != nil {
			return fmt.Errorf("graphmining: class %d: %w", cl, err)
		}
		for i := range ps {
			// Single edges already correlate heavily with vertex-label
			// features; keep them anyway (they are the graph analogue of
			// length-2 itemsets) but dedupe across classes.
			if seen[ps[i].Key()] {
				continue
			}
			seen[ps[i].Key()] = true
			pool = append(pool, ps[i])
		}
	}
	c.MinedCount = len(pool)

	classMasks := make([]*bitset.Bitset, numClasses)
	for cl := range classMasks {
		classMasks[cl] = bitset.New(len(db))
	}
	for i, yi := range y {
		classMasks[yi].Set(i)
	}
	cands := make([]featsel.Candidate, len(pool))
	for i := range pool {
		cov := bitset.New(len(db))
		for gi, g := range db {
			if ContainsSubgraph(g, pool[i].Graph) {
				cov.Set(gi)
			}
		}
		cands[i] = featsel.Candidate{Cover: cov}
	}
	sel, err := featsel.MMRFS(cands, classMasks, y, featsel.Options{Coverage: c.Coverage})
	if err != nil {
		return err
	}
	c.patterns = make([]Pattern, len(sel.Selected))
	for i, idx := range sel.Selected {
		c.patterns[i] = pool[idx]
	}
	SortPatterns(c.patterns)
	c.SelectedCount = len(c.patterns)

	x := make([][]int32, len(db))
	for i, g := range db {
		x[i] = c.featureVector(g)
	}
	c.model, err = svm.Train(x, y, numClasses, svm.Config{
		C:           c.SVMC,
		NumFeatures: c.numVertexLabels + len(c.patterns),
	})
	return err
}

// featureVector encodes a graph as sorted binary features: vertex
// labels present, then matched subgraph patterns.
func (c *Classifier) featureVector(g *Graph) []int32 {
	present := make([]bool, c.numVertexLabels)
	for _, l := range g.VertexLabels {
		if int(l) < c.numVertexLabels {
			present[l] = true
		}
	}
	out := make([]int32, 0, len(present)+len(c.patterns))
	for l := 0; l < c.numVertexLabels; l++ {
		if present[l] {
			out = append(out, int32(l))
		}
	}
	for j := range c.patterns {
		if ContainsSubgraph(g, c.patterns[j].Graph) {
			out = append(out, int32(c.numVertexLabels+j))
		}
	}
	return out
}

// Patterns returns the selected subgraph features.
func (c *Classifier) Patterns() []Pattern {
	out := make([]Pattern, len(c.patterns))
	copy(out, c.patterns)
	return out
}

// Predict classifies one graph.
func (c *Classifier) Predict(g *Graph) (int, error) {
	if c.model == nil {
		return 0, fmt.Errorf("graphmining: Predict before Fit")
	}
	return c.model.Predict(c.featureVector(g)), nil
}

// PredictAll classifies every graph.
func (c *Classifier) PredictAll(db []*Graph) ([]int, error) {
	out := make([]int, len(db))
	for i, g := range db {
		y, err := c.Predict(g)
		if err != nil {
			return nil, err
		}
		out[i] = y
	}
	return out, nil
}
