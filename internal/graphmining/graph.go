// Package graphmining implements frequent connected-subgraph mining and
// graph classification — the second future-work extension the paper
// names in its conclusion (after sequences), and the setting of its
// reference [7] (Deshpande, Kuramochi & Karypis: classifying chemical
// compounds with frequent substructures). The miner enumerates
// connected subgraphs by edge extension with canonical-form
// deduplication (FSG-style); the classifier mines per class, selects
// discriminative subgraphs with MMRFS, and trains an SVM on binary
// presence features.
package graphmining

import (
	"fmt"
	"slices"
)

// Edge is an undirected labelled edge between vertex indices.
type Edge struct {
	From, To int
	Label    int32
}

// Graph is an undirected graph with labelled vertices and edges.
type Graph struct {
	VertexLabels []int32
	Edges        []Edge
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.VertexLabels) }

// Validate checks edge endpoints.
func (g *Graph) Validate() error {
	for i, e := range g.Edges {
		if e.From < 0 || e.From >= len(g.VertexLabels) ||
			e.To < 0 || e.To >= len(g.VertexLabels) {
			return fmt.Errorf("graphmining: edge %d endpoints (%d,%d) out of range [0,%d)",
				i, e.From, e.To, len(g.VertexLabels))
		}
		if e.From == e.To {
			return fmt.Errorf("graphmining: edge %d is a self-loop", i)
		}
	}
	return nil
}

// adjacency builds an adjacency list with edge labels.
type adj struct {
	to    int
	label int32
}

func adjacency(g *Graph) [][]adj {
	out := make([][]adj, g.NumVertices())
	for _, e := range g.Edges {
		out[e.From] = append(out[e.From], adj{e.To, e.Label})
		out[e.To] = append(out[e.To], adj{e.From, e.Label})
	}
	return out
}

// canonicalKey returns a canonical string for a small graph: the
// lexicographically minimal adjacency encoding over all vertex
// permutations. Exponential in vertex count; intended for mined
// patterns (≤ ~8 vertices), not data graphs.
func canonicalKey(g *Graph) string {
	n := g.NumVertices()
	// Edge label lookup by unordered pair.
	type pair struct{ a, b int }
	labels := map[pair]int32{}
	for _, e := range g.Edges {
		a, b := e.From, e.To
		if a > b {
			a, b = b, a
		}
		labels[pair{a, b}] = e.Label
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var best []byte
	encode := func(p []int) []byte {
		// inv[v] = position of vertex v under the permutation.
		inv := make([]int, n)
		for pos, v := range p {
			inv[v] = pos
		}
		buf := make([]byte, 0, n+n*n)
		for _, v := range p {
			buf = append(buf, byte(g.VertexLabels[v]), byte(g.VertexLabels[v]>>8))
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				a, b := p[i], p[j]
				if a > b {
					a, b = b, a
				}
				if l, ok := labels[pair{a, b}]; ok {
					buf = append(buf, 1, byte(l), byte(l>>8))
				} else {
					buf = append(buf, 0, 0, 0)
				}
			}
		}
		return buf
	}
	var permute func(k int)
	permute = func(k int) {
		if k == n {
			enc := encode(perm)
			if best == nil || string(enc) < string(best) {
				best = append(best[:0], enc...)
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			permute(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	permute(0)
	return string(best)
}

// ContainsSubgraph reports whether g contains pattern as a subgraph
// (subgraph isomorphism with label matching), by backtracking search.
// The pattern must be small; the search is exponential in pattern size.
func ContainsSubgraph(g *Graph, pattern *Graph) bool {
	pn := pattern.NumVertices()
	if pn == 0 {
		return true
	}
	if pn > g.NumVertices() || len(pattern.Edges) > len(g.Edges) {
		return false
	}
	gAdj := adjacency(g)
	pAdj := adjacency(pattern)

	// Order pattern vertices so each (after the first) connects to an
	// earlier one — patterns are connected, so a BFS order works.
	order := bfsOrder(pattern, pAdj)

	assigned := make([]int, pn) // pattern vertex → graph vertex
	for i := range assigned {
		assigned[i] = -1
	}
	used := make([]bool, g.NumVertices())

	var match func(step int) bool
	//vet:ignore hotalloc single closure environment per containment test, amortized over the exponential match search
	match = func(step int) bool {
		if step == pn {
			return true
		}
		pv := order[step]
		// Candidate graph vertices: neighbours of an already-assigned
		// pattern neighbour (or all vertices for the root). Find the
		// anchor edge first so the candidate slice can be presized.
		anchor := -1
		var anchorLabel int32
		for _, pe := range pAdj[pv] {
			if assigned[pe.to] >= 0 {
				anchor = assigned[pe.to]
				anchorLabel = pe.label
				break
			}
		}
		var candidates []int
		if anchor >= 0 {
			ga := gAdj[anchor]
			candidates = make([]int, 0, len(ga))
			for _, ge := range ga {
				if ge.label == anchorLabel {
					candidates = append(candidates, ge.to)
				}
			}
		} else {
			candidates = make([]int, 0, len(g.VertexLabels))
			for v := range g.VertexLabels {
				candidates = append(candidates, v)
			}
		}
		for _, gv := range candidates {
			if used[gv] || g.VertexLabels[gv] != pattern.VertexLabels[pv] {
				continue
			}
			// All pattern edges to already-assigned vertices must exist
			// in g with matching labels.
			ok := true
			for _, pe := range pAdj[pv] {
				if assigned[pe.to] < 0 {
					continue
				}
				found := false
				for _, ge := range gAdj[gv] {
					if ge.to == assigned[pe.to] && ge.label == pe.label {
						found = true
						break
					}
				}
				if !found {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			assigned[pv] = gv
			used[gv] = true
			if match(step + 1) {
				return true
			}
			assigned[pv] = -1
			used[gv] = false
		}
		return false
	}
	return match(0)
}

// bfsOrder returns pattern vertices in a connectivity-respecting order.
func bfsOrder(g *Graph, a [][]adj) []int {
	n := g.NumVertices()
	order := make([]int, 0, n)
	seen := make([]bool, n)
	queue := make([]int, 0, n)
	neigh := make([]adj, 0, n)
	for start := 0; start < n; start++ {
		if seen[start] {
			continue
		}
		queue = append(queue[:0], start)
		seen[start] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			neigh = append(neigh[:0], a[v]...)
			slices.SortFunc(neigh, func(x, y adj) int { return x.to - y.to })
			for _, e := range neigh {
				if !seen[e.to] {
					seen[e.to] = true
					queue = append(queue, e.to)
				}
			}
		}
	}
	return order
}
