package graphmining

import (
	"errors"
	"fmt"
	"slices"
	"sort"
)

// Pattern is a frequent connected subgraph with its absolute support
// (number of database graphs containing it).
type Pattern struct {
	Graph   *Graph
	Support int
	key     string
}

// Key returns the canonical key of the pattern graph.
func (p *Pattern) Key() string {
	if p.key == "" {
		p.key = canonicalKey(p.Graph)
	}
	return p.key
}

// ErrPatternBudget mirrors mining.ErrPatternBudget for graphs.
var ErrPatternBudget = errors.New("graphmining: pattern budget exceeded")

// Options configures a mining run.
type Options struct {
	// MinSupport is the absolute minimum support (≥ 1).
	MinSupport int
	// MaxEdges caps pattern size in edges (default 5 — the canonical
	// dedup is exponential in pattern vertices, so keep patterns small).
	MaxEdges int
	// MaxPatterns aborts with ErrPatternBudget (0 = unlimited).
	MaxPatterns int
}

// Mine enumerates the frequent connected subgraphs of the database by
// breadth-first edge extension with canonical-form deduplication
// (FSG-style; Kuramochi & Karypis, ICDM'01 — reference [11] of the
// paper). Every returned pattern is connected and appears in at least
// MinSupport database graphs.
func Mine(db []*Graph, opt Options) ([]Pattern, error) {
	if opt.MinSupport < 1 {
		return nil, fmt.Errorf("graphmining: MinSupport = %d, want >= 1", opt.MinSupport)
	}
	if opt.MaxEdges <= 0 {
		opt.MaxEdges = 5
	}
	for i, g := range db {
		if err := g.Validate(); err != nil {
			return nil, fmt.Errorf("graphmining: db graph %d: %w", i, err)
		}
	}

	// Level 1: frequent single edges (label triples, vertex labels
	// sorted for canonical undirected form).
	type edgeKind struct {
		la, lb int32 // vertex labels, la <= lb
		le     int32 // edge label
	}
	edgeSupport := map[edgeKind]int{}
	for _, g := range db {
		seen := map[edgeKind]bool{}
		for _, e := range g.Edges {
			la, lb := g.VertexLabels[e.From], g.VertexLabels[e.To]
			if la > lb {
				la, lb = lb, la
			}
			k := edgeKind{la, lb, e.Label}
			if !seen[k] {
				seen[k] = true
				edgeSupport[k]++
			}
		}
	}
	var kinds []edgeKind
	for k, c := range edgeSupport {
		if c >= opt.MinSupport {
			kinds = append(kinds, k)
		}
	}
	sort.Slice(kinds, func(i, j int) bool {
		a, b := kinds[i], kinds[j]
		if a.la != b.la {
			return a.la < b.la
		}
		if a.lb != b.lb {
			return a.lb < b.lb
		}
		return a.le < b.le
	})

	var out []Pattern
	seenCanonical := map[string]bool{}
	level := make([]*Pattern, 0, len(kinds))
	for _, k := range kinds {
		pg := &Graph{
			VertexLabels: []int32{k.la, k.lb},
			Edges:        []Edge{{From: 0, To: 1, Label: k.le}},
		}
		p := Pattern{Graph: pg, Support: edgeSupport[k]}
		if seenCanonical[p.Key()] {
			continue
		}
		seenCanonical[p.Key()] = true
		out = append(out, p)
		level = append(level, &out[len(out)-1])
		if opt.MaxPatterns > 0 && len(out) >= opt.MaxPatterns {
			return out, ErrPatternBudget
		}
	}

	// Frequent vertex/edge label vocabulary for extensions.
	vertexLabels := map[int32]bool{}
	edgeLabels := map[int32]bool{}
	for _, k := range kinds {
		vertexLabels[k.la] = true
		vertexLabels[k.lb] = true
		edgeLabels[k.le] = true
	}

	for edges := 2; edges <= opt.MaxEdges && len(level) > 0; edges++ {
		var next []*Pattern
		levelSeen := map[string]bool{}
		for _, parent := range level {
			for _, cand := range extensions(parent.Graph, vertexLabels, edgeLabels) {
				key := canonicalKey(cand)
				if levelSeen[key] || seenCanonical[key] {
					continue
				}
				levelSeen[key] = true
				sup := 0
				for _, g := range db {
					if ContainsSubgraph(g, cand) {
						sup++
					}
				}
				if sup < opt.MinSupport {
					continue
				}
				seenCanonical[key] = true
				out = append(out, Pattern{Graph: cand, Support: sup, key: key})
				next = append(next, &out[len(out)-1])
				if opt.MaxPatterns > 0 && len(out) >= opt.MaxPatterns {
					return out, ErrPatternBudget
				}
			}
		}
		level = next
	}
	return out, nil
}

// extensions generates candidate one-edge extensions of a pattern:
// either a new edge between two existing vertices, or a new vertex
// attached to an existing one, over the frequent label vocabulary.
func extensions(g *Graph, vertexLabels, edgeLabels map[int32]bool) []*Graph {
	type pair struct{ a, b int }
	existing := map[pair]bool{}
	for _, e := range g.Edges {
		a, b := e.From, e.To
		if a > b {
			a, b = b, a
		}
		existing[pair{a, b}] = true
	}
	// Candidate order must not depend on map iteration order: it decides
	// the level expansion sequence and, under a pattern budget, which
	// patterns get mined at all.
	vls := sortedLabels(vertexLabels)
	els := sortedLabels(edgeLabels)
	var out []*Graph
	n := g.NumVertices()
	// Close a cycle between existing vertices.
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if existing[pair{a, b}] {
				continue
			}
			for _, le := range els {
				ng := cloneGraph(g)
				ng.Edges = append(ng.Edges, Edge{From: a, To: b, Label: le})
				out = append(out, ng)
			}
		}
	}
	// Grow a new vertex.
	for a := 0; a < n; a++ {
		for _, lv := range vls {
			for _, le := range els {
				ng := cloneGraph(g)
				ng.VertexLabels = append(ng.VertexLabels, lv)
				ng.Edges = append(ng.Edges, Edge{From: a, To: n, Label: le})
				out = append(out, ng)
			}
		}
	}
	return out
}

// sortedLabels fixes an iteration order for a label set.
func sortedLabels(set map[int32]bool) []int32 {
	out := make([]int32, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	slices.Sort(out)
	return out
}

func cloneGraph(g *Graph) *Graph {
	return &Graph{
		VertexLabels: append([]int32(nil), g.VertexLabels...),
		Edges:        append([]Edge(nil), g.Edges...),
	}
}

// SortPatterns orders patterns canonically (support desc, edges asc,
// canonical key).
func SortPatterns(ps []Pattern) {
	sort.Slice(ps, func(i, j int) bool {
		a, b := &ps[i], &ps[j]
		if a.Support != b.Support {
			return a.Support > b.Support
		}
		if len(a.Graph.Edges) != len(b.Graph.Edges) {
			return len(a.Graph.Edges) < len(b.Graph.Edges)
		}
		return a.Key() < b.Key()
	})
}
