package graphmining

import (
	"errors"
	"math/rand"
	"testing"
)

// path builds a labelled path graph v0-v1-...-vk.
func path(vertexLabels []int32, edgeLabel int32) *Graph {
	g := &Graph{VertexLabels: vertexLabels}
	for i := 0; i+1 < len(vertexLabels); i++ {
		g.Edges = append(g.Edges, Edge{From: i, To: i + 1, Label: edgeLabel})
	}
	return g
}

// triangle builds a labelled triangle.
func triangle(l0, l1, l2, le int32) *Graph {
	return &Graph{
		VertexLabels: []int32{l0, l1, l2},
		Edges: []Edge{
			{From: 0, To: 1, Label: le},
			{From: 1, To: 2, Label: le},
			{From: 0, To: 2, Label: le},
		},
	}
}

func TestValidate(t *testing.T) {
	good := path([]int32{0, 1}, 0)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Graph{VertexLabels: []int32{0}, Edges: []Edge{{From: 0, To: 5}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-range edge should error")
	}
	loop := &Graph{VertexLabels: []int32{0}, Edges: []Edge{{From: 0, To: 0}}}
	if err := loop.Validate(); err == nil {
		t.Fatal("self-loop should error")
	}
}

func TestCanonicalKeyInvariance(t *testing.T) {
	// The same triangle with permuted vertex order must share a key.
	a := triangle(1, 2, 3, 0)
	b := &Graph{
		VertexLabels: []int32{3, 1, 2},
		Edges: []Edge{
			{From: 1, To: 2, Label: 0},
			{From: 2, To: 0, Label: 0},
			{From: 1, To: 0, Label: 0},
		},
	}
	if canonicalKey(a) != canonicalKey(b) {
		t.Fatal("isomorphic graphs have different canonical keys")
	}
	// A path with the same labels is different.
	c := path([]int32{1, 2, 3}, 0)
	if canonicalKey(a) == canonicalKey(c) {
		t.Fatal("triangle and path share a canonical key")
	}
}

func TestContainsSubgraph(t *testing.T) {
	g := triangle(1, 2, 3, 0)
	if !ContainsSubgraph(g, path([]int32{1, 2}, 0)) {
		t.Fatal("edge 1-2 should be contained")
	}
	if !ContainsSubgraph(g, path([]int32{2, 1}, 0)) {
		t.Fatal("containment must be label-based, not order-based")
	}
	if ContainsSubgraph(g, path([]int32{1, 9}, 0)) {
		t.Fatal("edge with unknown label should not match")
	}
	if ContainsSubgraph(g, path([]int32{1, 2}, 7)) {
		t.Fatal("edge label must match")
	}
	if !ContainsSubgraph(g, triangle(3, 2, 1, 0)) {
		t.Fatal("triangle should contain itself up to isomorphism")
	}
	// A triangle pattern is not inside a path graph.
	if ContainsSubgraph(path([]int32{1, 2, 3}, 0), triangle(1, 2, 3, 0)) {
		t.Fatal("path contains no triangle")
	}
	if !ContainsSubgraph(g, &Graph{}) {
		t.Fatal("empty pattern matches everything")
	}
}

func TestContainsSubgraphInjective(t *testing.T) {
	// Pattern a-b, a-b (two distinct b vertices) must NOT match a graph
	// with a single a-b edge: vertex assignments are injective.
	pattern := &Graph{
		VertexLabels: []int32{0, 1, 1},
		Edges:        []Edge{{From: 0, To: 1, Label: 0}, {From: 0, To: 2, Label: 0}},
	}
	single := path([]int32{0, 1}, 0)
	if ContainsSubgraph(single, pattern) {
		t.Fatal("injectivity violated")
	}
	double := &Graph{
		VertexLabels: []int32{0, 1, 1},
		Edges:        []Edge{{From: 0, To: 1, Label: 0}, {From: 0, To: 2, Label: 0}},
	}
	if !ContainsSubgraph(double, pattern) {
		t.Fatal("star should match itself")
	}
}

func TestMineFindsPlantedMotif(t *testing.T) {
	// 10 graphs contain a triangle motif; 10 contain only paths.
	var db []*Graph
	for i := 0; i < 10; i++ {
		db = append(db, triangle(1, 2, 3, 0))
		db = append(db, path([]int32{1, 2, 3, 1}, 0))
	}
	ps, err := Mine(db, Options{MinSupport: 8, MaxEdges: 3})
	if err != nil {
		t.Fatal(err)
	}
	foundTriangle := false
	key := canonicalKey(triangle(1, 2, 3, 0))
	for i := range ps {
		if ps[i].Key() == key {
			foundTriangle = true
			if ps[i].Support != 10 {
				t.Fatalf("triangle support = %d, want 10", ps[i].Support)
			}
		}
	}
	if !foundTriangle {
		t.Fatal("planted triangle not mined")
	}
}

func TestMineSupportMonotone(t *testing.T) {
	var db []*Graph
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 20; i++ {
		labels := make([]int32, 4)
		for j := range labels {
			labels[j] = int32(r.Intn(3))
		}
		db = append(db, path(labels, int32(r.Intn(2))))
	}
	lo, err := Mine(db, Options{MinSupport: 3, MaxEdges: 3})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Mine(db, Options{MinSupport: 8, MaxEdges: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(hi) > len(lo) {
		t.Fatalf("higher support mined more patterns: %d > %d", len(hi), len(lo))
	}
	// Every pattern's support must be correct w.r.t. ContainsSubgraph.
	for i := range lo {
		sup := 0
		for _, g := range db {
			if ContainsSubgraph(g, lo[i].Graph) {
				sup++
			}
		}
		if sup != lo[i].Support {
			t.Fatalf("pattern support %d, recount %d", lo[i].Support, sup)
		}
	}
}

func TestMineNoDuplicates(t *testing.T) {
	var db []*Graph
	for i := 0; i < 6; i++ {
		db = append(db, triangle(1, 1, 1, 0))
	}
	ps, err := Mine(db, Options{MinSupport: 3, MaxEdges: 3})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i := range ps {
		if seen[ps[i].Key()] {
			t.Fatalf("duplicate canonical pattern: %v", ps[i].Graph)
		}
		seen[ps[i].Key()] = true
	}
}

func TestMineBudgetAndValidation(t *testing.T) {
	db := []*Graph{triangle(1, 2, 3, 0), triangle(1, 2, 3, 0)}
	if _, err := Mine(db, Options{MinSupport: 0}); err == nil {
		t.Fatal("MinSupport=0 should error")
	}
	_, err := Mine(db, Options{MinSupport: 1, MaxPatterns: 2, MaxEdges: 3})
	if !errors.Is(err, ErrPatternBudget) {
		t.Fatalf("err = %v, want budget error", err)
	}
}

// graphDataset builds a classification task where the vertex-label
// vocabulary is identical across classes and only the TOPOLOGY
// discriminates: class 0 graphs contain a triangle, class 1 graphs the
// same labels as a path plus a distractor edge.
func graphDataset(n int, seed int64) (db []*Graph, y []int) {
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		c := i % 2
		var g *Graph
		if c == 0 {
			g = triangle(1, 2, 3, 0)
		} else {
			g = path([]int32{1, 2, 3}, 0)
		}
		// Attach a random noise vertex to both classes.
		ng := cloneGraph(g)
		ng.VertexLabels = append(ng.VertexLabels, int32(4+r.Intn(2)))
		ng.Edges = append(ng.Edges, Edge{From: r.Intn(3), To: 3, Label: 0})
		db = append(db, ng)
		y = append(y, c)
	}
	return db, y
}

func TestGraphClassifierTopologyMotifs(t *testing.T) {
	db, y := graphDataset(60, 5)
	clf := &Classifier{MinSupport: 0.5, MaxEdges: 3}
	if err := clf.Fit(db, y, 2); err != nil {
		t.Fatal(err)
	}
	if clf.SelectedCount == 0 {
		t.Fatal("no subgraph features selected")
	}
	pred, err := clf.PredictAll(db)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range pred {
		if pred[i] == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(pred)); acc < 0.95 {
		t.Fatalf("accuracy %v; topology motifs not captured", acc)
	}
}

func TestGraphClassifierErrors(t *testing.T) {
	clf := &Classifier{}
	if err := clf.Fit(nil, nil, 2); err == nil {
		t.Fatal("empty db should error")
	}
	if err := clf.Fit([]*Graph{path([]int32{0, 1}, 0)}, []int{0, 1}, 2); err == nil {
		t.Fatal("length mismatch should error")
	}
	if err := clf.Fit([]*Graph{path([]int32{0, 1}, 0)}, []int{5}, 2); err == nil {
		t.Fatal("bad label should error")
	}
	if _, err := (&Classifier{}).Predict(path([]int32{0, 1}, 0)); err == nil {
		t.Fatal("Predict before Fit should error")
	}
}
