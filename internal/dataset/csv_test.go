package dataset

import (
	"bytes"
	"strings"
	"testing"
)

const sampleCSV = `color,weight,label
red,1.5,pos
green,2.0,neg
red,?,pos
blue,3.25,neg
`

func TestReadCSV(t *testing.T) {
	d, err := ReadCSV(strings.NewReader(sampleCSV), "sample")
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRows() != 4 || d.NumAttrs() != 2 || d.NumClasses() != 2 {
		t.Fatalf("shape (%d,%d,%d)", d.NumRows(), d.NumAttrs(), d.NumClasses())
	}
	if d.Attrs[0].Kind != Categorical || d.Attrs[1].Kind != Numeric {
		t.Fatalf("kinds = %v,%v", d.Attrs[0].Kind, d.Attrs[1].Kind)
	}
	if len(d.Attrs[0].Values) != 3 {
		t.Fatalf("color values = %v", d.Attrs[0].Values)
	}
	if !IsMissing(d.Rows[2][1]) {
		t.Fatal("row 2 weight should be missing")
	}
	if d.Rows[3][1] != 3.25 {
		t.Fatalf("row 3 weight = %v", d.Rows[3][1])
	}
	if d.Classes[d.Labels[0]] != "pos" || d.Classes[d.Labels[1]] != "neg" {
		t.Fatal("labels mis-assigned")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"header only":   "a,b,label\n",
		"one column":    "label\nx\n",
		"missing label": "a,label\n1,?\n",
	}
	for name, data := range cases {
		if _, err := ReadCSV(strings.NewReader(data), name); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d, err := ReadCSV(strings.NewReader(sampleCSV), "sample")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	d2, err := ReadCSV(&buf, "sample2")
	if err != nil {
		t.Fatal(err)
	}
	if d2.NumRows() != d.NumRows() || d2.NumAttrs() != d.NumAttrs() {
		t.Fatal("round trip changed shape")
	}
	for i := range d.Rows {
		if d.Labels[i] != d2.Labels[i] {
			t.Fatalf("row %d label changed", i)
		}
		for j := range d.Rows[i] {
			a, b := d.Rows[i][j], d2.Rows[i][j]
			if IsMissing(a) != IsMissing(b) {
				t.Fatalf("row %d col %d missing flag changed", i, j)
			}
			if !IsMissing(a) && a != b {
				t.Fatalf("row %d col %d: %v != %v", i, j, a, b)
			}
		}
	}
}

func TestWriteCSVCategoricalNames(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tiny()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "green,l,no") {
		t.Fatalf("output missing expected row:\n%s", out)
	}
	if !strings.Contains(out, "red,?,yes") {
		t.Fatalf("output missing missing-cell row:\n%s", out)
	}
}
