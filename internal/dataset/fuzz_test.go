package dataset

import (
	"bytes"
	"math"
	"testing"
)

// The fuzz targets assert one property: the parsers return an error for
// malformed input — they never panic and never return a Dataset that
// fails Validate. Crashers found by earlier runs (non-finite numerics
// aliasing the Missing sentinel, duplicate attribute names, unbounded
// LUCS item numbers) are pinned by the regression tests in
// harden_test.go and by the seed corpora under testdata/fuzz/.

// fuzzInputCap skips oversized inputs so the mutator spends its budget
// on structure rather than on allocating huge but well-formed tables.
const fuzzInputCap = 64 << 10

func FuzzParseARFF(f *testing.F) {
	f.Add([]byte("@relation t\n@attribute a numeric\n@attribute c {x,y}\n@data\n1,x\n2,y\n"))
	f.Add([]byte("@relation t\n@attribute a {p,q}\n@attribute b numeric\n@attribute c {x,y}\n@data\np,1.5,x\n?,?,y\n"))
	f.Add([]byte("@relation t\n@attribute 'a b' real\n@attribute c {x}\n@data\n-3e2,x\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > fuzzInputCap {
			t.Skip("oversized input")
		}
		d, err := ReadARFF(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := d.Validate(); verr != nil {
			t.Fatalf("ReadARFF returned invalid dataset: %v", verr)
		}
		checkFinite(t, d)
	})
}

func FuzzParseCSV(f *testing.F) {
	f.Add([]byte("a,b,class\n1,x,pos\n2,y,neg\n"))
	f.Add([]byte("a,b,class\n?,x,pos\n3.5,?,neg\n"))
	f.Add([]byte("a,class\nNaN,pos\n1,neg\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > fuzzInputCap {
			t.Skip("oversized input")
		}
		d, err := ReadCSV(bytes.NewReader(data), "fuzz")
		if err != nil {
			return
		}
		if verr := d.Validate(); verr != nil {
			t.Fatalf("ReadCSV returned invalid dataset: %v", verr)
		}
		checkFinite(t, d)
	})
}

func FuzzParseLUCS(f *testing.F) {
	f.Add([]byte("1 3 5\n2 4 5\n1 2 6\n"))
	f.Add([]byte("1 2 3 10\n4 5 11\n"))
	f.Add([]byte("7\n")) // class-only lines are rejected
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > fuzzInputCap {
			t.Skip("oversized input")
		}
		d, err := ReadLUCS(bytes.NewReader(data), "fuzz")
		if err != nil {
			return
		}
		if verr := d.Validate(); verr != nil {
			t.Fatalf("ReadLUCS returned invalid dataset: %v", verr)
		}
		if len(d.Attrs) > maxLUCSItem {
			t.Fatalf("ReadLUCS allocated %d attributes, cap is %d", len(d.Attrs), maxLUCSItem)
		}
		// LUCS output is fully categorical, so binary encoding must work.
		if _, err := Encode(d); err != nil {
			t.Fatalf("Encode of valid LUCS dataset failed: %v", err)
		}
	})
}

// checkFinite asserts no accepted cell holds an infinity: NaN is the
// Missing sentinel (skipped by IsMissing), anything else must be finite.
func checkFinite(t *testing.T, d *Dataset) {
	t.Helper()
	for i, row := range d.Rows {
		for j, v := range row {
			if IsMissing(v) {
				continue
			}
			if math.IsInf(v, 0) {
				t.Fatalf("row %d attr %d: stored non-finite value %v", i, j, v)
			}
		}
	}
}
