package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// missingToken is the CSV representation of a missing cell, matching the
// UCI convention.
const missingToken = "?"

// ReadCSV parses a dataset from CSV. The first record is a header; the
// last column is the class label. Column types are inferred: a column is
// Numeric iff every non-missing cell parses as a float; otherwise it is
// Categorical with values in first-appearance order.
func ReadCSV(r io.Reader, name string) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("read csv %s: %w", name, err)
	}
	if len(records) < 2 {
		return nil, fmt.Errorf("read csv %s: need header plus at least one row", name)
	}
	header := records[0]
	if len(header) < 2 {
		return nil, fmt.Errorf("read csv %s: need at least one attribute column plus class", name)
	}
	nAttrs := len(header) - 1
	rows := records[1:]

	headerSeen := make(map[string]bool, len(header))
	for _, h := range header {
		h = strings.TrimSpace(h)
		if headerSeen[h] {
			return nil, fmt.Errorf("read csv %s: duplicate column name %q", name, h)
		}
		headerSeen[h] = true
	}

	numeric := make([]bool, nAttrs)
	for j := 0; j < nAttrs; j++ {
		numeric[j] = true
		seen := false
		for _, rec := range rows {
			if len(rec) != len(header) {
				return nil, fmt.Errorf("read csv %s: row has %d fields, want %d", name, len(rec), len(header))
			}
			cell := strings.TrimSpace(rec[j])
			if cell == missingToken || cell == "" {
				continue
			}
			seen = true
			// Non-finite values ("NaN", "Inf") demote the column to
			// categorical rather than colliding with the Missing sentinel.
			if _, err := parseFiniteFloat(cell); err != nil {
				numeric[j] = false
				break
			}
		}
		if !seen {
			numeric[j] = false // all-missing column: treat as categorical with no values
		}
	}

	d := &Dataset{Name: name, Attrs: make([]Attribute, nAttrs)}
	catIndex := make([]map[string]int, nAttrs)
	for j := 0; j < nAttrs; j++ {
		kind := Categorical
		if numeric[j] {
			kind = Numeric
		}
		d.Attrs[j] = Attribute{Name: strings.TrimSpace(header[j]), Kind: kind}
		catIndex[j] = make(map[string]int)
	}
	classIndex := make(map[string]int)

	for i, rec := range rows {
		row := make([]float64, nAttrs)
		for j := 0; j < nAttrs; j++ {
			cell := strings.TrimSpace(rec[j])
			if cell == missingToken || cell == "" {
				row[j] = Missing
				continue
			}
			if numeric[j] {
				v, err := parseFiniteFloat(cell)
				if err != nil {
					return nil, fmt.Errorf("read csv %s row %d col %d: %w", name, i+1, j, err)
				}
				row[j] = v
			} else {
				vi, ok := catIndex[j][cell]
				if !ok {
					vi = len(d.Attrs[j].Values)
					catIndex[j][cell] = vi
					d.Attrs[j].Values = append(d.Attrs[j].Values, cell)
				}
				row[j] = float64(vi)
			}
		}
		label := strings.TrimSpace(rec[nAttrs])
		if label == missingToken || label == "" {
			return nil, fmt.Errorf("read csv %s row %d: missing class label", name, i+1)
		}
		yi, ok := classIndex[label]
		if !ok {
			yi = len(d.Classes)
			classIndex[label] = yi
			d.Classes = append(d.Classes, label)
		}
		d.Rows = append(d.Rows, row)
		d.Labels = append(d.Labels, yi)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// WriteCSV writes the dataset as CSV with a header row; the class label
// is the last column. Missing cells are written as "?".
func WriteCSV(w io.Writer, d *Dataset) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, len(d.Attrs)+1)
	for _, a := range d.Attrs {
		header = append(header, a.Name)
	}
	header = append(header, "class")
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(d.Attrs)+1)
	for i, row := range d.Rows {
		for j, v := range row {
			switch {
			case IsMissing(v):
				rec[j] = missingToken
			case d.Attrs[j].Kind == Categorical:
				rec[j] = d.Attrs[j].Values[int(v)]
			default:
				rec[j] = strconv.FormatFloat(v, 'g', -1, 64)
			}
		}
		rec[len(d.Attrs)] = d.Classes[d.Labels[i]]
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
