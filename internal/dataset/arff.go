package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadARFF parses a dataset in Weka's ARFF format — the format of the
// toolchain the paper's experiments used (C4.5 via Weka). Supported
// subset: @relation, @attribute with nominal ("{a,b,c}") or numeric
// ("numeric"/"real"/"integer") types, and a dense @data section with
// "?" for missing values. The last attribute is the class and must be
// nominal. Lines starting with '%' are comments.
func ReadARFF(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	d := &Dataset{}
	inData := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if !inData {
			lower := strings.ToLower(line)
			switch {
			case strings.HasPrefix(lower, "@relation"):
				d.Name = strings.Trim(strings.TrimSpace(line[len("@relation"):]), `"'`)
			case strings.HasPrefix(lower, "@attribute"):
				attr, err := parseARFFAttribute(line)
				if err != nil {
					return nil, fmt.Errorf("arff line %d: %w", lineNo, err)
				}
				d.Attrs = append(d.Attrs, attr)
			case strings.HasPrefix(lower, "@data"):
				if len(d.Attrs) < 2 {
					return nil, fmt.Errorf("arff line %d: need at least two attributes before @data", lineNo)
				}
				seen := make(map[string]bool, len(d.Attrs))
				for _, a := range d.Attrs {
					if seen[a.Name] {
						return nil, fmt.Errorf("arff: duplicate attribute name %q", a.Name)
					}
					seen[a.Name] = true
				}
				class := d.Attrs[len(d.Attrs)-1]
				if class.Kind != Categorical {
					return nil, fmt.Errorf("arff: class attribute %q must be nominal", class.Name)
				}
				d.Classes = class.Values
				d.Attrs = d.Attrs[:len(d.Attrs)-1]
				inData = true
			default:
				return nil, fmt.Errorf("arff line %d: unsupported declaration %q", lineNo, line)
			}
			continue
		}
		row, label, err := parseARFFRow(d, line)
		if err != nil {
			return nil, fmt.Errorf("arff line %d: %w", lineNo, err)
		}
		d.Rows = append(d.Rows, row)
		d.Labels = append(d.Labels, label)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("arff: %w", err)
	}
	if !inData {
		return nil, fmt.Errorf("arff: missing @data section")
	}
	if len(d.Rows) == 0 {
		return nil, fmt.Errorf("arff: no data rows")
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// parseARFFAttribute parses one @attribute declaration.
func parseARFFAttribute(line string) (Attribute, error) {
	rest := strings.TrimSpace(line[len("@attribute"):])
	if rest == "" {
		return Attribute{}, fmt.Errorf("empty attribute declaration")
	}
	// Attribute name: quoted or bare token.
	var name string
	if rest[0] == '\'' || rest[0] == '"' {
		quote := rest[0]
		end := strings.IndexByte(rest[1:], quote)
		if end < 0 {
			return Attribute{}, fmt.Errorf("unterminated quoted attribute name")
		}
		name = rest[1 : 1+end]
		rest = strings.TrimSpace(rest[2+end:])
	} else {
		fields := strings.Fields(rest)
		name = fields[0]
		rest = strings.TrimSpace(rest[len(fields[0]):])
	}
	if rest == "" {
		return Attribute{}, fmt.Errorf("attribute %q missing a type", name)
	}
	if rest[0] == '{' {
		end := strings.IndexByte(rest, '}')
		if end < 0 {
			return Attribute{}, fmt.Errorf("attribute %q: unterminated nominal value list", name)
		}
		var values []string
		for _, v := range strings.Split(rest[1:end], ",") {
			values = append(values, strings.Trim(strings.TrimSpace(v), `"'`))
		}
		if len(values) == 0 {
			return Attribute{}, fmt.Errorf("attribute %q: empty nominal value list", name)
		}
		return Attribute{Name: name, Kind: Categorical, Values: values}, nil
	}
	switch strings.ToLower(strings.Fields(rest)[0]) {
	case "numeric", "real", "integer":
		return Attribute{Name: name, Kind: Numeric}, nil
	default:
		return Attribute{}, fmt.Errorf("attribute %q: unsupported type %q", name, rest)
	}
}

// parseARFFRow parses one dense data row.
func parseARFFRow(d *Dataset, line string) ([]float64, int, error) {
	fields := splitARFFFields(line)
	if len(fields) != len(d.Attrs)+1 {
		return nil, 0, fmt.Errorf("row has %d fields, want %d", len(fields), len(d.Attrs)+1)
	}
	row := make([]float64, len(d.Attrs))
	for j, attr := range d.Attrs {
		cell := fields[j]
		if cell == "?" {
			row[j] = Missing
			continue
		}
		if attr.Kind == Numeric {
			v, err := parseFiniteFloat(cell)
			if err != nil {
				return nil, 0, fmt.Errorf("attribute %q: %w", attr.Name, err)
			}
			row[j] = v
			continue
		}
		idx := -1
		for vi, val := range attr.Values {
			if val == cell {
				idx = vi
				break
			}
		}
		if idx < 0 {
			return nil, 0, fmt.Errorf("attribute %q: undeclared value %q", attr.Name, cell)
		}
		row[j] = float64(idx)
	}
	labelCell := fields[len(fields)-1]
	if labelCell == "?" {
		return nil, 0, fmt.Errorf("missing class label")
	}
	label := -1
	for ci, cls := range d.Classes {
		if cls == labelCell {
			label = ci
			break
		}
	}
	if label < 0 {
		return nil, 0, fmt.Errorf("undeclared class %q", labelCell)
	}
	return row, label, nil
}

// splitARFFFields splits a dense row on commas, honouring single
// quotes, and trims whitespace/quotes per field.
func splitARFFFields(line string) []string {
	var fields []string
	var cur strings.Builder
	inQuote := false
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case c == '\'':
			inQuote = !inQuote
		case c == ',' && !inQuote:
			fields = append(fields, strings.TrimSpace(cur.String()))
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	fields = append(fields, strings.TrimSpace(cur.String()))
	return fields
}

// WriteARFF writes the dataset in ARFF format (nominal class appended
// as the last attribute).
func WriteARFF(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "@relation '%s'\n\n", d.Name)
	for _, a := range d.Attrs {
		if a.Kind == Numeric {
			fmt.Fprintf(bw, "@attribute '%s' numeric\n", a.Name)
		} else {
			fmt.Fprintf(bw, "@attribute '%s' {%s}\n", a.Name, strings.Join(a.Values, ","))
		}
	}
	fmt.Fprintf(bw, "@attribute 'class' {%s}\n\n@data\n", strings.Join(d.Classes, ","))
	for i, row := range d.Rows {
		for j, v := range row {
			if j > 0 {
				bw.WriteByte(',')
			}
			switch {
			case IsMissing(v):
				bw.WriteByte('?')
			case d.Attrs[j].Kind == Categorical:
				bw.WriteString(d.Attrs[j].Values[int(v)])
			default:
				bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
			}
		}
		bw.WriteByte(',')
		bw.WriteString(d.Classes[d.Labels[i]])
		bw.WriteByte('\n')
	}
	return bw.Flush()
}
