package dataset

import "fmt"

// rng is a small deterministic xorshift64* generator so fold assignment
// is reproducible across runs and platforms without math/rand.
type rng struct{ s uint64 }

func newRNG(seed int64) *rng {
	s := uint64(seed)
	if s == 0 {
		s = 0x9E3779B97F4A7C15
	}
	return &rng{s: s}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// intn returns a uniform value in [0, n).
func (r *rng) intn(n int) int {
	return int(r.next() % uint64(n))
}

// shuffle permutes idx in place (Fisher–Yates).
func (r *rng) shuffle(idx []int) {
	for i := len(idx) - 1; i > 0; i-- {
		j := r.intn(i + 1)
		idx[i], idx[j] = idx[j], idx[i]
	}
}

// StratifiedKFold partitions row indices into k folds preserving the
// class distribution: within each class, shuffled rows are dealt
// round-robin to the folds. The paper evaluates with 10-fold cross
// validation (Section 4). Every row appears in exactly one fold.
func StratifiedKFold(labels []int, numClasses, k int, seed int64) ([][]int, error) {
	if k < 2 {
		return nil, fmt.Errorf("stratified k-fold: k = %d, want >= 2", k)
	}
	if len(labels) < k {
		return nil, fmt.Errorf("stratified k-fold: %d rows < %d folds", len(labels), k)
	}
	byClass := make([][]int, numClasses)
	for i, y := range labels {
		if y < 0 || y >= numClasses {
			return nil, fmt.Errorf("stratified k-fold: label %d out of range [0,%d)", y, numClasses)
		}
		byClass[y] = append(byClass[y], i)
	}
	r := newRNG(seed)
	folds := make([][]int, k)
	// offset rotates the starting fold per class so small classes do
	// not all pile into fold 0.
	offset := 0
	for _, rows := range byClass {
		r.shuffle(rows)
		for i, row := range rows {
			f := (i + offset) % k
			folds[f] = append(folds[f], row)
		}
		offset += len(rows) % k
	}
	return folds, nil
}

// TrainTestFromFolds returns the train rows (all folds except test) and
// the test rows for fold index test.
func TrainTestFromFolds(folds [][]int, test int) (train, testRows []int) {
	for f, rows := range folds {
		if f == test {
			testRows = append(testRows, rows...)
		} else {
			train = append(train, rows...)
		}
	}
	return train, testRows
}

// StratifiedSplit returns a single train/test split with approximately
// testFrac of each class in the test set.
func StratifiedSplit(labels []int, numClasses int, testFrac float64, seed int64) (train, test []int, err error) {
	if testFrac <= 0 || testFrac >= 1 {
		return nil, nil, fmt.Errorf("stratified split: testFrac = %v, want (0,1)", testFrac)
	}
	byClass := make([][]int, numClasses)
	for i, y := range labels {
		if y < 0 || y >= numClasses {
			return nil, nil, fmt.Errorf("stratified split: label %d out of range [0,%d)", y, numClasses)
		}
		byClass[y] = append(byClass[y], i)
	}
	r := newRNG(seed)
	for _, rows := range byClass {
		r.shuffle(rows)
		nTest := int(float64(len(rows))*testFrac + 0.5)
		if nTest >= len(rows) && len(rows) > 1 {
			nTest = len(rows) - 1
		}
		test = append(test, rows[:nTest]...)
		train = append(train, rows[nTest:]...)
	}
	return train, test, nil
}
