package dataset

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ReadLUCS parses the LUCS-KDD DN ("discretized/normalized") format the
// paper's footnote cites for the Letter Recognition data: one
// transaction per line as space-separated 1-based item numbers in
// ascending order, with the class encoded as the line's last item
// (class items occupy the highest item numbers, one per class).
//
// The result is a Dataset with one single-valued categorical attribute
// per non-class item; a transaction's absent items become missing
// cells, so the binary encoding reproduces the original transactions
// exactly (one binary item per LUCS item).
// maxLUCSItem bounds item numbers accepted by ReadLUCS. The parser
// allocates one attribute per item up to the largest body item, so an
// unbounded item number would let a two-token line demand gigabytes.
const maxLUCSItem = 1 << 20

func ReadLUCS(r io.Reader, name string) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	var rows [][]int // item lists, 1-based
	var classItems []int
	classSeen := map[int]bool{}
	maxItem := 0
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("lucs %s line %d: need at least one item plus the class item", name, lineNo)
		}
		items := make([]int, len(fields))
		for i, f := range fields {
			v, err := strconv.Atoi(f)
			if err != nil || v < 1 {
				return nil, fmt.Errorf("lucs %s line %d: bad item %q", name, lineNo, f)
			}
			if v > maxLUCSItem {
				return nil, fmt.Errorf("lucs %s line %d: item %d exceeds the %d item cap", name, lineNo, v, maxLUCSItem)
			}
			items[i] = v
		}
		for i := 1; i < len(items); i++ {
			if items[i] <= items[i-1] {
				return nil, fmt.Errorf("lucs %s line %d: items not strictly ascending", name, lineNo)
			}
		}
		cls := items[len(items)-1]
		if !classSeen[cls] {
			classSeen[cls] = true
			classItems = append(classItems, cls)
		}
		body := items[:len(items)-1]
		if len(body) > 0 && body[len(body)-1] > maxItem {
			maxItem = body[len(body)-1]
		}
		rows = append(rows, items)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("lucs %s: %w", name, err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("lucs %s: no transactions", name)
	}
	sort.Ints(classItems)
	// Class items must sit above every body item (the format's
	// convention); otherwise the class column is ambiguous.
	if classItems[0] <= maxItem {
		return nil, fmt.Errorf("lucs %s: class item %d overlaps body items (max %d)", name, classItems[0], maxItem)
	}
	classIndex := map[int]int{}
	d := &Dataset{Name: name}
	for i, c := range classItems {
		classIndex[c] = i
		d.Classes = append(d.Classes, fmt.Sprintf("class%d", c))
	}
	for it := 1; it <= maxItem; it++ {
		d.Attrs = append(d.Attrs, Attribute{
			Name:   fmt.Sprintf("item%d", it),
			Kind:   Categorical,
			Values: []string{"1"},
		})
	}
	for _, items := range rows {
		row := make([]float64, maxItem)
		for a := range row {
			row[a] = Missing
		}
		for _, it := range items[:len(items)-1] {
			row[it-1] = 0 // the attribute's single value
		}
		d.Rows = append(d.Rows, row)
		d.Labels = append(d.Labels, classIndex[items[len(items)-1]])
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// WriteLUCS writes a fully categorical, single-valued-attribute dataset
// (as produced by ReadLUCS) back to the LUCS-KDD DN format.
func WriteLUCS(w io.Writer, d *Dataset) error {
	for _, a := range d.Attrs {
		if a.Kind != Categorical || len(a.Values) != 1 {
			return fmt.Errorf("lucs: attribute %q is not a single-valued presence attribute", a.Name)
		}
	}
	bw := bufio.NewWriter(w)
	classBase := len(d.Attrs) + 1
	for i, row := range d.Rows {
		first := true
		for a, v := range row {
			if IsMissing(v) {
				continue
			}
			if !first {
				bw.WriteByte(' ')
			}
			first = false
			bw.WriteString(strconv.Itoa(a + 1))
		}
		if !first {
			bw.WriteByte(' ')
		}
		bw.WriteString(strconv.Itoa(classBase + d.Labels[i]))
		bw.WriteByte('\n')
	}
	return bw.Flush()
}
