package dataset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStratifiedKFoldPartition(t *testing.T) {
	labels := make([]int, 100)
	for i := range labels {
		labels[i] = i % 3
	}
	folds, err := StratifiedKFold(labels, 3, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 10 {
		t.Fatalf("folds = %d, want 10", len(folds))
	}
	seen := make([]bool, 100)
	for _, fold := range folds {
		for _, row := range fold {
			if seen[row] {
				t.Fatalf("row %d in multiple folds", row)
			}
			seen[row] = true
		}
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("row %d in no fold", i)
		}
	}
}

func TestStratifiedKFoldBalance(t *testing.T) {
	// 60/40 class split over 200 rows, 10 folds: each fold should hold
	// roughly 12 of class 0 and 8 of class 1.
	labels := make([]int, 200)
	for i := 120; i < 200; i++ {
		labels[i] = 1
	}
	folds, err := StratifiedKFold(labels, 2, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	for f, fold := range folds {
		c0 := 0
		for _, row := range fold {
			if labels[row] == 0 {
				c0++
			}
		}
		if c0 != 12 {
			t.Errorf("fold %d: class-0 count = %d, want 12", f, c0)
		}
	}
}

func TestStratifiedKFoldDeterministic(t *testing.T) {
	labels := []int{0, 1, 0, 1, 0, 1, 0, 1, 0, 1}
	a, _ := StratifiedKFold(labels, 2, 5, 99)
	b, _ := StratifiedKFold(labels, 2, 5, 99)
	for f := range a {
		if len(a[f]) != len(b[f]) {
			t.Fatal("non-deterministic fold sizes")
		}
		for i := range a[f] {
			if a[f][i] != b[f][i] {
				t.Fatal("non-deterministic fold contents")
			}
		}
	}
}

func TestStratifiedKFoldErrors(t *testing.T) {
	if _, err := StratifiedKFold([]int{0, 1}, 2, 1, 1); err == nil {
		t.Fatal("k=1 should error")
	}
	if _, err := StratifiedKFold([]int{0}, 1, 2, 1); err == nil {
		t.Fatal("fewer rows than folds should error")
	}
	if _, err := StratifiedKFold([]int{0, 5}, 2, 2, 1); err == nil {
		t.Fatal("out-of-range label should error")
	}
}

func TestTrainTestFromFolds(t *testing.T) {
	folds := [][]int{{0, 1}, {2, 3}, {4}}
	train, test := TrainTestFromFolds(folds, 1)
	if len(train) != 3 || len(test) != 2 {
		t.Fatalf("train=%v test=%v", train, test)
	}
	if test[0] != 2 || test[1] != 3 {
		t.Fatalf("test = %v", test)
	}
}

func TestStratifiedSplit(t *testing.T) {
	labels := make([]int, 100)
	for i := 50; i < 100; i++ {
		labels[i] = 1
	}
	train, test, err := StratifiedSplit(labels, 2, 0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(train)+len(test) != 100 {
		t.Fatalf("partition sizes %d+%d", len(train), len(test))
	}
	c0 := 0
	for _, row := range test {
		if labels[row] == 0 {
			c0++
		}
	}
	if c0 != 10 || len(test) != 20 {
		t.Fatalf("test class-0 = %d of %d, want 10 of 20", c0, len(test))
	}
}

func TestStratifiedSplitErrors(t *testing.T) {
	if _, _, err := StratifiedSplit([]int{0, 1}, 2, 0, 1); err == nil {
		t.Fatal("testFrac=0 should error")
	}
	if _, _, err := StratifiedSplit([]int{0, 1}, 2, 1, 1); err == nil {
		t.Fatal("testFrac=1 should error")
	}
}

func TestQuickKFoldAlwaysPartitions(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 20 + r.Intn(200)
		classes := 2 + r.Intn(4)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = r.Intn(classes)
		}
		k := 2 + r.Intn(8)
		folds, err := StratifiedKFold(labels, classes, k, seed)
		if err != nil {
			return false
		}
		total := 0
		seen := make([]bool, n)
		for _, fold := range folds {
			for _, row := range fold {
				if seen[row] {
					return false
				}
				seen[row] = true
				total++
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
