package dataset

import (
	"strings"
	"testing"
)

// Regression tests for parser crashers: each malformed input class must
// produce an error, never a panic and never a silently corrupt Dataset.

func TestReadARFFRejectsNonFiniteNumerics(t *testing.T) {
	for _, cell := range []string{"NaN", "Inf", "+Inf", "-Inf", "Infinity"} {
		in := "@relation t\n@attribute a numeric\n@attribute c {x,y}\n@data\n" + cell + ",x\n1,y\n"
		if _, err := ReadARFF(strings.NewReader(in)); err == nil {
			t.Errorf("ReadARFF accepted non-finite numeric %q", cell)
		}
	}
}

func TestReadARFFRejectsDuplicateAttributeNames(t *testing.T) {
	in := "@relation t\n@attribute a numeric\n@attribute a numeric\n@attribute c {x}\n@data\n1,2,x\n"
	if _, err := ReadARFF(strings.NewReader(in)); err == nil {
		t.Fatal("ReadARFF accepted duplicate attribute names")
	}
}

func TestReadCSVDemotesNonFiniteColumns(t *testing.T) {
	// A column containing "NaN" must not be inferred numeric: NaN would
	// alias the Missing sentinel. It becomes categorical instead.
	d, err := ReadCSV(strings.NewReader("a,class\nNaN,pos\n1,neg\n"), "t")
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if d.Attrs[0].Kind != Categorical {
		t.Fatalf("column with NaN cell inferred as %v, want categorical", d.Attrs[0].Kind)
	}
	if got := d.Attrs[0].Values; len(got) != 2 || got[0] != "NaN" || got[1] != "1" {
		t.Fatalf("categorical values = %v, want [NaN 1]", got)
	}
}

func TestReadCSVRejectsDuplicateColumnNames(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("a,a,class\n1,2,pos\n"), "t"); err == nil {
		t.Fatal("ReadCSV accepted duplicate column names")
	}
}

func TestReadLUCSRejectsOversizedItems(t *testing.T) {
	// Two-token line whose body item exceeds the cap: without the bound
	// the parser would allocate one attribute per item number.
	in := "1048577 1048578\n"
	if _, err := ReadLUCS(strings.NewReader(in), "t"); err == nil {
		t.Fatal("ReadLUCS accepted an item beyond maxLUCSItem")
	}
}

func TestReadLUCSRejectsNonAscendingItems(t *testing.T) {
	if _, err := ReadLUCS(strings.NewReader("3 2 9\n"), "t"); err == nil {
		t.Fatal("ReadLUCS accepted non-ascending items")
	}
}
