// Package dataset defines the tabular data model used by the library:
// datasets with categorical and numeric attributes, class labels, the
// (attribute, value) → item mapping into the binary space B^d from the
// paper's Section 2, CSV input/output, and stratified fold splitting.
package dataset

import (
	"fmt"
	"math"
	"slices"
	"strconv"

	"dfpc/internal/bitset"
)

// Kind distinguishes attribute types.
type Kind int

const (
	// Categorical attributes take one of a finite set of string values.
	Categorical Kind = iota
	// Numeric attributes take real values and must be discretized
	// before binary encoding.
	Numeric
)

func (k Kind) String() string {
	switch k {
	case Categorical:
		return "categorical"
	case Numeric:
		return "numeric"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Attribute describes one column of a dataset.
type Attribute struct {
	Name string
	Kind Kind
	// Values holds the category names for Categorical attributes, in
	// index order. Empty for Numeric attributes.
	Values []string
}

// Missing is the sentinel cell value for a missing entry.
var Missing = math.NaN()

// IsMissing reports whether a cell value is the missing sentinel.
func IsMissing(v float64) bool { return math.IsNaN(v) }

// parseFiniteFloat parses a numeric cell, rejecting NaN and ±Inf: NaN
// would silently collide with the Missing sentinel and infinities break
// discretization, so parsers must error on them instead of storing them.
func parseFiniteFloat(cell string) (float64, error) {
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("non-finite numeric value %q", cell)
	}
	return v, nil
}

// Dataset is a labelled tabular dataset. Each row stores, per attribute,
// either the numeric value (Numeric) or the category index (Categorical,
// as a float64 holding a small integer). Missing cells hold Missing.
type Dataset struct {
	Name    string
	Attrs   []Attribute
	Classes []string
	Rows    [][]float64
	Labels  []int
}

// NumRows returns the number of instances.
func (d *Dataset) NumRows() int { return len(d.Rows) }

// NumAttrs returns the number of attributes.
func (d *Dataset) NumAttrs() int { return len(d.Attrs) }

// NumClasses returns the number of distinct class labels.
func (d *Dataset) NumClasses() int { return len(d.Classes) }

// Validate checks structural invariants: row widths, label ranges, and
// categorical indices within the attribute's value list.
func (d *Dataset) Validate() error {
	if len(d.Rows) != len(d.Labels) {
		return fmt.Errorf("dataset %s: %d rows but %d labels", d.Name, len(d.Rows), len(d.Labels))
	}
	for i, row := range d.Rows {
		if len(row) != len(d.Attrs) {
			return fmt.Errorf("dataset %s: row %d has %d cells, want %d", d.Name, i, len(row), len(d.Attrs))
		}
		for j, v := range row {
			if IsMissing(v) {
				continue
			}
			if d.Attrs[j].Kind == Categorical {
				vi := int(v)
				if float64(vi) != v || vi < 0 || vi >= len(d.Attrs[j].Values) {
					return fmt.Errorf("dataset %s: row %d attr %q: bad category index %v", d.Name, i, d.Attrs[j].Name, v)
				}
			}
		}
	}
	for i, y := range d.Labels {
		if y < 0 || y >= len(d.Classes) {
			return fmt.Errorf("dataset %s: row %d has label %d, want [0,%d)", d.Name, i, y, len(d.Classes))
		}
	}
	return nil
}

// ClassCounts returns the number of instances per class.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, len(d.Classes))
	for _, y := range d.Labels {
		counts[y]++
	}
	return counts
}

// Subset returns a new Dataset containing the given rows (shared
// attribute/class metadata, copied row references).
func (d *Dataset) Subset(rows []int) *Dataset {
	sub := &Dataset{
		Name:    d.Name,
		Attrs:   d.Attrs,
		Classes: d.Classes,
		Rows:    make([][]float64, len(rows)),
		Labels:  make([]int, len(rows)),
	}
	for i, r := range rows {
		sub.Rows[i] = d.Rows[r]
		sub.Labels[i] = d.Labels[r]
	}
	return sub
}

// AllCategorical reports whether every attribute is categorical, i.e.
// whether the dataset is ready for binary encoding.
func (d *Dataset) AllCategorical() bool {
	for _, a := range d.Attrs {
		if a.Kind != Categorical {
			return false
		}
	}
	return true
}

// Item is a single feature o_i in the paper's item space I: a distinct
// (attribute, value) pair.
type Item struct {
	Attr  int // attribute index in the source dataset
	Value int // category index within the attribute
	Name  string
}

// Space is the item vocabulary I = {o_1, ..., o_d} built from a
// dataset's categorical attributes. Item IDs are dense ints [0, d).
type Space struct {
	Items []Item
	// base[a] is the item ID of (attribute a, value 0); item ID of
	// (a, v) is base[a]+v.
	base []int
}

// NumItems returns d = |I|.
func (s *Space) NumItems() int { return len(s.Items) }

// ItemID returns the item ID for (attr, value).
func (s *Space) ItemID(attr, value int) int { return s.base[attr] + value }

// ItemName returns the human-readable name of an item.
func (s *Space) ItemName(id int) string { return s.Items[id].Name }

// NewSpace builds the item space for a fully categorical dataset.
func NewSpace(d *Dataset) (*Space, error) {
	if !d.AllCategorical() {
		return nil, fmt.Errorf("dataset %s: has numeric attributes; discretize first", d.Name)
	}
	s := &Space{base: make([]int, len(d.Attrs))}
	for a, attr := range d.Attrs {
		s.base[a] = len(s.Items)
		for v, name := range attr.Values {
			//vet:ignore hotalloc item names are built once per space construction, amortized over every later lookup
			s.Items = append(s.Items, Item{Attr: a, Value: v, Name: attr.Name + "=" + name})
		}
	}
	return s, nil
}

// Binary is a dataset encoded in the binary item space B^d: each row is
// the set of items it contains (transaction form), and each item has a
// column bitset over rows (vertical form). Both views are kept because
// FP-tree construction consumes transactions while discriminative
// measures and MMRFS consume coverage bitsets.
type Binary struct {
	Space      *Space
	Name       string
	Classes    []string
	Rows       [][]int32 // sorted item IDs per instance
	Labels     []int
	Columns    []*bitset.Bitset // per item: rows containing the item
	ClassMasks []*bitset.Bitset // per class: rows of that class
}

// NumRows returns the number of instances.
func (b *Binary) NumRows() int { return len(b.Rows) }

// NumItems returns d = |I|.
func (b *Binary) NumItems() int { return b.Space.NumItems() }

// NumClasses returns the number of classes.
func (b *Binary) NumClasses() int { return len(b.Classes) }

// ClassCounts returns per-class instance counts.
func (b *Binary) ClassCounts() []int {
	counts := make([]int, len(b.Classes))
	for _, y := range b.Labels {
		counts[y]++
	}
	return counts
}

// Encode maps a fully categorical dataset into the binary space. Missing
// cells simply contribute no item for that attribute.
func Encode(d *Dataset) (*Binary, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	space, err := NewSpace(d)
	if err != nil {
		return nil, err
	}
	n := d.NumRows()
	b := &Binary{
		Space:   space,
		Name:    d.Name,
		Classes: d.Classes,
		Rows:    make([][]int32, n),
		Labels:  append([]int(nil), d.Labels...),
		Columns: make([]*bitset.Bitset, space.NumItems()),
	}
	for i := range b.Columns {
		b.Columns[i] = bitset.New(n)
	}
	for i, row := range d.Rows {
		//vet:ignore hotalloc each tx escapes into b.Rows[i]; the allocation is the encoded output, not per-call garbage
		tx := make([]int32, 0, len(row))
		for a, v := range row {
			if IsMissing(v) {
				continue
			}
			id := space.ItemID(a, int(v))
			tx = append(tx, int32(id))
			b.Columns[id].Set(i)
		}
		slices.Sort(tx)
		b.Rows[i] = tx
	}
	b.ClassMasks = make([]*bitset.Bitset, len(d.Classes))
	for c := range b.ClassMasks {
		b.ClassMasks[c] = bitset.New(n)
	}
	for i, y := range b.Labels {
		b.ClassMasks[y].Set(i)
	}
	return b, nil
}

// Subset returns the binary encoding restricted to the given rows.
// Item space and class list are shared; coverage structures are rebuilt.
func (b *Binary) Subset(rows []int) *Binary {
	n := len(rows)
	sub := &Binary{
		Space:   b.Space,
		Name:    b.Name,
		Classes: b.Classes,
		Rows:    make([][]int32, n),
		Labels:  make([]int, n),
		Columns: make([]*bitset.Bitset, b.NumItems()),
	}
	for i := range sub.Columns {
		sub.Columns[i] = bitset.New(n)
	}
	for i, r := range rows {
		sub.Rows[i] = b.Rows[r]
		sub.Labels[i] = b.Labels[r]
		for _, it := range b.Rows[r] {
			sub.Columns[it].Set(i)
		}
	}
	sub.ClassMasks = make([]*bitset.Bitset, len(b.Classes))
	for c := range sub.ClassMasks {
		sub.ClassMasks[c] = bitset.New(n)
	}
	for i, y := range sub.Labels {
		sub.ClassMasks[y].Set(i)
	}
	return sub
}

// HasItem reports whether row i contains the given item, via binary
// search over the sorted transaction.
func (b *Binary) HasItem(row int, item int32) bool {
	tx := b.Rows[row]
	lo, hi := 0, len(tx)
	for lo < hi {
		mid := (lo + hi) / 2
		if tx[mid] < item {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(tx) && tx[lo] == item
}

// HasPattern reports whether row i contains every item of the (sorted)
// pattern.
func (b *Binary) HasPattern(row int, items []int32) bool {
	for _, it := range items {
		if !b.HasItem(row, it) {
			return false
		}
	}
	return true
}

// Cover returns the coverage bitset of a (sorted) itemset: rows that
// contain every item. A nil or empty pattern covers every row.
func (b *Binary) Cover(items []int32) *bitset.Bitset {
	cov := bitset.New(b.NumRows())
	if len(items) == 0 {
		cov.SetAll()
		return cov
	}
	cov.CopyFrom(b.Columns[items[0]])
	for _, it := range items[1:] {
		cov.And(b.Columns[it])
	}
	return cov
}
