package dataset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// tiny builds a small fully categorical dataset used across tests:
// attrs: color {red,green}, size {s,m,l}; classes {yes,no}.
func tiny() *Dataset {
	return &Dataset{
		Name: "tiny",
		Attrs: []Attribute{
			{Name: "color", Kind: Categorical, Values: []string{"red", "green"}},
			{Name: "size", Kind: Categorical, Values: []string{"s", "m", "l"}},
		},
		Classes: []string{"yes", "no"},
		Rows: [][]float64{
			{0, 0}, // red,s
			{0, 1}, // red,m
			{1, 2}, // green,l
			{1, 0}, // green,s
			{0, Missing},
		},
		Labels: []int{0, 0, 1, 1, 0},
	}
}

func TestValidateOK(t *testing.T) {
	if err := tiny().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadLabel(t *testing.T) {
	d := tiny()
	d.Labels[0] = 5
	if err := d.Validate(); err == nil {
		t.Fatal("expected error for out-of-range label")
	}
}

func TestValidateCatchesBadCategory(t *testing.T) {
	d := tiny()
	d.Rows[0][1] = 7
	if err := d.Validate(); err == nil {
		t.Fatal("expected error for out-of-range category")
	}
	d = tiny()
	d.Rows[0][1] = 0.5
	if err := d.Validate(); err == nil {
		t.Fatal("expected error for non-integer category")
	}
}

func TestValidateCatchesRaggedRows(t *testing.T) {
	d := tiny()
	d.Rows[2] = d.Rows[2][:1]
	if err := d.Validate(); err == nil {
		t.Fatal("expected error for ragged row")
	}
}

func TestClassCounts(t *testing.T) {
	counts := tiny().ClassCounts()
	if counts[0] != 3 || counts[1] != 2 {
		t.Fatalf("ClassCounts = %v, want [3 2]", counts)
	}
}

func TestSubset(t *testing.T) {
	sub := tiny().Subset([]int{2, 0})
	if sub.NumRows() != 2 {
		t.Fatalf("NumRows = %d", sub.NumRows())
	}
	if sub.Labels[0] != 1 || sub.Labels[1] != 0 {
		t.Fatalf("labels = %v", sub.Labels)
	}
	if sub.Rows[0][1] != 2 {
		t.Fatalf("row 0 = %v", sub.Rows[0])
	}
}

func TestNewSpace(t *testing.T) {
	s, err := NewSpace(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if s.NumItems() != 5 {
		t.Fatalf("NumItems = %d, want 5", s.NumItems())
	}
	if got := s.ItemID(1, 2); got != 4 {
		t.Fatalf("ItemID(1,2) = %d, want 4", got)
	}
	if got := s.ItemName(0); got != "color=red" {
		t.Fatalf("ItemName(0) = %q", got)
	}
}

func TestNewSpaceRejectsNumeric(t *testing.T) {
	d := tiny()
	d.Attrs[0].Kind = Numeric
	d.Attrs[0].Values = nil
	if _, err := NewSpace(d); err == nil {
		t.Fatal("expected error for numeric attribute")
	}
}

func TestEncode(t *testing.T) {
	b, err := Encode(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if b.NumRows() != 5 || b.NumItems() != 5 || b.NumClasses() != 2 {
		t.Fatalf("shape = (%d,%d,%d)", b.NumRows(), b.NumItems(), b.NumClasses())
	}
	// Row 0 is red,s → items 0 (color=red) and 2 (size=s).
	if len(b.Rows[0]) != 2 || b.Rows[0][0] != 0 || b.Rows[0][1] != 2 {
		t.Fatalf("row 0 = %v", b.Rows[0])
	}
	// Row 4 has a missing size → only the color item.
	if len(b.Rows[4]) != 1 || b.Rows[4][0] != 0 {
		t.Fatalf("row 4 = %v", b.Rows[4])
	}
	// Column for color=red covers rows 0,1,4.
	if got := b.Columns[0].Indices(); len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 4 {
		t.Fatalf("column 0 = %v", got)
	}
	// Class masks partition the rows.
	if b.ClassMasks[0].Count()+b.ClassMasks[1].Count() != 5 {
		t.Fatal("class masks do not partition rows")
	}
	if b.ClassMasks[0].AndCount(b.ClassMasks[1]) != 0 {
		t.Fatal("class masks overlap")
	}
}

func TestHasItemHasPattern(t *testing.T) {
	b, _ := Encode(tiny())
	if !b.HasItem(0, 0) || b.HasItem(0, 1) || !b.HasItem(0, 2) {
		t.Fatal("HasItem wrong on row 0")
	}
	if !b.HasPattern(0, []int32{0, 2}) {
		t.Fatal("HasPattern {0,2} should hold on row 0")
	}
	if b.HasPattern(0, []int32{0, 3}) {
		t.Fatal("HasPattern {0,3} should not hold on row 0")
	}
	if !b.HasPattern(0, nil) {
		t.Fatal("empty pattern should hold everywhere")
	}
}

func TestCover(t *testing.T) {
	b, _ := Encode(tiny())
	// color=red ∧ size=m → row 1 only.
	cov := b.Cover([]int32{0, 3})
	if got := cov.Indices(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("cover = %v, want [1]", got)
	}
	if got := b.Cover(nil).Count(); got != 5 {
		t.Fatalf("empty cover = %d rows, want 5", got)
	}
}

func TestBinarySubset(t *testing.T) {
	b, _ := Encode(tiny())
	sub := b.Subset([]int{1, 2, 4})
	if sub.NumRows() != 3 {
		t.Fatalf("NumRows = %d", sub.NumRows())
	}
	// color=red now covers local rows 0 (orig 1) and 2 (orig 4).
	if got := sub.Columns[0].Indices(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("subset column 0 = %v", got)
	}
	if sub.Labels[1] != 1 {
		t.Fatalf("subset labels = %v", sub.Labels)
	}
	if sub.ClassMasks[0].Count() != 2 || sub.ClassMasks[1].Count() != 1 {
		t.Fatal("subset class masks wrong")
	}
}

func TestQuickCoverMatchesHasPattern(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDataset(r, 40, 4, 3)
		b, err := Encode(d)
		if err != nil {
			return false
		}
		// Random pattern of up to 3 items.
		k := 1 + r.Intn(3)
		items := map[int32]bool{}
		for len(items) < k {
			items[int32(r.Intn(b.NumItems()))] = true
		}
		pat := make([]int32, 0, k)
		for it := range items {
			pat = append(pat, it)
		}
		sortInt32(pat)
		cov := b.Cover(pat)
		for i := 0; i < b.NumRows(); i++ {
			if cov.Get(i) != b.HasPattern(i, pat) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func sortInt32(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// randomDataset builds a random fully categorical dataset for property
// tests.
func randomDataset(r *rand.Rand, n, attrs, classes int) *Dataset {
	d := &Dataset{Name: "rand", Classes: make([]string, classes)}
	for c := range d.Classes {
		d.Classes[c] = string(rune('A' + c))
	}
	for a := 0; a < attrs; a++ {
		vals := 2 + r.Intn(3)
		attr := Attribute{Name: string(rune('a' + a)), Kind: Categorical}
		for v := 0; v < vals; v++ {
			attr.Values = append(attr.Values, string(rune('0'+v)))
		}
		d.Attrs = append(d.Attrs, attr)
	}
	for i := 0; i < n; i++ {
		row := make([]float64, attrs)
		for a := range row {
			if r.Intn(10) == 0 {
				row[a] = Missing
			} else {
				row[a] = float64(r.Intn(len(d.Attrs[a].Values)))
			}
		}
		d.Rows = append(d.Rows, row)
		d.Labels = append(d.Labels, r.Intn(classes))
	}
	return d
}
