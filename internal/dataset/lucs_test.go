package dataset

import (
	"bytes"
	"strings"
	"testing"
)

const sampleLUCS = `1 3 5 17
2 3 6 18
1 4 5 17
2 4 6 18
`

func TestReadLUCS(t *testing.T) {
	d, err := ReadLUCS(strings.NewReader(sampleLUCS), "toy")
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRows() != 4 || d.NumClasses() != 2 {
		t.Fatalf("shape (%d, %d)", d.NumRows(), d.NumClasses())
	}
	if d.NumAttrs() != 6 {
		t.Fatalf("attrs = %d, want 6 (max body item)", d.NumAttrs())
	}
	// Binary encoding must reproduce the original transactions.
	b, err := Encode(d)
	if err != nil {
		t.Fatal(err)
	}
	if b.NumItems() != 6 {
		t.Fatalf("items = %d, want 6", b.NumItems())
	}
	// Row 0 was items {1,3,5} → 0-based {0,2,4}.
	if len(b.Rows[0]) != 3 || b.Rows[0][0] != 0 || b.Rows[0][1] != 2 || b.Rows[0][2] != 4 {
		t.Fatalf("row 0 = %v", b.Rows[0])
	}
	if d.Labels[0] != 0 || d.Labels[1] != 1 {
		t.Fatalf("labels = %v", d.Labels[:2])
	}
}

func TestReadLUCSErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"single item":    "17\n",
		"non-numeric":    "1 x 17\n",
		"zero item":      "0 17\n",
		"not ascending":  "3 1 17\n",
		"class overlaps": "1 2 3\n1 2 4\n2 3 4\n", // class item 3 also appears as body item
	}
	for name, data := range cases {
		if _, err := ReadLUCS(strings.NewReader(data), name); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestLUCSRoundTrip(t *testing.T) {
	d, err := ReadLUCS(strings.NewReader(sampleLUCS), "toy")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteLUCS(&buf, d); err != nil {
		t.Fatal(err)
	}
	d2, err := ReadLUCS(&buf, "toy2")
	if err != nil {
		t.Fatalf("round trip: %v\n%s", err, buf.String())
	}
	if d2.NumRows() != d.NumRows() || d2.NumClasses() != d.NumClasses() {
		t.Fatal("round trip changed shape")
	}
	b1, _ := Encode(d)
	b2, _ := Encode(d2)
	for i := range b1.Rows {
		if len(b1.Rows[i]) != len(b2.Rows[i]) {
			t.Fatalf("row %d changed", i)
		}
		for j := range b1.Rows[i] {
			if b1.Rows[i][j] != b2.Rows[i][j] {
				t.Fatalf("row %d item %d changed", i, j)
			}
		}
		if d.Labels[i] != d2.Labels[i] {
			t.Fatalf("row %d label changed", i)
		}
	}
}

func TestWriteLUCSRejectsGeneralDatasets(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteLUCS(&buf, tiny()); err == nil {
		t.Fatal("multi-valued attributes should be rejected")
	}
}
