package dataset

import (
	"bytes"
	"strings"
	"testing"
)

const sampleARFF = `% UCI-style sample
@relation 'weather'

@attribute outlook {sunny, overcast, rainy}
@attribute temperature numeric
@attribute 'wind speed' real
@attribute play {yes, no}

@data
sunny, 30.5, 1.2, no
overcast, 21, ?, yes
rainy, ?, 3.5, yes
sunny, 25, 0.1, no
`

func TestReadARFF(t *testing.T) {
	d, err := ReadARFF(strings.NewReader(sampleARFF))
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "weather" {
		t.Fatalf("name = %q", d.Name)
	}
	if d.NumRows() != 4 || d.NumAttrs() != 3 || d.NumClasses() != 2 {
		t.Fatalf("shape (%d,%d,%d)", d.NumRows(), d.NumAttrs(), d.NumClasses())
	}
	if d.Attrs[0].Kind != Categorical || len(d.Attrs[0].Values) != 3 {
		t.Fatalf("outlook attr = %+v", d.Attrs[0])
	}
	if d.Attrs[1].Kind != Numeric || d.Attrs[2].Kind != Numeric {
		t.Fatal("numeric attrs misparsed")
	}
	if d.Attrs[2].Name != "wind speed" {
		t.Fatalf("quoted name = %q", d.Attrs[2].Name)
	}
	if !IsMissing(d.Rows[1][2]) || !IsMissing(d.Rows[2][1]) {
		t.Fatal("missing cells lost")
	}
	if d.Rows[0][1] != 30.5 {
		t.Fatalf("numeric cell = %v", d.Rows[0][1])
	}
	if d.Classes[d.Labels[0]] != "no" || d.Classes[d.Labels[1]] != "yes" {
		t.Fatal("labels misparsed")
	}
}

func TestReadARFFErrors(t *testing.T) {
	cases := map[string]string{
		"no data section":  "@relation x\n@attribute a {0,1}\n@attribute class {y,n}\n",
		"no rows":          "@relation x\n@attribute a {0,1}\n@attribute class {y,n}\n@data\n",
		"numeric class":    "@relation x\n@attribute a {0,1}\n@attribute class numeric\n@data\n0,1\n",
		"bad field count":  "@relation x\n@attribute a {0,1}\n@attribute class {y,n}\n@data\n0\n",
		"undeclared value": "@relation x\n@attribute a {0,1}\n@attribute class {y,n}\n@data\n7,y\n",
		"undeclared class": "@relation x\n@attribute a {0,1}\n@attribute class {y,n}\n@data\n0,zzz\n",
		"missing label":    "@relation x\n@attribute a {0,1}\n@attribute class {y,n}\n@data\n0,?\n",
		"bad declaration":  "@relation x\n@bogus\n",
		"unsupported type": "@relation x\n@attribute a string\n@attribute class {y,n}\n@data\nfoo,y\n",
		"one attribute":    "@relation x\n@attribute class {y,n}\n@data\ny\n",
	}
	for name, data := range cases {
		if _, err := ReadARFF(strings.NewReader(data)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestARFFRoundTrip(t *testing.T) {
	d, err := ReadARFF(strings.NewReader(sampleARFF))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteARFF(&buf, d); err != nil {
		t.Fatal(err)
	}
	d2, err := ReadARFF(&buf)
	if err != nil {
		t.Fatalf("round trip parse: %v\n%s", err, buf.String())
	}
	if d2.NumRows() != d.NumRows() || d2.NumAttrs() != d.NumAttrs() || d2.NumClasses() != d.NumClasses() {
		t.Fatal("round trip changed shape")
	}
	for i := range d.Rows {
		if d.Labels[i] != d2.Labels[i] {
			t.Fatalf("row %d label changed", i)
		}
		for j := range d.Rows[i] {
			a, b := d.Rows[i][j], d2.Rows[i][j]
			if IsMissing(a) != IsMissing(b) {
				t.Fatalf("row %d col %d missing flag changed", i, j)
			}
			if !IsMissing(a) && a != b {
				t.Fatalf("row %d col %d: %v != %v", i, j, a, b)
			}
		}
	}
}

func TestARFFCommentsAndBlanksIgnored(t *testing.T) {
	src := "% header comment\n\n@relation x\n% another\n@attribute a {0,1}\n@attribute class {y,n}\n\n@data\n% data comment\n0,y\n\n1,n\n"
	d, err := ReadARFF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", d.NumRows())
	}
}
