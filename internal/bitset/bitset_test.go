package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewIsEmpty(t *testing.T) {
	b := New(130)
	if b.Len() != 130 {
		t.Fatalf("Len = %d, want 130", b.Len())
	}
	if b.Count() != 0 {
		t.Fatalf("Count = %d, want 0", b.Count())
	}
	if b.Any() {
		t.Fatal("Any() on empty bitset")
	}
}

func TestSetGetClear(t *testing.T) {
	b := New(200)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 199} {
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("Get(%d) false after Set", i)
		}
	}
	if got := b.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	b.Clear(64)
	if b.Get(64) {
		t.Fatal("Get(64) true after Clear")
	}
	if got := b.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
}

func TestSetIdempotent(t *testing.T) {
	b := New(10)
	b.Set(3)
	b.Set(3)
	if b.Count() != 1 {
		t.Fatalf("Count = %d, want 1", b.Count())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	b := New(10)
	for _, i := range []int{-1, 10, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Set(%d) did not panic", i)
				}
			}()
			b.Set(i)
		}()
	}
}

func TestNegativeSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestFromIndices(t *testing.T) {
	b := FromIndices(100, []int{5, 70, 99})
	if b.Count() != 3 || !b.Get(5) || !b.Get(70) || !b.Get(99) {
		t.Fatalf("FromIndices wrong contents: %v", b.Indices())
	}
}

func TestAndOrAndNot(t *testing.T) {
	a := FromIndices(70, []int{1, 2, 3, 65})
	b := FromIndices(70, []int{2, 3, 4, 66})

	and := a.Clone()
	and.And(b)
	if got := and.Indices(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("And = %v, want [2 3]", got)
	}

	or := a.Clone()
	or.Or(b)
	if got := or.Count(); got != 6 {
		t.Fatalf("Or count = %d, want 6", got)
	}

	diff := a.Clone()
	diff.AndNot(b)
	if got := diff.Indices(); len(got) != 2 || got[0] != 1 || got[1] != 65 {
		t.Fatalf("AndNot = %v, want [1 65]", got)
	}
}

func TestAndCountOrCount(t *testing.T) {
	a := FromIndices(128, []int{0, 10, 64, 100})
	b := FromIndices(128, []int{10, 64, 127})
	if got := a.AndCount(b); got != 2 {
		t.Fatalf("AndCount = %d, want 2", got)
	}
	if got := a.OrCount(b); got != 5 {
		t.Fatalf("OrCount = %d, want 5", got)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	a, b := New(10), New(11)
	defer func() {
		if recover() == nil {
			t.Fatal("And on mismatched lengths did not panic")
		}
	}()
	a.And(b)
}

func TestIsSubsetOf(t *testing.T) {
	a := FromIndices(100, []int{3, 50})
	b := FromIndices(100, []int{3, 50, 70})
	if !a.IsSubsetOf(b) {
		t.Fatal("a should be subset of b")
	}
	if b.IsSubsetOf(a) {
		t.Fatal("b should not be subset of a")
	}
	if !a.IsSubsetOf(a) {
		t.Fatal("a should be subset of itself")
	}
}

func TestEqual(t *testing.T) {
	a := FromIndices(90, []int{1, 89})
	b := FromIndices(90, []int{1, 89})
	c := FromIndices(90, []int{1})
	d := FromIndices(91, []int{1, 89})
	if !a.Equal(b) {
		t.Fatal("a != b")
	}
	if a.Equal(c) {
		t.Fatal("a == c")
	}
	if a.Equal(d) {
		t.Fatal("a == d despite length mismatch")
	}
}

func TestSetAllRespectsLength(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 128, 129} {
		b := New(n)
		b.SetAll()
		if got := b.Count(); got != n {
			t.Fatalf("SetAll on n=%d: Count = %d", n, got)
		}
	}
}

func TestClearAll(t *testing.T) {
	b := FromIndices(100, []int{1, 2, 3})
	b.ClearAll()
	if b.Any() {
		t.Fatal("Any() after ClearAll")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	a := FromIndices(64, []int{7})
	c := a.Clone()
	c.Set(8)
	if a.Get(8) {
		t.Fatal("mutating clone changed original")
	}
}

func TestCopyFrom(t *testing.T) {
	a := FromIndices(64, []int{7})
	b := New(64)
	b.CopyFrom(a)
	if !b.Equal(a) {
		t.Fatal("CopyFrom produced unequal bitset")
	}
}

func TestIndicesAndForEachOrder(t *testing.T) {
	want := []int{0, 5, 63, 64, 127, 128}
	b := FromIndices(200, want)
	got := b.Indices()
	if len(got) != len(want) {
		t.Fatalf("Indices = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Indices[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestNextSet(t *testing.T) {
	b := FromIndices(200, []int{5, 64, 130})
	cases := []struct{ from, want int }{
		{0, 5}, {5, 5}, {6, 64}, {64, 64}, {65, 130}, {131, -1}, {-5, 5}, {500, -1},
	}
	for _, c := range cases {
		if got := b.NextSet(c.from); got != c.want {
			t.Errorf("NextSet(%d) = %d, want %d", c.from, got, c.want)
		}
	}
}

func TestString(t *testing.T) {
	b := FromIndices(5, []int{0, 3})
	if got := b.String(); got != "10010" {
		t.Fatalf("String = %q, want 10010", got)
	}
}

// randomPair builds two random same-length bitsets plus the reference
// boolean-slice model, used by the property tests below.
func randomPair(r *rand.Rand) (a, b *Bitset, am, bm []bool) {
	n := 1 + r.Intn(300)
	a, b = New(n), New(n)
	am, bm = make([]bool, n), make([]bool, n)
	for i := 0; i < n; i++ {
		if r.Intn(2) == 0 {
			a.Set(i)
			am[i] = true
		}
		if r.Intn(2) == 0 {
			b.Set(i)
			bm[i] = true
		}
	}
	return
}

func TestQuickAndMatchesModel(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, am, bm := randomPair(r)
		want := 0
		for i := range am {
			if am[i] && bm[i] {
				want++
			}
		}
		if a.AndCount(b) != want {
			return false
		}
		a.And(b)
		return a.Count() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDeMorgan(t *testing.T) {
	// |a ∪ b| = |a| + |b| − |a ∩ b|
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, _, _ := randomPair(r)
		return a.OrCount(b) == a.Count()+b.Count()-a.AndCount(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSubsetAfterAnd(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, _, _ := randomPair(r)
		c := a.Clone()
		c.And(b)
		return c.IsSubsetOf(a) && c.IsSubsetOf(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIndicesRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, _, _, _ := randomPair(r)
		back := FromIndices(a.Len(), a.Indices())
		return back.Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAndCount(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x, y := New(100000), New(100000)
	for i := 0; i < 100000; i++ {
		if r.Intn(2) == 0 {
			x.Set(i)
		}
		if r.Intn(2) == 0 {
			y.Set(i)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.AndCount(y)
	}
}
