// Package bitset provides a dense, fixed-capacity bitset used throughout
// the library to represent row-coverage sets: for a pattern α over a
// dataset D, the bitset holds one bit per instance, set iff the instance
// contains α. Mining, discriminative measures, and MMRFS all reduce to
// cheap And/Count operations on these sets.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Bitset is a dense bitset with a fixed logical length set at creation.
// The zero value is an empty bitset of length 0; use New for a sized one.
type Bitset struct {
	words []uint64
	n     int // logical number of bits
}

// New returns a Bitset able to hold n bits, all cleared.
func New(n int) *Bitset {
	if n < 0 {
		//vet:ignore hotalloc panic message formatted only on the failure path
		panic(fmt.Sprintf("bitset: negative size %d", n))
	}
	return &Bitset{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// FromIndices builds a bitset of length n with the given bits set.
func FromIndices(n int, idx []int) *Bitset {
	b := New(n)
	for _, i := range idx {
		b.Set(i)
	}
	return b
}

// Len returns the logical number of bits.
func (b *Bitset) Len() int { return b.n }

// Set sets bit i.
func (b *Bitset) Set(i int) {
	b.check(i)
	b.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Clear clears bit i.
func (b *Bitset) Clear(i int) {
	b.check(i)
	b.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Get reports whether bit i is set.
func (b *Bitset) Get(i int) bool {
	b.check(i)
	return b.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

func (b *Bitset) check(i int) {
	if i < 0 || i >= b.n {
		//vet:ignore hotalloc panic message formatted only on the failure path
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, b.n))
	}
}

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether at least one bit is set.
func (b *Bitset) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Clone returns a deep copy.
func (b *Bitset) Clone() *Bitset {
	c := &Bitset{words: make([]uint64, len(b.words)), n: b.n}
	copy(c.words, b.words)
	return c
}

// CopyFrom overwrites b with the contents of src. Lengths must match.
func (b *Bitset) CopyFrom(src *Bitset) {
	b.mustMatch(src)
	copy(b.words, src.words)
}

func (b *Bitset) mustMatch(o *Bitset) {
	if b.n != o.n {
		panic(fmt.Sprintf("bitset: length mismatch %d vs %d", b.n, o.n))
	}
}

// And sets b = b ∩ o.
func (b *Bitset) And(o *Bitset) {
	b.mustMatch(o)
	for i := range b.words {
		b.words[i] &= o.words[i]
	}
}

// Or sets b = b ∪ o.
func (b *Bitset) Or(o *Bitset) {
	b.mustMatch(o)
	for i := range b.words {
		b.words[i] |= o.words[i]
	}
}

// AndNot sets b = b \ o.
func (b *Bitset) AndNot(o *Bitset) {
	b.mustMatch(o)
	for i := range b.words {
		b.words[i] &^= o.words[i]
	}
}

// AndCount returns |b ∩ o| without allocating.
func (b *Bitset) AndCount(o *Bitset) int {
	b.mustMatch(o)
	c := 0
	for i := range b.words {
		c += bits.OnesCount64(b.words[i] & o.words[i])
	}
	return c
}

// OrCount returns |b ∪ o| without allocating.
func (b *Bitset) OrCount(o *Bitset) int {
	b.mustMatch(o)
	c := 0
	for i := range b.words {
		c += bits.OnesCount64(b.words[i] | o.words[i])
	}
	return c
}

// IsSubsetOf reports whether every set bit of b is also set in o.
func (b *Bitset) IsSubsetOf(o *Bitset) bool {
	b.mustMatch(o)
	for i := range b.words {
		if b.words[i]&^o.words[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether b and o have identical length and contents.
func (b *Bitset) Equal(o *Bitset) bool {
	if b.n != o.n {
		return false
	}
	for i := range b.words {
		if b.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// SetAll sets every bit in [0, Len).
func (b *Bitset) SetAll() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.trim()
}

// ClearAll clears every bit.
func (b *Bitset) ClearAll() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// trim zeroes the bits above the logical length so Count stays exact.
func (b *Bitset) trim() {
	if rem := b.n % wordBits; rem != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << uint(rem)) - 1
	}
}

// Indices returns the positions of all set bits in ascending order.
func (b *Bitset) Indices() []int {
	out := make([]int, 0, b.Count())
	b.ForEach(func(i int) { out = append(out, i) })
	return out
}

// ForEach calls fn for each set bit in ascending order.
func (b *Bitset) ForEach(fn func(i int)) {
	for wi, w := range b.words {
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			fn(wi*wordBits + tz)
			w &= w - 1
		}
	}
}

// NextSet returns the index of the first set bit at or after i, or -1.
func (b *Bitset) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= b.n {
		return -1
	}
	wi := i / wordBits
	w := b.words[wi] >> uint(i%wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(b.words); wi++ {
		if b.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(b.words[wi])
		}
	}
	return -1
}

// String renders the bitset as a 0/1 string, bit 0 first. Intended for
// tests and debugging on small sets.
func (b *Bitset) String() string {
	var sb strings.Builder
	sb.Grow(b.n)
	for i := 0; i < b.n; i++ {
		if b.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}
