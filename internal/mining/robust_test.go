package mining

import (
	"context"
	"errors"
	"testing"
	"time"

	"dfpc/internal/dataset"
	"dfpc/internal/guard"
	"dfpc/internal/obs"
)

// starDS builds a one-class dataset of n rows where row i holds a
// unique value of attribute "u" plus the shared single-valued attribute
// "s". At absolute support 1 the all-pattern pool has 2n+1 members; at
// absolute support >= 2 only {s=1} survives — so a geometric min_sup
// escalation collapses the pool below any small budget.
func starDS(n int) *dataset.Binary {
	values := make([]string, n)
	for i := range values {
		values[i] = string(rune('a' + i%26))
		if i >= 26 {
			values[i] += string(rune('0' + i/26))
		}
	}
	d := &dataset.Dataset{
		Name: "star",
		Attrs: []dataset.Attribute{
			{Name: "u", Kind: dataset.Categorical, Values: values},
			{Name: "s", Kind: dataset.Categorical, Values: []string{"1"}},
		},
		Classes: []string{"only"},
	}
	for i := 0; i < n; i++ {
		d.Rows = append(d.Rows, []float64{float64(i), 0})
		d.Labels = append(d.Labels, 0)
	}
	b, err := dataset.Encode(d)
	if err != nil {
		panic(err)
	}
	return b
}

// denseTx builds nTx identical transactions over nItems items, so
// all-pattern mining at absolute support 1 enumerates 2^nItems − 1
// itemsets — long enough for a mid-run cancellation to land.
func denseTx(nTx, nItems int) [][]int32 {
	row := make([]int32, nItems)
	for i := range row {
		row[i] = int32(i)
	}
	tx := make([][]int32, nTx)
	for i := range tx {
		tx[i] = row
	}
	return tx
}

func TestMinePerClassPreCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := MinePerClass(twoClassDS(), PerClassOptions{MinSupport: 0.5, Ctx: ctx})
	if !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("err = %v, want guard.ErrCanceled", err)
	}
}

func TestMineCanceledMidRecursion(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(time.Millisecond)
		cancel()
	}()
	// 2^18 − 1 itemsets takes far longer than the 1ms fuse; the
	// amortized guard check inside the recursion must observe the
	// cancellation and abort.
	_, err := FPGrowth(denseTx(2, 18), Options{MinSupport: 1, Ctx: ctx})
	if !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("err = %v, want guard.ErrCanceled", err)
	}
}

func TestMineDeadlineExceeded(t *testing.T) {
	_, err := MinePerClass(twoClassDS(), PerClassOptions{
		MinSupport: 0.5,
		Deadline:   time.Now().Add(-time.Second),
	})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if !errors.Is(err, guard.ErrDeadline) {
		t.Fatalf("err = %v does not wrap guard.ErrDeadline", err)
	}
}

func TestAdaptiveEscalatesAndSucceeds(t *testing.T) {
	b := starDS(8)
	o := obs.New()
	opt := PerClassOptions{MinSupport: 0.1, Closed: false, MaxPatterns: 5, Obs: o}
	ps, degs, usedSup, err := MinePerClassAdaptive(b, opt, Backoff{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 1 {
		t.Fatalf("patterns = %d, want 1 (only the shared item survives)", len(ps))
	}
	if len(degs) != 1 {
		t.Fatalf("degradations = %d, want 1", len(degs))
	}
	if degs[0].FromMinSupport != 0.1 || degs[0].ToMinSupport != 0.2 {
		t.Fatalf("degradation = %+v, want 0.1 -> 0.2", degs[0])
	}
	if usedSup != 0.2 {
		t.Fatalf("usedSup = %v, want 0.2", usedSup)
	}
	if got := o.Counter("mine.degradations").Value(); got != 1 {
		t.Fatalf("mine.degradations counter = %d, want 1", got)
	}
}

func TestAdaptiveExhaustsRetries(t *testing.T) {
	// twoClassDS keeps > 2 patterns at every support up to the 0.5 cap,
	// so a budget of 2 can never fit and the escalation must give up.
	b := twoClassDS()
	opt := PerClassOptions{MinSupport: 0.1, Closed: false, MaxPatterns: 2}
	_, _, _, err := MinePerClassAdaptive(b, opt, Backoff{})
	if !errors.Is(err, guard.ErrDegraded) {
		t.Fatalf("err = %v, want guard.ErrDegraded", err)
	}
	if !errors.Is(err, ErrPatternBudget) {
		t.Fatalf("err = %v does not also wrap ErrPatternBudget", err)
	}
}

func TestAdaptivePassesNonBudgetErrorsThrough(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := PerClassOptions{MinSupport: 0.5, Ctx: ctx}
	_, degs, _, err := MinePerClassAdaptive(twoClassDS(), opt, Backoff{})
	if !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("err = %v, want guard.ErrCanceled", err)
	}
	if errors.Is(err, guard.ErrDegraded) || len(degs) != 0 {
		t.Fatalf("cancellation must not be reported as degradation (err %v, degs %v)", err, degs)
	}
}
