package mining

import (
	"fmt"

	"dfpc/internal/obs"
)

// Per-depth search-space telemetry. Each miner classifies every visited
// candidate itemset by depth (its item count) and outcome — considered,
// emitted, or pruned (and why) — so a live /metrics scrape or a
// RunReport shows the shape of the enumeration the way the paper's
// Figures 1–3 characterize it: how the search fans out with length and
// where the pruning rules actually bite.
//
// Counter names are mine.depth<DD>.<kind> with DD zero-padded so
// report listings sort by depth; depth is clamped to maxDepthBucket
// (the last bucket aggregates everything deeper) to bound the metric
// namespace on adversarial datasets.

// maxDepthBucket caps the per-depth counter cardinality; depth ≥ 16
// lands in bucket 16.
const maxDepthBucket = 16

// depthCounters is one outcome's per-depth counter row, with handles
// cached so the hot enumeration path pays one nil check plus one
// atomic. A nil *depthCounters (observability off) is a no-op. Each
// miner run owns its own instance; the underlying counters live in the
// observer's shared registry, so concurrent per-class runs still sum
// into exact totals.
type depthCounters struct {
	o    *obs.Observer
	kind string
	c    [maxDepthBucket]*obs.Counter
}

func newDepthCounters(o *obs.Observer, kind string) *depthCounters {
	if o == nil {
		return nil
	}
	return &depthCounters{o: o, kind: kind}
}

// inc counts one candidate at the given depth (clamped to [1,
// maxDepthBucket]).
func (d *depthCounters) inc(depth int) {
	d.add(depth, 1)
}

// add counts n candidates at the given depth.
func (d *depthCounters) add(depth int, n int64) {
	if d == nil {
		return
	}
	i := depth
	if i < 1 {
		i = 1
	}
	if i > maxDepthBucket {
		i = maxDepthBucket
	}
	i--
	c := d.c[i]
	if c == nil {
		c = d.o.Counter(fmt.Sprintf("mine.depth%02d.%s", i+1, d.kind))
		d.c[i] = c
	}
	c.Add(n)
}

// searchSpace bundles the outcome rows a miner records. The zero value
// of every field (observability off) makes each call a nil check.
type searchSpace struct {
	// candidates counts every itemset the miner materialized and
	// considered at a depth, before any accept/prune decision.
	candidates *depthCounters
	// emitted counts candidates that became output patterns.
	emitted *depthCounters
	// subsumed counts candidates pruned by closed-pattern subsumption
	// (FPClose only); their entire subtrees are skipped.
	subsumed *depthCounters
	// infrequent counts candidates pruned for failing min_sup (Eclat
	// tid-list intersections below threshold, Apriori candidates with an
	// infrequent subset or a failed support count).
	infrequent *depthCounters
	// budget counts candidates refused because MaxPatterns tripped.
	budget *depthCounters
}

func newSearchSpace(o *obs.Observer) searchSpace {
	if o == nil {
		return searchSpace{}
	}
	return searchSpace{
		candidates: newDepthCounters(o, "candidates"),
		emitted:    newDepthCounters(o, "emitted"),
		subsumed:   newDepthCounters(o, "pruned_subsumed"),
		infrequent: newDepthCounters(o, "pruned_infrequent"),
		budget:     newDepthCounters(o, "pruned_budget"),
	}
}
