package mining

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

// classicTx is the textbook FP-growth example (Han et al., SIGMOD'00),
// re-coded with items a=0 .. p=15.
func classicTx() [][]int32 {
	// f,a,c,d,g,i,m,p / a,b,c,f,l,m,o / b,f,h,j,o / b,c,k,s,p / a,f,c,e,l,p,m,n
	toIDs := func(s string) []int32 {
		var out []int32
		for _, r := range s {
			out = append(out, int32(r-'a'))
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	return [][]int32{
		toIDs("facdgimp"),
		toIDs("abcflmo"),
		toIDs("bfhjo"),
		toIDs("bcksp"),
		toIDs("afcelpmn"),
	}
}

// bruteForce enumerates every itemset over the items present in tx and
// returns those with support >= minSup. Exponential; only for tiny
// test inputs.
func bruteForce(tx [][]int32, minSup, maxLen int) []Pattern {
	itemSet := map[int32]bool{}
	for _, t := range tx {
		for _, it := range t {
			itemSet[it] = true
		}
	}
	var items []int32
	for it := range itemSet {
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })

	var out []Pattern
	var cur []int32
	var rec func(start int)
	rec = func(start int) {
		if len(cur) > 0 {
			sup := 0
			for _, t := range tx {
				if containsAll(t, cur) {
					sup++
				}
			}
			if sup < minSup {
				return // supersets can only be rarer
			}
			out = append(out, Pattern{Items: append([]int32(nil), cur...), Support: sup})
		}
		if maxLen > 0 && len(cur) >= maxLen {
			return
		}
		for i := start; i < len(items); i++ {
			cur = append(cur, items[i])
			rec(i + 1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
	return out
}

func patternsEqual(a, b []Pattern) bool {
	if len(a) != len(b) {
		return false
	}
	SortPatterns(a)
	SortPatterns(b)
	for i := range a {
		if a[i].Support != b[i].Support || len(a[i].Items) != len(b[i].Items) {
			return false
		}
		for j := range a[i].Items {
			if a[i].Items[j] != b[i].Items[j] {
				return false
			}
		}
	}
	return true
}

func randomTx(r *rand.Rand) [][]int32 {
	nTx := 5 + r.Intn(25)
	nItems := 4 + r.Intn(8)
	tx := make([][]int32, nTx)
	for i := range tx {
		var t []int32
		for it := int32(0); it < int32(nItems); it++ {
			if r.Intn(3) != 0 {
				t = append(t, it)
			}
		}
		tx[i] = t
	}
	return tx
}

func TestFPGrowthClassicExample(t *testing.T) {
	tx := classicTx()
	got, err := FPGrowth(tx, Options{MinSupport: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := bruteForce(tx, 3, 0)
	if !patternsEqual(got, want) {
		t.Fatalf("FPGrowth mismatch: got %d patterns, want %d\ngot: %v\nwant: %v",
			len(got), len(want), got, want)
	}
	// Spot-check the known frequent pair {c,m} with support 3
	// (c=2, m=12).
	found := false
	for _, p := range got {
		if len(p.Items) == 2 && p.Items[0] == 2 && p.Items[1] == 12 {
			found = p.Support == 3
		}
	}
	if !found {
		t.Fatal("pattern {c,m}:3 missing")
	}
}

func TestFPGrowthMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tx := randomTx(r)
		minSup := 1 + r.Intn(4)
		got, err := FPGrowth(tx, Options{MinSupport: minSup})
		if err != nil {
			return false
		}
		return patternsEqual(got, bruteForce(tx, minSup, 0))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFPGrowthMaxLen(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tx := randomTx(r)
		minSup := 1 + r.Intn(3)
		maxLen := 1 + r.Intn(3)
		got, err := FPGrowth(tx, Options{MinSupport: minSup, MaxLen: maxLen})
		if err != nil {
			return false
		}
		return patternsEqual(got, bruteForce(tx, minSup, maxLen))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAprioriMatchesFPGrowth(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tx := randomTx(r)
		minSup := 1 + r.Intn(4)
		ap, err1 := Apriori(tx, Options{MinSupport: minSup})
		fp, err2 := FPGrowth(tx, Options{MinSupport: minSup})
		if err1 != nil || err2 != nil {
			return false
		}
		return patternsEqual(ap, fp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFPCloseMatchesFilterClosed(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tx := randomTx(r)
		minSup := 1 + r.Intn(4)
		all, err := FPGrowth(tx, Options{MinSupport: minSup})
		if err != nil {
			return false
		}
		numItems := 0
		for _, t := range tx {
			for _, it := range t {
				if int(it) >= numItems {
					numItems = int(it) + 1
				}
			}
		}
		want := FilterClosed(all, numItems)
		got, err := FPClose(tx, Options{MinSupport: minSup})
		if err != nil {
			return false
		}
		return patternsEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestFPCloseClassicExample(t *testing.T) {
	tx := classicTx()
	got, err := FPClose(tx, Options{MinSupport: 3})
	if err != nil {
		t.Fatal(err)
	}
	all, _ := FPGrowth(tx, Options{MinSupport: 3})
	want := FilterClosed(all, 16)
	if !patternsEqual(got, want) {
		SortPatterns(got)
		SortPatterns(want)
		t.Fatalf("closed mismatch\ngot:  %v\nwant: %v", got, want)
	}
	if len(got) >= len(all) {
		t.Fatalf("closed (%d) should be fewer than all (%d)", len(got), len(all))
	}
}

func TestClosedCountNoLargerThanAll(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tx := randomTx(r)
		minSup := 1 + r.Intn(3)
		all, err1 := FPGrowth(tx, Options{MinSupport: minSup})
		closed, err2 := FPClose(tx, Options{MinSupport: minSup})
		if err1 != nil || err2 != nil {
			return false
		}
		return len(closed) <= len(all)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPatternBudget(t *testing.T) {
	tx := classicTx()
	got, err := FPGrowth(tx, Options{MinSupport: 1, MaxPatterns: 5})
	if !errors.Is(err, ErrPatternBudget) {
		t.Fatalf("err = %v, want ErrPatternBudget", err)
	}
	if len(got) != 5 {
		t.Fatalf("returned %d patterns, want 5", len(got))
	}
	if _, err := FPClose(tx, Options{MinSupport: 1, MaxPatterns: 3}); !errors.Is(err, ErrPatternBudget) {
		t.Fatalf("FPClose err = %v, want ErrPatternBudget", err)
	}
	if _, err := Apriori(tx, Options{MinSupport: 1, MaxPatterns: 3}); !errors.Is(err, ErrPatternBudget) {
		t.Fatalf("Apriori err = %v, want ErrPatternBudget", err)
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := FPGrowth(nil, Options{MinSupport: 0}); err == nil {
		t.Fatal("MinSupport=0 should error")
	}
	if _, err := FPClose(nil, Options{MinSupport: -1}); err == nil {
		t.Fatal("negative MinSupport should error")
	}
	if _, err := Apriori(nil, Options{MinSupport: 1, MaxLen: -1}); err == nil {
		t.Fatal("negative MaxLen should error")
	}
}

func TestEmptyTransactions(t *testing.T) {
	got, err := FPGrowth(nil, Options{MinSupport: 1})
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
	got, err = FPClose([][]int32{{}, {}}, Options{MinSupport: 1})
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestSinglePathTree(t *testing.T) {
	// Identical transactions produce a pure single-path tree.
	tx := [][]int32{{0, 1, 2}, {0, 1, 2}, {0, 1, 2}}
	all, err := FPGrowth(tx, Options{MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 7 { // 2^3 - 1 subsets
		t.Fatalf("all = %d patterns, want 7", len(all))
	}
	closed, err := FPClose(tx, Options{MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(closed) != 1 || closed[0].Len() != 3 || closed[0].Support != 3 {
		t.Fatalf("closed = %v, want [{0,1,2}:3]", closed)
	}
}

func TestSinglePathWithCountDrops(t *testing.T) {
	// Chain 0 ⊃ {0,1} ⊃ {0,1,2} with supports 4, 3, 2.
	tx := [][]int32{{0}, {0, 1}, {0, 1, 2}, {0, 1, 2}}
	closed, err := FPClose(tx, Options{MinSupport: 1})
	if err != nil {
		t.Fatal(err)
	}
	SortPatterns(closed)
	if len(closed) != 3 {
		t.Fatalf("closed = %v, want 3 patterns", closed)
	}
	if closed[0].Support != 4 || closed[0].Len() != 1 {
		t.Fatalf("closed[0] = %v, want {0}:4", closed[0])
	}
	if closed[2].Support != 2 || closed[2].Len() != 3 {
		t.Fatalf("closed[2] = %v, want {0,1,2}:2", closed[2])
	}
}

func TestFilterClosedReference(t *testing.T) {
	ps := []Pattern{
		{Items: []int32{0}, Support: 3},
		{Items: []int32{0, 1}, Support: 3}, // closes {0}
		{Items: []int32{1}, Support: 4},
		{Items: []int32{2}, Support: 3}, // same support as {0,1} but not subset
	}
	closed := FilterClosed(ps, 3)
	SortPatterns(closed)
	if len(closed) != 3 {
		t.Fatalf("closed = %v", closed)
	}
	for _, p := range closed {
		if p.Len() == 1 && p.Items[0] == 0 {
			t.Fatal("{0} should have been filtered as non-closed")
		}
	}
}

func TestPatternKeyDistinct(t *testing.T) {
	a := Pattern{Items: []int32{1, 2}}
	b := Pattern{Items: []int32{1, 3}}
	c := Pattern{Items: []int32{1, 2}}
	if a.Key() == b.Key() {
		t.Fatal("distinct itemsets share a key")
	}
	if a.Key() != c.Key() {
		t.Fatal("equal itemsets have different keys")
	}
}

func BenchmarkFPGrowthClassic(b *testing.B) {
	tx := classicTx()
	for i := 0; i < b.N; i++ {
		if _, err := FPGrowth(tx, Options{MinSupport: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFPCloseClassic(b *testing.B) {
	tx := classicTx()
	for i := 0; i < b.N; i++ {
		if _, err := FPClose(tx, Options{MinSupport: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMiningDeadline(t *testing.T) {
	// A deadline in the past aborts promptly with ErrDeadline (after at
	// most checkEvery emissions).
	tx := classicTx()
	past := time.Now().Add(-time.Second)
	for name, run := range map[string]func() error{
		"fpgrowth": func() error { _, err := FPGrowth(tx, Options{MinSupport: 1, Deadline: past}); return err },
		"fpclose":  func() error { _, err := FPClose(tx, Options{MinSupport: 1, Deadline: past}); return err },
		"eclat":    func() error { _, err := Eclat(tx, Options{MinSupport: 1, Deadline: past}); return err },
	} {
		err := run()
		// The classic example has fewer than checkEvery patterns, so the
		// deadline may never be polled; accept nil or ErrDeadline but
		// never a different failure.
		if err != nil && !errors.Is(err, ErrDeadline) {
			t.Fatalf("%s: err = %v", name, err)
		}
	}
	// A generous deadline changes nothing.
	got, err := FPGrowth(tx, Options{MinSupport: 2, Deadline: time.Now().Add(time.Hour)})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := FPGrowth(tx, Options{MinSupport: 2})
	if !patternsEqual(got, want) {
		t.Fatal("deadline run differs from plain run")
	}
}
