package mining

import (
	"errors"
	"reflect"
	"testing"

	"dfpc/internal/dataset"
	"dfpc/internal/parallel"
)

// twoClassDS builds a dataset where class 0 rows share pattern
// {a=0, b=0} and class 1 rows share {a=1, b=1}.
func twoClassDS() *dataset.Binary {
	d := &dataset.Dataset{
		Name: "two",
		Attrs: []dataset.Attribute{
			{Name: "a", Kind: dataset.Categorical, Values: []string{"0", "1"}},
			{Name: "b", Kind: dataset.Categorical, Values: []string{"0", "1"}},
			{Name: "c", Kind: dataset.Categorical, Values: []string{"0", "1"}},
		},
		Classes: []string{"neg", "pos"},
	}
	rows := [][]float64{
		{0, 0, 0}, {0, 0, 1}, {0, 0, 0}, {0, 0, 1}, // class 0
		{1, 1, 0}, {1, 1, 1}, {1, 1, 0}, {1, 1, 1}, // class 1
	}
	labels := []int{0, 0, 0, 0, 1, 1, 1, 1}
	d.Rows = rows
	d.Labels = labels
	b, err := dataset.Encode(d)
	if err != nil {
		panic(err)
	}
	return b
}

func TestMinePerClassFindsClassPatterns(t *testing.T) {
	b := twoClassDS()
	ps, err := MinePerClass(b, PerClassOptions{MinSupport: 0.9, Closed: true, MinLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Item IDs: a=0→0, a=1→1, b=0→2, b=1→3, c=0→4, c=1→5.
	// Expect {a=0,b=0} and {a=1,b=1}, each with global support 4.
	want := map[string]bool{
		Pattern{Items: []int32{0, 2}}.Key(): false,
		Pattern{Items: []int32{1, 3}}.Key(): false,
	}
	for _, p := range ps {
		if _, ok := want[p.Key()]; ok {
			want[p.Key()] = true
			if p.Support != 4 {
				t.Errorf("pattern %v: global support = %d, want 4", p.Items, p.Support)
			}
		}
	}
	for k, found := range want {
		if !found {
			t.Errorf("expected pattern with key %q not mined", k)
		}
	}
}

func TestMinePerClassMinLenDropsSingles(t *testing.T) {
	b := twoClassDS()
	ps, err := MinePerClass(b, PerClassOptions{MinSupport: 0.5, Closed: true, MinLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ps {
		if p.Len() < 2 {
			t.Fatalf("pattern %v shorter than MinLen", p.Items)
		}
	}
}

func TestMinePerClassDedupes(t *testing.T) {
	b := twoClassDS()
	ps, err := MinePerClass(b, PerClassOptions{MinSupport: 0.1, Closed: false})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if seen[p.Key()] {
			t.Fatalf("duplicate pattern %v in union", p.Items)
		}
		seen[p.Key()] = true
	}
}

func TestMinePerClassGlobalSupport(t *testing.T) {
	b := twoClassDS()
	ps, err := MinePerClass(b, PerClassOptions{MinSupport: 0.5, Closed: false})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ps {
		if got := b.Cover(p.Items).Count(); got != p.Support {
			t.Fatalf("pattern %v: support %d, cover says %d", p.Items, p.Support, got)
		}
	}
}

func TestMinePerClassBadMinSup(t *testing.T) {
	b := twoClassDS()
	for _, ms := range []float64{0, -0.5, 1.5} {
		if _, err := MinePerClass(b, PerClassOptions{MinSupport: ms}); err == nil {
			t.Errorf("MinSupport=%v should error", ms)
		}
	}
}

func TestMinePerClassBudget(t *testing.T) {
	b := twoClassDS()
	_, err := MinePerClass(b, PerClassOptions{MinSupport: 0.1, Closed: false, MaxPatterns: 2})
	if !errors.Is(err, ErrPatternBudget) {
		t.Fatalf("err = %v, want ErrPatternBudget", err)
	}
}

// patternKeys renders a union as an ordered signature for equality
// checks across worker counts.
func patternKeys(ps []Pattern) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Key()
	}
	return out
}

// TestMinePerClassParallelDeterminism: the union (content, order, and
// recomputed supports) is identical at any worker count, with and
// without a pattern budget — including which sentinel trips.
func TestMinePerClassParallelDeterminism(t *testing.T) {
	b := twoClassDS()
	for _, budget := range []int{0, 2, 3, 1000} {
		base, baseErr := MinePerClass(b, PerClassOptions{
			MinSupport: 0.1, Closed: false, MinLen: 2, MaxPatterns: budget,
		})
		for _, w := range []parallel.Workers{2, 8} {
			got, err := MinePerClass(b, PerClassOptions{
				MinSupport: 0.1, Closed: false, MinLen: 2, MaxPatterns: budget,
				Workers: w,
			})
			if !errors.Is(err, baseErr) && !(err == nil && baseErr == nil) {
				t.Fatalf("budget=%d workers=%d: err = %v, sequential err = %v", budget, w, err, baseErr)
			}
			if !reflect.DeepEqual(patternKeys(got), patternKeys(base)) {
				t.Fatalf("budget=%d workers=%d: union keys diverge\n got %v\nwant %v",
					budget, w, patternKeys(got), patternKeys(base))
			}
			for i := range got {
				if got[i].Support != base[i].Support {
					t.Fatalf("budget=%d workers=%d: pattern %d support %d != %d",
						budget, w, i, got[i].Support, base[i].Support)
				}
			}
		}
	}
}
