package mining

import "sort"

// Apriori mines all frequent itemsets level-wise (Agrawal & Srikant,
// VLDB'94). It exists as the classical baseline for correctness
// cross-checks and the scalability comparison: on dense data it
// generates candidate sets explosively, illustrating why the paper
// builds on pattern-growth miners instead.
func Apriori(tx [][]int32, opt Options) ([]Pattern, error) {
	ps, err := apriori(tx, opt)
	opt.logDone("apriori", len(ps), err)
	return ps, err
}

func apriori(tx [][]int32, opt Options) ([]Pattern, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if err := opt.hitEntry("apriori"); err != nil {
		return nil, err
	}
	g := opt.guard()
	if err := g.CheckNow(); err != nil {
		return nil, err
	}
	var out []Pattern
	candCounter := opt.Obs.Counter("mine.apriori_candidates")
	emitted := opt.Obs.Counter("mine.patterns_emitted")
	subsetPruned := opt.Obs.Counter("mine.apriori_subset_pruned")
	ss := newSearchSpace(opt.Obs)

	// Level 1: frequent single items.
	counts := map[int32]int{}
	for _, t := range tx {
		for _, it := range t {
			counts[it]++
		}
	}
	// Emit in item order, not map order: under a MaxPatterns budget the
	// truncation below decides which patterns survive, so the emission
	// order is part of the determinism contract.
	items := make([]int32, 0, len(counts))
	for it := range counts {
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	var level [][]int32
	for _, it := range items {
		if c := counts[it]; c >= opt.MinSupport {
			level = append(level, []int32{it})
			out = append(out, Pattern{Items: []int32{it}, Support: c})
			emitted.Inc()
		}
	}
	ss.candidates.add(1, int64(len(counts)))
	ss.infrequent.add(1, int64(len(counts)-len(level)))
	ss.emitted.add(1, int64(len(level)))
	if opt.MaxPatterns > 0 && len(out) > opt.MaxPatterns {
		ss.budget.add(1, int64(len(out)-opt.MaxPatterns))
		return out[:opt.MaxPatterns], ErrPatternBudget
	}

	k := 1
	for len(level) > 0 {
		k++
		if opt.MaxLen > 0 && k > opt.MaxLen {
			break
		}
		cands, joinPruned := generateCandidates(level)
		// Every join result is a considered candidate; the ones with an
		// infrequent (k-1)-subset are pruned before support counting.
		ss.candidates.add(k, int64(len(cands)+joinPruned))
		ss.infrequent.add(k, int64(joinPruned))
		subsetPruned.Add(int64(joinPruned))
		if len(cands) == 0 {
			break
		}
		candCounter.Add(int64(len(cands)))
		// Count candidate support with one pass over the transactions;
		// the guard polls per transaction (the level's dominant loop).
		candCount := make([]int, len(cands))
		for _, t := range tx {
			if err := g.Check(); err != nil {
				return out, err
			}
			if len(t) < k {
				continue
			}
			for ci, cand := range cands {
				if containsAll(t, cand) {
					candCount[ci]++
				}
			}
		}
		var next [][]int32
		for ci, cand := range cands {
			if candCount[ci] >= opt.MinSupport {
				next = append(next, cand)
				out = append(out, Pattern{Items: cand, Support: candCount[ci]})
				emitted.Inc()
				ss.emitted.inc(len(cand))
				if opt.MaxPatterns > 0 && len(out) >= opt.MaxPatterns {
					ss.budget.inc(len(cand))
					return out, ErrPatternBudget
				}
			} else {
				ss.infrequent.inc(len(cand))
			}
		}
		level = next
	}
	return out, nil
}

// generateCandidates joins frequent (k-1)-itemsets sharing a (k-2)
// prefix and prunes candidates with an infrequent (k-1)-subset. It
// returns the surviving candidates plus the number pruned by the
// subset test, so the caller can account for the full join output.
func generateCandidates(level [][]int32) (cands [][]int32, pruned int) {
	freq := map[string]bool{}
	for _, s := range level {
		freq[itemsKey(s)] = true
	}
	for i := 0; i < len(level); i++ {
		for j := i + 1; j < len(level); j++ {
			a, b := level[i], level[j]
			k := len(a)
			if !samePrefix(a, b, k-1) {
				// level is sorted; once prefixes diverge no later j matches.
				break
			}
			var cand []int32
			if a[k-1] < b[k-1] {
				cand = append(append([]int32(nil), a...), b[k-1])
			} else {
				cand = append(append([]int32(nil), b...), a[k-1])
			}
			if allSubsetsFrequent(cand, freq) {
				cands = append(cands, cand)
			} else {
				pruned++
			}
		}
	}
	return cands, pruned
}

func samePrefix(a, b []int32, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// allSubsetsFrequent checks the Apriori pruning property on every
// (k-1)-subset of cand.
func allSubsetsFrequent(cand []int32, freq map[string]bool) bool {
	sub := make([]int32, 0, len(cand)-1)
	for skip := range cand {
		sub = sub[:0]
		for i, it := range cand {
			if i != skip {
				sub = append(sub, it)
			}
		}
		if !freq[itemsKey(sub)] {
			return false
		}
	}
	return true
}

// containsAll reports whether sorted transaction t contains every item
// of sorted candidate cand (merge scan).
func containsAll(t, cand []int32) bool {
	i := 0
	for _, c := range cand {
		for i < len(t) && t[i] < c {
			i++
		}
		if i >= len(t) || t[i] != c {
			return false
		}
		i++
	}
	return true
}

func itemsKey(items []int32) string {
	b := make([]byte, 0, 4*len(items))
	for _, it := range items {
		b = append(b, byte(it), byte(it>>8), byte(it>>16), byte(it>>24))
	}
	return string(b)
}

func sortItemsets(sets [][]int32) {
	sort.Slice(sets, func(i, j int) bool {
		a, b := sets[i], sets[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}
