package mining

import (
	"sort"

	"dfpc/internal/guard"
	"dfpc/internal/obs"
)

// FPClose mines the closed frequent itemsets: frequent itemsets with no
// strict superset of equal support. This is the miner the paper's
// feature-generation step uses ("We use FPClose [9] to generate closed
// patterns"). The implementation follows the CLOSET/FPClose family:
// FP-tree projection with
//
//   - item merging: conditional-base items whose count equals the
//     prefix support belong to the prefix closure and are hoisted into
//     it,
//   - single-path closure enumeration: a non-branching conditional tree
//     contributes one closed set per strict count drop along the path,
//   - subsumption pruning: a candidate subsumed by an already-found
//     closed pattern of equal support is skipped along with its entire
//     subtree.
//
// It returns ErrPatternBudget if opt.MaxPatterns is exceeded. If
// opt.MaxLen is set, results are closed with respect to the length-
// bounded pattern universe.
func FPClose(tx [][]int32, opt Options) ([]Pattern, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if err := opt.hitEntry("fpclose"); err != nil {
		return nil, err
	}
	numItems := 0
	for _, t := range tx {
		for _, it := range t {
			if int(it) >= numItems {
				numItems = int(it) + 1
			}
		}
	}
	w := make([]int, len(tx))
	for i := range w {
		w[i] = 1
	}
	m := &closeMiner{
		opt:      opt,
		numItems: numItems,
		index:    map[int][]itemMask{},
		g:        opt.guard(),
		nodes:    opt.Obs.Counter("mine.fptree_nodes"),
		emitted:  opt.Obs.Counter("mine.patterns_emitted"),
		subsumed: opt.Obs.Counter("mine.subsumption_pruned"),
		ss:       newSearchSpace(opt.Obs),
	}
	if err := m.g.CheckNow(); err != nil {
		return nil, err
	}
	tree := buildTree(tx, w, opt.MinSupport, m.nodes)
	err := m.mine(tree, nil)
	opt.logDone("fpclose", len(m.out), err)
	return m.out, err
}

type closeMiner struct {
	opt      Options
	numItems int
	index    map[int][]itemMask // support → masks of closed patterns found
	out      []Pattern
	g        *guard.Guard

	// metric hooks; all nil-safe no-ops when observability is off
	nodes    *obs.Counter
	emitted  *obs.Counter
	subsumed *obs.Counter
	ss       searchSpace
}

// isSubsumed reports whether items (with the given support) is a subset
// of an already-found closed pattern with the same support.
func (m *closeMiner) isSubsumed(items []int32, support int) bool {
	mask := maskOf(items, m.numItems)
	for _, y := range m.index[support] {
		if mask.subsetOf(y) {
			return true
		}
	}
	return false
}

// emit records a closed pattern and indexes it. Callers must have
// already established non-subsumption.
func (m *closeMiner) emit(items []int32, support int) error {
	if m.opt.MaxPatterns > 0 && len(m.out) >= m.opt.MaxPatterns {
		m.ss.budget.inc(len(items))
		return ErrPatternBudget
	}
	if err := m.g.Check(); err != nil {
		return err
	}
	sorted := append([]int32(nil), items...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	m.out = append(m.out, Pattern{Items: sorted, Support: support})
	m.index[support] = append(m.index[support], maskOf(sorted, m.numItems))
	m.emitted.Inc()
	m.ss.emitted.inc(len(sorted))
	return nil
}

func (m *closeMiner) mine(tree *fpTree, prefix []int32) error {
	// Cooperative cancellation at every recursion entry: subsumption-
	// pruned subtrees emit nothing, so an emit-only check could run a
	// long time between polls.
	if err := m.g.Check(); err != nil {
		return err
	}
	if tree.empty() {
		return nil
	}
	if path := tree.singlePath(); path != nil {
		return m.minePath(path, prefix)
	}
	for _, it := range tree.itemsAscending() {
		support := tree.counts[it]
		candidate := append(append([]int32(nil), prefix...), it)
		condTx, condW := tree.conditionalBase(it)

		// Item merging: conditional-base items occurring in every
		// transaction that contains the candidate are part of its
		// closure.
		condCounts := map[int32]int{}
		for i, t := range condTx {
			for _, cit := range t {
				condCounts[cit] += condW[i]
			}
		}
		// Append closure items in item order, not map order: the item
		// sequence is part of the pattern's identity downstream
		// (subsumption keys, emitted output).
		merged := map[int32]bool{}
		mergedItems := make([]int32, 0, len(condCounts))
		for cit := range condCounts {
			if condCounts[cit] == support {
				mergedItems = append(mergedItems, cit)
			}
		}
		sort.Slice(mergedItems, func(i, j int) bool { return mergedItems[i] < mergedItems[j] })
		for _, cit := range mergedItems {
			candidate = append(candidate, cit)
			merged[cit] = true
		}

		m.ss.candidates.inc(len(candidate))
		if m.opt.MaxLen > 0 && len(candidate) > m.opt.MaxLen {
			continue
		}
		if m.isSubsumed(candidate, support) {
			// Everything below this candidate closes into patterns
			// already discovered from the subsuming branch.
			m.subsumed.Inc()
			m.ss.subsumed.inc(len(candidate))
			continue
		}
		if err := m.emit(candidate, support); err != nil {
			return err
		}
		if m.opt.MaxLen > 0 && len(candidate) >= m.opt.MaxLen {
			continue
		}
		// Strip merged items from the conditional base before building
		// the subtree: they are now part of the prefix.
		if len(merged) > 0 {
			for i, t := range condTx {
				kept := t[:0]
				for _, cit := range t {
					if !merged[cit] {
						kept = append(kept, cit)
					}
				}
				condTx[i] = kept
			}
		}
		condTree := buildTree(condTx, condW, m.opt.MinSupport, m.nodes)
		if err := m.mine(condTree, candidate); err != nil {
			return err
		}
	}
	return nil
}

// minePath emits the closed patterns of a single-path conditional tree:
// one per position where the node count strictly drops (or at the leaf),
// consisting of the prefix plus the path items up to that position.
func (m *closeMiner) minePath(path []*fpNode, prefix []int32) error {
	for j := 0; j < len(path); j++ {
		last := j == len(path)-1
		if !last && path[j].count == path[j+1].count {
			continue
		}
		candidate := append(append([]int32(nil), prefix...), pathItems(path[:j+1])...)
		m.ss.candidates.inc(len(candidate))
		if m.opt.MaxLen > 0 && len(candidate) > m.opt.MaxLen {
			// Longer prefixes only grow; stop.
			break
		}
		support := path[j].count
		if m.isSubsumed(candidate, support) {
			m.subsumed.Inc()
			m.ss.subsumed.inc(len(candidate))
			continue
		}
		if err := m.emit(candidate, support); err != nil {
			return err
		}
	}
	return nil
}

func pathItems(path []*fpNode) []int32 {
	items := make([]int32, len(path))
	for i, n := range path {
		items[i] = n.item
	}
	return items
}
