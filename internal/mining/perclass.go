package mining

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"time"

	"dfpc/internal/dataset"
	"dfpc/internal/faults"
	"dfpc/internal/guard"
	"dfpc/internal/obs"
	"dfpc/internal/parallel"
)

// PerClassOptions configures the paper's feature-generation step
// (Section 3: "The data is partitioned according to the class label.
// Frequent patterns are discovered in each partition with min_sup").
type PerClassOptions struct {
	// MinSupport is the relative minimum support θ0 ∈ (0, 1], applied
	// within each class partition.
	MinSupport float64
	// Closed selects closed-pattern mining (FPClose, the paper's
	// choice); false mines all frequent patterns (the Pat_All ablation
	// pool is still closed in the paper, but all-pattern pools are
	// useful for the ablation benchmarks).
	Closed bool
	// MaxPatterns caps the total pattern count across partitions;
	// exceeded → ErrPatternBudget. 0 = unlimited.
	MaxPatterns int
	// MaxLen caps pattern length. 0 = unlimited.
	MaxLen int
	// MinLen drops patterns shorter than this after mining. The
	// classification framework sets MinLen = 2 because single items are
	// already part of the feature space I. 0 or 1 keeps everything.
	MinLen int
	// Ctx, when non-nil, makes mining cancellable; see Options.Ctx.
	//vet:ignore ctxfirst per-call Options carrier: lives only for one per-class run
	Ctx context.Context
	// Deadline aborts mining with ErrDeadline once passed (0 = none).
	Deadline time.Time
	// MemLimit is a soft heap-allocation ceiling in bytes (0 = none);
	// see Options.MemLimit.
	MemLimit uint64
	// Obs, when non-nil, records one span per class partition plus the
	// mining counters (see Options.Obs). Nil disables recording.
	Obs *obs.Observer
	// Log, when non-nil, receives one structured DEBUG record per class
	// partition and per run; the adaptive wrapper additionally emits a
	// WARN per min_sup escalation. Nil disables logging.
	Log *slog.Logger
	// Workers bounds the per-class mining fan-out (0 = GOMAXPROCS,
	// 1 = sequential). Class partitions are independent (Section 3.1),
	// so they mine concurrently; the union is merged in class order and
	// the pattern-budget accounting replays the sequential semantics
	// exactly, so the returned union is identical for any worker count.
	Workers parallel.Workers
	// Faults, when non-nil, enables deterministic fault injection: one
	// mine.partition hit per class partition, plus the miners' own
	// mine.grow entry point. Nil is free.
	Faults *faults.Registry
	// Checkpoint, when non-nil, persists each class partition's raw
	// pattern stream after it is mined and replays it on a later run,
	// skipping the enumeration. Checkpoints are keyed by (class, cap)
	// — the cap is part of the key because a capped run is a strict
	// prefix of an uncapped one, so streams mined at different caps are
	// different artifacts. The replayed stream feeds the exact same
	// class-order merge, so a resumed union is byte-identical to an
	// uninterrupted one at any worker count.
	Checkpoint PartitionCheckpoint
}

// PartitionCheckpoint persists per-class partition results for
// checkpoint/resume of long mining runs. Implementations must be safe
// for concurrent use (partitions mine in parallel).
type PartitionCheckpoint interface {
	// Load returns the previously saved raw pattern stream for
	// (class, cap), or ok=false when none exists.
	Load(class, cap int) (ps []Pattern, ok bool)
	// Save persists the raw pattern stream for (class, cap). Errors
	// abort the mining run — a checkpoint that cannot be written must
	// not be silently skipped, or a crash would replay differently.
	Save(class, cap int, ps []Pattern) error
}

// MinePerClass partitions the binary dataset by class, mines each
// partition with the relative min_sup, and returns the deduplicated
// union F of the per-class pattern sets. Each returned pattern's
// Support is recomputed as its global absolute support over all of b
// (per-class supports are recoverable through b.Cover and b.ClassMasks,
// which is how the measures package consumes them).
//
// With Workers > 1 the class partitions mine concurrently. The miners
// enumerate in a deterministic order and a capped run is an exact
// prefix of an uncapped one, so mining every class at the full budget
// and then replaying the sequential remaining-budget arithmetic during
// the class-order merge yields byte-identical unions — and the same
// ErrPatternBudget trips — at any worker count.
func MinePerClass(b *dataset.Binary, opt PerClassOptions) ([]Pattern, error) {
	if opt.MinSupport <= 0 || opt.MinSupport > 1 {
		return nil, fmt.Errorf("mining: relative MinSupport = %v, want (0,1]", opt.MinSupport)
	}
	// Fail fast on a pre-canceled context before any partition work.
	if err := guard.New(opt.Ctx, guard.Limits{Deadline: opt.Deadline}).CheckNow(); err != nil {
		return nil, err
	}

	classes := make([]int, 0, b.NumClasses())
	for c := 0; c < b.NumClasses(); c++ {
		if len(b.ClassMasks[c].Indices()) > 0 {
			classes = append(classes, c)
		}
	}
	budget := opt.MaxPatterns

	// mineClass mines one partition at the given raw-pattern cap,
	// recording its span and counters on o (a per-worker fork when
	// mining concurrently). It returns FPClose's raw pattern stream —
	// filtering and budget accounting happen in the class-order merge.
	mineClass := func(c, cap int, o *obs.Observer) ([]Pattern, error) {
		if err := opt.Faults.Hit(faults.MinePartition); err != nil {
			return nil, fmt.Errorf("mining: class %d partition: %w", c, err)
		}
		rows := b.ClassMasks[c].Indices()
		tx := make([][]int32, len(rows))
		for i, r := range rows {
			tx[i] = b.Rows[r]
		}
		abs := int(opt.MinSupport*float64(len(rows)) + 0.5)
		if abs < 1 {
			abs = 1
		}
		sp := o.Start("mine-class").
			Attr("class", c).Attr("rows", len(rows)).Attr("abs_min_sup", abs)
		var ps []Pattern
		var err error
		restored := false
		if opt.Checkpoint != nil {
			ps, restored = opt.Checkpoint.Load(c, cap)
		}
		if !restored {
			mopt := Options{
				MinSupport:  abs,
				MaxLen:      opt.MaxLen,
				MaxPatterns: cap,
				Ctx:         opt.Ctx,
				Deadline:    opt.Deadline,
				MemLimit:    opt.MemLimit,
				Obs:         o,
				Log:         opt.Log,
				Faults:      opt.Faults,
			}
			if opt.Closed {
				ps, err = FPClose(tx, mopt)
			} else {
				ps, err = FPGrowth(tx, mopt)
			}
			// Only clean partitions checkpoint: a budget-tripped or
			// canceled stream is partial and must be re-mined on resume.
			if err == nil && opt.Checkpoint != nil {
				if cerr := opt.Checkpoint.Save(c, cap, ps); cerr != nil {
					err = fmt.Errorf("mining: class %d checkpoint: %w", c, cerr)
				}
			}
		}
		sp.Attr("patterns", len(ps)).Attr("restored", restored).End()
		if opt.Log != nil {
			opt.Log.Debug("class partition mined",
				slog.Int("class", c),
				slog.Int("rows", len(rows)),
				slog.Int("abs_min_sup", abs),
				slog.Int("patterns", len(ps)))
		}
		return ps, err
	}

	seen := map[string]bool{}
	var union []Pattern
	dedupDropped := opt.Obs.Counter("mine.dedup_dropped")
	minlenDropped := opt.Obs.Counter("mine.minlen_dropped")
	// absorb filters one class's raw pattern stream (min-len, dedup,
	// global-support recompute) into the union, in stream order.
	absorb := func(ps []Pattern) {
		for _, p := range ps {
			if opt.MinLen > 1 && p.Len() < opt.MinLen {
				minlenDropped.Inc()
				continue
			}
			key := p.Key()
			if seen[key] {
				dedupDropped.Inc()
				continue
			}
			seen[key] = true
			// Recompute global support over the full dataset.
			p.Support = b.Cover(p.Items).Count()
			union = append(union, p)
		}
	}
	finish := func() ([]Pattern, error) {
		opt.Obs.Counter("mine.patterns_union").Add(int64(len(union)))
		if opt.Log != nil {
			opt.Log.Debug("per-class mining done",
				slog.Float64("min_sup", opt.MinSupport),
				slog.Int("union", len(union)))
		}
		SortPatterns(union)
		return union, nil
	}

	if opt.Workers.Resolve() > 1 && len(classes) > 1 {
		// Concurrent partitions each mine at the full budget; a class
		// that errors stops further classes from being claimed (and
		// ForEach guarantees every lower-indexed class ran to
		// completion, which is all the merge consumes).
		type classResult struct {
			ps  []Pattern
			err error
		}
		results := make([]classResult, len(classes))
		perr := parallel.ForEach(opt.Workers, len(classes), func(k int) error {
			ps, err := mineClass(classes[k], budget, opt.Obs.Fork())
			results[k] = classResult{ps: ps, err: err}
			return err
		})
		var pe *parallel.PanicError
		if errors.As(perr, &pe) {
			return nil, perr
		}
		// Merge in class order, replaying the sequential budget
		// arithmetic: remaining = budget − |union so far| (post-filter,
		// exactly as the sequential path computes its caps), truncate
		// the raw stream to it, and surface ErrPatternBudget exactly
		// where a sequential run would have — the miners trip their cap
		// only on attempting pattern cap+1, so a full-budget run is a
		// superset prefix of any tighter-capped run of the same class.
		for k := range classes {
			ps, err := results[k].ps, results[k].err
			if budget > 0 {
				remaining := budget - len(union)
				if remaining <= 0 {
					return union, ErrPatternBudget
				}
				if len(ps) > remaining {
					ps, err = ps[:remaining], ErrPatternBudget
				}
			}
			absorb(ps)
			if err != nil {
				return union, err
			}
		}
		return finish()
	}

	for _, c := range classes {
		cap := 0
		if budget > 0 {
			remaining := budget - len(union)
			if remaining <= 0 {
				// Keep the span accounting of the historical sequential
				// loop: the class that finds the budget already spent
				// still records its (empty) span.
				rows := b.ClassMasks[c].Indices()
				abs := int(opt.MinSupport*float64(len(rows)) + 0.5)
				if abs < 1 {
					abs = 1
				}
				opt.Obs.Start("mine-class").
					Attr("class", c).Attr("rows", len(rows)).Attr("abs_min_sup", abs).End()
				return union, ErrPatternBudget
			}
			cap = remaining
		}
		ps, err := mineClass(c, cap, opt.Obs)
		absorb(ps)
		if err != nil {
			return union, err
		}
	}
	return finish()
}
