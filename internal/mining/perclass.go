package mining

import (
	"context"
	"fmt"
	"log/slog"
	"time"

	"dfpc/internal/dataset"
	"dfpc/internal/guard"
	"dfpc/internal/obs"
)

// PerClassOptions configures the paper's feature-generation step
// (Section 3: "The data is partitioned according to the class label.
// Frequent patterns are discovered in each partition with min_sup").
type PerClassOptions struct {
	// MinSupport is the relative minimum support θ0 ∈ (0, 1], applied
	// within each class partition.
	MinSupport float64
	// Closed selects closed-pattern mining (FPClose, the paper's
	// choice); false mines all frequent patterns (the Pat_All ablation
	// pool is still closed in the paper, but all-pattern pools are
	// useful for the ablation benchmarks).
	Closed bool
	// MaxPatterns caps the total pattern count across partitions;
	// exceeded → ErrPatternBudget. 0 = unlimited.
	MaxPatterns int
	// MaxLen caps pattern length. 0 = unlimited.
	MaxLen int
	// MinLen drops patterns shorter than this after mining. The
	// classification framework sets MinLen = 2 because single items are
	// already part of the feature space I. 0 or 1 keeps everything.
	MinLen int
	// Ctx, when non-nil, makes mining cancellable; see Options.Ctx.
	//vet:ignore ctxfirst per-call Options carrier: lives only for one per-class run
	Ctx context.Context
	// Deadline aborts mining with ErrDeadline once passed (0 = none).
	Deadline time.Time
	// MemLimit is a soft heap-allocation ceiling in bytes (0 = none);
	// see Options.MemLimit.
	MemLimit uint64
	// Obs, when non-nil, records one span per class partition plus the
	// mining counters (see Options.Obs). Nil disables recording.
	Obs *obs.Observer
	// Log, when non-nil, receives one structured DEBUG record per class
	// partition and per run; the adaptive wrapper additionally emits a
	// WARN per min_sup escalation. Nil disables logging.
	Log *slog.Logger
}

// MinePerClass partitions the binary dataset by class, mines each
// partition with the relative min_sup, and returns the deduplicated
// union F of the per-class pattern sets. Each returned pattern's
// Support is recomputed as its global absolute support over all of b
// (per-class supports are recoverable through b.Cover and b.ClassMasks,
// which is how the measures package consumes them).
func MinePerClass(b *dataset.Binary, opt PerClassOptions) ([]Pattern, error) {
	if opt.MinSupport <= 0 || opt.MinSupport > 1 {
		return nil, fmt.Errorf("mining: relative MinSupport = %v, want (0,1]", opt.MinSupport)
	}
	// Fail fast on a pre-canceled context before any partition work.
	if err := guard.New(opt.Ctx, guard.Limits{Deadline: opt.Deadline}).CheckNow(); err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var union []Pattern
	budget := opt.MaxPatterns
	dedupDropped := opt.Obs.Counter("mine.dedup_dropped")
	minlenDropped := opt.Obs.Counter("mine.minlen_dropped")
	for c := 0; c < b.NumClasses(); c++ {
		rows := b.ClassMasks[c].Indices()
		if len(rows) == 0 {
			continue
		}
		tx := make([][]int32, len(rows))
		for i, r := range rows {
			tx[i] = b.Rows[r]
		}
		abs := int(opt.MinSupport*float64(len(rows)) + 0.5)
		if abs < 1 {
			abs = 1
		}
		sp := opt.Obs.Start("mine-class").
			Attr("class", c).Attr("rows", len(rows)).Attr("abs_min_sup", abs)
		mopt := Options{
			MinSupport: abs,
			MaxLen:     opt.MaxLen,
			Ctx:        opt.Ctx,
			Deadline:   opt.Deadline,
			MemLimit:   opt.MemLimit,
			Obs:        opt.Obs,
			Log:        opt.Log,
		}
		if budget > 0 {
			remaining := budget - len(union)
			if remaining <= 0 {
				sp.End()
				return union, ErrPatternBudget
			}
			mopt.MaxPatterns = remaining
		}
		var ps []Pattern
		var err error
		if opt.Closed {
			ps, err = FPClose(tx, mopt)
		} else {
			ps, err = FPGrowth(tx, mopt)
		}
		for _, p := range ps {
			if opt.MinLen > 1 && p.Len() < opt.MinLen {
				minlenDropped.Inc()
				continue
			}
			key := p.Key()
			if seen[key] {
				dedupDropped.Inc()
				continue
			}
			seen[key] = true
			// Recompute global support over the full dataset.
			p.Support = b.Cover(p.Items).Count()
			union = append(union, p)
		}
		sp.Attr("patterns", len(ps)).End()
		if opt.Log != nil {
			opt.Log.Debug("class partition mined",
				slog.Int("class", c),
				slog.Int("rows", len(rows)),
				slog.Int("abs_min_sup", abs),
				slog.Int("patterns", len(ps)))
		}
		if err != nil {
			return union, err
		}
	}
	opt.Obs.Counter("mine.patterns_union").Add(int64(len(union)))
	if opt.Log != nil {
		opt.Log.Debug("per-class mining done",
			slog.Float64("min_sup", opt.MinSupport),
			slog.Int("union", len(union)))
	}
	SortPatterns(union)
	return union, nil
}
