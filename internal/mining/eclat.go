package mining

import (
	"sort"

	"dfpc/internal/bitset"
	"dfpc/internal/guard"
	"dfpc/internal/obs"
)

// Eclat mines all frequent itemsets with a vertical representation
// (Zaki, 2000): each item carries the bitset of transactions containing
// it, and candidate extensions intersect bitsets instead of re-scanning
// the database. On dense data with fast popcount this is competitive
// with FP-Growth and is provided both as a correctness cross-check and
// because the paper's framing ("existing frequent pattern mining
// algorithms can facilitate the pattern generation") spans the whole
// algorithm family. Results are identical to FPGrowth's.
func Eclat(tx [][]int32, opt Options) ([]Pattern, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if err := opt.hitEntry("eclat"); err != nil {
		return nil, err
	}
	n := len(tx)
	// Build vertical columns for frequent items.
	counts := map[int32]int{}
	for _, t := range tx {
		for _, it := range t {
			counts[it]++
		}
	}
	type column struct {
		item  int32
		tids  *bitset.Bitset
		count int
	}
	var cols []column
	for it, c := range counts {
		if c >= opt.MinSupport {
			cols = append(cols, column{item: it, count: c})
		}
	}
	sort.Slice(cols, func(i, j int) bool { return cols[i].item < cols[j].item })
	index := map[int32]int{}
	for i := range cols {
		cols[i].tids = bitset.New(n)
		index[cols[i].item] = i
	}
	for ti, t := range tx {
		for _, it := range t {
			if ci, ok := index[it]; ok {
				cols[ci].tids.Set(ti)
			}
		}
	}

	m := &eclatMiner{
		opt:     opt,
		g:       opt.guard(),
		emitted: opt.Obs.Counter("mine.patterns_emitted"),
		inters:  opt.Obs.Counter("mine.eclat_intersections"),
		ss:      newSearchSpace(opt.Obs),
	}
	if err := m.g.CheckNow(); err != nil {
		return nil, err
	}
	// Depth-1 candidates are the distinct items; the infrequent ones
	// were pruned while building the vertical columns above.
	m.ss.candidates.add(1, int64(len(counts)))
	m.ss.infrequent.add(1, int64(len(counts)-len(cols)))
	// Depth-first over prefix classes: extend each item with the items
	// after it (ascending item order keeps patterns canonical).
	type node struct {
		item  int32
		tids  *bitset.Bitset
		count int
	}
	var mine func(prefix []int32, class []node) error
	mine = func(prefix []int32, class []node) error {
		// Cooperative cancellation at every recursion entry.
		if err := m.g.Check(); err != nil {
			return err
		}
		for i, nd := range class {
			newPrefix := append(append([]int32(nil), prefix...), nd.item)
			if err := m.emit(newPrefix, nd.count); err != nil {
				return err
			}
			if m.opt.MaxLen > 0 && len(newPrefix) >= m.opt.MaxLen {
				continue
			}
			var next []node
			for _, other := range class[i+1:] {
				inter := nd.tids.Clone()
				inter.And(other.tids)
				m.inters.Inc()
				// Each intersection materializes a candidate one item
				// deeper than newPrefix; failing min_sup is the prune.
				m.ss.candidates.inc(len(newPrefix) + 1)
				if c := inter.Count(); c >= m.opt.MinSupport {
					next = append(next, node{item: other.item, tids: inter, count: c})
				} else {
					m.ss.infrequent.inc(len(newPrefix) + 1)
				}
			}
			if len(next) > 0 {
				if err := mine(newPrefix, next); err != nil {
					return err
				}
			}
		}
		return nil
	}
	root := make([]node, len(cols))
	for i, c := range cols {
		root[i] = node{item: c.item, tids: c.tids, count: c.count}
	}
	err := mine(nil, root)
	opt.logDone("eclat", len(m.out), err)
	return m.out, err
}

type eclatMiner struct {
	opt Options
	out []Pattern
	g   *guard.Guard

	emitted *obs.Counter
	inters  *obs.Counter
	ss      searchSpace
}

func (m *eclatMiner) emit(items []int32, support int) error {
	if m.opt.MaxPatterns > 0 && len(m.out) >= m.opt.MaxPatterns {
		m.ss.budget.inc(len(items))
		return ErrPatternBudget
	}
	if err := m.g.Check(); err != nil {
		return err
	}
	m.out = append(m.out, Pattern{Items: append([]int32(nil), items...), Support: support})
	m.emitted.Inc()
	m.ss.emitted.inc(len(items))
	return nil
}
