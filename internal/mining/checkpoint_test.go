package mining

import (
	"errors"
	"testing"

	"dfpc/internal/faults"
	"dfpc/internal/parallel"
)

func TestPerClassCheckpointResume(t *testing.T) {
	b := twoClassDS()
	opt := PerClassOptions{MinSupport: 0.4, Closed: true, MinLen: 2}
	want, err := MinePerClass(b, opt)
	if err != nil {
		t.Fatal(err)
	}

	// First run is interrupted after the first partition checkpoints.
	dir := t.TempDir()
	ck, err := NewFileCheckpoint(dir, "mine-key", nil)
	if err != nil {
		t.Fatal(err)
	}
	fr := faults.New(1)
	fr.Arm(faults.MinePartition, 2, faults.ErrInjected)
	iopt := opt
	iopt.Checkpoint = ck
	iopt.Faults = fr
	if _, err := MinePerClass(b, iopt); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("interrupted run err = %v, want ErrInjected", err)
	}

	// Resume replays class 0 from its checkpoint and mines the rest;
	// the union is identical at any worker count.
	for _, workers := range []int{1, 2, 8} {
		ropt := opt
		ropt.Checkpoint = ck
		ropt.Workers = parallel.Workers(workers)
		got, err := MinePerClass(b, ropt)
		if err != nil {
			t.Fatalf("workers=%d: resume: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: resumed %d patterns, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i].Key() != want[i].Key() || got[i].Support != want[i].Support {
				t.Fatalf("workers=%d: pattern %d = %v, want %v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestPerClassCheckpointKeyedByCap(t *testing.T) {
	dir := t.TempDir()
	ck, _ := NewFileCheckpoint(dir, "k", nil)
	if _, ok := ck.Load(0, 100); ok {
		t.Fatal("empty dir loaded")
	}
	ps, err := FPClose([][]int32{{0, 1}, {0, 1}, {0, 2}}, Options{MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.Save(0, 100, ps); err != nil {
		t.Fatal(err)
	}
	if _, ok := ck.Load(0, 50); ok {
		t.Fatal("checkpoint replayed under a different cap")
	}
	if _, ok := ck.Load(1, 100); ok {
		t.Fatal("checkpoint replayed under a different class")
	}
	got, ok := ck.Load(0, 100)
	if !ok || len(got) != len(ps) {
		t.Fatalf("Load = %v, %v", got, ok)
	}
	ck2, _ := NewFileCheckpoint(dir, "other-key", nil)
	if _, ok := ck2.Load(0, 100); ok {
		t.Fatal("checkpoint replayed under a different run key")
	}
}
