package mining

import (
	"sort"

	"dfpc/internal/obs"
)

// fpNode is one node of an FP-tree. Children are kept as a singly linked
// sibling list, which profiles better than per-node maps at the fanouts
// seen in categorical data.
type fpNode struct {
	item    int32
	count   int
	parent  *fpNode
	child   *fpNode // first child
	sibling *fpNode // next sibling under the same parent
	link    *fpNode // next node with the same item (header chain)
}

// fpTree is an FP-tree plus its header table.
type fpTree struct {
	root *fpNode
	// heads and counts are keyed by item ID; items absent from the tree
	// have nil head and zero count.
	heads  map[int32]*fpNode
	counts map[int32]int
	// order ranks items by descending total count (ties broken by item
	// ID) so transactions insert in a canonical order.
	order map[int32]int
	// nodes counts node creations across this tree (nil = off).
	nodes *obs.Counter
}

// buildTree constructs an FP-tree from weighted transactions, keeping
// only items with count ≥ minSupport. Each transaction tx[i] carries
// weight w[i] (plain transaction sets pass weight 1). nodes, when
// non-nil, is incremented once per allocated tree node.
func buildTree(tx [][]int32, w []int, minSupport int, nodes *obs.Counter) *fpTree {
	counts := map[int32]int{}
	for i, t := range tx {
		for _, it := range t {
			counts[it] += w[i]
		}
	}
	kept := make([]int32, 0, len(counts))
	for it, c := range counts {
		if c >= minSupport {
			kept = append(kept, it)
		} else {
			delete(counts, it)
		}
	}
	// Rank kept items by descending count, then ascending ID.
	sort.Slice(kept, func(i, j int) bool {
		if counts[kept[i]] != counts[kept[j]] {
			return counts[kept[i]] > counts[kept[j]]
		}
		return kept[i] < kept[j]
	})
	t := &fpTree{
		root:   &fpNode{item: -1},
		heads:  make(map[int32]*fpNode, len(kept)),
		counts: counts,
		order:  make(map[int32]int, len(kept)),
		nodes:  nodes,
	}
	for rank, it := range kept {
		t.order[it] = rank
	}
	buf := make([]int32, 0, 64)
	for i, trans := range tx {
		buf = buf[:0]
		for _, it := range trans {
			if _, ok := t.order[it]; ok {
				buf = append(buf, it)
			}
		}
		sort.Slice(buf, func(a, b int) bool { return t.order[buf[a]] < t.order[buf[b]] })
		t.insert(buf, w[i])
	}
	return t
}

// insert adds one (ordered, filtered) transaction with the given weight.
func (t *fpTree) insert(items []int32, weight int) {
	node := t.root
	for _, it := range items {
		var child *fpNode
		for c := node.child; c != nil; c = c.sibling {
			if c.item == it {
				child = c
				break
			}
		}
		if child == nil {
			child = &fpNode{item: it, parent: node, sibling: node.child}
			node.child = child
			child.link = t.heads[it]
			t.heads[it] = child
			t.nodes.Inc()
		}
		child.count += weight
		node = child
	}
}

// itemsAscending returns the tree's items ordered by ascending rank
// frequency position reversed — i.e. least-frequent first, the order in
// which FP-Growth processes header entries.
func (t *fpTree) itemsAscending() []int32 {
	items := make([]int32, 0, len(t.order))
	for it := range t.order {
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool { return t.order[items[i]] > t.order[items[j]] })
	return items
}

// conditionalBase collects the prefix paths of item it as weighted
// transactions: for each node with that item, the path to the root with
// weight = node count.
func (t *fpTree) conditionalBase(it int32) (tx [][]int32, w []int) {
	for node := t.heads[it]; node != nil; node = node.link {
		if node.count == 0 {
			continue
		}
		var path []int32
		for p := node.parent; p != nil && p.item >= 0; p = p.parent {
			path = append(path, p.item)
		}
		if len(path) > 0 {
			tx = append(tx, path)
			w = append(w, node.count)
		} else {
			// Root-level node: contributes an empty prefix path. Keep it
			// so total weight (support) accounting stays exact for
			// callers that sum weights.
			tx = append(tx, nil)
			w = append(w, node.count)
		}
	}
	return tx, w
}

// singlePath returns the tree's unique root-to-leaf path if the tree has
// no branching, or nil otherwise.
func (t *fpTree) singlePath() []*fpNode {
	var path []*fpNode
	for node := t.root.child; node != nil; node = node.child {
		if node.sibling != nil {
			return nil
		}
		path = append(path, node)
	}
	return path
}

// empty reports whether the tree holds no items.
func (t *fpTree) empty() bool { return t.root.child == nil }
