// Package mining implements the frequent-itemset miners the paper's
// feature-generation step depends on: FP-Growth for all frequent
// patterns, an FPClose-style closed-pattern miner (the paper uses
// FPClose [Grahne & Zhu, FIMI'03] to generate closed patterns), and a
// classic Apriori baseline. All miners consume transactions of dense
// int32 item IDs as produced by dataset.Encode.
package mining

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"time"

	"dfpc/internal/faults"
	"dfpc/internal/guard"
	"dfpc/internal/obs"
)

// ErrPatternBudget is returned when a miner exceeds Options.MaxPatterns.
// The scalability experiments (Tables 3–5) use it to mark min_sup
// settings whose enumeration is infeasible, mirroring the paper's "N/A"
// rows at min_sup = 1.
var ErrPatternBudget = errors.New("mining: pattern budget exceeded")

// ErrDeadline is returned when a miner runs past Options.Deadline (or
// its context's deadline). Like ErrPatternBudget it marks an
// enumeration as infeasible; the partial pattern set found so far is
// still returned. It is an alias for guard.ErrDeadline so errors.Is
// works across both packages.
var ErrDeadline = guard.ErrDeadline

// Pattern is a frequent itemset together with its absolute support in
// the mined transaction set.
type Pattern struct {
	Items   []int32 // sorted ascending
	Support int
}

// Len returns the number of items in the pattern.
func (p Pattern) Len() int { return len(p.Items) }

// Key returns a canonical string key for the itemset, used for
// deduplication across per-class mining runs.
func (p Pattern) Key() string {
	b := make([]byte, 0, 4*len(p.Items))
	for _, it := range p.Items {
		b = append(b, byte(it), byte(it>>8), byte(it>>16), byte(it>>24))
	}
	return string(b)
}

func (p Pattern) String() string {
	return fmt.Sprintf("%v:%d", p.Items, p.Support)
}

// Options configures a mining run.
type Options struct {
	// MinSupport is the absolute minimum support count (≥ 1).
	MinSupport int
	// MaxPatterns aborts the run with ErrPatternBudget once more than
	// this many patterns have been produced. 0 means unlimited.
	MaxPatterns int
	// MaxLen caps pattern length; 0 means unlimited.
	MaxLen int
	// Ctx, when non-nil, makes the run cancellable: the miners poll
	// Ctx.Done at recursion and loop boundaries and abort with an error
	// wrapping guard.ErrCanceled (or guard.ErrDeadline for a context
	// deadline). Nil behaves like context.Background at no cost.
	//vet:ignore ctxfirst per-call Options carrier: Options lives only for one mining run
	Ctx context.Context
	// Deadline aborts the run with ErrDeadline once passed (checked
	// periodically). Zero means no deadline.
	Deadline time.Time
	// MemLimit, when > 0, is a soft heap-allocation ceiling in bytes;
	// exceeding it aborts the run with guard.ErrMemoryLimit.
	MemLimit uint64
	// Obs, when non-nil, receives mining vitals: patterns emitted,
	// FP-tree nodes built, subsumption prunes, Eclat intersections,
	// Apriori candidates. Nil disables recording at no cost.
	Obs *obs.Observer
	// Log, when non-nil, receives one structured DEBUG record per
	// mining run (algorithm, min_sup, patterns found). Nil — the
	// default — disables logging at the cost of one nil check.
	Log *slog.Logger
	// Faults, when non-nil, enables deterministic fault injection at
	// the miner's entry (point mine.grow). Nil is free.
	Faults *faults.Registry
}

// hitEntry fires the shared miner-entry injection point; every miner
// calls it right after validate so an armed fault aborts the run with
// a sentinel before any enumeration work.
func (o Options) hitEntry(algo string) error {
	if err := o.Faults.Hit(faults.MineGrow); err != nil {
		return fmt.Errorf("mining: %s: %w", algo, err)
	}
	return nil
}

// logDone emits the run-completion record shared by the four miners.
func (o Options) logDone(algo string, patterns int, err error) {
	if o.Log == nil {
		return
	}
	if err != nil {
		o.Log.Debug("mining run stopped",
			slog.String("algo", algo),
			slog.Int("min_sup", o.MinSupport),
			slog.Int("patterns", patterns),
			slog.String("err", err.Error()))
		return
	}
	o.Log.Debug("mining run done",
		slog.String("algo", algo),
		slog.Int("min_sup", o.MinSupport),
		slog.Int("patterns", patterns))
}

// guard builds the run's execution guard; nil (free) when the options
// carry no context, deadline, or memory limit.
func (o Options) guard() *guard.Guard {
	return guard.New(o.Ctx, guard.Limits{Deadline: o.Deadline, SoftMemoryBytes: o.MemLimit})
}

func (o Options) validate() error {
	if o.MinSupport < 1 {
		return fmt.Errorf("mining: MinSupport = %d, want >= 1", o.MinSupport)
	}
	if o.MaxPatterns < 0 || o.MaxLen < 0 {
		return fmt.Errorf("mining: negative limit")
	}
	return nil
}

// SortPatterns orders patterns by descending support, then ascending
// length, then lexicographic items — a stable canonical order for tests
// and reports.
func SortPatterns(ps []Pattern) {
	sort.Slice(ps, func(i, j int) bool {
		a, b := ps[i], ps[j]
		if a.Support != b.Support {
			return a.Support > b.Support
		}
		if len(a.Items) != len(b.Items) {
			return len(a.Items) < len(b.Items)
		}
		for k := range a.Items {
			if a.Items[k] != b.Items[k] {
				return a.Items[k] < b.Items[k]
			}
		}
		return false
	})
}

// itemMask is a small bitmask over the global item universe, used for
// O(d/64) subset tests in the closed-pattern index.
type itemMask []uint64

func newItemMask(numItems int) itemMask {
	return make(itemMask, (numItems+63)/64)
}

func maskOf(items []int32, numItems int) itemMask {
	m := newItemMask(numItems)
	for _, it := range items {
		m[it/64] |= 1 << uint(it%64)
	}
	return m
}

// subsetOf reports whether m ⊆ o.
func (m itemMask) subsetOf(o itemMask) bool {
	for i := range m {
		if m[i]&^o[i] != 0 {
			return false
		}
	}
	return true
}

// FilterClosed returns only the closed patterns: those with no strict
// superset of equal support. It is the reference implementation used to
// validate FPClose and for small ad-hoc analyses; complexity is
// quadratic within each support group.
func FilterClosed(ps []Pattern, numItems int) []Pattern {
	bySupport := map[int][]int{}
	for i, p := range ps {
		bySupport[p.Support] = append(bySupport[p.Support], i)
	}
	masks := make([]itemMask, len(ps))
	for i, p := range ps {
		masks[i] = maskOf(p.Items, numItems)
	}
	closed := make([]Pattern, 0, len(ps))
	for _, group := range bySupport {
		for _, i := range group {
			isClosed := true
			for _, j := range group {
				if i == j || len(ps[j].Items) <= len(ps[i].Items) {
					continue
				}
				if masks[i].subsetOf(masks[j]) {
					isClosed = false
					break
				}
			}
			if isClosed {
				closed = append(closed, ps[i])
			}
		}
	}
	return closed
}

// FilterMaximal returns only the maximal frequent patterns: those with
// no frequent strict superset at all (regardless of support). The
// maximal set is a subset of the closed set and gives the most compact
// summary of the frequent-pattern border; it is provided for analyses
// and ablations (the classification framework itself uses closed
// patterns, which preserve supports exactly).
func FilterMaximal(ps []Pattern, numItems int) []Pattern {
	masks := make([]itemMask, len(ps))
	for i, p := range ps {
		masks[i] = maskOf(p.Items, numItems)
	}
	maximal := make([]Pattern, 0, len(ps))
	for i, p := range ps {
		isMax := true
		for j, q := range ps {
			if i == j || len(q.Items) <= len(p.Items) {
				continue
			}
			if masks[i].subsetOf(masks[j]) {
				isMax = false
				break
			}
		}
		if isMax {
			maximal = append(maximal, p)
		}
	}
	return maximal
}
