package mining

import (
	"errors"
	"fmt"
	"log/slog"

	"dfpc/internal/dataset"
	"dfpc/internal/guard"
)

// Backoff configures the adaptive min_sup escalation used by
// MinePerClassAdaptive when a run exhausts its pattern budget. Each
// retry multiplies the relative minimum support by Factor, shrinking
// the pattern space geometrically until the budget fits.
type Backoff struct {
	// Factor multiplies min_sup on each retry (default 2).
	Factor float64
	// MaxRetries bounds the number of escalations (default 4).
	MaxRetries int
	// MaxMinSupport caps the escalated support; climbing past it fails
	// instead of degrading further (default 0.5).
	MaxMinSupport float64
}

// withDefaults fills zero fields with the package defaults.
func (b Backoff) withDefaults() Backoff {
	if b.Factor <= 1 {
		b.Factor = 2
	}
	if b.MaxRetries <= 0 {
		b.MaxRetries = 4
	}
	if b.MaxMinSupport <= 0 || b.MaxMinSupport > 1 {
		b.MaxMinSupport = 0.5
	}
	return b
}

// Degradation records one min_sup escalation performed by
// MinePerClassAdaptive. Callers surface these as warnings so degraded
// runs stay distinguishable from clean ones.
type Degradation struct {
	// Attempt is the 1-based retry number that triggered this record.
	Attempt int
	// FromMinSupport and ToMinSupport are the relative supports before
	// and after the escalation.
	FromMinSupport float64
	ToMinSupport   float64
	// PatternsAtFailure is how many patterns the failed attempt had
	// produced when it hit the budget.
	PatternsAtFailure int
}

func (d Degradation) String() string {
	return fmt.Sprintf("attempt %d: pattern budget hit at %d patterns, min_sup %.4g -> %.4g",
		d.Attempt, d.PatternsAtFailure, d.FromMinSupport, d.ToMinSupport)
}

// MinePerClassAdaptive runs MinePerClass and, when the run trips
// ErrPatternBudget, escalates the relative minimum support
// geometrically and re-mines, up to bk.MaxRetries times. It returns
// the mined patterns, the degradations performed (empty for a clean
// run), and the min_sup that finally succeeded.
//
// Non-budget errors (cancellation, deadlines, memory pressure, bad
// options) are returned unchanged. Exhausting the retries — or
// climbing past bk.MaxMinSupport — returns an error wrapping both
// ErrPatternBudget and guard.ErrDegraded, so callers can distinguish
// "degradation was attempted and still failed" from a plain budget
// trip under a Fail policy.
func MinePerClassAdaptive(b *dataset.Binary, opt PerClassOptions, bk Backoff) ([]Pattern, []Degradation, float64, error) {
	bk = bk.withDefaults()
	degradations := opt.Obs.Counter("mine.degradations")
	var degs []Degradation
	sup := opt.MinSupport
	for attempt := 0; ; attempt++ {
		opt.MinSupport = sup
		ps, err := MinePerClass(b, opt)
		if err == nil {
			return ps, degs, sup, nil
		}
		if !errors.Is(err, ErrPatternBudget) {
			return ps, degs, sup, err
		}
		next := sup * bk.Factor
		if attempt >= bk.MaxRetries || next > bk.MaxMinSupport {
			return ps, degs, sup, fmt.Errorf(
				"mining: %w after %d min_sup escalation(s) (min_sup %.4g, budget %d): %w",
				guard.ErrDegraded, attempt, sup, opt.MaxPatterns, err)
		}
		degs = append(degs, Degradation{
			Attempt:           attempt + 1,
			FromMinSupport:    sup,
			ToMinSupport:      next,
			PatternsAtFailure: len(ps),
		})
		degradations.Inc()
		if opt.Log != nil {
			opt.Log.Warn("pattern budget hit; escalating min_sup",
				slog.Int("attempt", attempt+1),
				slog.Int("patterns_at_failure", len(ps)),
				slog.Float64("from_min_sup", sup),
				slog.Float64("to_min_sup", next))
		}
		sup = next
	}
}
