package mining

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEclatMatchesFPGrowth(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tx := randomTx(r)
		minSup := 1 + r.Intn(4)
		ec, err1 := Eclat(tx, Options{MinSupport: minSup})
		fp, err2 := FPGrowth(tx, Options{MinSupport: minSup})
		if err1 != nil || err2 != nil {
			return false
		}
		return patternsEqual(ec, fp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEclatMaxLen(t *testing.T) {
	tx := classicTx()
	got, err := Eclat(tx, Options{MinSupport: 2, MaxLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range got {
		if p.Len() > 2 {
			t.Fatalf("pattern %v exceeds MaxLen", p.Items)
		}
	}
	want, _ := FPGrowth(tx, Options{MinSupport: 2, MaxLen: 2})
	if !patternsEqual(got, want) {
		t.Fatal("Eclat MaxLen results differ from FPGrowth")
	}
}

func TestEclatBudget(t *testing.T) {
	_, err := Eclat(classicTx(), Options{MinSupport: 1, MaxPatterns: 4})
	if !errors.Is(err, ErrPatternBudget) {
		t.Fatalf("err = %v, want ErrPatternBudget", err)
	}
}

func TestEclatValidation(t *testing.T) {
	if _, err := Eclat(nil, Options{MinSupport: 0}); err == nil {
		t.Fatal("MinSupport=0 should error")
	}
}

func TestEclatEmpty(t *testing.T) {
	got, err := Eclat(nil, Options{MinSupport: 1})
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func BenchmarkEclatClassic(b *testing.B) {
	tx := classicTx()
	for i := 0; i < b.N; i++ {
		if _, err := Eclat(tx, Options{MinSupport: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestFilterMaximal(t *testing.T) {
	ps := []Pattern{
		{Items: []int32{0}, Support: 5},
		{Items: []int32{1}, Support: 4},
		{Items: []int32{0, 1}, Support: 3},
		{Items: []int32{2}, Support: 2},
	}
	max := FilterMaximal(ps, 3)
	SortPatterns(max)
	if len(max) != 2 {
		t.Fatalf("maximal = %v", max)
	}
	// {0,1} and {2} are maximal; {0} and {1} are subsumed.
	if max[0].Len() != 2 && max[1].Len() != 2 {
		t.Fatalf("maximal set wrong: %v", max)
	}
}

func TestMaximalSubsetOfClosed(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tx := randomTx(r)
		all, err := FPGrowth(tx, Options{MinSupport: 2})
		if err != nil {
			return false
		}
		numItems := 0
		for _, t := range tx {
			for _, it := range t {
				if int(it) >= numItems {
					numItems = int(it) + 1
				}
			}
		}
		closed := FilterClosed(all, numItems)
		maximal := FilterMaximal(all, numItems)
		if len(maximal) > len(closed) {
			return false
		}
		// Every maximal pattern must be closed.
		closedKeys := map[string]bool{}
		for _, p := range closed {
			closedKeys[p.Key()] = true
		}
		for _, p := range maximal {
			if !closedKeys[p.Key()] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
