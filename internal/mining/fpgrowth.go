package mining

import (
	"sort"

	"dfpc/internal/guard"
	"dfpc/internal/obs"
)

// FPGrowth mines all frequent itemsets with absolute support ≥
// opt.MinSupport from the transactions (Han, Pei & Yin, SIGMOD'00). It
// returns patterns in no particular order; use SortPatterns for a
// canonical order. It returns ErrPatternBudget when opt.MaxPatterns is
// exceeded, together with the patterns found so far.
func FPGrowth(tx [][]int32, opt Options) ([]Pattern, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if err := opt.hitEntry("fpgrowth"); err != nil {
		return nil, err
	}
	w := make([]int, len(tx))
	for i := range w {
		w[i] = 1
	}
	m := &growthMiner{
		opt:     opt,
		g:       opt.guard(),
		nodes:   opt.Obs.Counter("mine.fptree_nodes"),
		emitted: opt.Obs.Counter("mine.patterns_emitted"),
		ss:      newSearchSpace(opt.Obs),
	}
	if err := m.g.CheckNow(); err != nil {
		return nil, err
	}
	tree := buildTree(tx, w, opt.MinSupport, m.nodes)
	err := m.mine(tree, nil)
	opt.logDone("fpgrowth", len(m.out), err)
	return m.out, err
}

type growthMiner struct {
	opt Options
	out []Pattern
	g   *guard.Guard

	nodes   *obs.Counter
	emitted *obs.Counter
	ss      searchSpace
}

// emit records one pattern; prefix is in discovery order and gets
// sorted into canonical ascending-item order on copy. Every call is
// one candidate considered; FP-Growth only materializes frequent
// extensions, so the candidate either trips the budget or is emitted.
func (m *growthMiner) emit(prefix []int32, support int) error {
	m.ss.candidates.inc(len(prefix))
	if m.opt.MaxPatterns > 0 && len(m.out) >= m.opt.MaxPatterns {
		m.ss.budget.inc(len(prefix))
		return ErrPatternBudget
	}
	if err := m.g.Check(); err != nil {
		return err
	}
	items := append([]int32(nil), prefix...)
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	m.out = append(m.out, Pattern{Items: items, Support: support})
	m.emitted.Inc()
	m.ss.emitted.inc(len(items))
	return nil
}

func (m *growthMiner) mine(tree *fpTree, prefix []int32) error {
	// Cooperative cancellation at every recursion entry (see the
	// guard package's placement rule).
	if err := m.g.Check(); err != nil {
		return err
	}
	if tree.empty() {
		return nil
	}
	if path := tree.singlePath(); path != nil {
		return m.minePath(path, prefix)
	}
	for _, it := range tree.itemsAscending() {
		support := tree.counts[it]
		newPrefix := append(prefix, it)
		if err := m.emit(newPrefix, support); err != nil {
			return err
		}
		if m.opt.MaxLen > 0 && len(newPrefix) >= m.opt.MaxLen {
			continue
		}
		condTx, condW := tree.conditionalBase(it)
		condTree := buildTree(condTx, condW, m.opt.MinSupport, m.nodes)
		if err := m.mine(condTree, newPrefix); err != nil {
			return err
		}
	}
	return nil
}

// minePath enumerates every non-empty combination of a single-path
// tree's nodes; the support of a combination is the count of its
// deepest node.
func (m *growthMiner) minePath(path []*fpNode, prefix []int32) error {
	// Depth-first over include/exclude choices, tracking the deepest
	// included node's count.
	sel := make([]int32, 0, len(path))
	var rec func(i, deepestCount int) error
	rec = func(i, deepestCount int) error {
		if i == len(path) {
			if len(sel) == 0 {
				return nil
			}
			full := append(append([]int32(nil), prefix...), sel...)
			return m.emit(full, deepestCount)
		}
		// Exclude path[i].
		if err := rec(i+1, deepestCount); err != nil {
			return err
		}
		// Include path[i], unless MaxLen forbids it.
		if m.opt.MaxLen > 0 && len(prefix)+len(sel)+1 > m.opt.MaxLen {
			return nil
		}
		sel = append(sel, path[i].item)
		err := rec(i+1, path[i].count)
		sel = sel[:len(sel)-1]
		return err
	}
	return rec(0, 0)
}
