package mining

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"

	"dfpc/internal/durable"
	"dfpc/internal/faults"
)

// Per-class partition checkpoints: one durable single-envelope file
// per (class, cap) pair, so an interrupted per-class mining run resumes
// by replaying the already-mined partitions into the exact same
// class-order merge.
const (
	classKind    = "dfpc-mine-class"
	classVersion = 1
)

// classCheckpoint is the gob payload of one partition's raw pattern
// stream. Key binds the checkpoint to the mining configuration
// (dataset, min_sup, closed, max_len, budget); Cap is part of the
// identity because a capped enumeration is a strict prefix of an
// uncapped one — streams mined at different caps are different
// artifacts.
type classCheckpoint struct {
	Key      string
	Class    int
	Cap      int
	Patterns []Pattern
}

// FileCheckpoint implements PartitionCheckpoint on a directory of
// durable artifacts. Safe for concurrent use: partitions write
// distinct files.
type FileCheckpoint struct {
	dir    string
	key    string
	faults *faults.Registry
}

// NewFileCheckpoint opens (creating if needed) a per-class checkpoint
// directory for a mining run identified by key. r may be nil.
func NewFileCheckpoint(dir, key string, r *faults.Registry) (*FileCheckpoint, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("mining: checkpoint dir: %w", err)
	}
	return &FileCheckpoint{dir: dir, key: key, faults: r}, nil
}

// Dir returns the checkpoint directory.
func (c *FileCheckpoint) Dir() string { return c.dir }

func (c *FileCheckpoint) path(class, cap int) string {
	return filepath.Join(c.dir, fmt.Sprintf("class-%04d-cap-%d.ckpt", class, cap))
}

// Load replays the raw pattern stream of (class, cap). Missing, torn,
// corrupt, or key-mismatched checkpoints return ok=false and the
// partition re-mines.
func (c *FileCheckpoint) Load(class, cap int) ([]Pattern, bool) {
	ver, payload, err := durable.LoadFile(c.path(class, cap), classKind)
	if err != nil || ver != classVersion {
		return nil, false
	}
	var cc classCheckpoint
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&cc); err != nil {
		return nil, false
	}
	if cc.Key != c.key || cc.Class != class || cc.Cap != cap {
		return nil, false
	}
	return cc.Patterns, true
}

// Save atomically persists the raw pattern stream of (class, cap).
func (c *FileCheckpoint) Save(class, cap int, ps []Pattern) error {
	if err := c.faults.Hit(faults.CheckpointWrite); err != nil {
		return err
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(classCheckpoint{
		Key: c.key, Class: class, Cap: cap, Patterns: ps,
	}); err != nil {
		return err
	}
	return durable.SaveFile(c.path(class, cap), classKind, classVersion, payload.Bytes(), c.faults)
}
