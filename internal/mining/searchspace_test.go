package mining

import (
	"fmt"
	"strings"
	"testing"

	"dfpc/internal/obs"
)

// sumDepthCounters totals every mine.depthNN.<kind> counter in the
// report and returns the total plus the set of depths that recorded
// anything.
func sumDepthCounters(counters map[string]int64, kind string) (total int64, depths map[int]int64) {
	depths = map[int]int64{}
	for name, v := range counters {
		if !strings.HasPrefix(name, "mine.depth") || !strings.HasSuffix(name, "."+kind) {
			continue
		}
		var d int
		if _, err := fmt.Sscanf(name, "mine.depth%02d.", &d); err != nil {
			continue
		}
		total += v
		depths[d] += v
	}
	return total, depths
}

// TestSearchSpaceCountersPerMiner runs every miner over the classic
// five-transaction dataset with an observer attached and checks the
// bookkeeping identities: emitted totals equal the returned pattern
// count, candidates dominate emissions, and depth buckets exist for
// each emitted pattern length.
func TestSearchSpaceCountersPerMiner(t *testing.T) {
	miners := []struct {
		name string
		run  func([][]int32, Options) ([]Pattern, error)
	}{
		{"fpclose", FPClose},
		{"fpgrowth", FPGrowth},
		{"eclat", Eclat},
		{"apriori", Apriori},
	}
	tx := classicTx()
	for _, m := range miners {
		t.Run(m.name, func(t *testing.T) {
			o := obs.New()
			ps, err := m.run(tx, Options{MinSupport: 2, MaxLen: 4, Obs: o})
			if err != nil {
				t.Fatal(err)
			}
			if len(ps) == 0 {
				t.Fatal("no patterns mined")
			}
			r := o.Report(m.name)

			emitted, emittedByDepth := sumDepthCounters(r.Counters, "emitted")
			if emitted != int64(len(ps)) {
				t.Fatalf("emitted counters total %d, want %d patterns", emitted, len(ps))
			}
			candidates, _ := sumDepthCounters(r.Counters, "candidates")
			if candidates < emitted {
				t.Fatalf("candidates %d < emitted %d: miner considered fewer sets than it returned", candidates, emitted)
			}
			// Each returned pattern length must be accounted for in its
			// depth bucket.
			wantByDepth := map[int]int64{}
			for _, p := range ps {
				d := p.Len()
				if d > 16 {
					d = 16
				}
				wantByDepth[d]++
			}
			for d, n := range wantByDepth {
				if emittedByDepth[d] != n {
					t.Fatalf("depth %d emitted %d, want %d (per-depth histogram drifted from output)",
						d, emittedByDepth[d], n)
				}
			}
		})
	}
}

// TestSearchSpacePruneCounters: a tight MaxLen forces depth pruning to
// be visible, and apriori's subset check must record its own counter.
func TestSearchSpacePruneCounters(t *testing.T) {
	tx := classicTx()
	o := obs.New()
	if _, err := Apriori(tx, Options{MinSupport: 2, Obs: o}); err != nil {
		t.Fatal(err)
	}
	r := o.Report("apriori")
	pruned, _ := sumDepthCounters(r.Counters, "pruned_infrequent")
	if pruned == 0 {
		t.Fatal("apriori recorded no infrequent prunes on the classic dataset")
	}

	o2 := obs.New()
	if _, err := FPClose(tx, Options{MinSupport: 2, Obs: o2}); err != nil {
		t.Fatal(err)
	}
	r2 := o2.Report("fpclose")
	if sub, _ := sumDepthCounters(r2.Counters, "pruned_subsumed"); sub == 0 {
		t.Fatal("fpclose recorded no subsumption prunes on the classic dataset")
	}
}

// TestSearchSpaceNilObserver: all four miners with no observer must
// neither panic nor change their output.
func TestSearchSpaceNilObserver(t *testing.T) {
	tx := classicTx()
	for _, run := range []func([][]int32, Options) ([]Pattern, error){FPClose, FPGrowth, Eclat, Apriori} {
		withObs, err := run(tx, Options{MinSupport: 2, MaxLen: 4, Obs: obs.New()})
		if err != nil {
			t.Fatal(err)
		}
		without, err := run(tx, Options{MinSupport: 2, MaxLen: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !patternsEqual(withObs, without) {
			t.Fatal("observer changed miner output")
		}
	}
}

// TestDepthCountersClamp: depths below 1 and above maxDepthBucket land
// in the edge buckets instead of growing the namespace.
func TestDepthCountersClamp(t *testing.T) {
	o := obs.New()
	dc := newDepthCounters(o, "candidates")
	dc.inc(0)
	dc.inc(-3)
	dc.inc(1)
	dc.inc(maxDepthBucket + 10)
	r := o.Report("clamp")
	if got := r.Counters["mine.depth01.candidates"]; got != 3 {
		t.Fatalf("depth01 = %d, want 3 (two clamped + one direct)", got)
	}
	if got := r.Counters[fmt.Sprintf("mine.depth%02d.candidates", maxDepthBucket)]; got != 1 {
		t.Fatalf("depth%02d = %d, want 1", maxDepthBucket, got)
	}
	var nilDC *depthCounters
	nilDC.inc(3) // must not panic
	nilDC.add(3, 5)
}
