package c45

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// treeSnapshot flattens the tree into parallel arrays for encoding;
// node 0 is the root, child index -1 means "leaf".
type treeSnapshot struct {
	NumClasses int
	Feature    []int32
	Class      []int
	Present    []int32
	Absent     []int32
}

// MarshalBinary encodes the trained tree (encoding.BinaryMarshaler).
// Only the structure needed for prediction is kept; training histograms
// are dropped.
func (m *Model) MarshalBinary() ([]byte, error) {
	snap := treeSnapshot{NumClasses: m.numClasses}
	var flatten func(nd *node) int32
	flatten = func(nd *node) int32 {
		idx := int32(len(snap.Feature))
		snap.Feature = append(snap.Feature, nd.feature)
		snap.Class = append(snap.Class, nd.class)
		snap.Present = append(snap.Present, -1)
		snap.Absent = append(snap.Absent, -1)
		if nd.feature >= 0 {
			snap.Present[idx] = flatten(nd.present)
			snap.Absent[idx] = flatten(nd.absent)
		}
		return idx
	}
	flatten(m.root)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return nil, fmt.Errorf("c45: marshal: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary restores a tree encoded by MarshalBinary.
func (m *Model) UnmarshalBinary(data []byte) error {
	var snap treeSnapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return fmt.Errorf("c45: unmarshal: %w", err)
	}
	n := len(snap.Feature)
	if n == 0 || snap.NumClasses < 1 {
		return fmt.Errorf("c45: unmarshal: empty snapshot")
	}
	nodes := make([]node, n)
	for i := 0; i < n; i++ {
		nodes[i].feature = snap.Feature[i]
		nodes[i].class = snap.Class[i]
		if nodes[i].feature >= 0 {
			pi, ai := snap.Present[i], snap.Absent[i]
			if pi < 0 || int(pi) >= n || ai < 0 || int(ai) >= n {
				return fmt.Errorf("c45: unmarshal: child index out of range")
			}
			nodes[i].present = &nodes[pi]
			nodes[i].absent = &nodes[ai]
		}
	}
	m.root = &nodes[0]
	m.numClasses = snap.NumClasses
	return nil
}
