package c45

import (
	"testing"
)

// pathFixture: feature 0 perfectly splits the classes; features 2..3
// are noise.
func pathFixture() (x [][]int32, y []int) {
	x = [][]int32{
		{0, 2}, {0, 3}, {0}, {0, 2, 3},
		{2}, {3}, {1, 2}, {1, 3},
	}
	y = []int{0, 0, 0, 0, 1, 1, 1, 1}
	return x, y
}

func TestPredictPathMatchesPredict(t *testing.T) {
	x, y := pathFixture()
	m, err := Train(x, y, 2, Config{MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range x {
		pr := m.PredictPath(row)
		if want := m.Predict(row); pr.Class != want {
			t.Fatalf("row %d: PredictPath class %d, Predict %d", i, pr.Class, want)
		}
		if pr.LeafTotal <= 0 {
			t.Fatalf("row %d: leaf total %d, want positive training mass", i, pr.LeafTotal)
		}
		total := 0
		for _, c := range pr.LeafCounts {
			total += c
		}
		if total != pr.LeafTotal {
			t.Fatalf("row %d: leaf counts %v sum %d != total %d", i, pr.LeafCounts, total, pr.LeafTotal)
		}
		// Each recorded step must be consistent with the row's features.
		for j, st := range pr.Steps {
			if st.Present != hasFeature(row, st.Feature) {
				t.Fatalf("row %d step %d: recorded Present=%v for feature %d, row is %v",
					i, j, st.Present, st.Feature, row)
			}
		}
	}
	_ = y
}

// TestPredictPathReplay: replaying the recorded steps through the tree
// lands on the same leaf class.
func TestPredictPathReplay(t *testing.T) {
	x, y := pathFixture()
	m, err := Train(x, y, 2, Config{MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range x {
		pr := m.PredictPath(row)
		nd := m.root
		for _, st := range pr.Steps {
			if nd.feature != st.Feature {
				t.Fatalf("row %d: step names feature %d, node tests %d", i, st.Feature, nd.feature)
			}
			if st.Present {
				nd = nd.present
			} else {
				nd = nd.absent
			}
		}
		if nd.feature >= 0 {
			t.Fatalf("row %d: replayed path stops at an internal node", i)
		}
		if nd.class != pr.Class {
			t.Fatalf("row %d: replayed leaf class %d != recorded %d", i, nd.class, pr.Class)
		}
	}
}

// TestPredictPathSingleLeaf: a tree pruned to one leaf yields an empty
// path, not a panic.
func TestPredictPathSingleLeaf(t *testing.T) {
	x := [][]int32{{0}, {1}, {2}, {3}}
	y := []int{0, 0, 0, 0}
	m, err := Train(x, y, 1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	pr := m.PredictPath([]int32{0})
	if len(pr.Steps) != 0 {
		t.Fatalf("single-leaf tree recorded steps: %+v", pr.Steps)
	}
	if pr.Class != 0 || pr.LeafTotal != 4 {
		t.Fatalf("single-leaf path: %+v", pr)
	}
}
