package c45

// Per-prediction explanations: the root-to-leaf decision path a row
// takes through the pruned tree, each step naming the feature tested
// and which way the test went, ending in the leaf's class distribution.

// PathStep is one internal-node test on a prediction's decision path.
type PathStep struct {
	// Feature is the feature ID the node tests.
	Feature int32 `json:"feature"`
	// Present reports which branch the row took.
	Present bool `json:"present"`
}

// PathResult is the full decision path of one prediction.
type PathResult struct {
	// Class is the predicted class (identical to Predict's return).
	Class int `json:"class"`
	// Steps lists the tests from the root to the leaf, in order. Empty
	// when the tree is a single leaf.
	Steps []PathStep `json:"steps,omitempty"`
	// LeafCounts is the leaf's training-class histogram; LeafTotal its
	// row count — together the empirical confidence of the prediction.
	LeafCounts []int `json:"leaf_counts,omitempty"`
	LeafTotal  int   `json:"leaf_total"`
}

// PredictPath classifies one sparse binary row exactly like Predict
// while recording the decision path.
func (m *Model) PredictPath(x []int32) *PathResult {
	res := &PathResult{}
	nd := m.root
	for nd.feature >= 0 {
		present := hasFeature(x, nd.feature)
		res.Steps = append(res.Steps, PathStep{Feature: nd.feature, Present: present})
		if present {
			nd = nd.present
		} else {
			nd = nd.absent
		}
	}
	res.Class = nd.class
	res.LeafCounts = append([]int(nil), nd.counts...)
	res.LeafTotal = nd.n
	return res
}
