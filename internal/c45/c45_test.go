package c45

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSingleFeatureSplit(t *testing.T) {
	// Class determined by presence of feature 0.
	var x [][]int32
	var y []int
	for i := 0; i < 20; i++ {
		if i%2 == 0 {
			x = append(x, []int32{0})
			y = append(y, 1)
		} else {
			x = append(x, []int32{1})
			y = append(y, 0)
		}
	}
	m, err := Train(x, y, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]int32{0}); got != 1 {
		t.Fatalf("Predict({0}) = %d, want 1", got)
	}
	if got := m.Predict([]int32{1}); got != 0 {
		t.Fatalf("Predict({1}) = %d, want 0", got)
	}
}

func TestXORNeedsCombinedFeature(t *testing.T) {
	// Greedy gain-based induction cannot split on XOR: both single
	// features have exactly zero gain, so the tree degenerates to a
	// leaf — the paper's Section 3.1.1 motivation for combined
	// features.
	var x [][]int32
	var y []int
	for rep := 0; rep < 5; rep++ {
		x = append(x, []int32{}, []int32{0}, []int32{1}, []int32{0, 1})
		y = append(y, 0, 1, 1, 0)
	}
	m, err := Train(x, y, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() != 1 {
		t.Fatalf("XOR tree size = %d, want 1 (no zero-gain splits)", m.Size())
	}

	// Adding the combined feature x∧y (item 2) makes XOR learnable.
	var x2 [][]int32
	for _, row := range x {
		if len(row) == 2 {
			x2 = append(x2, []int32{0, 1, 2})
		} else {
			x2 = append(x2, row)
		}
	}
	m2, err := Train(x2, y, 2, Config{Confidence: -1})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		row  []int32
		want int
	}{{nil, 0}, {[]int32{0}, 1}, {[]int32{1}, 1}, {[]int32{0, 1, 2}, 0}}
	for _, c := range cases {
		if got := m2.Predict(c.row); got != c.want {
			t.Fatalf("with pattern feature: Predict(%v) = %d, want %d", c.row, got, c.want)
		}
	}
}

func TestPurenodeIsLeaf(t *testing.T) {
	x := [][]int32{{0}, {1}, {0, 1}, {}}
	y := []int{1, 1, 1, 1}
	m, err := Train(x, y, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() != 1 {
		t.Fatalf("pure dataset tree size = %d, want 1", m.Size())
	}
}

func TestMinLeafRespected(t *testing.T) {
	// With MinLeaf = 5 a 6-row dataset cannot split (would need >= 5 per
	// side).
	x := [][]int32{{0}, {0}, {0}, {1}, {1}, {1}}
	y := []int{0, 0, 0, 1, 1, 1}
	m, err := Train(x, y, 2, Config{MinLeaf: 5, Confidence: -1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() != 1 {
		t.Fatalf("tree size = %d, want 1 leaf", m.Size())
	}
}

func TestPruningShrinksNoisyTree(t *testing.T) {
	// Strong signal on feature 0, plus many random noise features.
	r := rand.New(rand.NewSource(11))
	var x [][]int32
	var y []int
	for i := 0; i < 300; i++ {
		c := r.Intn(2)
		row := []int32{}
		if c == 1 {
			row = append(row, 0)
		}
		for f := int32(1); f < 20; f++ {
			if r.Intn(2) == 0 {
				row = append(row, f)
			}
		}
		label := c
		if r.Intn(10) == 0 {
			label = 1 - c
		}
		x = append(x, row)
		y = append(y, label)
	}
	unpruned, err := Train(x, y, 2, Config{Confidence: -1})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := Train(x, y, 2, Config{Confidence: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Size() >= unpruned.Size() {
		t.Fatalf("pruned size %d >= unpruned %d", pruned.Size(), unpruned.Size())
	}
	// The pruned tree must still capture the primary signal.
	correct := 0
	for i := range x {
		if pruned.Predict(x[i]) == y[i] {
			correct++
		}
	}
	if float64(correct)/float64(len(x)) < 0.85 {
		t.Fatalf("pruned accuracy %d/%d too low", correct, len(x))
	}
}

func TestMaxDepth(t *testing.T) {
	var x [][]int32
	var y []int
	for rep := 0; rep < 5; rep++ {
		x = append(x, []int32{}, []int32{0}, []int32{1}, []int32{0, 1})
		y = append(y, 0, 1, 1, 0)
	}
	m, err := Train(x, y, 2, Config{MaxDepth: 1, Confidence: -1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Depth() > 1 {
		t.Fatalf("depth = %d, want <= 1", m.Depth())
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, nil, 2, Config{}); err == nil {
		t.Fatal("empty set should error")
	}
	if _, err := Train([][]int32{{0}}, []int{0, 1}, 2, Config{}); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := Train([][]int32{{0}}, []int{3}, 2, Config{}); err == nil {
		t.Fatal("bad label should error")
	}
	if _, err := Train([][]int32{{0}}, []int{0}, 0, Config{}); err == nil {
		t.Fatal("numClasses=0 should error")
	}
}

func TestMulticlass(t *testing.T) {
	var x [][]int32
	var y []int
	for i := 0; i < 30; i++ {
		c := i % 3
		x = append(x, []int32{int32(c)})
		y = append(y, c)
	}
	m, err := Train(x, y, 3, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if got := m.Predict(x[i]); got != y[i] {
			t.Fatalf("row %d = %d, want %d", i, got, y[i])
		}
	}
}

func TestZValue(t *testing.T) {
	// z(0.25) ≈ 0.6745 (C4.5's default CF).
	if got := zValue(0.25); math.Abs(got-0.6745) > 0.01 {
		t.Fatalf("zValue(0.25) = %v, want ~0.6745", got)
	}
	if got := zValue(0.5); got != 0 {
		t.Fatalf("zValue(0.5) = %v, want 0", got)
	}
	// z(0.05) ≈ 1.6449.
	if got := zValue(0.05); math.Abs(got-1.6449) > 0.01 {
		t.Fatalf("zValue(0.05) = %v, want ~1.6449", got)
	}
}

func TestPessimisticErrors(t *testing.T) {
	// Zero observed errors still produce a positive pessimistic
	// estimate (the "optimism penalty").
	if got := pessimisticErrors(0, 10, 0.25); got <= 0 {
		t.Fatalf("pessimisticErrors(0,10) = %v, want > 0", got)
	}
	// More observed errors → larger estimate.
	if pessimisticErrors(3, 10, 0.25) <= pessimisticErrors(1, 10, 0.25) {
		t.Fatal("pessimistic errors not monotone in observed errors")
	}
	if got := pessimisticErrors(0, 0, 0.25); got != 0 {
		t.Fatalf("n=0 → %v, want 0", got)
	}
}

func TestHasFeature(t *testing.T) {
	row := []int32{1, 5, 9}
	for _, c := range []struct {
		f    int32
		want bool
	}{{1, true}, {5, true}, {9, true}, {0, false}, {4, false}, {10, false}} {
		if got := hasFeature(row, c.f); got != c.want {
			t.Errorf("hasFeature(%d) = %v", c.f, got)
		}
	}
}

func TestQuickTrainingAccuracyBeatsMajority(t *testing.T) {
	// Property: on data with a planted signal, the tree's training
	// accuracy is at least the majority-class baseline.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 40 + r.Intn(200)
		var x [][]int32
		var y []int
		classCount := [2]int{}
		for i := 0; i < n; i++ {
			c := r.Intn(2)
			row := []int32{}
			if c == 1 && r.Intn(4) != 0 {
				row = append(row, 0)
			}
			if r.Intn(2) == 0 {
				row = append(row, 1)
			}
			x = append(x, row)
			y = append(y, c)
			classCount[c]++
		}
		m, err := Train(x, y, 2, Config{})
		if err != nil {
			return false
		}
		correct := 0
		for i := range x {
			if m.Predict(x[i]) == y[i] {
				correct++
			}
		}
		maj := classCount[0]
		if classCount[1] > maj {
			maj = classCount[1]
		}
		return correct >= maj
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
