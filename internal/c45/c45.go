// Package c45 implements a C4.5-style decision-tree learner (Quinlan,
// 1993) over sparse binary feature rows — the stand-in for Weka's J48 in
// the paper's Table 2 experiments. Splits maximize gain ratio over
// binary feature tests; trees are simplified by C4.5's error-based
// (pessimistic) pruning with the standard confidence factor.
package c45

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"sort"
	"time"

	"dfpc/internal/faults"
	"dfpc/internal/guard"
	"dfpc/internal/obs"
)

// Config configures tree induction.
type Config struct {
	// MinLeaf is the minimum number of instances in a leaf (default 2,
	// J48's default).
	MinLeaf int
	// Confidence is the pruning confidence factor CF (default 0.25,
	// J48's default); a negative value disables pruning.
	Confidence float64
	// MaxDepth optionally caps tree depth; 0 means unbounded.
	MaxDepth int
	// Ctx, when non-nil, makes tree growth cancellable; Train aborts
	// with an error satisfying errors.Is(err, guard.ErrCanceled) (or
	// guard.ErrDeadline). Nil costs nothing.
	//vet:ignore ctxfirst per-call Config carrier: Config lives only for one Train call
	Ctx context.Context
	// Deadline aborts growth once passed (0 = none).
	Deadline time.Time
	// Obs, when non-nil, records node-count and depth metrics per Train
	// call. Nil disables recording.
	Obs *obs.Observer
	// Log, when it wraps a non-nil logger, receives one structured
	// DEBUG record per Train call (tree size and depth). The zero
	// handle disables logging; the handle (not a bare *slog.Logger)
	// keeps Config gob-encodable for model serialization.
	Log obs.LogHandle
	// Faults, when non-nil, enables deterministic fault injection at
	// the start of tree induction (point c45.build). Nil is free, and
	// the type gob-encodes as nothing so Config stays serializable.
	Faults *faults.Registry
}

func (c Config) withDefaults() Config {
	if c.MinLeaf <= 0 {
		c.MinLeaf = 2
	}
	if c.Confidence == 0 {
		c.Confidence = 0.25
	}
	return c
}

// node is one tree node. A leaf has feature = -1.
type node struct {
	feature      int32 // split feature; -1 for leaves
	absent       *node // branch where the feature is absent (0)
	present      *node // branch where the feature is present (1)
	class        int   // majority class at this node
	counts       []int // class histogram of the training rows here
	n            int   // total training rows here
	errorsAsLeaf int   // misclassifications if this node were a leaf
}

// Model is a trained decision tree.
type Model struct {
	root       *node
	numClasses int
}

// Train grows and prunes a tree on sparse binary rows x (sorted feature
// IDs) with class labels y in [0, numClasses).
func Train(x [][]int32, y []int, numClasses int, cfg Config) (*Model, error) {
	if len(x) == 0 {
		return nil, fmt.Errorf("c45: empty training set")
	}
	if len(x) != len(y) {
		return nil, fmt.Errorf("c45: %d rows, %d labels", len(x), len(y))
	}
	if numClasses < 1 {
		return nil, fmt.Errorf("c45: numClasses = %d", numClasses)
	}
	for _, yi := range y {
		if yi < 0 || yi >= numClasses {
			return nil, fmt.Errorf("c45: label %d out of range [0,%d)", yi, numClasses)
		}
	}
	cfg = cfg.withDefaults()
	b := &builder{x: x, y: y, numClasses: numClasses, cfg: cfg,
		g: guard.New(cfg.Ctx, guard.Limits{Deadline: cfg.Deadline})}
	if err := b.g.CheckNow(); err != nil {
		return nil, err
	}
	if err := cfg.Faults.Hit(faults.C45Build); err != nil {
		return nil, fmt.Errorf("c45: %w", err)
	}
	rows := make([]int, len(x))
	for i := range rows {
		rows[i] = i
	}
	root := b.grow(rows, 0)
	if b.err != nil {
		return nil, b.err
	}
	if cfg.Confidence > 0 {
		prune(root, cfg.Confidence)
	}
	m := &Model{root: root, numClasses: numClasses}
	if cfg.Obs != nil {
		cfg.Obs.Counter("c45.nodes").Add(int64(m.Size()))
		cfg.Obs.Gauge("c45.depth").Set(float64(m.Depth()))
	}
	if cfg.Log.Logger != nil {
		cfg.Log.Debug("C4.5 tree trained",
			slog.Int("nodes", m.Size()),
			slog.Int("depth", m.Depth()))
	}
	return m, nil
}

type builder struct {
	x          [][]int32
	y          []int
	numClasses int
	cfg        Config
	g          *guard.Guard
	// err records the first guard failure; once set, grow collapses to
	// leaves immediately and Train returns the error instead of a model.
	err error
}

// histogram returns class counts, majority class, and leaf errors for a
// row subset.
func (b *builder) histogram(rows []int) (counts []int, major, errs int) {
	counts = make([]int, b.numClasses)
	for _, r := range rows {
		counts[b.y[r]]++
	}
	for c, n := range counts {
		if n > counts[major] {
			major = c
		}
		_ = n
	}
	return counts, major, len(rows) - counts[major]
}

func entropyOf(counts []int, n int) float64 {
	if n == 0 {
		return 0
	}
	h := 0.0
	for _, c := range counts {
		if c > 0 {
			p := float64(c) / float64(n)
			h -= p * math.Log2(p)
		}
	}
	return h
}

// bestSplit scans the features present in the subset and returns the
// feature with the best gain ratio (C4.5's criterion: maximal gain
// ratio among splits whose information gain is at least the average of
// all positive-gain candidates). ok is false when no useful split
// exists.
func (b *builder) bestSplit(rows []int, counts []int) (feature int32, ok bool) {
	n := len(rows)
	base := entropyOf(counts, n)
	if base == 0 {
		return 0, false
	}

	// presentCount[f][c] for features f that actually occur in rows.
	type stat struct {
		perClass []int
		total    int
	}
	stats := map[int32]*stat{}
	for _, r := range rows {
		for _, f := range b.x[r] {
			s := stats[f]
			if s == nil {
				s = &stat{perClass: make([]int, b.numClasses)}
				stats[f] = s
			}
			s.perClass[b.y[r]]++
			s.total++
		}
	}

	type candidate struct {
		feature   int32
		gain      float64
		gainRatio float64
	}
	var cands []candidate
	absent := make([]int, b.numClasses)
	for f, s := range stats {
		nP := s.total
		nA := n - nP
		if nP < b.cfg.MinLeaf || nA < b.cfg.MinLeaf {
			continue
		}
		for c := range absent {
			absent[c] = counts[c] - s.perClass[c]
		}
		cond := (float64(nP)*entropyOf(s.perClass, nP) + float64(nA)*entropyOf(absent, nA)) / float64(n)
		gain := base - cond
		if gain <= 1e-12 {
			continue
		}
		pP := float64(nP) / float64(n)
		splitInfo := -pP*math.Log2(pP) - (1-pP)*math.Log2(1-pP)
		if splitInfo <= 1e-12 {
			continue
		}
		cands = append(cands, candidate{feature: f, gain: gain, gainRatio: gain / splitInfo})
	}
	if len(cands) == 0 {
		return 0, false
	}
	avgGain := 0.0
	for _, c := range cands {
		avgGain += c.gain
	}
	avgGain /= float64(len(cands))

	sort.Slice(cands, func(i, j int) bool {
		if cands[i].gainRatio != cands[j].gainRatio {
			return cands[i].gainRatio > cands[j].gainRatio
		}
		return cands[i].feature < cands[j].feature
	})
	for _, c := range cands {
		if c.gain >= avgGain-1e-12 {
			return c.feature, true
		}
	}
	return cands[0].feature, true
}

func (b *builder) grow(rows []int, depth int) *node {
	counts, major, errs := b.histogram(rows)
	nd := &node{feature: -1, class: major, counts: counts, n: len(rows), errorsAsLeaf: errs}
	// Cooperative cancellation at every recursion entry; collapsing to a
	// leaf keeps grow's signature while Train surfaces b.err.
	if b.err != nil {
		return nd
	}
	if err := b.g.Check(); err != nil {
		b.err = err
		return nd
	}
	if errs == 0 || len(rows) < 2*b.cfg.MinLeaf {
		return nd
	}
	if b.cfg.MaxDepth > 0 && depth >= b.cfg.MaxDepth {
		return nd
	}
	f, ok := b.bestSplit(rows, counts)
	if !ok {
		return nd
	}
	var presentRows, absentRows []int
	for _, r := range rows {
		if hasFeature(b.x[r], f) {
			presentRows = append(presentRows, r)
		} else {
			absentRows = append(absentRows, r)
		}
	}
	nd.feature = f
	nd.present = b.grow(presentRows, depth+1)
	nd.absent = b.grow(absentRows, depth+1)
	return nd
}

func hasFeature(row []int32, f int32) bool {
	lo, hi := 0, len(row)
	for lo < hi {
		mid := (lo + hi) / 2
		if row[mid] < f {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(row) && row[lo] == f
}

// zValue is the standard-normal deviate for the upper tail probability
// CF, via the rational approximation of Abramowitz & Stegun 26.2.23
// (the same approach C4.5 uses).
func zValue(cf float64) float64 {
	if cf >= 0.5 {
		return 0
	}
	t := math.Sqrt(-2 * math.Log(cf))
	return t - (2.515517+0.802853*t+0.010328*t*t)/
		(1+1.432788*t+0.189269*t*t+0.001308*t*t*t)
}

// pessimisticErrors returns C4.5's upper-confidence-bound estimate of
// the errors among n instances given e observed errors.
func pessimisticErrors(e, n int, cf float64) float64 {
	if n == 0 {
		return 0
	}
	z := zValue(cf)
	f := float64(e) / float64(n)
	nn := float64(n)
	ub := (f + z*z/(2*nn) + z*math.Sqrt(f*(1-f)/nn+z*z/(4*nn*nn))) / (1 + z*z/nn)
	return ub * nn
}

// prune applies subtree replacement bottom-up: a subtree is replaced by
// a leaf when the leaf's pessimistic error estimate does not exceed the
// subtree's.
//
//vet:ignore guardloop recursion bounded by the already-built tree, whose growth was guarded
func prune(nd *node, cf float64) float64 {
	if nd.feature < 0 {
		return pessimisticErrors(nd.errorsAsLeaf, nd.n, cf)
	}
	subtreeErr := prune(nd.present, cf) + prune(nd.absent, cf)
	leafErr := pessimisticErrors(nd.errorsAsLeaf, nd.n, cf)
	if leafErr <= subtreeErr+1e-9 {
		nd.feature = -1
		nd.present = nil
		nd.absent = nil
		return leafErr
	}
	return subtreeErr
}

// Predict returns the predicted class for one sparse binary row.
func (m *Model) Predict(x []int32) int {
	nd := m.root
	for nd.feature >= 0 {
		if hasFeature(x, nd.feature) {
			nd = nd.present
		} else {
			nd = nd.absent
		}
	}
	return nd.class
}

// PredictConf returns the predicted class together with the leaf's
// purity — the fraction of training rows at the deciding leaf that
// carry the predicted class. Empty leaves (possible only on
// degenerate trees) report confidence 0. The prediction is identical
// to Predict's.
func (m *Model) PredictConf(x []int32) (int, float64) {
	nd := m.root
	for nd.feature >= 0 {
		if hasFeature(x, nd.feature) {
			nd = nd.present
		} else {
			nd = nd.absent
		}
	}
	if nd.n == 0 || nd.class >= len(nd.counts) {
		return nd.class, 0
	}
	return nd.class, float64(nd.counts[nd.class]) / float64(nd.n)
}

// PredictAll predicts every row.
func (m *Model) PredictAll(x [][]int32) []int {
	out := make([]int, len(x))
	for i, row := range x {
		out[i] = m.Predict(row)
	}
	return out
}

// Size returns the number of nodes in the tree.
func (m *Model) Size() int { return size(m.root) }

//vet:ignore guardloop recursion bounded by the already-built tree, whose growth was guarded
func size(nd *node) int {
	if nd == nil {
		return 0
	}
	return 1 + size(nd.present) + size(nd.absent)
}

// Depth returns the depth of the tree (a single leaf has depth 1).
func (m *Model) Depth() int { return depth(m.root) }

//vet:ignore guardloop recursion bounded by the already-built tree, whose growth was guarded
func depth(nd *node) int {
	if nd == nil {
		return 0
	}
	d := depth(nd.present)
	if a := depth(nd.absent); a > d {
		d = a
	}
	return 1 + d
}
