package telemetry

import (
	"sync"

	"dfpc/internal/obs"
)

// RunBuffer keeps the last N RunReports in memory for the debug
// server's /runs endpoint, so an operator can inspect recently
// completed folds and runs without tailing logs. A nil *RunBuffer is a
// valid disabled buffer.
type RunBuffer struct {
	mu   sync.Mutex
	cap  int
	runs []*obs.RunReport // oldest first
}

// NewRunBuffer returns a buffer retaining the last capacity reports
// (a non-positive capacity defaults to 32).
func NewRunBuffer(capacity int) *RunBuffer {
	if capacity <= 0 {
		capacity = 32
	}
	return &RunBuffer{cap: capacity}
}

// Add appends a report, evicting the oldest once the buffer is full.
// Nil reports (from a disabled observer) are ignored.
func (b *RunBuffer) Add(r *obs.RunReport) {
	if b == nil || r == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.runs) == b.cap {
		copy(b.runs, b.runs[1:])
		b.runs[len(b.runs)-1] = r
		return
	}
	b.runs = append(b.runs, r)
}

// Snapshot returns the buffered reports, oldest first.
func (b *RunBuffer) Snapshot() []*obs.RunReport {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]*obs.RunReport(nil), b.runs...)
}

// Len returns the number of buffered reports.
func (b *RunBuffer) Len() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.runs)
}
