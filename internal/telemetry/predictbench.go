package telemetry

import "sort"

// PredictBench is one predict-throughput measurement in the benchjson
// document: the serving rate and per-row tail latency of the compiled
// predict path at one batch size on one dataset. cmd/experiments
// emits these alongside the per-stage CV reports and cmd/benchdiff
// gates rows_per_sec against the committed baseline.
type PredictBench struct {
	Dataset string `json:"dataset"`
	Batch   int    `json:"batch"`
	// Rows is the total number of rows scored while measuring.
	Rows       int     `json:"rows"`
	RowsPerSec float64 `json:"rows_per_sec"`
	// P99NSPerRow is the 99th-percentile per-row latency, computed over
	// per-batch wall times divided by the batch size — the tail a
	// serving loop would quote, not the mean the throughput implies.
	P99NSPerRow int64 `json:"p99_ns_per_row"`
}

// P99 returns the 99th-percentile value of samples (nearest-rank on a
// sorted copy; the input is not modified). Zero samples return 0.
func P99(samples []int64) int64 {
	if len(samples) == 0 {
		return 0
	}
	s := make([]int64, len(samples))
	copy(s, samples)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	// Nearest-rank: ceil(0.99·n) as a 1-based rank.
	rank := (99*len(s) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(s) {
		rank = len(s)
	}
	return s[rank-1]
}
