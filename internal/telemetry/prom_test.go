package telemetry

import (
	"strconv"
	"strings"
	"testing"

	"dfpc/internal/obs"
)

// TestPromQuantileSeries pins the exact Prometheus text the obs
// registries render to, including the _quantile gauge companions of
// every histogram family. Golden text, not substring probes: the
// exposition format is a wire contract with external scrapers, so a
// stray label or reordered family should fail loudly. Runtime go_*
// lines vary by Go version and are filtered out before comparison.
func TestPromQuantileSeries(t *testing.T) {
	o := obs.New()
	o.Counter("fptree.nodes").Add(12)
	o.Gauge("mine.min_sup.resolved").Set(0.15)
	h := o.Histogram("stage.mine.duration_ns")
	for _, v := range []int64{100, 100, 100, 100} {
		h.Observe(v)
	}
	d := o.Histogram("featvec.density")
	d.Observe(3)
	d.Observe(5)

	var b strings.Builder
	if err := WriteMetrics(&b, o); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	var got strings.Builder
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.HasPrefix(line, "# TYPE go") || strings.HasPrefix(line, "go_") || line == "" {
			continue
		}
		got.WriteString(line)
		got.WriteByte('\n')
	}

	// Samples of 100 land in log2 bucket 7 (le=127); 3 and 5 land in
	// buckets 2 (le=3) and 3 (le=7). Quantiles interpolate linearly
	// inside the bucket from its lower bound.
	want := `# HELP dfpc_fptree_nodes_total obs counter fptree.nodes
# TYPE dfpc_fptree_nodes_total counter
dfpc_fptree_nodes_total 12
# HELP dfpc_mine_min_sup_resolved obs gauge mine.min_sup.resolved
# TYPE dfpc_mine_min_sup_resolved gauge
dfpc_mine_min_sup_resolved 0.15
# HELP dfpc_featvec_density obs histogram
# TYPE dfpc_featvec_density histogram
dfpc_featvec_density_bucket{le="3"} 1
dfpc_featvec_density_bucket{le="7"} 2
dfpc_featvec_density_bucket{le="+Inf"} 2
dfpc_featvec_density_sum 8
dfpc_featvec_density_count 2
# HELP dfpc_featvec_density_quantile p50/p90/p99 estimates from the obs log2 histogram
# TYPE dfpc_featvec_density_quantile gauge
dfpc_featvec_density_quantile{quantile="0.5"} ` + q(d, 0.50) + `
dfpc_featvec_density_quantile{quantile="0.9"} ` + q(d, 0.90) + `
dfpc_featvec_density_quantile{quantile="0.99"} ` + q(d, 0.99) + `
# HELP dfpc_stage_duration_ns obs histogram
# TYPE dfpc_stage_duration_ns histogram
dfpc_stage_duration_ns_bucket{stage="mine",le="127"} 4
dfpc_stage_duration_ns_bucket{stage="mine",le="+Inf"} 4
dfpc_stage_duration_ns_sum{stage="mine"} 400
dfpc_stage_duration_ns_count{stage="mine"} 4
# HELP dfpc_stage_duration_ns_quantile p50/p90/p99 estimates from the obs log2 histogram
# TYPE dfpc_stage_duration_ns_quantile gauge
dfpc_stage_duration_ns_quantile{stage="mine",quantile="0.5"} ` + q(h, 0.50) + `
dfpc_stage_duration_ns_quantile{stage="mine",quantile="0.9"} ` + q(h, 0.90) + `
dfpc_stage_duration_ns_quantile{stage="mine",quantile="0.99"} ` + q(h, 0.99) + `
`
	if got.String() != want {
		t.Errorf("prom text mismatch\n--- got ---\n%s\n--- want ---\n%s", got.String(), want)
	}
}

// q renders a histogram quantile exactly as the exposition writer
// does, so the golden text stays pinned to the obs interpolation
// rather than re-deriving it by hand.
func q(h *obs.Histogram, quantile float64) string {
	snap := h.Snapshot()
	switch {
	case quantile < 0.6:
		return strconv.FormatInt(snap.P50, 10)
	case quantile < 0.95:
		return strconv.FormatInt(snap.P90, 10)
	default:
		return strconv.FormatInt(snap.P99, 10)
	}
}
