package telemetry

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dfpc/internal/obs"
)

func TestJournalAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	j, err := OpenJournal(path, "dfpc", "abc123")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Kind: "cv", Dataset: "heart", Folds: 5, Accuracy: 0.81}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Kind: "fit", RunID: "custom", Component: "other"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var recs []Record
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var r Record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("line %d not JSON: %v\n%s", len(recs)+1, err, sc.Text())
		}
		recs = append(recs, r)
	}
	if len(recs) != 2 {
		t.Fatalf("journal has %d records, want 2", len(recs))
	}
	r0 := recs[0]
	if r0.RunID != "abc123" || r0.Component != "dfpc" || r0.Time.IsZero() {
		t.Fatalf("record not stamped: %+v", r0)
	}
	if r0.Kind != "cv" || r0.Dataset != "heart" || r0.Accuracy != 0.81 {
		t.Fatalf("record fields lost: %+v", r0)
	}
	// Caller-supplied identity wins over the journal's.
	if recs[1].RunID != "custom" || recs[1].Component != "other" {
		t.Fatalf("caller identity overwritten: %+v", recs[1])
	}
}

func TestJournalAppendsAcrossOpens(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	for i := 0; i < 2; i++ {
		j, err := OpenJournal(path, "dfpc", "r")
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Append(Record{Kind: "mine"}); err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(data), "\n"); n != 2 {
		t.Fatalf("journal has %d lines after two opens, want 2", n)
	}
}

func TestJournalNilSafe(t *testing.T) {
	j, err := OpenJournal("", "dfpc", "r")
	if err != nil || j != nil {
		t.Fatalf("empty path must mean disabled journal, got %v, %v", j, err)
	}
	if err := j.Append(Record{Kind: "cv"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	var s *Session
	s.AddRun(nil)
	s.Journal(Record{})
	s.Close()
	if s.Addr() != "" {
		t.Fatal("nil session must have no address")
	}
}

func TestStagesFromReport(t *testing.T) {
	o := obs.New()
	fit := o.Start("fit")
	o.Start("mine").End()
	o.Start("mine").End()
	sel := o.Start("select")
	time.Sleep(time.Millisecond)
	sel.End()
	fit.End()

	stages := StagesFromReport(o.Report("run"))
	byName := map[string]StageStat{}
	for _, s := range stages {
		byName[s.Name] = s
	}
	if byName["mine"].Count != 2 {
		t.Fatalf("mine count = %d, want 2 (aggregated)", byName["mine"].Count)
	}
	if byName["fit"].Count != 1 || byName["select"].Count != 1 {
		t.Fatalf("unexpected aggregation: %+v", stages)
	}
	// fit contains the 1ms select, so it must sort first.
	if stages[0].Name != "fit" {
		t.Fatalf("stages not sorted by wall time: %+v", stages)
	}
	if StagesFromReport(nil) != nil {
		t.Fatal("nil report must aggregate to nil")
	}
}

func TestFlagsSession(t *testing.T) {
	var f Flags
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	f.Register(fs)
	journal := filepath.Join(t.TempDir(), "j.jsonl")
	err := fs.Parse([]string{
		"-listen", "127.0.0.1:0",
		"-log-format", "json",
		"-journal", journal,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !f.NeedsObserver() {
		t.Fatal("listen+journal must need an observer")
	}

	o := obs.New()
	o.Start("mine").End()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ses, err := f.Start(ctx, "dfpc-test", o, false)
	if err != nil {
		t.Fatal(err)
	}
	defer ses.Close()
	if ses.Log == nil || ses.RunID == "" {
		t.Fatalf("session missing logger or run id: %+v", ses)
	}
	if ses.Addr() == "" {
		t.Fatal("session with -listen must expose a bound address")
	}
	rep := o.Report("run")
	ses.AddRun(rep)
	ses.Journal(Record{Kind: "cv", Stages: StagesFromReport(rep)})

	code, body := httpGet(t, "http://"+ses.Addr()+"/runs")
	if code != 200 || !strings.Contains(body, `"name": "run"`) {
		t.Fatalf("/runs missing published report: %d %s", code, body)
	}

	ses.Close()
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	var rec Record
	if err := json.Unmarshal([]byte(strings.TrimSpace(string(data))), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Kind != "cv" || rec.Component != "dfpc-test" || len(rec.Stages) == 0 {
		t.Fatalf("journal record incomplete: %+v", rec)
	}
}

func TestFlagsBadFormat(t *testing.T) {
	f := Flags{LogFormat: "yaml"}
	if _, err := f.Start(context.Background(), "x", nil, false); err == nil {
		t.Fatal("unknown -log-format must error")
	}
}

func TestFlagsDefaultSession(t *testing.T) {
	// No flags set: session still provides a logger, everything else
	// inert.
	var f *Flags
	if f.NeedsObserver() {
		t.Fatal("nil flags must not need an observer")
	}
	ses, err := (&Flags{}).Start(context.Background(), "dfpc", nil, true)
	if err != nil {
		t.Fatal(err)
	}
	defer ses.Close()
	if ses.Log == nil || ses.Addr() != "" {
		t.Fatal("flagless session must log but not listen")
	}
	ses.Journal(Record{Kind: "noop"}) // disabled journal: must not panic
}
