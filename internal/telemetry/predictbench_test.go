package telemetry

import "testing"

func TestP99(t *testing.T) {
	cases := []struct {
		name string
		in   []int64
		want int64
	}{
		{"empty", nil, 0},
		{"single", []int64{7}, 7},
		{"two", []int64{1, 100}, 100},
		{"hundred", seq(100), 99},      // rank ceil(99) = 99 → value 99
		{"hundred-one", seq(101), 100}, // rank ceil(99.99) = 100 → value 100
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := P99(c.in); got != c.want {
				t.Fatalf("P99(%d samples) = %d, want %d", len(c.in), got, c.want)
			}
		})
	}
	// The input must not be reordered.
	in := []int64{3, 1, 2}
	P99(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatal("P99 mutated its input")
	}
}

// seq returns 1..n in descending order so sorting matters.
func seq(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(n - i)
	}
	return out
}
