// Package telemetry turns the in-process obs layer into a live,
// externally visible telemetry subsystem, using only the standard
// library:
//
//   - a debug HTTP server (Server) exposing /metrics in Prometheus text
//     exposition format, /healthz, /runs (a JSON ring buffer of recent
//     RunReports), and the net/http/pprof endpoints under /debug/pprof/
//   - a structured run journal (Journal): one JSONL record per run —
//     config, per-stage wall/alloc, warnings, accuracy — so long
//     experiment campaigns stay greppable after the fact
//   - slog construction and the shared CLI flag set (Flags/Session)
//     behind -listen, -log-format, and -journal
//
// Like the obs package it builds on, every exported method is safe on a
// nil receiver: a CLI that sets none of the flags pays a nil check per
// call and nothing else.
package telemetry

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"dfpc/internal/faults"
	"dfpc/internal/modelobs"
	"dfpc/internal/obs"
)

// Record is one journal entry: the durable summary of a single Fit,
// cross-validation, or mining run. Every record lands as one line of
// JSON, so `grep dataset journal.jsonl | jq .accuracy` works without
// any tooling.
type Record struct {
	// Time is stamped by Append when zero.
	Time time.Time `json:"time"`
	// RunID ties the record to the process's log records and /runs
	// entries; Append fills it from the journal when empty.
	RunID string `json:"run_id,omitempty"`
	// Component is the producing CLI (dfpc, dfpc-mine, experiments);
	// Append fills it from the journal when empty.
	Component string `json:"component,omitempty"`
	// Kind classifies the run: "cv", "fit", "mine", "table", "figure".
	Kind string `json:"kind"`
	// Dataset names the input dataset.
	Dataset string `json:"dataset,omitempty"`
	// Config carries the run's effective settings (family, learner,
	// min_sup, folds, ...).
	Config map[string]any `json:"config,omitempty"`
	// Folds and the accuracy pair summarize a cross-validation run.
	Folds       int     `json:"folds,omitempty"`
	Accuracy    float64 `json:"accuracy,omitempty"`
	AccuracyStd float64 `json:"accuracy_std,omitempty"`
	// WallNS is the run's total wall time.
	WallNS int64 `json:"wall_ns,omitempty"`
	// Stages aggregates the run's span tree by stage name.
	Stages []StageStat `json:"stages,omitempty"`
	// Warnings lists the run's degradations (min_sup escalations,
	// non-converged SMO solves, failed folds).
	Warnings []string `json:"warnings,omitempty"`
	// Audits carries named decision-audit tables (e.g. "mmrfs" → the
	// per-iteration selection trail). Values must marshal to JSON.
	Audits map[string]any `json:"audits,omitempty"`
	// Drift carries the live-vs-baseline divergence report of a
	// drift-tracked run (kind "drift").
	Drift *modelobs.DriftReport `json:"drift,omitempty"`
}

// StageStat is the per-stage aggregate of a run's spans: how many
// spans closed under this name and their summed wall/allocation.
type StageStat struct {
	Name       string `json:"name"`
	Count      int    `json:"count"`
	WallNS     int64  `json:"wall_ns"`
	AllocBytes uint64 `json:"alloc_bytes,omitempty"`
}

// StagesFromReport flattens a RunReport's span tree into per-stage
// aggregates, summing over every depth. The result is sorted by
// descending wall time (name breaks ties) so the journal's hottest
// stage reads first.
func StagesFromReport(r *obs.RunReport) []StageStat {
	if r == nil {
		return nil
	}
	agg := map[string]*StageStat{}
	var walk func(s *obs.SpanReport)
	walk = func(s *obs.SpanReport) {
		st := agg[s.Name]
		if st == nil {
			st = &StageStat{Name: s.Name}
			agg[s.Name] = st
		}
		st.Count++
		st.WallNS += s.WallNS
		st.AllocBytes += s.AllocBytes
		for _, c := range s.Children {
			walk(c)
		}
	}
	for _, s := range r.Spans {
		walk(s)
	}
	out := make([]StageStat, 0, len(agg))
	for _, st := range agg {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].WallNS != out[j].WallNS {
			return out[i].WallNS > out[j].WallNS
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Journal appends run records to a JSONL file. Construct with
// OpenJournal; a nil *Journal is a valid disabled journal whose methods
// are no-ops, so callers thread it unconditionally.
type Journal struct {
	mu        sync.Mutex
	f         *os.File
	runID     string
	component string
	faults    *faults.Registry
}

// OpenJournal opens (creating or appending to) the journal file at
// path. An empty path returns (nil, nil): journaling off.
func OpenJournal(path, component, runID string) (*Journal, error) {
	if path == "" {
		return nil, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("telemetry: journal: %w", err)
	}
	return &Journal{f: f, runID: runID, component: component}, nil
}

// SetFaults installs a fault-injection registry on the journal (nil is
// fine and is the default).
func (j *Journal) SetFaults(r *faults.Registry) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.faults = r
	j.mu.Unlock()
}

// Append writes one record as a single JSON line, stamping Time,
// RunID, and Component when the caller left them empty.
func (j *Journal) Append(rec Record) error {
	if j == nil {
		return nil
	}
	if rec.Time.IsZero() {
		rec.Time = time.Now()
	}
	if rec.RunID == "" {
		rec.RunID = j.runID
	}
	if rec.Component == "" {
		rec.Component = j.component
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("telemetry: journal: %w", err)
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.faults.Hit(faults.TelemetryJournal); err != nil {
		return fmt.Errorf("telemetry: journal: %w", err)
	}
	// The single O_APPEND write keeps concurrent processes from
	// interleaving; the per-line fsync bounds crash loss to the record
	// in flight, so an interrupted campaign's journal stays replayable.
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("telemetry: journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("telemetry: journal: %w", err)
	}
	return nil
}

// Close flushes and closes the journal file.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// NewRunID returns a short random hex identifier correlating a
// process's log records, /runs entries, and journal lines.
func NewRunID() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Entropy exhaustion is effectively unreachable; fall back to a
		// time-derived id rather than failing the run over telemetry.
		return fmt.Sprintf("t%08x", time.Now().UnixNano()&0xffffffff)
	}
	return hex.EncodeToString(b[:])
}
