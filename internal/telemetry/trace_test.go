package telemetry

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"dfpc/internal/core"
	"dfpc/internal/datagen"
	"dfpc/internal/obs"
	"dfpc/internal/parallel"
)

// tracedReport builds a RunReport with at least one span so the trace
// export has content.
func tracedReport(name string) *obs.RunReport {
	o := obs.New()
	sp := o.Start("fit")
	o.Start("mine").End()
	sp.End()
	return o.Report(name)
}

func decodeTrace(t *testing.T, body string) obs.TraceDoc {
	t.Helper()
	var doc obs.TraceDoc
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("trace endpoint returned invalid JSON: %v\n%s", err, body)
	}
	return doc
}

func TestTraceEndpoint(t *testing.T) {
	rb := NewRunBuffer(4)
	rb.Add(tracedReport("run-0"))
	rb.Add(tracedReport("run-1"))
	base, _ := startTestServer(t, ServerConfig{Obs: obs.New(), Runs: rb})

	// Bare /trace/ and /trace/latest both serve the newest run.
	for _, path := range []string{"/trace/", "/trace/latest"} {
		code, body := httpGet(t, base+path)
		if code != http.StatusOK {
			t.Fatalf("GET %s = %d\n%s", path, code, body)
		}
		doc := decodeTrace(t, body)
		if len(doc.TraceEvents) == 0 {
			t.Fatalf("GET %s: empty trace", path)
		}
		if doc.TraceEvents[0].Args["name"] != "run-1" {
			t.Fatalf("GET %s served %q, want latest run-1", path, doc.TraceEvents[0].Args["name"])
		}
	}

	// An explicit index selects that run.
	code, body := httpGet(t, base+"/trace/0")
	if code != http.StatusOK {
		t.Fatalf("GET /trace/0 = %d", code)
	}
	if doc := decodeTrace(t, body); doc.TraceEvents[0].Args["name"] != "run-0" {
		t.Fatalf("GET /trace/0 served %q, want run-0", doc.TraceEvents[0].Args["name"])
	}

	// Out-of-range and non-numeric selectors are 404s.
	for _, path := range []string{"/trace/7", "/trace/-1", "/trace/abc"} {
		if code, _ := httpGet(t, base+path); code != http.StatusNotFound {
			t.Fatalf("GET %s = %d, want 404", path, code)
		}
	}
}

func TestTraceEndpointNoRuns(t *testing.T) {
	base, _ := startTestServer(t, ServerConfig{Obs: obs.New(), Runs: NewRunBuffer(4)})
	if code, _ := httpGet(t, base+"/trace/"); code != http.StatusNotFound {
		t.Fatalf("empty buffer trace = %d, want 404", code)
	}
	// No buffer configured at all behaves the same.
	base2, _ := startTestServer(t, ServerConfig{Obs: obs.New()})
	if code, _ := httpGet(t, base2+"/trace/"); code != http.StatusNotFound {
		t.Fatalf("nil buffer trace = %d, want 404", code)
	}
}

// TestDebugServerUnderLiveFit is the under-load proof: a parallel
// pattern-pipeline Fit streams spans, counters, and histograms into the
// observer while client goroutines hammer /metrics, /runs, and /trace.
// Run with -race this demonstrates a scrape never tears live state.
func TestDebugServerUnderLiveFit(t *testing.T) {
	if testing.Short() {
		t.Skip("load test")
	}
	assertNoGoroutineLeak(t)
	d, err := datagen.ByName("austral", 1)
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New()
	rb := NewRunBuffer(4)
	base, _ := startTestServer(t, ServerConfig{Obs: o, Runs: rb})

	rows := make([]int, d.NumRows())
	for i := range rows {
		rows[i] = i
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for iter := 0; iter < 3; iter++ {
			p, err := core.New(core.Config{
				Learner:        core.SVMLinear,
				UsePatterns:    true,
				SelectPatterns: true,
				MinSupport:     0.3,
				Workers:        parallel.Workers(4),
			})
			if err != nil {
				t.Error(err)
				return
			}
			p.SetObserver(o)
			if err := p.Fit(d, rows); err != nil {
				t.Error(err)
				return
			}
			rb.Add(o.Report("live-fit"))
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				for _, path := range []string{"/metrics", "/runs", "/trace/latest"} {
					resp, err := http.Get(base + path)
					if err != nil {
						t.Errorf("GET %s: %v", path, err)
						return
					}
					// /trace is 404 until the first report lands; anything
					// else must serve.
					if resp.StatusCode != http.StatusOK &&
						!(strings.HasPrefix(path, "/trace") && resp.StatusCode == http.StatusNotFound) {
						t.Errorf("GET %s = %d", path, resp.StatusCode)
					}
					resp.Body.Close()
				}
				time.Sleep(time.Millisecond)
			}
		}()
	}
	<-done
	wg.Wait()

	// After the dust settles the trace endpoint serves valid JSON with
	// the introspection counters present in /metrics.
	code, body := httpGet(t, base+"/trace/latest")
	if code != http.StatusOK {
		t.Fatalf("final trace = %d", code)
	}
	decodeTrace(t, body)
	_, metrics := httpGet(t, base+"/metrics")
	for _, want := range []string{"mine_depth", "mmrfs_iterations", "measures_ig_bound_checks"} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("final /metrics missing %s", want)
		}
	}
}
