package telemetry

import (
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"testing"
	"time"
)

// assertNoGoroutineLeak snapshots the goroutine count and registers a
// cleanup that fails the test if the count has not returned to the
// snapshot once everything registered after it has shut down. Register
// it FIRST — t.Cleanup runs last-in-first-out, so servers and watchers
// started later are already torn down when the check fires. A short
// grace loop absorbs goroutines still draining through their exits.
func assertNoGoroutineLeak(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		for runtime.NumGoroutine() > before {
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Errorf("goroutine leak: %d before, %d after\n%s",
					before, runtime.NumGoroutine(), buf[:n])
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

func TestHandleSignalsStopReleasesWatcher(t *testing.T) {
	// The first signal.Notify in a process starts a permanent runtime
	// watcher goroutine; force it up before the leak baseline so the
	// check only sees HandleSignals's own goroutine.
	warm := make(chan os.Signal, 1)
	signal.Notify(warm, syscall.SIGUSR1)
	signal.Stop(warm)

	assertNoGoroutineLeak(t)
	ctx, stop := HandleSignals(t.Context(), nil)
	select {
	case <-ctx.Done():
		t.Fatal("context canceled before any signal")
	default:
	}
	stop()
	<-ctx.Done()
	stop() // idempotent
}
