package telemetry

import (
	"fmt"
	"io"
	"math"
	"runtime/metrics"
	"sort"
	"strconv"
	"strings"

	"dfpc/internal/obs"
)

// Prometheus text exposition (version 0.0.4) for the obs registries
// plus a sampled slice of runtime/metrics. Everything dfpc-owned is
// prefixed dfpc_; Go runtime samples keep the conventional go_ prefix.
//
// obs name mapping:
//
//	counter  "fptree.nodes"              -> dfpc_fptree_nodes_total
//	gauge    "mine.min_sup.resolved"     -> dfpc_mine_min_sup_resolved
//	histogram "stage.mine.duration_ns"   -> dfpc_stage_duration_ns{stage="mine"}
//	histogram "stage.mine.alloc_bytes"   -> dfpc_stage_alloc_bytes{stage="mine"}
//
// Stage histograms fold into one family per unit with the stage as a
// label, which is what a dashboard wants to facet on; any other
// histogram becomes its own label-less family.

// WriteMetrics writes one complete scrape to w: the observer's
// counters, gauges, and histograms followed by the Go runtime sample.
// A nil observer writes only the runtime section.
func WriteMetrics(w io.Writer, o *obs.Observer) error {
	rep := o.Report("scrape")
	if rep != nil {
		if err := writeCounters(w, rep.Counters); err != nil {
			return err
		}
		if err := writeGauges(w, rep.Gauges); err != nil {
			return err
		}
		if err := writeHistograms(w, rep.Histograms); err != nil {
			return err
		}
	}
	return writeRuntimeMetrics(w)
}

func writeCounters(w io.Writer, counters map[string]int64) error {
	for _, name := range sortedKeys(counters) {
		fam := "dfpc_" + sanitizeMetricName(name) + "_total"
		if _, err := fmt.Fprintf(w, "# HELP %s obs counter %s\n# TYPE %s counter\n%s %d\n",
			fam, name, fam, fam, counters[name]); err != nil {
			return err
		}
	}
	return nil
}

func writeGauges(w io.Writer, gauges map[string]float64) error {
	for _, name := range sortedKeys(gauges) {
		fam := "dfpc_" + sanitizeMetricName(name)
		if _, err := fmt.Fprintf(w, "# HELP %s obs gauge %s\n# TYPE %s gauge\n%s %s\n",
			fam, name, fam, fam, formatFloat(gauges[name])); err != nil {
			return err
		}
	}
	return nil
}

// histSeries is one histogram series within a family: its label pair
// (empty for label-less families) and snapshot.
type histSeries struct {
	label string // rendered label block, e.g. {stage="mine"}
	snap  obs.HistogramSnapshot
}

func writeHistograms(w io.Writer, hists map[string]obs.HistogramSnapshot) error {
	families := map[string][]histSeries{}
	for _, name := range sortedKeys(hists) {
		fam, label := histogramFamily(name)
		families[fam] = append(families[fam], histSeries{label: label, snap: hists[name]})
	}
	for _, fam := range sortedKeys(families) {
		if _, err := fmt.Fprintf(w, "# HELP %s obs histogram\n# TYPE %s histogram\n", fam, fam); err != nil {
			return err
		}
		for _, s := range families[fam] {
			if err := writeHistogramSeries(w, fam, s); err != nil {
				return err
			}
		}
		if err := writeHistogramQuantiles(w, fam, families[fam]); err != nil {
			return err
		}
	}
	return nil
}

// writeHistogramQuantiles emits the p50/p90/p99 estimates each obs
// snapshot already carries as a companion gauge family
// <fam>_quantile{quantile="0.5"|"0.9"|"0.99"}, so a dashboard can
// plot latency percentiles without a PromQL histogram_quantile over
// the log2 buckets (whose coarse upper bounds would lose precision
// anyway — obs interpolates inside the bucket).
func writeHistogramQuantiles(w io.Writer, fam string, series []histSeries) error {
	qfam := fam + "_quantile"
	if _, err := fmt.Fprintf(w, "# HELP %s p50/p90/p99 estimates from the obs log2 histogram\n# TYPE %s gauge\n", qfam, qfam); err != nil {
		return err
	}
	for _, s := range series {
		for _, q := range [...]struct {
			label string
			v     int64
		}{{"0.5", s.snap.P50}, {"0.9", s.snap.P90}, {"0.99", s.snap.P99}} {
			if _, err := fmt.Fprintf(w, "%s%s %d\n", qfam, mergeLabels(s.label, `quantile="`+q.label+`"`), q.v); err != nil {
				return err
			}
		}
	}
	return nil
}

// histogramFamily maps an obs histogram name to its Prometheus family
// and label block. stage.<s>.duration_ns and stage.<s>.alloc_bytes
// fold into the per-unit stage families; everything else is label-less.
func histogramFamily(name string) (fam, label string) {
	if rest, ok := strings.CutPrefix(name, "stage."); ok {
		for _, unit := range []string{"duration_ns", "alloc_bytes"} {
			if stage, ok := strings.CutSuffix(rest, "."+unit); ok && stage != "" {
				return "dfpc_stage_" + unit, `{stage="` + escapeLabelValue(stage) + `"}`
			}
		}
	}
	return "dfpc_" + sanitizeMetricName(name), ""
}

func writeHistogramSeries(w io.Writer, fam string, s histSeries) error {
	// Prometheus buckets are cumulative and must end with +Inf.
	var cum int64
	for _, b := range s.snap.Buckets {
		cum += b.Count
		le := strconv.FormatInt(b.UpperBound, 10)
		if b.UpperBound == math.MaxInt64 {
			le = "+Inf"
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", fam, mergeLabels(s.label, `le="`+le+`"`), cum); err != nil {
			return err
		}
		if b.UpperBound == math.MaxInt64 {
			cum = -1 // sentinel: +Inf already emitted
			break
		}
	}
	if cum >= 0 {
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", fam, mergeLabels(s.label, `le="+Inf"`), s.snap.Count); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n%s_count%s %d\n",
		fam, s.label, s.snap.Sum, fam, s.label, s.snap.Count); err != nil {
		return err
	}
	return nil
}

// mergeLabels inserts extra into an existing rendered label block (or
// opens one when the series is label-less).
func mergeLabels(block, extra string) string {
	if block == "" {
		return "{" + extra + "}"
	}
	return strings.TrimSuffix(block, "}") + "," + extra + "}"
}

// writeRuntimeMetrics samples runtime/metrics and emits the scalar
// kinds (uint64 and float64); histogram-kind runtime metrics are
// skipped — the interesting distributions here are dfpc's own.
func writeRuntimeMetrics(w io.Writer) error {
	descs := metrics.All()
	samples := make([]metrics.Sample, len(descs))
	for i, d := range descs {
		samples[i].Name = d.Name
	}
	metrics.Read(samples)
	for i, d := range descs {
		var v float64
		switch samples[i].Value.Kind() {
		case metrics.KindUint64:
			v = float64(samples[i].Value.Uint64())
		case metrics.KindFloat64:
			v = samples[i].Value.Float64()
		default:
			continue
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		fam := "go" + sanitizeMetricName(d.Name)
		typ := "gauge"
		if d.Cumulative {
			typ = "counter"
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %s\n", fam, typ, fam, formatFloat(v)); err != nil {
			return err
		}
	}
	return nil
}

// sanitizeMetricName rewrites an arbitrary obs or runtime/metrics name
// into the Prometheus name alphabet, collapsing every other rune
// (dots, slashes, colons) to '_'.
func sanitizeMetricName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabelValue applies the exposition-format escapes for label
// values: backslash, double quote, and newline.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// formatFloat renders a sample value the way Prometheus expects
// (shortest round-trip representation).
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
