package telemetry

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"dfpc/internal/modelobs"
	"dfpc/internal/obs"
)

// ServerConfig configures a debug Server. The zero value is usable:
// it listens on an ephemeral localhost port with no observer wired in.
type ServerConfig struct {
	// Addr is the listen address ("127.0.0.1:9090", ":0", ...).
	Addr string
	// Obs is scraped by /metrics; nil exposes only runtime metrics.
	Obs *obs.Observer
	// Runs backs /runs; nil serves an empty list.
	Runs *RunBuffer
	// Log receives server lifecycle records; nil is silent.
	Log *slog.Logger
	// Drift backs /drift; nil answers 404 (drift tracking disabled).
	// It can also be installed after construction with SetDrift, since
	// CLIs typically build the server before the model is fitted.
	Drift *modelobs.Tracker
}

// Server is the live debug endpoint for a running CLI:
//
//	/metrics        Prometheus text exposition of the obs registries
//	/healthz        liveness probe
//	/drift          JSON live-vs-baseline drift report (modelobs)
//	/runs           JSON ring buffer of recent RunReports
//	/trace/{run}    Chrome trace_event JSON of one buffered run
//	                ({run} = index into /runs, or "latest")
//	/debug/pprof/*  standard net/http/pprof handlers
//
// Construct with NewServer, then Start. A nil *Server is valid and
// inert, so CLIs call Start/Shutdown unconditionally.
type Server struct {
	cfg   ServerConfig
	srv   *http.Server
	mu    sync.Mutex
	ln    net.Listener
	drift *modelobs.Tracker // guarded by mu; see SetDrift
	done  chan struct{}
}

// NewServer builds a Server from cfg without binding the port.
func NewServer(cfg ServerConfig) *Server {
	s := &Server{cfg: cfg, drift: cfg.Drift, done: make(chan struct{})}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/drift", s.handleDrift)
	mux.HandleFunc("/runs", s.handleRuns)
	mux.HandleFunc("/trace/", s.handleTrace)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	return s
}

// Start binds the configured address and serves in the background
// until ctx is canceled or Shutdown is called. It returns once the
// port is bound, so callers can immediately advertise Addr.
func (s *Server) Start(ctx context.Context) error {
	if s == nil {
		return nil
	}
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("telemetry: listen %s: %w", s.cfg.Addr, err)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	if s.cfg.Log != nil {
		s.cfg.Log.Info("debug server listening", slog.String("addr", ln.Addr().String()))
	}
	go func() {
		defer close(s.done)
		// http.Server.Serve always returns non-nil; ErrServerClosed is
		// the orderly-shutdown signal.
		if err := s.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) && s.cfg.Log != nil {
			s.cfg.Log.Warn("debug server stopped", slog.String("err", err.Error()))
		}
	}()
	go func() {
		select {
		case <-ctx.Done():
			shctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = s.srv.Shutdown(shctx)
		case <-s.done:
		}
	}()
	return nil
}

// Addr returns the bound listen address ("" before Start).
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown gracefully stops the server, waiting for in-flight scrapes
// up to ctx's deadline.
func (s *Server) Shutdown(ctx context.Context) error {
	if s == nil {
		return nil
	}
	err := s.srv.Shutdown(ctx)
	<-s.done
	return err
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := WriteMetrics(w, s.cfg.Obs); err != nil && s.cfg.Log != nil {
		s.cfg.Log.Warn("metrics scrape failed", slog.String("err", err.Error()))
	}
}

// SetDrift installs (or replaces) the tracker behind /drift. Safe to
// call while the server is serving — CLIs build the tracker only
// after the session (and thus the server) is up. Nil-safe.
func (s *Server) SetDrift(t *modelobs.Tracker) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.drift = t
	s.mu.Unlock()
}

// handleDrift serves the live drift report: 404 while no tracker is
// installed, 500 when the report itself fails (fault injection), and
// otherwise the indented-JSON DriftReport — deterministic bytes for
// deterministic tracker state.
func (s *Server) handleDrift(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	t := s.drift
	s.mu.Unlock()
	rep, err := t.Report()
	if err != nil {
		http.Error(w, fmt.Sprintf("drift report failed: %v", err), http.StatusInternalServerError)
		return
	}
	if rep == nil {
		http.Error(w, "drift tracking disabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil && s.cfg.Log != nil {
		s.cfg.Log.Warn("drift encode failed", slog.String("err", err.Error()))
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleTrace serves one buffered RunReport as Chrome trace_event JSON,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. The path
// suffix selects the run: an index into the /runs listing (oldest
// first) or "latest" for the newest.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	runs := s.cfg.Runs.Snapshot()
	if len(runs) == 0 {
		http.Error(w, "no buffered runs", http.StatusNotFound)
		return
	}
	sel := strings.TrimPrefix(r.URL.Path, "/trace/")
	idx := len(runs) - 1
	if sel != "" && sel != "latest" {
		n, err := strconv.Atoi(sel)
		if err != nil || n < 0 || n >= len(runs) {
			http.Error(w, fmt.Sprintf("no such run %q (have %d)", sel, len(runs)), http.StatusNotFound)
			return
		}
		idx = n
	}
	w.Header().Set("Content-Type", "application/json")
	if err := runs[idx].WriteTrace(w); err != nil && s.cfg.Log != nil {
		s.cfg.Log.Warn("trace encode failed", slog.String("err", err.Error()))
	}
}

func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	runs := s.cfg.Runs.Snapshot()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if runs == nil {
		fmt.Fprintln(w, "[]")
		return
	}
	if err := enc.Encode(runs); err != nil && s.cfg.Log != nil {
		s.cfg.Log.Warn("runs encode failed", slog.String("err", err.Error()))
	}
}
