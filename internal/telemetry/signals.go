package telemetry

import (
	"context"
	"log/slog"
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// HandleSignals installs the CLIs' shared two-stage interrupt policy on
// SIGINT and SIGTERM:
//
//   - the first signal cancels the returned context — the run winds down
//     gracefully, reporting partial statistics, flushing the journal,
//     and leaving checkpoints behind for -resume
//   - a second signal hard-exits with status 130, for runs wedged in a
//     stage that ignores cancellation
//
// The returned stop function releases the signal handler and the
// watcher goroutine; call it once the run is past the point where
// graceful cancellation matters (typically via defer).
func HandleSignals(parent context.Context, log *slog.Logger) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		defer signal.Stop(ch)
		select {
		case sig := <-ch:
			if log != nil {
				log.Warn("signal received; finishing gracefully (repeat to force exit)",
					slog.String("signal", sig.String()))
			}
			cancel()
		case <-done:
			return
		}
		select {
		case sig := <-ch:
			if log != nil {
				log.Error("second signal; exiting immediately",
					slog.String("signal", sig.String()))
			}
			os.Exit(130)
		case <-done:
		}
	}()
	var once sync.Once
	return ctx, func() {
		once.Do(func() { close(done) })
		cancel()
	}
}
