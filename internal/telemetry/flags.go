package telemetry

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"dfpc/internal/faults"
	"dfpc/internal/modelobs"
	"dfpc/internal/obs"
)

// Flags is the telemetry flag set shared by the dfpc, dfpc-mine, and
// experiments CLIs. Register it on the command's FlagSet, parse, then
// Start a Session.
type Flags struct {
	// Listen is the debug server address; empty disables the server.
	Listen string
	// LogFormat selects the slog handler: "text" or "json".
	LogFormat string
	// Journal is the JSONL run-journal path; empty disables journaling.
	Journal string
	// DriftWarn is the -drift-warn PSI threshold; > 0 enables drift
	// tracking and WARNs when the max per-dimension PSI crosses it.
	DriftWarn float64
	// DriftWindow is the -drift-window sketch window size in
	// predictions; > 0 enables drift tracking (0 with -drift-warn set
	// uses the modelobs default, 256).
	DriftWindow int
}

// Register installs the -listen, -log-format, -journal, -drift-warn,
// and -drift-window flags.
func (f *Flags) Register(fs *flag.FlagSet) {
	if f == nil {
		return
	}
	fs.StringVar(&f.Listen, "listen", "", "serve /metrics, /runs, /healthz, /drift and /debug/pprof on this address (e.g. :9090)")
	fs.StringVar(&f.LogFormat, "log-format", "text", "structured log format: text or json")
	fs.StringVar(&f.Journal, "journal", "", "append one JSONL record per run to this file")
	fs.Float64Var(&f.DriftWarn, "drift-warn", 0, "track prediction drift and log WARN when live-vs-baseline PSI crosses this threshold (0 disables unless -drift-window is set; 0.25 is the conventional 'significant shift' cut)")
	fs.IntVar(&f.DriftWindow, "drift-window", 0, "predictions per drift sketch window (0 = 256 when drift tracking is on)")
}

// DriftEnabled reports whether either drift flag asks for prediction
// drift tracking.
func (f *Flags) DriftEnabled() bool {
	return f != nil && (f.DriftWarn > 0 || f.DriftWindow > 0)
}

// NewDriftTracker builds the modelobs tracker the drift flags
// describe, or nil when drift tracking is off. o receives the
// dfpc_drift_* gauges; log the threshold WARNs.
func (f *Flags) NewDriftTracker(o *obs.Observer, log *slog.Logger) *modelobs.Tracker {
	if !f.DriftEnabled() {
		return nil
	}
	return modelobs.NewTracker(modelobs.TrackerConfig{
		WindowSize: f.DriftWindow,
		WarnPSI:    f.DriftWarn,
		Obs:        o,
		Log:        log,
	})
}

// NeedsObserver reports whether the flags require a live observer even
// when the user did not ask for a report: the debug server scrapes it
// and the journal aggregates its spans.
func (f *Flags) NeedsObserver() bool {
	return f != nil && (f.Listen != "" || f.Journal != "" || f.DriftEnabled())
}

// Session is a CLI's telemetry lifetime: the root logger, the debug
// server (if -listen), the journal (if -journal), and the /runs ring
// buffer. Construct with Flags.Start; a nil *Session is valid and
// inert. Close it before exit — including on error paths, since
// os.Exit skips deferred calls.
type Session struct {
	// Log is the process root logger, always non-nil on a session
	// returned by Start: stderr, with component and run_id attributes,
	// at debug level when the CLI's -verbose flag is set.
	Log   *slog.Logger
	RunID string

	journal *Journal
	server  *Server
	runs    *RunBuffer
}

// Start opens the session: builds the root logger, opens the journal,
// and binds + serves the debug server until ctx is canceled or the
// session is closed. component names the CLI in logs and journal
// records; verbose lowers the log level to debug.
func (f *Flags) Start(ctx context.Context, component string, o *obs.Observer, verbose bool) (*Session, error) {
	runID := NewRunID()
	lvl := slog.LevelInfo
	if verbose {
		lvl = slog.LevelDebug
	}
	var h slog.Handler
	format := "text"
	if f != nil && f.LogFormat != "" {
		format = f.LogFormat
	}
	switch format {
	case "text":
		h = slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})
	case "json":
		h = slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})
	default:
		return nil, fmt.Errorf("telemetry: unknown -log-format %q (want text or json)", format)
	}
	log := slog.New(h).With(
		slog.String("component", component),
		slog.String("run_id", runID),
	)
	ses := &Session{Log: log, RunID: runID}
	if f == nil {
		return ses, nil
	}
	j, err := OpenJournal(f.Journal, component, runID)
	if err != nil {
		return nil, err
	}
	ses.journal = j
	if f.Listen != "" {
		ses.runs = NewRunBuffer(32)
		ses.server = NewServer(ServerConfig{
			Addr: f.Listen,
			Obs:  o,
			Runs: ses.runs,
			Log:  log,
		})
		if err := ses.server.Start(ctx); err != nil {
			_ = j.Close()
			return nil, err
		}
	}
	return ses, nil
}

// SetFaults installs a fault-injection registry on the session's
// journal, so -faults specs can target telemetry.journal.
func (s *Session) SetFaults(r *faults.Registry) {
	if s == nil {
		return
	}
	s.journal.SetFaults(r)
}

// EnableDrift exposes the tracker on the debug server's /drift
// endpoint. Safe before or after Start's server is serving; a no-op
// without -listen.
func (s *Session) EnableDrift(t *modelobs.Tracker) {
	if s == nil {
		return
	}
	s.server.SetDrift(t)
}

// AddRun publishes a completed RunReport to the /runs ring buffer.
func (s *Session) AddRun(r *obs.RunReport) {
	if s == nil {
		return
	}
	s.runs.Add(r)
}

// Journal appends one record to the run journal (a no-op without
// -journal). Failures are logged, not fatal: telemetry must never
// kill a finished run.
func (s *Session) Journal(rec Record) {
	if s == nil {
		return
	}
	if err := s.journal.Append(rec); err != nil && s.Log != nil {
		s.Log.Warn("journal append failed", slog.String("err", err.Error()))
	}
}

// Close shuts the debug server down gracefully and closes the journal.
func (s *Session) Close() {
	if s == nil {
		return
	}
	if s.server != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_ = s.server.Shutdown(ctx)
		cancel()
	}
	if err := s.journal.Close(); err != nil && s.Log != nil {
		s.Log.Warn("journal close failed", slog.String("err", err.Error()))
	}
}

// Addr returns the debug server's bound address ("" when -listen is
// unset), for tests and startup banners.
func (s *Session) Addr() string {
	if s == nil {
		return ""
	}
	return s.server.Addr()
}
