package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"dfpc/internal/obs"
)

// startTestServer binds an ephemeral port and returns the base URL and
// a cancel that shuts the server down.
func startTestServer(t *testing.T, cfg ServerConfig) (string, context.CancelFunc) {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	s := NewServer(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	if err := s.Start(ctx); err != nil {
		cancel()
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() {
		cancel()
		sctx, scancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer scancel()
		_ = s.Shutdown(sctx)
	})
	return "http://" + s.Addr(), cancel
}

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// expositionLine matches one sample line of the Prometheus text
// format: name, optional label block, space, value.
var expositionLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{([a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*",?)*\})? [^ ]+$`)

func TestMetricsExposition(t *testing.T) {
	o := obs.New()
	// A hostile span name exercises label-value escaping.
	sp := o.Start(`we"ird\stage`)
	time.Sleep(time.Millisecond)
	sp.End()
	o.Start("mine").End()
	o.Counter("fptree.nodes").Add(42)
	o.Gauge("mine.min_sup.resolved").Set(0.15)

	base, _ := startTestServer(t, ServerConfig{Obs: o})
	code, body := httpGet(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}

	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Fatalf("unparseable exposition line: %q", line)
		}
	}

	for _, want := range []string{
		"# TYPE dfpc_fptree_nodes_total counter",
		"dfpc_fptree_nodes_total 42",
		"# TYPE dfpc_mine_min_sup_resolved gauge",
		"dfpc_mine_min_sup_resolved 0.15",
		"# TYPE dfpc_stage_duration_ns histogram",
		`dfpc_stage_duration_ns_count{stage="mine"} 1`,
		`dfpc_stage_duration_ns_bucket{stage="mine",le="+Inf"} 1`,
		`{stage="we\"ird\\stage"}`,
		"# TYPE go_sched_goroutines_goroutines gauge",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Bucket counts must be cumulative and end at _count.
	bucketRe := regexp.MustCompile(`dfpc_stage_duration_ns_bucket\{stage="mine",le="([^"]+)"\} (\d+)`)
	var last int64 = -1
	var infSeen bool
	for _, m := range bucketRe.FindAllStringSubmatch(body, -1) {
		n, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			t.Fatalf("bucket count %q: %v", m[2], err)
		}
		if n < last {
			t.Fatalf("bucket counts not cumulative: %v then %v", last, n)
		}
		last = n
		if m[1] == "+Inf" {
			infSeen = true
			if n != 1 {
				t.Fatalf("+Inf bucket = %d, want 1 (the _count)", n)
			}
		}
	}
	if !infSeen {
		t.Fatal("no +Inf bucket emitted")
	}
}

func TestMetricsNilObserver(t *testing.T) {
	base, _ := startTestServer(t, ServerConfig{})
	code, body := httpGet(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if strings.Contains(body, "dfpc_") {
		t.Fatal("nil observer must expose no dfpc_ families")
	}
	if !strings.Contains(body, "go_") {
		t.Fatal("runtime metrics missing")
	}
}

func TestHealthz(t *testing.T) {
	base, _ := startTestServer(t, ServerConfig{})
	code, body := httpGet(t, base+"/healthz")
	if code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
}

func TestRunsEndpointAndEviction(t *testing.T) {
	rb := NewRunBuffer(3)
	for i := 0; i < 5; i++ {
		o := obs.New()
		o.Start("mine").End()
		rb.Add(o.Report(fmt.Sprintf("run-%d", i)))
	}
	if rb.Len() != 3 {
		t.Fatalf("ring kept %d runs, want 3", rb.Len())
	}
	base, _ := startTestServer(t, ServerConfig{Runs: rb})
	code, body := httpGet(t, base+"/runs")
	if code != http.StatusOK {
		t.Fatalf("/runs status = %d", code)
	}
	var runs []obs.RunReport
	if err := json.Unmarshal([]byte(body), &runs); err != nil {
		t.Fatalf("/runs not JSON: %v\n%s", err, body)
	}
	if len(runs) != 3 || runs[0].Name != "run-2" || runs[2].Name != "run-4" {
		names := make([]string, len(runs))
		for i := range runs {
			names[i] = runs[i].Name
		}
		t.Fatalf("ring contents = %v, want [run-2 run-3 run-4]", names)
	}
}

func TestRunsEmpty(t *testing.T) {
	base, _ := startTestServer(t, ServerConfig{})
	code, body := httpGet(t, base+"/runs")
	if code != http.StatusOK || strings.TrimSpace(body) != "[]" {
		t.Fatalf("/runs on empty buffer = %d %q, want 200 []", code, body)
	}
}

func TestPprofIndex(t *testing.T) {
	base, _ := startTestServer(t, ServerConfig{})
	code, body := httpGet(t, base+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
}

func TestGracefulShutdownOnCancel(t *testing.T) {
	base, cancel := startTestServer(t, ServerConfig{})
	if code, _ := httpGet(t, base+"/healthz"); code != http.StatusOK {
		t.Fatal("server not up before cancel")
	}
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			return // down, as desired
		}
		resp.Body.Close()
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("server still serving 5s after context cancel")
}

// TestConcurrentScrape hammers /metrics while spans, counters, and
// histograms are being recorded — the run-with-`-race` proof that a
// scrape never tears a live observer.
func TestConcurrentScrape(t *testing.T) {
	o := obs.New()
	rb := NewRunBuffer(8)
	base, _ := startTestServer(t, ServerConfig{Obs: o, Runs: rb})

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := o.Counter("work.items")
			for i := 0; i < 200; i++ {
				sp := o.Start(fmt.Sprintf("fold-%d", w))
				c.Inc()
				o.Gauge("progress").Set(float64(i))
				sp.End()
				if i%50 == 0 {
					rb.Add(o.Report("inflight"))
				}
			}
		}(w)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for i := 0; ; i++ {
		if code, _ := httpGet(t, base+"/metrics"); code != http.StatusOK {
			t.Fatalf("scrape %d failed", i)
		}
		if code, _ := httpGet(t, base+"/runs"); code != http.StatusOK {
			t.Fatalf("runs scrape %d failed", i)
		}
		select {
		case <-done:
		default:
			if i < 1000 {
				continue
			}
		}
		break
	}
	wg.Wait()

	_, body := httpGet(t, base+"/metrics")
	if !strings.Contains(body, `dfpc_stage_duration_ns_count{stage="fold-0"}`) {
		t.Fatal("final scrape missing live stage histogram")
	}
}

func TestServerNilSafe(t *testing.T) {
	var s *Server
	if err := s.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if s.Addr() != "" {
		t.Fatal("nil server must have no address")
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	var rb *RunBuffer
	rb.Add(&obs.RunReport{})
	if rb.Len() != 0 || rb.Snapshot() != nil {
		t.Fatal("nil RunBuffer must be inert")
	}
}
