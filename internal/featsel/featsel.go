// Package featsel implements the paper's feature-selection step:
// MMRFS (Algorithm 1), a Maximal-Marginal-Relevance-style greedy search
// that selects patterns that are relevant to the class label and
// minimally redundant with the already-selected set, under a database
// coverage constraint δ. It also provides the plain relevance filters
// (top-k information gain) used for the Item_FS baseline in Tables 1–2.
package featsel

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"sort"
	"time"

	"dfpc/internal/bitset"
	"dfpc/internal/faults"
	"dfpc/internal/guard"
	"dfpc/internal/measures"
	"dfpc/internal/obs"
	"dfpc/internal/parallel"
)

// Relevance selects the relevance measure S(α) used by MMRFS
// (Definition 3: information gain or Fisher score).
type Relevance int

const (
	// InfoGain uses IG(C|X) as relevance.
	InfoGain Relevance = iota
	// Fisher uses the Fisher score as relevance.
	Fisher
)

func (r Relevance) String() string {
	switch r {
	case InfoGain:
		return "information-gain"
	case Fisher:
		return "fisher-score"
	default:
		return fmt.Sprintf("Relevance(%d)", int(r))
	}
}

// relevanceCap bounds relevance so that +Inf Fisher scores (perfectly
// separating features) stay arithmetically safe inside the redundancy
// product of Eq. 9.
const relevanceCap = 1e9

// Candidate is one feature candidate: an itemset together with its
// coverage bitset over the training rows.
type Candidate struct {
	Items []int32
	Cover *bitset.Bitset
}

// Options configures MMRFS.
type Options struct {
	// Relevance is the S measure (default InfoGain).
	Relevance Relevance
	// Coverage is δ: selection stops once every coverable training
	// instance is correctly covered δ times (default 1).
	Coverage int
	// MaxFeatures optionally caps the number of selected features;
	// 0 means unbounded (the coverage constraint decides).
	MaxFeatures int
	// Ctx, when non-nil, makes the greedy loop cancellable; selection
	// aborts with an error satisfying errors.Is(err, guard.ErrCanceled)
	// (or guard.ErrDeadline). Nil costs nothing.
	//vet:ignore ctxfirst per-call Options carrier: Options lives only for one Select call
	Ctx context.Context
	// Deadline aborts selection once passed (0 = none).
	Deadline time.Time
	// Obs, when non-nil, records the MMRFS span, iteration/selection
	// counters, and the final coverage residual. Nil disables recording.
	Obs *obs.Observer
	// Log, when non-nil, receives one structured DEBUG record per
	// selection run (candidates, selected, coverage residual). Nil
	// disables logging.
	Log *slog.Logger
	// Workers bounds the per-iteration gain scan's worker pool
	// (0 = GOMAXPROCS, 1 = sequential). Selection is deterministic for
	// any worker count: the scan is a chunked reduction merged in chunk
	// order with a strict-inequality tie-break, so the selected feature
	// set is bit-for-bit identical to the sequential run.
	Workers parallel.Workers
	// Faults, when non-nil, enables deterministic fault injection at
	// the selection entry (point featsel.mmrfs). Nil is free.
	Faults *faults.Registry
}

func (o Options) withDefaults() Options {
	if o.Coverage <= 0 {
		o.Coverage = 1
	}
	return o
}

// Result reports the outcome of a selection run.
type Result struct {
	// Selected holds indices into the candidate slice, in selection
	// order (most relevant first).
	Selected []int
	// Relevance holds S(α) for every candidate (same indexing as the
	// input slice), useful for diagnostics and the figures.
	Relevance []float64
	// Audit is the per-iteration decision trail, recorded only when
	// Options.Obs is enabled (the greedy loop is sequential, so the
	// trail is identical at any worker count). Entries appear in
	// decision order; accepted entries correspond 1:1 with Selected.
	Audit []AuditEntry
}

// AuditEntry records one MMRFS iteration's decision: which candidate
// the gain scan picked, the Eq. 10 quantities behind the pick, and
// whether the coverage test accepted it.
type AuditEntry struct {
	// Iteration numbers decisions from 1.
	Iteration int `json:"iter"`
	// Candidate indexes the input candidate slice.
	Candidate int `json:"candidate"`
	// Items is the candidate's itemset.
	Items []int32 `json:"items"`
	// Relevance is S(α); Redundancy is max over the selected set of
	// R(α,β) at decision time; Gain is their difference (Eq. 10).
	Relevance  float64 `json:"relevance"`
	Redundancy float64 `json:"redundancy"`
	Gain       float64 `json:"gain"`
	// Accepted is true when the candidate joined the selected set;
	// Reason is "selected" or "no-uncovered-instance" (the candidate
	// correctly covers no instance still below δ and is dropped).
	Accepted bool   `json:"accepted"`
	Reason   string `json:"reason"`
}

// parallelMinCandidates is the candidate-pool size below which the
// gain scan stays sequential: spawning a chunk per worker costs more
// than scanning a few hundred candidates in place.
const parallelMinCandidates = 512

// scoreAll computes S(α) for each candidate, fanning the (independent,
// per-element) measure evaluations out over w workers when the pool is
// large enough to pay for the scheduling.
func scoreAll(cands []Candidate, classMasks []*bitset.Bitset, rel Relevance, w parallel.Workers) []float64 {
	scores := make([]float64, len(cands))
	scoreRange := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var s float64
			switch rel {
			case Fisher:
				s = measures.FisherScore(cands[i].Cover, classMasks)
			default:
				s = measures.InfoGain(cands[i].Cover, classMasks)
			}
			if math.IsInf(s, 1) || s > relevanceCap {
				s = relevanceCap
			}
			scores[i] = s
		}
	}
	workers := w.Resolve()
	if workers <= 1 || len(cands) < parallelMinCandidates {
		scoreRange(0, len(cands))
		return scores
	}
	chunks := parallel.Chunks(len(cands), workers)
	// Closures write only their own chunk's scores[i] slots and cannot
	// fail, so the pool never returns an error.
	_ = parallel.ForEach(w, len(chunks), func(c int) error {
		scoreRange(chunks[c][0], chunks[c][1])
		return nil
	})
	return scores
}

// redundancy implements Eq. 9: R(α,β) = P(α,β) / (P(α)+P(β)−P(α,β)) ×
// min(S(α), S(β)), i.e. the Jaccard similarity of the coverage sets
// scaled by the smaller relevance.
func redundancy(a, b Candidate, sa, sb float64) float64 {
	inter := a.Cover.AndCount(b.Cover)
	union := a.Cover.Count() + b.Cover.Count() - inter
	if union == 0 {
		return 0
	}
	jac := float64(inter) / float64(union)
	return jac * math.Min(sa, sb)
}

// majorityClass returns the majority class among the rows covered by
// cov (ties broken toward the smaller class index), or -1 for an empty
// cover. A feature "correctly covers" an instance when the instance's
// class matches this label — the sense in which Algorithm 1 requires
// each selected pattern to correctly cover at least one instance.
func majorityClass(cov *bitset.Bitset, classMasks []*bitset.Bitset) int {
	best, bestCount := -1, 0
	for c, mask := range classMasks {
		n := cov.AndCount(mask)
		if n > bestCount {
			best, bestCount = c, n
		}
	}
	return best
}

// MMRFS runs Algorithm 1 over the candidates. labels[i] is the class of
// training row i; classMasks partition the rows by class. It returns
// the selected candidate indices in selection order.
//
// The search starts from the most relevant pattern, then repeatedly
// adds the pattern with maximal marginal gain g(α) = S(α) −
// max_{β∈Fs} R(α,β) (Eq. 10), provided it correctly covers at least one
// instance that is not yet covered δ times; it stops when every
// coverable instance is covered δ times or the candidate pool is
// exhausted.
func MMRFS(cands []Candidate, classMasks []*bitset.Bitset, labels []int, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	g := guard.New(opt.Ctx, guard.Limits{Deadline: opt.Deadline})
	if err := g.CheckNow(); err != nil {
		return nil, err
	}
	if err := opt.Faults.Hit(faults.FeatselMMRFS); err != nil {
		return nil, fmt.Errorf("featsel: %w", err)
	}
	n := len(labels)
	for i, c := range cands {
		if c.Cover == nil || c.Cover.Len() != n {
			return nil, fmt.Errorf("featsel: candidate %d cover length mismatch", i)
		}
	}
	// The span opens before the candidate buffers (scores, majority,
	// covered, redundancy caches) are allocated, so its alloc_bytes
	// histogram reflects the selection's real footprint instead of the
	// few KB the greedy loop itself allocates.
	sp := opt.Obs.Start("mmrfs").
		Attr("candidates", len(cands)).
		Attr("delta", opt.Coverage)
	res := &Result{Relevance: scoreAll(cands, classMasks, opt.Relevance, opt.Workers)}
	if len(cands) == 0 {
		sp.End()
		return res, nil
	}

	majority := make([]int, len(cands))
	for i, c := range cands {
		majority[i] = majorityClass(c.Cover, classMasks)
	}

	// coverable[i]: some candidate correctly covers row i; rows no
	// candidate can cover are excluded from the δ-coverage stopping
	// test, otherwise selection could never terminate.
	covered := make([]int, n)
	coverable := 0
	coverableMask := bitset.New(n)
	for i, c := range cands {
		if majority[i] < 0 {
			continue
		}
		c.Cover.ForEach(func(row int) {
			if labels[row] == majority[i] && !coverableMask.Get(row) {
				coverableMask.Set(row)
				coverable++
			}
		})
	}
	fullyCovered := 0

	// maxRed[i] tracks max_{β∈Fs} R(candidate_i, β), updated
	// incrementally as features join Fs.
	maxRed := make([]float64, len(cands))
	inSel := make([]bool, len(cands))

	// The per-iteration scans (gain argmax, redundancy update) go wide
	// only past the pool-size threshold; each chunk touches its own
	// index range, and chunk results merge in chunk order with strict
	// inequalities, reproducing the sequential lowest-index tie-break.
	workers := opt.Workers.Resolve()
	if len(cands) < parallelMinCandidates {
		workers = 1
	}
	chunks := parallel.Chunks(len(cands), workers)

	// scanGain returns the best candidate in [lo, hi), first index wins
	// ties via the strict >.
	scanGain := func(lo, hi int) (int, float64) {
		best, bestGain := -1, math.Inf(-1)
		for i := lo; i < hi; i++ {
			if inSel[i] || majority[i] < 0 {
				continue
			}
			gain := res.Relevance[i] - maxRed[i]
			if gain > bestGain {
				best, bestGain = i, gain
			}
		}
		return best, bestGain
	}

	// pick returns the unselected candidate with maximal gain, or -1.
	pick := func() int {
		if workers <= 1 {
			best, _ := scanGain(0, len(cands))
			return best
		}
		type chunkBest struct {
			idx  int
			gain float64
		}
		bests := make([]chunkBest, len(chunks))
		// Chunks write only their own bests[c] slot and cannot fail.
		_ = parallel.ForEach(opt.Workers, len(chunks), func(c int) error {
			idx, gain := scanGain(chunks[c][0], chunks[c][1])
			bests[c] = chunkBest{idx: idx, gain: gain}
			return nil
		})
		best, bestGain := -1, math.Inf(-1)
		for _, b := range bests {
			if b.idx >= 0 && b.gain > bestGain {
				best, bestGain = b.idx, b.gain
			}
		}
		return best
	}

	// correctlyCoversUncovered reports whether candidate i correctly
	// covers at least one instance still below δ.
	correctlyCoversUncovered := func(i int) bool {
		found := false
		cands[i].Cover.ForEach(func(row int) {
			if !found && labels[row] == majority[i] && covered[row] < opt.Coverage {
				found = true
			}
		})
		return found
	}

	// updateRed refreshes maxRed[j] for j in [lo, hi) against the newly
	// selected candidate i; writes are index-partitioned by chunk.
	updateRed := func(i, lo, hi int) {
		for j := lo; j < hi; j++ {
			if inSel[j] || majority[j] < 0 {
				continue
			}
			r := redundancy(cands[j], cands[i], res.Relevance[j], res.Relevance[i])
			if r > maxRed[j] {
				maxRed[j] = r
			}
		}
	}

	add := func(i int) {
		inSel[i] = true
		res.Selected = append(res.Selected, i)
		cands[i].Cover.ForEach(func(row int) {
			if labels[row] == majority[i] {
				covered[row]++
				if covered[row] == opt.Coverage {
					fullyCovered++
				}
			}
		})
		if workers <= 1 {
			updateRed(i, 0, len(cands))
			return
		}
		// Chunks write disjoint maxRed ranges and cannot fail.
		_ = parallel.ForEach(opt.Workers, len(chunks), func(c int) error {
			updateRed(i, chunks[c][0], chunks[c][1])
			return nil
		})
	}

	sp.Attr("coverable", coverable)
	iterations := opt.Obs.Counter("mmrfs.iterations")
	rejected := opt.Obs.Counter("mmrfs.rejected_no_coverage")
	gainHist := opt.Obs.Histogram("mmrfs.gain_microbits")
	audit := opt.Obs.Enabled()
	dropped := 0
	for {
		// Each iteration scans the whole candidate pool (pick + add are
		// O(|F|)), so poll the guard eagerly rather than amortized.
		if err := g.CheckNow(); err != nil {
			sp.End()
			return nil, err
		}
		if opt.MaxFeatures > 0 && len(res.Selected) >= opt.MaxFeatures {
			break
		}
		if fullyCovered >= coverable {
			break
		}
		i := pick()
		if i < 0 {
			break // pool exhausted
		}
		iterations.Inc()
		accepted := correctlyCoversUncovered(i)
		if audit {
			gain := res.Relevance[i] - maxRed[i]
			reason := "selected"
			if !accepted {
				reason = "no-uncovered-instance"
			}
			res.Audit = append(res.Audit, AuditEntry{
				Iteration:  len(res.Audit) + 1,
				Candidate:  i,
				Items:      cands[i].Items,
				Relevance:  res.Relevance[i],
				Redundancy: maxRed[i],
				Gain:       gain,
				Accepted:   accepted,
				Reason:     reason,
			})
			gainHist.Observe(int64(gain * 1e6))
		}
		if accepted {
			add(i)
		} else {
			// Cannot contribute coverage: drop from the pool without
			// selecting (Algorithm 1 line 7 removes β from F either way).
			inSel[i] = true
			dropped++
			rejected.Inc()
		}
	}
	opt.Obs.Counter("mmrfs.selected").Add(int64(len(res.Selected)))
	opt.Obs.Counter("mmrfs.dropped").Add(int64(dropped))
	// Coverage residual: instances some candidate could correctly cover
	// that still sit below δ when selection stops.
	opt.Obs.Gauge("mmrfs.coverage_residual").Set(float64(coverable - fullyCovered))
	sp.Attr("selected", len(res.Selected)).Attr("residual", coverable-fullyCovered).End()
	if opt.Log != nil {
		opt.Log.Debug("MMRFS selection done",
			slog.Int("candidates", len(cands)),
			slog.Int("selected", len(res.Selected)),
			slog.Int("dropped", dropped),
			slog.Int("coverage_residual", coverable-fullyCovered))
	}

	// inSel was reused to mark dropped candidates; rebuild Selected-only
	// marks are already in res.Selected, nothing to undo.
	return res, nil
}

// TopK returns the indices of the k candidates with the highest
// relevance (no redundancy or coverage reasoning) — the conventional
// filter-style feature selection used for the Item_FS baseline.
func TopK(cands []Candidate, classMasks []*bitset.Bitset, rel Relevance, k int) *Result {
	res := &Result{Relevance: scoreAll(cands, classMasks, rel, 1)}
	idx := make([]int, len(cands))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if res.Relevance[idx[a]] != res.Relevance[idx[b]] {
			return res.Relevance[idx[a]] > res.Relevance[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if k > len(idx) {
		k = len(idx)
	}
	if k < 0 {
		k = 0
	}
	res.Selected = idx[:k]
	return res
}

// AboveThreshold returns the indices of candidates whose relevance is
// at least t, in descending relevance order — the IG0-threshold filter
// the paper's Section 3.1.3 equivalence argument is built on.
func AboveThreshold(cands []Candidate, classMasks []*bitset.Bitset, rel Relevance, t float64) *Result {
	res := &Result{Relevance: scoreAll(cands, classMasks, rel, 1)}
	idx := make([]int, 0, len(cands))
	for i := range cands {
		if res.Relevance[i] >= t {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		if res.Relevance[idx[a]] != res.Relevance[idx[b]] {
			return res.Relevance[idx[a]] > res.Relevance[idx[b]]
		}
		return idx[a] < idx[b]
	})
	res.Selected = idx
	return res
}

// FireRates returns, per candidate, the fraction of the n training
// rows its coverage bitset fires on. This is the fit-time reference
// the modelobs drift layer compares live pattern fire rates against:
// computed from the same coverage bitmaps MMRFS selected on, so the
// baseline costs no extra pass over the data.
func FireRates(cands []Candidate, n int) []float64 {
	out := make([]float64, len(cands))
	if n <= 0 {
		return out
	}
	for i, c := range cands {
		if c.Cover != nil {
			out[i] = float64(c.Cover.Count()) / float64(n)
		}
	}
	return out
}
