// Package featsel implements the paper's feature-selection step:
// MMRFS (Algorithm 1), a Maximal-Marginal-Relevance-style greedy search
// that selects patterns that are relevant to the class label and
// minimally redundant with the already-selected set, under a database
// coverage constraint δ. It also provides the plain relevance filters
// (top-k information gain) used for the Item_FS baseline in Tables 1–2.
package featsel

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"sort"
	"time"

	"dfpc/internal/bitset"
	"dfpc/internal/guard"
	"dfpc/internal/measures"
	"dfpc/internal/obs"
)

// Relevance selects the relevance measure S(α) used by MMRFS
// (Definition 3: information gain or Fisher score).
type Relevance int

const (
	// InfoGain uses IG(C|X) as relevance.
	InfoGain Relevance = iota
	// Fisher uses the Fisher score as relevance.
	Fisher
)

func (r Relevance) String() string {
	switch r {
	case InfoGain:
		return "information-gain"
	case Fisher:
		return "fisher-score"
	default:
		return fmt.Sprintf("Relevance(%d)", int(r))
	}
}

// relevanceCap bounds relevance so that +Inf Fisher scores (perfectly
// separating features) stay arithmetically safe inside the redundancy
// product of Eq. 9.
const relevanceCap = 1e9

// Candidate is one feature candidate: an itemset together with its
// coverage bitset over the training rows.
type Candidate struct {
	Items []int32
	Cover *bitset.Bitset
}

// Options configures MMRFS.
type Options struct {
	// Relevance is the S measure (default InfoGain).
	Relevance Relevance
	// Coverage is δ: selection stops once every coverable training
	// instance is correctly covered δ times (default 1).
	Coverage int
	// MaxFeatures optionally caps the number of selected features;
	// 0 means unbounded (the coverage constraint decides).
	MaxFeatures int
	// Ctx, when non-nil, makes the greedy loop cancellable; selection
	// aborts with an error satisfying errors.Is(err, guard.ErrCanceled)
	// (or guard.ErrDeadline). Nil costs nothing.
	//vet:ignore ctxfirst per-call Options carrier: Options lives only for one Select call
	Ctx context.Context
	// Deadline aborts selection once passed (0 = none).
	Deadline time.Time
	// Obs, when non-nil, records the MMRFS span, iteration/selection
	// counters, and the final coverage residual. Nil disables recording.
	Obs *obs.Observer
	// Log, when non-nil, receives one structured DEBUG record per
	// selection run (candidates, selected, coverage residual). Nil
	// disables logging.
	Log *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.Coverage <= 0 {
		o.Coverage = 1
	}
	return o
}

// Result reports the outcome of a selection run.
type Result struct {
	// Selected holds indices into the candidate slice, in selection
	// order (most relevant first).
	Selected []int
	// Relevance holds S(α) for every candidate (same indexing as the
	// input slice), useful for diagnostics and the figures.
	Relevance []float64
}

// scoreAll computes S(α) for each candidate.
func scoreAll(cands []Candidate, classMasks []*bitset.Bitset, rel Relevance) []float64 {
	scores := make([]float64, len(cands))
	for i, c := range cands {
		var s float64
		switch rel {
		case Fisher:
			s = measures.FisherScore(c.Cover, classMasks)
		default:
			s = measures.InfoGain(c.Cover, classMasks)
		}
		if math.IsInf(s, 1) || s > relevanceCap {
			s = relevanceCap
		}
		scores[i] = s
	}
	return scores
}

// redundancy implements Eq. 9: R(α,β) = P(α,β) / (P(α)+P(β)−P(α,β)) ×
// min(S(α), S(β)), i.e. the Jaccard similarity of the coverage sets
// scaled by the smaller relevance.
func redundancy(a, b Candidate, sa, sb float64) float64 {
	inter := a.Cover.AndCount(b.Cover)
	union := a.Cover.Count() + b.Cover.Count() - inter
	if union == 0 {
		return 0
	}
	jac := float64(inter) / float64(union)
	return jac * math.Min(sa, sb)
}

// majorityClass returns the majority class among the rows covered by
// cov (ties broken toward the smaller class index), or -1 for an empty
// cover. A feature "correctly covers" an instance when the instance's
// class matches this label — the sense in which Algorithm 1 requires
// each selected pattern to correctly cover at least one instance.
func majorityClass(cov *bitset.Bitset, classMasks []*bitset.Bitset) int {
	best, bestCount := -1, 0
	for c, mask := range classMasks {
		n := cov.AndCount(mask)
		if n > bestCount {
			best, bestCount = c, n
		}
	}
	return best
}

// MMRFS runs Algorithm 1 over the candidates. labels[i] is the class of
// training row i; classMasks partition the rows by class. It returns
// the selected candidate indices in selection order.
//
// The search starts from the most relevant pattern, then repeatedly
// adds the pattern with maximal marginal gain g(α) = S(α) −
// max_{β∈Fs} R(α,β) (Eq. 10), provided it correctly covers at least one
// instance that is not yet covered δ times; it stops when every
// coverable instance is covered δ times or the candidate pool is
// exhausted.
func MMRFS(cands []Candidate, classMasks []*bitset.Bitset, labels []int, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	g := guard.New(opt.Ctx, guard.Limits{Deadline: opt.Deadline})
	if err := g.CheckNow(); err != nil {
		return nil, err
	}
	n := len(labels)
	for i, c := range cands {
		if c.Cover == nil || c.Cover.Len() != n {
			return nil, fmt.Errorf("featsel: candidate %d cover length mismatch", i)
		}
	}
	res := &Result{Relevance: scoreAll(cands, classMasks, opt.Relevance)}
	if len(cands) == 0 {
		return res, nil
	}

	majority := make([]int, len(cands))
	for i, c := range cands {
		majority[i] = majorityClass(c.Cover, classMasks)
	}

	// coverable[i]: some candidate correctly covers row i; rows no
	// candidate can cover are excluded from the δ-coverage stopping
	// test, otherwise selection could never terminate.
	covered := make([]int, n)
	coverable := 0
	coverableMask := bitset.New(n)
	for i, c := range cands {
		if majority[i] < 0 {
			continue
		}
		c.Cover.ForEach(func(row int) {
			if labels[row] == majority[i] && !coverableMask.Get(row) {
				coverableMask.Set(row)
				coverable++
			}
		})
	}
	fullyCovered := 0

	// maxRed[i] tracks max_{β∈Fs} R(candidate_i, β), updated
	// incrementally as features join Fs.
	maxRed := make([]float64, len(cands))
	inSel := make([]bool, len(cands))

	// pick returns the unselected candidate with maximal gain, or -1.
	pick := func() int {
		best, bestGain := -1, math.Inf(-1)
		for i := range cands {
			if inSel[i] || majority[i] < 0 {
				continue
			}
			gain := res.Relevance[i] - maxRed[i]
			if gain > bestGain {
				best, bestGain = i, gain
			}
		}
		return best
	}

	// correctlyCoversUncovered reports whether candidate i correctly
	// covers at least one instance still below δ.
	correctlyCoversUncovered := func(i int) bool {
		found := false
		cands[i].Cover.ForEach(func(row int) {
			if !found && labels[row] == majority[i] && covered[row] < opt.Coverage {
				found = true
			}
		})
		return found
	}

	add := func(i int) {
		inSel[i] = true
		res.Selected = append(res.Selected, i)
		cands[i].Cover.ForEach(func(row int) {
			if labels[row] == majority[i] {
				covered[row]++
				if covered[row] == opt.Coverage {
					fullyCovered++
				}
			}
		})
		for j := range cands {
			if inSel[j] || majority[j] < 0 {
				continue
			}
			r := redundancy(cands[j], cands[i], res.Relevance[j], res.Relevance[i])
			if r > maxRed[j] {
				maxRed[j] = r
			}
		}
	}

	sp := opt.Obs.Start("mmrfs").
		Attr("candidates", len(cands)).
		Attr("coverable", coverable).
		Attr("delta", opt.Coverage)
	iterations := opt.Obs.Counter("mmrfs.iterations")
	dropped := 0
	for {
		// Each iteration scans the whole candidate pool (pick + add are
		// O(|F|)), so poll the guard eagerly rather than amortized.
		if err := g.CheckNow(); err != nil {
			sp.End()
			return nil, err
		}
		if opt.MaxFeatures > 0 && len(res.Selected) >= opt.MaxFeatures {
			break
		}
		if fullyCovered >= coverable {
			break
		}
		i := pick()
		if i < 0 {
			break // pool exhausted
		}
		iterations.Inc()
		if correctlyCoversUncovered(i) {
			add(i)
		} else {
			// Cannot contribute coverage: drop from the pool without
			// selecting (Algorithm 1 line 7 removes β from F either way).
			inSel[i] = true
			dropped++
		}
	}
	opt.Obs.Counter("mmrfs.selected").Add(int64(len(res.Selected)))
	opt.Obs.Counter("mmrfs.dropped").Add(int64(dropped))
	// Coverage residual: instances some candidate could correctly cover
	// that still sit below δ when selection stops.
	opt.Obs.Gauge("mmrfs.coverage_residual").Set(float64(coverable - fullyCovered))
	sp.Attr("selected", len(res.Selected)).Attr("residual", coverable-fullyCovered).End()
	if opt.Log != nil {
		opt.Log.Debug("MMRFS selection done",
			slog.Int("candidates", len(cands)),
			slog.Int("selected", len(res.Selected)),
			slog.Int("dropped", dropped),
			slog.Int("coverage_residual", coverable-fullyCovered))
	}

	// inSel was reused to mark dropped candidates; rebuild Selected-only
	// marks are already in res.Selected, nothing to undo.
	return res, nil
}

// TopK returns the indices of the k candidates with the highest
// relevance (no redundancy or coverage reasoning) — the conventional
// filter-style feature selection used for the Item_FS baseline.
func TopK(cands []Candidate, classMasks []*bitset.Bitset, rel Relevance, k int) *Result {
	res := &Result{Relevance: scoreAll(cands, classMasks, rel)}
	idx := make([]int, len(cands))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if res.Relevance[idx[a]] != res.Relevance[idx[b]] {
			return res.Relevance[idx[a]] > res.Relevance[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if k > len(idx) {
		k = len(idx)
	}
	if k < 0 {
		k = 0
	}
	res.Selected = idx[:k]
	return res
}

// AboveThreshold returns the indices of candidates whose relevance is
// at least t, in descending relevance order — the IG0-threshold filter
// the paper's Section 3.1.3 equivalence argument is built on.
func AboveThreshold(cands []Candidate, classMasks []*bitset.Bitset, rel Relevance, t float64) *Result {
	res := &Result{Relevance: scoreAll(cands, classMasks, rel)}
	idx := make([]int, 0, len(cands))
	for i := range cands {
		if res.Relevance[i] >= t {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		if res.Relevance[idx[a]] != res.Relevance[idx[b]] {
			return res.Relevance[idx[a]] > res.Relevance[idx[b]]
		}
		return idx[a] < idx[b]
	})
	res.Selected = idx
	return res
}
