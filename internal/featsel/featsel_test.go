package featsel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dfpc/internal/bitset"
)

func masksFor(labels []int, classes int) []*bitset.Bitset {
	masks := make([]*bitset.Bitset, classes)
	for c := range masks {
		masks[c] = bitset.New(len(labels))
	}
	for i, y := range labels {
		masks[y].Set(i)
	}
	return masks
}

func cand(n int, rows ...int) Candidate {
	return Candidate{Cover: bitset.FromIndices(n, rows)}
}

// fixture: 8 rows, classes 0 = {0..3}, 1 = {4..7}.
func fixture() ([]int, []*bitset.Bitset) {
	labels := []int{0, 0, 0, 0, 1, 1, 1, 1}
	return labels, masksFor(labels, 2)
}

func TestMMRFSPicksMostRelevantFirst(t *testing.T) {
	labels, masks := fixture()
	cands := []Candidate{
		cand(8, 0, 4),       // useless: one from each class
		cand(8, 0, 1, 2, 3), // perfect class-0 feature
		cand(8, 0, 1, 4),    // mediocre
	}
	res, err := MMRFS(cands, masks, labels, Options{Coverage: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) == 0 || res.Selected[0] != 1 {
		t.Fatalf("Selected = %v, want candidate 1 first", res.Selected)
	}
}

func TestMMRFSPenalizesRedundancy(t *testing.T) {
	labels, masks := fixture()
	// Candidates 0 and 1 are identical perfect class-0 features;
	// candidate 2 is a perfect class-1 feature with equal relevance.
	cands := []Candidate{
		cand(8, 0, 1, 2, 3),
		cand(8, 0, 1, 2, 3),
		cand(8, 4, 5, 6, 7),
	}
	res, err := MMRFS(cands, masks, labels, Options{Coverage: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) < 2 {
		t.Fatalf("Selected = %v, want at least 2", res.Selected)
	}
	// Second pick must be the class-1 feature, not the duplicate.
	if res.Selected[1] != 2 {
		t.Fatalf("Selected = %v: redundancy not penalized", res.Selected)
	}
}

func TestMMRFSCoverageStopsSelection(t *testing.T) {
	labels, masks := fixture()
	// Two perfect complementary features cover everything once.
	cands := []Candidate{
		cand(8, 0, 1, 2, 3),
		cand(8, 4, 5, 6, 7),
		cand(8, 0, 1),
		cand(8, 2, 3),
	}
	res, err := MMRFS(cands, masks, labels, Options{Coverage: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 2 {
		t.Fatalf("Selected = %v, want exactly 2 with δ=1", res.Selected)
	}
}

func TestMMRFSHigherDeltaSelectsMore(t *testing.T) {
	labels, masks := fixture()
	cands := []Candidate{
		cand(8, 0, 1, 2, 3),
		cand(8, 4, 5, 6, 7),
		cand(8, 0, 1, 2),
		cand(8, 5, 6, 7),
		cand(8, 1, 2, 3),
		cand(8, 4, 5, 6),
	}
	res1, err := MMRFS(cands, masks, labels, Options{Coverage: 1})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := MMRFS(cands, masks, labels, Options{Coverage: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Selected) <= len(res1.Selected) {
		t.Fatalf("δ=2 selected %d, δ=1 selected %d; want more at higher δ",
			len(res2.Selected), len(res1.Selected))
	}
}

func TestMMRFSMaxFeatures(t *testing.T) {
	labels, masks := fixture()
	cands := []Candidate{
		cand(8, 0, 1, 2, 3),
		cand(8, 4, 5, 6, 7),
		cand(8, 0, 1),
	}
	res, err := MMRFS(cands, masks, labels, Options{Coverage: 5, MaxFeatures: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 1 {
		t.Fatalf("Selected = %v, want 1", res.Selected)
	}
}

func TestMMRFSSkipsUselessCoverage(t *testing.T) {
	labels, masks := fixture()
	// Candidate 1 covers only already-covered rows with the same class;
	// after candidate 0 is selected it adds nothing and must be dropped,
	// not selected.
	cands := []Candidate{
		cand(8, 0, 1, 2, 3),
		cand(8, 0, 1),
		cand(8, 4, 5, 6, 7),
	}
	res, err := MMRFS(cands, masks, labels, Options{Coverage: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Selected {
		if s == 1 {
			t.Fatalf("Selected = %v: candidate 1 adds no coverage", res.Selected)
		}
	}
}

func TestMMRFSEmptyCandidates(t *testing.T) {
	labels, masks := fixture()
	res, err := MMRFS(nil, masks, labels, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 0 {
		t.Fatalf("Selected = %v", res.Selected)
	}
}

func TestMMRFSCoverLengthMismatch(t *testing.T) {
	labels, masks := fixture()
	cands := []Candidate{{Cover: bitset.New(3)}}
	if _, err := MMRFS(cands, masks, labels, Options{}); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

func TestMMRFSFisherRelevance(t *testing.T) {
	labels, masks := fixture()
	cands := []Candidate{
		cand(8, 0, 4),       // useless
		cand(8, 0, 1, 2, 3), // perfect (Fisher +Inf → capped)
	}
	res, err := MMRFS(cands, masks, labels, Options{Relevance: Fisher})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) == 0 || res.Selected[0] != 1 {
		t.Fatalf("Selected = %v", res.Selected)
	}
	if math.IsInf(res.Relevance[1], 1) || math.IsNaN(res.Relevance[1]) {
		t.Fatalf("relevance not capped: %v", res.Relevance[1])
	}
}

func TestMMRFSTerminatesWithUncoverableRows(t *testing.T) {
	labels, masks := fixture()
	// No candidate covers rows 2,3,6,7 — selection must still stop.
	cands := []Candidate{
		cand(8, 0, 1),
		cand(8, 4, 5),
	}
	res, err := MMRFS(cands, masks, labels, Options{Coverage: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 2 {
		t.Fatalf("Selected = %v, want both candidates then stop", res.Selected)
	}
}

func TestRedundancyEq9(t *testing.T) {
	a := cand(8, 0, 1, 2, 3)
	b := cand(8, 2, 3, 4, 5)
	// Jaccard = 2/6 = 1/3; min(S) = 0.5 → R = 1/6.
	if got := redundancy(a, b, 0.5, 0.9); math.Abs(got-1.0/6) > 1e-12 {
		t.Fatalf("redundancy = %v, want 1/6", got)
	}
	// Disjoint covers → 0 regardless of relevance.
	c := cand(8, 6, 7)
	if got := redundancy(a, c, 1, 1); got != 0 {
		t.Fatalf("disjoint redundancy = %v", got)
	}
	// Two empty covers → union 0 → defined as 0.
	e1, e2 := cand(8), cand(8)
	if got := redundancy(e1, e2, 1, 1); got != 0 {
		t.Fatalf("empty redundancy = %v", got)
	}
}

func TestMajorityClass(t *testing.T) {
	labels, masks := fixture()
	_ = labels
	if got := majorityClass(bitset.FromIndices(8, []int{0, 1, 4}), masks); got != 0 {
		t.Fatalf("majority = %d, want 0", got)
	}
	if got := majorityClass(bitset.FromIndices(8, []int{4, 5}), masks); got != 1 {
		t.Fatalf("majority = %d, want 1", got)
	}
	if got := majorityClass(bitset.New(8), masks); got != -1 {
		t.Fatalf("empty majority = %d, want -1", got)
	}
}

func TestTopK(t *testing.T) {
	labels, masks := fixture()
	_ = labels
	cands := []Candidate{
		cand(8, 0, 4),       // IG 0
		cand(8, 0, 1, 2, 3), // IG 1
		cand(8, 0, 1, 4),    // in between
	}
	res := TopK(cands, masks, InfoGain, 2)
	if len(res.Selected) != 2 || res.Selected[0] != 1 {
		t.Fatalf("TopK = %v", res.Selected)
	}
	if res := TopK(cands, masks, InfoGain, 100); len(res.Selected) != 3 {
		t.Fatalf("TopK over-length = %v", res.Selected)
	}
	if res := TopK(cands, masks, InfoGain, -1); len(res.Selected) != 0 {
		t.Fatalf("TopK(-1) = %v", res.Selected)
	}
}

func TestAboveThreshold(t *testing.T) {
	labels, masks := fixture()
	_ = labels
	cands := []Candidate{
		cand(8, 0, 4),
		cand(8, 0, 1, 2, 3),
	}
	res := AboveThreshold(cands, masks, InfoGain, 0.5)
	if len(res.Selected) != 1 || res.Selected[0] != 1 {
		t.Fatalf("AboveThreshold = %v", res.Selected)
	}
	if res := AboveThreshold(cands, masks, InfoGain, 0); len(res.Selected) != 2 {
		t.Fatalf("threshold 0 = %v", res.Selected)
	}
}

// Property: MMRFS never selects the same candidate twice, selections are
// within range, and every selected feature has non-negative gain
// ordering (first has max relevance).
func TestQuickMMRFSInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 10 + r.Intn(60)
		classes := 2 + r.Intn(3)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = r.Intn(classes)
		}
		masks := masksFor(labels, classes)
		cands := make([]Candidate, 3+r.Intn(20))
		for i := range cands {
			cov := bitset.New(n)
			for j := 0; j < n; j++ {
				if r.Intn(3) == 0 {
					cov.Set(j)
				}
			}
			cands[i] = Candidate{Cover: cov}
		}
		res, err := MMRFS(cands, masks, labels, Options{Coverage: 1 + r.Intn(3)})
		if err != nil {
			return false
		}
		seen := map[int]bool{}
		maxRel := 0.0
		for _, c := range cands {
			_ = c
		}
		for i, rel := range res.Relevance {
			if majorityClass(cands[i].Cover, masks) >= 0 && rel > maxRel {
				maxRel = rel
			}
		}
		for k, s := range res.Selected {
			if s < 0 || s >= len(cands) || seen[s] {
				return false
			}
			seen[s] = true
			if k == 0 && res.Relevance[s] < maxRel-1e-9 {
				return false // first pick must be the most relevant coverable one
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
