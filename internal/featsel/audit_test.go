package featsel

import (
	"testing"

	"dfpc/internal/bitset"
	"dfpc/internal/obs"
)

// auditFixture builds a 3-row, 2-class pool engineered so the greedy
// loop must reject one candidate for covering no uncovered instance:
// labels are [0,0,1]; three duplicate candidates cover row 0 and one
// covers row 1, with δ=2. The scan selects c0, then c3 (c1/c2 are
// fully redundant with c0), then c1 (row 0 still below δ), and finally
// picks c2 — whose only row is now at δ — which must be rejected.
func auditFixture() (cands []Candidate, masks []*bitset.Bitset, labels []int) {
	cover := func(rows ...int) *bitset.Bitset {
		b := bitset.New(3)
		for _, r := range rows {
			b.Set(r)
		}
		return b
	}
	cands = []Candidate{
		{Items: []int32{0}, Cover: cover(0)},
		{Items: []int32{1}, Cover: cover(0)},
		{Items: []int32{2}, Cover: cover(0)},
		{Items: []int32{3}, Cover: cover(1)},
	}
	masks = []*bitset.Bitset{cover(0, 1), cover(2)}
	labels = []int{0, 0, 1}
	return cands, masks, labels
}

func TestMMRFSAuditTrail(t *testing.T) {
	cands, masks, labels := auditFixture()
	o := obs.New()
	res, err := MMRFS(cands, masks, labels, Options{Coverage: 2, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Audit) == 0 {
		t.Fatal("no audit entries with observability on")
	}

	accepted := 0
	for i, e := range res.Audit {
		if e.Iteration != i+1 {
			t.Fatalf("audit[%d].Iteration = %d, want %d (decisions number from 1)", i, e.Iteration, i+1)
		}
		if e.Candidate < 0 || e.Candidate >= len(cands) {
			t.Fatalf("audit[%d] names out-of-range candidate %d", i, e.Candidate)
		}
		if len(e.Items) == 0 {
			t.Fatalf("audit[%d] lost the candidate's itemset", i)
		}
		if g := e.Relevance - e.Redundancy; g != e.Gain {
			t.Fatalf("audit[%d]: gain %v != relevance %v - redundancy %v", i, e.Gain, e.Relevance, e.Redundancy)
		}
		switch {
		case e.Accepted && e.Reason != "selected":
			t.Fatalf("audit[%d]: accepted with reason %q", i, e.Reason)
		case !e.Accepted && e.Reason != "no-uncovered-instance":
			t.Fatalf("audit[%d]: rejected with reason %q", i, e.Reason)
		}
		if e.Accepted {
			if res.Selected[accepted] != e.Candidate {
				t.Fatalf("audit[%d]: accepted candidate %d but Selected[%d] = %d",
					i, e.Candidate, accepted, res.Selected[accepted])
			}
			accepted++
		}
	}
	if accepted != len(res.Selected) {
		t.Fatalf("%d accepted audit entries, %d selected features", accepted, len(res.Selected))
	}

	// The fixture forces exactly one coverage rejection.
	var rejected int
	for _, e := range res.Audit {
		if !e.Accepted {
			rejected++
		}
	}
	if rejected != 1 {
		t.Fatalf("fixture expects exactly 1 rejection, audit recorded %d: %+v", rejected, res.Audit)
	}

	r := o.Report("mmrfs")
	if got := r.Counters["mmrfs.iterations"]; got != int64(len(res.Audit)) {
		t.Fatalf("mmrfs.iterations = %d, want %d (one per audit entry)", got, len(res.Audit))
	}
	if got := r.Counters["mmrfs.rejected_no_coverage"]; got != 1 {
		t.Fatalf("mmrfs.rejected_no_coverage = %d, want 1", got)
	}
	if h := r.Histograms["mmrfs.gain_microbits"]; h.Count == 0 {
		t.Fatal("mmrfs.gain_microbits histogram is empty")
	}
}

// TestMMRFSAuditOffByDefault: without an observer the trail is not
// recorded and the selected set is unchanged.
func TestMMRFSAuditOffByDefault(t *testing.T) {
	cands, masks, labels := auditFixture()
	plain, err := MMRFS(cands, masks, labels, Options{Coverage: 2})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Audit != nil {
		t.Fatalf("audit recorded without an observer: %+v", plain.Audit)
	}
	observed, err := MMRFS(cands, masks, labels, Options{Coverage: 2, Obs: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Selected) != len(observed.Selected) {
		t.Fatalf("observer changed selection size: %v vs %v", plain.Selected, observed.Selected)
	}
	for i := range plain.Selected {
		if plain.Selected[i] != observed.Selected[i] {
			t.Fatalf("observer changed selection: %v vs %v", plain.Selected, observed.Selected)
		}
	}
}
